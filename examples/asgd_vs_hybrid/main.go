// asgd_vs_hybrid reproduces the paper's Fig. 11 experiment functionally:
// train ShmCaffe-A and ShmCaffe-H with growing worker counts and watch the
// asynchronous variant's accuracy erode with staleness while the hybrid
// holds (paper: −5.7 % at 16 GPUs for A; H within 0.9–2.2 % of 1 GPU).
// It also demonstrates the staleness ablation the paper argues for in
// Sec. III-G: hiding the global-weight read hurts convergence.
//
//	go run ./examples/asgd_vs_hybrid
package main

import (
	"fmt"
	"log"
	"os"
	"sync"

	"shmcaffe"
	"shmcaffe/internal/bench"
	"shmcaffe/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Fig. 11: ShmCaffe-A vs ShmCaffe-H accuracy/loss vs workers ==")
	fmt.Println()
	opts := bench.DefaultConvergenceOptions()
	opts.Epochs = 6
	opts.PerClass = 240 // enough shards for 16 workers
	opts.Noise = 0.8    // harder task so staleness effects are visible
	tab, err := bench.Fig11AsyncVsHybrid([]int{1, 4, 8, 16}, opts)
	if err != nil {
		return err
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Println()
	fmt.Println("== Staleness ablation: exposed vs hidden global-weight read ==")
	fmt.Println()
	exposedLoss, err := finalLoss(false)
	if err != nil {
		return err
	}
	hiddenLoss, err := finalLoss(true)
	if err != nil {
		return err
	}
	t := trace.New("Final training loss after 6 epochs, 8 SEASGD workers",
		"Variant", "Final loss")
	t.Add("exposed read (paper's choice)", trace.F2(exposedLoss))
	t.Add("hidden read (stale Wg)", trace.F2(hiddenLoss))
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("ShmCaffe deliberately keeps the Wg read on the critical path: \"the learning")
	fmt.Println("performance deteriorates due to the delayed (or stale) parameter problem\" (Sec. III-G).")
	return nil
}

// finalLoss trains 8 SEASGD workers with/without the hidden-read ablation
// and returns the mean final minibatch loss across workers.
func finalLoss(hideRead bool) (float64, error) {
	const (
		workers = 8
		iters   = 60
		seed    = 7
	)
	full, err := shmcaffe.NewGaussianDataset(shmcaffe.GaussianConfig{
		Classes: 4, PerClass: 100, Shape: []int{8}, Noise: 0.8, Seed: seed,
	})
	if err != nil {
		return 0, err
	}
	store := shmcaffe.NewStore()
	world, err := shmcaffe.NewWorld(workers)
	if err != nil {
		return 0, err
	}
	solver := shmcaffe.DefaultSolverConfig()
	solver.BaseLR = 0.05

	var wg sync.WaitGroup
	losses := make([]float64, workers)
	errs := make([]error, workers)
	for r := 0; r < workers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[r] = func() error {
				net, err := shmcaffe.MLP(fmt.Sprintf("w%d", r), 8, 16, 4)
				if err != nil {
					return err
				}
				net.InitWeights(shmcaffe.NewRNG(seed))
				shard, err := shmcaffe.ShardDataset(full, r, workers)
				if err != nil {
					return err
				}
				loader, err := shmcaffe.NewLoader(shard, 8, seed+uint64(r))
				if err != nil {
					return err
				}
				comm, err := world.Comm(r)
				if err != nil {
					return err
				}
				w, err := shmcaffe.NewWorker(shmcaffe.WorkerConfig{
					Job:            fmt.Sprintf("ablation-%v", hideRead),
					Comm:           comm,
					Client:         shmcaffe.NewLocalClient(store),
					Net:            net,
					Solver:         solver,
					Elastic:        shmcaffe.DefaultElasticConfig(),
					Termination:    shmcaffe.StopIndependently,
					MaxIterations:  iters,
					Loader:         loader,
					HideGlobalRead: hideRead,
				})
				if err != nil {
					return err
				}
				stats, err := w.Run()
				if err != nil {
					return err
				}
				n := len(stats.LossHistory)
				tail := stats.LossHistory[n-5:]
				var s float64
				for _, v := range tail {
					s += v
				}
				losses[r] = s / float64(len(tail))
				return nil
			}()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	var sum float64
	for _, l := range losses {
		sum += l
	}
	return sum / workers, nil
}
