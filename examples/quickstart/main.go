// Quickstart: train a model with 4 SEASGD workers sharing parameters
// through an in-process Soft Memory Box — the smallest end-to-end use of
// the shmcaffe core API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"shmcaffe"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		workers = 4
		epochs  = 6
		batch   = 8
		seed    = 42
	)

	// 1. A synthetic classification task (the stand-in for ImageNet).
	full, err := shmcaffe.NewGaussianDataset(shmcaffe.GaussianConfig{
		Classes:  4,
		PerClass: 100,
		Shape:    []int{8},
		Noise:    0.6,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	train, val, err := shmcaffe.SplitDataset(full, 0.8)
	if err != nil {
		return err
	}

	// 2. The SMB "memory server" — here in-process; swap NewLocalClient
	//    for DialSMB("host:7700") to use a remote one (cmd/smbserver).
	store := shmcaffe.NewStore()

	// 3. An MPI world: rank 0 is the master worker that creates the
	//    shared Wg buffer and broadcasts its SHM key (paper Fig. 2).
	world, err := shmcaffe.NewWorld(workers)
	if err != nil {
		return err
	}

	solver := shmcaffe.DefaultSolverConfig()
	solver.BaseLR = 0.05
	itersPerEpoch := train.Len() / (batch * workers)

	// 4. One goroutine per worker: build a replica, shard the data,
	//    run SEASGD.
	var wg sync.WaitGroup
	stats := make([]*shmcaffe.RunStats, workers)
	errs := make([]error, workers)
	for r := 0; r < workers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[r] = func() error {
				net, err := shmcaffe.MLP(fmt.Sprintf("worker%d", r), 8, 16, 4)
				if err != nil {
					return err
				}
				net.InitWeights(shmcaffe.NewRNG(seed)) // same start everywhere
				shard, err := shmcaffe.ShardDataset(train, r, workers)
				if err != nil {
					return err
				}
				loader, err := shmcaffe.NewLoader(shard, batch, seed+uint64(r))
				if err != nil {
					return err
				}
				comm, err := world.Comm(r)
				if err != nil {
					return err
				}
				worker, err := shmcaffe.NewWorker(shmcaffe.WorkerConfig{
					Job:           "quickstart",
					Comm:          comm,
					Client:        shmcaffe.NewLocalClient(store),
					Net:           net,
					Solver:        solver,
					Elastic:       shmcaffe.DefaultElasticConfig(), // α=0.2, interval 1
					Termination:   shmcaffe.StopOnMaster,
					MaxIterations: itersPerEpoch * epochs,
					Loader:        loader,
				})
				if err != nil {
					return err
				}
				stats[r], err = worker.Run()
				return err
			}()
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("worker %d: %w", r, err)
		}
	}

	// 5. The trained model is the *global* weight Wg on the SMB server.
	client := shmcaffe.NewLocalClient(store)
	names := shmcaffe.SegmentNames{Job: "quickstart"}
	key, err := client.Lookup(names.Global())
	if err != nil {
		return err
	}
	h, err := client.Attach(key)
	if err != nil {
		return err
	}
	evalNet, err := shmcaffe.MLP("eval", 8, 16, 4)
	if err != nil {
		return err
	}
	buf := make([]byte, evalNet.NumParams()*4)
	if err := client.Read(h, 0, buf); err != nil {
		return err
	}
	weights := make([]float32, evalNet.NumParams())
	for i := range weights {
		bits := uint32(buf[4*i]) | uint32(buf[4*i+1])<<8 |
			uint32(buf[4*i+2])<<16 | uint32(buf[4*i+3])<<24
		weights[i] = math.Float32frombits(bits)
	}
	if err := evalNet.SetFlatWeights(weights); err != nil {
		return err
	}

	valLoader, err := shmcaffe.NewLoader(val, 64, seed)
	if err != nil {
		return err
	}
	b := valLoader.Next()
	loss, acc, err := evalNet.Evaluate(b.X, b.Labels, 1)
	if err != nil {
		return err
	}

	fmt.Println("SEASGD quickstart finished:")
	for r, s := range stats {
		fmt.Printf("  worker %d: %3d iterations, %3d global pushes, stopped by %q\n",
			r, s.Iterations, s.Pushes, s.StoppedBy)
	}
	fmt.Printf("  global weight Wg: val loss %.3f, top-1 accuracy %.1f%%\n", loss, 100*acc)
	return nil
}
