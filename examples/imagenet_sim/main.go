// imagenet_sim reproduces the paper's headline evaluation in miniature:
//
//  1. Functional: train the same task on all four platforms and compare
//     convergence (the paper's Fig. 8 on ImageNet/Inception-v1).
//
//  2. Timing: project full ImageNet runs with the calibrated performance
//     model (the paper's Table II / Fig. 9: ShmCaffe ≈10× Caffe-1GPU and
//     ≈3× Caffe-MPI at 16 GPUs).
//
//     go run ./examples/imagenet_sim
package main

import (
	"fmt"
	"log"
	"os"

	"shmcaffe"
	"shmcaffe/internal/bench"
	"shmcaffe/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Part 1: convergence across the four platforms (8 workers) ==")
	fmt.Println()
	opts := bench.DefaultConvergenceOptions()
	opts.Epochs = 5
	tab, err := bench.Fig8Convergence(8, opts)
	if err != nil {
		return err
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Println()
	fmt.Println("== Part 2: projected ImageNet training time (Inception-v1, 15 epochs) ==")
	fmt.Println()
	hw := shmcaffe.DefaultHardware()
	t2, err := bench.Table2TrainingTime(hw)
	if err != nil {
		return err
	}
	if err := t2.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Println()
	fmt.Println("== Part 3: where the time goes at 16 GPUs (Fig. 10) ==")
	fmt.Println()
	t10, err := bench.Fig10CompComm(hw)
	if err != nil {
		return err
	}
	if err := t10.Render(os.Stdout); err != nil {
		return err
	}

	// Headline numbers, computed directly through the public API.
	p := shmcaffe.PaperModels()[0] // inception_v1
	caffe1, err := shmcaffe.SimulateCaffe(p, 1, 20, hw)
	if err != nil {
		return err
	}
	shm16, err := shmcaffe.SimulateHSGD(p, []int{4, 4, 4, 4}, 40, hw)
	if err != nil {
		return err
	}
	cmpi16, err := shmcaffe.SimulateCaffeMPI(p, 16, 40, hw)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("headline: ShmCaffe-16 iteration %s ms vs Caffe-MPI-16 %s ms; ShmCaffe vs Caffe-1GPU speedup %.1fx (paper: 10.1x)\n",
		trace.Ms(shm16.Iter), trace.Ms(cmpi16.Iter),
		caffe1.Iter.Seconds()*16/shm16.Iter.Seconds())
	return nil
}
