// custom_pipeline demonstrates the full Caffe-style production pipeline:
//
//  1. build a file-backed corpus (the LMDB stand-in, as the paper converts
//     ImageNet to LMDB),
//
//  2. define the model declaratively (the prototxt stand-in),
//
//  3. train it with ShmCaffe-H,
//
//  4. snapshot the trained model and restore it for inference.
//
//     go run ./examples/custom_pipeline
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"shmcaffe"
	"shmcaffe/internal/dataset"
	"shmcaffe/internal/platform"
)

const modelSpec = `
name: pipeline-cnn
input: 1x8x8
conv out=8 kernel=3 pad=1
relu
lrn
maxpool window=2 stride=2
residual {
    conv out=8 kernel=3 pad=1
    batchnorm
    relu
    conv out=8 kernel=3 pad=1
    batchnorm
}
relu
gap
flatten
dense out=3
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "shmcaffe-pipeline")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// 1. Convert a corpus to the file-backed record store.
	corpus, err := shmcaffe.NewPatternDataset(3, 120, 1, 8, 0.2, 42)
	if err != nil {
		return err
	}
	dbPath := filepath.Join(dir, "corpus.db")
	if err := dataset.SaveToDB(corpus, dbPath); err != nil {
		return err
	}
	db, err := dataset.OpenDB(dbPath)
	if err != nil {
		return err
	}
	defer db.Close()
	fmt.Printf("corpus: %d samples in %s\n", db.Len(), dbPath)

	// 2. Declarative model.
	if _, err := shmcaffe.ParseNetSpec(modelSpec); err != nil {
		return err
	}
	train, val, err := shmcaffe.SplitDataset(db, 0.8)
	if err != nil {
		return err
	}

	// 3. Train with ShmCaffe-H (2 groups of 2).
	solver := shmcaffe.DefaultSolverConfig()
	solver.BaseLR = 0.05
	cfg := shmcaffe.TrainConfig{
		Workers:   4,
		GroupSize: 2,
		Model:     func(string) (*shmcaffe.Network, error) { return shmcaffe.ParseNetSpec(modelSpec) },
		Train:     train,
		Val:       val,
		BatchSize: 6,
		Epochs:    6,
		Solver:    solver,
		Elastic:   shmcaffe.DefaultElasticConfig(),
		Seed:      42,
	}
	res, err := (platform.ShmCaffeH{}).Train(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("trained: final accuracy %.1f%%, val loss %.3f\n", 100*res.FinalAcc, res.FinalLoss)

	// 4. Snapshot + restore.
	trained, err := shmcaffe.ParseNetSpec(modelSpec)
	if err != nil {
		return err
	}
	if err := trained.SetFlatWeights(res.FinalWeights); err != nil {
		return err
	}
	var snap bytes.Buffer
	if err := shmcaffe.SaveCheckpoint(&snap, trained); err != nil {
		return err
	}
	snapBytes := snap.Len()
	restored, err := shmcaffe.ParseNetSpec(modelSpec)
	if err != nil {
		return err
	}
	name, err := shmcaffe.LoadCheckpoint(&snap, restored)
	if err != nil {
		return err
	}
	loader, err := shmcaffe.NewLoader(val, 32, 7)
	if err != nil {
		return err
	}
	b := loader.Next()
	loss, acc, err := restored.Evaluate(b.X, b.Labels, 1)
	if err != nil {
		return err
	}
	fmt.Printf("restored %q from snapshot (%d bytes): loss %.3f, accuracy %.1f%%\n",
		name, snapBytes, loss, 100*acc)
	return nil
}
