// scalability reproduces the paper's Sec. IV-E study: computation vs
// communication per iteration for the four CNN models as worker count and
// grouping vary (Tables V/VI, Figs. 12–15), plus the VGG16 anti-pattern
// (multi-node scaling that loses to a single GPU).
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"log"
	"os"

	"shmcaffe"
	"shmcaffe/internal/bench"
	"shmcaffe/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	hw := shmcaffe.DefaultHardware()

	fmt.Println("== ShmCaffe-A: comp/comm per model and worker count (Table V, Figs. 12-13) ==")
	fmt.Println()
	t5, err := bench.Table5ShmCaffeA(hw)
	if err != nil {
		return err
	}
	if err := t5.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Println()
	fmt.Println("== ShmCaffe-H: comp/comm per model and (S#,A#) layout (Table VI, Fig. 14) ==")
	fmt.Println()
	t6, err := bench.Table6ShmCaffeH(hw)
	if err != nil {
		return err
	}
	if err := t6.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Println()
	fmt.Println("== A vs H head to head (Fig. 15) ==")
	fmt.Println()
	t15, err := bench.Fig15AvsH(hw)
	if err != nil {
		return err
	}
	if err := t15.Render(os.Stdout); err != nil {
		return err
	}

	// The VGG16 anti-pattern, via the public API.
	vgg := shmcaffe.PaperModels()[3]
	two, err := shmcaffe.SimulateSEASGD(vgg, 2, 30, shmcaffe.DefaultHardware())
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("VGG16 anti-pattern: one 2-worker iteration takes %s ms while two 1-GPU iterations take %s ms —\n",
		trace.Ms(two.Iter), trace.Ms(2*vgg.CompTime))
	fmt.Println("short compute + huge parameters means multi-node scaling loses (paper Sec. IV-E).")
	return nil
}
