package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestForCoversRange checks every index is visited exactly once across a
// spread of sizes, grains, and pool widths, including non-grain-aligned n.
func TestForCoversRange(t *testing.T) {
	for _, width := range []int{1, 2, 3, 4, 8} {
		p := NewPool(width)
		for _, n := range []int{0, 1, 2, 7, 64, 1000, 1023, 4096} {
			for _, grain := range []int{0, 1, 3, 64, 5000} {
				visits := make([]int32, n)
				p.For(n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("width=%d n=%d grain=%d: bad range [%d,%d)", width, n, grain, lo, hi)
						return
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&visits[i], 1)
					}
				})
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("width=%d n=%d grain=%d: index %d visited %d times", width, n, grain, i, v)
					}
				}
			}
		}
		p.Close()
	}
}

// TestChunkSizeDeterministic pins the partition contract: boundaries depend
// only on (n, grain, width).
func TestChunkSizeDeterministic(t *testing.T) {
	cases := []struct {
		n, grain, width, want int
	}{
		{100, 1, 4, 25},
		{100, 30, 4, 30}, // grain floor wins
		{101, 1, 4, 26},  // ceil split
		{8, 1, 8, 1},
		{7, 0, 2, 4}, // grain<1 treated as 1
		{1 << 20, 256, 8, 1 << 17},
	}
	for _, c := range cases {
		if got := chunkSize(c.n, c.grain, c.width); got != c.want {
			t.Errorf("chunkSize(%d,%d,%d) = %d, want %d", c.n, c.grain, c.width, got, c.want)
		}
	}
}

// TestForReuse hammers one pool from many goroutines at once — the reuse
// path the tensor kernels and SMB server share. Run under -race in tier 2.
func TestForReuse(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const goroutines = 8
	const rounds = 50
	const n = 512
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sum int64
			for r := 0; r < rounds; r++ {
				var total atomic.Int64
				p.For(n, 16, func(lo, hi int) {
					var s int64
					for i := lo; i < hi; i++ {
						s += int64(i)
					}
					total.Add(s)
				})
				sum = total.Load()
			}
			if want := int64(n * (n - 1) / 2); sum != want {
				t.Errorf("sum = %d, want %d", sum, want)
			}
		}()
	}
	wg.Wait()
}

// TestForNested checks that a For issued from inside a worker completes
// rather than deadlocking the pool (the helping-wait path).
func TestForNested(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var count atomic.Int64
	p.For(8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p.For(16, 1, func(ilo, ihi int) {
				count.Add(int64(ihi - ilo))
			})
		}
	})
	if got := count.Load(); got != 8*16 {
		t.Fatalf("nested For visited %d indices, want %d", got, 8*16)
	}
}

// TestDefaultPool exercises the shared pool (never closed; long-lived
// workers by design).
func TestDefaultPool(t *testing.T) {
	var total atomic.Int64
	For(100, 10, func(lo, hi int) {
		total.Add(int64(hi - lo))
	})
	if total.Load() != 100 {
		t.Fatalf("default For covered %d of 100", total.Load())
	}
	if Default().Width() < 1 {
		t.Fatalf("default width %d", Default().Width())
	}
}

// countRanger is a Ranger whose pointer form dispatches without allocating.
type countRanger struct{ total atomic.Int64 }

func (c *countRanger) Range(lo, hi int) { c.total.Add(int64(hi - lo)) }

// TestForRangerCoversRange checks ForRanger visits every index exactly once
// with the same deterministic partition as For.
func TestForRangerCoversRange(t *testing.T) {
	for _, width := range []int{1, 2, 4} {
		p := NewPool(width)
		for _, n := range []int{0, 1, 7, 64, 1023} {
			for _, grain := range []int{0, 1, 64} {
				var c countRanger
				p.ForRanger(n, grain, &c)
				if got := c.total.Load(); got != int64(n) {
					t.Fatalf("width=%d n=%d grain=%d: ForRanger covered %d of %d", width, n, grain, got, n)
				}
			}
		}
		p.Close()
	}
}

// nestRanger issues a nested ForRanger from inside each range.
type nestRanger struct {
	p     *Pool
	inner countRanger
}

func (r *nestRanger) Range(lo, hi int) {
	for i := lo; i < hi; i++ {
		r.p.ForRanger(16, 1, &r.inner)
	}
}

// TestForRangerNested checks the helping-wait path holds for Ranger
// dispatch too.
func TestForRangerNested(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	r := &nestRanger{p: p}
	p.ForRanger(8, 1, r)
	if got := r.inner.total.Load(); got != 8*16 {
		t.Fatalf("nested ForRanger visited %d indices, want %d", got, 8*16)
	}
}

// TestForRangerZeroAlloc pins the satellite fix: a dispatching ForRanger
// call (width > 1, multiple ranges, pooled join state) allocates nothing in
// steady state. Before the fix every For paid one heap allocation for the
// escaping WaitGroup plus whatever its closure captured.
func TestForRangerZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	p := NewPool(4)
	defer p.Close()
	var c countRanger
	for i := 0; i < 32; i++ { // warm the join pool
		p.ForRanger(1024, 8, &c)
	}
	allocs := testing.AllocsPerRun(200, func() {
		p.ForRanger(1024, 8, &c)
	})
	if allocs != 0 {
		t.Fatalf("ForRanger dispatch allocates %.2f objects/op, want 0", allocs)
	}
}

// TestForZeroAllocNonCapturingClosure pins the same property for For with a
// closure that captures nothing (the compiler statically allocates it).
func TestForZeroAllocNonCapturingClosure(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	p := NewPool(4)
	defer p.Close()
	for i := 0; i < 32; i++ {
		p.For(1024, 8, func(lo, hi int) {})
	}
	allocs := testing.AllocsPerRun(200, func() {
		p.For(1024, 8, func(lo, hi int) {})
	})
	if allocs != 0 {
		t.Fatalf("For dispatch allocates %.2f objects/op, want 0", allocs)
	}
}

func BenchmarkForDispatch(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.For(1024, 64, func(lo, hi int) {})
	}
}

func BenchmarkForRangerDispatch(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	var c countRanger
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ForRanger(1024, 64, &c)
	}
}
