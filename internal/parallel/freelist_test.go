package parallel

import (
	"runtime"
	"sync"
	"testing"
)

// TestFreelistRoundTrip checks the basic recycle contract: a Put entry comes
// back from Get, and an empty list falls back to allocating a zero value.
func TestFreelistRoundTrip(t *testing.T) {
	f := NewFreelist[int](2)
	p := f.Get()
	if p == nil || *p != 0 {
		t.Fatalf("Get on empty list = %v, want new zero value", p)
	}
	*p = 42
	f.Put(p)
	q := f.Get()
	if q != p {
		t.Fatalf("Get after Put returned a different pointer (%p vs %p)", q, p)
	}
	if *q != 42 {
		t.Fatalf("recycled entry = %d, want 42 (Freelist must not zero entries)", *q)
	}
}

// TestFreelistDropsWhenFull checks Put never blocks: entries past the
// capacity are dropped for the GC rather than wedging the caller.
func TestFreelistDropsWhenFull(t *testing.T) {
	f := NewFreelist[int](1)
	f.Put(new(int))
	done := make(chan struct{})
	go func() {
		f.Put(new(int)) // would deadlock on an unbuffered/blocking design
		close(done)
	}()
	<-done
}

// TestFreelistSurvivesGC pins the property that justifies Freelist over
// sync.Pool: recycled entries stay available across garbage collections, so
// pooled hot paths stay zero-alloc even when the benchmark harness (or a
// real workload) collects between calls. sync.Pool's victim cache empties
// after two GCs, which is exactly what the forced pair below would expose.
func TestFreelistSurvivesGC(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	f := NewFreelist[sync.WaitGroup](4)
	f.Put(f.Get()) // seed one recycled entry
	allocs := testing.AllocsPerRun(10, func() {
		runtime.GC()
		runtime.GC()
		f.Put(f.Get())
	})
	if allocs != 0 {
		t.Fatalf("Freelist Get/Put allocates %.2f objects/op across GC, want 0", allocs)
	}
}

// TestForRangerZeroAllocAcrossGC is TestForRangerZeroAlloc with forced
// collections inside the measured loop: the join-state recycling must hold
// across GC, not just between consecutive calls. The sync.Pool-based join
// state this replaced passed the plain guard but failed this one.
func TestForRangerZeroAllocAcrossGC(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	p := NewPool(4)
	defer p.Close()
	var c countRanger
	for i := 0; i < 32; i++ { // warm the join freelist
		p.ForRanger(1024, 8, &c)
	}
	allocs := testing.AllocsPerRun(10, func() {
		runtime.GC()
		runtime.GC()
		p.ForRanger(1024, 8, &c)
	})
	if allocs != 0 {
		t.Fatalf("ForRanger dispatch allocates %.2f objects/op across GC, want 0", allocs)
	}
}
