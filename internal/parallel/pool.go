// Package parallel provides the bounded worker-pool runtime underneath the
// compute and data-path hot loops. The design goals, in order:
//
//  1. Determinism. For(n, grain, fn) partitions [0, n) into contiguous
//     ranges whose boundaries depend only on (n, grain, pool width) — never
//     on runtime scheduling. A kernel that writes disjoint outputs per range
//     and keeps a fixed accumulation order inside each range therefore
//     produces bit-identical results at every pool width and on every run.
//  2. No per-call goroutine spawn. Workers are long-lived and pulled from a
//     reused pool; a For call only pushes range descriptors onto a channel.
//     Steady-state dispatch allocates nothing.
//  3. No deadlock under nesting. A For issued from inside a worker helps
//     drain the shared queue instead of blocking, so recursive parallelism
//     degrades to inline execution rather than wedging the pool.
package parallel

import (
	"runtime"
	"sync"
)

// Ranger is the allocation-free dispatch target: a kernel packages its
// operands in a (typically pooled) struct and implements Range(lo, hi).
// Storing a pointer in the interface does not allocate, unlike a closure
// that captures its operands, so ForRanger keeps the steady-state dispatch
// path at zero allocations per call end to end.
type Ranger interface {
	Range(lo, hi int)
}

// task is one contiguous index range handed to a worker. Exactly one of fn
// and r is set.
type task struct {
	fn     func(lo, hi int)
	r      Ranger
	lo, hi int
	done   *sync.WaitGroup
}

// run executes the task's range and signals completion.
func (t task) run() {
	if t.fn != nil {
		t.fn(t.lo, t.hi)
	} else {
		t.r.Range(t.lo, t.hi)
	}
	t.done.Done()
}

// joinFree recycles the per-For join state. A WaitGroup is reusable once
// Wait has returned, so recycling it removes the one heap allocation a
// dispatching For call used to pay (the WaitGroup escaped through the task
// channel). It is a Freelist rather than a sync.Pool so the zero-alloc
// dispatch contract survives GC cycles (see freelist.go).
var joinFree = NewFreelist[sync.WaitGroup](16)

// Pool is a fixed-width worker pool. The zero value is not usable; call
// NewPool. A Pool of width w runs at most w ranges concurrently: w-1
// long-lived worker goroutines plus the calling goroutine, which always
// participates (so a width-1 pool is plain inline execution).
type Pool struct {
	width int
	jobs  chan task

	closeOnce sync.Once
	wg        sync.WaitGroup // joins the worker goroutines on Close
}

// NewPool returns a pool of the given width (minimum 1). Widths above 1
// spawn width-1 persistent workers that live until Close.
func NewPool(width int) *Pool {
	if width < 1 {
		width = 1
	}
	p := &Pool{
		width: width,
		// Buffer a few tasks per worker so dispatch rarely blocks; the
		// select-default fallback in For covers the full case.
		jobs: make(chan task, 4*width),
	}
	for i := 1; i < width; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for t := range p.jobs {
				t.run()
			}
		}()
	}
	return p
}

// Width returns the pool's concurrency width.
func (p *Pool) Width() int { return p.width }

// Close shuts the worker goroutines down and waits for them to exit. For
// must not be called after (or concurrently with) Close. The package-level
// default pool is never closed; it lives for the process.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		close(p.jobs)
		p.wg.Wait()
	})
}

// chunkSize returns the deterministic range length for an n-element For:
// an even split across the pool, floored at grain so tiny slices don't pay
// dispatch overhead. It depends only on (n, grain, width).
func chunkSize(n, grain, width int) int {
	if grain < 1 {
		grain = 1
	}
	chunk := (n + width - 1) / width
	if chunk < grain {
		chunk = grain
	}
	return chunk
}

// For partitions [0, n) into contiguous ranges of chunkSize(n, grain,
// p.Width()) elements (the last range absorbs the remainder) and runs
// fn(lo, hi) once per range, concurrently across the pool. It returns when
// every range has completed. fn must be safe to call concurrently on
// disjoint ranges; ranges never overlap.
//
// The partition is a pure function of (n, grain, pool width), which is the
// determinism contract the numeric kernels rely on: each output element is
// produced entirely inside one range, so its floating-point accumulation
// order is fixed regardless of how ranges are scheduled.
func (p *Pool) For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	chunk := chunkSize(n, grain, p.width)
	if chunk >= n || p.width == 1 {
		fn(0, n)
		return
	}
	p.dispatch(n, chunk, fn, nil)
}

// ForRanger is For with a Ranger target instead of a closure: it runs
// r.Range(lo, hi) once per partition range with the identical deterministic
// partition. Kernels on zero-alloc paths hand in a pooled operand struct so
// the whole dispatch — partition, queueing, join — allocates nothing.
//shm:hotpath
func (p *Pool) ForRanger(n, grain int, r Ranger) {
	if n <= 0 {
		return
	}
	chunk := chunkSize(n, grain, p.width)
	if chunk >= n || p.width == 1 {
		r.Range(0, n)
		return
	}
	p.dispatch(n, chunk, nil, r)
}

// runRange invokes whichever dispatch target is set on [lo, hi).
func runRange(fn func(lo, hi int), r Ranger, lo, hi int) {
	if fn != nil {
		fn(lo, hi)
	} else {
		r.Range(lo, hi)
	}
}

// dispatch fans ranges of [0, n) out across the pool and joins them. The
// join state comes from joinFree so a dispatching call allocates nothing.
func (p *Pool) dispatch(n, chunk int, fn func(lo, hi int), r Ranger) {
	done := joinFree.Get()
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi >= n {
			// Caller runs the final range itself — it would otherwise idle.
			runRange(fn, r, lo, n)
			continue
		}
		done.Add(1)
		select {
		case p.jobs <- task{fn, r, lo, hi, done}:
		default:
			// Queue full (deep nesting or a saturated pool): run inline so
			// progress never depends on a free worker.
			runRange(fn, r, lo, hi)
			done.Done()
		}
	}
	// Help drain the queue before blocking: any task still queued — ours or
	// a nested caller's — can run here, which keeps nested For calls from
	// deadlocking when every worker is itself waiting on subtasks.
	for {
		select {
		case t := <-p.jobs:
			t.run()
			continue
		default:
		}
		break
	}
	done.Wait()
	joinFree.Put(done)
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the shared process-wide pool, created on first use with
// width GOMAXPROCS. Its workers are long-lived by design (see package doc);
// it is never closed.
func Default() *Pool {
	defaultOnce.Do(func() {
		defaultPool = NewPool(runtime.GOMAXPROCS(0))
	})
	return defaultPool
}

// For runs fn over [0, n) on the default pool; see Pool.For.
func For(n, grain int, fn func(lo, hi int)) {
	Default().For(n, grain, fn)
}

// ForRanger runs r over [0, n) on the default pool; see Pool.ForRanger.
func ForRanger(n, grain int, r Ranger) {
	Default().ForRanger(n, grain, r)
}

// DefaultWidth returns the default pool's width. Kernel dispatchers use it
// to skip parallel-friendly (but scalar-hostile) code paths when the
// process effectively runs single-threaded.
func DefaultWidth() int { return Default().Width() }
