//go:build !race

package parallel

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
