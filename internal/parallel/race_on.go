//go:build race

package parallel

// raceEnabled reports whether the race detector is compiled in; the
// zero-alloc guards skip under -race because instrumentation allocates.
const raceEnabled = true
