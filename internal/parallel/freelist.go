package parallel

// Freelist is a fixed-capacity free list of *T for zero-alloc hot paths.
// It exists because sync.Pool is the wrong tool under a benchmark or a
// GC-heavy workload: every GC cycle demotes the pool's contents to a
// victim cache and then drops them, so a steady-state "zero-alloc" path
// quietly re-allocates its pooled state after each collection (this was
// the stray 8 B/op on gemm/parallel/256 in BENCH_kernels.json). A
// buffered channel is invisible to the collector: entries stay live until
// explicitly taken, so a warmed list never allocates again, at the cost
// of pinning at most `capacity` small structs for the process lifetime —
// the right trade for the handful of fixed-size dispatch structs the
// kernels recycle, and exactly the wrong one for anything unbounded.
//
// Get and Put are single non-blocking channel operations: safe for
// concurrent use, never blocking, allocation-free on hit. An overflowing
// Put drops the entry for the collector to reclaim; a draining Get falls
// back to new(T).
type Freelist[T any] struct {
	ch chan *T
}

// NewFreelist returns a Freelist holding at most capacity entries.
func NewFreelist[T any](capacity int) *Freelist[T] {
	return &Freelist[T]{ch: make(chan *T, capacity)}
}

// Get returns a recycled *T, or a fresh zero value on a miss. The caller
// owns the full struct and must reset any fields it relies on; Put does
// not clear entries.
func (f *Freelist[T]) Get() *T {
	select {
	case p := <-f.ch:
		return p
	default:
		// Miss path: the one allocation this type is allowed; steady
		// state always hits the channel once the list is warm.
		return new(T)
	}
}

// Put recycles p. The caller must not touch p afterwards. Entries whose
// fields reference caller memory should be zeroed before Put so the list
// never pins foreign arrays.
func (f *Freelist[T]) Put(p *T) {
	select {
	case f.ch <- p:
	default:
	}
}
