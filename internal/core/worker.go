package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"shmcaffe/internal/dataset"
	"shmcaffe/internal/mpi"
	"shmcaffe/internal/nn"
	"shmcaffe/internal/smb"
	"shmcaffe/internal/telemetry"
)

// WorkerConfig configures one SEASGD worker (one "deep learning worker" of
// the paper: an MPI process training a model replica).
type WorkerConfig struct {
	// Job names the SMB segment family shared by all workers of this run.
	Job string
	// Comm is this worker's MPI endpoint; rank 0 is the master worker.
	Comm *mpi.Comm
	// Client is the connection to the SMB server.
	Client smb.Client
	// Net is this worker's model replica.
	Net *nn.Network
	// Solver configures the local Caffe-style SGD (Eq. 2).
	Solver nn.SolverConfig
	// Elastic carries moving_rate and update_interval.
	Elastic ElasticConfig
	// Termination selects the end-time alignment criterion.
	Termination TerminationPolicy
	// MaxIterations is the per-worker iteration budget (the "specified
	// number of iterations" of Sec. III-E).
	MaxIterations int
	// Loader provides this worker's data shard.
	Loader *dataset.Loader

	// DisableOverlap pushes the global update inline instead of in the
	// update thread — the ablation of Fig. 6's communication hiding.
	DisableOverlap bool
	// HideGlobalRead serves T1 from a cached copy refreshed by the update
	// thread instead of a fresh read. The paper deliberately does NOT do
	// this ("the learning performance deteriorates due to the delayed
	// parameter problem"); the flag exists to measure that trade-off.
	HideGlobalRead bool
	// ProgressEvery is the number of iterations between termination
	// checks (default 1).
	ProgressEvery int
	// LivenessTimeout enables crash-aware termination alignment: each
	// worker heartbeats through the control segment, and a peer whose beat
	// has not advanced for longer than this is treated as dead by the
	// termination predicate (see ShouldStopAlive). Zero disables liveness
	// tracking — the paper's fault-free protocol, byte-for-byte.
	LivenessTimeout time.Duration
	// Now supplies time for the timing breakdown (defaults to time.Now).
	Now func() time.Time
	// Hook, if non-nil, runs after every completed iteration (0-based).
	// Experiment harnesses use it to snapshot accuracy curves. Returning
	// an error aborts training.
	Hook func(w *Worker, iter int) error
	// Telemetry, if non-nil, records the Fig. 6 phase spans, the per-read
	// T1 staleness, and the push/iteration counters. Nil disables all
	// recording at the cost of one branch per record.
	Telemetry *telemetry.Trainer
}

// Validate checks the configuration.
func (c *WorkerConfig) Validate() error {
	if c.Comm == nil {
		return fmt.Errorf("worker needs an MPI comm (or use NewWorkerPolling): %w", ErrConfig)
	}
	return c.validateCommon()
}

// validateCommon checks everything except the communicator.
func (c *WorkerConfig) validateCommon() error {
	if c.Client == nil || c.Net == nil || c.Loader == nil {
		return fmt.Errorf("worker needs client, net and loader: %w", ErrConfig)
	}
	if c.Job == "" {
		return fmt.Errorf("worker needs a job name: %w", ErrConfig)
	}
	if c.MaxIterations < 1 {
		return fmt.Errorf("max iterations %d < 1: %w", c.MaxIterations, ErrConfig)
	}
	if err := c.Elastic.Validate(); err != nil {
		return err
	}
	if err := c.Solver.Validate(); err != nil {
		return err
	}
	return c.Termination.Validate()
}

// RunStats reports one worker's training outcome, including the Eq. (8)
// timing decomposition measured over the run.
type RunStats struct {
	Rank       int
	Iterations int
	// LossHistory holds the minibatch loss of every iteration.
	LossHistory []float64
	// CompTime is ΣT_comp (forward+backward+local update, T4+T5).
	CompTime time.Duration
	// ExposedCommTime is Σ(T_rgw + T_ulw): the global read and local
	// elastic update that the design deliberately leaves on the critical
	// path (T1+T2).
	ExposedCommTime time.Duration
	// BlockedTime is the T.A5 stall: main thread waiting because the
	// update thread's push outlived the compute phase.
	BlockedTime time.Duration
	// Pushes counts global-weight accumulations issued (T.A2).
	Pushes int
	// StoppedBy records which condition ended training.
	StoppedBy string
	// DeadPeers lists the ranks this worker considered dead when it
	// stopped (liveness tracking enabled only).
	DeadPeers []int
}

// Worker runs SEASGD training for one rank. Create with NewWorker, then
// call Run once.
type Worker struct {
	cfg     WorkerConfig
	rank    int
	buffers *JobBuffers
	solver  *nn.SGDSolver

	// Exchange state shared between the main and update threads; mu is
	// the Fig. 6 lock making T1+T2 and T.A1–T.A4 mutually exclusive.
	mu           sync.Mutex
	pendingDelta []float32 // guarded by mu
	cachedGlobal []float32 // HideGlobalRead mode: last Wg seen; guarded by mu
	pushErr      error     // guarded by mu
	pushes       int       // guarded by mu

	// Staleness probe scratch (telemetry only): progress counters seen at
	// the previous and current T1 read. Used by the main thread under mu.
	lastProgress []int64
	progressNow  []int64

	// Liveness view (LivenessTimeout > 0 only); used by the main thread
	// during termination checks.
	liveness *livenessTracker
	beats    []int64
}

// NewWorker validates cfg and performs the collective buffer bootstrap
// (Fig. 2). All ranks of the communicator must call NewWorker concurrently.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ProgressEvery < 1 {
		cfg.ProgressEvery = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	elems := cfg.Net.NumParams()
	// Rank 0's current replica weights seed Wg.
	var seed []float32
	if cfg.Comm.Rank() == 0 {
		seed = cfg.Net.FlatWeights(nil)
	}
	buffers, err := SetupBuffers(cfg.Comm, cfg.Client, cfg.Job, elems, seed)
	if err != nil {
		return nil, fmt.Errorf("rank %d setup: %w", cfg.Comm.Rank(), err)
	}
	cfg.Telemetry.NameWorker(cfg.Comm.Rank())
	return newWorkerFromBuffers(cfg, cfg.Comm.Rank(), buffers), nil
}

// newWorkerFromBuffers finishes construction once the buffer bootstrap
// (MPI-collective or polling) has produced the JobBuffers.
func newWorkerFromBuffers(cfg WorkerConfig, rank int, buffers *JobBuffers) *Worker {
	elems := buffers.Elems()
	w := &Worker{
		cfg:          cfg,
		rank:         rank,
		buffers:      buffers,
		solver:       nn.NewSGDSolver(cfg.Net, cfg.Solver),
		pendingDelta: make([]float32, elems),
		cachedGlobal: make([]float32, elems),
		lastProgress: make([]int64, buffers.WorldSize()),
		progressNow:  make([]int64, buffers.WorldSize()),
	}
	if cfg.LivenessTimeout > 0 {
		w.liveness = newLivenessTracker(rank, buffers.WorldSize(), cfg.LivenessTimeout, cfg.Now)
		w.beats = make([]int64, buffers.WorldSize())
	}
	return w
}

// Buffers exposes the worker's SMB view (used by tests and diagnostics).
func (w *Worker) Buffers() *JobBuffers { return w.buffers }

// Run executes the SEASGD training loop (Fig. 6) until the termination
// criterion fires. It must be called exactly once.
func (w *Worker) Run() (stats *RunStats, err error) {
	if w.liveness != nil {
		// Obituary on the way out of a failed run: peers see the tombstone
		// at their next check instead of burning a liveness timeout.
		// Best-effort — a worker dying because the server is unreachable
		// cannot write it, which is exactly the case staleness covers.
		defer func() {
			if err != nil {
				w.buffers.MarkDead()
			}
		}()
	}
	cfg := &w.cfg
	rank := w.rank
	stats = &RunStats{Rank: rank}
	elems := w.buffers.Elems()
	tel := cfg.Telemetry
	mainTID := telemetry.MainTID(rank)

	local := make([]float32, elems)
	global := make([]float32, elems)

	// Start from the shared initial weights so every replica of the job
	// begins at Wg (the master seeded it).
	if err := w.buffers.ReadGlobal(global); err != nil {
		return nil, err
	}
	if err := cfg.Net.SetFlatWeights(global); err != nil {
		return nil, err
	}
	copy(w.cachedGlobal, global)

	// Spawn the update thread (Fig. 6). wake carries one pending push;
	// capacity 1 so a second wake while a push is in flight blocks the
	// main thread — the T.A5 back-pressure.
	wake := make(chan struct{}, 1)
	stop := make(chan struct{})
	done := make(chan struct{})
	if !cfg.DisableOverlap {
		go w.updateThread(wake, stop, done)
	} else {
		close(done)
	}
	var stopOnce sync.Once
	shutdown := func() {
		stopOnce.Do(func() { close(stop) })
		<-done
	}
	defer shutdown()

	hardCap := cfg.MaxIterations * 100
	stoppedBy := "budget"
	iter := 0
loop:
	for ; iter < hardCap; iter++ {
		if iter%cfg.Elastic.UpdateInterval == 0 {
			// T.A5: the main thread blocks here whenever the update
			// thread's previous push outlived the compute phase.
			t0 := cfg.Now()
			spA5 := tel.Begin(mainTID, telemetry.PhaseTA5)
			w.mu.Lock()
			spA5.End()
			tLocked := cfg.Now()
			// T1: obtain the global weight. Hidden-read mode serves T2
			// straight from cachedGlobal (we hold mu; the fused step only
			// reads it), so even the staging copy is gone.
			spT1 := tel.Begin(mainTID, telemetry.PhaseT1)
			var readErr error
			wg := global
			if cfg.HideGlobalRead {
				wg = w.cachedGlobal
				tel.HiddenHit()
			} else {
				readErr = w.buffers.ReadGlobal(global)
			}
			w.observeStaleness()
			spT1.End()
			if readErr != nil {
				w.mu.Unlock()
				return nil, fmt.Errorf("rank %d iter %d: %w", rank, iter, readErr)
			}
			// T2: elastic update of the local weight, Eqs. (5)+(6), fused
			// into one sweep that writes the increment directly into
			// pendingDelta — the former per-exchange handoff copy to the
			// update thread is gone.
			spT2 := tel.Begin(mainTID, telemetry.PhaseT2)
			cfg.Net.FlatWeights(local)
			t2err := FusedWeightStep(w.pendingDelta, local, wg, cfg.Elastic.MovingRate)
			if t2err == nil {
				t2err = cfg.Net.SetFlatWeights(local)
			}
			spT2.End()
			if t2err != nil {
				w.mu.Unlock()
				return nil, t2err
			}
			w.mu.Unlock()
			t1 := cfg.Now()
			stats.BlockedTime += tLocked.Sub(t0)
			stats.ExposedCommTime += t1.Sub(tLocked)

			// T3: hand the increment to the update thread — or push
			// inline in the no-overlap ablation.
			if cfg.DisableOverlap {
				tp0 := cfg.Now()
				// The push runs inline on the main thread in this
				// ablation, so its spans land on the main track —
				// rendering the lost overlap visibly in the trace.
				if err := w.pushPending(mainTID); err != nil {
					return nil, fmt.Errorf("rank %d iter %d push: %w", rank, iter, err)
				}
				stats.ExposedCommTime += cfg.Now().Sub(tp0)
			} else {
				wake <- struct{}{}
			}
		}

		// T4 + T5: train one minibatch and apply the gradient (Eq. 2).
		tc0 := cfg.Now()
		spT45 := tel.Begin(mainTID, telemetry.PhaseT45)
		batch := cfg.Loader.Next()
		loss, err := w.solver.Step(batch.X, batch.Labels)
		spT45.End()
		if err != nil {
			return nil, fmt.Errorf("rank %d iter %d train: %w", rank, iter, err)
		}
		stats.CompTime += cfg.Now().Sub(tc0)
		stats.LossHistory = append(stats.LossHistory, loss)
		tel.IncIteration()

		// Check for an asynchronous push failure.
		w.mu.Lock()
		pushErr := w.pushErr
		w.mu.Unlock()
		if pushErr != nil {
			return nil, fmt.Errorf("rank %d update thread: %w", rank, pushErr)
		}

		if cfg.Hook != nil {
			if err := cfg.Hook(w, iter); err != nil {
				return nil, fmt.Errorf("rank %d hook: %w", rank, err)
			}
		}

		// Progress sharing and termination alignment (Sec. III-E).
		completed := int64(iter + 1)
		if err := w.buffers.ReportProgress(completed); err != nil {
			return nil, err
		}
		if w.liveness != nil {
			// Heartbeat rides the same cadence as progress. Best-effort:
			// the ReportProgress just above already surfaced any genuine
			// transport failure.
			w.buffers.Beat(completed)
		}
		if (iter+1)%cfg.ProgressEvery == 0 || iter+1 >= cfg.MaxIterations {
			stopNow, by, err := w.checkTermination(completed)
			if err != nil {
				return nil, err
			}
			if stopNow {
				stoppedBy = by
				iter++
				break loop
			}
		}

		// On real hardware each worker owns a GPU and progresses at a
		// similar rate; on an oversubscribed CPU host the Go scheduler
		// can let one worker run thousands of iterations per quantum.
		// Yield so the alignment protocol sees comparable progress.
		runtime.Gosched()
	}

	stats.Iterations = iter
	stats.StoppedBy = stoppedBy
	if w.liveness != nil {
		stats.DeadPeers = w.liveness.deadRanks(nil)
	}
	// Finish the update thread (including any queued final push) before
	// reading the push counter, so the count is exact.
	shutdown()
	w.mu.Lock()
	stats.Pushes = w.pushes
	pushErr := w.pushErr
	w.mu.Unlock()
	if pushErr != nil {
		return nil, fmt.Errorf("rank %d update thread: %w", rank, pushErr)
	}
	return stats, nil
}

// checkTermination evaluates the alignment criterion.
func (w *Worker) checkTermination(completed int64) (bool, string, error) {
	cfg := &w.cfg
	if cfg.Termination == StopIndependently {
		if completed >= int64(cfg.MaxIterations) {
			return true, "budget", nil
		}
		return false, "", nil
	}
	// A raised stop flag overrides everything.
	if stop, err := w.buffers.StopRequested(); err != nil {
		return false, "", err
	} else if stop {
		return true, "flag", nil
	}
	progress, err := w.buffers.Progress()
	if err != nil {
		return false, "", err
	}
	// Liveness view: exclude dead peers from the predicate so a crashed
	// worker's frozen counter cannot hold the survivors hostage. A failed
	// heartbeat read keeps the previous view (stale but safe: death is
	// monotone, so the view can only lag, never flap back to alive).
	var alive []bool
	if w.liveness != nil {
		if err := w.buffers.HeartbeatsInto(w.beats); err == nil {
			alive = w.liveness.observe(w.beats)
		} else {
			alive = w.liveness.alive
		}
	}
	if cfg.Termination.ShouldStopAlive(progress, alive, int64(cfg.MaxIterations)) {
		// Raise the flag so stragglers stop at their next check even if
		// their own predicate evaluation lags.
		if err := w.buffers.SignalStop(); err != nil {
			return false, "", err
		}
		return true, cfg.Termination.String(), nil
	}
	return false, "", nil
}

// observeStaleness records how many iterations the other workers completed
// since this worker's previous T1 read — the per-read staleness bound that
// governs asynchronous SEASGD convergence. Caller holds w.mu. Telemetry off
// or a probe failure records nothing (the probe must never fail training).
func (w *Worker) observeStaleness() {
	tel := w.cfg.Telemetry
	if tel == nil {
		return
	}
	if err := w.buffers.ProgressInto(w.progressNow); err != nil {
		return
	}
	var stale int64
	for y, now := range w.progressNow {
		if y == w.rank {
			continue
		}
		if d := now - w.lastProgress[y]; d > 0 {
			stale += d
		}
	}
	tel.ObserveStaleness(stale)
	copy(w.lastProgress, w.progressNow)
}

// pushPending sends the pending increment to the server under the lock,
// recording the T.A1–T.A4 spans on track tid (the update thread normally;
// the main track in the DisableOverlap ablation).
func (w *Worker) pushPending(tid int32) error {
	tel := w.cfg.Telemetry
	// T.A1: acquire the exchange lock.
	spA1 := tel.Begin(tid, telemetry.PhaseTA1)
	w.mu.Lock()
	spA1.End()
	defer w.mu.Unlock()
	// Cross-process trace: when the client can carry trace contexts on its
	// wire frames, root a fresh trace at this push. The T.A3 span below is
	// the root; the server's srv.dispatch/srv.acc/srv.chunk spans for the
	// frames of this push become its children in the merged fleet trace.
	var tc telemetry.TraceContext
	if carrier := w.buffers.TraceCarrier(); tel != nil && carrier != nil {
		id := telemetry.NextSpanID(uint64(w.rank+1) << 48)
		tc = telemetry.TraceContext{TraceID: id, SpanID: id}
		carrier.SetTraceContext(smb.TraceContext{
			TraceID: id, SpanID: id, Rank: uint32(w.rank), Iter: uint32(w.pushes),
		})
		defer carrier.ClearTraceContext()
	}
	if w.buffers.CanStreamPush() {
		// Chunk-pipelined push: the server folds chunk k into Wg while
		// chunk k+1 is on the wire, so the segment store rides inside the
		// accumulate. The T.A2 span now covers staging ΔWx and T.A3 the
		// streamed store+fold — the phase boundary the pipeline blurs by
		// design; the trace shows T.A2 shrinking to the encode cost.
		spA2 := tel.Begin(tid, telemetry.PhaseTA2)
		err := w.buffers.StageIncrement(w.pendingDelta)
		spA2.End()
		if err != nil {
			return err
		}
		spA3 := tel.BeginTraced(tid, telemetry.PhaseTA3, tc)
		err = w.buffers.StreamStaged()
		spA3.End()
		if err != nil {
			return err
		}
	} else {
		// T.A2: store ΔWx into the worker's increment segment.
		spA2 := tel.Begin(tid, telemetry.PhaseTA2)
		err := w.buffers.WriteIncrement(w.pendingDelta)
		spA2.End()
		if err != nil {
			return err
		}
		// T.A3: server-side accumulate Wg += ΔWx (Eq. 7).
		spA3 := tel.BeginTraced(tid, telemetry.PhaseTA3, tc)
		err = w.buffers.AccumulateIncrement()
		spA3.End()
		if err != nil {
			return err
		}
	}
	// T.A4: bookkeeping tail (and the cached-Wg refresh in hidden-read
	// mode — done here precisely because this phase is off the critical
	// path).
	spA4 := tel.Begin(tid, telemetry.PhaseTA4)
	w.pushes++
	tel.IncPush()
	var err error
	if w.cfg.HideGlobalRead {
		err = w.buffers.ReadGlobal(w.cachedGlobal)
		tel.HiddenRefresh()
	}
	spA4.End()
	return err
}

// updateThread is the Fig. 6 update thread: blocked until woken (T3), then
// T.A1 store increment, T.A2 request accumulation, T.A4 release, repeat.
func (w *Worker) updateThread(wake <-chan struct{}, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	tid := telemetry.UpdateTID(w.rank)
	for {
		select {
		case <-wake:
			if err := w.pushPending(tid); err != nil {
				w.mu.Lock()
				if w.pushErr == nil {
					w.pushErr = err
				}
				w.mu.Unlock()
				return
			}
		case <-stop:
			// Drain a queued wake so the final increment of the run is
			// not silently dropped.
			select {
			case <-wake:
				if err := w.pushPending(tid); err != nil {
					w.mu.Lock()
					if w.pushErr == nil {
						w.pushErr = err
					}
					w.mu.Unlock()
				}
			default:
			}
			return
		}
	}
}
