package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"shmcaffe/internal/dataset"
	"shmcaffe/internal/mpi"
	"shmcaffe/internal/nccl"
	"shmcaffe/internal/nn"
	"shmcaffe/internal/smb"
	"shmcaffe/internal/telemetry"
)

// HybridGroupConfig configures one HSGD worker group (paper Sec. III-D):
// the set of workers sharing a node. Within the group, gradients are
// aggregated synchronously (ncclAllReduce); across groups, the group root
// runs SEASGD against the SMB server and broadcasts the refreshed weight to
// its members (Fig. 4).
type HybridGroupConfig struct {
	// Job names the SMB segment family (shared across groups).
	Job string
	// Comm is the root's MPI endpoint. The SMB world has one rank per
	// group; rank 0's group is the Master Worker Group of Fig. 4.
	Comm *mpi.Comm
	// Client connects to the SMB server (used by the root only).
	Client smb.Client
	// Nets holds one model replica per group member; Nets[0] is the root.
	Nets []*nn.Network
	// Loaders provides each member's data shard.
	Loaders []*dataset.Loader
	// Solver configures the local SGD.
	Solver nn.SolverConfig
	// Elastic carries moving_rate and update_interval for the root's
	// inter-group SEASGD exchange.
	Elastic ElasticConfig
	// Termination aligns end times across groups.
	Termination TerminationPolicy
	// MaxIterations is the per-group iteration budget.
	MaxIterations int
	// ProgressEvery is iterations between termination checks (default 1).
	ProgressEvery int
	// Now supplies time for the timing breakdown (defaults to time.Now).
	Now func() time.Time
	// Hook, if non-nil, runs on the root member after every completed
	// group iteration. Returning an error aborts training.
	Hook func(g *HybridGroup, iter int) error
	// Telemetry, if non-nil, records the root's Fig. 6 phase spans and
	// counters (tracks are per group: the SMB world has one rank per group).
	Telemetry *telemetry.Trainer
	// LivenessTimeout, when positive, enables crash-aware termination for
	// the inter-group protocol: the root publishes heartbeats alongside its
	// progress counter and excludes group roots whose beats have gone stale
	// (or that wrote a tombstone) from the termination criterion. Zero keeps
	// the paper's fault-free protocol.
	LivenessTimeout time.Duration
}

// Validate checks the configuration.
func (c *HybridGroupConfig) Validate() error {
	if c.Comm == nil || c.Client == nil {
		return fmt.Errorf("hybrid group needs comm and client: %w", ErrConfig)
	}
	if len(c.Nets) == 0 || len(c.Nets) != len(c.Loaders) {
		return fmt.Errorf("hybrid group has %d nets and %d loaders: %w",
			len(c.Nets), len(c.Loaders), ErrConfig)
	}
	if c.Job == "" {
		return fmt.Errorf("hybrid group needs a job name: %w", ErrConfig)
	}
	if c.MaxIterations < 1 {
		return fmt.Errorf("max iterations %d < 1: %w", c.MaxIterations, ErrConfig)
	}
	if err := c.Elastic.Validate(); err != nil {
		return err
	}
	if err := c.Solver.Validate(); err != nil {
		return err
	}
	return c.Termination.Validate()
}

// GroupStats aggregates the outcome of one hybrid group.
type GroupStats struct {
	// GroupRank is the root's rank in the inter-group SMB world.
	GroupRank int
	// Iterations is the number of synchronous group iterations executed.
	Iterations int
	// RootLossHistory is the root member's minibatch loss per iteration
	// (after gradient averaging all members see the same loss trend).
	RootLossHistory []float64
	// Pushes counts the root's SMB accumulations.
	Pushes int
	// StoppedBy records what ended training.
	StoppedBy string
	// FailedMembers lists intra-group member indices whose training loop
	// failed mid-run; the group shrank past them and the survivors carried
	// the group to completion.
	FailedMembers []int
	// DeadPeers lists the inter-group SMB ranks considered dead at exit
	// (empty unless LivenessTimeout was set).
	DeadPeers []int
}

// HybridGroup runs HSGD for one worker group. All groups of a job must be
// constructed concurrently (the bootstrap is collective over Comm's world).
type HybridGroup struct {
	cfg      HybridGroupConfig
	buffers  *JobBuffers
	group    *nccl.Group
	liveness *livenessTracker // nil unless LivenessTimeout > 0
	beats    []int64          // heartbeat read scratch (root only)

	mu           sync.Mutex
	pendingDelta []float32 // guarded by mu
	pushErr      error     // guarded by mu
	pushes       int       // guarded by mu
}

// NewHybridGroup validates cfg, initializes the intra-node NCCL group, and
// performs the collective SMB bootstrap with the other group roots.
func NewHybridGroup(cfg HybridGroupConfig) (*HybridGroup, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ProgressEvery < 1 {
		cfg.ProgressEvery = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	elems := cfg.Nets[0].NumParams()
	for i, net := range cfg.Nets {
		if net.NumParams() != elems {
			return nil, fmt.Errorf("member %d has %d params, root has %d: %w",
				i, net.NumParams(), elems, ErrConfig)
		}
	}
	group, err := nccl.NewGroup(len(cfg.Nets))
	if err != nil {
		return nil, err
	}
	var seed []float32
	if cfg.Comm.Rank() == 0 {
		seed = cfg.Nets[0].FlatWeights(nil)
	}
	buffers, err := SetupBuffers(cfg.Comm, cfg.Client, cfg.Job, elems, seed)
	if err != nil {
		return nil, fmt.Errorf("group %d setup: %w", cfg.Comm.Rank(), err)
	}
	cfg.Telemetry.NameWorker(cfg.Comm.Rank())
	g := &HybridGroup{
		cfg:          cfg,
		buffers:      buffers,
		group:        group,
		pendingDelta: make([]float32, elems),
	}
	if cfg.LivenessTimeout > 0 {
		g.liveness = newLivenessTracker(cfg.Comm.Rank(), cfg.Comm.Size(), cfg.LivenessTimeout, cfg.Now)
		g.beats = make([]int64, cfg.Comm.Size())
	}
	return g, nil
}

// Buffers exposes the group's SMB view (used by hooks and diagnostics).
func (g *HybridGroup) Buffers() *JobBuffers { return g.buffers }

// Run executes HSGD until the termination criterion fires, returning the
// group's stats. Member goroutines are managed internally. A failing
// non-root member does not kill the group: the NCCL ring shrinks past it
// and the survivors finish (the failure is recorded in FailedMembers). A
// failing root is fatal — it owns the SMB exchange — and, when liveness is
// enabled, leaves a tombstone so the other group roots stop waiting.
func (g *HybridGroup) Run() (stats *GroupStats, err error) {
	cfg := &g.cfg
	n := len(cfg.Nets)
	elems := g.buffers.Elems()
	if g.liveness != nil {
		defer func() {
			if err != nil {
				_ = g.buffers.MarkDead() // best-effort obituary
			}
		}()
	}

	// All replicas start from the shared initial weights.
	initWeights := make([]float32, elems)
	if err := g.buffers.ReadGlobal(initWeights); err != nil {
		return nil, err
	}
	for _, net := range cfg.Nets {
		if err := net.SetFlatWeights(initWeights); err != nil {
			return nil, err
		}
	}

	// Root's asynchronous update thread (same Fig. 6 overlap as SEASGD).
	wake := make(chan struct{}, 1)
	stopPush := make(chan struct{})
	pushDone := make(chan struct{})
	go g.updateThread(wake, stopPush, pushDone)
	var stopOnce sync.Once
	shutdown := func() {
		stopOnce.Do(func() { close(stopPush) })
		<-pushDone
	}
	defer shutdown()

	stats = &GroupStats{GroupRank: cfg.Comm.Rank()}
	var wg sync.WaitGroup
	errs := make([]error, n)
	stopFlag := make([]float32, 1) // broadcast each check round: 1 = stop
	stoppedBy := make([]string, 1)

	solverFor := make([]*nn.SGDSolver, n)
	for m := 0; m < n; m++ {
		solverFor[m] = nn.NewSGDSolver(cfg.Nets[m], cfg.Solver)
	}

	hardCap := cfg.MaxIterations * 100
	for m := 0; m < n; m++ {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			memberErr := g.runMember(m, solverFor[m], hardCap, wake, stats, stopFlag, stoppedBy)
			if memberErr == nil {
				return
			}
			errs[m] = memberErr
			if m == 0 {
				// The root owns the SMB exchange and the termination
				// broadcast; without it the group is dead. Abort so
				// siblings unwind from their barriers.
				g.group.Abort()
				return
			}
			// A non-root member is expendable: shrink the NCCL ring past
			// it so in-flight collectives retry among the survivors
			// instead of deadlocking at the barrier. Safe because the
			// member goroutine has returned from any collective by the
			// time we get here.
			telemetry.RecordEvent(telemetry.EvGroupShrink, int64(m), 0, 0)
			g.group.Leave(m)
		}()
	}
	wg.Wait()
	// The root's error is fatal whatever it is (including a secondary
	// ErrAborted unwind — the abort means another failure already doomed
	// the group's SMB side).
	if errs[0] != nil {
		return nil, errs[0]
	}
	// Non-root failures were shrunk past; record them and carry on.
	for m := 1; m < n; m++ {
		if errs[m] != nil {
			stats.FailedMembers = append(stats.FailedMembers, m)
		}
	}
	// Finish the update thread (draining any queued push) before reading
	// the counter.
	shutdown()
	g.mu.Lock()
	stats.Pushes = g.pushes
	pushErr := g.pushErr
	g.mu.Unlock()
	if pushErr != nil {
		return nil, fmt.Errorf("group %d update thread: %w", cfg.Comm.Rank(), pushErr)
	}
	if stoppedBy[0] == "" {
		stoppedBy[0] = "budget"
	}
	stats.StoppedBy = stoppedBy[0]
	if g.liveness != nil {
		stats.DeadPeers = g.liveness.deadRanks(nil)
	}
	return stats, nil
}

// runMember is the per-member training loop. Member 0 is the group root.
func (g *HybridGroup) runMember(m int, solver *nn.SGDSolver, hardCap int,
	wake chan<- struct{}, stats *GroupStats, stopFlag []float32, stoppedBy []string) error {

	cfg := &g.cfg
	net := cfg.Nets[m]
	loader := cfg.Loaders[m]
	isRoot := m == 0
	elems := g.buffers.Elems()
	// Only the root member records spans: the group occupies one pair of
	// tracks in the trace, mirroring the one-SMB-rank-per-group topology.
	var tel *telemetry.Trainer
	if isRoot {
		tel = cfg.Telemetry
	}
	mainTID := telemetry.MainTID(cfg.Comm.Rank())

	grads := make([]float32, elems)
	local := make([]float32, elems)
	global := make([]float32, elems)
	flag := make([]float32, 1)

	for iter := 0; iter < hardCap; iter++ {
		// (1) Synchronous SSGD inside the group: compute gradients,
		// ncclAllReduce, local update from the aggregated gradient.
		spT45 := tel.Begin(mainTID, telemetry.PhaseT45)
		batch := loader.Next()
		net.ZeroGrads()
		loss, _, err := net.TrainStep(batch.X, batch.Labels)
		if err != nil {
			spT45.End()
			return fmt.Errorf("group %d member %d iter %d: %w", cfg.Comm.Rank(), m, iter, err)
		}
		net.FlatGrads(grads)
		err = g.group.AllReduceMean(m, grads)
		if err == nil {
			err = net.SetFlatGrads(grads)
		}
		spT45.End()
		if err != nil {
			return err
		}
		solver.ApplyUpdate()
		if isRoot {
			stats.RootLossHistory = append(stats.RootLossHistory, loss)
			tel.IncIteration()
		}

		// (2) Root's inter-group SEASGD exchange every update_interval.
		if iter%cfg.Elastic.UpdateInterval == 0 && isRoot {
			spA5 := tel.Begin(mainTID, telemetry.PhaseTA5)
			g.mu.Lock()
			spA5.End()
			spT1 := tel.Begin(mainTID, telemetry.PhaseT1)
			err := g.buffers.ReadGlobal(global)
			spT1.End()
			if err != nil {
				g.mu.Unlock()
				return err
			}
			// Fused Eqs. (5)+(6): one sweep writing the increment directly
			// into pendingDelta (we hold mu), same as Worker.Run.
			spT2 := tel.Begin(mainTID, telemetry.PhaseT2)
			net.FlatWeights(local)
			err = FusedWeightStep(g.pendingDelta, local, global, cfg.Elastic.MovingRate)
			if err == nil {
				err = net.SetFlatWeights(local)
			}
			spT2.End()
			if err != nil {
				g.mu.Unlock()
				return err
			}
			g.mu.Unlock()
			wake <- struct{}{}
		}
		// (3) Root broadcasts the refreshed weight W'grp to the group.
		if iter%cfg.Elastic.UpdateInterval == 0 {
			net.FlatWeights(local)
			if err := g.group.Broadcast(m, 0, local); err != nil {
				return err
			}
			if !isRoot {
				if err := net.SetFlatWeights(local); err != nil {
					return err
				}
			}
		}

		// Asynchronous push failures surface here.
		g.mu.Lock()
		pushErr := g.pushErr
		g.mu.Unlock()
		if pushErr != nil {
			return fmt.Errorf("group %d update thread: %w", cfg.Comm.Rank(), pushErr)
		}

		if isRoot && cfg.Hook != nil {
			if err := cfg.Hook(g, iter); err != nil {
				return fmt.Errorf("group %d hook: %w", cfg.Comm.Rank(), err)
			}
		}

		// (4) Progress + termination. The root evaluates the shared
		// criterion and broadcasts the verdict so all members stop at
		// the same iteration.
		if (iter+1)%cfg.ProgressEvery == 0 || iter+1 >= cfg.MaxIterations {
			if isRoot {
				if err := g.buffers.ReportProgress(int64(iter + 1)); err != nil {
					return err
				}
				if g.liveness != nil {
					// Best-effort: ReportProgress just proved the path
					// works; a transient beat failure only delays peers'
					// staleness clocks.
					_ = g.buffers.Beat(int64(iter + 1))
				}
				stopNow, by, err := g.checkTermination(int64(iter + 1))
				if err != nil {
					return err
				}
				if stopNow {
					stopFlag[0] = 1
					stoppedBy[0] = by
				}
				flag[0] = stopFlag[0]
			}
			if err := g.group.Broadcast(m, 0, flag); err != nil {
				return err
			}
			if flag[0] != 0 {
				if isRoot {
					stats.Iterations = iter + 1
				}
				return nil
			}
		}
		// See the matching yield in Worker.Run: keep group progress
		// comparable when CPU-oversubscribed.
		runtime.Gosched()
	}
	if isRoot {
		stats.Iterations = hardCap
	}
	return nil
}

func (g *HybridGroup) checkTermination(completed int64) (bool, string, error) {
	cfg := &g.cfg
	if cfg.Termination == StopIndependently {
		if completed >= int64(cfg.MaxIterations) {
			return true, "budget", nil
		}
		return false, "", nil
	}
	if stop, err := g.buffers.StopRequested(); err != nil {
		return false, "", err
	} else if stop {
		return true, "flag", nil
	}
	progress, err := g.buffers.Progress()
	if err != nil {
		return false, "", err
	}
	var alive []bool
	if g.liveness != nil {
		if err := g.buffers.HeartbeatsInto(g.beats); err == nil {
			alive = g.liveness.observe(g.beats)
		} else {
			// Stale-but-safe: reuse the previous view (death is monotone,
			// so a worker already declared dead stays excluded).
			alive = g.liveness.alive
		}
	}
	if cfg.Termination.ShouldStopAlive(progress, alive, int64(cfg.MaxIterations)) {
		if err := g.buffers.SignalStop(); err != nil {
			return false, "", err
		}
		return true, cfg.Termination.String(), nil
	}
	return false, "", nil
}

func (g *HybridGroup) pushPending() error {
	tel := g.cfg.Telemetry
	rank := g.cfg.Comm.Rank()
	tid := telemetry.UpdateTID(rank)
	spA1 := tel.Begin(tid, telemetry.PhaseTA1)
	g.mu.Lock()
	spA1.End()
	defer g.mu.Unlock()
	// Same cross-process trace rooting as Worker.pushPending: the group
	// root's T.A3 span anchors the server-side children of this push.
	var tc telemetry.TraceContext
	if carrier := g.buffers.TraceCarrier(); tel != nil && carrier != nil {
		id := telemetry.NextSpanID(uint64(rank+1) << 48)
		tc = telemetry.TraceContext{TraceID: id, SpanID: id}
		carrier.SetTraceContext(smb.TraceContext{
			TraceID: id, SpanID: id, Rank: uint32(rank), Iter: uint32(g.pushes),
		})
		defer carrier.ClearTraceContext()
	}
	if g.buffers.CanStreamPush() {
		// Chunk-pipelined WRITE+ACCUMULATE; see Worker.pushPending for the
		// span convention (T.A2 = staging, T.A3 = streamed store+fold).
		spA2 := tel.Begin(tid, telemetry.PhaseTA2)
		err := g.buffers.StageIncrement(g.pendingDelta)
		spA2.End()
		if err != nil {
			return err
		}
		spA3 := tel.BeginTraced(tid, telemetry.PhaseTA3, tc)
		err = g.buffers.StreamStaged()
		spA3.End()
		if err != nil {
			return err
		}
	} else {
		spA2 := tel.Begin(tid, telemetry.PhaseTA2)
		err := g.buffers.WriteIncrement(g.pendingDelta)
		spA2.End()
		if err != nil {
			return err
		}
		spA3 := tel.BeginTraced(tid, telemetry.PhaseTA3, tc)
		err = g.buffers.AccumulateIncrement()
		spA3.End()
		if err != nil {
			return err
		}
	}
	spA4 := tel.Begin(tid, telemetry.PhaseTA4)
	g.pushes++
	tel.IncPush()
	spA4.End()
	return nil
}

func (g *HybridGroup) updateThread(wake <-chan struct{}, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for {
		select {
		case <-wake:
			if err := g.pushPending(); err != nil {
				g.mu.Lock()
				if g.pushErr == nil {
					g.pushErr = err
				}
				g.mu.Unlock()
				return
			}
		case <-stop:
			select {
			case <-wake:
				if err := g.pushPending(); err != nil {
					g.mu.Lock()
					if g.pushErr == nil {
						g.pushErr = err
					}
					g.mu.Unlock()
				}
			default:
			}
			return
		}
	}
}
