package core

import (
	"time"

	"shmcaffe/internal/telemetry"
)

// Crash-aware termination alignment. The paper's Sec. III-E protocol reads
// per-worker progress counters and assumes every counter keeps moving until
// its worker decides to stop; a crashed worker freezes its counter and, under
// StopOnAverage or a dead master under StopOnMaster, freezes the whole job
// with it. The liveness tracker turns the heartbeat block of the control
// segment into a per-worker alive/dead view that the termination predicate
// consumes (ShouldStopAlive), so survivors align termination among
// themselves.
//
// Death is detected two ways:
//
//   - tombstone: a worker failing on purpose writes deadTombstone on its
//     way out (JobBuffers.MarkDead) — observed immediately;
//   - staleness: a worker that crashed without last words stops advancing
//     its beat; when a beat has not moved for longer than the timeout, the
//     worker is declared dead. The timeout must comfortably exceed the
//     worst-case gap between beats (one iteration + one SEASGD exchange),
//     or slow workers get declared dead and excluded from the average —
//     safe for termination (their counters still count toward StopOnFirst
//     and their pushes still land) but noisy.
type livenessTracker struct {
	self    int
	timeout time.Duration
	now     func() time.Time

	beats []int64     // latest read of the heartbeat block
	seen  []time.Time // when beats[i] last advanced
	last  []int64     // the beat value at seen[i]
	alive []bool
	// ref is the lowest-ranked live worker — the StopOnMaster progress
	// reference. Tracked so its death (and the implied re-election of the
	// next live rank) lands in the flight recorder.
	ref int
}

// newLivenessTracker builds a tracker for n workers observing from rank
// self. A zero timeout disables staleness detection (tombstones still
// count).
func newLivenessTracker(self, n int, timeout time.Duration, now func() time.Time) *livenessTracker {
	if now == nil {
		now = time.Now
	}
	t := &livenessTracker{
		self:    self,
		timeout: timeout,
		now:     now,
		beats:   make([]int64, n),
		seen:    make([]time.Time, n),
		last:    make([]int64, n),
		alive:   make([]bool, n),
	}
	start := now()
	for i := range t.alive {
		t.alive[i] = true
		t.seen[i] = start
		t.last[i] = -2 // below any real beat and the tombstone
	}
	return t
}

// observe ingests a fresh read of the heartbeat block and returns the
// updated alive view. The returned slice is reused across calls — consume
// before the next observe. Death is permanent: a worker that re-appears
// after being declared dead stays excluded (its replacement would rejoin
// under a fresh rank, not by haunting an old slot).
func (t *livenessTracker) observe(beats []int64) []bool {
	now := t.now()
	for i := range t.alive {
		if !t.alive[i] || i == t.self {
			continue // dead stays dead; self is alive by definition
		}
		b := beats[i]
		if b == deadTombstone {
			t.declareDead(i)
			continue
		}
		if b > t.last[i] {
			t.last[i] = b
			t.seen[i] = now
			continue
		}
		if t.timeout > 0 && now.Sub(t.seen[i]) > t.timeout {
			t.declareDead(i)
		}
	}
	return t.alive
}

// declareDead marks rank i dead and records the transition (plus the
// StopOnMaster re-election it implies when i was the progress reference)
// into the flight recorder.
func (t *livenessTracker) declareDead(i int) {
	t.alive[i] = false
	telemetry.RecordEvent(telemetry.EvWorkerDead, int64(t.self), int64(i), 0)
	if i != t.ref {
		return
	}
	for r, a := range t.alive {
		if a {
			t.ref = r
			telemetry.RecordEvent(telemetry.EvReElection, int64(t.self), int64(r), 0)
			return
		}
	}
}

// deadRanks appends the ranks currently considered dead to dst.
func (t *livenessTracker) deadRanks(dst []int) []int {
	for i, a := range t.alive {
		if !a {
			dst = append(dst, i)
		}
	}
	return dst
}
