package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"shmcaffe/internal/tensor"
)

func TestWeightIncrementKnown(t *testing.T) {
	local := []float32{2, 4, 6}
	global := []float32{1, 2, 3}
	delta := make([]float32, 3)
	if err := WeightIncrement(delta, local, global, 0.5); err != nil {
		t.Fatal(err)
	}
	want := []float32{0.5, 1, 1.5}
	for i, w := range want {
		if delta[i] != w {
			t.Fatalf("delta[%d] = %v, want %v", i, delta[i], w)
		}
	}
}

func TestIncrementLengthErrors(t *testing.T) {
	if err := WeightIncrement(make([]float32, 2), make([]float32, 3), make([]float32, 3), 0.2); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
	if err := ApplyIncrementLocal(make([]float32, 2), make([]float32, 3)); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
	if err := ApplyIncrementGlobal(make([]float32, 2), make([]float32, 3)); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
	if _, err := CenterDistance(make([]float32, 2), make([]float32, 3)); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}

// TestExchangeConservation: Eqs. (6)+(7) move exactly delta from the local
// replica to the global weight, so local+global is invariant — the paper's
// elastic symmetry (the worker and the center move toward each other by the
// same amount).
func TestExchangeConservation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(64)
		alpha := 0.05 + 0.9*rng.Float64()
		local := make([]float32, n)
		global := make([]float32, n)
		scratch := make([]float32, n)
		var sumBefore float64
		for i := range local {
			local[i] = float32(rng.NormFloat64())
			global[i] = float32(rng.NormFloat64())
			sumBefore += float64(local[i]) + float64(global[i])
		}
		if err := ElasticExchange(local, global, scratch, alpha); err != nil {
			return false
		}
		var sumAfter float64
		for i := range local {
			sumAfter += float64(local[i]) + float64(global[i])
		}
		return math.Abs(sumAfter-sumBefore) < 1e-3*(1+math.Abs(sumBefore))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestExchangeContracts: each exchange shrinks the local↔global distance by
// exactly (1−2α)² in squared norm, so for α ∈ (0, 0.5) replicas are pulled
// toward the center — the stability condition of elastic averaging.
func TestExchangeContracts(t *testing.T) {
	rng := tensor.NewRNG(3)
	const n = 32
	alpha := 0.2
	local := make([]float32, n)
	global := make([]float32, n)
	scratch := make([]float32, n)
	for i := range local {
		local[i] = float32(rng.NormFloat64())
		global[i] = float32(rng.NormFloat64())
	}
	before, err := CenterDistance(local, global)
	if err != nil {
		t.Fatal(err)
	}
	if err := ElasticExchange(local, global, scratch, alpha); err != nil {
		t.Fatal(err)
	}
	after, err := CenterDistance(local, global)
	if err != nil {
		t.Fatal(err)
	}
	wantRatio := (1 - 2*alpha) * (1 - 2*alpha)
	gotRatio := after / before
	if math.Abs(gotRatio-wantRatio) > 1e-3 {
		t.Fatalf("distance ratio %v, want %v", gotRatio, wantRatio)
	}
}

func TestElasticConfigValidate(t *testing.T) {
	good := DefaultElasticConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.MovingRate != 0.2 || good.UpdateInterval != 1 {
		t.Fatalf("default config %+v does not match the paper", good)
	}
	for _, bad := range []ElasticConfig{
		{MovingRate: 0, UpdateInterval: 1},
		{MovingRate: 1, UpdateInterval: 1},
		{MovingRate: 0.2, UpdateInterval: 0},
	} {
		if err := bad.Validate(); !errors.Is(err, ErrConfig) {
			t.Fatalf("config %+v: want ErrConfig, got %v", bad, err)
		}
	}
}

func TestTerminationPolicies(t *testing.T) {
	progress := []int64{10, 5, 7}
	tests := []struct {
		name   string
		policy TerminationPolicy
		target int64
		want   bool
	}{
		{"master reached", StopOnMaster, 10, true},
		{"master not reached", StopOnMaster, 11, false},
		{"first reached", StopOnFirst, 8, true},
		{"first not reached", StopOnFirst, 11, false},
		{"average reached (22/3 >= 7)", StopOnAverage, 7, true},
		{"average not reached", StopOnAverage, 8, false},
		{"independent never uses shared state", StopIndependently, 1, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.policy.ShouldStop(progress, tt.target); got != tt.want {
				t.Fatalf("ShouldStop = %v, want %v", got, tt.want)
			}
		})
	}
	if StopOnFirst.ShouldStop(nil, 1) {
		t.Fatal("empty progress must not stop")
	}
}

func TestTerminationValidateAndString(t *testing.T) {
	for _, p := range []TerminationPolicy{StopOnMaster, StopOnFirst, StopOnAverage, StopIndependently} {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if p.String() == "" {
			t.Fatal("empty String()")
		}
	}
	if err := TerminationPolicy(99).Validate(); !errors.Is(err, ErrConfig) {
		t.Fatal("expected ErrConfig for unknown policy")
	}
}
