package core

import (
	"sync"
	"testing"
	"time"

	"shmcaffe/internal/dataset"
)

// slowDataset wraps a dataset with a per-sample delay, modeling the
// "deviations in computation time between deep learning workers" of
// Sec. III-E (shared bus, file I/O, network contention).
type slowDataset struct {
	dataset.Dataset
	delay time.Duration
}

func (s *slowDataset) Sample(i int, x []float32) int {
	time.Sleep(s.delay)
	return s.Dataset.Sample(i, x)
}

// TestTerminationAlignmentWithStraggler: one worker is 5× slower. With
// StopOnMaster (master is fast), the straggler is cut off near the
// master's finish instead of running its full budget — the utilization
// win of Sec. III-E.
func TestTerminationAlignmentWithStraggler(t *testing.T) {
	job := newTestJob(t, 3, 31)
	stats := runWorkers(t, job, func(rank int, cfg *WorkerConfig) {
		cfg.Termination = StopOnMaster
		cfg.MaxIterations = 30
		if rank == 2 {
			// Rebuild rank 2's loader over a slowed shard.
			shard, err := dataset.NewShard(job.ds, 2, 3)
			if err != nil {
				t.Fatal(err)
			}
			loader, err := dataset.NewLoader(&slowDataset{Dataset: shard, delay: 500 * time.Microsecond}, 16, 99)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Loader = loader
		}
	})
	if stats[0].Iterations < 30 {
		t.Fatalf("master stopped early: %d", stats[0].Iterations)
	}
	// The straggler must not have completed anywhere near its own budget
	// beyond the master's; alignment cut it off.
	if stats[2].Iterations > 3*stats[0].Iterations {
		t.Fatalf("straggler ran %d iterations vs master %d — alignment failed",
			stats[2].Iterations, stats[0].Iterations)
	}
	if stats[2].StoppedBy == "budget" {
		t.Fatalf("straggler stopped by %q, expected alignment", stats[2].StoppedBy)
	}
}

// TestProgressCountersVisibleAcrossWorkers: the control segment exposes
// every worker's iteration count to every other worker.
func TestProgressCountersVisibleAcrossWorkers(t *testing.T) {
	job := newTestJob(t, 2, 32)
	var once sync.Once
	var observed []int64
	stats := runWorkers(t, job, func(rank int, cfg *WorkerConfig) {
		if rank != 0 {
			return
		}
		cfg.Hook = func(w *Worker, iter int) error {
			if iter == 20 {
				once.Do(func() {
					p, err := w.Buffers().Progress()
					if err != nil {
						t.Error(err)
						return
					}
					observed = append(observed, p...)
				})
			}
			return nil
		}
	})
	if len(observed) != 2 {
		t.Fatalf("observed %v", observed)
	}
	if observed[0] < 20 {
		t.Fatalf("own progress %d < 20", observed[0])
	}
	// The other worker must have published some progress by then (both
	// yield per iteration, so it cannot still be at zero... unless it
	// finished instantly, in which case it reported its final count).
	if observed[1] == 0 && stats[1].Iterations > 0 {
		t.Fatalf("peer progress invisible: %v (peer ran %d)", observed, stats[1].Iterations)
	}
}
