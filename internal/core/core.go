// Package core implements the paper's contribution: SEASGD (shared-memory
// elastic averaging SGD) and HSGD (hybrid intra-node synchronous / inter-
// node asynchronous SGD) on top of the SMB remote shared memory substrate.
//
// The package has two faces:
//
//   - Pure update algebra (elastic.go) — Eqs. (2)–(7) of the paper, shared
//     by the functional runtime and the baselines.
//   - A functional distributed runtime (worker.go, hybrid.go): workers
//     with the Fig. 6 main-thread/update-thread overlap, SMB buffer layout
//     of Fig. 5, the Fig. 2 key-exchange bootstrap over MPI, and the
//     Sec. III-E termination-alignment protocol.
package core

import (
	"errors"
	"fmt"
)

// Exported errors.
var (
	ErrConfig  = errors.New("core: invalid configuration")
	ErrStopped = errors.New("core: training stopped")
)

// ElasticConfig carries the two hyper-parameters ShmCaffe adds on top of
// Caffe's solver set (paper Sec. III-A).
type ElasticConfig struct {
	// MovingRate is α, the moving averaging rate scaling the elastic
	// penalty (paper uses 0.2).
	MovingRate float64
	// UpdateInterval is how many local iterations pass between global
	// exchanges (paper uses 1).
	UpdateInterval int
}

// DefaultElasticConfig returns the paper's settings: α = 0.2, interval 1.
func DefaultElasticConfig() ElasticConfig {
	return ElasticConfig{MovingRate: 0.2, UpdateInterval: 1}
}

// Validate checks the hyper-parameters.
func (c ElasticConfig) Validate() error {
	if c.MovingRate <= 0 || c.MovingRate >= 1 {
		return fmt.Errorf("moving_rate %v outside (0,1): %w", c.MovingRate, ErrConfig)
	}
	if c.UpdateInterval < 1 {
		return fmt.Errorf("update_interval %d < 1: %w", c.UpdateInterval, ErrConfig)
	}
	return nil
}
