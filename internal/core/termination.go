package core

import "fmt"

// TerminationPolicy selects how workers align their training end time
// (paper Sec. III-E). Without alignment, ASGD workers that finish their
// fixed iteration budget idle on their GPU while stragglers run on.
type TerminationPolicy int

const (
	// StopOnMaster: all workers finish when the master worker reaches the
	// target (criterion 1).
	StopOnMaster TerminationPolicy = iota + 1
	// StopOnFirst: all workers finish as soon as the fastest worker
	// reaches the target (criterion 2).
	StopOnFirst
	// StopOnAverage: all workers finish when the mean completed-iteration
	// count reaches the target (criterion 3).
	StopOnAverage
	// StopIndependently disables alignment: every worker runs its own
	// fixed iteration budget (BVLC Caffe behaviour, kept as the ablation
	// baseline).
	StopIndependently
)

// String implements fmt.Stringer.
func (p TerminationPolicy) String() string {
	switch p {
	case StopOnMaster:
		return "master"
	case StopOnFirst:
		return "first"
	case StopOnAverage:
		return "average"
	case StopIndependently:
		return "independent"
	default:
		return fmt.Sprintf("TerminationPolicy(%d)", int(p))
	}
}

// Validate checks that the policy is one of the defined criteria.
func (p TerminationPolicy) Validate() error {
	switch p {
	case StopOnMaster, StopOnFirst, StopOnAverage, StopIndependently:
		return nil
	default:
		return fmt.Errorf("unknown termination policy %d: %w", int(p), ErrConfig)
	}
}

// ShouldStop evaluates the policy against the shared progress counters.
// target is the per-worker iteration budget. Every worker evaluates the
// same deterministic predicate over the same shared state, so no dedicated
// coordinator thread is needed — exactly the simplification the shared
// control segment buys (Sec. III-E).
func (p TerminationPolicy) ShouldStop(progress []int64, target int64) bool {
	if len(progress) == 0 {
		return false
	}
	switch p {
	case StopOnMaster:
		return progress[0] >= target
	case StopOnFirst:
		for _, v := range progress {
			if v >= target {
				return true
			}
		}
		return false
	case StopOnAverage:
		var sum int64
		for _, v := range progress {
			sum += v
		}
		return sum >= target*int64(len(progress))
	default:
		return false
	}
}
