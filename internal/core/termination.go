package core

import "fmt"

// TerminationPolicy selects how workers align their training end time
// (paper Sec. III-E). Without alignment, ASGD workers that finish their
// fixed iteration budget idle on their GPU while stragglers run on.
type TerminationPolicy int

const (
	// StopOnMaster: all workers finish when the master worker reaches the
	// target (criterion 1).
	StopOnMaster TerminationPolicy = iota + 1
	// StopOnFirst: all workers finish as soon as the fastest worker
	// reaches the target (criterion 2).
	StopOnFirst
	// StopOnAverage: all workers finish when the mean completed-iteration
	// count reaches the target (criterion 3).
	StopOnAverage
	// StopIndependently disables alignment: every worker runs its own
	// fixed iteration budget (BVLC Caffe behaviour, kept as the ablation
	// baseline).
	StopIndependently
)

// String implements fmt.Stringer.
func (p TerminationPolicy) String() string {
	switch p {
	case StopOnMaster:
		return "master"
	case StopOnFirst:
		return "first"
	case StopOnAverage:
		return "average"
	case StopIndependently:
		return "independent"
	default:
		return fmt.Sprintf("TerminationPolicy(%d)", int(p))
	}
}

// Validate checks that the policy is one of the defined criteria.
func (p TerminationPolicy) Validate() error {
	switch p {
	case StopOnMaster, StopOnFirst, StopOnAverage, StopIndependently:
		return nil
	default:
		return fmt.Errorf("unknown termination policy %d: %w", int(p), ErrConfig)
	}
}

// ShouldStop evaluates the policy against the shared progress counters.
// target is the per-worker iteration budget. Every worker evaluates the
// same deterministic predicate over the same shared state, so no dedicated
// coordinator thread is needed — exactly the simplification the shared
// control segment buys (Sec. III-E).
func (p TerminationPolicy) ShouldStop(progress []int64, target int64) bool {
	return p.ShouldStopAlive(progress, nil, target)
}

// ShouldStopAlive is ShouldStop with a liveness view: alive[i] false means
// worker i is known dead and must not hold the survivors hostage. A nil
// alive treats everyone as alive (the fault-free fast path). Per policy:
//
//   - StopOnMaster with a dead master re-elects the lowest-ranked live
//     worker as the progress reference — otherwise a master crash at
//     iteration k freezes the job forever at "master not done".
//   - StopOnFirst ignores liveness: progress counters are monotone, so a
//     dead worker's last count still only triggers a stop it had earned.
//   - StopOnAverage averages over the living only. A dead worker's frozen
//     counter would otherwise drag the mean down and the survivors would
//     grind out its unfinished share (or never terminate with target
//     unreachable).
func (p TerminationPolicy) ShouldStopAlive(progress []int64, alive []bool, target int64) bool {
	if len(progress) == 0 {
		return false
	}
	isAlive := func(i int) bool { return alive == nil || i >= len(alive) || alive[i] }
	switch p {
	case StopOnMaster:
		for i, v := range progress {
			if isAlive(i) {
				return v >= target
			}
		}
		return true // nobody alive: nothing left to wait for
	case StopOnFirst:
		for _, v := range progress {
			if v >= target {
				return true
			}
		}
		return false
	case StopOnAverage:
		var sum, count int64
		for i, v := range progress {
			if !isAlive(i) {
				continue
			}
			sum += v
			count++
		}
		if count == 0 {
			return true
		}
		return sum >= target*count
	default:
		return false
	}
}
