package core_test

import (
	"fmt"

	"shmcaffe/internal/core"
)

// One SEASGD exchange, Eqs. (5)–(7): the worker and the global weight move
// toward each other by α·(local − global).
func ExampleElasticExchange() {
	local := []float32{2, 4}
	global := []float32{0, 0}
	scratch := make([]float32, 2)

	_ = core.ElasticExchange(local, global, scratch, 0.25)
	fmt.Println("local :", local)
	fmt.Println("global:", global)
	// Output:
	// local : [1.5 3]
	// global: [0.5 1]
}

// The three termination-alignment criteria of Sec. III-E over the same
// shared progress counters.
func ExampleTerminationPolicy_ShouldStop() {
	progress := []int64{100, 60, 80} // master, two slaves
	const target = 100
	fmt.Println("master :", core.StopOnMaster.ShouldStop(progress, target))
	fmt.Println("first  :", core.StopOnFirst.ShouldStop(progress, target))
	fmt.Println("average:", core.StopOnAverage.ShouldStop(progress, target))
	// Output:
	// master : true
	// first  : true
	// average: false
}
