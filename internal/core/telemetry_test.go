package core

import (
	"strings"
	"testing"

	"shmcaffe/internal/telemetry"
)

// TestWorkerTelemetryPhases runs two instrumented workers and checks the
// acceptance surface: every Fig. 6 phase appears as at least one span on the
// right thread track, the staleness histogram saw observations, and the
// Prometheus exposition carries the phase/staleness families.
func TestWorkerTelemetryPhases(t *testing.T) {
	job := newTestJob(t, 2, 7)
	reg := telemetry.NewRegistry()
	tel := telemetry.NewTrainer(reg, 1<<14)
	runWorkers(t, job, func(rank int, cfg *WorkerConfig) {
		cfg.Telemetry = tel
	})

	events := tel.Tracer.Events()
	if len(events) == 0 {
		t.Fatal("no trace events recorded")
	}
	// phase name -> set of tids that recorded it
	seen := make(map[string]map[int]bool)
	for _, ev := range events {
		if ev.Ph != "X" {
			continue
		}
		if seen[ev.Name] == nil {
			seen[ev.Name] = make(map[int]bool)
		}
		seen[ev.Name][ev.TID] = true
	}
	// Worker phases only: the srv.* phases are recorded by an smb.Server
	// with a tracer installed, which an in-process worker run has none of.
	for p := telemetry.Phase(0); p <= telemetry.PhaseTA5; p++ {
		name := p.String()
		tids := seen[name]
		if len(tids) == 0 {
			t.Errorf("phase %s: no spans recorded", name)
			continue
		}
		// Hidden phases belong on update-thread tracks (odd tid), the
		// rest on main-thread tracks (even tid).
		for tid := range tids {
			update := tid%2 == 1
			if telemetry.HiddenPhase(p) != update {
				t.Errorf("phase %s recorded on tid %d (update=%v)", name, tid, update)
			}
		}
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`seasgd_phase_seconds_count{phase="T1"}`,
		`seasgd_phase_seconds_count{phase="T.A3"}`,
		"seasgd_t1_staleness_iterations_count",
		"seasgd_iterations_total",
		"seasgd_pushes_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Both workers ran 40 iterations; every T1 read observes staleness.
	if !strings.Contains(out, "seasgd_iterations_total 80") {
		t.Errorf("iteration counter wrong:\n%s", grepLines(out, "seasgd_iterations_total"))
	}
}

// TestHybridTelemetryPhases: a 2-group hybrid run records root-member spans
// for compute and the exchange phases.
func TestHybridTelemetryPhases(t *testing.T) {
	reg := telemetry.NewRegistry()
	tel := telemetry.NewTrainer(reg, 1<<14)
	configs, _, _ := buildHybridJob(t, 2, 2, 9)
	for gi := range configs {
		configs[gi].Telemetry = tel
	}
	runHybrid(t, configs)

	seen := make(map[string]bool)
	for _, ev := range tel.Tracer.Events() {
		if ev.Ph == "X" {
			seen[ev.Name] = true
		}
	}
	for _, want := range []string{"T4+T5", "T1", "T2", "T.A2", "T.A3"} {
		if !seen[want] {
			t.Errorf("hybrid run missing %s spans (saw %v)", want, seen)
		}
	}
}

// grepLines returns the lines of s containing sub, for failure messages.
func grepLines(s, sub string) string {
	var out []string
	for _, ln := range strings.Split(s, "\n") {
		if strings.Contains(ln, sub) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}
