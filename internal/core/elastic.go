package core

import (
	"fmt"

	"shmcaffe/internal/tensor"
)

// Pure elastic-averaging update algebra, Eqs. (2)–(7) of the paper. All
// functions operate on flat float32 weight vectors (the representation SMB
// segments store) and are deliberately allocation-free so the worker loop
// can call them per iteration on multi-million-element vectors.

// WeightIncrement computes Eq. (5): delta[i] = α · (local[i] − global[i]).
// delta, local and global must have equal length.
func WeightIncrement(delta, local, global []float32, alpha float64) error {
	if len(delta) != len(local) || len(local) != len(global) {
		return fmt.Errorf("weight increment lengths %d/%d/%d: %w",
			len(delta), len(local), len(global), ErrConfig)
	}
	a := float32(alpha)
	for i := range delta {
		delta[i] = a * (local[i] - global[i])
	}
	return nil
}

// ApplyIncrementLocal computes Eq. (6): local[i] −= delta[i]. The worker
// pulls its replica toward the global weight.
func ApplyIncrementLocal(local, delta []float32) error {
	if len(local) != len(delta) {
		return fmt.Errorf("apply increment lengths %d/%d: %w", len(local), len(delta), ErrConfig)
	}
	for i := range local {
		local[i] -= delta[i]
	}
	return nil
}

// FusedWeightStep computes Eqs. (5)+(6) in one fused sweep:
// delta[i] = α·(local[i] − global[i]) followed by local[i] −= delta[i],
// per element. It is bitwise-identical to WeightIncrement followed by
// ApplyIncrementLocal (the tensor package pins the fused kernel against
// that two-pass reference), but reads local and global once instead of
// twice — this is the T2 critical-path update, so the saved sweep is
// exposed time on every exchange. delta may be the worker's pendingDelta
// directly, eliminating the former T.A1 handoff copy.
//shm:hotpath
func FusedWeightStep(delta, local, global []float32, alpha float64) error {
	if len(delta) != len(local) || len(local) != len(global) {
		return fmt.Errorf("fused weight step lengths %d/%d/%d: %w",
			len(delta), len(local), len(global), ErrConfig)
	}
	tensor.FusedElasticStep(float32(alpha), delta, local, global)
	return nil
}

// ApplyIncrementGlobal computes Eq. (7): global[i] += delta[i]. In ShmCaffe
// this runs on the SMB server as an Accumulate; the function exists for the
// in-memory parameter-server baselines and for property tests asserting
// that the SMB path and the direct path agree.
func ApplyIncrementGlobal(global, delta []float32) error {
	if len(global) != len(delta) {
		return fmt.Errorf("apply global lengths %d/%d: %w", len(global), len(delta), ErrConfig)
	}
	for i := range global {
		global[i] += delta[i]
	}
	return nil
}

// ElasticExchange performs the full Eq. (5)–(7) exchange against in-memory
// buffers: computes the increment from (local, global), applies it to both.
// It is the transport-free reference implementation of one SEASGD exchange,
// used by the classic EASGD baseline (where the parameter server applies
// Eq. 4 directly) and by tests that compare against the SMB-mediated path.
func ElasticExchange(local, global, scratch []float32, alpha float64) error {
	if len(scratch) != len(local) || len(local) != len(global) {
		return fmt.Errorf("elastic exchange lengths %d/%d/%d: %w",
			len(scratch), len(local), len(global), ErrConfig)
	}
	// One fused sweep over all three vectors; bitwise-identical to the
	// WeightIncrement → ApplyIncrementLocal → ApplyIncrementGlobal chain.
	tensor.FusedElasticExchange(float32(alpha), scratch, local, global)
	return nil
}

// CenterDistance returns the squared L2 distance between a replica and the
// global weight — the quantity the elastic penalty ρ/2·‖x−x̃‖² controls.
// Diagnostics and tests use it to verify replicas stay tethered.
func CenterDistance(local, global []float32) (float64, error) {
	if len(local) != len(global) {
		return 0, fmt.Errorf("center distance lengths %d/%d: %w", len(local), len(global), ErrConfig)
	}
	var s float64
	for i := range local {
		d := float64(local[i] - global[i])
		s += d * d
	}
	return s, nil
}
