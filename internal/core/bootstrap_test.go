package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"shmcaffe/internal/smb"
)

// TestPollingBootstrapTrains forms a 3-worker job with no MPI at all —
// only the SMB store for rendezvous — and verifies training proceeds
// exactly as with the MPI bootstrap.
func TestPollingBootstrapTrains(t *testing.T) {
	job := newTestJob(t, 3, 51) // world only used for data sharding here
	opts := BootstrapOptions{PollInterval: time.Millisecond, Timeout: 10 * time.Second}

	stats := make([]*RunStats, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := job.workerConfig(t, r, "pjob")
			cfg.Comm = nil // the polling path forbids a communicator
			cfg.MaxIterations = 30
			w, err := NewWorkerPolling(cfg, r, 3, opts)
			if err != nil {
				errs[r] = err
				return
			}
			stats[r], errs[r] = w.Run()
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for _, s := range stats {
		if s.Iterations != 30 || s.Pushes == 0 {
			t.Fatalf("stats %+v", s)
		}
	}
	// The boot barrier segment exists alongside the Fig. 5 family.
	client := smb.NewLocalClient(job.store)
	if _, err := client.Lookup(bootSegment("pjob")); err != nil {
		t.Fatalf("boot segment missing: %v", err)
	}
}

func TestPollingBootstrapValidation(t *testing.T) {
	job := newTestJob(t, 1, 52)
	cfg := job.workerConfig(t, 0, "v")
	cfg.Comm = nil
	if _, err := NewWorkerPolling(cfg, 0, 0, BootstrapOptions{}); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig for world 0, got %v", err)
	}
	cfgWithComm := job.workerConfig(t, 0, "v2")
	if _, err := NewWorkerPolling(cfgWithComm, 0, 1, BootstrapOptions{}); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig when comm set, got %v", err)
	}
}

// tracingClient wraps a client with a no-op TraceCarrier surface, modeling
// the supervised TCP client multi-process workers actually use.
type tracingClient struct {
	smb.Client
	tc smb.TraceContext
}

func (c *tracingClient) SetTraceContext(tc smb.TraceContext) { c.tc = tc }
func (c *tracingClient) ClearTraceContext()                  { c.tc = smb.TraceContext{} }

// TestPollingBootstrapCapturesCarrier: SetupBuffersPolling must feature-test
// the trace carrier like SetupBuffers does. It once didn't, so every
// multi-process worker (they all bootstrap by polling) ran untraced and the
// merged fleet trace had zero cross-node chains.
func TestPollingBootstrapCapturesCarrier(t *testing.T) {
	job := newTestJob(t, 1, 54)
	opts := BootstrapOptions{PollInterval: time.Millisecond, Timeout: 10 * time.Second}
	elems := job.nets[0].NumParams()
	client := &tracingClient{Client: smb.NewLocalClient(job.store)}
	weights := make([]float32, elems)
	bufs, err := SetupBuffersPolling(client, "carrier", 0, 1, elems, weights, opts)
	if err != nil {
		t.Fatal(err)
	}
	if bufs.TraceCarrier() == nil {
		t.Fatal("polling bootstrap dropped the client's TraceCarrier")
	}
	bare, err := SetupBuffersPolling(smb.NewLocalClient(job.store), "carrier2", 0, 1, elems, weights, opts)
	if err != nil {
		t.Fatal(err)
	}
	if bare.TraceCarrier() != nil {
		t.Fatal("a client without SetTraceContext must yield a nil carrier")
	}
}

// TestPollingBootstrapTimesOutWithoutMaster: a non-master rank alone must
// fail with a rendezvous timeout, not hang.
func TestPollingBootstrapTimesOutWithoutMaster(t *testing.T) {
	job := newTestJob(t, 2, 53)
	cfg := job.workerConfig(t, 1, "orphan")
	cfg.Comm = nil
	opts := BootstrapOptions{PollInterval: time.Millisecond, Timeout: 50 * time.Millisecond}
	if _, err := NewWorkerPolling(cfg, 1, 2, opts); !errors.Is(err, ErrConfig) {
		t.Fatalf("want timeout error, got %v", err)
	}
}
