package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"shmcaffe/internal/dataset"
	"shmcaffe/internal/mpi"
	"shmcaffe/internal/nn"
	"shmcaffe/internal/smb"
	"shmcaffe/internal/tensor"
)

// testJob builds the shared fixtures for an n-worker SEASGD run over the
// Gaussian corpus with small MLP replicas.
type testJob struct {
	world  *mpi.World
	store  *smb.Store
	ds     *dataset.InMemory
	nets   []*nn.Network
	trains []*dataset.Loader
}

func newTestJob(t *testing.T, n int, seed uint64) *testJob {
	t.Helper()
	world, err := mpi.NewWorld(n)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.NewGaussian(dataset.GaussianConfig{
		Classes: 4, PerClass: 40, Shape: []int{8}, Noise: 0.25, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	job := &testJob{world: world, store: smb.NewStore(), ds: ds}
	for r := 0; r < n; r++ {
		net, err := nn.MLP(fmt.Sprintf("w%d", r), 8, 16, 4)
		if err != nil {
			t.Fatal(err)
		}
		net.InitWeights(tensor.NewRNG(seed)) // identical start everywhere
		shard, err := dataset.NewShard(ds, r, n)
		if err != nil {
			t.Fatal(err)
		}
		loader, err := dataset.NewLoader(shard, 16, seed+uint64(r))
		if err != nil {
			t.Fatal(err)
		}
		job.nets = append(job.nets, net)
		job.trains = append(job.trains, loader)
	}
	return job
}

func (j *testJob) workerConfig(t *testing.T, rank int, jobName string) WorkerConfig {
	t.Helper()
	comm, err := j.world.Comm(rank)
	if err != nil {
		t.Fatal(err)
	}
	solver := nn.DefaultSolverConfig()
	solver.BaseLR = 0.05
	return WorkerConfig{
		Job:           jobName,
		Comm:          comm,
		Client:        smb.NewLocalClient(j.store),
		Net:           j.nets[rank],
		Solver:        solver,
		Elastic:       DefaultElasticConfig(),
		Termination:   StopIndependently,
		MaxIterations: 40,
		Loader:        j.trains[rank],
	}
}

// runWorkers constructs and runs all workers concurrently.
func runWorkers(t *testing.T, job *testJob, mutate func(rank int, cfg *WorkerConfig)) []*RunStats {
	t.Helper()
	n := job.world.Size()
	stats := make([]*RunStats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := job.workerConfig(t, r, "job")
			if mutate != nil {
				mutate(r, &cfg)
			}
			w, err := NewWorker(cfg)
			if err != nil {
				errs[r] = err
				return
			}
			stats[r], errs[r] = w.Run()
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return stats
}

func TestWorkerConfigValidate(t *testing.T) {
	var cfg WorkerConfig
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected error for empty config")
	}
}

func TestSingleWorkerTrainsAndPushes(t *testing.T) {
	job := newTestJob(t, 1, 1)
	stats := runWorkers(t, job, nil)
	s := stats[0]
	if s.Iterations != 40 {
		t.Fatalf("iterations %d, want 40", s.Iterations)
	}
	if s.Pushes == 0 {
		t.Fatal("no global pushes recorded")
	}
	first, last := s.LossHistory[0], s.LossHistory[len(s.LossHistory)-1]
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

// TestMultiWorkerConvergesAndGlobalIsUseful: after a 4-worker SEASGD run,
// the global weight Wg evaluates well on held-out data — the fundamental
// claim that asynchronous elastic averaging through a dumb shared buffer
// trains the model.
func TestMultiWorkerConvergesAndGlobalIsUseful(t *testing.T) {
	job := newTestJob(t, 4, 2)
	runWorkers(t, job, nil)

	// Read Wg and load it into a fresh evaluation replica.
	client := smb.NewLocalClient(job.store)
	key, err := client.Lookup(smb.SegmentNames{Job: "job"}.Global())
	if err != nil {
		t.Fatal(err)
	}
	h, err := client.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	elems := job.nets[0].NumParams()
	buf := make([]byte, elems*4)
	if err := client.Read(h, 0, buf); err != nil {
		t.Fatal(err)
	}
	wg, err := tensor.Float32FromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	evalNet, err := nn.MLP("eval", 8, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := evalNet.SetFlatWeights(wg); err != nil {
		t.Fatal(err)
	}
	// Evaluate over the full corpus.
	loader, err := dataset.NewLoader(job.ds, 64, 99)
	if err != nil {
		t.Fatal(err)
	}
	var accSum float64
	const batches = 3
	for i := 0; i < batches; i++ {
		b := loader.Next()
		_, acc, err := evalNet.Evaluate(b.X, b.Labels, 1)
		if err != nil {
			t.Fatal(err)
		}
		accSum += acc
	}
	if avg := accSum / batches; avg < 0.6 {
		t.Fatalf("global weight top-1 accuracy %.2f < 0.6", avg)
	}
}

func TestWorkerOverlapPushCount(t *testing.T) {
	job := newTestJob(t, 2, 3)
	stats := runWorkers(t, job, nil)
	for _, s := range stats {
		// update_interval 1 → one push per iteration (the final push may
		// still be in flight at shutdown, so allow iterations or
		// iterations±1).
		if s.Pushes < s.Iterations-1 || s.Pushes > s.Iterations {
			t.Fatalf("rank %d: %d pushes for %d iterations", s.Rank, s.Pushes, s.Iterations)
		}
	}
}

func TestWorkerUpdateInterval(t *testing.T) {
	job := newTestJob(t, 2, 4)
	stats := runWorkers(t, job, func(_ int, cfg *WorkerConfig) {
		cfg.Elastic.UpdateInterval = 4
	})
	for _, s := range stats {
		want := (s.Iterations + 3) / 4
		if s.Pushes < want-1 || s.Pushes > want {
			t.Fatalf("rank %d: %d pushes for %d iterations at interval 4", s.Rank, s.Pushes, s.Iterations)
		}
	}
}

func TestWorkerDisableOverlapAblation(t *testing.T) {
	job := newTestJob(t, 2, 5)
	stats := runWorkers(t, job, func(_ int, cfg *WorkerConfig) {
		cfg.DisableOverlap = true
	})
	for _, s := range stats {
		if s.Pushes != s.Iterations {
			t.Fatalf("inline pushes %d != iterations %d", s.Pushes, s.Iterations)
		}
		if s.LossHistory[len(s.LossHistory)-1] >= s.LossHistory[0] {
			t.Fatal("no-overlap run did not learn")
		}
	}
}

func TestWorkerHideGlobalReadAblation(t *testing.T) {
	job := newTestJob(t, 2, 6)
	stats := runWorkers(t, job, func(_ int, cfg *WorkerConfig) {
		cfg.HideGlobalRead = true
	})
	for _, s := range stats {
		if s.Iterations != 40 {
			t.Fatalf("iterations %d", s.Iterations)
		}
	}
}

// TestStopOnFirstAlignsWorkers: with the "first finisher" criterion every
// worker ends promptly once any worker hits the budget; no worker runs to
// the hard cap.
func TestStopOnFirstAlignsWorkers(t *testing.T) {
	job := newTestJob(t, 3, 7)
	stats := runWorkers(t, job, func(_ int, cfg *WorkerConfig) {
		cfg.Termination = StopOnFirst
	})
	reached := false
	for _, s := range stats {
		if s.Iterations >= 40 {
			reached = true
		}
		if s.Iterations > 80 {
			t.Fatalf("rank %d ran %d iterations — alignment failed", s.Rank, s.Iterations)
		}
	}
	if !reached {
		t.Fatal("no worker reached the budget")
	}
}

func TestStopOnMasterAlignsWorkers(t *testing.T) {
	job := newTestJob(t, 3, 8)
	stats := runWorkers(t, job, func(_ int, cfg *WorkerConfig) {
		cfg.Termination = StopOnMaster
	})
	if stats[0].Iterations < 40 {
		t.Fatalf("master stopped at %d < budget", stats[0].Iterations)
	}
	for _, s := range stats {
		if s.Iterations > 200 {
			t.Fatalf("rank %d ran away: %d iterations", s.Rank, s.Iterations)
		}
	}
}

func TestStopOnAverage(t *testing.T) {
	job := newTestJob(t, 3, 9)
	stats := runWorkers(t, job, func(_ int, cfg *WorkerConfig) {
		cfg.Termination = StopOnAverage
	})
	var sum int
	for _, s := range stats {
		sum += s.Iterations
	}
	if sum < 3*40-6 {
		t.Fatalf("total iterations %d below average target", sum)
	}
}

// TestSetupBuffersLayout verifies the Fig. 5 segment family exists after
// bootstrap: Wg, per-worker ΔWx, control.
func TestSetupBuffersLayout(t *testing.T) {
	job := newTestJob(t, 3, 10)
	runWorkers(t, job, nil)
	client := smb.NewLocalClient(job.store)
	names := smb.SegmentNames{Job: "job"}
	if _, err := client.Lookup(names.Global()); err != nil {
		t.Fatalf("global segment missing: %v", err)
	}
	if _, err := client.Lookup(names.Control()); err != nil {
		t.Fatalf("control segment missing: %v", err)
	}
	for r := 0; r < 3; r++ {
		if _, err := client.Lookup(names.Increment(r)); err != nil {
			t.Fatalf("increment segment %d missing: %v", r, err)
		}
	}
}

// TestAccumulateStatsMatchPushes: the number of server-side accumulates
// equals the sum of worker pushes — no lost or duplicated updates.
func TestAccumulateStatsMatchPushes(t *testing.T) {
	job := newTestJob(t, 3, 11)
	stats := runWorkers(t, job, nil)
	var pushes int64
	for _, s := range stats {
		pushes += int64(s.Pushes)
	}
	if got := job.store.Stats().Accumulates; got != pushes {
		t.Fatalf("server saw %d accumulates, workers pushed %d", got, pushes)
	}
}

// TestWorkerHookErrorAborts: a failing hook aborts training cleanly.
func TestWorkerHookErrorAborts(t *testing.T) {
	job := newTestJob(t, 1, 71)
	boom := errors.New("boom")
	stats := make([]*RunStats, 1)
	cfg := job.workerConfig(t, 0, "hookfail")
	cfg.Hook = func(w *Worker, iter int) error {
		if iter == 3 {
			return boom
		}
		return nil
	}
	w, err := NewWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats[0], err = w.Run()
	if !errors.Is(err, boom) {
		t.Fatalf("want hook error, got %v", err)
	}
	if stats[0] != nil {
		t.Fatal("stats returned despite error")
	}
}

// TestWorkerHideGlobalReadUsesCachedCopy: in the ablation mode, the first
// exchange sees the initial Wg even after another worker changed it,
// demonstrating the staleness the paper avoids.
func TestWorkerTerminationFlagPreempts(t *testing.T) {
	job := newTestJob(t, 2, 72)
	stats := runWorkers(t, job, func(rank int, cfg *WorkerConfig) {
		cfg.Termination = StopOnFirst
		cfg.MaxIterations = 1000
		if rank == 0 {
			cfg.Hook = func(w *Worker, iter int) error {
				if iter == 5 {
					return w.Buffers().SignalStop()
				}
				return nil
			}
		}
	})
	for _, s := range stats {
		if s.Iterations > 400 {
			t.Fatalf("flag did not preempt: %d iterations", s.Iterations)
		}
	}
}
