//go:build !race

package core

// raceEnabled reports whether the race detector is compiled in; the
// zero-allocation guards skip under it because race instrumentation
// allocates.
const raceEnabled = false
