package core

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"shmcaffe/internal/dataset"
	"shmcaffe/internal/faults"
	"shmcaffe/internal/smb"
)

// Crash-aware termination alignment (Sec. III-E under failures) and the
// end-to-end fault-injection acceptance run.

// runWorkersAllowFail is runWorkers for tests where some ranks are EXPECTED
// to fail: it returns per-rank stats and errors instead of failing the test.
func runWorkersAllowFail(t *testing.T, job *testJob, mutate func(rank int, cfg *WorkerConfig)) ([]*RunStats, []error) {
	t.Helper()
	n := job.world.Size()
	stats := make([]*RunStats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := job.workerConfig(t, r, "job")
			if mutate != nil {
				mutate(r, &cfg)
			}
			w, err := NewWorker(cfg)
			if err != nil {
				errs[r] = err
				return
			}
			stats[r], errs[r] = w.Run()
		}()
	}
	wg.Wait()
	return stats, errs
}

var errInjectedCrash = errors.New("injected worker crash")

func hasRank(ranks []int, want int) bool {
	for _, r := range ranks {
		if r == want {
			return true
		}
	}
	return false
}

// TestLivenessTrackerStaleness drives the tracker with a fake clock:
// advancing beats keep a worker alive, a frozen beat kills it after the
// timeout, a tombstone kills it immediately, and death is permanent.
func TestLivenessTrackerStaleness(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	tr := newLivenessTracker(0, 3, 100*time.Millisecond, clock)

	alive := tr.observe([]int64{1, 1, 1})
	if !alive[0] || !alive[1] || !alive[2] {
		t.Fatalf("fresh beats: alive = %v, want all true", alive)
	}

	// Rank 1's beat freezes; rank 2 keeps beating.
	now = now.Add(60 * time.Millisecond)
	alive = tr.observe([]int64{1, 1, 2})
	if !alive[1] {
		t.Fatalf("60ms stale < 100ms timeout, but rank 1 declared dead")
	}
	now = now.Add(60 * time.Millisecond)
	alive = tr.observe([]int64{1, 1, 3})
	if alive[1] {
		t.Fatal("rank 1 stale 120ms > 100ms timeout, still alive")
	}
	if !alive[2] {
		t.Fatal("rank 2 kept beating but was declared dead")
	}

	// Death is permanent even if the beat starts moving again.
	now = now.Add(time.Millisecond)
	alive = tr.observe([]int64{1, 99, 4})
	if alive[1] {
		t.Fatal("dead rank 1 resurrected by a late beat")
	}
	// Self never dies, however stale its own slot looks.
	now = now.Add(time.Hour)
	alive = tr.observe([]int64{1, 99, 5})
	if !alive[0] {
		t.Fatal("self declared dead")
	}
	if got := tr.deadRanks(nil); len(got) != 1 || got[0] != 1 {
		t.Fatalf("deadRanks = %v, want [1]", got)
	}
}

func TestLivenessTrackerTombstone(t *testing.T) {
	tr := newLivenessTracker(0, 2, 0, nil) // zero timeout: tombstones only
	alive := tr.observe([]int64{5, deadTombstone})
	if alive[1] {
		t.Fatal("tombstone not observed")
	}
	// With staleness disabled, a frozen (non-tombstone) beat never kills.
	alive = tr.observe([]int64{5, deadTombstone})
	if !alive[0] {
		t.Fatal("rank 0 declared dead with staleness disabled")
	}
}

func TestShouldStopAlive(t *testing.T) {
	progress := []int64{2, 30, 30}
	deadMaster := []bool{false, true, true}
	// Dead master: the lowest live rank becomes the progress reference.
	if !StopOnMaster.ShouldStopAlive(progress, deadMaster, 30) {
		t.Fatal("master dead, re-elected reference at target, want stop")
	}
	if StopOnMaster.ShouldStopAlive([]int64{2, 10, 30}, deadMaster, 30) {
		t.Fatal("re-elected reference below target, want keep running")
	}
	// StopOnAverage: the dead worker's frozen counter must not drag the
	// mean — [2, 30, 30] averages 20.7 with the corpse, 30 without.
	if !StopOnAverage.ShouldStopAlive(progress, deadMaster, 30) {
		t.Fatal("live mean at target, want stop")
	}
	if StopOnAverage.ShouldStopAlive(progress, nil, 30) {
		t.Fatal("nil alive view must reproduce the fault-free average")
	}
	// StopOnFirst ignores liveness: counters are monotone.
	if !StopOnFirst.ShouldStopAlive(progress, deadMaster, 30) {
		t.Fatal("some counter at target, want stop")
	}
	// Everyone dead: nothing left to wait for.
	if !StopOnAverage.ShouldStopAlive([]int64{1, 1}, []bool{false, false}, 30) {
		t.Fatal("all dead, want stop")
	}
}

// TestMasterCrashSurvivorsReElect: with StopOnMaster the seed's protocol
// freezes the job forever when the master dies below target (its counter
// never reaches it). With liveness the survivors re-elect the lowest live
// rank as the reference and terminate on schedule.
func TestMasterCrashSurvivorsReElect(t *testing.T) {
	job := newTestJob(t, 3, 17)
	stats, errs := runWorkersAllowFail(t, job, func(rank int, cfg *WorkerConfig) {
		cfg.Termination = StopOnMaster
		cfg.MaxIterations = 30
		cfg.LivenessTimeout = 10 * time.Second // tombstone path only: deterministic
		if rank == 0 {
			cfg.Hook = func(w *Worker, iter int) error {
				if iter >= 2 {
					return errInjectedCrash
				}
				return nil
			}
		}
	})
	if !errors.Is(errs[0], errInjectedCrash) {
		t.Fatalf("rank 0 error = %v, want injected crash", errs[0])
	}
	for r := 1; r < 3; r++ {
		if errs[r] != nil {
			t.Fatalf("survivor %d failed: %v", r, errs[r])
		}
		// Well below the hard cap (MaxIterations*100): the survivors did
		// not spin waiting for a master that will never finish.
		if stats[r].Iterations >= 100 {
			t.Fatalf("survivor %d ran %d iterations — termination never re-aligned", r, stats[r].Iterations)
		}
		if !hasRank(stats[r].DeadPeers, 0) {
			t.Fatalf("survivor %d dead peers = %v, want [0]", r, stats[r].DeadPeers)
		}
	}
}

// TestAverageExcludesDeadWorker: under StopOnAverage a crashed worker's
// frozen counter must not make the survivors grind out its unfinished
// share. With exclusion the three survivors need ~target iterations each;
// without it they would need ~(4*target - crashpoint)/3.
func TestAverageExcludesDeadWorker(t *testing.T) {
	const target = 30
	job := newTestJob(t, 4, 23)
	stats, errs := runWorkersAllowFail(t, job, func(rank int, cfg *WorkerConfig) {
		cfg.Termination = StopOnAverage
		cfg.MaxIterations = target
		cfg.LivenessTimeout = 10 * time.Second
		if rank == 3 {
			cfg.Hook = func(w *Worker, iter int) error {
				if iter >= 3 {
					return errInjectedCrash
				}
				return nil
			}
		}
	})
	if !errors.Is(errs[3], errInjectedCrash) {
		t.Fatalf("rank 3 error = %v, want injected crash", errs[3])
	}
	var sum int
	for r := 0; r < 3; r++ {
		if errs[r] != nil {
			t.Fatalf("survivor %d failed: %v", r, errs[r])
		}
		if !hasRank(stats[r].DeadPeers, 3) {
			t.Fatalf("survivor %d dead peers = %v, want [3]", r, stats[r].DeadPeers)
		}
		sum += stats[r].Iterations
	}
	// Alive-only mean >= target needs sum >= 3*target; without exclusion
	// the predicate would demand sum >= 4*target - 4 (the corpse's 4
	// iterations). The margin between proves the corpse was excluded.
	if sum < 3*target {
		t.Fatalf("survivors stopped early: Σ=%d < %d", sum, 3*target)
	}
	if sum >= 4*target-10 {
		t.Fatalf("survivors ran Σ=%d iterations — dead worker's share was not excluded", sum)
	}
}

// failingLabels serves healthy samples until a budget is spent, then
// returns out-of-range labels — TrainStep fails, modelling a member whose
// replica goes bad mid-run.
type failingLabels struct {
	dataset.Dataset
	mu      sync.Mutex
	healthy int
}

func (d *failingLabels) Sample(i int, x []float32) int {
	lbl := d.Dataset.Sample(i, x)
	d.mu.Lock()
	d.healthy--
	bad := d.healthy < 0
	d.mu.Unlock()
	if bad {
		return 1 << 20
	}
	return lbl
}

// TestHybridGroupShrinksPastFailedMember: a non-root member failing mid-run
// no longer kills the whole group (the seed aborted the NCCL group): the
// ring shrinks past it, the survivors finish the budget, and the failure is
// recorded.
func TestHybridGroupShrinksPastFailedMember(t *testing.T) {
	configs, _, ds := buildHybridJob(t, 1, 4, 29)
	shard, err := dataset.NewShard(ds, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := dataset.NewLoader(&failingLabels{Dataset: shard, healthy: 5 * 8}, 8, 77)
	if err != nil {
		t.Fatal(err)
	}
	configs[0].Loaders[2] = loader

	g, err := NewHybridGroup(configs[0])
	if err != nil {
		t.Fatal(err)
	}
	stats, err := g.Run()
	if err != nil {
		t.Fatalf("group run failed despite member shrink: %v", err)
	}
	if len(stats.FailedMembers) != 1 || stats.FailedMembers[0] != 2 {
		t.Fatalf("failed members = %v, want [2]", stats.FailedMembers)
	}
	if stats.Iterations != configs[0].MaxIterations {
		t.Fatalf("survivors ran %d iterations, want the full budget %d",
			stats.Iterations, configs[0].MaxIterations)
	}
	if stats.Pushes == 0 {
		t.Fatal("root pushed nothing after the shrink")
	}
}

// TestFaultyTrainingRunAcceptance is the issue's acceptance scenario: four
// workers train over TCP through connections dropping ~5% of operations,
// the SMB server crashes and restarts once mid-run, and one worker crashes
// for good. The survivors must converge on an aligned stop, and every
// retried push must have applied exactly once: the store's accumulate
// counter equals the sum of the clients' applied-push counters.
func TestFaultyTrainingRunAcceptance(t *testing.T) {
	const (
		n      = 4
		target = 25
	)
	store := smb.NewStore()
	rs, err := faults.NewRestartableServer("127.0.0.1:0", func(addr string) (faults.Frontend, error) {
		srv, err := smb.NewServer(store, addr)
		if err != nil {
			return nil, err
		}
		return srv, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	injs := make([]*faults.Injector, n)
	clients := make([]*smb.SupervisedClient, n)
	for r := 0; r < n; r++ {
		r := r
		injs[r] = faults.New(faults.Config{DropRate: 0.05, Seed: uint64(100 + r)})
		clients[r] = smb.NewSupervisedClient(smb.SupervisedConfig{
			Addr: rs.Addr(),
			Dial: func(addr string) (*smb.StreamClient, error) {
				nc, err := net.DialTimeout("tcp", addr, time.Second)
				if err != nil {
					return nil, fmt.Errorf("dial %s: %w: %w", addr, smb.ErrTransport, err)
				}
				return smb.NewStreamClient(injs[r].WrapConn(nc)), nil
			},
			OpTimeout:   2 * time.Second,
			MaxAttempts: 30,
			BackoffBase: time.Millisecond,
			BackoffMax:  20 * time.Millisecond,
			Seed:        uint64(1000 + r),
			ClientID:    uint64(r + 1), // multi-client job: rank-derived dedup identity
		})
	}

	job := newTestJob(t, n, 41)
	var restartOnce sync.Once
	stats, errs := runWorkersAllowFail(t, job, func(rank int, cfg *WorkerConfig) {
		cfg.Client = clients[rank]
		cfg.Termination = StopOnAverage
		cfg.MaxIterations = target
		cfg.LivenessTimeout = 10 * time.Second
		switch rank {
		case 0:
			cfg.Hook = func(w *Worker, iter int) error {
				if iter == 8 {
					restartOnce.Do(func() {
						if err := rs.Crash(); err != nil {
							t.Error(err)
						}
						if err := rs.Restart(); err != nil {
							t.Error(err)
						}
					})
				}
				return nil
			}
		case 3:
			cfg.Hook = func(w *Worker, iter int) error {
				if iter >= 5 {
					return errInjectedCrash
				}
				return nil
			}
		}
	})

	if !errors.Is(errs[3], errInjectedCrash) {
		t.Fatalf("rank 3 error = %v, want injected crash", errs[3])
	}
	for r := 0; r < 3; r++ {
		if errs[r] != nil {
			t.Fatalf("survivor %d failed: %v", r, errs[r])
		}
		if stats[r].StoppedBy == "budget" || stats[r].StoppedBy == "" {
			t.Fatalf("survivor %d stopped by %q, want an aligned stop", r, stats[r].StoppedBy)
		}
		if !hasRank(stats[r].DeadPeers, 3) {
			t.Fatalf("survivor %d dead peers = %v, want [3]", r, stats[r].DeadPeers)
		}
	}
	if rs.Crashes() != 1 {
		t.Fatalf("server crashes = %d, want 1", rs.Crashes())
	}
	var drops int64
	for _, inj := range injs {
		drops += inj.Stats().Drops
	}
	if drops == 0 {
		t.Fatal("no connection drops injected; the scenario exercised nothing")
	}

	// The exactly-once invariant. Every push (worker iteration exchange)
	// went through a sequence-stamped accumulate; however many times drops
	// and the restart forced retries, each must have folded into Wg once.
	var pushes int64
	for _, c := range clients {
		pushes += c.Stats().Pushes
	}
	if acc := store.Stats().Accumulates; acc != pushes {
		t.Fatalf("server accumulates = %d, client pushes = %d — a retry double-applied or a push was lost",
			acc, pushes)
	}
	for _, c := range clients {
		c.Close()
	}
}
