package core

import (
	"fmt"
	"time"

	"shmcaffe/internal/smb"
	"shmcaffe/internal/tensor"
)

// SMB-only bootstrap: form a training job across OS processes with no MPI
// runtime at all, using the memory server itself for rendezvous. The
// master creates the segments; workers poll for them; a boot segment of
// per-rank ready flags provides the startup barrier. This is the shape a
// multi-machine deployment takes with cmd/smbserver plus one
// `shmtrain -rank R -world N` per machine.

// bootSegment returns the bootstrap-barrier segment name.
func bootSegment(job string) string { return job + "/boot" }

// BootstrapOptions tunes the polling rendezvous.
type BootstrapOptions struct {
	// PollInterval is the delay between rendezvous polls (default 20ms).
	PollInterval time.Duration
	// Timeout bounds the whole bootstrap (default 60s).
	Timeout time.Duration
}

func (o *BootstrapOptions) defaults() {
	if o.PollInterval <= 0 {
		o.PollInterval = 20 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 60 * time.Second
	}
}

// SetupBuffersPolling is SetupBuffers without an MPI communicator: rank 0
// creates and seeds the segments; other ranks poll the server until they
// appear; everyone then passes a ready-flag barrier. All ranks must call
// it with the same job, n and elems.
func SetupBuffersPolling(client smb.Client, job string, rank, n, elems int, initWeights []float32, opts BootstrapOptions) (*JobBuffers, error) {
	opts.defaults()
	if elems <= 0 || n < 1 || rank < 0 || rank >= n {
		return nil, fmt.Errorf("bootstrap %q rank %d of %d, %d elems: %w", job, rank, n, elems, ErrConfig)
	}
	names := smb.SegmentNames{Job: job}
	deadline := time.Now().Add(opts.Timeout)

	if rank == 0 {
		if len(initWeights) != elems {
			return nil, fmt.Errorf("bootstrap %q: %d init weights for %d elems: %w",
				job, len(initWeights), elems, ErrConfig)
		}
		key, err := client.Create(names.Global(), elems*4)
		if err != nil {
			return nil, fmt.Errorf("create global: %w", err)
		}
		if _, err := client.Create(names.Control(), controlSize(n)); err != nil {
			return nil, fmt.Errorf("create control: %w", err)
		}
		if _, err := client.Create(bootSegment(job), n*8); err != nil {
			return nil, fmt.Errorf("create boot: %w", err)
		}
		h, err := client.Attach(key)
		if err != nil {
			return nil, err
		}
		if err := client.Write(h, 0, tensor.Float32Bytes(initWeights)); err != nil {
			return nil, fmt.Errorf("seed global: %w", err)
		}
		if err := client.Detach(h); err != nil {
			return nil, err
		}
	}

	// Everyone (master included) waits for the segment family, then
	// attaches.
	var globalKey smb.SHMKey
	for {
		key, err := client.Lookup(names.Global())
		if err == nil {
			// The boot segment is created last by the master, so its
			// presence implies the whole family is ready.
			if _, err := client.Lookup(bootSegment(job)); err == nil {
				globalKey = key
				break
			}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bootstrap %q rank %d: rendezvous timeout: %w", job, rank, ErrConfig)
		}
		time.Sleep(opts.PollInterval)
	}

	global, err := client.Attach(globalKey)
	if err != nil {
		return nil, fmt.Errorf("attach global: %w", err)
	}
	incrKey, err := client.Create(names.Increment(rank), elems*4)
	if err != nil {
		return nil, fmt.Errorf("create increment: %w", err)
	}
	incr, err := client.Attach(incrKey)
	if err != nil {
		return nil, err
	}
	ctlKey, err := client.Lookup(names.Control())
	if err != nil {
		return nil, err
	}
	control, err := client.Attach(ctlKey)
	if err != nil {
		return nil, err
	}

	// Ready-flag barrier: mark our slot, wait for all slots.
	bootKey, err := client.Lookup(bootSegment(job))
	if err != nil {
		return nil, err
	}
	boot, err := client.Attach(bootKey)
	if err != nil {
		return nil, err
	}
	if err := smb.WriteInt64(client, boot, rank, 1); err != nil {
		return nil, err
	}
	for {
		flags, err := smb.ReadInt64Slots(client, boot, n)
		if err != nil {
			return nil, err
		}
		allReady := true
		for _, f := range flags {
			if f == 0 {
				allReady = false
				break
			}
		}
		if allReady {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bootstrap %q rank %d: barrier timeout (flags %v): %w",
				job, rank, flags, ErrConfig)
		}
		time.Sleep(opts.PollInterval)
	}
	if err := client.Detach(boot); err != nil {
		return nil, err
	}

	// Feature-test the chunk-pipelined push exactly like SetupBuffers does
	// (the seed forgot this here, so polling-bootstrapped workers silently
	// fell back to the unfused Write+Accumulate pair). The trace carrier is
	// feature-tested the same way: without it, polling-bootstrapped workers
	// — i.e. every multi-process worker — silently run untraced.
	wacc, _ := client.(smb.WriteAccumulator)
	carrier, _ := client.(smb.TraceCarrier)
	return &JobBuffers{
		client:    client,
		carrier:   carrier,
		wacc:      wacc,
		rank:      rank,
		n:         n,
		elems:     elems,
		globalKey: globalKey,
		global:    global,
		incr:      incr,
		control:   control,
		wgBytes:   make([]byte, elems*4),
		dwBytes:   make([]byte, elems*4),
		wgFloats:  make([]float32, elems),
	}, nil
}

// NewWorkerPolling builds a SEASGD worker using the SMB-only rendezvous:
// rank/world are explicit instead of coming from an MPI communicator. The
// returned worker behaves exactly like one from NewWorker.
func NewWorkerPolling(cfg WorkerConfig, rank, world int, opts BootstrapOptions) (*Worker, error) {
	if cfg.Comm != nil {
		return nil, fmt.Errorf("polling bootstrap excludes an MPI comm: %w", ErrConfig)
	}
	if err := cfg.validateCommon(); err != nil {
		return nil, err
	}
	if rank < 0 || rank >= world {
		return nil, fmt.Errorf("rank %d of %d: %w", rank, world, ErrConfig)
	}
	if cfg.ProgressEvery < 1 {
		cfg.ProgressEvery = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	elems := cfg.Net.NumParams()
	var seed []float32
	if rank == 0 {
		seed = cfg.Net.FlatWeights(nil)
	}
	buffers, err := SetupBuffersPolling(cfg.Client, cfg.Job, rank, world, elems, seed, opts)
	if err != nil {
		return nil, fmt.Errorf("rank %d polling setup: %w", rank, err)
	}
	// The shared constructor also allocates the staleness-probe scratch the
	// seed's polling path skipped (which silently disabled the telemetry
	// staleness probe for multi-process workers).
	cfg.Telemetry.NameWorker(rank)
	return newWorkerFromBuffers(cfg, rank, buffers), nil
}
