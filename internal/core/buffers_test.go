package core

import (
	"errors"
	"sync"
	"testing"

	"shmcaffe/internal/mpi"
	"shmcaffe/internal/smb"
)

// setupPair bootstraps a 2-rank buffer family for direct JobBuffers tests.
func setupPair(t *testing.T, job string) (store *smb.Store, bufs []*JobBuffers) {
	t.Helper()
	store = smb.NewStore()
	world, err := mpi.NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	bufs = make([]*JobBuffers, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			comm, err := world.Comm(r)
			if err != nil {
				errs[r] = err
				return
			}
			var seed []float32
			if r == 0 {
				seed = make([]float32, 8)
				for i := range seed {
					seed[i] = float32(i)
				}
			}
			bufs[r], errs[r] = SetupBuffers(comm, smb.NewLocalClient(store), job, 8, seed)
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return store, bufs
}

func TestJobBuffersReadPushRoundTrip(t *testing.T) {
	_, bufs := setupPair(t, "jb")
	global := make([]float32, 8)
	if err := bufs[1].ReadGlobal(global); err != nil {
		t.Fatal(err)
	}
	if global[7] != 7 {
		t.Fatalf("seeded global %v", global)
	}
	delta := make([]float32, 8)
	for i := range delta {
		delta[i] = 0.5
	}
	if err := bufs[1].PushIncrement(delta); err != nil {
		t.Fatal(err)
	}
	if err := bufs[0].ReadGlobal(global); err != nil {
		t.Fatal(err)
	}
	if global[0] != 0.5 || global[7] != 7.5 {
		t.Fatalf("after push %v", global)
	}
}

func TestJobBuffersSizeErrors(t *testing.T) {
	_, bufs := setupPair(t, "jb2")
	if err := bufs[0].ReadGlobal(make([]float32, 4)); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
	if err := bufs[0].PushIncrement(make([]float32, 4)); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}

func TestJobBuffersAccessors(t *testing.T) {
	_, bufs := setupPair(t, "jb3")
	if bufs[0].Elems() != 8 || bufs[0].Rank() != 0 || bufs[0].WorldSize() != 2 {
		t.Fatalf("accessors %d %d %d", bufs[0].Elems(), bufs[0].Rank(), bufs[0].WorldSize())
	}
	if bufs[1].Rank() != 1 {
		t.Fatal("rank 1 accessor")
	}
}

func TestJobBuffersStopFlagAndProgress(t *testing.T) {
	_, bufs := setupPair(t, "jb4")
	stop, err := bufs[0].StopRequested()
	if err != nil || stop {
		t.Fatalf("initial stop %v %v", stop, err)
	}
	if err := bufs[1].ReportProgress(17); err != nil {
		t.Fatal(err)
	}
	p, err := bufs[0].Progress()
	if err != nil {
		t.Fatal(err)
	}
	if p[1] != 17 || p[0] != 0 {
		t.Fatalf("progress %v", p)
	}
	if err := bufs[0].SignalStop(); err != nil {
		t.Fatal(err)
	}
	stop, err = bufs[1].StopRequested()
	if err != nil || !stop {
		t.Fatalf("stop after signal %v %v", stop, err)
	}
}

func TestJobBuffersClose(t *testing.T) {
	_, bufs := setupPair(t, "jb5")
	if err := bufs[0].Close(); err != nil {
		t.Fatal(err)
	}
	// After close, handles are detached: operations fail.
	if err := bufs[0].ReadGlobal(make([]float32, 8)); err == nil {
		t.Fatal("expected error after close")
	}
	// Closing twice surfaces the detach error but does not panic.
	if err := bufs[0].Close(); err == nil {
		t.Fatal("expected error on double close")
	}
}

func TestSetupBuffersValidation(t *testing.T) {
	world, _ := mpi.NewWorld(1)
	comm, _ := world.Comm(0)
	client := smb.NewLocalClient(smb.NewStore())
	if _, err := SetupBuffers(comm, client, "x", 0, nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig for 0 elems, got %v", err)
	}
	if _, err := SetupBuffers(comm, client, "x", 8, []float32{1}); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig for short seed, got %v", err)
	}
}
