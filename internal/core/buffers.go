package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"shmcaffe/internal/mpi"
	"shmcaffe/internal/smb"
	"shmcaffe/internal/tensor"
)

// JobBuffers is one worker's view of the SMB segment layout of Fig. 5:
// the shared global-weight buffer Wg, the worker's private weight-increment
// buffer ΔWx, and the control segment carrying per-worker progress counters
// plus a stop flag (Sec. III-E).
type JobBuffers struct {
	client smb.Client
	// carrier is non-nil when client can stamp cross-process trace contexts
	// onto its wire frames (smb.StreamClient and smb.SupervisedClient do).
	carrier smb.TraceCarrier
	// wacc is non-nil when client supports the chunk-pipelined
	// WRITE+ACCUMULATE sequence (all in-repo clients do; test doubles that
	// wrap the interface fall back to the split Write+Accumulate pair).
	wacc  smb.WriteAccumulator
	rank  int
	n     int
	elems int

	globalKey smb.SHMKey
	global    smb.Handle // Wg (shared)
	incr      smb.Handle // ΔWx (private to this worker)
	control   smb.Handle // progress counters + stop flag

	// scratch buffers reused across iterations
	wgBytes  []byte
	dwBytes  []byte
	wgFloats []float32
}

// Control segment layout: n int64 iteration counters, one int64 stop flag
// (slot n), then n int64 heartbeat slots (slots n+1 .. 2n), then n int64
// wall-clock slots (slots 2n+1 .. 3n). A heartbeat slot carries a
// monotonically increasing beat while its worker lives and the tombstone
// value when the worker dies on purpose (MarkDead); a worker that crashes
// without a tombstone is detected by its beat going stale (see
// livenessTracker). A clock slot carries the worker's wall clock
// (UnixNano) as of its last beat — the per-node clock sample a fleet
// aggregator (shmtop) uses to estimate cross-node clock offsets when
// aligning merged traces.
func controlSize(n int) int { return ControlSegmentSlots(n) * 8 }

// ControlSegmentSlots returns the number of int64 slots in the control
// segment of an n-worker job (progress + stop flag + heartbeats + clocks).
func ControlSegmentSlots(n int) int { return 3*n + 1 }

const stopFlagSlot = -1 // resolved to slot n at runtime

// deadTombstone is the heartbeat value a worker writes on its way out of a
// failed Run — an explicit obituary, faster to detect than staleness.
const deadTombstone int64 = -1

// DeadTombstone is the exported view of the heartbeat tombstone, for
// diagnostics that read the control segment from outside the worker
// (fleet aggregators, tests).
const DeadTombstone = deadTombstone

// SetupBuffers performs the Fig. 2 bootstrap. The master (rank 0) creates
// the Wg and control segments and seeds Wg with initWeights; every rank
// creates its own increment segment; the master broadcasts the Wg SHM key
// over MPI and everyone attaches. The call is collective: all ranks of
// comm's world must invoke it.
func SetupBuffers(comm *mpi.Comm, client smb.Client, job string, elems int, initWeights []float32) (*JobBuffers, error) {
	if elems <= 0 {
		return nil, fmt.Errorf("setup %q with %d elements: %w", job, elems, ErrConfig)
	}
	names := smb.SegmentNames{Job: job}
	n := comm.Size()
	rank := comm.Rank()

	var globalKey smb.SHMKey
	if rank == 0 {
		if len(initWeights) != elems {
			return nil, fmt.Errorf("setup %q: %d init weights for %d elements: %w",
				job, len(initWeights), elems, ErrConfig)
		}
		key, err := client.Create(names.Global(), elems*4)
		if err != nil {
			return nil, fmt.Errorf("create global: %w", err)
		}
		globalKey = key
		if _, err := client.Create(names.Control(), controlSize(n)); err != nil {
			return nil, fmt.Errorf("create control: %w", err)
		}
		// Seed Wg with the initial weights so all replicas start from
		// the same point (master worker "initializes parameter",
		// Sec. III-A).
		h, err := client.Attach(key)
		if err != nil {
			return nil, fmt.Errorf("attach global for init: %w", err)
		}
		if err := client.Write(h, 0, tensor.Float32Bytes(initWeights)); err != nil {
			return nil, fmt.Errorf("seed global: %w", err)
		}
		if err := client.Detach(h); err != nil {
			return nil, fmt.Errorf("detach init handle: %w", err)
		}
	}

	// Broadcast the SHM key (Fig. 2 "Broadcast SHM key").
	var keyBuf [8]byte
	binary.LittleEndian.PutUint64(keyBuf[:], uint64(globalKey))
	out, err := comm.Bcast(0, keyBuf[:])
	if err != nil {
		return nil, fmt.Errorf("broadcast shm key: %w", err)
	}
	globalKey = smb.SHMKey(binary.LittleEndian.Uint64(out))

	global, err := client.Attach(globalKey)
	if err != nil {
		return nil, fmt.Errorf("attach global: %w", err)
	}
	incrKey, err := client.Create(names.Increment(rank), elems*4)
	if err != nil {
		return nil, fmt.Errorf("create increment: %w", err)
	}
	incr, err := client.Attach(incrKey)
	if err != nil {
		return nil, fmt.Errorf("attach increment: %w", err)
	}
	ctlKey, err := client.Lookup(names.Control())
	if err != nil {
		return nil, fmt.Errorf("lookup control: %w", err)
	}
	control, err := client.Attach(ctlKey)
	if err != nil {
		return nil, fmt.Errorf("attach control: %w", err)
	}
	// All ranks attached before anyone starts writing.
	comm.Barrier()

	wacc, _ := client.(smb.WriteAccumulator)
	carrier, _ := client.(smb.TraceCarrier)
	return &JobBuffers{
		client:    client,
		carrier:   carrier,
		wacc:      wacc,
		rank:      rank,
		n:         n,
		elems:     elems,
		globalKey: globalKey,
		global:    global,
		incr:      incr,
		control:   control,
		wgBytes:   make([]byte, elems*4),
		dwBytes:   make([]byte, elems*4),
		wgFloats:  make([]float32, elems),
	}, nil
}

// ReadGlobal fetches Wg into dst (len elems) — the T1 step.
func (b *JobBuffers) ReadGlobal(dst []float32) error {
	if len(dst) != b.elems {
		return fmt.Errorf("read global into %d elements, want %d: %w", len(dst), b.elems, ErrConfig)
	}
	if err := b.client.Read(b.global, 0, b.wgBytes); err != nil {
		return fmt.Errorf("read global: %w", err)
	}
	return tensor.DecodeFloat32(b.wgBytes, dst)
}

// WriteIncrement stores delta into the worker's ΔWx segment — the T.A2
// store of the push. Split from AccumulateIncrement so the phase tracer can
// time the two halves of the exchange separately.
func (b *JobBuffers) WriteIncrement(delta []float32) error {
	if len(delta) != b.elems {
		return fmt.Errorf("push %d elements, want %d: %w", len(delta), b.elems, ErrConfig)
	}
	if _, err := tensor.EncodeFloat32(delta, b.dwBytes); err != nil {
		return err
	}
	if err := b.client.Write(b.incr, 0, b.dwBytes); err != nil {
		return fmt.Errorf("write increment: %w", err)
	}
	return nil
}

// AccumulateIncrement asks the server to fold the previously written ΔWx
// into Wg — the T.A3 accumulate, Eq. (7).
func (b *JobBuffers) AccumulateIncrement() error {
	if err := b.client.Accumulate(b.global, b.incr); err != nil {
		return fmt.Errorf("accumulate: %w", err)
	}
	return nil
}

// PushIncrement writes delta into the worker's ΔWx segment and asks the
// server to accumulate it into Wg — the full T.A2–T.A3 push, Eq. (7).
// When the client supports it, the push streams as a chunk-pipelined
// WRITE+ACCUMULATE sequence.
func (b *JobBuffers) PushIncrement(delta []float32) error {
	if b.CanStreamPush() {
		return b.StreamIncrement(delta)
	}
	if err := b.WriteIncrement(delta); err != nil {
		return err
	}
	return b.AccumulateIncrement()
}

// CanStreamPush reports whether the client supports the chunk-pipelined
// WRITE+ACCUMULATE sequence, making StreamIncrement available.
func (b *JobBuffers) CanStreamPush() bool { return b.wacc != nil }

// StreamIncrement pushes delta as one chunked WRITE+ACCUMULATE sequence:
// the server folds chunk k into Wg while chunk k+1 is still on the wire,
// overlapping the ΔWx store with the accumulate instead of running them
// back-to-back. Observable effects match WriteIncrement followed by
// AccumulateIncrement exactly — ΔWx holds delta afterwards, Wg += ΔWx once,
// and the server counts one Write and one Accumulate. Callers must check
// CanStreamPush first.
func (b *JobBuffers) StreamIncrement(delta []float32) error {
	if err := b.StageIncrement(delta); err != nil {
		return err
	}
	return b.StreamStaged()
}

// StageIncrement encodes delta into the wire staging buffer — the local
// half of a streamed push. Split from StreamStaged so the phase tracer can
// put the span boundary between preparing ΔWx (T.A2) and the pipelined
// store+fold (T.A3).
func (b *JobBuffers) StageIncrement(delta []float32) error {
	if len(delta) != b.elems {
		return fmt.Errorf("push %d elements, want %d: %w", len(delta), b.elems, ErrConfig)
	}
	_, err := tensor.EncodeFloat32(delta, b.dwBytes)
	return err
}

// StreamStaged issues the chunked WRITE+ACCUMULATE sequence for the staged
// increment. StageIncrement must have been called first.
func (b *JobBuffers) StreamStaged() error {
	if err := b.wacc.WriteAccumulate(b.global, b.incr, b.dwBytes); err != nil {
		return fmt.Errorf("stream increment: %w", err)
	}
	return nil
}

// ReportProgress publishes this worker's completed iteration count to its
// control slot.
func (b *JobBuffers) ReportProgress(iter int64) error {
	return smb.WriteInt64(b.client, b.control, b.rank, iter)
}

// Progress reads every worker's published iteration count.
func (b *JobBuffers) Progress() ([]int64, error) {
	return smb.ReadInt64Slots(b.client, b.control, b.n)
}

// ProgressInto reads every worker's published iteration count into out
// (len WorldSize) without allocating — the telemetry staleness probe calls
// this on every T1 read.
func (b *JobBuffers) ProgressInto(out []int64) error {
	if len(out) != b.n {
		return fmt.Errorf("progress into %d slots, want %d: %w", len(out), b.n, ErrConfig)
	}
	return smb.ReadInt64SlotsInto(b.client, b.control, out)
}

// Beat publishes this worker's heartbeat — any value strictly greater than
// the last one it published (the iteration count works) — and stamps the
// worker's wall clock into its clock slot. Written alongside ReportProgress
// when liveness tracking is enabled; the clock stamp is what lets a fleet
// aggregator estimate per-node clock offsets from the control segment.
func (b *JobBuffers) Beat(v int64) error {
	if err := smb.WriteInt64(b.client, b.control, b.n+1+b.rank, v); err != nil {
		return err
	}
	return smb.WriteInt64(b.client, b.control, 2*b.n+1+b.rank, time.Now().UnixNano())
}

// MarkDead writes this worker's tombstone. Called best-effort on the error
// path out of Run so peers stop waiting for a worker that announced its own
// death instead of burning a full liveness timeout detecting it.
func (b *JobBuffers) MarkDead() error {
	return smb.WriteInt64(b.client, b.control, b.n+1+b.rank, deadTombstone)
}

// HeartbeatsInto reads every worker's heartbeat slot into out (len
// WorldSize) without allocating.
func (b *JobBuffers) HeartbeatsInto(out []int64) error {
	if len(out) != b.n {
		return fmt.Errorf("heartbeats into %d slots, want %d: %w", len(out), b.n, ErrConfig)
	}
	return smb.ReadInt64SlotsAtInto(b.client, b.control, b.n+1, out)
}

// ClocksInto reads every worker's wall-clock slot (UnixNano as of its last
// Beat; zero before the first) into out (len WorldSize) without allocating.
func (b *JobBuffers) ClocksInto(out []int64) error {
	if len(out) != b.n {
		return fmt.Errorf("clocks into %d slots, want %d: %w", len(out), b.n, ErrConfig)
	}
	return smb.ReadInt64SlotsAtInto(b.client, b.control, 2*b.n+1, out)
}

// TraceCarrier returns the client's trace-stamping surface, or nil when the
// underlying client cannot carry trace contexts on its wire frames.
func (b *JobBuffers) TraceCarrier() smb.TraceCarrier { return b.carrier }

// SignalStop raises the shared stop flag; every worker observes it at its
// next termination check.
func (b *JobBuffers) SignalStop() error {
	return smb.WriteInt64(b.client, b.control, b.n, 1)
}

// StopRequested reads the shared stop flag.
func (b *JobBuffers) StopRequested() (bool, error) {
	v, err := smb.ReadInt64(b.client, b.control, b.n)
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

// Elems returns the weight vector length.
func (b *JobBuffers) Elems() int { return b.elems }

// Rank returns the owning worker's rank.
func (b *JobBuffers) Rank() int { return b.rank }

// WorldSize returns the number of workers in the job.
func (b *JobBuffers) WorldSize() int { return b.n }

// Close detaches the buffers. The master should Free the shared segments
// separately once all workers are done (not done here because order
// matters across ranks).
func (b *JobBuffers) Close() error {
	var firstErr error
	for _, h := range []smb.Handle{b.global, b.incr, b.control} {
		if err := b.client.Detach(h); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
