package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"shmcaffe/internal/dataset"
	"shmcaffe/internal/mpi"
	"shmcaffe/internal/nn"
	"shmcaffe/internal/smb"
	"shmcaffe/internal/tensor"
)

// buildHybridJob creates nGroups groups of groupSize members each.
func buildHybridJob(t *testing.T, nGroups, groupSize int, seed uint64) (configs []HybridGroupConfig, store *smb.Store, ds *dataset.InMemory) {
	t.Helper()
	world, err := mpi.NewWorld(nGroups)
	if err != nil {
		t.Fatal(err)
	}
	store = smb.NewStore()
	ds, err = dataset.NewGaussian(dataset.GaussianConfig{
		Classes: 4, PerClass: 40, Shape: []int{8}, Noise: 0.25, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	solver := nn.DefaultSolverConfig()
	solver.BaseLR = 0.05
	total := nGroups * groupSize
	for gi := 0; gi < nGroups; gi++ {
		comm, err := world.Comm(gi)
		if err != nil {
			t.Fatal(err)
		}
		cfg := HybridGroupConfig{
			Job:           "hjob",
			Comm:          comm,
			Client:        smb.NewLocalClient(store),
			Solver:        solver,
			Elastic:       DefaultElasticConfig(),
			Termination:   StopIndependently,
			MaxIterations: 30,
		}
		for m := 0; m < groupSize; m++ {
			net, err := nn.MLP(fmt.Sprintf("g%dm%d", gi, m), 8, 16, 4)
			if err != nil {
				t.Fatal(err)
			}
			net.InitWeights(tensor.NewRNG(seed))
			shard, err := dataset.NewShard(ds, gi*groupSize+m, total)
			if err != nil {
				t.Fatal(err)
			}
			loader, err := dataset.NewLoader(shard, 8, seed+uint64(gi*groupSize+m))
			if err != nil {
				t.Fatal(err)
			}
			cfg.Nets = append(cfg.Nets, net)
			cfg.Loaders = append(cfg.Loaders, loader)
		}
		configs = append(configs, cfg)
	}
	return configs, store, ds
}

func runHybrid(t *testing.T, configs []HybridGroupConfig) []*GroupStats {
	t.Helper()
	stats := make([]*GroupStats, len(configs))
	errs := make([]error, len(configs))
	var wg sync.WaitGroup
	for i := range configs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := NewHybridGroup(configs[i])
			if err != nil {
				errs[i] = err
				return
			}
			stats[i], errs[i] = g.Run()
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("group %d: %v", i, err)
		}
	}
	return stats
}

func TestHybridConfigValidate(t *testing.T) {
	var cfg HybridGroupConfig
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected error for empty config")
	}
}

func TestHybridSingleGroupTrains(t *testing.T) {
	configs, _, _ := buildHybridJob(t, 1, 2, 1)
	stats := runHybrid(t, configs)
	s := stats[0]
	if s.Iterations != 30 {
		t.Fatalf("iterations %d, want 30", s.Iterations)
	}
	if s.Pushes == 0 {
		t.Fatal("root never pushed to SMB")
	}
	first := s.RootLossHistory[0]
	last := s.RootLossHistory[len(s.RootLossHistory)-1]
	if last >= first {
		t.Fatalf("hybrid loss did not decrease: %v -> %v", first, last)
	}
}

// TestHybridMembersStaySynchronized: after each broadcast the replicas of a
// group are identical; check final weights agree bit-for-bit.
func TestHybridMembersStaySynchronized(t *testing.T) {
	configs, _, _ := buildHybridJob(t, 1, 4, 2)
	runHybrid(t, configs)
	root := configs[0].Nets[0].FlatWeights(nil)
	for m := 1; m < 4; m++ {
		member := configs[0].Nets[m].FlatWeights(nil)
		for i := range root {
			if root[i] != member[i] {
				t.Fatalf("member %d weight %d = %v, root %v", m, i, member[i], root[i])
			}
		}
	}
}

// TestHybridTwoGroupsShareGlobal: two groups exchange through Wg; the
// global weight must be useful for classification afterwards.
func TestHybridTwoGroupsShareGlobal(t *testing.T) {
	configs, store, ds := buildHybridJob(t, 2, 2, 3)
	stats := runHybrid(t, configs)
	for _, s := range stats {
		if s.Iterations == 0 {
			t.Fatal("group did no work")
		}
	}
	client := smb.NewLocalClient(store)
	key, err := client.Lookup(smb.SegmentNames{Job: "hjob"}.Global())
	if err != nil {
		t.Fatal(err)
	}
	h, err := client.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	elems := configs[0].Nets[0].NumParams()
	buf := make([]byte, elems*4)
	if err := client.Read(h, 0, buf); err != nil {
		t.Fatal(err)
	}
	wgVals, err := tensor.Float32FromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range wgVals {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("global weight diverged")
		}
	}
	evalNet, err := nn.MLP("eval", 8, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := evalNet.SetFlatWeights(wgVals); err != nil {
		t.Fatal(err)
	}
	loader, err := dataset.NewLoader(ds, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	b := loader.Next()
	_, acc, err := evalNet.Evaluate(b.X, b.Labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.5 {
		t.Fatalf("hybrid global accuracy %.2f < 0.5", acc)
	}
}

// TestHybridReducesSMBTraffic: compared to pure SEASGD with the same total
// worker count, HSGD with groups of g issues 1/g of the accumulates — the
// communication saving of Sec. III-D.
func TestHybridReducesSMBTraffic(t *testing.T) {
	// Pure asynchronous: 4 independent workers.
	job := newTestJob(t, 4, 4)
	stats := runWorkers(t, job, func(_ int, cfg *WorkerConfig) {
		cfg.MaxIterations = 30
	})
	var asyncPushes int
	for _, s := range stats {
		asyncPushes += s.Pushes
	}

	// Hybrid: 2 groups × 2 members = same 4 workers.
	configs, hstore, _ := buildHybridJob(t, 2, 2, 4)
	hstats := runHybrid(t, configs)
	var hybridPushes int
	for _, s := range hstats {
		hybridPushes += s.Pushes
	}
	if hybridPushes*2 > asyncPushes+4 {
		t.Fatalf("hybrid pushes %d not ~half of async %d", hybridPushes, asyncPushes)
	}
	if got := hstore.Stats().Accumulates; got != int64(hybridPushes) {
		t.Fatalf("server accumulates %d != pushes %d", got, hybridPushes)
	}
}

func TestHybridTerminationStopOnFirst(t *testing.T) {
	configs, _, _ := buildHybridJob(t, 2, 2, 5)
	for i := range configs {
		configs[i].Termination = StopOnFirst
	}
	stats := runHybrid(t, configs)
	reached := false
	for _, s := range stats {
		if s.Iterations >= 30 {
			reached = true
		}
		if s.Iterations > 60 {
			t.Fatalf("group %d ran %d iterations", s.GroupRank, s.Iterations)
		}
	}
	if !reached {
		t.Fatal("no group reached the budget")
	}
}

// TestHybridHookErrorDoesNotDeadlock: a failing root hook aborts the NCCL
// group so sibling members unwind; Run returns the root cause instead of
// hanging at a barrier.
func TestHybridHookErrorDoesNotDeadlock(t *testing.T) {
	configs, _, _ := buildHybridJob(t, 1, 3, 9)
	boom := errors.New("hook boom")
	configs[0].Hook = func(g *HybridGroup, iter int) error {
		if iter == 2 {
			return boom
		}
		return nil
	}
	done := make(chan error, 1)
	go func() {
		g, err := NewHybridGroup(configs[0])
		if err != nil {
			done <- err
			return
		}
		_, err = g.Run()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("want hook error, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("hybrid group deadlocked on member failure")
	}
}
