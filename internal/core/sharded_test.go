package core

import (
	"sync"
	"testing"

	"shmcaffe/internal/mpi"
	"shmcaffe/internal/smb"
	"shmcaffe/internal/tensor"
)

// TestSEASGDOverShardedSMB trains a full SEASGD job with the parameter
// vector striped across TWO SMB stores — the functional counterpart of the
// paper's multiple-SMB-servers future work (the timing side lives in
// perfmodel.SimulateSEASGDMultiServer). Both stores must hold shards, no
// increments may be lost, and the global weight must train.
func TestSEASGDOverShardedSMB(t *testing.T) {
	const workers = 3
	stores := []*smb.Store{smb.NewStore(), smb.NewStore()}
	newSharded := func() smb.Client {
		sc, err := smb.NewShardedClient(
			smb.NewLocalClient(stores[0]), smb.NewLocalClient(stores[1]))
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}

	job := newTestJob(t, workers, 61)
	world, err := mpi.NewWorld(workers)
	if err != nil {
		t.Fatal(err)
	}
	stats := make([]*RunStats, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for r := 0; r < workers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := job.workerConfig(t, r, "sharded")
			comm, err := world.Comm(r)
			if err != nil {
				errs[r] = err
				return
			}
			cfg.Comm = comm
			cfg.Client = newSharded()
			cfg.MaxIterations = 30
			w, err := NewWorker(cfg)
			if err != nil {
				errs[r] = err
				return
			}
			stats[r], errs[r] = w.Run()
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for _, s := range stats {
		if s.Iterations != 30 || s.Pushes == 0 {
			t.Fatalf("stats %+v", s)
		}
	}
	// Both stores actually carry traffic (shards + accumulates).
	for i, st := range stores {
		s := st.Stats()
		if s.Accumulates == 0 || s.BytesWrite == 0 {
			t.Fatalf("store %d idle: %+v", i, s)
		}
	}
	// The striped global weight reads back correctly and is useful.
	client := newSharded()
	key, err := client.Lookup(smb.SegmentNames{Job: "sharded"}.Global())
	if err != nil {
		t.Fatal(err)
	}
	h, err := client.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	elems := job.nets[0].NumParams()
	buf := make([]byte, elems*4)
	if err := client.Read(h, 0, buf); err != nil {
		t.Fatal(err)
	}
	weights, err := tensor.Float32FromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	var nonzero int
	for _, v := range weights {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < elems/2 {
		t.Fatalf("striped global weight mostly zero (%d of %d nonzero)", nonzero, elems)
	}
}
