package core

import (
	"errors"
	"math"
	"testing"

	"shmcaffe/internal/smb"
	"shmcaffe/internal/tensor"
)

// Tests for the fused SEASGD math path: FusedWeightStep must be
// bitwise-identical to the two-pass WeightIncrement → ApplyIncrementLocal
// chain it replaced in the worker's T2 block, and the streamed
// (chunk-pipelined) push must be observably identical to the split
// Write+Accumulate pair.

func fusedVec(n int, seed float32) []float32 {
	v := make([]float32, n)
	x := seed
	for i := range v {
		x = x*1664525 + 1013904223
		v[i] = float32(math.Sin(float64(x))) * 3
	}
	return v
}

func TestFusedWeightStepMatchesUnfused(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 1000} {
		for _, alpha := range []float64{0, 0.125, 0.3, -1.5} {
			local := fusedVec(n, 1)
			global := fusedVec(n, 2)
			wantLocal := append([]float32(nil), local...)
			wantDelta := make([]float32, n)
			if err := WeightIncrement(wantDelta, wantLocal, global, alpha); err != nil {
				t.Fatal(err)
			}
			if err := ApplyIncrementLocal(wantLocal, wantDelta); err != nil {
				t.Fatal(err)
			}

			delta := make([]float32, n)
			if err := FusedWeightStep(delta, local, global, alpha); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if math.Float32bits(delta[i]) != math.Float32bits(wantDelta[i]) ||
					math.Float32bits(local[i]) != math.Float32bits(wantLocal[i]) {
					t.Fatalf("n=%d alpha=%v i=%d: fused (%v,%v) != unfused (%v,%v)",
						n, alpha, i, delta[i], local[i], wantDelta[i], wantLocal[i])
				}
			}
		}
	}
}

func TestFusedWeightStepLengthErrors(t *testing.T) {
	if err := FusedWeightStep(make([]float32, 3), make([]float32, 4), make([]float32, 4), 0.5); !errors.Is(err, ErrConfig) {
		t.Fatalf("short delta: want ErrConfig, got %v", err)
	}
	if err := FusedWeightStep(make([]float32, 4), make([]float32, 4), make([]float32, 3), 0.5); !errors.Is(err, ErrConfig) {
		t.Fatalf("short global: want ErrConfig, got %v", err)
	}
}

// TestElasticExchangeMatchesThreePass pins the fused ElasticExchange against
// the former WeightIncrement → ApplyIncrementLocal → ApplyIncrementGlobal
// chain, bit for bit.
func TestElasticExchangeMatchesThreePass(t *testing.T) {
	const n, alpha = 515, 0.25
	local := fusedVec(n, 3)
	global := fusedVec(n, 4)
	wantLocal := append([]float32(nil), local...)
	wantGlobal := append([]float32(nil), global...)
	scratch := make([]float32, n)
	if err := WeightIncrement(scratch, wantLocal, wantGlobal, alpha); err != nil {
		t.Fatal(err)
	}
	if err := ApplyIncrementLocal(wantLocal, scratch); err != nil {
		t.Fatal(err)
	}
	if err := ApplyIncrementGlobal(wantGlobal, scratch); err != nil {
		t.Fatal(err)
	}

	if err := ElasticExchange(local, global, make([]float32, n), alpha); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Float32bits(local[i]) != math.Float32bits(wantLocal[i]) ||
			math.Float32bits(global[i]) != math.Float32bits(wantGlobal[i]) {
			t.Fatalf("i=%d: fused (%v,%v) != three-pass (%v,%v)",
				i, local[i], global[i], wantLocal[i], wantGlobal[i])
		}
	}
	if err := ElasticExchange(local, global, make([]float32, 1), alpha); !errors.Is(err, ErrConfig) {
		t.Fatalf("short scratch: want ErrConfig, got %v", err)
	}
}

// TestStreamIncrementMatchesSplitPush: the chunk-pipelined push and the
// split Write+Accumulate pair leave identical segment contents and identical
// server counters.
func TestStreamIncrementMatchesSplitPush(t *testing.T) {
	store, bufs := setupPair(t, "fused/stream")
	if !bufs[0].CanStreamPush() {
		t.Fatal("LocalClient should support the streamed push")
	}
	delta := fusedVec(8, 5)

	store.ResetStats()
	if err := bufs[0].StreamIncrement(delta); err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Writes != 1 || st.Accumulates != 1 {
		t.Fatalf("streamed push counted writes=%d accumulates=%d, want 1/1", st.Writes, st.Accumulates)
	}
	streamed := make([]float32, 8)
	if err := bufs[1].ReadGlobal(streamed); err != nil {
		t.Fatal(err)
	}

	// Replay the same push with the split pair on a fresh family.
	_, bufs2 := setupPair(t, "fused/split")
	if err := bufs2[0].WriteIncrement(delta); err != nil {
		t.Fatal(err)
	}
	if err := bufs2[0].AccumulateIncrement(); err != nil {
		t.Fatal(err)
	}
	split := make([]float32, 8)
	if err := bufs2[1].ReadGlobal(split); err != nil {
		t.Fatal(err)
	}
	for i := range split {
		if math.Float32bits(streamed[i]) != math.Float32bits(split[i]) {
			t.Fatalf("i=%d: streamed %v != split %v", i, streamed[i], split[i])
		}
	}
}

// TestStreamPushFallback: a client wrapper that hides the WriteAccumulator
// capability forces PushIncrement down the split path, and StreamIncrement
// still validates lengths.
func TestStreamPushFallback(t *testing.T) {
	store, bufs := setupPair(t, "fused/fallback")
	if err := bufs[0].StreamIncrement(make([]float32, 3)); !errors.Is(err, ErrConfig) {
		t.Fatalf("short stream: want ErrConfig, got %v", err)
	}
	// A bare-interface wrapper drops the capability.
	b := *bufs[0]
	b.client = clientOnly{bufs[0].client}
	b.wacc, _ = b.client.(smb.WriteAccumulator)
	if b.CanStreamPush() {
		t.Fatal("wrapper should not stream")
	}
	store.ResetStats()
	delta := fusedVec(8, 6)
	if err := b.PushIncrement(delta); err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Writes != 1 || st.Accumulates != 1 {
		t.Fatalf("fallback push counted writes=%d accumulates=%d, want 1/1", st.Writes, st.Accumulates)
	}
}

// clientOnly forwards the base Client interface and nothing else.
type clientOnly struct{ smb.Client }

// TestFusedStepAndStreamZeroAlloc pins the steady-state exchange: the fused
// T2 math and the staged streamed push (LocalClient) allocate nothing per
// iteration. scripts/check.sh tier 2 runs this by name.
func TestFusedStepAndStreamZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	const n = 4096
	delta := make([]float32, n)
	local := fusedVec(n, 7)
	global := fusedVec(n, 8)
	if a := testing.AllocsPerRun(100, func() {
		if err := FusedWeightStep(delta, local, global, 0.3); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("FusedWeightStep allocates %.1f per op, want 0", a)
	}

	if _, ok := tensor.Float32View(tensor.Float32Bytes(make([]float32, 16))); !ok {
		t.Skip("no zero-copy fast path on this platform")
	}
	_, bufs := setupPair(t, "fused/alloc")
	inc := fusedVec(8, 9)
	for i := 0; i < 4; i++ { // warm pools
		if err := bufs[0].StreamIncrement(inc); err != nil {
			t.Fatal(err)
		}
	}
	if a := testing.AllocsPerRun(100, func() {
		if err := bufs[0].StageIncrement(inc); err != nil {
			t.Fatal(err)
		}
		if err := bufs[0].StreamStaged(); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("staged streamed push allocates %.1f per op, want 0", a)
	}
}
