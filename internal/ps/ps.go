// Package ps implements a classic parameter server with the two update
// disciplines the paper's related-work section builds on:
//
//   - ASGD (Downpour-style): workers push raw gradients; the server applies
//     them to the global weight as they arrive.
//   - EASGD (Zhang et al.): workers exchange weight vectors with the
//     server; both sides move toward each other by α·(x − x̃)
//     (paper Eqs. 3 and 4).
//
// ShmCaffe's contribution is precisely the removal of this component: the
// SMB server stores bytes and accumulates, with the update logic moved to
// the workers (Eqs. 5–7). This package exists (a) as the baseline that
// motivates that design and (b) as the reference implementation that
// SEASGD must agree with in the contention-free case — a property the
// tests check bit-for-bit.
package ps

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"shmcaffe/internal/telemetry"
	"shmcaffe/internal/tensor"
)

// ErrSize is returned when a worker's vector does not match the server's.
var ErrSize = errors.New("ps: vector size mismatch")

// Server is an in-memory parameter server. All methods are safe for
// concurrent use; each update runs atomically under the server lock, the
// consistency model of a single-shard parameter server.
type Server struct {
	mu      sync.Mutex
	weights []float32 // guarded by mu
	pushes  int64     // guarded by mu
	pulls   int64     // guarded by mu

	// Optional latency instrumentation; set once by Instrument before
	// traffic. Nil histograms record nothing (telemetry nil-receiver
	// contract), so the hot paths observe unconditionally.
	pullLatency *telemetry.Histogram
	pushLatency *telemetry.Histogram

	// scratch holds the ElasticExchange increment between the fused
	// kernel's two destinations; grow-only, guarded by mu.
	scratch []float32
}

// Instrument registers the parameter-server baseline's metrics on reg: op
// counters (scrape-time views of the mutex-guarded totals) and per-verb
// latency histograms. The PS baseline is the contention structure SEASGD
// removes, so seeing ps_push_seconds grow with worker count while
// smb_accumulate_stripe_wait_seconds stays flat is the paper's Sec. III-B
// argument in two scrapes. Call before serving traffic.
func (s *Server) Instrument(reg *telemetry.Registry) {
	reg.CounterFunc("ps_pushes_total", "gradient/elastic pushes applied under the global lock", func() int64 {
		p, _ := s.Stats()
		return p
	})
	reg.CounterFunc("ps_pulls_total", "weight pulls served under the global lock", func() int64 {
		_, p := s.Stats()
		return p
	})
	s.pullLatency = reg.Histogram("ps_pull_seconds",
		"Pull latency including lock wait", telemetry.DefLatencyBuckets)
	s.pushLatency = reg.Histogram("ps_push_seconds",
		"PushGradient/ElasticExchange latency including lock wait", telemetry.DefLatencyBuckets)
}

// NewServer returns a server initialized with a copy of init.
func NewServer(init []float32) *Server {
	w := make([]float32, len(init))
	copy(w, init)
	return &Server{weights: w}
}

// Len returns the weight vector length.
func (s *Server) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.weights)
}

// Pull copies the current global weights into dst.
func (s *Server) Pull(dst []float32) error {
	var t0 time.Time
	if s.pullLatency != nil {
		t0 = time.Now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(dst) != len(s.weights) {
		return fmt.Errorf("pull %d of %d: %w", len(dst), len(s.weights), ErrSize)
	}
	copy(dst, s.weights)
	s.pulls++
	if s.pullLatency != nil {
		s.pullLatency.ObserveSeconds(time.Since(t0).Nanoseconds())
	}
	return nil
}

// PushGradient applies an ASGD update: w ← w − lr·g, atomically.
func (s *Server) PushGradient(grad []float32, lr float64) error {
	var t0 time.Time
	if s.pushLatency != nil {
		t0 = time.Now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(grad) != len(s.weights) {
		return fmt.Errorf("push %d of %d: %w", len(grad), len(s.weights), ErrSize)
	}
	l := float32(lr)
	for i, g := range grad {
		s.weights[i] -= l * g
	}
	s.pushes++
	if s.pushLatency != nil {
		s.pushLatency.ObserveSeconds(time.Since(t0).Nanoseconds())
	}
	return nil
}

// ElasticExchange performs one EASGD round trip (Eqs. 3+4): given the
// worker's local weights, it computes e = α·(local − global), applies
// local ← local − e (mutating the caller's slice: Eq. 3) and
// global ← global + e (Eq. 4), atomically.
func (s *Server) ElasticExchange(local []float32, alpha float64) error {
	var t0 time.Time
	if s.pushLatency != nil {
		t0 = time.Now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(local) != len(s.weights) {
		return fmt.Errorf("exchange %d of %d: %w", len(local), len(s.weights), ErrSize)
	}
	if cap(s.scratch) < len(local) {
		s.scratch = make([]float32, len(local))
	}
	// Fused Eqs. 3+4 sweep; bitwise-identical to the per-element
	// e = α·(local−global); local −= e; global += e loop it replaces.
	tensor.FusedElasticExchange(float32(alpha), s.scratch[:len(local)], local, s.weights)
	s.pushes++
	if s.pushLatency != nil {
		s.pushLatency.ObserveSeconds(time.Since(t0).Nanoseconds())
	}
	return nil
}

// Stats reports the operation counters.
func (s *Server) Stats() (pushes, pulls int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pushes, s.pulls
}

// Snapshot returns a copy of the global weights.
func (s *Server) Snapshot() []float32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float32, len(s.weights))
	copy(out, s.weights)
	return out
}
