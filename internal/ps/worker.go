package ps

import (
	"fmt"
	"runtime"

	"shmcaffe/internal/dataset"
	"shmcaffe/internal/nn"
)

// WorkerConfig configures one parameter-server training worker.
type WorkerConfig struct {
	// Server is the shared parameter server.
	Server *Server
	// Net is the worker's model replica.
	Net *nn.Network
	// Solver configures local SGD (EASGD mode) or supplies the learning
	// rate schedule (ASGD mode).
	Solver nn.SolverConfig
	// Loader provides the worker's shard.
	Loader *dataset.Loader
	// MaxIterations is the iteration budget.
	MaxIterations int
	// Alpha is the EASGD moving rate (EASGD mode only).
	Alpha float64
	// ExchangeEvery is the EASGD communication period τ (≥1).
	ExchangeEvery int
	// FetchEvery / PushEvery are the Downpour n_fetch / n_push knobs
	// (ASGD mode): pull the global weights every FetchEvery iterations
	// and push accumulated gradients every PushEvery iterations,
	// trading staleness for parameter-server traffic (DistBelief §4.1).
	// Both default to 1.
	FetchEvery int
	PushEvery  int
}

// Validate checks the configuration.
func (c *WorkerConfig) Validate() error {
	if c.Server == nil || c.Net == nil || c.Loader == nil {
		return fmt.Errorf("ps: worker needs server, net and loader")
	}
	if c.Server.Len() != c.Net.NumParams() {
		return fmt.Errorf("ps: server holds %d params, net has %d: %w",
			c.Server.Len(), c.Net.NumParams(), ErrSize)
	}
	if c.MaxIterations < 1 {
		return fmt.Errorf("ps: max iterations %d < 1", c.MaxIterations)
	}
	if err := c.Solver.Validate(); err != nil {
		return err
	}
	return nil
}

// Stats reports one parameter-server worker's outcome.
type Stats struct {
	Iterations  int
	LossHistory []float64
}

// RunASGD trains with Downpour-style asynchronous SGD: pull the global
// weights every n_fetch iterations, accumulate local gradients, and push
// them every n_push iterations — the staleness-prone discipline ShmCaffe's
// elastic averaging improves on. With both knobs at 1 it is the classic
// pull/compute/push loop.
func RunASGD(cfg WorkerConfig) (*Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.FetchEvery < 1 {
		cfg.FetchEvery = 1
	}
	if cfg.PushEvery < 1 {
		cfg.PushEvery = 1
	}
	elems := cfg.Net.NumParams()
	weights := make([]float32, elems)
	grads := make([]float32, elems)
	acc := make([]float32, elems)
	stats := &Stats{}
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		if iter%cfg.FetchEvery == 0 {
			if err := cfg.Server.Pull(weights); err != nil {
				return nil, err
			}
			if err := cfg.Net.SetFlatWeights(weights); err != nil {
				return nil, err
			}
		}
		b := cfg.Loader.Next()
		cfg.Net.ZeroGrads()
		loss, _, err := cfg.Net.TrainStep(b.X, b.Labels)
		if err != nil {
			return nil, fmt.Errorf("ps asgd iter %d: %w", iter, err)
		}
		cfg.Net.FlatGrads(grads)
		for i, g := range grads {
			acc[i] += g
		}
		// Between pushes the replica advances locally so the accumulated
		// gradient reflects fresh weights, as Downpour does.
		if err := applyLocal(cfg.Net, grads, cfg.Solver.LearningRate(iter)); err != nil {
			return nil, err
		}
		if (iter+1)%cfg.PushEvery == 0 {
			if err := cfg.Server.PushGradient(acc, cfg.Solver.LearningRate(iter)); err != nil {
				return nil, err
			}
			for i := range acc {
				acc[i] = 0
			}
		}
		stats.LossHistory = append(stats.LossHistory, loss)
		stats.Iterations++
		runtime.Gosched()
	}
	return stats, nil
}

// applyLocal performs a plain SGD step on the replica's flat weights.
func applyLocal(net *nn.Network, grads []float32, lr float64) error {
	w := net.FlatWeights(nil)
	l := float32(lr)
	for i := range w {
		w[i] -= l * grads[i]
	}
	return net.SetFlatWeights(w)
}

// RunEASGD trains with classic elastic averaging SGD: local momentum SGD
// plus a periodic elastic exchange with the server (Eqs. 2–4). SEASGD is
// this algorithm with the server replaced by a dumb accumulate buffer;
// the package tests assert the two agree exactly when uncontended.
func RunEASGD(cfg WorkerConfig) (*Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Alpha <= 0 || cfg.Alpha >= 1 {
		return nil, fmt.Errorf("ps: easgd alpha %v outside (0,1)", cfg.Alpha)
	}
	if cfg.ExchangeEvery < 1 {
		cfg.ExchangeEvery = 1
	}
	elems := cfg.Net.NumParams()
	local := make([]float32, elems)
	solver := nn.NewSGDSolver(cfg.Net, cfg.Solver)
	stats := &Stats{}

	// Start from the server's weights, as SEASGD workers start from Wg.
	if err := cfg.Server.Pull(local); err != nil {
		return nil, err
	}
	if err := cfg.Net.SetFlatWeights(local); err != nil {
		return nil, err
	}

	for iter := 0; iter < cfg.MaxIterations; iter++ {
		if iter%cfg.ExchangeEvery == 0 {
			cfg.Net.FlatWeights(local)
			if err := cfg.Server.ElasticExchange(local, cfg.Alpha); err != nil {
				return nil, err
			}
			if err := cfg.Net.SetFlatWeights(local); err != nil {
				return nil, err
			}
		}
		b := cfg.Loader.Next()
		loss, err := solver.Step(b.X, b.Labels)
		if err != nil {
			return nil, fmt.Errorf("ps easgd iter %d: %w", iter, err)
		}
		stats.LossHistory = append(stats.LossHistory, loss)
		stats.Iterations++
		runtime.Gosched()
	}
	return stats, nil
}
