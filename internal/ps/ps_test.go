package ps

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"shmcaffe/internal/core"
	"shmcaffe/internal/dataset"
	"shmcaffe/internal/mpi"
	"shmcaffe/internal/nn"
	"shmcaffe/internal/smb"
	"shmcaffe/internal/tensor"
)

func TestServerPullPush(t *testing.T) {
	s := NewServer([]float32{1, 2, 3})
	dst := make([]float32, 3)
	if err := s.Pull(dst); err != nil {
		t.Fatal(err)
	}
	if dst[2] != 3 {
		t.Fatalf("pull %v", dst)
	}
	if err := s.PushGradient([]float32{1, 1, 1}, 0.5); err != nil {
		t.Fatal(err)
	}
	got := s.Snapshot()
	want := []float32{0.5, 1.5, 2.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after push %v", got)
		}
	}
	pushes, pulls := s.Stats()
	if pushes != 1 || pulls != 1 {
		t.Fatalf("stats %d/%d", pushes, pulls)
	}
}

func TestServerSizeErrors(t *testing.T) {
	s := NewServer(make([]float32, 4))
	if err := s.Pull(make([]float32, 3)); !errors.Is(err, ErrSize) {
		t.Fatalf("want ErrSize, got %v", err)
	}
	if err := s.PushGradient(make([]float32, 5), 0.1); !errors.Is(err, ErrSize) {
		t.Fatalf("want ErrSize, got %v", err)
	}
	if err := s.ElasticExchange(make([]float32, 5), 0.2); !errors.Is(err, ErrSize) {
		t.Fatalf("want ErrSize, got %v", err)
	}
}

func TestElasticExchangeMatchesCoreMath(t *testing.T) {
	rng := tensor.NewRNG(1)
	const n = 64
	global := make([]float32, n)
	local := make([]float32, n)
	for i := 0; i < n; i++ {
		global[i] = float32(rng.NormFloat64())
		local[i] = float32(rng.NormFloat64())
	}
	// Reference: core's Eqs. (5)–(7).
	refLocal := append([]float32(nil), local...)
	refGlobal := append([]float32(nil), global...)
	scratch := make([]float32, n)
	if err := core.ElasticExchange(refLocal, refGlobal, scratch, 0.2); err != nil {
		t.Fatal(err)
	}
	// Parameter-server path: Eqs. (3)+(4).
	s := NewServer(global)
	if err := s.ElasticExchange(local, 0.2); err != nil {
		t.Fatal(err)
	}
	gotGlobal := s.Snapshot()
	for i := 0; i < n; i++ {
		if local[i] != refLocal[i] || gotGlobal[i] != refGlobal[i] {
			t.Fatalf("element %d: ps (%v,%v) vs core (%v,%v)",
				i, local[i], gotGlobal[i], refLocal[i], refGlobal[i])
		}
	}
}

// psFixture builds the worker inputs shared by the training tests.
func psFixture(t *testing.T, workers int, seed uint64) (*dataset.InMemory, []*nn.Network, []*dataset.Loader) {
	t.Helper()
	ds, err := dataset.NewGaussian(dataset.GaussianConfig{
		Classes: 4, PerClass: 40, Shape: []int{8}, Noise: 0.3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	nets := make([]*nn.Network, workers)
	loaders := make([]*dataset.Loader, workers)
	for r := 0; r < workers; r++ {
		nets[r], err = nn.MLP(fmt.Sprintf("w%d", r), 8, 16, 4)
		if err != nil {
			t.Fatal(err)
		}
		nets[r].InitWeights(tensor.NewRNG(seed))
		shard, err := dataset.NewShard(ds, r, workers)
		if err != nil {
			t.Fatal(err)
		}
		loaders[r], err = dataset.NewLoader(shard, 8, seed+uint64(r))
		if err != nil {
			t.Fatal(err)
		}
	}
	return ds, nets, loaders
}

func TestRunASGDConverges(t *testing.T) {
	_, nets, loaders := psFixture(t, 4, 2)
	server := NewServer(nets[0].FlatWeights(nil))
	solver := nn.DefaultSolverConfig()
	solver.BaseLR = 0.05
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for r := 0; r < 4; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[r] = RunASGD(WorkerConfig{
				Server: server, Net: nets[r], Solver: solver,
				Loader: loaders[r], MaxIterations: 40,
			})
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Evaluate the global weights.
	evalNet, _ := nn.MLP("eval", 8, 16, 4)
	if err := evalNet.SetFlatWeights(server.Snapshot()); err != nil {
		t.Fatal(err)
	}
	ds, _, _ := psFixture(t, 1, 2)
	loader, _ := dataset.NewLoader(ds, 64, 99)
	b := loader.Next()
	_, acc, err := evalNet.Evaluate(b.X, b.Labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.6 {
		t.Fatalf("ASGD global accuracy %.2f", acc)
	}
}

func TestRunEASGDConverges(t *testing.T) {
	_, nets, loaders := psFixture(t, 4, 3)
	server := NewServer(nets[0].FlatWeights(nil))
	solver := nn.DefaultSolverConfig()
	solver.BaseLR = 0.05
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for r := 0; r < 4; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[r] = RunEASGD(WorkerConfig{
				Server: server, Net: nets[r], Solver: solver,
				Loader: loaders[r], MaxIterations: 40,
				Alpha: 0.2, ExchangeEvery: 1,
			})
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range server.Snapshot() {
		if math.IsNaN(float64(v)) {
			t.Fatal("EASGD diverged")
		}
	}
}

// TestSEASGDMatchesEASGDSingleWorker is the central cross-validation of the
// reproduction: with one worker (no asynchrony), SEASGD through the SMB
// buffer (Eqs. 5–7) must produce *bit-identical* weights to classic EASGD
// through a parameter server (Eqs. 3–4), because the algebra is the same
// and the float32 encode/decode is lossless.
func TestSEASGDMatchesEASGDSingleWorker(t *testing.T) {
	const seed = 11
	const iters = 25

	buildNetAndLoader := func() (*nn.Network, *dataset.Loader) {
		ds, err := dataset.NewGaussian(dataset.GaussianConfig{
			Classes: 4, PerClass: 40, Shape: []int{8}, Noise: 0.3, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		net, err := nn.MLP("x", 8, 16, 4)
		if err != nil {
			t.Fatal(err)
		}
		net.InitWeights(tensor.NewRNG(seed))
		loader, err := dataset.NewLoader(ds, 8, seed)
		if err != nil {
			t.Fatal(err)
		}
		return net, loader
	}
	solver := nn.DefaultSolverConfig()
	solver.BaseLR = 0.05

	// Path A: classic EASGD against a parameter server.
	netA, loaderA := buildNetAndLoader()
	serverA := NewServer(netA.FlatWeights(nil))
	if _, err := RunEASGD(WorkerConfig{
		Server: serverA, Net: netA, Solver: solver, Loader: loaderA,
		MaxIterations: iters, Alpha: 0.2, ExchangeEvery: 1,
	}); err != nil {
		t.Fatal(err)
	}

	// Path B: SEASGD against an SMB store.
	netB, loaderB := buildNetAndLoader()
	world, err := mpi.NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	comm, _ := world.Comm(0)
	worker, err := core.NewWorker(core.WorkerConfig{
		Job:    "equiv",
		Comm:   comm,
		Client: smb.NewLocalClient(smb.NewStore()),
		Net:    netB,
		Solver: solver,
		Elastic: core.ElasticConfig{
			MovingRate: 0.2, UpdateInterval: 1,
		},
		Termination:   core.StopIndependently,
		MaxIterations: iters,
		Loader:        loaderB,
		// Inline pushes keep the single worker fully deterministic.
		DisableOverlap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := worker.Run(); err != nil {
		t.Fatal(err)
	}

	wa := netA.FlatWeights(nil)
	wb := netB.FlatWeights(nil)
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("weight %d: EASGD %v vs SEASGD %v", i, wa[i], wb[i])
		}
	}
}

func TestWorkerConfigValidation(t *testing.T) {
	if _, err := RunASGD(WorkerConfig{}); err == nil {
		t.Fatal("expected error for empty config")
	}
	_, nets, loaders := psFixture(t, 1, 5)
	server := NewServer(make([]float32, 3)) // wrong size
	solver := nn.DefaultSolverConfig()
	cfg := WorkerConfig{Server: server, Net: nets[0], Solver: solver, Loader: loaders[0], MaxIterations: 5}
	if _, err := RunASGD(cfg); !errors.Is(err, ErrSize) {
		t.Fatalf("want ErrSize, got %v", err)
	}
	good := NewServer(nets[0].FlatWeights(nil))
	cfg.Server = good
	cfg.Alpha = 2
	if _, err := RunEASGD(cfg); err == nil {
		t.Fatal("expected error for alpha out of range")
	}
}

// TestConcurrentExchangesAtomic: concurrent elastic exchanges never tear
// the global vector (each exchange is atomic under the server lock).
func TestConcurrentExchangesAtomic(t *testing.T) {
	const n = 128
	s := NewServer(make([]float32, n))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]float32, n)
			for i := range local {
				local[i] = float32(w + 1)
			}
			for r := 0; r < 50; r++ {
				if err := s.ElasticExchange(local, 0.3); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	// All elements of the global vector must be equal: every exchange
	// applies the same delta to all coordinates (inputs are constant
	// vectors), so any inequality proves a torn update.
	for i := 1; i < n; i++ {
		if snap[i] != snap[0] {
			t.Fatalf("torn global vector: %v vs %v", snap[i], snap[0])
		}
	}
}
