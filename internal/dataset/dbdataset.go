package dataset

import (
	"encoding/binary"
	"fmt"

	"shmcaffe/internal/kvstore"
	"shmcaffe/internal/tensor"
)

// File-backed datasets: the Caffe/LMDB pipeline of the paper ("the
// training data was converted to LMDB data format", Sec. IV-C). SaveToDB
// serializes any Dataset into a kvstore database; DBDataset serves samples
// straight from the file, so corpora larger than memory work and every
// worker process can mmap-style share one converted corpus.
//
// Record layout (little-endian), one record per sample, keys "%010d":
//
//	[4B label][4B rank][rank × 4B dims][volume × 4B float32 features]

// dbMetaKey holds the dataset-level metadata record.
const dbMetaKey = "~meta"

// SaveToDB writes ds into a new database file at path.
func SaveToDB(ds Dataset, path string) error {
	db, err := kvstore.Create(path)
	if err != nil {
		return err
	}
	defer db.Close()

	shape := ds.SampleShape()
	meta := make([]byte, 8+4*len(shape))
	binary.LittleEndian.PutUint32(meta[0:], uint32(ds.NumClasses()))
	binary.LittleEndian.PutUint32(meta[4:], uint32(len(shape)))
	for i, d := range shape {
		binary.LittleEndian.PutUint32(meta[8+4*i:], uint32(d))
	}
	if err := db.Put([]byte(dbMetaKey), meta); err != nil {
		return err
	}

	vol := volume(shape)
	x := make([]float32, vol)
	rec := make([]byte, 8+4*len(shape)+4*vol)
	for i := 0; i < ds.Len(); i++ {
		label := ds.Sample(i, x)
		binary.LittleEndian.PutUint32(rec[0:], uint32(label))
		binary.LittleEndian.PutUint32(rec[4:], uint32(len(shape)))
		off := 8
		for _, d := range shape {
			binary.LittleEndian.PutUint32(rec[off:], uint32(d))
			off += 4
		}
		if _, err := tensor.EncodeFloat32(x, rec[off:]); err != nil {
			return err
		}
		key := fmt.Sprintf("%010d", i)
		if err := db.Put([]byte(key), rec); err != nil {
			return fmt.Errorf("sample %d: %w", i, err)
		}
	}
	return db.Sync()
}

// DBDataset serves samples from a kvstore database file.
type DBDataset struct {
	db      *kvstore.DB
	shape   []int
	classes int
	length  int
	vol     int
}

var _ Dataset = (*DBDataset)(nil)

// OpenDB opens a database written by SaveToDB.
func OpenDB(path string) (*DBDataset, error) {
	db, err := kvstore.Open(path)
	if err != nil {
		return nil, err
	}
	meta, err := db.Get([]byte(dbMetaKey))
	if err != nil {
		db.Close()
		return nil, fmt.Errorf("dataset db missing metadata: %w", err)
	}
	if len(meta) < 8 {
		db.Close()
		return nil, fmt.Errorf("dataset db metadata truncated")
	}
	classes := int(binary.LittleEndian.Uint32(meta[0:]))
	rank := int(binary.LittleEndian.Uint32(meta[4:]))
	if len(meta) != 8+4*rank || classes < 2 || rank < 1 {
		db.Close()
		return nil, fmt.Errorf("dataset db metadata invalid (classes=%d rank=%d)", classes, rank)
	}
	shape := make([]int, rank)
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(meta[8+4*i:]))
		if shape[i] < 1 {
			db.Close()
			return nil, fmt.Errorf("dataset db dimension %d invalid", i)
		}
	}
	return &DBDataset{
		db:      db,
		shape:   shape,
		classes: classes,
		length:  db.Len() - 1, // minus the metadata record
		vol:     volume(shape),
	}, nil
}

// Close releases the underlying database.
func (d *DBDataset) Close() error { return d.db.Close() }

// Len implements Dataset.
func (d *DBDataset) Len() int { return d.length }

// SampleShape implements Dataset.
func (d *DBDataset) SampleShape() []int { return append([]int(nil), d.shape...) }

// NumClasses implements Dataset.
func (d *DBDataset) NumClasses() int { return d.classes }

// Sample implements Dataset. Errors surface as a panic-free zero sample:
// the Dataset interface is infallible by design (training loops treat
// data as preverified), so OpenDB validates the file and corrupted reads
// land in readSample's error path, tested separately.
func (d *DBDataset) Sample(i int, x []float32) int {
	label, err := d.readSample(i, x)
	if err != nil {
		for j := range x {
			x[j] = 0
		}
		return 0
	}
	return label
}

// readSample is the fallible core of Sample.
func (d *DBDataset) readSample(i int, x []float32) (int, error) {
	key := fmt.Sprintf("%010d", i)
	rec, err := d.db.Get([]byte(key))
	if err != nil {
		return 0, err
	}
	rank := len(d.shape)
	need := 8 + 4*rank + 4*d.vol
	if len(rec) != need {
		return 0, fmt.Errorf("dataset record %d has %d bytes, want %d", i, len(rec), need)
	}
	label := int(binary.LittleEndian.Uint32(rec[0:]))
	if err := tensor.DecodeFloat32(rec[8+4*rank:], x[:d.vol]); err != nil {
		return 0, err
	}
	return label, nil
}
