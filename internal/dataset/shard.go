package dataset

import "fmt"

// Shard is a strided view of a dataset assigning every n-th sample to one
// worker. The paper assigns "deep learning data to all workers without
// duplication" (Sec. III-C); round-robin striding gives each worker a
// class-balanced, disjoint partition.
type Shard struct {
	base    Dataset
	rank, n int
	length  int
}

var _ Dataset = (*Shard)(nil)

// NewShard returns worker rank's partition out of n. Ranks 0..n-1 together
// cover the base dataset exactly once.
func NewShard(base Dataset, rank, n int) (*Shard, error) {
	if n < 1 || rank < 0 || rank >= n {
		return nil, fmt.Errorf("dataset: shard rank %d of %d invalid", rank, n)
	}
	length := base.Len() / n
	if rank < base.Len()%n {
		length++
	}
	return &Shard{base: base, rank: rank, n: n, length: length}, nil
}

// Len implements Dataset.
func (s *Shard) Len() int { return s.length }

// Sample implements Dataset.
func (s *Shard) Sample(i int, x []float32) int {
	return s.base.Sample(i*s.n+s.rank, x)
}

// SampleShape implements Dataset.
func (s *Shard) SampleShape() []int { return s.base.SampleShape() }

// NumClasses implements Dataset.
func (s *Shard) NumClasses() int { return s.base.NumClasses() }

// Split divides a dataset into a training prefix and validation suffix.
func Split(base Dataset, trainFrac float64) (train, val Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: train fraction %v outside (0,1)", trainFrac)
	}
	n := base.Len()
	cut := int(float64(n) * trainFrac)
	if cut == 0 || cut == n {
		return nil, nil, fmt.Errorf("dataset: split of %d samples at %v is degenerate", n, trainFrac)
	}
	return &slice{base, 0, cut}, &slice{base, cut, n - cut}, nil
}

// slice is a contiguous view of a dataset.
type slice struct {
	base   Dataset
	start  int
	length int
}

var _ Dataset = (*slice)(nil)

func (s *slice) Len() int                      { return s.length }
func (s *slice) Sample(i int, x []float32) int { return s.base.Sample(s.start+i, x) }
func (s *slice) SampleShape() []int            { return s.base.SampleShape() }
func (s *slice) NumClasses() int               { return s.base.NumClasses() }
