package dataset

import (
	"testing"
)

func patternBase(t *testing.T) *InMemory {
	t.Helper()
	ds, err := NewPatternImages(3, 10, 1, 8, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestAugmentedPreservesLabelsAndShape(t *testing.T) {
	base := patternBase(t)
	aug, err := NewAugmented(base, AugmentConfig{FlipH: true, MaxShift: 1, Noise: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if aug.Len() != base.Len() || aug.NumClasses() != base.NumClasses() {
		t.Fatal("metadata changed")
	}
	xb := make([]float32, 64)
	xa := make([]float32, 64)
	for i := 0; i < base.Len(); i++ {
		if base.Sample(i, xb) != aug.Sample(i, xa) {
			t.Fatalf("label changed at %d", i)
		}
	}
}

func TestAugmentedDrawsDiffer(t *testing.T) {
	base := patternBase(t)
	aug, err := NewAugmented(base, AugmentConfig{Noise: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float32, 64)
	b := make([]float32, 64)
	aug.Sample(0, a)
	aug.Sample(0, b)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two augmented draws identical despite noise")
	}
}

func TestAugmentedIdentityWhenDisabled(t *testing.T) {
	base := patternBase(t)
	aug, err := NewAugmented(base, AugmentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	xb := make([]float32, 64)
	xa := make([]float32, 64)
	base.Sample(3, xb)
	aug.Sample(3, xa)
	for i := range xb {
		if xb[i] != xa[i] {
			t.Fatalf("identity augmentation changed pixel %d", i)
		}
	}
}

func TestAugmentedFlip(t *testing.T) {
	// A 1×1×2 image [1, 2] flips to [2, 1]; with FlipH and seed chosen so
	// the first draw flips, verify exact mirroring.
	ds, err := NewInMemory([]int{1, 1, 2}, 2, [][]float32{{1, 2}}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Find a seed whose first flip decision is true.
	for seed := uint64(0); seed < 20; seed++ {
		aug, err := NewAugmented(ds, AugmentConfig{FlipH: true, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float32, 2)
		aug.Sample(0, x)
		if x[0] == 2 && x[1] == 1 {
			return // observed a correct flip
		}
		if x[0] == 1 && x[1] == 2 {
			continue // not flipped this draw; try another seed
		}
		t.Fatalf("flip produced %v", x)
	}
	t.Fatal("no seed produced a flip in 20 tries")
}

func TestAugmentedShift(t *testing.T) {
	// A one-hot 1×3×3 image: any shift keeps exactly one (or zero, if
	// shifted out) nonzero pixel of value 1.
	img := []float32{0, 0, 0, 0, 1, 0, 0, 0, 0}
	ds, err := NewInMemory([]int{1, 3, 3}, 2, [][]float32{img}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	aug, err := NewAugmented(ds, AugmentConfig{MaxShift: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 9)
	for draw := 0; draw < 20; draw++ {
		aug.Sample(0, x)
		ones := 0
		for _, v := range x {
			switch v {
			case 0:
			case 1:
				ones++
			default:
				t.Fatalf("shift invented value %v", v)
			}
		}
		if ones > 1 {
			t.Fatalf("shift duplicated the pixel: %v", x)
		}
	}
}

func TestAugmentedValidation(t *testing.T) {
	flat, _ := NewGaussian(gaussCfg(9))
	if _, err := NewAugmented(flat, AugmentConfig{}); err == nil {
		t.Fatal("expected error for non-image dataset")
	}
	base := patternBase(t)
	if _, err := NewAugmented(base, AugmentConfig{MaxShift: -1}); err == nil {
		t.Fatal("expected error for negative shift")
	}
	if _, err := NewAugmented(base, AugmentConfig{MaxShift: 8}); err == nil {
		t.Fatal("expected error for shift >= image size")
	}
}
