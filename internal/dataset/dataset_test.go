package dataset

import (
	"errors"
	"testing"
	"testing/quick"
)

func gaussCfg(seed uint64) GaussianConfig {
	return GaussianConfig{
		Classes:  4,
		PerClass: 25,
		Shape:    []int{8},
		Noise:    0.1,
		Seed:     seed,
	}
}

func TestNewGaussianBasics(t *testing.T) {
	ds, err := NewGaussian(gaussCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 100 {
		t.Fatalf("Len = %d, want 100", ds.Len())
	}
	if ds.NumClasses() != 4 {
		t.Fatalf("NumClasses = %d", ds.NumClasses())
	}
	counts := make([]int, 4)
	x := make([]float32, 8)
	for i := 0; i < ds.Len(); i++ {
		counts[ds.Sample(i, x)]++
	}
	for c, n := range counts {
		if n != 25 {
			t.Fatalf("class %d has %d samples, want 25", c, n)
		}
	}
}

func TestNewGaussianDeterministic(t *testing.T) {
	a, _ := NewGaussian(gaussCfg(9))
	b, _ := NewGaussian(gaussCfg(9))
	xa := make([]float32, 8)
	xb := make([]float32, 8)
	for i := 0; i < a.Len(); i++ {
		la := a.Sample(i, xa)
		lb := b.Sample(i, xb)
		if la != lb {
			t.Fatal("labels differ between same-seed corpora")
		}
		for j := range xa {
			if xa[j] != xb[j] {
				t.Fatal("features differ between same-seed corpora")
			}
		}
	}
}

func TestNewGaussianErrors(t *testing.T) {
	cfg := gaussCfg(1)
	cfg.Classes = 1
	if _, err := NewGaussian(cfg); err == nil {
		t.Fatal("expected error for 1 class")
	}
	cfg = gaussCfg(1)
	cfg.PerClass = 0
	if _, err := NewGaussian(cfg); err == nil {
		t.Fatal("expected error for 0 per class")
	}
}

func TestNewGaussianImbalance(t *testing.T) {
	cfg := gaussCfg(2)
	cfg.Imbalance = 0.5
	ds, err := NewGaussian(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() <= 100 {
		t.Fatalf("imbalanced corpus should exceed 100 samples, got %d", ds.Len())
	}
}

func TestPatternImages(t *testing.T) {
	ds, err := NewPatternImages(3, 10, 1, 8, 0.05, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 30 {
		t.Fatalf("Len = %d", ds.Len())
	}
	shape := ds.SampleShape()
	if len(shape) != 3 || shape[0] != 1 || shape[1] != 8 {
		t.Fatalf("shape %v", shape)
	}
	if _, err := NewPatternImages(1, 10, 1, 8, 0, 1); err == nil {
		t.Fatal("expected error for 1 class")
	}
}

func TestInMemoryValidation(t *testing.T) {
	if _, err := NewInMemory([]int{2}, 2, [][]float32{{1, 2}}, []int{0, 1}); err == nil {
		t.Fatal("expected error for label/sample count mismatch")
	}
	if _, err := NewInMemory([]int{2}, 2, [][]float32{{1}}, []int{0}); err == nil {
		t.Fatal("expected error for wrong feature count")
	}
	if _, err := NewInMemory([]int{2}, 2, [][]float32{{1, 2}}, []int{5}); err == nil {
		t.Fatal("expected error for out-of-range label")
	}
}

// TestShardPartition: shards cover the dataset exactly once with no overlap.
func TestShardPartition(t *testing.T) {
	ds, _ := NewGaussian(gaussCfg(3))
	const n = 7
	seen := make(map[string]int)
	x := make([]float32, 8)
	total := 0
	for rank := 0; rank < n; rank++ {
		sh, err := NewShard(ds, rank, n)
		if err != nil {
			t.Fatal(err)
		}
		total += sh.Len()
		for i := 0; i < sh.Len(); i++ {
			sh.Sample(i, x)
			key := fingerprint(x)
			seen[key]++
		}
	}
	if total != ds.Len() {
		t.Fatalf("shards cover %d of %d samples", total, ds.Len())
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("sample %s appears %d times across shards", k, c)
		}
	}
}

func fingerprint(x []float32) string {
	b := make([]byte, 0, len(x)*4)
	for _, v := range x {
		b = append(b, byte(int32(v*1e4)), byte(int32(v*1e4)>>8), byte(int32(v*1e4)>>16), byte(int32(v*1e4)>>24))
	}
	return string(b)
}

func TestShardErrors(t *testing.T) {
	ds, _ := NewGaussian(gaussCfg(3))
	if _, err := NewShard(ds, 3, 3); err == nil {
		t.Fatal("expected error for rank == n")
	}
	if _, err := NewShard(ds, -1, 3); err == nil {
		t.Fatal("expected error for negative rank")
	}
}

// Property: for any (rank count, dataset size), shard lengths sum to the
// dataset length and differ by at most one.
func TestShardLengthProperty(t *testing.T) {
	ds, _ := NewGaussian(gaussCfg(5))
	f := func(nRaw uint8) bool {
		n := int(nRaw)%16 + 1
		sum, minL, maxL := 0, ds.Len(), 0
		for rank := 0; rank < n; rank++ {
			sh, err := NewShard(ds, rank, n)
			if err != nil {
				return false
			}
			sum += sh.Len()
			if sh.Len() < minL {
				minL = sh.Len()
			}
			if sh.Len() > maxL {
				maxL = sh.Len()
			}
		}
		return sum == ds.Len() && maxL-minL <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSplit(t *testing.T) {
	ds, _ := NewGaussian(gaussCfg(6))
	train, val, err := Split(ds, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 80 || val.Len() != 20 {
		t.Fatalf("split %d/%d, want 80/20", train.Len(), val.Len())
	}
	if _, _, err := Split(ds, 0); err == nil {
		t.Fatal("expected error for fraction 0")
	}
	if _, _, err := Split(ds, 1); err == nil {
		t.Fatal("expected error for fraction 1")
	}
}

func TestLoaderEpochsAndShapes(t *testing.T) {
	ds, _ := NewGaussian(gaussCfg(7))
	l, err := NewLoader(ds, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.BatchesPerEpoch() != 3 {
		t.Fatalf("BatchesPerEpoch = %d, want 3", l.BatchesPerEpoch())
	}
	b := l.Next()
	if b.X.Dim(0) != 32 || b.X.Dim(1) != 8 {
		t.Fatalf("batch shape %v", b.X.Shape())
	}
	if len(b.Labels) != 32 {
		t.Fatalf("labels %d", len(b.Labels))
	}
	// Consume past one epoch: epoch counter advances.
	for i := 0; i < 5; i++ {
		l.Next()
	}
	if l.Epoch() < 1 {
		t.Fatalf("epoch = %d after 6 batches of 32 over 100 samples", l.Epoch())
	}
}

func TestLoaderClampsBatchSize(t *testing.T) {
	ds, _ := NewGaussian(GaussianConfig{Classes: 2, PerClass: 3, Shape: []int{2}, Noise: 0.1, Seed: 1})
	l, err := NewLoader(ds, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := l.Next()
	if b.X.Dim(0) != 6 {
		t.Fatalf("clamped batch = %d, want 6", b.X.Dim(0))
	}
}

func TestLoaderErrors(t *testing.T) {
	ds, _ := NewGaussian(gaussCfg(8))
	if _, err := NewLoader(ds, 0, 1); err == nil {
		t.Fatal("expected error for batch size 0")
	}
	empty := &InMemory{shape: []int{1}, classes: 2}
	if _, err := NewLoader(empty, 4, 1); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestPrefetcher(t *testing.T) {
	ds, _ := NewGaussian(gaussCfg(9))
	l, _ := NewLoader(ds, 10, 1)
	p, err := NewPrefetcher(l, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 25; i++ {
		b := p.Next()
		if b.X.Dim(0) != 10 {
			t.Fatalf("batch %d shape %v", i, b.X.Shape())
		}
	}
}

func TestPrefetcherCloseIsClean(t *testing.T) {
	ds, _ := NewGaussian(gaussCfg(10))
	l, _ := NewLoader(ds, 10, 1)
	p, err := NewPrefetcher(l, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.Next()
	p.Close() // must not deadlock even with batches in flight
	if _, err := NewPrefetcher(l, 0); err == nil {
		t.Fatal("expected error for depth 0")
	}
}
