// Package dataset provides the training-data substrate: deterministic
// synthetic classification corpora (the stand-in for the ILSVRC-2012 LMDB
// store the paper uses), worker sharding without duplication, minibatch
// sampling, and a prefetching loader mirroring ShmCaffe's 10-deep minibatch
// prefetch.
package dataset

import (
	"errors"
	"fmt"

	"shmcaffe/internal/tensor"
)

// ErrEmpty is returned for operations on empty datasets.
var ErrEmpty = errors.New("dataset: empty dataset")

// Dataset is a finite collection of labeled feature tensors.
type Dataset interface {
	// Len returns the number of samples.
	Len() int
	// Sample copies sample i's features into x (len = sample volume) and
	// returns its label.
	Sample(i int, x []float32) int
	// SampleShape returns the per-sample feature shape.
	SampleShape() []int
	// NumClasses returns the number of distinct labels.
	NumClasses() int
}

// InMemory is a materialized dataset.
type InMemory struct {
	shape   []int
	classes int
	data    [][]float32
	labels  []int
}

var _ Dataset = (*InMemory)(nil)

// NewInMemory wraps pre-built samples. data[i] must match the shape volume.
func NewInMemory(shape []int, classes int, data [][]float32, labels []int) (*InMemory, error) {
	if len(data) != len(labels) {
		return nil, fmt.Errorf("dataset: %d samples but %d labels", len(data), len(labels))
	}
	vol := volume(shape)
	for i, d := range data {
		if len(d) != vol {
			return nil, fmt.Errorf("dataset: sample %d has %d features, want %d", i, len(d), vol)
		}
		if labels[i] < 0 || labels[i] >= classes {
			return nil, fmt.Errorf("dataset: label %d of sample %d out of range [0,%d)", labels[i], i, classes)
		}
	}
	return &InMemory{
		shape:   append([]int(nil), shape...),
		classes: classes,
		data:    data,
		labels:  labels,
	}, nil
}

// Len implements Dataset.
func (m *InMemory) Len() int { return len(m.data) }

// Sample implements Dataset.
func (m *InMemory) Sample(i int, x []float32) int {
	copy(x, m.data[i])
	return m.labels[i]
}

// SampleShape implements Dataset.
func (m *InMemory) SampleShape() []int { return append([]int(nil), m.shape...) }

// NumClasses implements Dataset.
func (m *InMemory) NumClasses() int { return m.classes }

func volume(shape []int) int {
	v := 1
	for _, d := range shape {
		v *= d
	}
	return v
}

// GaussianConfig parameterizes a Gaussian-cluster synthetic corpus: each
// class has a random center in feature space; samples are center + noise.
type GaussianConfig struct {
	Classes   int
	PerClass  int
	Shape     []int
	Noise     float64 // sample noise std; separation is 1 between centers
	Seed      uint64
	Imbalance float64 // 0 = balanced; 0.5 = class c has (1+0.5·c/C)·PerClass samples
}

// NewGaussian builds the Gaussian-cluster corpus. It is fully deterministic
// in Seed, so every worker regenerating it sees the same data.
func NewGaussian(cfg GaussianConfig) (*InMemory, error) {
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("dataset: need >=2 classes, got %d", cfg.Classes)
	}
	if cfg.PerClass < 1 {
		return nil, fmt.Errorf("dataset: need >=1 sample per class, got %d", cfg.PerClass)
	}
	vol := volume(cfg.Shape)
	if vol < 1 {
		return nil, fmt.Errorf("dataset: empty sample shape %v", cfg.Shape)
	}
	rng := tensor.NewRNG(cfg.Seed)
	centers := make([][]float32, cfg.Classes)
	for c := range centers {
		centers[c] = make([]float32, vol)
		for j := range centers[c] {
			centers[c][j] = float32(rng.NormFloat64())
		}
	}
	var data [][]float32
	var labels []int
	for c := 0; c < cfg.Classes; c++ {
		n := cfg.PerClass
		if cfg.Imbalance > 0 {
			n = int(float64(cfg.PerClass) * (1 + cfg.Imbalance*float64(c)/float64(cfg.Classes)))
		}
		for i := 0; i < n; i++ {
			x := make([]float32, vol)
			for j := range x {
				x[j] = centers[c][j] + float32(cfg.Noise*rng.NormFloat64())
			}
			data = append(data, x)
			labels = append(labels, c)
		}
	}
	// Deterministic shuffle so shards are class-balanced.
	perm := rng.Perm(len(data))
	sd := make([][]float32, len(data))
	sl := make([]int, len(data))
	for i, p := range perm {
		sd[i] = data[p]
		sl[i] = labels[p]
	}
	return NewInMemory(cfg.Shape, cfg.Classes, sd, sl)
}

// NewPatternImages builds a synthetic image corpus where each class is a
// fixed spatial pattern (stripes/checkers of varying frequency) plus noise;
// unlike the Gaussian corpus it requires convolutional features to separate
// well, exercising the CNN path.
func NewPatternImages(classes, perClass, channels, size int, noise float64, seed uint64) (*InMemory, error) {
	if classes < 2 || perClass < 1 || channels < 1 || size < 4 {
		return nil, fmt.Errorf("dataset: bad pattern config (%d,%d,%d,%d)", classes, perClass, channels, size)
	}
	rng := tensor.NewRNG(seed)
	shape := []int{channels, size, size}
	vol := volume(shape)
	var data [][]float32
	var labels []int
	for c := 0; c < classes; c++ {
		freq := c%4 + 1
		diag := c%2 == 0
		for i := 0; i < perClass; i++ {
			x := make([]float32, vol)
			phase := rng.Intn(size)
			for ch := 0; ch < channels; ch++ {
				for y := 0; y < size; y++ {
					for xx := 0; xx < size; xx++ {
						var v float32
						if diag {
							if ((y+xx+phase)/freq)%2 == 0 {
								v = 1
							} else {
								v = -1
							}
						} else {
							if ((y+phase)/freq+xx/freq)%2 == 0 {
								v = 1
							} else {
								v = -1
							}
						}
						x[(ch*size+y)*size+xx] = v + float32(noise*rng.NormFloat64())
					}
				}
			}
			data = append(data, x)
			labels = append(labels, c)
		}
	}
	perm := rng.Perm(len(data))
	sd := make([][]float32, len(data))
	sl := make([]int, len(data))
	for i, p := range perm {
		sd[i] = data[p]
		sl[i] = labels[p]
	}
	return NewInMemory(shape, classes, sd, sl)
}
