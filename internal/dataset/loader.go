package dataset

import (
	"fmt"

	"shmcaffe/internal/tensor"
)

// Batch is one minibatch: features in batch-first layout plus labels.
type Batch struct {
	X      *tensor.Tensor
	Labels []int
}

// Loader draws shuffled minibatches from a dataset, reshuffling every epoch.
type Loader struct {
	ds        Dataset
	batchSize int
	rng       *tensor.RNG
	order     []int
	cursor    int
	epoch     int
	sampleVol int
}

// NewLoader returns a loader producing batchSize-sample minibatches.
func NewLoader(ds Dataset, batchSize int, seed uint64) (*Loader, error) {
	if ds.Len() == 0 {
		return nil, ErrEmpty
	}
	if batchSize < 1 {
		return nil, fmt.Errorf("dataset: batch size %d < 1", batchSize)
	}
	if batchSize > ds.Len() {
		batchSize = ds.Len()
	}
	l := &Loader{
		ds:        ds,
		batchSize: batchSize,
		rng:       tensor.NewRNG(seed),
		sampleVol: volume(ds.SampleShape()),
	}
	l.reshuffle()
	return l, nil
}

func (l *Loader) reshuffle() {
	l.order = l.rng.Perm(l.ds.Len())
	l.cursor = 0
}

// Epoch returns the number of completed passes over the dataset.
func (l *Loader) Epoch() int { return l.epoch }

// BatchesPerEpoch returns how many Next calls make up one epoch.
func (l *Loader) BatchesPerEpoch() int {
	n := l.ds.Len() / l.batchSize
	if n == 0 {
		n = 1
	}
	return n
}

// Next returns the next minibatch, wrapping (and reshuffling) at epoch
// boundaries.
func (l *Loader) Next() Batch {
	shape := append([]int{l.batchSize}, l.ds.SampleShape()...)
	x := tensor.New(shape...)
	labels := make([]int, l.batchSize)
	for i := 0; i < l.batchSize; i++ {
		if l.cursor >= len(l.order) {
			l.epoch++
			l.reshuffle()
		}
		idx := l.order[l.cursor]
		l.cursor++
		labels[i] = l.ds.Sample(idx, x.Data()[i*l.sampleVol:(i+1)*l.sampleVol])
	}
	return Batch{X: x, Labels: labels}
}

// Prefetcher wraps a Loader with a background goroutine keeping depth
// batches ready, mirroring ShmCaffe's 10-deep minibatch prefetch
// (Sec. IV-C). Close must be called to release the goroutine.
type Prefetcher struct {
	batches chan Batch
	stop    chan struct{}
	done    chan struct{}
}

// NewPrefetcher starts prefetching from loader. depth must be >= 1.
func NewPrefetcher(loader *Loader, depth int) (*Prefetcher, error) {
	if depth < 1 {
		return nil, fmt.Errorf("dataset: prefetch depth %d < 1", depth)
	}
	p := &Prefetcher{
		batches: make(chan Batch, depth),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go func() {
		defer close(p.done)
		for {
			b := loader.Next()
			select {
			case p.batches <- b:
			case <-p.stop:
				return
			}
		}
	}()
	return p, nil
}

// Next returns the next prefetched minibatch.
func (p *Prefetcher) Next() Batch { return <-p.batches }

// Close stops the prefetch goroutine and waits for it to exit.
func (p *Prefetcher) Close() {
	close(p.stop)
	<-p.done
}
