package dataset

import (
	"fmt"
	"sync"

	"shmcaffe/internal/tensor"
)

// AugmentConfig selects the train-time augmentations. The paper's runs
// disable augmentation ("this experiment aims at the computation speed
// rather than accuracy, thus training data augmentation is not applied",
// Sec. IV-C); this wrapper provides the standard Caffe-era set for runs
// that do want it.
type AugmentConfig struct {
	// FlipH mirrors the image horizontally with probability 1/2.
	FlipH bool
	// MaxShift translates the image by up to ±MaxShift pixels in each
	// axis (zero-padded) — the random-crop stand-in.
	MaxShift int
	// Noise adds N(0, Noise²) to every pixel.
	Noise float64
	// Seed makes the augmentation stream reproducible.
	Seed uint64
}

// Augmented wraps an image dataset (C,H,W samples) with random train-time
// transforms. Unlike the deterministic base datasets, each Sample call
// draws fresh augmentation parameters — two reads of the same index yield
// different tensors, which is the point of augmentation.
type Augmented struct {
	base Dataset
	cfg  AugmentConfig
	c    int
	h    int
	w    int

	mu  sync.Mutex
	rng *tensor.RNG // guarded by mu
	buf []float32   // guarded by mu
}

var _ Dataset = (*Augmented)(nil)

// NewAugmented wraps base with the configured augmentations.
func NewAugmented(base Dataset, cfg AugmentConfig) (*Augmented, error) {
	shape := base.SampleShape()
	if len(shape) != 3 {
		return nil, fmt.Errorf("dataset: augmentation needs (C,H,W) samples, got %v", shape)
	}
	if cfg.MaxShift < 0 || cfg.Noise < 0 {
		return nil, fmt.Errorf("dataset: bad augmentation config %+v", cfg)
	}
	if cfg.MaxShift >= shape[1] || cfg.MaxShift >= shape[2] {
		return nil, fmt.Errorf("dataset: shift %d exceeds image %dx%d", cfg.MaxShift, shape[1], shape[2])
	}
	return &Augmented{
		base: base,
		cfg:  cfg,
		c:    shape[0],
		h:    shape[1],
		w:    shape[2],
		rng:  tensor.NewRNG(cfg.Seed),
		buf:  make([]float32, shape[0]*shape[1]*shape[2]),
	}, nil
}

// Len implements Dataset.
func (a *Augmented) Len() int { return a.base.Len() }

// SampleShape implements Dataset.
func (a *Augmented) SampleShape() []int { return a.base.SampleShape() }

// NumClasses implements Dataset.
func (a *Augmented) NumClasses() int { return a.base.NumClasses() }

// Sample implements Dataset: base sample plus a fresh random transform.
func (a *Augmented) Sample(i int, x []float32) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	label := a.base.Sample(i, a.buf)

	flip := a.cfg.FlipH && a.rng.Intn(2) == 1
	dy, dx := 0, 0
	if a.cfg.MaxShift > 0 {
		dy = a.rng.Intn(2*a.cfg.MaxShift+1) - a.cfg.MaxShift
		dx = a.rng.Intn(2*a.cfg.MaxShift+1) - a.cfg.MaxShift
	}
	for ch := 0; ch < a.c; ch++ {
		for y := 0; y < a.h; y++ {
			for xx := 0; xx < a.w; xx++ {
				srcX := xx
				if flip {
					srcX = a.w - 1 - xx
				}
				sy, sx := y-dy, srcX-dx
				var v float32
				if sy >= 0 && sy < a.h && sx >= 0 && sx < a.w {
					v = a.buf[(ch*a.h+sy)*a.w+sx]
				}
				if a.cfg.Noise > 0 {
					v += float32(a.cfg.Noise * a.rng.NormFloat64())
				}
				x[(ch*a.h+y)*a.w+xx] = v
			}
		}
	}
	return label
}
