package dataset

import (
	"path/filepath"
	"testing"

	"shmcaffe/internal/kvstore"
)

// openRawForTest creates a bare kvstore file (no dataset metadata).
func openRawForTest(path string) (*kvstore.DB, error) {
	return kvstore.Create(path)
}

func TestSaveToDBAndOpenRoundTrip(t *testing.T) {
	src, err := NewGaussian(gaussCfg(21))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.db")
	if err := SaveToDB(src, path); err != nil {
		t.Fatal(err)
	}
	db, err := OpenDB(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if db.Len() != src.Len() {
		t.Fatalf("db Len = %d, want %d", db.Len(), src.Len())
	}
	if db.NumClasses() != src.NumClasses() {
		t.Fatalf("db classes = %d", db.NumClasses())
	}
	wantShape := src.SampleShape()
	gotShape := db.SampleShape()
	if len(gotShape) != len(wantShape) || gotShape[0] != wantShape[0] {
		t.Fatalf("db shape %v, want %v", gotShape, wantShape)
	}
	xs := make([]float32, 8)
	xd := make([]float32, 8)
	for i := 0; i < src.Len(); i++ {
		ls := src.Sample(i, xs)
		ld := db.Sample(i, xd)
		if ls != ld {
			t.Fatalf("sample %d label %d vs %d", i, ls, ld)
		}
		for j := range xs {
			if xs[j] != xd[j] {
				t.Fatalf("sample %d feature %d differs", i, j)
			}
		}
	}
}

func TestDBDatasetFeedsLoaderAndShard(t *testing.T) {
	src, _ := NewGaussian(gaussCfg(22))
	path := filepath.Join(t.TempDir(), "corpus.db")
	if err := SaveToDB(src, path); err != nil {
		t.Fatal(err)
	}
	db, err := OpenDB(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	shard, err := NewShard(db, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(shard, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := loader.Next()
	if b.X.Dim(0) != 8 || b.X.Dim(1) != 8 {
		t.Fatalf("batch shape %v", b.X.Shape())
	}
	for _, l := range b.Labels {
		if l < 0 || l >= db.NumClasses() {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestOpenDBRejectsNonDataset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "raw.db")
	// A kvstore file without the metadata record.
	srcDB, err := openRawForTest(path)
	if err != nil {
		t.Fatal(err)
	}
	srcDB.Put([]byte("not-meta"), []byte("zzz"))
	srcDB.Close()
	if _, err := OpenDB(path); err == nil {
		t.Fatal("expected error for db without metadata")
	}
}
