package nccl

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"shmcaffe/internal/tensor"
)

// runGroup runs fn concurrently for every rank.
func runGroup(t *testing.T, g *Group, fn func(rank int)) {
	t.Helper()
	var wg sync.WaitGroup
	for r := 0; r < g.Size(); r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(r)
		}()
	}
	wg.Wait()
}

func TestNewGroupValidation(t *testing.T) {
	if _, err := NewGroup(0); !errors.Is(err, ErrGroup) {
		t.Fatalf("want ErrGroup, got %v", err)
	}
	g, err := NewGroup(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 4 {
		t.Fatalf("Size = %d", g.Size())
	}
}

func TestChunkBoundsCoverExactly(t *testing.T) {
	for _, tc := range []struct{ length, n int }{
		{10, 3}, {7, 7}, {5, 8}, {100, 4}, {1, 2},
	} {
		covered := 0
		prevHi := 0
		for i := 0; i < tc.n; i++ {
			lo, hi := chunkBounds(tc.length, tc.n, i)
			if lo != prevHi {
				t.Fatalf("length %d n %d chunk %d starts at %d, want %d", tc.length, tc.n, i, lo, prevHi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.length {
			t.Fatalf("length %d n %d covered %d", tc.length, tc.n, covered)
		}
	}
}

func TestAllReduceSumsAcrossDevices(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		g, err := NewGroup(n)
		if err != nil {
			t.Fatal(err)
		}
		const length = 37 // deliberately not divisible by group sizes
		bufs := make([][]float32, n)
		var want []float32
		want = make([]float32, length)
		for r := 0; r < n; r++ {
			bufs[r] = make([]float32, length)
			for i := range bufs[r] {
				bufs[r][i] = float32(r*100 + i)
				want[i] += bufs[r][i]
			}
		}
		runGroup(t, g, func(rank int) {
			if err := g.AllReduce(rank, bufs[rank]); err != nil {
				t.Error(err)
			}
		})
		for r := 0; r < n; r++ {
			for i := range want {
				if math.Abs(float64(bufs[r][i]-want[i])) > 1e-3 {
					t.Fatalf("n=%d rank %d elem %d = %v, want %v", n, r, i, bufs[r][i], want[i])
				}
			}
		}
	}
}

func TestAllReduceMean(t *testing.T) {
	g, _ := NewGroup(4)
	bufs := make([][]float32, 4)
	for r := range bufs {
		bufs[r] = []float32{float32(r + 1), 8}
	}
	runGroup(t, g, func(rank int) {
		if err := g.AllReduceMean(rank, bufs[rank]); err != nil {
			t.Error(err)
		}
	})
	for r := range bufs {
		if bufs[r][0] != 2.5 || bufs[r][1] != 8 {
			t.Fatalf("rank %d mean %v", r, bufs[r])
		}
	}
}

func TestBroadcast(t *testing.T) {
	g, _ := NewGroup(3)
	bufs := [][]float32{{0, 0}, {5, 6}, {0, 0}}
	runGroup(t, g, func(rank int) {
		if err := g.Broadcast(rank, 1, bufs[rank]); err != nil {
			t.Error(err)
		}
	})
	for r := range bufs {
		if bufs[r][0] != 5 || bufs[r][1] != 6 {
			t.Fatalf("rank %d broadcast %v", r, bufs[r])
		}
	}
}

func TestBroadcastRootError(t *testing.T) {
	g, _ := NewGroup(2)
	if err := g.Broadcast(0, 5, []float32{1}); !errors.Is(err, ErrGroup) {
		t.Fatalf("want ErrGroup, got %v", err)
	}
}

func TestSingleDeviceShortCircuit(t *testing.T) {
	g, _ := NewGroup(1)
	data := []float32{1, 2}
	if err := g.AllReduce(0, data); err != nil {
		t.Fatal(err)
	}
	if data[0] != 1 || data[1] != 2 {
		t.Fatalf("single-device allreduce changed data: %v", data)
	}
	if err := g.AllReduce(1, data); !errors.Is(err, ErrGroup) {
		t.Fatalf("want ErrGroup for bad rank, got %v", err)
	}
}

// TestAllReduceRepeatedRounds: the communicator is reusable, like NCCL.
func TestAllReduceRepeatedRounds(t *testing.T) {
	g, _ := NewGroup(3)
	var mu sync.Mutex
	bad := false
	runGroup(t, g, func(rank int) {
		for round := 1; round <= 10; round++ {
			data := []float32{float32(round)}
			if err := g.AllReduce(rank, data); err != nil {
				t.Error(err)
				return
			}
			if data[0] != float32(3*round) {
				mu.Lock()
				bad = true
				mu.Unlock()
			}
		}
	})
	if bad {
		t.Fatal("round results wrong")
	}
}

// Property: ring allreduce equals the direct sum for random sizes and
// group sizes.
func TestAllReduceMatchesDirectSumProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 2 + rng.Intn(6)
		length := 1 + rng.Intn(64)
		g, err := NewGroup(n)
		if err != nil {
			return false
		}
		bufs := make([][]float32, n)
		want := make([]float64, length)
		for r := 0; r < n; r++ {
			bufs[r] = make([]float32, length)
			for i := range bufs[r] {
				bufs[r][i] = float32(rng.NormFloat64())
				want[i] += float64(bufs[r][i])
			}
		}
		var wg sync.WaitGroup
		errs := make([]error, n)
		for r := 0; r < n; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs[r] = g.AllReduce(r, bufs[r])
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return false
			}
		}
		for r := 0; r < n; r++ {
			for i := range want {
				if math.Abs(float64(bufs[r][i])-want[i]) > 1e-3*(1+math.Abs(want[i])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestAbortUnblocksWaiters: Abort wakes devices parked in a collective so a
// failed member does not deadlock its group.
func TestAbortUnblocksWaiters(t *testing.T) {
	g, _ := NewGroup(2)
	errCh := make(chan error, 1)
	go func() {
		errCh <- g.AllReduce(0, []float32{1, 2}) // waits forever for rank 1
	}()
	g.Abort()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("want ErrAborted, got %v", err)
		}
	case <-timeAfter():
		t.Fatal("abort did not unblock the waiter")
	}
	// Post-abort collectives fail immediately.
	if err := g.Broadcast(1, 0, []float32{1, 2}); !errors.Is(err, ErrAborted) {
		t.Fatalf("post-abort broadcast: %v", err)
	}
}

func timeAfter() <-chan time.Time { return time.After(2 * time.Second) }

// TestLengthMismatchAbortsGroup: a bad buffer poisons the collective but
// every member returns an error instead of hanging.
func TestLengthMismatchAbortsGroup(t *testing.T) {
	g, _ := NewGroup(2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	lens := []int{4, 5}
	for r := 0; r < 2; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[r] = g.AllReduce(r, make([]float32, lens[r]))
		}()
	}
	wg.Wait()
	sawGroup := false
	for _, err := range errs {
		if err == nil {
			t.Fatal("mismatched collective returned nil")
		}
		if errors.Is(err, ErrGroup) {
			sawGroup = true
		}
	}
	if !sawGroup {
		t.Fatalf("no member reported the root cause: %v", errs)
	}
}
