package nccl

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestLeaveBeforeCollective: a departed member is simply excluded; the
// survivors' allreduce sums and averages over the survivor count.
func TestLeaveBeforeCollective(t *testing.T) {
	g, err := NewGroup(4)
	if err != nil {
		t.Fatal(err)
	}
	g.Leave(2)
	if g.Live() != 3 {
		t.Fatalf("live = %d, want 3", g.Live())
	}

	survivors := []int{0, 1, 3}
	bufs := map[int][]float32{}
	for _, r := range survivors {
		bufs[r] = []float32{float32(r + 1), float32(10 * (r + 1))}
	}
	var wg sync.WaitGroup
	errs := make(map[int]error)
	var mu sync.Mutex
	for _, r := range survivors {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			err := g.AllReduceMean(r, bufs[r])
			mu.Lock()
			errs[r] = err
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	for _, r := range survivors {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
	}
	// (1+2+4)/3, (10+20+40)/3
	want := []float32{7.0 / 3, 70.0 / 3}
	for _, r := range survivors {
		for i, w := range want {
			if diff := bufs[r][i] - w; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("rank %d elem %d = %v, want %v", r, i, bufs[r][i], w)
			}
		}
	}
}

// TestLeaveUnblocksInFlightCollective: survivors parked at a barrier
// waiting for a member that will never arrive restart over the remaining
// membership when Leave fires, and still produce the correct survivor sum.
func TestLeaveUnblocksInFlightCollective(t *testing.T) {
	g, err := NewGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	bufs := map[int][]float32{
		0: {1, 2, 3, 4, 5},
		1: {10, 20, 30, 40, 50},
	}
	done := make(chan int, 2)
	errs := make(map[int]error)
	var mu sync.Mutex
	for _, r := range []int{0, 1} {
		go func(r int) {
			err := g.AllReduce(r, bufs[r])
			mu.Lock()
			errs[r] = err
			mu.Unlock()
			done <- r
		}(r)
	}
	// Rank 2 never shows up. Give the survivors time to park, then reap it.
	select {
	case r := <-done:
		t.Fatalf("rank %d returned before the failed member was reaped", r)
	case <-time.After(50 * time.Millisecond):
	}
	g.Leave(2)
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("survivors still blocked after Leave")
		}
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	want := []float32{11, 22, 33, 44, 55}
	for _, r := range []int{0, 1} {
		for i, w := range want {
			if bufs[r][i] != w {
				t.Fatalf("rank %d elem %d = %v, want %v", r, i, bufs[r][i], w)
			}
		}
	}
}

// TestLeaveToSingleMember: shrinking to one member degenerates collectives
// to no-ops that still succeed.
func TestLeaveToSingleMember(t *testing.T) {
	g, err := NewGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	g.Leave(1)
	buf := []float32{3, 4}
	if err := g.AllReduceMean(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 3 || buf[1] != 4 {
		t.Fatalf("single-member allreduce mutated buffer: %v", buf)
	}
}

// TestBroadcastDepartedRoot: broadcasting from a member that left is a
// permanent error, not a hang.
func TestBroadcastDepartedRoot(t *testing.T) {
	g, err := NewGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	g.Leave(0)
	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	for _, r := range []int{1, 2} {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errCh <- g.Broadcast(r, 0, []float32{1})
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if !errors.Is(err, ErrGroup) {
			t.Fatalf("got %v, want ErrGroup", err)
		}
	}
}

// TestLeaveIdempotent: double-Leave and out-of-range ranks are no-ops.
func TestLeaveIdempotent(t *testing.T) {
	g, err := NewGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	g.Leave(1)
	g.Leave(1)
	g.Leave(-1)
	g.Leave(7)
	if g.Live() != 2 {
		t.Fatalf("live = %d, want 2", g.Live())
	}
}
