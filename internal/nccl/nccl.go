// Package nccl implements ring allreduce and broadcast over an intra-node
// device group — the stand-in for NVIDIA NCCL, which BVLC Caffe uses for
// multi-GPU SSGD and ShmCaffe-H uses inside each worker group (paper
// Sec. III-D). The algorithm is the genuine two-phase ring
// (reduce-scatter + allgather) executed by the participating goroutines
// with per-step barriers, not a shortcut through a shared accumulator, so
// its communication structure matches what the timing model charges for.
package nccl

import (
	"errors"
	"fmt"
	"sync"
)

// ErrGroup is returned for invalid group arguments.
var ErrGroup = errors.New("nccl: invalid group argument")

// ErrAborted is returned from collectives after Abort is called — the
// group-wide cancellation that lets surviving members unwind instead of
// waiting forever for a failed peer.
var ErrAborted = errors.New("nccl: group aborted")

// Group coordinates a fixed set of n devices (goroutines). All devices must
// call the same collective with same-length buffers, like a NCCL communicator.
type Group struct {
	n int

	mu      sync.Mutex
	cond    *sync.Cond
	arrived int         // guarded by mu
	gen     uint64      // guarded by mu
	bufs    [][]float32 // guarded by mu
	length  int         // guarded by mu
	aborted bool        // guarded by mu
}

// NewGroup returns a communicator for n devices.
func NewGroup(n int) (*Group, error) {
	if n < 1 {
		return nil, fmt.Errorf("nccl: group size %d: %w", n, ErrGroup)
	}
	g := &Group{n: n, bufs: make([][]float32, n)}
	g.cond = sync.NewCond(&g.mu)
	return g, nil
}

// Size returns the number of devices in the group.
func (g *Group) Size() int { return g.n }

// Abort cancels the group: every device blocked in (or subsequently
// entering) a collective returns ErrAborted. Call it when one member fails
// so the others unwind instead of deadlocking at the next barrier.
func (g *Group) Abort() {
	g.mu.Lock()
	g.aborted = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

// barrier blocks until all n devices arrive or the group aborts.
func (g *Group) barrier() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.aborted {
		return ErrAborted
	}
	gen := g.gen
	g.arrived++
	if g.arrived == g.n {
		g.arrived = 0
		g.gen++
		g.cond.Broadcast()
		return nil
	}
	for g.gen == gen && !g.aborted {
		g.cond.Wait()
	}
	if g.aborted {
		return ErrAborted
	}
	return nil
}

// register publishes rank's buffer and waits until every rank has done so.
func (g *Group) register(rank int, data []float32) error {
	if rank < 0 || rank >= g.n {
		return fmt.Errorf("nccl: rank %d of %d: %w", rank, g.n, ErrGroup)
	}
	g.mu.Lock()
	if g.length == 0 {
		g.length = len(data)
	}
	lengthOK := g.length == len(data)
	g.bufs[rank] = data
	g.mu.Unlock()
	if !lengthOK {
		// A mismatched buffer poisons the whole collective; abort so
		// the peers unwind rather than deadlock.
		g.Abort()
		return fmt.Errorf("nccl: rank %d buffer length %d != %d: %w", rank, len(data), g.length, ErrGroup)
	}
	return g.barrier()
}

// release clears the published buffers after a collective completes.
func (g *Group) release(rank int) error {
	if err := g.barrier(); err != nil {
		return err
	}
	g.mu.Lock()
	g.bufs[rank] = nil
	if rank == 0 {
		g.length = 0
	}
	g.mu.Unlock()
	return g.barrier()
}

// chunkBounds splits length into n contiguous chunks.
func chunkBounds(length, n, idx int) (lo, hi int) {
	base := length / n
	rem := length % n
	lo = idx*base + min(idx, rem)
	size := base
	if idx < rem {
		size++
	}
	return lo, lo + size
}

// AllReduce sums data elementwise across all devices in the group, leaving
// the full sum in every device's buffer. It must be called by all n devices
// concurrently. Single-device groups return immediately (matching NCCL).
func (g *Group) AllReduce(rank int, data []float32) error {
	if g.n == 1 {
		if rank != 0 {
			return fmt.Errorf("nccl: rank %d of 1: %w", rank, ErrGroup)
		}
		return nil
	}
	if err := g.register(rank, data); err != nil {
		return err
	}
	n := g.n
	left := (rank - 1 + n) % n

	// Phase 1 — reduce-scatter: after step s, chunk (r-s-1 mod n) of rank
	// r holds the partial sum of s+2 contributions. Each step reads the
	// left neighbor's chunk c and adds it into the local chunk c; the
	// neighbor is concurrently writing a different chunk, and the
	// barriers delimit the steps, so the reads are race-free.
	for s := 0; s < n-1; s++ {
		c := ((rank-s-1)%n + n) % n
		lo, hi := chunkBounds(len(data), n, c)
		src := g.bufs[left][lo:hi] //lint:ignore guardedby step barriers order this read after the neighbor's write
		dst := data[lo:hi]
		for i := range dst {
			dst[i] += src[i]
		}
		if err := g.barrier(); err != nil {
			return err
		}
	}

	// Phase 2 — allgather: rank r now owns the fully reduced chunk
	// (r+1 mod n)... step s copies chunk (r-s mod n) from the left
	// neighbor, which completed it in the previous step.
	for s := 0; s < n-1; s++ {
		c := ((rank-s)%n + n) % n
		lo, hi := chunkBounds(len(data), n, c)
		copy(data[lo:hi], g.bufs[left][lo:hi]) //lint:ignore guardedby step barriers order this read after the neighbor's write
		if err := g.barrier(); err != nil {
			return err
		}
	}

	return g.release(rank)
}

// Broadcast copies root's buffer into every device's buffer. Must be called
// by all n devices concurrently.
func (g *Group) Broadcast(rank, root int, data []float32) error {
	if root < 0 || root >= g.n {
		return fmt.Errorf("nccl: root %d of %d: %w", root, g.n, ErrGroup)
	}
	if g.n == 1 {
		if rank != 0 {
			return fmt.Errorf("nccl: rank %d of 1: %w", rank, ErrGroup)
		}
		return nil
	}
	if err := g.register(rank, data); err != nil {
		return err
	}
	if rank != root {
		copy(data, g.bufs[root]) //lint:ignore guardedby register's barrier publishes root's buffer before this read
	}
	return g.release(rank)
}

// AllReduceMean is AllReduce followed by division by the group size — the
// gradient averaging step of SSGD.
func (g *Group) AllReduceMean(rank int, data []float32) error {
	if err := g.AllReduce(rank, data); err != nil {
		return err
	}
	inv := 1 / float32(g.n)
	for i := range data {
		data[i] *= inv
	}
	return nil
}
