// Package nccl implements ring allreduce and broadcast over an intra-node
// device group — the stand-in for NVIDIA NCCL, which BVLC Caffe uses for
// multi-GPU SSGD and ShmCaffe-H uses inside each worker group (paper
// Sec. III-D). The algorithm is the genuine two-phase ring
// (reduce-scatter + allgather) executed by the participating goroutines
// with per-step barriers, not a shortcut through a shared accumulator, so
// its communication structure matches what the timing model charges for.
//
// The group is shrinkable: Leave(rank) removes a failed member, and
// collectives in flight restart over the survivors instead of deadlocking
// at the next barrier waiting for a rank that will never arrive (the
// crash-aware half of the paper's Sec. III-E termination alignment, which
// assumes workers only ever stop on purpose).
package nccl

import (
	"errors"
	"fmt"
	"sync"
)

// ErrGroup is returned for invalid group arguments.
var ErrGroup = errors.New("nccl: invalid group argument")

// ErrAborted is returned from collectives after Abort is called — the
// group-wide cancellation that lets surviving members unwind instead of
// waiting forever for a failed peer.
var ErrAborted = errors.New("nccl: group aborted")

// errShrunk is the internal signal that the membership changed under a
// collective in flight. Collectives catch it and retry over the survivors;
// it never escapes the public API.
var errShrunk = errors.New("nccl: group shrunk mid-collective")

// Group coordinates a set of up to n devices (goroutines). All active
// devices must call the same collective with same-length buffers, like a
// NCCL communicator.
type Group struct {
	n int

	mu      sync.Mutex
	cond    *sync.Cond
	arrived int         // guarded by mu
	gen     uint64      // guarded by mu
	epoch   uint64      // guarded by mu; bumped by Leave, restarts in-flight collectives
	bufs    [][]float32 // guarded by mu
	length  int         // guarded by mu
	aborted bool        // guarded by mu
	active  []bool      // guarded by mu
	live    int         // guarded by mu

	// scratch[r] snapshots rank r's AllReduce contribution so a collective
	// restarted by a shrink can restore the half-reduced buffer. Each rank
	// touches only its own slot, so no lock is needed around the copies.
	scratch [][]float32
}

// NewGroup returns a communicator for n devices, all initially active.
//
//lint:ignore guardedby pre-publication initialisation: g has not escaped yet
func NewGroup(n int) (*Group, error) {
	if n < 1 {
		return nil, fmt.Errorf("nccl: group size %d: %w", n, ErrGroup)
	}
	g := &Group{
		n:       n,
		bufs:    make([][]float32, n),
		active:  make([]bool, n),
		live:    n,
		scratch: make([][]float32, n),
	}
	for i := range g.active {
		g.active[i] = true
	}
	g.cond = sync.NewCond(&g.mu)
	return g, nil
}

// Size returns the number of devices the group was created with.
func (g *Group) Size() int { return g.n }

// Live returns the number of devices still in the group.
func (g *Group) Live() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.live
}

// Abort cancels the group: every device blocked in (or subsequently
// entering) a collective returns ErrAborted. Call it when the group cannot
// continue at all; for a single failed member, Leave keeps the survivors
// going.
func (g *Group) Abort() {
	g.mu.Lock()
	g.aborted = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

// Leave removes rank from the group. Survivors blocked in a collective
// restart it among themselves; future collectives simply exclude the rank.
// Idempotent; unknown ranks are ignored. Leave must be called for a member
// that is NOT inside a collective (a member's failure path runs in its own
// goroutine after the collective returned — see HybridGroup.Run), which is
// what makes clearing its buffer here race-free: survivors only read
// neighbor buffers between two barriers the departed rank also passed,
// so a rank with unreturned collective calls cannot be concurrently read.
func (g *Group) Leave(rank int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if rank < 0 || rank >= g.n || !g.active[rank] {
		return
	}
	g.active[rank] = false
	g.live--
	g.bufs[rank] = nil
	g.epoch++
	// Restart the barrier accounting: survivors parked on the old epoch
	// wake with errShrunk and re-enter; arrivals already counted belong to
	// the dead epoch.
	g.arrived = 0
	if g.live == 0 {
		g.length = 0
	}
	g.cond.Broadcast()
}

// barrierAt blocks until every live device arrives, the group aborts, or
// the membership changes (errShrunk — the collective must restart).
func (g *Group) barrierAt(epoch uint64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.aborted {
		return ErrAborted
	}
	if g.epoch != epoch {
		return errShrunk
	}
	gen := g.gen
	g.arrived++
	if g.arrived == g.live {
		g.arrived = 0
		g.gen++
		g.cond.Broadcast()
		return nil
	}
	for g.gen == gen && !g.aborted && g.epoch == epoch {
		g.cond.Wait()
	}
	if g.aborted {
		return ErrAborted
	}
	if g.epoch != epoch {
		return errShrunk
	}
	return nil
}

// ringView describes one attempt's membership snapshot: the epoch it is
// valid for, the collective size, the caller's dense index among active
// ranks, and its left neighbor's rank.
type ringView struct {
	epoch uint64
	size  int
	idx   int
	left  int
}

// enter publishes rank's buffer, snapshots the ring view, and passes the
// entry barrier. On errShrunk the caller restarts the whole collective.
func (g *Group) enter(rank int, data []float32) (ringView, error) {
	g.mu.Lock()
	if g.aborted {
		g.mu.Unlock()
		return ringView{}, ErrAborted
	}
	if !g.active[rank] {
		g.mu.Unlock()
		return ringView{}, fmt.Errorf("nccl: rank %d has left the group: %w", rank, ErrGroup)
	}
	if g.length == 0 {
		g.length = len(data)
	}
	lengthOK := g.length == len(data)
	g.bufs[rank] = data
	v := ringView{epoch: g.epoch, size: g.live, idx: 0, left: rank}
	for r := 0; r < g.n; r++ {
		if !g.active[r] {
			continue
		}
		if r < rank {
			v.idx++
		}
	}
	// Left neighbor: the nearest active rank below, wrapping to the
	// highest active rank.
	for r := rank - 1; ; r-- {
		if r < 0 {
			r = g.n - 1
		}
		if g.active[r] {
			v.left = r
			break
		}
	}
	g.mu.Unlock()
	if !lengthOK {
		// A mismatched buffer poisons the whole collective; abort so
		// the peers unwind rather than deadlock.
		g.Abort()
		return ringView{}, fmt.Errorf("nccl: rank %d buffer length %d != %d: %w", rank, len(data), g.length, ErrGroup)
	}
	return v, g.barrierAt(v.epoch)
}

// exit clears the published buffer after a collective completes. The lowest
// active rank resets the shared length for the next collective.
func (g *Group) exit(rank int, epoch uint64) error {
	if err := g.barrierAt(epoch); err != nil {
		return err
	}
	g.mu.Lock()
	g.bufs[rank] = nil
	leader := true
	for r := 0; r < rank; r++ {
		if g.active[r] {
			leader = false
			break
		}
	}
	if leader {
		g.length = 0
	}
	g.mu.Unlock()
	return g.barrierAt(epoch)
}

// chunkBounds splits length into n contiguous chunks.
func chunkBounds(length, n, idx int) (lo, hi int) {
	base := length / n
	rem := length % n
	lo = idx*base + min(idx, rem)
	size := base
	if idx < rem {
		size++
	}
	return lo, lo + size
}

// AllReduce sums data elementwise across all live devices in the group,
// leaving the full sum in every device's buffer. It must be called by every
// live device concurrently. Single-device collectives return immediately
// (matching NCCL).
func (g *Group) AllReduce(rank int, data []float32) error {
	_, err := g.allReduce(rank, data)
	return err
}

// allReduce runs the retry loop and reports the size of the collective that
// finally completed — the divisor AllReduceMean needs (dividing by the
// static group size would deflate the mean once a member has left).
func (g *Group) allReduce(rank int, data []float32) (int, error) {
	if rank < 0 || rank >= g.n {
		return 0, fmt.Errorf("nccl: rank %d of %d: %w", rank, g.n, ErrGroup)
	}
	if g.n == 1 {
		return 1, nil
	}
	// Snapshot the contribution before the ring mutates it, so a shrink
	// mid-collective can rewind and re-reduce over the survivors. The
	// scratch slot is grow-only and per-rank.
	if cap(g.scratch[rank]) < len(data) {
		g.scratch[rank] = make([]float32, len(data))
	}
	snap := g.scratch[rank][:len(data)]
	copy(snap, data)
	for {
		size, err := g.tryAllReduce(rank, data)
		if !errors.Is(err, errShrunk) {
			return size, err
		}
		copy(data, snap)
	}
}

// tryAllReduce executes one ring attempt over the current membership.
func (g *Group) tryAllReduce(rank int, data []float32) (int, error) {
	v, err := g.enter(rank, data)
	if err != nil {
		return 0, err
	}
	if v.size == 1 {
		// Last device standing: the sum is its own buffer.
		return 1, g.exit(rank, v.epoch)
	}

	// Phase 1 — reduce-scatter: after step s, chunk (i-s-1 mod size) of
	// index i holds the partial sum of s+2 contributions. Each step reads
	// the left neighbor's chunk c and adds it into the local chunk c; the
	// neighbor is concurrently writing a different chunk, and the barriers
	// delimit the steps, so the reads are race-free.
	for s := 0; s < v.size-1; s++ {
		c := ((v.idx-s-1)%v.size + v.size) % v.size
		lo, hi := chunkBounds(len(data), v.size, c)
		src := g.bufs[v.left][lo:hi] //lint:ignore guardedby step barriers order this read after the neighbor's write
		dst := data[lo:hi]
		for i := range dst {
			dst[i] += src[i]
		}
		if err := g.barrierAt(v.epoch); err != nil {
			return 0, err
		}
	}

	// Phase 2 — allgather: index i now owns the fully reduced chunk
	// (i+1 mod size)... step s copies chunk (i-s mod size) from the left
	// neighbor, which completed it in the previous step.
	for s := 0; s < v.size-1; s++ {
		c := ((v.idx-s)%v.size + v.size) % v.size
		lo, hi := chunkBounds(len(data), v.size, c)
		copy(data[lo:hi], g.bufs[v.left][lo:hi]) //lint:ignore guardedby step barriers order this read after the neighbor's write
		if err := g.barrierAt(v.epoch); err != nil {
			return 0, err
		}
	}

	return v.size, g.exit(rank, v.epoch)
}

// Broadcast copies root's buffer into every live device's buffer. Must be
// called by every live device concurrently. A root that has left the group
// is a permanent error — there is nothing to copy from.
func (g *Group) Broadcast(rank, root int, data []float32) error {
	if root < 0 || root >= g.n {
		return fmt.Errorf("nccl: root %d of %d: %w", root, g.n, ErrGroup)
	}
	if g.n == 1 {
		if rank != 0 {
			return fmt.Errorf("nccl: rank %d of 1: %w", rank, ErrGroup)
		}
		return nil
	}
	for {
		err := g.tryBroadcast(rank, root, data)
		if !errors.Is(err, errShrunk) {
			return err
		}
	}
}

func (g *Group) tryBroadcast(rank, root int, data []float32) error {
	g.mu.Lock()
	rootLive := root < len(g.active) && g.active[root]
	g.mu.Unlock()
	if !rootLive {
		return fmt.Errorf("nccl: broadcast root %d has left the group: %w", root, ErrGroup)
	}
	v, err := g.enter(rank, data)
	if err != nil {
		return err
	}
	if v.size > 1 && rank != root {
		copy(data, g.bufs[root]) //lint:ignore guardedby enter's barrier publishes root's buffer before this read
	}
	return g.exit(rank, v.epoch)
}

// AllReduceMean is AllReduce followed by division by the size of the
// collective that completed — the gradient averaging step of SSGD. After a
// shrink the divisor is the survivor count, so the mean stays a mean.
func (g *Group) AllReduceMean(rank int, data []float32) error {
	size, err := g.allReduce(rank, data)
	if err != nil {
		return err
	}
	if size <= 1 {
		return nil
	}
	inv := 1 / float32(size)
	for i := range data {
		data[i] *= inv
	}
	return nil
}
