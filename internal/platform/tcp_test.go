package platform

import (
	"testing"

	"shmcaffe/internal/smb"
)

// TestShmCaffeAOverTCP runs the full SEASGD platform against a real SMB
// server over TCP — the deployment shape of the paper (workers on GPU
// nodes, memory server across the fabric).
func TestShmCaffeAOverTCP(t *testing.T) {
	srv, err := smb.NewServer(smb.NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve()
	}()
	defer func() {
		srv.Close()
		<-done
	}()

	cfg := testConfig(t, 2, 21)
	cfg.SMBAddr = srv.Addr()
	cfg.Job = "tcp-test"
	res, err := (ShmCaffeA{}).Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertLearned(t, res, 0.6)

	// The server must have seen the segment family and the accumulates.
	st := srv.Store().Stats()
	if st.Accumulates == 0 {
		t.Fatal("no accumulates reached the TCP server")
	}
	if _, err := srv.Store().Lookup(smb.SegmentNames{Job: "tcp-test"}.Global()); err != nil {
		t.Fatalf("global segment missing on server: %v", err)
	}
}

func TestShmCaffeADialFailure(t *testing.T) {
	cfg := testConfig(t, 2, 22)
	cfg.SMBAddr = "127.0.0.1:1" // nothing listens here
	if _, err := (ShmCaffeA{}).Train(cfg); err == nil {
		t.Fatal("expected dial error")
	}
}

// TestShmCaffeHOverTCP drives the hybrid platform against a TCP SMB server:
// only group roots talk to the server, members stay on the in-process
// NCCL ring.
func TestShmCaffeHOverTCP(t *testing.T) {
	srv, err := smb.NewServer(smb.NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve()
	}()
	defer func() {
		srv.Close()
		<-done
	}()

	cfg := testConfig(t, 4, 23)
	cfg.GroupSize = 2
	cfg.SMBAddr = srv.Addr()
	cfg.Job = "tcp-h"
	res, err := (ShmCaffeH{}).Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertLearned(t, res, 0.6)
	// Only the two group roots push increments.
	names := smb.SegmentNames{Job: "tcp-h"}
	for gi := 0; gi < 2; gi++ {
		if _, err := srv.Store().Lookup(names.Increment(gi)); err != nil {
			t.Fatalf("group %d increment missing: %v", gi, err)
		}
	}
	if _, err := srv.Store().Lookup(names.Increment(2)); err == nil {
		t.Fatal("non-root increment segment exists")
	}
}
