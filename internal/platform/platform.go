// Package platform implements the four deep-learning platforms the paper
// evaluates (Sec. IV-C) behind one Trainer interface:
//
//   - Caffe: BVLC Caffe — single-node synchronous SGD across the node's
//     GPUs using NCCL allreduce (one GPU degenerates to plain SGD).
//   - Caffe-MPI: Inspur's star topology — the master gathers gradients from
//     all workers over MPI, averages, updates the master weights, and
//     distributes them back.
//   - MPICaffe: the authors' own baseline — SSGD with MPI_Allreduce
//     gradient aggregation on every worker.
//   - ShmCaffe-A / ShmCaffe-H: the paper's contribution (internal/core),
//     asynchronous SEASGD through the SMB buffer, optionally hybridized
//     with intra-node SSGD.
//
// These functional implementations train real models on real data; the
// per-iteration *timing* of each platform is modeled separately in
// internal/perfmodel. The split mirrors the paper: Fig. 8/11 are about
// convergence, Figs. 9/10/12–15 about time.
package platform

import (
	"errors"
	"fmt"
	"time"

	"shmcaffe/internal/core"
	"shmcaffe/internal/dataset"
	"shmcaffe/internal/nn"
	"shmcaffe/internal/telemetry"
)

// ErrConfig reports an unusable training configuration.
var ErrConfig = errors.New("platform: invalid configuration")

// ModelBuilder constructs a fresh model replica. Each worker gets its own
// replica; all replicas must have identical architecture.
type ModelBuilder func(name string) (*nn.Network, error)

// Config describes one training run, platform-independent.
type Config struct {
	// Workers is the total number of workers ("GPUs" in the paper).
	Workers int
	// GroupSize is the number of workers per node; used by ShmCaffe-H
	// (intra-node SSGD group) and by Table III style configs. 0 means
	// all workers in one group.
	GroupSize int
	// Model builds one replica.
	Model ModelBuilder
	// Train is the training corpus (sharded across workers without
	// duplication); Val is the held-out evaluation set.
	Train dataset.Dataset
	Val   dataset.Dataset
	// BatchSize is the per-worker minibatch size.
	BatchSize int
	// Epochs is the number of passes over Train (across all workers).
	Epochs int
	// Solver configures local SGD.
	Solver nn.SolverConfig
	// Elastic configures SEASGD (ignored by the synchronous baselines).
	Elastic core.ElasticConfig
	// TopK selects the reported accuracy metric (the paper uses top-5 on
	// 1000 classes; the synthetic tasks default to top-1).
	TopK int
	// Seed makes the run deterministic.
	Seed uint64
	// EvalBatches bounds evaluation cost (0 = whole val set).
	EvalBatches int
	// SMBAddr, when non-empty, points the ShmCaffe platforms at an
	// external SMB server instead of an in-process store; each worker
	// dials its own connection, like a real deployment.
	SMBAddr string
	// SMBTransport selects the wire for SMBAddr: "tcp" (default),
	// "tcp_sg" (TCP with scatter-gather writev and direct-landing reads),
	// "shm" (cross-process shared memory; requires a co-located server
	// exporting memfd segments), "auto" (negotiate shm, fall back to tcp),
	// or "rds" (the reliable-datagram transport of internal/rds, the
	// paper's RDS-based communication module).
	SMBTransport string
	// Job names the SMB segment family; required when several runs share
	// one external server. Defaults to the platform's short name.
	Job string
	// SMBOpTimeout bounds each SMB round trip for dialed-out TCP clients
	// (0 = the supervised client's 10s default; negative disables
	// deadlines). Ignored for the in-process store and the RDS transport.
	SMBOpTimeout time.Duration
	// SMBWaitTimeout bounds WaitUpdate round trips (0 inherits
	// SMBOpTimeout).
	SMBWaitTimeout time.Duration
	// LivenessTimeout enables crash-aware termination alignment in the
	// ShmCaffe platforms: workers heartbeat through the control segment
	// and exclude peers silent for longer than this from the termination
	// criterion. 0 keeps the paper's fault-free protocol.
	LivenessTimeout time.Duration
	// Telemetry, when non-nil, receives SEASGD phase spans, staleness
	// observations and push counters from the ShmCaffe platforms (the
	// synchronous baselines ignore it). Nil disables instrumentation.
	Telemetry *telemetry.Trainer
	// Metrics, when non-nil, additionally receives the SMB data-path
	// instruments: the in-process store's op/latency families, or — when
	// SMBAddr dials out — one representative client's RTT histograms.
	Metrics *telemetry.Registry
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("workers %d < 1: %w", c.Workers, ErrConfig)
	}
	if c.Model == nil || c.Train == nil || c.Val == nil {
		return fmt.Errorf("model, train and val are required: %w", ErrConfig)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("batch size %d < 1: %w", c.BatchSize, ErrConfig)
	}
	if c.Epochs < 1 {
		return fmt.Errorf("epochs %d < 1: %w", c.Epochs, ErrConfig)
	}
	if c.GroupSize < 0 || c.GroupSize > c.Workers {
		return fmt.Errorf("group size %d with %d workers: %w", c.GroupSize, c.Workers, ErrConfig)
	}
	if c.Workers > c.Train.Len() {
		return fmt.Errorf("%d workers for %d samples: %w", c.Workers, c.Train.Len(), ErrConfig)
	}
	return nil
}

// groupSize resolves the effective group size.
func (c *Config) groupSize() int {
	if c.GroupSize == 0 || c.GroupSize > c.Workers {
		return c.Workers
	}
	return c.GroupSize
}

// iterationsPerEpoch returns per-worker iterations making up one epoch over
// the full corpus.
func (c *Config) iterationsPerEpoch() int {
	n := c.Train.Len() / (c.BatchSize * c.Workers)
	if n < 1 {
		n = 1
	}
	return n
}

// EpochPoint is one point of a convergence curve (Fig. 8 / Fig. 11).
type EpochPoint struct {
	Epoch     int
	TrainLoss float64 // mean minibatch loss over the epoch (worker 0)
	ValLoss   float64
	Accuracy  float64 // top-K on the validation set
}

// Result is one training run's outcome.
type Result struct {
	Platform   string
	Workers    int
	Curve      []EpochPoint
	FinalAcc   float64
	FinalLoss  float64
	Iterations int // per-worker iterations executed (rank 0)
	// FinalWeights is the flat weight vector of the shipped model: the
	// synchronized replica for the SSGD platforms, the SMB global weight
	// Wg for ShmCaffe. Load it into a fresh replica with SetFlatWeights
	// or persist it with nn.SaveCheckpoint.
	FinalWeights []float32
}

// Trainer is one deep-learning platform.
type Trainer interface {
	// Name returns the platform's display name.
	Name() string
	// Train runs the configured job to completion.
	Train(cfg Config) (*Result, error)
}

// evaluator scores a replica on the validation set.
type evaluator struct {
	net     *nn.Network
	loader  *dataset.Loader
	batches int
	topK    int
}

func newEvaluator(cfg *Config, name string) (*evaluator, error) {
	net, err := cfg.Model(name)
	if err != nil {
		return nil, err
	}
	loader, err := dataset.NewLoader(cfg.Val, 64, cfg.Seed^0xe5a1)
	if err != nil {
		return nil, err
	}
	batches := cfg.EvalBatches
	if batches <= 0 {
		batches = loader.BatchesPerEpoch()
	}
	topK := cfg.TopK
	if topK <= 0 {
		topK = 1
	}
	if topK >= cfg.Val.NumClasses() {
		topK = cfg.Val.NumClasses() - 1
	}
	return &evaluator{net: net, loader: loader, batches: batches, topK: topK}, nil
}

// score evaluates the given flat weights.
func (e *evaluator) score(weights []float32) (loss, acc float64, err error) {
	if err := e.net.SetFlatWeights(weights); err != nil {
		return 0, 0, err
	}
	var lossSum, accSum float64
	for i := 0; i < e.batches; i++ {
		b := e.loader.Next()
		l, a, err := e.net.Evaluate(b.X, b.Labels, e.topK)
		if err != nil {
			return 0, 0, err
		}
		lossSum += l
		accSum += a
	}
	n := float64(e.batches)
	return lossSum / n, accSum / n, nil
}

// meanTail averages the last n entries of xs (or all of them if shorter).
func meanTail(xs []float64, n int) float64 {
	if len(xs) == 0 {
		return 0
	}
	if n > len(xs) {
		n = len(xs)
	}
	var s float64
	for _, v := range xs[len(xs)-n:] {
		s += v
	}
	return s / float64(n)
}
