package platform

import (
	"testing"

	"shmcaffe/internal/rds"
	"shmcaffe/internal/smb"
)

// TestShmCaffeAOverRDS runs the full SEASGD platform against an SMB server
// reached through the RDS-like reliable datagram transport — the complete
// paper stack: workers → SMB wire protocol → RDS → (UDP standing in for
// Infiniband).
func TestShmCaffeAOverRDS(t *testing.T) {
	ep, err := rds.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	srv, err := smb.NewServer(smb.NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go func() {
		for {
			conn, err := ep.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()

	cfg := testConfig(t, 2, 41)
	cfg.SMBAddr = ep.Addr()
	cfg.SMBTransport = "rds"
	cfg.Job = "rds-test"
	res, err := (ShmCaffeA{}).Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertLearned(t, res, 0.6)
	if srv.Store().Stats().Accumulates == 0 {
		t.Fatal("no accumulates crossed the RDS transport")
	}
}

func TestUnknownSMBTransport(t *testing.T) {
	cfg := testConfig(t, 2, 42)
	cfg.SMBAddr = "127.0.0.1:1"
	cfg.SMBTransport = "carrier-pigeon"
	if _, err := (ShmCaffeA{}).Train(cfg); err == nil {
		t.Fatal("expected error for unknown transport")
	}
}
