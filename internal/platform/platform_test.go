package platform

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"shmcaffe/internal/core"
	"shmcaffe/internal/dataset"
	"shmcaffe/internal/nn"
)

// testConfig builds a small, fast, deterministic training setup shared by
// the platform tests: 4-class Gaussian task, MLP model.
func testConfig(t *testing.T, workers int, seed uint64) Config {
	t.Helper()
	full, err := dataset.NewGaussian(dataset.GaussianConfig{
		Classes: 4, PerClass: 60, Shape: []int{8}, Noise: 0.3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, val, err := dataset.Split(full, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	solver := nn.DefaultSolverConfig()
	solver.BaseLR = 0.05
	return Config{
		Workers:   workers,
		Model:     func(name string) (*nn.Network, error) { return nn.MLP(name, 8, 16, 4) },
		Train:     train,
		Val:       val,
		BatchSize: 8,
		Epochs:    4,
		Solver:    solver,
		Elastic:   core.DefaultElasticConfig(),
		Seed:      seed,
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := testConfig(t, 2, 1)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Workers = 0
	if err := bad.Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
	bad = cfg
	bad.Model = nil
	if err := bad.Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
	bad = cfg
	bad.GroupSize = 99
	if err := bad.Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
	bad = cfg
	bad.Workers = 100000
	if err := bad.Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig for more workers than samples, got %v", err)
	}
}

// assertLearned checks a result converged to something useful.
func assertLearned(t *testing.T, res *Result, minAcc float64) {
	t.Helper()
	if len(res.Curve) == 0 {
		t.Fatalf("%s produced no curve", res.Platform)
	}
	if res.FinalAcc < minAcc {
		t.Fatalf("%s final accuracy %.3f < %.2f (curve %+v)", res.Platform, res.FinalAcc, minAcc, res.Curve)
	}
	for _, p := range res.Curve {
		if math.IsNaN(p.ValLoss) || math.IsInf(p.ValLoss, 0) {
			t.Fatalf("%s diverged at epoch %d", res.Platform, p.Epoch)
		}
	}
}

func TestAllPlatformsConverge(t *testing.T) {
	for name, trainer := range Registry() {
		name, trainer := name, trainer
		t.Run(name, func(t *testing.T) {
			cfg := testConfig(t, 4, 7)
			if name == "shmcaffe-h" {
				cfg.GroupSize = 2
			}
			res, err := trainer.Train(cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertLearned(t, res, 0.6)
			if res.Workers != 4 {
				t.Fatalf("workers = %d", res.Workers)
			}
		})
	}
}

func TestCaffeSingleGPU(t *testing.T) {
	cfg := testConfig(t, 1, 3)
	res, err := Caffe{}.Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertLearned(t, res, 0.7)
}

// TestSynchronousBaselinesAgree: Caffe (NCCL allreduce), Caffe-MPI (star
// gather/scatter) and MPICaffe (MPI allreduce) implement the same math, so
// with identical seeds their epoch curves must be very close. This is the
// cross-validation of the three independent communication paths.
func TestSynchronousBaselinesAgree(t *testing.T) {
	cfgA := testConfig(t, 2, 11)
	resA, err := Caffe{}.Train(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := testConfig(t, 2, 11)
	resB, err := MPICaffe{}.Train(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	cfgC := testConfig(t, 2, 11)
	resC, err := CaffeMPI{}.Train(cfgC)
	if err != nil {
		t.Fatal(err)
	}
	for i := range resA.Curve {
		a, b, c := resA.Curve[i].ValLoss, resB.Curve[i].ValLoss, resC.Curve[i].ValLoss
		if math.Abs(a-b) > 0.05*(1+math.Abs(a)) {
			t.Fatalf("epoch %d: Caffe %.4f vs MPICaffe %.4f", i+1, a, b)
		}
		if math.Abs(a-c) > 0.05*(1+math.Abs(a)) {
			t.Fatalf("epoch %d: Caffe %.4f vs Caffe-MPI %.4f", i+1, a, c)
		}
	}
}

func TestShmCaffeHGroupSizeValidation(t *testing.T) {
	cfg := testConfig(t, 4, 5)
	cfg.GroupSize = 3 // 4 % 3 != 0
	if _, err := (ShmCaffeH{}).Train(cfg); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}

// TestFig11Shape is a miniature of the paper's Fig. 11 finding: at high
// worker counts, hybrid grouping (fewer asynchronous streams) must not be
// substantially worse than fully asynchronous training, and both must
// still learn. (The full experiment is in internal/bench.)
func TestAsyncVsHybridBothLearn(t *testing.T) {
	cfgA := testConfig(t, 4, 13)
	resA, err := ShmCaffeA{}.Train(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	cfgH := testConfig(t, 4, 13)
	cfgH.GroupSize = 2
	resH, err := ShmCaffeH{}.Train(cfgH)
	if err != nil {
		t.Fatal(err)
	}
	assertLearned(t, resA, 0.55)
	assertLearned(t, resH, 0.55)
}

func TestRegistryNames(t *testing.T) {
	reg := Registry()
	if len(reg) != 5 {
		t.Fatalf("registry has %d platforms", len(reg))
	}
	for key, tr := range reg {
		if tr.Name() == "" {
			t.Fatalf("platform %q has empty name", key)
		}
	}
}

func TestIterationsPerEpoch(t *testing.T) {
	cfg := testConfig(t, 4, 1)
	// 192 train samples, batch 8, 4 workers → 6 iterations/epoch.
	if got := cfg.iterationsPerEpoch(); got != 6 {
		t.Fatalf("iterationsPerEpoch = %d, want 6", got)
	}
}

func TestMeanTail(t *testing.T) {
	if got := meanTail([]float64{1, 2, 3, 4}, 2); got != 3.5 {
		t.Fatalf("meanTail = %v", got)
	}
	if got := meanTail(nil, 3); got != 0 {
		t.Fatalf("meanTail(nil) = %v", got)
	}
	if got := meanTail([]float64{2}, 5); got != 2 {
		t.Fatalf("meanTail short = %v", got)
	}
}

func ExampleRegistry() {
	names := []string{"caffe", "caffe-mpi", "mpicaffe", "shmcaffe-a", "shmcaffe-h"}
	reg := Registry()
	for _, n := range names {
		fmt.Println(reg[n].Name())
	}
	// Output:
	// Caffe
	// Caffe-MPI
	// MPICaffe
	// ShmCaffe-A
	// ShmCaffe-H
}
