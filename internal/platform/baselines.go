package platform

import (
	"fmt"
	"sync"

	"shmcaffe/internal/dataset"
	"shmcaffe/internal/mpi"
	"shmcaffe/internal/nccl"
	"shmcaffe/internal/nn"
	"shmcaffe/internal/tensor"
)

// workerSet is the common per-worker state of the synchronous baselines.
type workerSet struct {
	nets    []*nn.Network
	solvers []*nn.SGDSolver
	loaders []*dataset.Loader
	iters   int // per-worker iterations total
	perEp   int // per-worker iterations per epoch
}

// buildWorkers constructs identical replicas, disjoint shards and loaders.
func buildWorkers(cfg *Config, label string) (*workerSet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	set := &workerSet{
		perEp: cfg.iterationsPerEpoch(),
	}
	set.iters = set.perEp * cfg.Epochs
	for r := 0; r < cfg.Workers; r++ {
		net, err := cfg.Model(fmt.Sprintf("%s-w%d", label, r))
		if err != nil {
			return nil, err
		}
		net.InitWeights(tensor.NewRNG(cfg.Seed)) // identical start
		shard, err := dataset.NewShard(cfg.Train, r, cfg.Workers)
		if err != nil {
			return nil, err
		}
		loader, err := dataset.NewLoader(shard, cfg.BatchSize, cfg.Seed+uint64(r)*7919)
		if err != nil {
			return nil, err
		}
		set.nets = append(set.nets, net)
		set.solvers = append(set.solvers, nn.NewSGDSolver(net, cfg.Solver))
		set.loaders = append(set.loaders, loader)
	}
	return set, nil
}

// collectCurve assembles the epoch curve recorded by worker 0.
type curveRecorder struct {
	eval        *evaluator
	perEp       int
	epochLoss   []float64
	curve       []EpochPoint
	lastWeights []float32
}

func (r *curveRecorder) record(iter int, loss float64, weights []float32) error {
	r.epochLoss = append(r.epochLoss, loss)
	if (iter+1)%r.perEp != 0 {
		return nil
	}
	valLoss, acc, err := r.eval.score(weights)
	if err != nil {
		return err
	}
	if r.lastWeights == nil {
		r.lastWeights = make([]float32, len(weights))
	}
	copy(r.lastWeights, weights)
	r.curve = append(r.curve, EpochPoint{
		Epoch:     (iter + 1) / r.perEp,
		TrainLoss: meanTail(r.epochLoss, r.perEp),
		ValLoss:   valLoss,
		Accuracy:  acc,
	})
	return nil
}

func (r *curveRecorder) result(name string, workers, iters int) *Result {
	res := &Result{
		Platform:     name,
		Workers:      workers,
		Curve:        r.curve,
		Iterations:   iters,
		FinalWeights: r.lastWeights,
	}
	if len(r.curve) > 0 {
		last := r.curve[len(r.curve)-1]
		res.FinalAcc = last.Accuracy
		res.FinalLoss = last.ValLoss
	}
	return res
}

// Caffe is BVLC Caffe: single-node SSGD over the node's GPUs with NCCL
// allreduce (paper: "If a multi-GPU setting is used, SSGD is implemented
// using NCCL Allreduce").
type Caffe struct{}

var _ Trainer = Caffe{}

// Name implements Trainer.
func (Caffe) Name() string { return "Caffe" }

// Train implements Trainer.
func (Caffe) Train(cfg Config) (*Result, error) {
	set, err := buildWorkers(&cfg, "caffe")
	if err != nil {
		return nil, err
	}
	eval, err := newEvaluator(&cfg, "caffe-eval")
	if err != nil {
		return nil, err
	}
	group, err := nccl.NewGroup(cfg.Workers)
	if err != nil {
		return nil, err
	}
	rec := &curveRecorder{eval: eval, perEp: set.perEp}

	var wg sync.WaitGroup
	errs := make([]error, cfg.Workers)
	for r := 0; r < cfg.Workers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			net := set.nets[r]
			grads := make([]float32, net.NumParams())
			weights := make([]float32, net.NumParams())
			for iter := 0; iter < set.iters; iter++ {
				b := set.loaders[r].Next()
				net.ZeroGrads()
				loss, _, err := net.TrainStep(b.X, b.Labels)
				if err != nil {
					errs[r] = err
					return
				}
				net.FlatGrads(grads)
				if err := group.AllReduceMean(r, grads); err != nil {
					errs[r] = err
					return
				}
				if err := net.SetFlatGrads(grads); err != nil {
					errs[r] = err
					return
				}
				set.solvers[r].ApplyUpdate()
				if r == 0 {
					net.FlatWeights(weights)
					if err := rec.record(iter, loss, weights); err != nil {
						errs[r] = err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rec.result("Caffe", cfg.Workers, set.iters), nil
}

// CaffeMPI is Inspur Caffe-MPI: star topology. The master gathers gradients
// from all slaves (MPI_Send/MPI_Recv in the original; Gather here), takes
// the average, updates the master weights, and distributes them back.
type CaffeMPI struct{}

var _ Trainer = CaffeMPI{}

// Name implements Trainer.
func (CaffeMPI) Name() string { return "Caffe-MPI" }

// Train implements Trainer.
func (CaffeMPI) Train(cfg Config) (*Result, error) {
	set, err := buildWorkers(&cfg, "caffempi")
	if err != nil {
		return nil, err
	}
	eval, err := newEvaluator(&cfg, "caffempi-eval")
	if err != nil {
		return nil, err
	}
	world, err := mpi.NewWorld(cfg.Workers)
	if err != nil {
		return nil, err
	}
	rec := &curveRecorder{eval: eval, perEp: set.perEp}

	var wg sync.WaitGroup
	errs := make([]error, cfg.Workers)
	for r := 0; r < cfg.Workers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[r] = caffeMPIWorker(&cfg, set, world, r, rec)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rec.result("Caffe-MPI", cfg.Workers, set.iters), nil
}

func caffeMPIWorker(cfg *Config, set *workerSet, world *mpi.World, r int, rec *curveRecorder) error {
	comm, err := world.Comm(r)
	if err != nil {
		return err
	}
	net := set.nets[r]
	elems := net.NumParams()
	grads := make([]float32, elems)
	for iter := 0; iter < set.iters; iter++ {
		b := set.loaders[r].Next()
		net.ZeroGrads()
		loss, _, err := net.TrainStep(b.X, b.Labels)
		if err != nil {
			return err
		}
		net.FlatGrads(grads)
		// Slaves send gradients to the master; the master averages,
		// updates its weights, and broadcasts them.
		gathered, err := comm.Gather(0, tensor.Float32Bytes(grads))
		if err != nil {
			return err
		}
		if r == 0 {
			avg := make([]float32, elems)
			tmp := make([]float32, elems)
			for _, buf := range gathered {
				if err := tensor.DecodeFloat32(buf, tmp); err != nil {
					return err
				}
				tensor.AxpySlice(1, tmp, avg)
			}
			inv := 1 / float32(cfg.Workers)
			for i := range avg {
				avg[i] *= inv
			}
			if err := net.SetFlatGrads(avg); err != nil {
				return err
			}
			set.solvers[0].ApplyUpdate()
		}
		// Master distributes the updated master weights to the slaves.
		var wbuf []byte
		if r == 0 {
			wbuf = tensor.Float32Bytes(net.FlatWeights(nil))
		}
		out, err := comm.Bcast(0, wbuf)
		if err != nil {
			return err
		}
		if r != 0 {
			w := make([]float32, elems)
			if err := tensor.DecodeFloat32(out, w); err != nil {
				return err
			}
			if err := net.SetFlatWeights(w); err != nil {
				return err
			}
		}
		if r == 0 {
			if err := rec.record(iter, loss, net.FlatWeights(nil)); err != nil {
				return err
			}
		}
	}
	return nil
}

// MPICaffe is the authors' comparison baseline: SSGD where every worker
// aggregates gradients with MPI_Allreduce and applies the same update.
type MPICaffe struct{}

var _ Trainer = MPICaffe{}

// Name implements Trainer.
func (MPICaffe) Name() string { return "MPICaffe" }

// Train implements Trainer.
func (MPICaffe) Train(cfg Config) (*Result, error) {
	set, err := buildWorkers(&cfg, "mpicaffe")
	if err != nil {
		return nil, err
	}
	eval, err := newEvaluator(&cfg, "mpicaffe-eval")
	if err != nil {
		return nil, err
	}
	world, err := mpi.NewWorld(cfg.Workers)
	if err != nil {
		return nil, err
	}
	rec := &curveRecorder{eval: eval, perEp: set.perEp}

	var wg sync.WaitGroup
	errs := make([]error, cfg.Workers)
	for r := 0; r < cfg.Workers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			comm, err := world.Comm(r)
			if err != nil {
				errs[r] = err
				return
			}
			net := set.nets[r]
			grads := make([]float32, net.NumParams())
			weights := make([]float32, net.NumParams())
			inv := 1 / float32(cfg.Workers)
			for iter := 0; iter < set.iters; iter++ {
				b := set.loaders[r].Next()
				net.ZeroGrads()
				loss, _, err := net.TrainStep(b.X, b.Labels)
				if err != nil {
					errs[r] = err
					return
				}
				net.FlatGrads(grads)
				if err := comm.AllreduceSum(grads); err != nil {
					errs[r] = err
					return
				}
				for i := range grads {
					grads[i] *= inv
				}
				if err := net.SetFlatGrads(grads); err != nil {
					errs[r] = err
					return
				}
				set.solvers[r].ApplyUpdate()
				if r == 0 {
					net.FlatWeights(weights)
					if err := rec.record(iter, loss, weights); err != nil {
						errs[r] = err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rec.result("MPICaffe", cfg.Workers, set.iters), nil
}
