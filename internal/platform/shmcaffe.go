package platform

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"shmcaffe/internal/core"
	"shmcaffe/internal/dataset"
	"shmcaffe/internal/mpi"
	"shmcaffe/internal/rds"
	"shmcaffe/internal/smb"
	"shmcaffe/internal/telemetry"
	"shmcaffe/internal/tensor"
)

// ShmCaffeA is asynchronous ShmCaffe: every worker is an independent SEASGD
// process against the SMB server (paper Sec. IV-D, "ShmCaffe-A").
type ShmCaffeA struct{}

var _ Trainer = ShmCaffeA{}

// Name implements Trainer.
func (ShmCaffeA) Name() string { return "ShmCaffe-A" }

// Train implements Trainer.
func (ShmCaffeA) Train(cfg Config) (*Result, error) {
	set, err := buildWorkers(&cfg, "shma")
	if err != nil {
		return nil, err
	}
	eval, err := newEvaluator(&cfg, "shma-eval")
	if err != nil {
		return nil, err
	}
	world, err := mpi.NewWorld(cfg.Workers)
	if err != nil {
		return nil, err
	}
	clients, closeClients, err := smbClients(&cfg, cfg.Workers)
	if err != nil {
		return nil, err
	}
	defer closeClients()
	job := cfg.Job
	if job == "" {
		job = "shma"
	}
	rec := &curveRecorder{eval: eval, perEp: set.perEp}
	globalBuf := make([]float32, set.nets[0].NumParams())

	// Rank 0's hook snapshots the *global* weight Wg at epoch
	// boundaries — the model ShmCaffe would actually ship.
	hook := func(w *core.Worker, iter int) error {
		if err := w.Buffers().ReadGlobal(globalBuf); err != nil {
			return err
		}
		return rec.record(iter, 0, globalBuf)
	}

	stats := make([]*core.RunStats, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for r := 0; r < cfg.Workers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			comm, err := world.Comm(r)
			if err != nil {
				errs[r] = err
				return
			}
			wcfg := core.WorkerConfig{
				Job:             job,
				Comm:            comm,
				Client:          clients[r],
				Net:             set.nets[r],
				Solver:          cfg.Solver,
				Elastic:         cfg.Elastic,
				Termination:     core.StopOnMaster,
				MaxIterations:   set.iters,
				Loader:          set.loaders[r],
				Telemetry:       cfg.Telemetry,
				LivenessTimeout: cfg.LivenessTimeout,
			}
			if r == 0 {
				wcfg.Hook = hook
			}
			w, err := core.NewWorker(wcfg)
			if err != nil {
				errs[r] = err
				return
			}
			stats[r], errs[r] = w.Run()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Fill the train-loss column of the curve from worker 0's history.
	fillTrainLoss(rec.curve, stats[0].LossHistory, set.perEp)
	return rec.result("ShmCaffe-A", cfg.Workers, stats[0].Iterations), nil
}

// ShmCaffeH is hybrid ShmCaffe: workers are partitioned into intra-node
// groups doing synchronous SSGD; group roots run SEASGD across groups
// (paper Sec. III-D / IV-D, "ShmCaffe-H").
type ShmCaffeH struct{}

var _ Trainer = ShmCaffeH{}

// Name implements Trainer.
func (ShmCaffeH) Name() string { return "ShmCaffe-H" }

// Train implements Trainer.
func (ShmCaffeH) Train(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gsize := cfg.groupSize()
	if cfg.Workers%gsize != 0 {
		return nil, fmt.Errorf("%d workers not divisible into groups of %d: %w",
			cfg.Workers, gsize, ErrConfig)
	}
	nGroups := cfg.Workers / gsize

	eval, err := newEvaluator(&cfg, "shmh-eval")
	if err != nil {
		return nil, err
	}
	world, err := mpi.NewWorld(nGroups)
	if err != nil {
		return nil, err
	}
	clients, closeClients, err := smbClients(&cfg, nGroups)
	if err != nil {
		return nil, err
	}
	defer closeClients()
	job := cfg.Job
	if job == "" {
		job = "shmh"
	}
	perEp := cfg.iterationsPerEpoch()
	iters := perEp * cfg.Epochs
	rec := &curveRecorder{eval: eval, perEp: perEp}
	globalBuf := make([]float32, 0)

	hook := func(g *core.HybridGroup, iter int) error {
		if len(globalBuf) == 0 {
			globalBuf = make([]float32, g.Buffers().Elems())
		}
		if err := g.Buffers().ReadGlobal(globalBuf); err != nil {
			return err
		}
		return rec.record(iter, 0, globalBuf)
	}

	configs := make([]core.HybridGroupConfig, nGroups)
	for gi := 0; gi < nGroups; gi++ {
		comm, err := world.Comm(gi)
		if err != nil {
			return nil, err
		}
		gcfg := core.HybridGroupConfig{
			Job:             job,
			Comm:            comm,
			Client:          clients[gi],
			Solver:          cfg.Solver,
			Elastic:         cfg.Elastic,
			Termination:     core.StopOnMaster,
			MaxIterations:   iters,
			Telemetry:       cfg.Telemetry,
			LivenessTimeout: cfg.LivenessTimeout,
		}
		if gi == 0 {
			gcfg.Hook = hook
		}
		for m := 0; m < gsize; m++ {
			rank := gi*gsize + m
			net, err := cfg.Model(fmt.Sprintf("shmh-g%dm%d", gi, m))
			if err != nil {
				return nil, err
			}
			net.InitWeights(tensor.NewRNG(cfg.Seed))
			shard, err := dataset.NewShard(cfg.Train, rank, cfg.Workers)
			if err != nil {
				return nil, err
			}
			loader, err := dataset.NewLoader(shard, cfg.BatchSize, cfg.Seed+uint64(rank)*7919)
			if err != nil {
				return nil, err
			}
			gcfg.Nets = append(gcfg.Nets, net)
			gcfg.Loaders = append(gcfg.Loaders, loader)
		}
		configs[gi] = gcfg
	}

	stats := make([]*core.GroupStats, nGroups)
	errs := make([]error, nGroups)
	var wg sync.WaitGroup
	for gi := 0; gi < nGroups; gi++ {
		gi := gi
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := core.NewHybridGroup(configs[gi])
			if err != nil {
				errs[gi] = err
				return
			}
			stats[gi], errs[gi] = g.Run()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	fillTrainLoss(rec.curve, stats[0].RootLossHistory, perEp)
	return rec.result("ShmCaffe-H", cfg.Workers, stats[0].Iterations), nil
}

// smbClients builds one SMB client per participant: local clients on a
// fresh in-process store by default, or per-worker connections to
// cfg.SMBAddr over TCP or the RDS datagram transport.
func smbClients(cfg *Config, n int) (clients []smb.Client, closeAll func(), err error) {
	clients = make([]smb.Client, n)
	if cfg.SMBAddr == "" {
		store := smb.NewStore()
		if cfg.Metrics != nil {
			store.Instrument(cfg.Metrics)
		}
		for i := range clients {
			clients[i] = smb.NewLocalClient(store)
		}
		return clients, func() {}, nil
	}
	var extra []io.Closer
	fail := func(i int, err error) ([]smb.Client, func(), error) {
		for _, done := range clients[:i] {
			done.Close()
		}
		for _, c := range extra {
			c.Close()
		}
		return nil, nil, err
	}
	switch cfg.SMBTransport {
	case "", "tcp", "tcp_sg", "auto":
		// One bounded probe verifies the server is reachable before any MPI
		// collective starts. Supervised clients connect lazily, so without
		// this a misconfigured address would fail inside rank 0's bootstrap
		// and strand the other ranks in a broadcast it never joins.
		probe := smb.NewSupervisedClient(smb.SupervisedConfig{
			Addr:        cfg.SMBAddr,
			OpTimeout:   cfg.SMBOpTimeout,
			MaxAttempts: 3,
			BackoffBase: 20 * time.Millisecond,
			BackoffMax:  100 * time.Millisecond,
		})
		_, err := probe.Lookup("\x00reachability-probe")
		probe.Close()
		if err != nil && !errors.Is(err, smb.ErrUnknownSegment) {
			return fail(0, fmt.Errorf("dial SMB server: %w", err))
		}
	}
	for i := range clients {
		switch cfg.SMBTransport {
		case "", "tcp", "tcp_sg", "shm", "auto":
			// The registry resolves the wire: supervised TCP (plain or
			// scatter-gather) with per-op deadlines, reconnect, and
			// sequence-stamped pushes, the negotiated shared-memory path,
			// or auto-negotiation between them. ClientID is rank-derived so
			// dedup keys stay distinct per worker on every transport.
			name := cfg.SMBTransport
			if name == "" {
				name = "tcp"
			}
			c, err := smb.DialTransport(name, smb.DialOptions{
				Addr:        cfg.SMBAddr,
				OpTimeout:   cfg.SMBOpTimeout,
				WaitTimeout: cfg.SMBWaitTimeout,
				Seed:        cfg.Seed + uint64(i)*7919,
				ClientID:    uint64(i + 1),
			})
			if err != nil {
				return fail(i, fmt.Errorf("dial SMB transport %s: %w", name, err))
			}
			clients[i] = c
		case "rds":
			ep, err := rds.ListenUDP("127.0.0.1:0")
			if err != nil {
				return fail(i, err)
			}
			conn, err := ep.Dial(cfg.SMBAddr)
			if err != nil {
				ep.Close()
				return fail(i, fmt.Errorf("rds dial SMB server: %w", err))
			}
			extra = append(extra, ep)
			clients[i] = smb.NewStreamClient(conn)
		default:
			return fail(i, fmt.Errorf("unknown SMB transport %q: %w", cfg.SMBTransport, ErrConfig))
		}
	}
	if cfg.Metrics != nil {
		// Instrument one representative connection: every client registering
		// the same RTT family would collide in the registry, and one
		// worker's round trips characterize the wire.
		if ic, ok := clients[0].(interface{ Instrument(*telemetry.Registry) }); ok {
			ic.Instrument(cfg.Metrics)
		}
	}
	return clients, func() {
		for _, c := range clients {
			c.Close()
		}
		for _, c := range extra {
			c.Close()
		}
	}, nil
}

// fillTrainLoss back-fills the TrainLoss column of a curve from a per-
// iteration loss history (the SEASGD hooks cannot see the loss because it
// belongs to the solver loop).
func fillTrainLoss(curve []EpochPoint, losses []float64, perEp int) {
	for i := range curve {
		end := (i + 1) * perEp
		if end > len(losses) {
			end = len(losses)
		}
		if end > 0 {
			curve[i].TrainLoss = meanTail(losses[:end], perEp)
		}
	}
}

// Registry returns the paper's four platforms plus the ShmCaffe-H variant,
// keyed by display name.
func Registry() map[string]Trainer {
	return map[string]Trainer{
		"caffe":      Caffe{},
		"caffe-mpi":  CaffeMPI{},
		"mpicaffe":   MPICaffe{},
		"shmcaffe-a": ShmCaffeA{},
		"shmcaffe-h": ShmCaffeH{},
	}
}
