package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTableRenderAlignment(t *testing.T) {
	tab := New("Title", "A", "LongColumn")
	tab.Add("x", "1")
	tab.Add("longer", "2")
	var b bytes.Buffer
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, underline, header, separator, two rows.
	if len(lines) != 6 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if lines[0] != "Title" {
		t.Fatalf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "=====") {
		t.Fatalf("underline %q", lines[1])
	}
	// Header cells align with row cells: column B starts at same offset.
	hIdx := strings.Index(lines[2], "LongColumn")
	rIdx := strings.Index(lines[5], "2")
	if hIdx != rIdx {
		t.Fatalf("misaligned: header col at %d, row value at %d\n%s", hIdx, rIdx, out)
	}
}

func TestTableAddPadsAndTruncates(t *testing.T) {
	tab := New("", "A", "B")
	tab.Add("only-one")
	tab.Add("x", "y", "dropped-extra")
	if tab.Rows[0][1] != "" {
		t.Fatalf("missing cell not padded: %v", tab.Rows[0])
	}
	if len(tab.Rows[1]) != 2 {
		t.Fatalf("extra cell not dropped: %v", tab.Rows[1])
	}
}

func TestTableRenderNoTitle(t *testing.T) {
	tab := New("", "A")
	tab.Add("1")
	var b bytes.Buffer
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(b.String(), "\n") || strings.Contains(b.String(), "=") {
		t.Fatalf("title artifacts without title: %q", b.String())
	}
}

func TestRenderCSVEscapesCommas(t *testing.T) {
	tab := New("t", "A,B", "C")
	tab.Add("1,2", "3")
	var b bytes.Buffer
	if err := tab.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "A;B,C" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[1] != "1;2,3" {
		t.Fatalf("row %q", lines[1])
	}
}

func TestFormatters(t *testing.T) {
	if got := Ms(1234567 * time.Nanosecond); got != "1.2" {
		t.Fatalf("Ms = %q", got)
	}
	if got := HoursMinutes(22*time.Hour + 59*time.Minute); got != "22:59" {
		t.Fatalf("HoursMinutes = %q", got)
	}
	if got := HoursMinutes(61 * time.Minute); got != "1:01" {
		t.Fatalf("HoursMinutes = %q", got)
	}
	if got := Pct(0.963); got != "96.3%" {
		t.Fatalf("Pct = %q", got)
	}
	if got := F2(3.14159); got != "3.14" {
		t.Fatalf("F2 = %q", got)
	}
	if got := F1(2.71); got != "2.7" {
		t.Fatalf("F1 = %q", got)
	}
	if got := GBs(6.72e9); got != "6.72 GB/s" {
		t.Fatalf("GBs = %q", got)
	}
	if got := Itoa(42); got != "42" {
		t.Fatalf("Itoa = %q", got)
	}
}
