package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestChartRender(t *testing.T) {
	c := NewChart("Demo", "ms")
	c.Legend = []string{"# comp", "= comm"}
	c.Add("short", Segment{Glyph: '#', Value: 10}, Segment{Glyph: '=', Value: 10})
	c.Add("long", Segment{Glyph: '#', Value: 40})
	var b bytes.Buffer
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "20.0 ms") || !strings.Contains(out, "40.0 ms") {
		t.Fatalf("chart output %q", out)
	}
	// Bars scale by total: "long" (40) must be twice "short" (20).
	lines := strings.Split(out, "\n")
	var shortBar, longBar int
	for _, l := range lines {
		if strings.HasPrefix(l, "short") {
			shortBar = strings.Count(l, "#") + strings.Count(l, "=")
		}
		if strings.HasPrefix(l, "long") {
			longBar = strings.Count(l, "#")
		}
	}
	if longBar < 2*shortBar-2 || longBar > 2*shortBar+2 {
		t.Fatalf("scaling: short %d, long %d", shortBar, longBar)
	}
	if !strings.Contains(out, "# comp") {
		t.Fatal("legend missing")
	}
}

func TestChartEmptyAndZero(t *testing.T) {
	c := NewChart("", "x")
	c.Add("zero", Segment{Glyph: '#', Value: 0})
	var b bytes.Buffer
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "0.0 x") {
		t.Fatalf("zero chart %q", b.String())
	}
}
