package trace

import (
	"fmt"
	"io"
	"strings"
)

// Chart renders horizontal (optionally stacked) bar charts as text — the
// figure-shaped view of the benchmark results, so `benchtables -chart`
// output reads like the paper's bar figures.
type Chart struct {
	Title string
	Unit  string
	rows  []chartRow
	// Legend maps glyphs to segment meanings, rendered under the chart.
	Legend []string
}

type chartRow struct {
	label string
	segs  []Segment
}

// Segment is one stacked portion of a bar.
type Segment struct {
	Glyph byte
	Value float64
}

// NewChart returns an empty chart.
func NewChart(title, unit string) *Chart {
	return &Chart{Title: title, Unit: unit}
}

// Add appends one bar made of the given stacked segments.
func (c *Chart) Add(label string, segs ...Segment) {
	cp := make([]Segment, len(segs))
	copy(cp, segs)
	c.rows = append(c.rows, chartRow{label: label, segs: cp})
}

// chartWidth is the bar area width in characters.
const chartWidth = 50

// Render writes the chart.
func (c *Chart) Render(w io.Writer) error {
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(c.Title)))
		b.WriteByte('\n')
	}
	labelW := 0
	maxTotal := 0.0
	for _, r := range c.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
		total := 0.0
		for _, s := range r.segs {
			total += s.Value
		}
		if total > maxTotal {
			maxTotal = total
		}
	}
	if maxTotal <= 0 {
		maxTotal = 1
	}
	for _, r := range c.rows {
		b.WriteString(r.label)
		b.WriteString(strings.Repeat(" ", labelW-len(r.label)))
		b.WriteString(" |")
		total := 0.0
		used := 0
		for _, s := range r.segs {
			total += s.Value
			n := int(s.Value / maxTotal * chartWidth)
			if n > 0 {
				b.WriteString(strings.Repeat(string(s.Glyph), n))
				used += n
			}
		}
		if used < chartWidth {
			b.WriteString(strings.Repeat(" ", chartWidth-used))
		}
		fmt.Fprintf(&b, "| %.1f %s\n", total, c.Unit)
	}
	for _, l := range c.Legend {
		b.WriteString("  ")
		b.WriteString(l)
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
