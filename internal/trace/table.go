// Package trace renders experiment results as aligned text tables and CSV —
// the output layer of the benchmark harness that regenerates the paper's
// tables and figures.
package trace

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// New returns an empty table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; missing cells are blank, extra cells are dropped.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (no quoting needed for our cell set;
// commas in cells are replaced by semicolons).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	clean := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(clean(c))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(clean(cell))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Formatting helpers shared by the bench generators.

// Ms formats a duration as milliseconds with one decimal.
func Ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

// HoursMinutes formats a duration as H:MM, the paper's Table II style.
func HoursMinutes(d time.Duration) string {
	h := int(d.Hours())
	m := int(d.Minutes()) - 60*h
	return fmt.Sprintf("%d:%02d", h, m)
}

// Pct formats a ratio as a percentage with one decimal.
func Pct(r float64) string { return fmt.Sprintf("%.1f%%", 100*r) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// F1 formats a float with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// GBs formats bytes/sec as GB/s with two decimals.
func GBs(bw float64) string { return fmt.Sprintf("%.2f GB/s", bw/1e9) }

// Itoa formats an int.
func Itoa(v int) string { return fmt.Sprintf("%d", v) }
