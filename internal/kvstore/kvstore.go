// Package kvstore is a minimal embedded record store — the stand-in for
// the LMDB database Caffe (and the paper's pipeline, Sec. IV-C) uses to
// hold the training corpus ("the training data was converted to LMDB data
// format"). It provides the subset of LMDB behaviour the training pipeline
// needs: durable ordered records, O(1) keyed access after open, and cheap
// sequential cursors for epoch scans.
//
// File format (little-endian):
//
//	header:  [8B magic "SHMKVDB1"]
//	record:  [4B key length][key bytes][4B value length][value bytes]
//
// Records are append-only; Open rebuilds the in-memory offset index with
// one sequential scan. A partially written trailing record (crash during
// append) is detected and truncated away, like LMDB's last-page recovery.
package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Exported errors.
var (
	ErrNotFound  = errors.New("kvstore: key not found")
	ErrBadFormat = errors.New("kvstore: bad file format")
	ErrClosed    = errors.New("kvstore: database closed")
	ErrDupKey    = errors.New("kvstore: duplicate key")
)

var magic = [8]byte{'S', 'H', 'M', 'K', 'V', 'D', 'B', '1'}

// maxRecordSide bounds key/value sizes against corrupt length prefixes.
const maxRecordSide = 1 << 30

// entry locates one record's value in the file.
type entry struct {
	valOff int64
	valLen int
}

// DB is one open database. It is safe for concurrent use; writes append
// under a lock, reads use positional I/O.
type DB struct {
	mu     sync.RWMutex
	f      *os.File
	size   int64            // guarded by mu
	index  map[string]entry // guarded by mu
	order  []string         // insertion order for cursors; guarded by mu
	closed bool             // guarded by mu
}

// Create creates a new database file, failing if it already exists.
func Create(path string) (*DB, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore create: %w", err)
	}
	if _, err := f.Write(magic[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("kvstore header: %w", err)
	}
	return &DB{
		f:     f,
		size:  int64(len(magic)),
		index: make(map[string]entry),
	}, nil
}

// Open opens an existing database, scanning it to rebuild the index. A
// torn trailing record is truncated away.
func Open(path string) (*DB, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("kvstore open: %w", err)
	}
	db := &DB{f: f, index: make(map[string]entry)}
	if err := db.scan(); err != nil {
		f.Close()
		return nil, err
	}
	return db, nil
}

// scan rebuilds the index from the file.
//
//lint:ignore guardedby scan runs inside Open before the DB is shared
func (db *DB) scan() error {
	var hdr [8]byte
	if _, err := io.ReadFull(db.f, hdr[:]); err != nil {
		return fmt.Errorf("header: %w", ErrBadFormat)
	}
	if hdr != magic {
		return fmt.Errorf("magic %q: %w", hdr, ErrBadFormat)
	}
	off := int64(len(magic))
	var lenBuf [4]byte
	for {
		// Key length.
		n, err := db.f.ReadAt(lenBuf[:], off)
		if err == io.EOF && n == 0 {
			break // clean end
		}
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break // torn record: truncate below
			}
			return fmt.Errorf("scan: %w", err)
		}
		keyLen := int(binary.LittleEndian.Uint32(lenBuf[:]))
		if keyLen <= 0 || keyLen > maxRecordSide {
			return fmt.Errorf("key length %d at %d: %w", keyLen, off, ErrBadFormat)
		}
		key := make([]byte, keyLen)
		if _, err := db.f.ReadAt(key, off+4); err != nil {
			break // torn
		}
		if _, err := db.f.ReadAt(lenBuf[:], off+4+int64(keyLen)); err != nil {
			break // torn
		}
		valLen := int(binary.LittleEndian.Uint32(lenBuf[:]))
		if valLen < 0 || valLen > maxRecordSide {
			return fmt.Errorf("value length %d at %d: %w", valLen, off, ErrBadFormat)
		}
		valOff := off + 8 + int64(keyLen)
		end := valOff + int64(valLen)
		if fi, err := db.f.Stat(); err != nil {
			return err
		} else if end > fi.Size() {
			break // torn value
		}
		ks := string(key)
		if _, dup := db.index[ks]; dup {
			return fmt.Errorf("key %q repeated at %d: %w", ks, off, ErrBadFormat)
		}
		db.index[ks] = entry{valOff: valOff, valLen: valLen}
		db.order = append(db.order, ks)
		off = end
	}
	// Truncate any torn tail so future appends start clean.
	if err := db.f.Truncate(off); err != nil {
		return fmt.Errorf("truncate torn tail: %w", err)
	}
	db.size = off
	return nil
}

// Put appends one record. Keys are unique.
func (db *DB) Put(key, val []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("kvstore: empty key")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if _, dup := db.index[string(key)]; dup {
		return fmt.Errorf("put %q: %w", key, ErrDupKey)
	}
	buf := make([]byte, 0, 8+len(key)+len(val))
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(key)))
	buf = append(buf, lenBuf[:]...)
	buf = append(buf, key...)
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(val)))
	buf = append(buf, lenBuf[:]...)
	buf = append(buf, val...)
	if _, err := db.f.WriteAt(buf, db.size); err != nil {
		return fmt.Errorf("kvstore put: %w", err)
	}
	db.index[string(key)] = entry{
		valOff: db.size + 8 + int64(len(key)),
		valLen: len(val),
	}
	db.order = append(db.order, string(key))
	db.size += int64(len(buf))
	return nil
}

// Get returns the value for key.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	e, ok := db.index[string(key)]
	if !ok {
		return nil, fmt.Errorf("get %q: %w", key, ErrNotFound)
	}
	val := make([]byte, e.valLen)
	if _, err := db.f.ReadAt(val, e.valOff); err != nil {
		return nil, fmt.Errorf("kvstore get: %w", err)
	}
	return val, nil
}

// Has reports whether key exists.
func (db *DB) Has(key []byte) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.index[string(key)]
	return ok
}

// Len returns the record count.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.order)
}

// KeyAt returns the i-th key in insertion order.
func (db *DB) KeyAt(i int) ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if i < 0 || i >= len(db.order) {
		return nil, fmt.Errorf("kvstore: index %d of %d: %w", i, len(db.order), ErrNotFound)
	}
	return []byte(db.order[i]), nil
}

// Sync flushes the file to stable storage.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.f.Sync()
}

// Close syncs and closes the database. Further operations fail.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if err := db.f.Sync(); err != nil {
		db.f.Close()
		return err
	}
	return db.f.Close()
}

// Cursor iterates records in insertion order, the epoch-scan pattern of a
// Caffe data layer.
type Cursor struct {
	db  *DB
	pos int
}

// Cursor returns a cursor positioned before the first record.
func (db *DB) Cursor() *Cursor { return &Cursor{db: db, pos: -1} }

// Next advances and returns the next record, or ok=false at the end.
func (c *Cursor) Next() (key, val []byte, ok bool, err error) {
	c.db.mu.RLock()
	if c.pos+1 >= len(c.db.order) {
		c.db.mu.RUnlock()
		return nil, nil, false, nil
	}
	c.pos++
	k := c.db.order[c.pos]
	c.db.mu.RUnlock()
	v, err := c.db.Get([]byte(k))
	if err != nil {
		return nil, nil, false, err
	}
	return []byte(k), v, true, nil
}

// Rewind repositions the cursor before the first record.
func (c *Cursor) Rewind() { c.pos = -1 }
