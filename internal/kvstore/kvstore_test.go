package kvstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"shmcaffe/internal/tensor"
)

func createT(t *testing.T) (*DB, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.db")
	db, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, path
}

func TestPutGetRoundTrip(t *testing.T) {
	db, _ := createT(t)
	if err := db.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k2"), []byte("")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("k1"))
	if err != nil || string(v) != "v1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	v, err = db.Get([]byte("k2"))
	if err != nil || len(v) != 0 {
		t.Fatalf("empty value Get = %q, %v", v, err)
	}
	if _, err := db.Get([]byte("absent")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
	if !db.Has([]byte("k1")) || db.Has([]byte("zz")) {
		t.Fatal("Has wrong")
	}
}

func TestPutValidation(t *testing.T) {
	db, _ := createT(t)
	if err := db.Put(nil, []byte("v")); err == nil {
		t.Fatal("expected error for empty key")
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v2")); !errors.Is(err, ErrDupKey) {
		t.Fatalf("want ErrDupKey, got %v", err)
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	_, path := createT(t)
	if _, err := Create(path); err == nil {
		t.Fatal("expected error creating over existing file")
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	db, path := createT(t)
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		val := []byte(fmt.Sprintf("value-%d", i*i))
		if err := db.Put(key, val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != 50 {
		t.Fatalf("reopened Len = %d", db2.Len())
	}
	v, err := db2.Get([]byte("key-037"))
	if err != nil || string(v) != fmt.Sprintf("value-%d", 37*37) {
		t.Fatalf("reopened Get = %q, %v", v, err)
	}
	// Insertion order preserved.
	k, err := db2.KeyAt(10)
	if err != nil || string(k) != "key-010" {
		t.Fatalf("KeyAt(10) = %q, %v", k, err)
	}
	// Appending after reopen works.
	if err := db2.Put([]byte("after-reopen"), []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestCursorIteratesInOrder(t *testing.T) {
	db, _ := createT(t)
	for i := 0; i < 10; i++ {
		db.Put([]byte{byte('a' + i)}, []byte{byte(i)})
	}
	c := db.Cursor()
	count := 0
	for {
		k, v, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if k[0] != byte('a'+count) || v[0] != byte(count) {
			t.Fatalf("cursor out of order at %d: %q %v", count, k, v)
		}
		count++
	}
	if count != 10 {
		t.Fatalf("cursor visited %d", count)
	}
	c.Rewind()
	if k, _, ok, _ := c.Next(); !ok || k[0] != 'a' {
		t.Fatal("rewind broken")
	}
}

func TestTornTailRecovery(t *testing.T) {
	db, path := createT(t)
	db.Put([]byte("good"), []byte("value"))
	db.Close()

	// Append half a record (key length + partial key).
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{10, 0, 0, 0, 'p', 'a', 'r'})
	f.Close()

	db2, err := Open(path)
	if err != nil {
		t.Fatalf("torn tail must be recoverable: %v", err)
	}
	defer db2.Close()
	if db2.Len() != 1 {
		t.Fatalf("recovered Len = %d", db2.Len())
	}
	// The torn bytes were truncated; new appends land cleanly.
	if err := db2.Put([]byte("next"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	db2.Close()
	db3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if db3.Len() != 2 {
		t.Fatalf("after recovery+append Len = %d", db3.Len())
	}
}

func TestBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.db")
	if err := os.WriteFile(path, []byte("NOTADBFILE.."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("want ErrBadFormat, got %v", err)
	}
}

func TestClosedOperationsFail(t *testing.T) {
	db, _ := createT(t)
	db.Close()
	if err := db.Put([]byte("k"), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal("double close must be nil")
	}
}

// Property: any batch of unique key/value pairs round-trips through a
// write + reopen cycle.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		dir, err := os.MkdirTemp("", "kvprop")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "p.db")
		db, err := Create(path)
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(30)
		keys := make([][]byte, n)
		vals := make([][]byte, n)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("k%d-%d", i, rng.Uint64()))
			vals[i] = make([]byte, rng.Intn(200))
			for j := range vals[i] {
				vals[i][j] = byte(rng.Uint64())
			}
			if err := db.Put(keys[i], vals[i]); err != nil {
				return false
			}
		}
		if err := db.Close(); err != nil {
			return false
		}
		db2, err := Open(path)
		if err != nil {
			return false
		}
		defer db2.Close()
		for i := range keys {
			got, err := db2.Get(keys[i])
			if err != nil || len(got) != len(vals[i]) {
				return false
			}
			for j := range got {
				if got[j] != vals[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyAtErrors(t *testing.T) {
	db, _ := createT(t)
	db.Put([]byte("a"), []byte("1"))
	if _, err := db.KeyAt(-1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if _, err := db.KeyAt(1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	k, err := db.KeyAt(0)
	if err != nil || string(k) != "a" {
		t.Fatalf("KeyAt(0) = %q, %v", k, err)
	}
}

func TestSyncAndClosedSync(t *testing.T) {
	db, _ := createT(t)
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	if err := db.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "absent.db")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestCursorConcurrentWithPut(t *testing.T) {
	db, _ := createT(t)
	for i := 0; i < 5; i++ {
		db.Put([]byte{byte('a' + i)}, []byte{byte(i)})
	}
	c := db.Cursor()
	c.Next()
	// Appending while a cursor is open is safe; the cursor sees the new
	// record at its position in insertion order.
	if err := db.Put([]byte("zz"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	count := 1
	for {
		_, _, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != 6 {
		t.Fatalf("cursor visited %d", count)
	}
}
