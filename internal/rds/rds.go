// Package rds implements a reliable, ordered transport over unreliable
// datagrams — the stand-in for the modified Reliable Datagram Sockets
// kernel module the paper builds SMB's Infiniband Communication Module
// from ("developed through the modification of open source Reliable
// Datagram Sockets (RDS) included in linux kernel main line", Sec. III-B).
//
// The protocol is a compact go-back-N ARQ: fixed-size-bounded DATA packets
// carry a 64-bit sequence number; the receiver delivers in order, stashes
// out-of-order packets, and returns cumulative ACKs; the sender keeps a
// bounded window and retransmits everything unacknowledged on timeout.
// Connections are established with a SYN/SYNACK handshake and closed with
// best-effort FIN. Endpoints multiplex any number of peer connections over
// one datagram socket, like RDS sockets over one HCA.
//
// The wire is abstracted behind PacketIO, so tests drive the state machine
// through a lossy in-memory network, and production uses UDP (udp.go).
package rds

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// Exported errors.
var (
	ErrClosed  = errors.New("rds: connection closed")
	ErrTimeout = errors.New("rds: handshake timeout")
)

// Protocol constants.
const (
	pktSYN byte = iota + 1
	pktSYNACK
	pktDATA
	pktACK
	pktFIN

	headerSize = 1 + 8 + 2
	// MaxPayload bounds one DATA packet's payload (a safe size below
	// typical MTU-with-fragmentation limits for UDP on loopback/LAN).
	MaxPayload = 16 * 1024
)

// Tunables (fixed; the paper's kernel module likewise hard-codes its ARQ).
const (
	windowPackets  = 64
	retransmitRTO  = 20 * time.Millisecond
	handshakeRTO   = 50 * time.Millisecond
	handshakeTries = 40
)

// PacketIO is one datagram socket: unreliable, unordered delivery of
// packets to string-addressed peers.
type PacketIO interface {
	// WriteTo sends one datagram to addr (best effort).
	WriteTo(b []byte, addr string) error
	// ReadFrom blocks for the next datagram, returning its sender.
	ReadFrom(b []byte) (n int, addr string, err error)
	// LocalAddr names this socket.
	LocalAddr() string
	// Close unblocks ReadFrom with an error.
	Close() error
}

func encodePacket(typ byte, seq uint64, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	buf[0] = typ
	binary.LittleEndian.PutUint64(buf[1:], seq)
	binary.LittleEndian.PutUint16(buf[9:], uint16(len(payload)))
	copy(buf[headerSize:], payload)
	return buf
}

func decodePacket(b []byte) (typ byte, seq uint64, payload []byte, err error) {
	if len(b) < headerSize {
		return 0, 0, nil, fmt.Errorf("rds: short packet (%d bytes)", len(b))
	}
	typ = b[0]
	seq = binary.LittleEndian.Uint64(b[1:])
	n := int(binary.LittleEndian.Uint16(b[9:]))
	if len(b) < headerSize+n {
		return 0, 0, nil, fmt.Errorf("rds: truncated payload (%d of %d)", len(b)-headerSize, n)
	}
	return typ, seq, b[headerSize : headerSize+n], nil
}

// Endpoint multiplexes reliable connections over one datagram socket.
type Endpoint struct {
	io PacketIO

	mu      sync.Mutex
	conns   map[string]*Conn // guarded by mu
	accept  chan *Conn
	closed  bool // guarded by mu
	done    chan struct{}
	readErr error // guarded by mu
}

// NewEndpoint wraps a datagram socket and starts its demultiplexer.
func NewEndpoint(pio PacketIO) *Endpoint {
	e := &Endpoint{
		io:     pio,
		conns:  make(map[string]*Conn),
		accept: make(chan *Conn, 16),
		done:   make(chan struct{}),
	}
	go e.readLoop()
	return e
}

// Addr returns the underlying socket address.
func (e *Endpoint) Addr() string { return e.io.LocalAddr() }

// readLoop demultiplexes incoming packets to connections.
func (e *Endpoint) readLoop() {
	defer close(e.done)
	buf := make([]byte, headerSize+MaxPayload)
	for {
		n, from, err := e.io.ReadFrom(buf)
		if err != nil {
			e.mu.Lock()
			e.readErr = err
			conns := make([]*Conn, 0, len(e.conns))
			for _, c := range e.conns {
				conns = append(conns, c)
			}
			e.mu.Unlock()
			for _, c := range conns {
				c.teardown()
			}
			return
		}
		typ, seq, payload, err := decodePacket(buf[:n])
		if err != nil {
			continue // corrupt datagram: drop, ARQ recovers
		}
		e.dispatch(from, typ, seq, payload)
	}
}

func (e *Endpoint) dispatch(from string, typ byte, seq uint64, payload []byte) {
	e.mu.Lock()
	conn, known := e.conns[from]
	if !known && typ == pktSYN && !e.closed {
		conn = newConn(e, from)
		e.conns[from] = conn
		e.mu.Unlock()
		// Acknowledge the handshake and surface the connection.
		e.send(from, encodePacket(pktSYNACK, 0, nil))
		select {
		case e.accept <- conn:
		default:
			// Accept queue full: drop the connection.
			conn.teardown()
			e.removeConn(from)
		}
		return
	}
	e.mu.Unlock()
	if conn == nil {
		// DATA/ACK from an unknown peer (stale or mis-routed): a FIN
		// tells it to give up.
		if typ == pktDATA {
			e.send(from, encodePacket(pktFIN, 0, nil))
		}
		return
	}
	conn.handlePacket(typ, seq, payload)
}

func (e *Endpoint) send(addr string, pkt []byte) {
	// Best effort: the ARQ handles losses.
	_ = e.io.WriteTo(pkt, addr)
}

func (e *Endpoint) removeConn(addr string) {
	e.mu.Lock()
	delete(e.conns, addr)
	e.mu.Unlock()
}

// Dial opens a reliable connection to a peer endpoint, retrying the SYN
// until acknowledged.
func (e *Endpoint) Dial(addr string) (*Conn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if _, exists := e.conns[addr]; exists {
		e.mu.Unlock()
		return nil, fmt.Errorf("rds: connection to %s already exists", addr)
	}
	conn := newConn(e, addr)
	e.conns[addr] = conn
	e.mu.Unlock()

	syn := encodePacket(pktSYN, 0, nil)
	for try := 0; try < handshakeTries; try++ {
		e.send(addr, syn)
		select {
		case <-conn.established:
			return conn, nil
		case <-conn.dead:
			e.removeConn(addr)
			return nil, ErrClosed
		case <-time.After(handshakeRTO):
		}
	}
	conn.teardown()
	e.removeConn(addr)
	return nil, fmt.Errorf("dial %s: %w", addr, ErrTimeout)
}

// Accept blocks for the next inbound connection.
func (e *Endpoint) Accept() (*Conn, error) {
	select {
	case c := <-e.accept:
		return c, nil
	case <-e.done:
		return nil, ErrClosed
	}
}

// Close tears down every connection and the socket.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := make([]*Conn, 0, len(e.conns))
	for _, c := range e.conns {
		conns = append(conns, c)
	}
	e.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	err := e.io.Close()
	<-e.done
	return err
}

// Conn is one reliable, ordered byte stream to a peer. It implements
// io.ReadWriteCloser, so the SMB wire protocol runs over it unchanged.
type Conn struct {
	ep   *Endpoint
	peer string

	established chan struct{}
	estOnce     sync.Once
	dead        chan struct{}
	deadOnce    sync.Once

	// Sender state (go-back-N).
	sndMu   sync.Mutex
	sndCond *sync.Cond
	sndNext uint64            // next sequence number to assign; guarded by sndMu
	sndUna  uint64            // oldest unacknowledged; guarded by sndMu
	pending map[uint64][]byte // encoded packets awaiting ack; guarded by sndMu
	lastAck time.Time         // guarded by sndMu

	// Receiver state.
	rcvMu   sync.Mutex
	rcvCond *sync.Cond
	rcvNext uint64            // guarded by rcvMu
	stash   map[uint64][]byte // out-of-order payloads; guarded by rcvMu
	rcvBuf  []byte            // in-order bytes ready for Read; guarded by rcvMu
	rcvEOF  bool              // guarded by rcvMu

	stopRetransmit chan struct{}
}

var _ io.ReadWriteCloser = (*Conn)(nil)

func newConn(e *Endpoint, peer string) *Conn {
	c := &Conn{
		ep:             e,
		peer:           peer,
		established:    make(chan struct{}),
		dead:           make(chan struct{}),
		pending:        make(map[uint64][]byte),
		stash:          make(map[uint64][]byte),
		stopRetransmit: make(chan struct{}),
		lastAck:        time.Now(),
	}
	c.sndCond = sync.NewCond(&c.sndMu)
	c.rcvCond = sync.NewCond(&c.rcvMu)
	go c.retransmitLoop()
	return c
}

// Peer returns the remote address.
func (c *Conn) Peer() string { return c.peer }

func (c *Conn) markEstablished() { c.estOnce.Do(func() { close(c.established) }) }

// teardown marks the connection dead and wakes all waiters.
func (c *Conn) teardown() {
	c.deadOnce.Do(func() {
		close(c.dead)
		close(c.stopRetransmit)
		c.sndMu.Lock()
		c.sndCond.Broadcast()
		c.sndMu.Unlock()
		c.rcvMu.Lock()
		c.rcvEOF = true
		c.rcvCond.Broadcast()
		c.rcvMu.Unlock()
	})
}

func (c *Conn) isDead() bool {
	select {
	case <-c.dead:
		return true
	default:
		return false
	}
}

// handlePacket processes one inbound packet (called by the demux loop).
func (c *Conn) handlePacket(typ byte, seq uint64, payload []byte) {
	switch typ {
	case pktSYN:
		// Duplicate SYN from the peer: re-acknowledge.
		c.ep.send(c.peer, encodePacket(pktSYNACK, 0, nil))
	case pktSYNACK:
		c.markEstablished()
	case pktDATA:
		c.markEstablished() // data implies the peer saw our handshake
		c.onData(seq, payload)
	case pktACK:
		c.onAck(seq)
	case pktFIN:
		c.teardown()
		c.ep.removeConn(c.peer)
	}
}

// onData delivers in-order payloads and cumulatively acknowledges.
func (c *Conn) onData(seq uint64, payload []byte) {
	c.rcvMu.Lock()
	switch {
	case seq == c.rcvNext:
		c.rcvBuf = append(c.rcvBuf, payload...)
		c.rcvNext++
		// Drain any stashed successors.
		for {
			next, ok := c.stash[c.rcvNext]
			if !ok {
				break
			}
			delete(c.stash, c.rcvNext)
			c.rcvBuf = append(c.rcvBuf, next...)
			c.rcvNext++
		}
		c.rcvCond.Broadcast()
	case seq > c.rcvNext:
		if len(c.stash) < 4*windowPackets { // bound stash memory
			cp := make([]byte, len(payload))
			copy(cp, payload)
			c.stash[seq] = cp
		}
	default:
		// Duplicate of already-delivered data: just re-ack.
	}
	ackTo := c.rcvNext
	c.rcvMu.Unlock()
	c.ep.send(c.peer, encodePacket(pktACK, ackTo, nil))
}

// onAck advances the send window.
func (c *Conn) onAck(cum uint64) {
	c.sndMu.Lock()
	if cum > c.sndUna {
		for seq := c.sndUna; seq < cum; seq++ {
			delete(c.pending, seq)
		}
		c.sndUna = cum
		c.lastAck = time.Now()
		c.sndCond.Broadcast()
	}
	c.sndMu.Unlock()
}

// retransmitLoop resends all unacknowledged packets when the oldest has
// been outstanding past the RTO (go-back-N).
func (c *Conn) retransmitLoop() {
	ticker := time.NewTicker(retransmitRTO)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			c.sndMu.Lock()
			var resend [][]byte
			if len(c.pending) > 0 && time.Since(c.lastAck) >= retransmitRTO {
				for seq := c.sndUna; seq < c.sndNext; seq++ {
					if pkt, ok := c.pending[seq]; ok {
						resend = append(resend, pkt)
					}
				}
				c.lastAck = time.Now() // pace retransmission bursts
			}
			c.sndMu.Unlock()
			for _, pkt := range resend {
				c.ep.send(c.peer, pkt)
			}
		case <-c.stopRetransmit:
			return
		}
	}
}

// Write implements io.Writer: packetize and send under the window.
func (c *Conn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		if c.isDead() {
			return total, ErrClosed
		}
		chunk := p
		if len(chunk) > MaxPayload {
			chunk = chunk[:MaxPayload]
		}
		c.sndMu.Lock()
		for c.sndNext-c.sndUna >= windowPackets && !c.isDead() {
			c.sndCond.Wait()
		}
		if c.isDead() {
			c.sndMu.Unlock()
			return total, ErrClosed
		}
		seq := c.sndNext
		c.sndNext++
		pkt := encodePacket(pktDATA, seq, chunk)
		c.pending[seq] = pkt
		c.sndMu.Unlock()

		c.ep.send(c.peer, pkt)
		total += len(chunk)
		p = p[len(chunk):]
	}
	return total, nil
}

// Read implements io.Reader: in-order delivered bytes.
func (c *Conn) Read(p []byte) (int, error) {
	c.rcvMu.Lock()
	defer c.rcvMu.Unlock()
	for len(c.rcvBuf) == 0 {
		if c.rcvEOF {
			return 0, io.EOF
		}
		c.rcvCond.Wait()
	}
	n := copy(p, c.rcvBuf)
	c.rcvBuf = c.rcvBuf[n:]
	return n, nil
}

// Close sends a best-effort FIN and tears the connection down.
func (c *Conn) Close() error {
	if !c.isDead() {
		c.ep.send(c.peer, encodePacket(pktFIN, 0, nil))
	}
	c.teardown()
	c.ep.removeConn(c.peer)
	return nil
}
