package rds

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"shmcaffe/internal/tensor"
)

// memNet is an in-memory datagram network with configurable loss,
// duplication and reordering — the adversarial substrate for the ARQ tests.
type memNet struct {
	mu      sync.Mutex
	sockets map[string]*memSocket
	rng     *tensor.RNG
	// lossEvery drops every n-th packet (0 disables); dupEvery duplicates.
	lossEvery int
	dupEvery  int
	counter   int
}

func newMemNet(seed uint64) *memNet {
	return &memNet{sockets: make(map[string]*memSocket), rng: tensor.NewRNG(seed)}
}

type memPacket struct {
	from string
	data []byte
}

type memSocket struct {
	net    *memNet
	addr   string
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []memPacket
	closed bool
}

var _ PacketIO = (*memSocket)(nil)

func (n *memNet) socket(addr string) *memSocket {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := &memSocket{net: n, addr: addr}
	s.cond = sync.NewCond(&s.mu)
	n.sockets[addr] = s
	return s
}

func (s *memSocket) WriteTo(b []byte, addr string) error {
	s.net.mu.Lock()
	dst := s.net.sockets[addr]
	s.net.counter++
	drop := s.net.lossEvery > 0 && s.net.counter%s.net.lossEvery == 0
	dup := s.net.dupEvery > 0 && s.net.counter%s.net.dupEvery == 0
	s.net.mu.Unlock()
	if dst == nil || drop {
		return nil // silently lost
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	dst.mu.Lock()
	dst.queue = append(dst.queue, memPacket{from: s.addr, data: cp})
	if dup {
		dst.queue = append(dst.queue, memPacket{from: s.addr, data: cp})
	}
	dst.cond.Broadcast()
	dst.mu.Unlock()
	return nil
}

func (s *memSocket) ReadFrom(b []byte) (int, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return 0, "", ErrClosed
	}
	p := s.queue[0]
	s.queue = s.queue[1:]
	n := copy(b, p.data)
	return n, p.from, nil
}

func (s *memSocket) LocalAddr() string { return s.addr }

func (s *memSocket) Close() error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	return nil
}

// pair builds two connected endpoints over a memNet.
func pair(t *testing.T, net *memNet) (client, server *Endpoint) {
	t.Helper()
	server = NewEndpoint(net.socket("server"))
	client = NewEndpoint(net.socket("client"))
	t.Cleanup(func() {
		client.Close()
		server.Close()
	})
	return client, server
}

func TestHandshakeAndEcho(t *testing.T) {
	client, server := pair(t, newMemNet(1))
	done := make(chan error, 1)
	go func() {
		done <- func() error {
			conn, err := server.Accept()
			if err != nil {
				return err
			}
			buf := make([]byte, 5)
			if _, err := io.ReadFull(conn, buf); err != nil {
				return err
			}
			_, err = conn.Write(bytes.ToUpper(buf))
			return err
		}()
	}()
	conn, err := client.Dial("server")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "HELLO" {
		t.Fatalf("echo %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestBulkTransferUnderLoss is the ARQ's load-bearing test: a multi-window
// transfer over a network dropping every 7th packet and duplicating every
// 11th must arrive intact and in order.
func TestBulkTransferUnderLoss(t *testing.T) {
	net := newMemNet(2)
	net.lossEvery = 7
	net.dupEvery = 11
	client, server := pair(t, net)

	const size = 800 * 1024 // ≈50 windows of 16 KiB packets
	payload := make([]byte, size)
	rng := tensor.NewRNG(3)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}

	received := make(chan []byte, 1)
	errCh := make(chan error, 1)
	go func() {
		conn, err := server.Accept()
		if err != nil {
			errCh <- err
			return
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(conn, buf); err != nil {
			errCh <- err
			return
		}
		received <- buf
	}()
	conn, err := client.Dial("server")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		t.Fatal(err)
	case got := <-received:
		if !bytes.Equal(got, payload) {
			t.Fatal("payload corrupted by lossy transfer")
		}
	}
}

func TestBidirectionalConcurrent(t *testing.T) {
	net := newMemNet(4)
	net.lossEvery = 9
	client, server := pair(t, net)

	const n = 64 * 1024
	serverDone := make(chan error, 1)
	go func() {
		serverDone <- func() error {
			conn, err := server.Accept()
			if err != nil {
				return err
			}
			var wg sync.WaitGroup
			var werr, rerr error
			wg.Add(2)
			go func() {
				defer wg.Done()
				out := bytes.Repeat([]byte{'s'}, n)
				_, werr = conn.Write(out)
			}()
			go func() {
				defer wg.Done()
				buf := make([]byte, n)
				_, rerr = io.ReadFull(conn, buf)
				if rerr == nil && buf[0] != 'c' {
					rerr = fmt.Errorf("wrong byte %c", buf[0])
				}
			}()
			wg.Wait()
			if werr != nil {
				return werr
			}
			return rerr
		}()
	}()

	conn, err := client.Dial("server")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var werr, rerr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, werr = conn.Write(bytes.Repeat([]byte{'c'}, n))
	}()
	go func() {
		defer wg.Done()
		buf := make([]byte, n)
		_, rerr = io.ReadFull(conn, buf)
		if rerr == nil && buf[n-1] != 's' {
			rerr = fmt.Errorf("wrong byte %c", buf[n-1])
		}
	}()
	wg.Wait()
	if werr != nil || rerr != nil {
		t.Fatal(werr, rerr)
	}
	if err := <-serverDone; err != nil {
		t.Fatal(err)
	}
}

func TestCloseDeliversEOF(t *testing.T) {
	client, server := pair(t, newMemNet(5))
	acceptCh := make(chan *Conn, 1)
	go func() {
		c, err := server.Accept()
		if err == nil {
			acceptCh <- c
		}
	}()
	conn, err := client.Dial("server")
	if err != nil {
		t.Fatal(err)
	}
	sconn := <-acceptCh
	conn.Close()
	buf := make([]byte, 1)
	if _, err := sconn.Read(buf); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF after peer close, got %v", err)
	}
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed on write after close, got %v", err)
	}
}

func TestDialTimeoutWhenPeerAbsent(t *testing.T) {
	net := newMemNet(6)
	client := NewEndpoint(net.socket("client"))
	defer client.Close()
	if _, err := client.Dial("nobody"); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestPacketCodecRoundTrip(t *testing.T) {
	pkt := encodePacket(pktDATA, 42, []byte("abc"))
	typ, seq, payload, err := decodePacket(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if typ != pktDATA || seq != 42 || string(payload) != "abc" {
		t.Fatalf("decoded %d %d %q", typ, seq, payload)
	}
	if _, _, _, err := decodePacket([]byte{1, 2}); err == nil {
		t.Fatal("expected error for short packet")
	}
	truncated := encodePacket(pktDATA, 1, []byte("abcdef"))[:headerSize+2]
	if _, _, _, err := decodePacket(truncated); err == nil {
		t.Fatal("expected error for truncated payload")
	}
}

func TestUDPIntegration(t *testing.T) {
	server, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const size = 256 * 1024
	payload := make([]byte, size)
	rng := tensor.NewRNG(7)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}
	errCh := make(chan error, 1)
	got := make(chan []byte, 1)
	go func() {
		conn, err := server.Accept()
		if err != nil {
			errCh <- err
			return
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(conn, buf); err != nil {
			errCh <- err
			return
		}
		got <- buf
	}()
	conn, err := client.Dial(server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		t.Fatal(err)
	case buf := <-got:
		if !bytes.Equal(buf, payload) {
			t.Fatal("UDP transfer corrupted")
		}
	}
}
