package rds

import (
	"fmt"
	"net"
)

// udpIO adapts a UDP socket to PacketIO.
type udpIO struct {
	conn *net.UDPConn
}

var _ PacketIO = (*udpIO)(nil)

// ListenUDP binds a datagram socket and returns its endpoint.
// Use addr "127.0.0.1:0" for an ephemeral port.
func ListenUDP(addr string) (*Endpoint, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("rds resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("rds listen %s: %w", addr, err)
	}
	return NewEndpoint(&udpIO{conn: conn}), nil
}

// WriteTo implements PacketIO. A datagram write never parks on a peer:
// it either enters the local socket buffer or drops, and the endpoint's
// retransmission timers own loss recovery.
//
//lint:ignore netdeadline UDP sends don't block on the peer; loss is handled by RDS retransmission
func (u *udpIO) WriteTo(b []byte, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	_, err = u.conn.WriteToUDP(b, ua)
	return err
}

// ReadFrom implements PacketIO. This is the endpoint's receive pump; it is
// meant to block until a datagram arrives and is unblocked for good by
// Close, which the owning Endpoint calls on shutdown.
//
//lint:ignore netdeadline receive-pump lifetime is bounded by Endpoint.Close closing the socket
func (u *udpIO) ReadFrom(b []byte) (int, string, error) {
	n, from, err := u.conn.ReadFromUDP(b)
	if err != nil {
		return 0, "", err
	}
	return n, from.String(), nil
}

// LocalAddr implements PacketIO.
func (u *udpIO) LocalAddr() string { return u.conn.LocalAddr().String() }

// Close implements PacketIO.
func (u *udpIO) Close() error { return u.conn.Close() }
