package rds

import (
	"fmt"
	"net"
)

// udpIO adapts a UDP socket to PacketIO.
type udpIO struct {
	conn *net.UDPConn
}

var _ PacketIO = (*udpIO)(nil)

// ListenUDP binds a datagram socket and returns its endpoint.
// Use addr "127.0.0.1:0" for an ephemeral port.
func ListenUDP(addr string) (*Endpoint, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("rds resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("rds listen %s: %w", addr, err)
	}
	return NewEndpoint(&udpIO{conn: conn}), nil
}

// WriteTo implements PacketIO.
func (u *udpIO) WriteTo(b []byte, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	_, err = u.conn.WriteToUDP(b, ua)
	return err
}

// ReadFrom implements PacketIO.
func (u *udpIO) ReadFrom(b []byte) (int, string, error) {
	n, from, err := u.conn.ReadFromUDP(b)
	if err != nil {
		return 0, "", err
	}
	return n, from.String(), nil
}

// LocalAddr implements PacketIO.
func (u *udpIO) LocalAddr() string { return u.conn.LocalAddr().String() }

// Close implements PacketIO.
func (u *udpIO) Close() error { return u.conn.Close() }
