package rds

import (
	"bytes"
	"testing"
)

// FuzzDecodePacket: arbitrary datagrams (corruption on the wire) must be
// rejected or decoded, never panic.
func FuzzDecodePacket(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodePacket(pktDATA, 7, []byte("abc")))
	f.Add([]byte{pktACK, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, seq, payload, err := decodePacket(data)
		if err != nil {
			return
		}
		// A successful decode must round-trip.
		re := encodePacket(typ, seq, payload)
		typ2, seq2, payload2, err := decodePacket(re)
		if err != nil || typ2 != typ || seq2 != seq || !bytes.Equal(payload2, payload) {
			t.Fatalf("re-encode mismatch")
		}
	})
}

// FuzzConnHandlePacket: a connection fed arbitrary packet sequences must
// not panic or corrupt delivered ordering (only in-order delivery is
// asserted by construction: delivered bytes come from rcvBuf appends).
func FuzzConnHandlePacket(f *testing.F) {
	f.Add(byte(pktDATA), uint64(0), []byte("x"))
	f.Add(byte(pktACK), uint64(5), []byte{})
	f.Add(byte(pktFIN), uint64(0), []byte{})
	f.Add(byte(42), uint64(1), []byte("zz"))
	f.Fuzz(func(t *testing.T, typ byte, seq uint64, payload []byte) {
		net := newMemNet(1)
		ep := NewEndpoint(net.socket("a"))
		defer ep.Close()
		conn := newConn(ep, "peer")
		defer conn.Close()
		conn.handlePacket(typ, seq%1000, payload)
		conn.handlePacket(pktDATA, 0, []byte("base"))
	})
}
