package perfmodel

import (
	"testing"

	"shmcaffe/internal/nn"
)

// TestMultiServerMatchesSingleAtOne: with one server the striped simulation
// must closely match the base SEASGD simulation.
func TestMultiServerMatchesSingleAtOne(t *testing.T) {
	hw := DefaultHardware()
	base, err := SimulateSEASGD(nn.ResNet50, 8, 30, hw)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := SimulateSEASGDMultiServer(nn.ResNet50, 8, 1, 30, hw)
	if err != nil {
		t.Fatal(err)
	}
	diff := base.Iter.Seconds() - multi.Iter.Seconds()
	if diff < 0 {
		diff = -diff
	}
	if diff/base.Iter.Seconds() > 0.05 {
		t.Fatalf("1-server striped %v vs base %v", multi.Iter, base.Iter)
	}
}

// TestMultiServerScalesBandwidth: the paper's future-work claim — striping
// across more SMB servers must cut the communication-bound iteration time
// of a big model at 16 workers.
func TestMultiServerScalesBandwidth(t *testing.T) {
	hw := DefaultHardware()
	p := nn.InceptionResNetV2
	var prev IterBreakdown
	for i, servers := range []int{1, 2, 4} {
		b, err := SimulateSEASGDMultiServer(p, 16, servers, 30, hw)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && b.Iter >= prev.Iter {
			t.Fatalf("%d servers (%v) not faster than previous (%v)", servers, b.Iter, prev.Iter)
		}
		prev = b
	}
	// With 4 servers the 16-worker IRv2 run should no longer be
	// communication-dominated.
	if prev.CommRatio() > 0.40 {
		t.Fatalf("4-server comm ratio %.2f still dominated", prev.CommRatio())
	}
}

func TestMultiServerValidation(t *testing.T) {
	hw := DefaultHardware()
	if _, err := SimulateSEASGDMultiServer(nn.VGG16, 4, 0, 10, hw); err == nil {
		t.Fatal("expected error for 0 servers")
	}
}

// TestStragglersHurtSSGDMoreThanSEASGD: the motivating asymmetry for
// asynchronous training (paper Sec. II): under compute jitter the
// synchronous barrier pays the slowest worker every iteration; SEASGD pays
// only its own jitter.
func TestStragglersHurtSSGDMoreThanSEASGD(t *testing.T) {
	hw := DefaultHardware()
	p := nn.InceptionV1
	m := StragglerModel{Sigma: 0.15, SlowProb: 0.05, SlowFactor: 4, Seed: 3}
	const workers = 16
	const iters = 60

	zero := StragglerModel{Seed: 1}
	ssgdClean, err := SimulateSSGDWithStragglers(p, workers, iters, hw, zero)
	if err != nil {
		t.Fatal(err)
	}
	ssgdJitter, err := SimulateSSGDWithStragglers(p, workers, iters, hw, m)
	if err != nil {
		t.Fatal(err)
	}
	seasgdClean, err := SimulateSEASGDWithStragglers(p, workers, iters, hw, zero)
	if err != nil {
		t.Fatal(err)
	}
	seasgdJitter, err := SimulateSEASGDWithStragglers(p, workers, iters, hw, m)
	if err != nil {
		t.Fatal(err)
	}

	ssgdSlowdown := ssgdJitter.Iter.Seconds() / ssgdClean.Iter.Seconds()
	seasgdSlowdown := seasgdJitter.Iter.Seconds() / seasgdClean.Iter.Seconds()
	if ssgdSlowdown <= seasgdSlowdown {
		t.Fatalf("SSGD slowdown %.3f not worse than SEASGD %.3f", ssgdSlowdown, seasgdSlowdown)
	}
	if ssgdSlowdown < 1.05 {
		t.Fatalf("jitter model produced no SSGD penalty: %.3f", ssgdSlowdown)
	}
}

func TestStragglerModelDeterministic(t *testing.T) {
	hw := DefaultHardware()
	m := DefaultStragglers()
	a, err := SimulateSSGDWithStragglers(nn.ResNet50, 8, 30, hw, m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateSSGDWithStragglers(nn.ResNet50, 8, 30, hw, m)
	if err != nil {
		t.Fatal(err)
	}
	if a.Iter != b.Iter {
		t.Fatalf("same-seed straggler sims differ: %v vs %v", a.Iter, b.Iter)
	}
}

func TestStragglerValidation(t *testing.T) {
	hw := DefaultHardware()
	m := DefaultStragglers()
	if _, err := SimulateSSGDWithStragglers(nn.VGG16, 0, 10, hw, m); err == nil {
		t.Fatal("expected error for 0 workers")
	}
	if _, err := SimulateSEASGDWithStragglers(nn.VGG16, 2, 0, hw, m); err == nil {
		t.Fatal("expected error for 0 iters")
	}
}

// TestLayerwiseOverlapHelpsMPICaffe: pipelining the allreduce behind the
// backward pass must shrink the baseline's iteration, but ShmCaffe's
// asynchronous path should still win at 16 workers on the big model.
func TestLayerwiseOverlapHelpsMPICaffe(t *testing.T) {
	hw := DefaultHardware()
	p := nn.InceptionResNetV2
	plain, err := SimulateMPICaffe(p, 16, 40, hw)
	if err != nil {
		t.Fatal(err)
	}
	pipelined, err := SimulateMPICaffeLayerwise(p, 16, 8, 40, hw)
	if err != nil {
		t.Fatal(err)
	}
	if pipelined.Iter >= plain.Iter {
		t.Fatalf("layerwise %v not faster than plain %v", pipelined.Iter, plain.Iter)
	}
	shm, err := SimulateHSGD(p, []int{4, 4, 4, 4}, 40, hw)
	if err != nil {
		t.Fatal(err)
	}
	if shm.Iter >= pipelined.Iter {
		t.Logf("note: pipelined MPICaffe (%v) beats ShmCaffe-H (%v) on this model", pipelined.Iter, shm.Iter)
	}
}

func TestLayerwiseSingleWorker(t *testing.T) {
	hw := DefaultHardware()
	b, err := SimulateMPICaffeLayerwise(nn.VGG16, 1, 4, 10, hw)
	if err != nil {
		t.Fatal(err)
	}
	if b.Comm != 0 {
		t.Fatalf("single worker comm %v", b.Comm)
	}
	if _, err := SimulateMPICaffeLayerwise(nn.VGG16, 2, 0, 10, hw); err == nil {
		t.Fatal("expected error for 0 chunks")
	}
}
