package perfmodel

import (
	"fmt"
	"time"

	"shmcaffe/internal/nn"
	"shmcaffe/internal/simnet"
)

// cluster is the simulated testbed topology: one SMB-server HCA, one HCA
// per GPU node.
type cluster struct {
	server *simnet.Link
	nodes  []*simnet.Link
}

func buildCluster(hw Hardware, nNodes int) (*cluster, error) {
	server, err := simnet.NewLink("smb-server-hca", hw.EffectiveHCA(), hw.HCALatency)
	if err != nil {
		return nil, err
	}
	c := &cluster{server: server}
	for i := 0; i < nNodes; i++ {
		l, err := simnet.NewLink(fmt.Sprintf("node%d-hca", i), hw.EffectiveHCA(), hw.HCALatency)
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, l)
	}
	return c, nil
}

// nodesFor returns the node count hosting `workers` workers.
func nodesFor(hw Hardware, workers int) int {
	n := (workers + hw.GPUsPerNode - 1) / hw.GPUsPerNode
	if n < 1 {
		n = 1
	}
	return n
}

// measureRun executes the simulation and converts per-worker completion
// times into an averaged IterBreakdown.
func measureRun(sim *simnet.Simulation, finish []time.Duration, iters int, comp time.Duration) (IterBreakdown, error) {
	if err := sim.Run(); err != nil {
		return IterBreakdown{}, err
	}
	var total time.Duration
	for _, f := range finish {
		total += f
	}
	iter := total / time.Duration(len(finish)*iters)
	comm := iter - comp
	if comm < 0 {
		comm = 0
	}
	return IterBreakdown{Iter: iter, Comp: comp, Comm: comm}, nil
}

// SEASGDOptions select the design-point ablations of DESIGN.md §6.
type SEASGDOptions struct {
	// DisableOverlap pushes the increment inline (no update thread).
	DisableOverlap bool
	// HideGlobalRead moves the T1 read into the update thread (more
	// staleness, less exposed time — the trade-off the paper rejects).
	HideGlobalRead bool
	// UpdateInterval is the iterations between global exchanges (≥1).
	UpdateInterval int
	// ClientSideRMW replaces the server-side Accumulate with a client
	// read-modify-write of Wg: double the transfer volume plus a race
	// window — the design point SMB's Accumulate verb eliminates.
	ClientSideRMW bool
}

// SimulateSEASGD reproduces one ShmCaffe-A configuration: `workers` SEASGD
// workers (4 per node) against one SMB server, running `iters` iterations
// of the Fig. 6 loop. It returns the averaged per-iteration breakdown.
func SimulateSEASGD(p nn.Profile, workers, iters int, hw Hardware) (IterBreakdown, error) {
	return SimulateSEASGDOpts(p, workers, iters, hw, SEASGDOptions{UpdateInterval: 1})
}

// SimulateSEASGDOpts is SimulateSEASGD with explicit design-point options.
func SimulateSEASGDOpts(p nn.Profile, workers, iters int, hw Hardware, opts SEASGDOptions) (IterBreakdown, error) {
	if err := hw.Validate(); err != nil {
		return IterBreakdown{}, err
	}
	if err := p.Validate(); err != nil {
		return IterBreakdown{}, err
	}
	if workers < 1 || iters < 1 {
		return IterBreakdown{}, fmt.Errorf("perfmodel: %d workers, %d iters", workers, iters)
	}
	if opts.UpdateInterval < 1 {
		opts.UpdateInterval = 1
	}
	sim := simnet.New()
	cl, err := buildCluster(hw, nodesFor(hw, workers))
	if err != nil {
		return IterBreakdown{}, err
	}
	accSem := sim.NewSemaphore(1) // exclusive server-side accumulation
	param := float64(p.ParamBytes)
	tulw := hw.localUpdateTime(p)
	tacc := hw.accumTime(p)
	finish := make([]time.Duration, workers)

	for w := 0; w < workers; w++ {
		w := w
		node := cl.nodes[w/hw.GPUsPerNode]
		lock := sim.NewSemaphore(1) // Fig. 6 per-worker lock
		pushQ := simnet.NewQueue[int](sim)

		push := func(pr *simnet.Proc) {
			// T.A1: write ΔWx.
			pr.TransferCapped(param, hw.PerFlowCap, node, cl.server)
			if opts.ClientSideRMW {
				// Ablation: the client must read Wg, add locally and
				// write it back — double traffic under the exclusive
				// section instead of a server-side add.
				accSem.Acquire(pr)
				pr.TransferCapped(param, hw.PerFlowCap, node, cl.server)
				pr.Sleep(tulw)
				pr.TransferCapped(param, hw.PerFlowCap, node, cl.server)
				accSem.Release()
			} else {
				// T.A3: exclusive accumulate on the server.
				accSem.Acquire(pr)
				pr.Sleep(tacc)
				accSem.Release()
			}
			if opts.HideGlobalRead {
				// The update thread refreshes the cached Wg.
				pr.TransferCapped(param, hw.PerFlowCap, node, cl.server)
			}
		}

		sim.Go(fmt.Sprintf("worker%d-main", w), func(pr *simnet.Proc) {
			for it := 0; it < iters; it++ {
				if it%opts.UpdateInterval == 0 {
					lock.Acquire(pr)
					if !opts.HideGlobalRead {
						// T1: read Wg.
						pr.TransferCapped(param, hw.PerFlowCap, node, cl.server)
					}
					// T2: elastic local update.
					pr.Sleep(tulw)
					lock.Release()
					if opts.DisableOverlap {
						lock.Acquire(pr)
						push(pr)
						lock.Release()
					} else {
						// T3: wake the update thread.
						pushQ.Push(it)
					}
				}
				// T4+T5: minibatch compute.
				pr.Sleep(p.CompTime)
			}
			pushQ.Close()
			finish[w] = pr.Now()
		})
		sim.Go(fmt.Sprintf("worker%d-upd", w), func(pr *simnet.Proc) {
			for {
				if _, ok := pushQ.Pop(pr); !ok {
					return
				}
				lock.Acquire(pr)
				push(pr)
				lock.Release()
			}
		})
	}
	return measureRun(sim, finish, iters, p.CompTime)
}

// SimulateHSGD reproduces one ShmCaffe-H configuration: groups of
// synchronous workers (one group per node, NCCL ring over the node's PCIe)
// whose roots run SEASGD against the SMB server. groupSizes lists the
// member count of each group — e.g. Table III's 8(S4×A2) is
// []int{4, 4}.
func SimulateHSGD(p nn.Profile, groupSizes []int, iters int, hw Hardware) (IterBreakdown, error) {
	if err := hw.Validate(); err != nil {
		return IterBreakdown{}, err
	}
	if err := p.Validate(); err != nil {
		return IterBreakdown{}, err
	}
	if len(groupSizes) == 0 || iters < 1 {
		return IterBreakdown{}, fmt.Errorf("perfmodel: %d groups, %d iters", len(groupSizes), iters)
	}
	sim := simnet.New()
	cl, err := buildCluster(hw, len(groupSizes))
	if err != nil {
		return IterBreakdown{}, err
	}
	accSem := sim.NewSemaphore(1)
	param := float64(p.ParamBytes)
	tulw := hw.localUpdateTime(p)
	tacc := hw.accumTime(p)

	finish := make([]time.Duration, len(groupSizes))
	for gi, size := range groupSizes {
		gi, size := gi, size
		if size < 1 {
			return IterBreakdown{}, fmt.Errorf("perfmodel: group %d size %d", gi, size)
		}
		node := cl.nodes[gi]
		pcie, err := simnet.NewLink(fmt.Sprintf("node%d-pcie", gi),
			hw.NodePCIeBandwidth(size), 500*time.Nanosecond)
		if err != nil {
			return IterBreakdown{}, err
		}
		bar, err := sim.NewBarrier(size)
		if err != nil {
			return IterBreakdown{}, err
		}
		lock := sim.NewSemaphore(1)
		pushQ := simnet.NewQueue[int](sim)

		for m := 0; m < size; m++ {
			m := m
			sim.Go(fmt.Sprintf("g%dm%d", gi, m), func(pr *simnet.Proc) {
				ringShare := 2 * float64(size-1) / float64(size) * param
				for it := 0; it < iters; it++ {
					// (1) Local gradient computation.
					pr.Sleep(p.CompTime)
					if size > 1 {
						// (2) ncclAllReduce over the node PCIe.
						pr.Transfer(ringShare, pcie)
						bar.Wait(pr)
					}
					if m == 0 {
						// (3) Root's SEASGD exchange (read exposed,
						// push overlapped with the next compute).
						lock.Acquire(pr)
						pr.TransferCapped(param, hw.PerFlowCap, node, cl.server)
						pr.Sleep(tulw)
						lock.Release()
						pushQ.Push(it)
						// (4) Broadcast W'grp to the group.
						if size > 1 {
							pr.Transfer(float64(size-1)*param, pcie)
						}
					}
					if size > 1 {
						bar.Wait(pr)
					}
				}
				if m == 0 {
					pushQ.Close()
					finish[gi] = pr.Now()
				}
			})
		}
		sim.Go(fmt.Sprintf("g%d-upd", gi), func(pr *simnet.Proc) {
			for {
				if _, ok := pushQ.Pop(pr); !ok {
					return
				}
				lock.Acquire(pr)
				pr.TransferCapped(param, hw.PerFlowCap, node, cl.server)
				accSem.Acquire(pr)
				pr.Sleep(tacc)
				accSem.Release()
				lock.Release()
			}
		})
	}
	return measureRun(sim, finish, iters, p.CompTime)
}
