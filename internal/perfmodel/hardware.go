// Package perfmodel reproduces the paper's timing results (Figs. 7, 9, 10,
// 12–15; Tables II, V, VI) by simulating each platform's per-iteration
// communication structure on the internal/simnet discrete-event fabric,
// using the paper's own model profiles (internal/nn.Profile) for compute
// time and parameter volume.
//
// The hardware constants below are calibrated once, against the paper's
// Sec. IV numbers, and then reused unchanged across every experiment — the
// same methodology as a validated simulator. See DESIGN.md §5.
package perfmodel

import (
	"fmt"
	"time"

	"shmcaffe/internal/nn"
)

// Hardware models the paper's testbed (Sec. IV-A): SuperMicro 4028GR nodes
// with 4 GTX Titan X GPUs each, one 56 Gbps FDR Infiniband HCA per node,
// and a dedicated SMB memory server (E5-2609 v2, DDR3-1866).
type Hardware struct {
	// HCABandwidth is the raw unidirectional HCA payload bandwidth
	// (7 GB/s for 56 Gbps FDR).
	HCABandwidth float64
	// HCAEfficiency is the protocol efficiency ceiling; the paper
	// measures 96 % utilization (Fig. 7: 6.7 of 7 GB/s).
	HCAEfficiency float64
	// HCALatency is the per-transfer setup latency.
	HCALatency time.Duration
	// PerFlowCap is the single-connection (RDS queue pair) throughput
	// ceiling; calibrated from the paper's VGG16 two-worker measurement
	// (727.7 ms of communication for 2×528 MB per iteration ⇒
	// ≈1.45 GB/s per flow).
	PerFlowCap float64
	// AccumBandwidth converts an Accumulate of P bytes into P/AccumBW of
	// exclusive SMB-server time (read src + read dst + write dst on the
	// memory server's DDR3).
	AccumBandwidth float64
	// LocalMemBandwidth models the worker-side flat-weight update (T2:
	// compute ΔWx and apply) as P/LocalMemBW.
	LocalMemBandwidth float64
	// MPISoftwareFactor multiplies MPI transfer volume, modeling the
	// user/kernel copies and protocol processing that RDMA eliminates
	// (the overhead the paper's Sec. V credits SMB with removing).
	MPISoftwareFactor float64
	// MPIStepLatency is the per-step software overhead of an MPI ring
	// collective (message matching, progress engine); a ring allreduce
	// over n ranks pays 2(n−1) of these.
	MPIStepLatency time.Duration
	// GPUsPerNode is the cluster layout (4 in the paper).
	GPUsPerNode int
}

// DefaultHardware returns the calibrated testbed model.
func DefaultHardware() Hardware {
	return Hardware{
		HCABandwidth:      7e9,
		HCAEfficiency:     0.96,
		HCALatency:        2 * time.Microsecond,
		PerFlowCap:        1.45e9,
		AccumBandwidth:    6e9,
		LocalMemBandwidth: 12e9,
		MPISoftwareFactor: 2.0,
		MPIStepLatency:    2 * time.Millisecond,
		GPUsPerNode:       4,
	}
}

// Validate checks the hardware model.
func (h Hardware) Validate() error {
	if h.HCABandwidth <= 0 || h.HCAEfficiency <= 0 || h.HCAEfficiency > 1 {
		return fmt.Errorf("perfmodel: bad HCA model %+v", h)
	}
	if h.PerFlowCap <= 0 || h.AccumBandwidth <= 0 || h.LocalMemBandwidth <= 0 {
		return fmt.Errorf("perfmodel: non-positive bandwidth in %+v", h)
	}
	if h.MPISoftwareFactor < 1 {
		return fmt.Errorf("perfmodel: MPI factor %v < 1", h.MPISoftwareFactor)
	}
	if h.MPIStepLatency < 0 {
		return fmt.Errorf("perfmodel: negative MPI step latency %v", h.MPIStepLatency)
	}
	if h.GPUsPerNode < 1 {
		return fmt.Errorf("perfmodel: %d GPUs per node", h.GPUsPerNode)
	}
	return nil
}

// EffectiveHCA returns the usable per-link bandwidth.
func (h Hardware) EffectiveHCA() float64 { return h.HCABandwidth * h.HCAEfficiency }

// NodePCIeBandwidth returns the effective shared host-PCIe bandwidth for a
// single node carrying n GPUs. The tiers are calibrated to Table II's
// single-node Caffe scalability (2.7× at 8 GPUs, 2.3× at 16: the 4028GR
// oversubscribes its PCIe switches beyond 4 GPUs).
func (h Hardware) NodePCIeBandwidth(gpusOnNode int) float64 {
	switch {
	case gpusOnNode <= 4:
		return 10e9
	case gpusOnNode <= 8:
		return 1.43e9
	default:
		return 1.05e9
	}
}

// accumTime is the exclusive server-side time of one Accumulate.
func (h Hardware) accumTime(p nn.Profile) time.Duration {
	return time.Duration(float64(p.ParamBytes) / h.AccumBandwidth * float64(time.Second))
}

// localUpdateTime is the worker-side T2/T_ulw time.
func (h Hardware) localUpdateTime(p nn.Profile) time.Duration {
	return time.Duration(float64(p.ParamBytes) / h.LocalMemBandwidth * float64(time.Second))
}

// IterBreakdown is the Eq. (8) decomposition of one averaged training
// iteration.
type IterBreakdown struct {
	// Iter is the wall-clock time of one iteration.
	Iter time.Duration
	// Comp is T_comp: forward + backward + gradient update.
	Comp time.Duration
	// Comm is the exposed communication time: Iter − Comp.
	Comm time.Duration
}

// CommRatio returns communication share of the iteration (the percentage
// the paper plots in Figs. 12–14).
func (b IterBreakdown) CommRatio() float64 {
	if b.Iter <= 0 {
		return 0
	}
	return float64(b.Comm) / float64(b.Iter)
}

// TrainingTime scales an iteration time to a full run: images samples for
// epochs epochs at the profile's batch size across workers GPUs.
func TrainingTime(b IterBreakdown, p nn.Profile, images, epochs, workers int) time.Duration {
	itersPerEpoch := images / (p.BatchSize * workers)
	if itersPerEpoch < 1 {
		itersPerEpoch = 1
	}
	return time.Duration(itersPerEpoch*epochs) * b.Iter
}

// ImageNetTrainSize is the ILSVRC-2012 training-set size the paper uses.
const ImageNetTrainSize = 1281167

// Eq8Components is the named decomposition of Eq. (8) for one uncontended
// worker: T_iter = max(T_comp, T_wwi + T_ugw) + T_rgw + T_ulw.
type Eq8Components struct {
	Trgw time.Duration // read global weight (T1)
	Tulw time.Duration // update local weight (T2/T5 flat-vector part)
	Twwi time.Duration // write weight increment (T.A1)
	Tugw time.Duration // update (accumulate) global weight (T.A3)
	Comp time.Duration // forward+backward+gradient update (T4+T5)
	Iter time.Duration // resulting iteration time
}

// Eq8Decompose evaluates every term of Eq. (8) for a model profile.
func (h Hardware) Eq8Decompose(p nn.Profile) Eq8Components {
	transfer := func(bytes float64) time.Duration {
		bw := h.EffectiveHCA()
		if h.PerFlowCap > 0 && h.PerFlowCap < bw {
			bw = h.PerFlowCap
		}
		return h.HCALatency + time.Duration(bytes/bw*float64(time.Second))
	}
	c := Eq8Components{
		Trgw: transfer(float64(p.ParamBytes)),
		Tulw: h.localUpdateTime(p),
		Twwi: transfer(float64(p.ParamBytes)),
		Tugw: h.accumTime(p),
		Comp: p.CompTime,
	}
	body := c.Comp
	if hidden := c.Twwi + c.Tugw; hidden > body {
		body = hidden
	}
	c.Iter = body + c.Trgw + c.Tulw
	return c
}

// Eq8 is the paper's analytic iteration-time model:
//
//	T_iter = max(T_comp, T_wwi + T_ugw) + T_rgw + T_ulw
//
// computed for one isolated worker (no link contention). The discrete-event
// simulations generalize it to many contending workers; tests verify they
// agree in the single-worker case.
func (h Hardware) Eq8(p nn.Profile) IterBreakdown {
	c := h.Eq8Decompose(p)
	return IterBreakdown{Iter: c.Iter, Comp: c.Comp, Comm: c.Iter - c.Comp}
}
