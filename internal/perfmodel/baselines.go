package perfmodel

import (
	"fmt"
	"time"

	"shmcaffe/internal/nn"
	"shmcaffe/internal/simnet"
)

// SimulateCaffe reproduces BVLC Caffe: single-node SSGD over `gpus` GPUs
// with an NCCL ring allreduce across the node's (oversubscribed) PCIe
// fabric. One GPU degenerates to plain SGD with zero communication.
func SimulateCaffe(p nn.Profile, gpus, iters int, hw Hardware) (IterBreakdown, error) {
	if err := hw.Validate(); err != nil {
		return IterBreakdown{}, err
	}
	if err := p.Validate(); err != nil {
		return IterBreakdown{}, err
	}
	if gpus < 1 || iters < 1 {
		return IterBreakdown{}, fmt.Errorf("perfmodel: %d gpus, %d iters", gpus, iters)
	}
	if gpus == 1 {
		return IterBreakdown{Iter: p.CompTime, Comp: p.CompTime}, nil
	}
	sim := simnet.New()
	pcie, err := simnet.NewLink("pcie", hw.NodePCIeBandwidth(gpus), 500*time.Nanosecond)
	if err != nil {
		return IterBreakdown{}, err
	}
	bar, err := sim.NewBarrier(gpus)
	if err != nil {
		return IterBreakdown{}, err
	}
	param := float64(p.ParamBytes)
	ringShare := 2 * float64(gpus-1) / float64(gpus) * param
	finish := make([]time.Duration, gpus)
	for g := 0; g < gpus; g++ {
		g := g
		sim.Go(fmt.Sprintf("gpu%d", g), func(pr *simnet.Proc) {
			for it := 0; it < iters; it++ {
				pr.Sleep(p.CompTime)
				pr.Transfer(ringShare, pcie)
				bar.Wait(pr)
			}
			finish[g] = pr.Now()
		})
	}
	return measureRun(sim, finish, iters, p.CompTime)
}

// SimulateCaffeMPI reproduces Inspur Caffe-MPI's star topology: the master
// (on its own node) gathers every worker's gradients over MPI, averages and
// updates, then distributes the weights back. The MPI software factor
// models the copy/protocol overhead of the non-RDMA path.
func SimulateCaffeMPI(p nn.Profile, workers, iters int, hw Hardware) (IterBreakdown, error) {
	if err := hw.Validate(); err != nil {
		return IterBreakdown{}, err
	}
	if err := p.Validate(); err != nil {
		return IterBreakdown{}, err
	}
	if workers < 1 || iters < 1 {
		return IterBreakdown{}, fmt.Errorf("perfmodel: %d workers, %d iters", workers, iters)
	}
	if workers == 1 {
		return IterBreakdown{Iter: p.CompTime, Comp: p.CompTime}, nil
	}
	sim := simnet.New()
	nNodes := nodesFor(hw, workers)
	cl, err := buildCluster(hw, nNodes+1) // extra node hosts the master
	if err != nil {
		return IterBreakdown{}, err
	}
	master := cl.nodes[nNodes]
	volume := float64(p.ParamBytes) * hw.MPISoftwareFactor
	updTime := hw.localUpdateTime(p)

	barGather, err := sim.NewBarrier(workers + 1)
	if err != nil {
		return IterBreakdown{}, err
	}
	barUpdate, err := sim.NewBarrier(workers + 1)
	if err != nil {
		return IterBreakdown{}, err
	}
	barScatter, err := sim.NewBarrier(workers + 1)
	if err != nil {
		return IterBreakdown{}, err
	}

	finish := make([]time.Duration, workers)
	for w := 0; w < workers; w++ {
		w := w
		node := cl.nodes[w/hw.GPUsPerNode]
		sim.Go(fmt.Sprintf("worker%d", w), func(pr *simnet.Proc) {
			for it := 0; it < iters; it++ {
				pr.Sleep(p.CompTime)
				// Gradient gather into the master.
				pr.Transfer(volume, node, master)
				barGather.Wait(pr)
				// Master applies the update.
				barUpdate.Wait(pr)
				// Weight scatter back to the workers.
				pr.Transfer(volume, master, node)
				barScatter.Wait(pr)
			}
			finish[w] = pr.Now()
		})
	}
	sim.Go("master", func(pr *simnet.Proc) {
		for it := 0; it < iters; it++ {
			barGather.Wait(pr)
			pr.Sleep(updTime)
			barUpdate.Wait(pr)
			barScatter.Wait(pr)
		}
	})
	return measureRun(sim, finish, iters, p.CompTime)
}

// SimulateMPICaffe reproduces the authors' MPICaffe baseline: SSGD with an
// MPI_Allreduce ring across all workers' node HCAs.
func SimulateMPICaffe(p nn.Profile, workers, iters int, hw Hardware) (IterBreakdown, error) {
	if err := hw.Validate(); err != nil {
		return IterBreakdown{}, err
	}
	if err := p.Validate(); err != nil {
		return IterBreakdown{}, err
	}
	if workers < 1 || iters < 1 {
		return IterBreakdown{}, fmt.Errorf("perfmodel: %d workers, %d iters", workers, iters)
	}
	if workers == 1 {
		return IterBreakdown{Iter: p.CompTime, Comp: p.CompTime}, nil
	}
	sim := simnet.New()
	cl, err := buildCluster(hw, nodesFor(hw, workers))
	if err != nil {
		return IterBreakdown{}, err
	}
	bar, err := sim.NewBarrier(workers)
	if err != nil {
		return IterBreakdown{}, err
	}
	ringShare := 2 * float64(workers-1) / float64(workers) *
		float64(p.ParamBytes) * hw.MPISoftwareFactor
	// A ring allreduce over n ranks pays 2(n−1) software steps.
	stepOverhead := time.Duration(2*(workers-1)) * hw.MPIStepLatency
	updTime := hw.localUpdateTime(p)
	finish := make([]time.Duration, workers)
	for w := 0; w < workers; w++ {
		w := w
		node := cl.nodes[w/hw.GPUsPerNode]
		sim.Go(fmt.Sprintf("worker%d", w), func(pr *simnet.Proc) {
			for it := 0; it < iters; it++ {
				pr.Sleep(p.CompTime)
				pr.Transfer(ringShare, node)
				pr.Sleep(stepOverhead)
				bar.Wait(pr)
				pr.Sleep(updTime)
			}
			finish[w] = pr.Now()
		})
	}
	return measureRun(sim, finish, iters, p.CompTime)
}

// SimulateSMBBandwidth reproduces the Fig. 7 experiment: n processes each
// move totalBytes through one SMB server in opBytes chunks (50/50
// read/write). It returns the aggregated bandwidth in bytes/sec.
func SimulateSMBBandwidth(n int, totalBytes, opBytes float64, hw Hardware) (float64, error) {
	if err := hw.Validate(); err != nil {
		return 0, err
	}
	if n < 1 || totalBytes <= 0 || opBytes <= 0 {
		return 0, fmt.Errorf("perfmodel: bandwidth sim n=%d total=%v op=%v", n, totalBytes, opBytes)
	}
	sim := simnet.New()
	// Paper layout: 6 GPU servers host the client processes.
	const clientNodes = 6
	cl, err := buildCluster(hw, clientNodes)
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		node := cl.nodes[i%clientNodes]
		sim.Go(fmt.Sprintf("proc%d", i), func(pr *simnet.Proc) {
			moved := 0.0
			for moved < totalBytes {
				chunk := opBytes
				if totalBytes-moved < chunk {
					chunk = totalBytes - moved
				}
				pr.TransferCapped(chunk, hw.PerFlowCap, node, cl.server)
				moved += chunk
			}
		})
	}
	if err := sim.Run(); err != nil {
		return 0, err
	}
	elapsed := sim.Now().Seconds()
	if elapsed <= 0 {
		return 0, fmt.Errorf("perfmodel: zero elapsed time")
	}
	return float64(n) * totalBytes / elapsed, nil
}
