package perfmodel

import (
	"fmt"
	"time"

	"shmcaffe/internal/nn"
	"shmcaffe/internal/simnet"
	"shmcaffe/internal/tensor"
)

// This file models the paper's forward-looking scenarios:
//
//   - Multiple SMB servers (Sec. V future work): weight vectors striped
//     across k memory servers so reads, writes and accumulates parallelize.
//   - Straggler sensitivity (the Sec. II motivation for asynchrony):
//     per-iteration compute-time jitter, under which synchronous SSGD pays
//     the slowest worker every iteration while SEASGD does not.

// SimulateSEASGDMultiServer is SimulateSEASGD with the parameter vector
// striped across `servers` SMB servers: every transfer splits into
// `servers` concurrent flows of P/servers bytes, and each server's
// exclusive accumulate processes only its own stripe.
func SimulateSEASGDMultiServer(p nn.Profile, workers, servers, iters int, hw Hardware) (IterBreakdown, error) {
	if err := hw.Validate(); err != nil {
		return IterBreakdown{}, err
	}
	if err := p.Validate(); err != nil {
		return IterBreakdown{}, err
	}
	if workers < 1 || servers < 1 || iters < 1 {
		return IterBreakdown{}, fmt.Errorf("perfmodel: workers=%d servers=%d iters=%d", workers, servers, iters)
	}
	sim := simnet.New()
	cl, err := buildCluster(hw, nodesFor(hw, workers))
	if err != nil {
		return IterBreakdown{}, err
	}
	serverLinks := make([]*simnet.Link, servers)
	accSems := make([]*simnet.Semaphore, servers)
	for i := range serverLinks {
		l, err := simnet.NewLink(fmt.Sprintf("smb%d-hca", i), hw.EffectiveHCA(), hw.HCALatency)
		if err != nil {
			return IterBreakdown{}, err
		}
		serverLinks[i] = l
		accSems[i] = sim.NewSemaphore(1)
	}
	stripe := float64(p.ParamBytes) / float64(servers)
	tulw := hw.localUpdateTime(p)
	taccStripe := time.Duration(stripe / hw.AccumBandwidth * float64(time.Second))
	finish := make([]time.Duration, workers)

	// fanout moves one stripe to/from every server concurrently by
	// spawning child flows and waiting on a barrier-like semaphore.
	fanout := func(pr *simnet.Proc, node *simnet.Link, accumulate bool) {
		if servers == 1 {
			pr.TransferCapped(stripe, hw.PerFlowCap, node, serverLinks[0])
			if accumulate {
				accSems[0].Acquire(pr)
				pr.Sleep(taccStripe)
				accSems[0].Release()
			}
			return
		}
		doneSem := sim.NewSemaphore(0)
		for i := 0; i < servers; i++ {
			i := i
			pr.Spawn(fmt.Sprintf("%s-stripe%d", pr.Name(), i), func(c *simnet.Proc) {
				c.TransferCapped(stripe, hw.PerFlowCap, node, serverLinks[i])
				if accumulate {
					accSems[i].Acquire(c)
					c.Sleep(taccStripe)
					accSems[i].Release()
				}
				doneSem.Release()
			})
		}
		for i := 0; i < servers; i++ {
			doneSem.Acquire(pr)
		}
	}

	for w := 0; w < workers; w++ {
		w := w
		node := cl.nodes[w/hw.GPUsPerNode]
		lock := sim.NewSemaphore(1)
		pushQ := simnet.NewQueue[int](sim)

		sim.Go(fmt.Sprintf("worker%d-main", w), func(pr *simnet.Proc) {
			for it := 0; it < iters; it++ {
				lock.Acquire(pr)
				fanout(pr, node, false) // T1: striped read of Wg
				pr.Sleep(tulw)
				lock.Release()
				pushQ.Push(it)
				pr.Sleep(p.CompTime)
			}
			pushQ.Close()
			finish[w] = pr.Now()
		})
		sim.Go(fmt.Sprintf("worker%d-upd", w), func(pr *simnet.Proc) {
			for {
				if _, ok := pushQ.Pop(pr); !ok {
					return
				}
				lock.Acquire(pr)
				fanout(pr, node, true) // T.A1–T.A3: striped write + accumulate
				lock.Release()
			}
		})
	}
	return measureRun(sim, finish, iters, p.CompTime)
}

// StragglerModel adds lognormal-ish jitter to compute times: iteration
// compute = CompTime · (1 + |N(0, Sigma)|), plus a rare SlowFactor outlier
// with probability SlowProb — the "deviations in computation time between
// deep learning workers ... because workers share the system bus, file
// system I/O and network bandwidth" (paper Sec. III-E).
type StragglerModel struct {
	Sigma      float64
	SlowProb   float64
	SlowFactor float64
	Seed       uint64
}

// DefaultStragglers returns a moderate jitter model: ±10 % noise with a 2 %
// chance of a 3× outlier.
func DefaultStragglers() StragglerModel {
	return StragglerModel{Sigma: 0.1, SlowProb: 0.02, SlowFactor: 3, Seed: 1}
}

// sample returns one jittered compute duration.
func (m StragglerModel) sample(rng *tensor.RNG, base time.Duration) time.Duration {
	f := 1 + m.Sigma*abs(rng.NormFloat64())
	if rng.Float64() < m.SlowProb {
		f *= m.SlowFactor
	}
	return time.Duration(float64(base) * f)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// SimulateSSGDWithStragglers models synchronous allreduce SGD (MPICaffe
// style) under compute jitter: every iteration ends with a barrier, so the
// iteration time is the max over workers.
func SimulateSSGDWithStragglers(p nn.Profile, workers, iters int, hw Hardware, m StragglerModel) (IterBreakdown, error) {
	if err := hw.Validate(); err != nil {
		return IterBreakdown{}, err
	}
	if workers < 1 || iters < 1 {
		return IterBreakdown{}, fmt.Errorf("perfmodel: workers=%d iters=%d", workers, iters)
	}
	sim := simnet.New()
	cl, err := buildCluster(hw, nodesFor(hw, workers))
	if err != nil {
		return IterBreakdown{}, err
	}
	bar, err := sim.NewBarrier(workers)
	if err != nil {
		return IterBreakdown{}, err
	}
	ringShare := 2 * float64(workers-1) / float64(workers) * float64(p.ParamBytes) * hw.MPISoftwareFactor
	finish := make([]time.Duration, workers)
	for w := 0; w < workers; w++ {
		w := w
		node := cl.nodes[w/hw.GPUsPerNode]
		rng := tensor.NewRNG(m.Seed).Split(uint64(w))
		sim.Go(fmt.Sprintf("worker%d", w), func(pr *simnet.Proc) {
			for it := 0; it < iters; it++ {
				pr.Sleep(m.sample(rng, p.CompTime))
				if workers > 1 {
					pr.Transfer(ringShare, node)
					bar.Wait(pr)
				}
			}
			finish[w] = pr.Now()
		})
	}
	return measureRun(sim, finish, iters, p.CompTime)
}

// SimulateSEASGDWithStragglers models SEASGD under the same compute jitter:
// no barrier, so slow iterations of one worker do not stall the others.
func SimulateSEASGDWithStragglers(p nn.Profile, workers, iters int, hw Hardware, m StragglerModel) (IterBreakdown, error) {
	if err := hw.Validate(); err != nil {
		return IterBreakdown{}, err
	}
	if workers < 1 || iters < 1 {
		return IterBreakdown{}, fmt.Errorf("perfmodel: workers=%d iters=%d", workers, iters)
	}
	sim := simnet.New()
	cl, err := buildCluster(hw, nodesFor(hw, workers))
	if err != nil {
		return IterBreakdown{}, err
	}
	accSem := sim.NewSemaphore(1)
	param := float64(p.ParamBytes)
	tulw := hw.localUpdateTime(p)
	tacc := hw.accumTime(p)
	finish := make([]time.Duration, workers)
	for w := 0; w < workers; w++ {
		w := w
		node := cl.nodes[w/hw.GPUsPerNode]
		lock := sim.NewSemaphore(1)
		pushQ := simnet.NewQueue[int](sim)
		rng := tensor.NewRNG(m.Seed).Split(uint64(w))
		sim.Go(fmt.Sprintf("worker%d-main", w), func(pr *simnet.Proc) {
			for it := 0; it < iters; it++ {
				lock.Acquire(pr)
				pr.TransferCapped(param, hw.PerFlowCap, node, cl.server)
				pr.Sleep(tulw)
				lock.Release()
				pushQ.Push(it)
				pr.Sleep(m.sample(rng, p.CompTime))
			}
			pushQ.Close()
			finish[w] = pr.Now()
		})
		sim.Go(fmt.Sprintf("worker%d-upd", w), func(pr *simnet.Proc) {
			for {
				if _, ok := pushQ.Pop(pr); !ok {
					return
				}
				lock.Acquire(pr)
				pr.TransferCapped(param, hw.PerFlowCap, node, cl.server)
				accSem.Acquire(pr)
				pr.Sleep(tacc)
				accSem.Release()
				lock.Release()
			}
		})
	}
	return measureRun(sim, finish, iters, p.CompTime)
}
