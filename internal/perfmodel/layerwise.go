package perfmodel

import (
	"fmt"
	"time"

	"shmcaffe/internal/nn"
	"shmcaffe/internal/simnet"
)

// Layer-wise overlap: the paper's experiments aggregate gradients only
// after the full backward pass ("it does not conduct gradient computations
// in each DNN layer", Sec. IV-C). Modern stacks (Horovod, later Caffe-MPI
// versions) instead start transferring each layer's gradient as soon as
// its backward step finishes, hiding communication behind the remaining
// backward computation. SimulateMPICaffeLayerwise models that design point
// so the reproduction can quantify how much of ShmCaffe's advantage
// survives a pipelined synchronous baseline.

// backwardFraction is the share of an iteration's compute spent in the
// backward pass (roughly 2/3 for conv nets: backward ≈ 2× forward).
const backwardFraction = 0.66

// SimulateMPICaffeLayerwise is SimulateMPICaffe with the allreduce split
// into `chunks` per-layer pieces, each overlapped with the remaining
// backward computation.
func SimulateMPICaffeLayerwise(p nn.Profile, workers, chunks, iters int, hw Hardware) (IterBreakdown, error) {
	if err := hw.Validate(); err != nil {
		return IterBreakdown{}, err
	}
	if err := p.Validate(); err != nil {
		return IterBreakdown{}, err
	}
	if workers < 1 || chunks < 1 || iters < 1 {
		return IterBreakdown{}, fmt.Errorf("perfmodel: workers=%d chunks=%d iters=%d", workers, chunks, iters)
	}
	if workers == 1 {
		return IterBreakdown{Iter: p.CompTime, Comp: p.CompTime}, nil
	}
	sim := simnet.New()
	cl, err := buildCluster(hw, nodesFor(hw, workers))
	if err != nil {
		return IterBreakdown{}, err
	}
	// One barrier per chunk per iteration round-robin (reused cyclically).
	bars := make([]*simnet.Barrier, chunks)
	for i := range bars {
		b, err := sim.NewBarrier(workers)
		if err != nil {
			return IterBreakdown{}, err
		}
		bars[i] = b
	}
	endBar, err := sim.NewBarrier(workers)
	if err != nil {
		return IterBreakdown{}, err
	}

	fwd := time.Duration(float64(p.CompTime) * (1 - backwardFraction))
	bwdChunk := time.Duration(float64(p.CompTime) * backwardFraction / float64(chunks))
	ringShare := 2 * float64(workers-1) / float64(workers) *
		float64(p.ParamBytes) * hw.MPISoftwareFactor / float64(chunks)
	stepOverhead := time.Duration(2*(workers-1)) * hw.MPIStepLatency / time.Duration(chunks)
	updTime := hw.localUpdateTime(p)

	finish := make([]time.Duration, workers)
	for w := 0; w < workers; w++ {
		w := w
		node := cl.nodes[w/hw.GPUsPerNode]
		sim.Go(fmt.Sprintf("worker%d", w), func(pr *simnet.Proc) {
			for it := 0; it < iters; it++ {
				pr.Sleep(fwd)
				// Backward layer by layer; each finished chunk's
				// allreduce is launched and only joined at the end.
				doneSem := sim.NewSemaphore(0)
				for c := 0; c < chunks; c++ {
					pr.Sleep(bwdChunk)
					c := c
					pr.Spawn(fmt.Sprintf("w%d-ar%d", w, c), func(ar *simnet.Proc) {
						ar.Transfer(ringShare, node)
						ar.Sleep(stepOverhead)
						bars[c].Wait(ar)
						doneSem.Release()
					})
				}
				for c := 0; c < chunks; c++ {
					doneSem.Acquire(pr)
				}
				pr.Sleep(updTime)
				endBar.Wait(pr)
			}
			finish[w] = pr.Now()
		})
	}
	return measureRun(sim, finish, iters, p.CompTime)
}
