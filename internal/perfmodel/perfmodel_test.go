package perfmodel

import (
	"math"
	"testing"
	"time"

	"shmcaffe/internal/nn"
)

func TestHardwareValidate(t *testing.T) {
	hw := DefaultHardware()
	if err := hw.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := hw
	bad.HCAEfficiency = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for efficiency > 1")
	}
	bad = hw
	bad.MPISoftwareFactor = 0.5
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for MPI factor < 1")
	}
}

func TestEffectiveHCAMatchesPaper(t *testing.T) {
	hw := DefaultHardware()
	// 96 % of 7 GB/s = 6.72 GB/s — the Fig. 7 saturation level.
	if got := hw.EffectiveHCA(); math.Abs(got-6.72e9) > 1e6 {
		t.Fatalf("effective HCA %v, want 6.72e9", got)
	}
}

func TestSingleGPUIsComputeOnly(t *testing.T) {
	hw := DefaultHardware()
	for _, p := range nn.PaperModels() {
		b, err := SimulateCaffe(p, 1, 10, hw)
		if err != nil {
			t.Fatal(err)
		}
		if b.Iter != p.CompTime || b.Comm != 0 {
			t.Fatalf("%s single GPU: %+v", p.Name, b)
		}
	}
}

// TestSEASGDSingleWorkerMatchesEq8: with no contention the DES must agree
// with the analytic Eq. (8) model within a few percent.
func TestSEASGDSingleWorkerMatchesEq8(t *testing.T) {
	hw := DefaultHardware()
	for _, p := range nn.PaperModels() {
		sim, err := SimulateSEASGD(p, 1, 30, hw)
		if err != nil {
			t.Fatal(err)
		}
		analytic := hw.Eq8(p)
		diff := math.Abs(sim.Iter.Seconds() - analytic.Iter.Seconds())
		if diff/analytic.Iter.Seconds() > 0.06 {
			t.Fatalf("%s: DES %v vs Eq8 %v", p.Name, sim.Iter, analytic.Iter)
		}
	}
}

// TestInceptionV1CommRatios reproduces the paper's headline SEASGD ratios
// (Sec. IV-E): Inception-v1 communication share is modest at 8 GPUs
// (paper: 16.3 %) and grows at 16 GPUs (paper: 26 %).
func TestInceptionV1CommRatios(t *testing.T) {
	hw := DefaultHardware()
	b8, err := SimulateSEASGD(nn.InceptionV1, 8, 40, hw)
	if err != nil {
		t.Fatal(err)
	}
	b16, err := SimulateSEASGD(nn.InceptionV1, 16, 40, hw)
	if err != nil {
		t.Fatal(err)
	}
	if r := b8.CommRatio(); r < 0.05 || r > 0.35 {
		t.Fatalf("8-GPU comm ratio %.3f outside paper band", r)
	}
	if r := b16.CommRatio(); r < 0.15 || r > 0.45 {
		t.Fatalf("16-GPU comm ratio %.3f outside paper band", r)
	}
	if b16.CommRatio() <= b8.CommRatio() {
		t.Fatalf("comm ratio must grow with workers: %.3f vs %.3f",
			b8.CommRatio(), b16.CommRatio())
	}
}

// TestVGG16IsCommBoundAtTwoWorkers reproduces the paper's VGG16 finding:
// even at 2 workers, one iteration (941.8 ms measured) costs more than two
// single-GPU iterations (389.8 ms), i.e. multi-node scaling is a loss.
func TestVGG16IsCommBoundAtTwoWorkers(t *testing.T) {
	hw := DefaultHardware()
	b, err := SimulateSEASGD(nn.VGG16, 2, 30, hw)
	if err != nil {
		t.Fatal(err)
	}
	if b.Iter <= 2*nn.VGG16.CompTime {
		t.Fatalf("VGG16 2-worker iteration %v should exceed two compute times %v",
			b.Iter, 2*nn.VGG16.CompTime)
	}
	if r := b.CommRatio(); r < 0.5 {
		t.Fatalf("VGG16 comm ratio %.3f, paper shows >50%%", r)
	}
}

// TestShmCaffeBeatsBaselinesAt16GPUs reproduces the paper's headline
// (Fig. 9/10, Table II): at 16 GPUs ShmCaffe's iteration is faster than
// Caffe-MPI's and MPICaffe's, and its exposed communication is several
// times smaller than Caffe-MPI's (paper: 5.3×).
func TestShmCaffeBeatsBaselinesAt16GPUs(t *testing.T) {
	hw := DefaultHardware()
	p := nn.InceptionV1
	shm, err := SimulateSEASGD(p, 16, 40, hw)
	if err != nil {
		t.Fatal(err)
	}
	cmpi, err := SimulateCaffeMPI(p, 16, 40, hw)
	if err != nil {
		t.Fatal(err)
	}
	mpic, err := SimulateMPICaffe(p, 16, 40, hw)
	if err != nil {
		t.Fatal(err)
	}
	if shm.Iter >= cmpi.Iter {
		t.Fatalf("ShmCaffe %v not faster than Caffe-MPI %v", shm.Iter, cmpi.Iter)
	}
	if shm.Iter >= mpic.Iter {
		t.Fatalf("ShmCaffe %v not faster than MPICaffe %v", shm.Iter, mpic.Iter)
	}
	commRatio := cmpi.Comm.Seconds() / shm.Comm.Seconds()
	if commRatio < 3 || commRatio > 9 {
		t.Fatalf("Caffe-MPI/ShmCaffe comm ratio %.1f outside the paper's ~5.3 band", commRatio)
	}
}

// TestTable2TrainingTimes reproduces Table II anchors: Caffe 1-GPU trains
// Inception-v1 for 15 epochs in ≈23 h; ShmCaffe at 16 GPUs is ≈10× faster
// than that (paper: 10.1×).
func TestTable2TrainingTimes(t *testing.T) {
	hw := DefaultHardware()
	p := nn.InceptionV1
	caffe1, err := SimulateCaffe(p, 1, 10, hw)
	if err != nil {
		t.Fatal(err)
	}
	t1 := TrainingTime(caffe1, p, ImageNetTrainSize, 15, 1)
	if t1 < 22*time.Hour || t1 > 24*time.Hour {
		t.Fatalf("Caffe 1-GPU 15 epochs = %v, paper: 22h59m", t1)
	}
	shm16, err := SimulateSEASGD(p, 16, 40, hw)
	if err != nil {
		t.Fatal(err)
	}
	t16 := TrainingTime(shm16, p, ImageNetTrainSize, 15, 16)
	speedup := t1.Seconds() / t16.Seconds()
	if speedup < 7 || speedup > 14 {
		t.Fatalf("ShmCaffe-16 speedup over Caffe-1 = %.1f, paper: 10.1", speedup)
	}
}

// TestCaffeSingleNodeScalability reproduces Table II's Caffe rows: ~2.7×
// at 8 GPUs and *worse* (~2.3×) at 16 GPUs in one box.
func TestCaffeSingleNodeScalability(t *testing.T) {
	hw := DefaultHardware()
	p := nn.InceptionV1
	b1, _ := SimulateCaffe(p, 1, 10, hw)
	b8, err := SimulateCaffe(p, 8, 30, hw)
	if err != nil {
		t.Fatal(err)
	}
	b16, err := SimulateCaffe(p, 16, 30, hw)
	if err != nil {
		t.Fatal(err)
	}
	t1 := TrainingTime(b1, p, ImageNetTrainSize, 15, 1)
	t8 := TrainingTime(b8, p, ImageNetTrainSize, 15, 8)
	t16 := TrainingTime(b16, p, ImageNetTrainSize, 15, 16)
	s8 := t1.Seconds() / t8.Seconds()
	s16 := t1.Seconds() / t16.Seconds()
	if s8 < 2.0 || s8 > 3.5 {
		t.Fatalf("Caffe 8-GPU scalability %.2f, paper: 2.7", s8)
	}
	if s16 >= s8 {
		t.Fatalf("Caffe must degrade from 8 to 16 GPUs: %.2f vs %.2f (paper: 2.7 → 2.3)", s8, s16)
	}
}

// TestHSGDReducesCommVsSEASGD reproduces the Fig. 15 finding: for the big
// Inception-ResNet-v2 model at 16 GPUs, hybrid grouping cuts the exposed
// communication dramatically (paper: ratio 65 % → 30.7 %).
func TestHSGDReducesCommVsSEASGD(t *testing.T) {
	hw := DefaultHardware()
	p := nn.InceptionResNetV2
	async, err := SimulateSEASGD(p, 16, 30, hw)
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := SimulateHSGD(p, []int{4, 4, 4, 4}, 30, hw)
	if err != nil {
		t.Fatal(err)
	}
	if async.CommRatio() < 0.45 {
		t.Fatalf("SEASGD 16-GPU comm ratio %.2f, paper shows ≫50%%", async.CommRatio())
	}
	if hybrid.CommRatio() > 0.45 {
		t.Fatalf("HSGD comm ratio %.2f, paper shows ≈30%%", hybrid.CommRatio())
	}
	if hybrid.Iter >= async.Iter {
		t.Fatalf("HSGD iteration %v not faster than SEASGD %v at 16 GPUs", hybrid.Iter, async.Iter)
	}
}

// TestFig7BandwidthSaturation reproduces Fig. 7: aggregate bandwidth grows
// with process count and saturates at ≈6.7 GB/s (96 % of the HCA).
func TestFig7BandwidthSaturation(t *testing.T) {
	hw := DefaultHardware()
	var prev float64
	for _, n := range []int{2, 4, 8, 16, 32} {
		bw, err := SimulateSMBBandwidth(n, 1e9, 16e6, hw)
		if err != nil {
			t.Fatal(err)
		}
		if bw < prev*0.98 {
			t.Fatalf("aggregate bandwidth decreased at n=%d: %v after %v", n, bw, prev)
		}
		prev = bw
	}
	if prev < 6.5e9 || prev > 6.8e9 {
		t.Fatalf("saturated bandwidth %.2f GB/s, paper: 6.7", prev/1e9)
	}
	// Low concurrency must NOT saturate (the Fig. 7 ramp).
	low, err := SimulateSMBBandwidth(2, 1e9, 16e6, hw)
	if err != nil {
		t.Fatal(err)
	}
	if low > 4e9 {
		t.Fatalf("2-process bandwidth %.2f GB/s already saturated", low/1e9)
	}
}

func TestEq8HiddenVsExposed(t *testing.T) {
	hw := DefaultHardware()
	// Inception-v1: push (53 MB write + accumulate) is far below the
	// 257 ms compute, so Eq. (8) hides it: iteration = comp + read + ulw.
	b := hw.Eq8(nn.InceptionV1)
	wantComm := b.Iter - nn.InceptionV1.CompTime
	if b.Comm != wantComm {
		t.Fatalf("comm %v, want %v", b.Comm, wantComm)
	}
	if b.Comm > 60*time.Millisecond {
		t.Fatalf("Inception-v1 exposed comm %v too large for a lone worker", b.Comm)
	}
	// VGG16: push exceeds compute, so the hidden phase dominates.
	v := hw.Eq8(nn.VGG16)
	if v.Iter <= vggPushTime(hw) {
		t.Fatalf("VGG16 Eq8 iter %v should exceed its push time", v.Iter)
	}
	if v.CommRatio() < 0.5 {
		t.Fatalf("VGG16 Eq8 comm ratio %.2f, want >0.5", v.CommRatio())
	}
}

func vggPushTime(hw Hardware) time.Duration {
	return time.Duration(float64(nn.VGG16.ParamBytes)/hw.PerFlowCap*float64(time.Second)) +
		hw.accumTime(nn.VGG16)
}

func TestTrainingTimeScaling(t *testing.T) {
	b := IterBreakdown{Iter: 100 * time.Millisecond, Comp: 100 * time.Millisecond}
	p := nn.InceptionV1 // batch 60
	tt := TrainingTime(b, p, 60000, 2, 10)
	// 60000/(60*10) = 100 iters/epoch × 2 epochs × 100ms = 20 s.
	if tt != 20*time.Second {
		t.Fatalf("TrainingTime = %v, want 20s", tt)
	}
}

func TestSimulateValidation(t *testing.T) {
	hw := DefaultHardware()
	if _, err := SimulateSEASGD(nn.VGG16, 0, 10, hw); err == nil {
		t.Fatal("expected error for 0 workers")
	}
	if _, err := SimulateCaffe(nn.VGG16, 2, 0, hw); err == nil {
		t.Fatal("expected error for 0 iters")
	}
	if _, err := SimulateHSGD(nn.VGG16, nil, 10, hw); err == nil {
		t.Fatal("expected error for no groups")
	}
	if _, err := SimulateHSGD(nn.VGG16, []int{0}, 10, hw); err == nil {
		t.Fatal("expected error for empty group")
	}
	if _, err := SimulateSMBBandwidth(0, 1e9, 1e6, hw); err == nil {
		t.Fatal("expected error for 0 processes")
	}
}
