package telemetry

import (
	"path/filepath"
	"testing"
)

// twoNodeSample builds a worker trace and a server trace whose spans are
// linked by trace args, with known epochs and a known clock skew.
func twoNodeSample() []NodeTrace {
	worker := []TraceEvent{
		{Name: "clock_epoch", Ph: "M", Args: map[string]string{"epoch_unix_nano": "1000000000"}},
		{Name: "T.A3", Ph: "X", TS: 100, Dur: 50, TID: 1,
			Args: map[string]string{"trace_id": "aa", "span_id": "01"}},
	}
	server := []TraceEvent{
		// Server clock runs 2ms ahead of the aggregator.
		{Name: "clock_epoch", Ph: "M", Args: map[string]string{"epoch_unix_nano": "1002000000"}},
		{Name: "srv.acc", Ph: "X", TS: 120, Dur: 30, TID: 7,
			Args: map[string]string{"trace_id": "aa", "span_id": "02", "parent_id": "01"}},
	}
	return []NodeTrace{
		{Name: "worker-0", Events: worker},
		{Name: "smbserver", Events: server, ClockOffsetNano: 2_000_000},
	}
}

func TestMergeTraces(t *testing.T) {
	merged := MergeTraces(twoNodeSample())

	var workerSpan, serverSpan *TraceEvent
	processNames := map[int]string{}
	for i := range merged {
		ev := &merged[i]
		if ev.Ph == "M" && ev.Name == "process_name" {
			processNames[ev.PID] = ev.Args["name"]
		}
		if ev.Ph == "X" && ev.Name == "T.A3" {
			workerSpan = ev
		}
		if ev.Ph == "X" && ev.Name == "srv.acc" {
			serverSpan = ev
		}
	}
	if processNames[1] != "worker-0" || processNames[2] != "smbserver" {
		t.Fatalf("process names = %v", processNames)
	}
	if workerSpan == nil || serverSpan == nil {
		t.Fatal("merged trace lost spans")
	}
	if workerSpan.PID == serverSpan.PID {
		t.Error("nodes share a pid")
	}
	// Worker epoch 1000000000 is the origin (shift 0); server adjusted
	// epoch is 1002000000 − 2000000 = 1000000000 too, so its spans keep
	// their relative timestamps: the offset estimate has removed the skew.
	if workerSpan.TS != 100 {
		t.Errorf("worker span TS = %v, want 100", workerSpan.TS)
	}
	if serverSpan.TS != 120 {
		t.Errorf("server span TS = %v, want 120 (skew removed)", serverSpan.TS)
	}
	// No node-local clock_epoch survives the merge.
	for _, ev := range merged {
		if ev.Name == "clock_epoch" {
			t.Error("clock_epoch metadata leaked into merged trace")
		}
	}
}

func TestCrossNodeChains(t *testing.T) {
	merged := MergeTraces(twoNodeSample())
	if got := CrossNodeChains(merged); got != 1 {
		t.Fatalf("CrossNodeChains = %d, want 1", got)
	}
	// Same-process parentage does not count.
	same := []TraceEvent{
		{Ph: "X", PID: 1, Args: map[string]string{"trace_id": "aa", "span_id": "01"}},
		{Ph: "X", PID: 1, Args: map[string]string{"trace_id": "aa", "span_id": "02", "parent_id": "01"}},
	}
	if got := CrossNodeChains(same); got != 0 {
		t.Fatalf("same-process chains = %d, want 0", got)
	}
	// A dangling parent_id counts nothing.
	dangling := []TraceEvent{
		{Ph: "X", PID: 2, Args: map[string]string{"trace_id": "aa", "span_id": "02", "parent_id": "ff"}},
	}
	if got := CrossNodeChains(dangling); got != 0 {
		t.Fatalf("dangling chains = %d, want 0", got)
	}
}

func TestWriteMergedTraceFile(t *testing.T) {
	merged := MergeTraces(twoNodeSample())
	path := filepath.Join(t.TempDir(), "merged.json")
	if err := WriteMergedTraceFile(path, merged); err != nil {
		t.Fatal(err)
	}
	events, err := LoadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(merged) {
		t.Fatalf("round trip lost events: %d != %d", len(events), len(merged))
	}
	if CrossNodeChains(events) != 1 {
		t.Error("cross-node chain lost in file round trip")
	}
}
