package telemetry

import (
	"math"
	"strings"
	"testing"
)

// TestExpositionConformance is the table-driven 0.0.4 text-format edge-case
// suite: label values are escaped, HELP text is escaped, NaN/±Inf render in
// the spellings the format requires, and an explicit trailing +Inf bucket
// never duplicates the implicit overflow bucket.
func TestExpositionConformance(t *testing.T) {
	cases := []struct {
		name     string
		register func(r *Registry)
		want     []string // substrings that must appear
		absent   []string // substrings that must not
	}{
		{
			name: "label value backslash and quote escaped",
			register: func(r *Registry) {
				r.Counter(`files_total{path="C:\\tmp\"x"}`, "files").Add(3)
			},
			want: []string{`files_total{path="C:\\tmp\"x"} 3`},
		},
		{
			name: "label value newline escaped",
			register: func(r *Registry) {
				c := r.Counter("lines_total{src=\"a\nb\"}", "lines")
				c.Inc()
			},
			want:   []string{`lines_total{src="a\nb"} 1`},
			absent: []string{"a\nb\"}"},
		},
		{
			name: "help text escaped",
			register: func(r *Registry) {
				r.Gauge("g_one", "line one\nline two \\ backslash").Set(1)
			},
			want: []string{`# HELP g_one line one\nline two \\ backslash`},
		},
		{
			name: "gauge NaN and infinities",
			register: func(r *Registry) {
				r.Gauge("g_nan", "n").Set(math.NaN())
				r.Gauge("g_pinf", "p").Set(math.Inf(1))
				r.Gauge("g_ninf", "m").Set(math.Inf(-1))
			},
			want: []string{"g_nan NaN", "g_pinf +Inf", "g_ninf -Inf"},
		},
		{
			name: "explicit trailing +Inf bucket deduplicated",
			register: func(r *Registry) {
				h := r.Histogram("h_inf", "h", []float64{0.5, math.Inf(1)})
				h.Observe(0.1)
				h.Observe(99)
			},
			want: []string{
				`h_inf_bucket{le="0.5"} 1`,
				`h_inf_bucket{le="+Inf"} 2`,
				"h_inf_count 2",
			},
		},
		{
			name: "labeled histogram escapes values in every series",
			register: func(r *Registry) {
				h := r.Histogram(`h_lbl{op="a\"b"}`, "h", []float64{1})
				h.Observe(0.5)
			},
			want: []string{
				`h_lbl_bucket{op="a\"b",le="1"} 1`,
				`h_lbl_bucket{op="a\"b",le="+Inf"} 1`,
				`h_lbl_sum{op="a\"b"} 0.5`,
				`h_lbl_count{op="a\"b"} 1`,
			},
		},
		{
			name: "multi-label series renders in order",
			register: func(r *Registry) {
				r.Counter(`multi_total{op="read",tier="hot"}`, "m").Add(7)
			},
			want: []string{`multi_total{op="read",tier="hot"} 7`},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			tc.register(r)
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Fatal(err)
			}
			out := b.String()
			for _, w := range tc.want {
				if !strings.Contains(out, w) {
					t.Errorf("exposition missing %q:\n%s", w, out)
				}
			}
			for _, a := range tc.absent {
				if strings.Contains(out, a) {
					t.Errorf("exposition contains forbidden %q:\n%s", a, out)
				}
			}
			// One +Inf bucket line per histogram series, never more.
			for _, line := range strings.Split(out, "\n") {
				if strings.Count(line, `le="+Inf"`) > 1 {
					t.Errorf("duplicate +Inf in one line: %q", line)
				}
			}
		})
	}
}

// TestExpositionInfBucketCount asserts the stripped +Inf bound did not shift
// bucket boundaries: an observation above the finite bounds lands only in
// the overflow bucket.
func TestExpositionInfBucketCount(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_shift", "h", []float64{1, 2, math.Inf(1)})
	h.Observe(1.5)
	h.Observe(10)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range []string{
		`h_shift_bucket{le="1"} 0`,
		`h_shift_bucket{le="2"} 1`,
		`h_shift_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(out, w) {
			t.Errorf("missing %q:\n%s", w, out)
		}
	}
	if strings.Count(out, `le="+Inf"`) != 1 {
		t.Errorf("want exactly one +Inf bucket line:\n%s", out)
	}
}
