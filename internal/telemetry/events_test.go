package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestEventRingBasics(t *testing.T) {
	r := NewEventRing(64)
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatalf("fresh ring: Len=%d Dropped=%d", r.Len(), r.Dropped())
	}
	r.Record(EvReconnect, 3, 2, 0)
	r.Record(EvDeadlineFired, 7, 0, 0)
	evs := r.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("Snapshot len = %d, want 2", len(evs))
	}
	if evs[0].Kind != EvReconnect || evs[0].A != 3 || evs[0].B != 2 {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if evs[1].Kind != EvDeadlineFired || evs[1].A != 7 {
		t.Errorf("event 1 = %+v", evs[1])
	}
	if evs[0].UnixNano == 0 || evs[1].UnixNano < evs[0].UnixNano {
		t.Errorf("timestamps not monotone: %d then %d", evs[0].UnixNano, evs[1].UnixNano)
	}
}

func TestEventRingWrap(t *testing.T) {
	r := NewEventRing(64)
	const total = 200
	for i := 0; i < total; i++ {
		r.Record(EvConnError, int64(i), 0, 0)
	}
	if r.Len() != 64 {
		t.Fatalf("Len = %d, want 64", r.Len())
	}
	if got := r.Dropped(); got != total-64 {
		t.Fatalf("Dropped = %d, want %d", got, total-64)
	}
	evs := r.Snapshot()
	// Oldest-first: the survivors are events 136..199 in order.
	for i, e := range evs {
		if want := int64(total - 64 + i); e.A != want {
			t.Fatalf("event %d has A=%d, want %d", i, e.A, want)
		}
	}
}

func TestEventRingNilSafe(t *testing.T) {
	var r *EventRing
	r.Record(EvReconnect, 1, 2, 3) // must not panic
	if r.Len() != 0 || r.Dropped() != 0 || r.Snapshot() != nil {
		t.Error("nil ring is not inert")
	}
}

// TestEventRingConcurrent hammers Record from many goroutines; tier 2 runs
// this package under -race. Every record must land without a data race and
// the drop accounting must be exact.
func TestEventRingConcurrent(t *testing.T) {
	r := NewEventRing(256)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Record(EventKind(1+(i%(NumEventKinds-1))), int64(w), int64(i), 0)
			}
		}()
	}
	wg.Wait()
	if got := r.Len() + int(r.Dropped()); got != workers*perWorker {
		t.Fatalf("Len+Dropped = %d, want %d", got, workers*perWorker)
	}
	// Export while idle must not panic and must decode every slot.
	if evs := r.Snapshot(); len(evs) != 256 {
		t.Fatalf("Snapshot len = %d, want 256", len(evs))
	}
}

// TestEventRecordZeroAlloc pins the flight-recorder contract: the record
// path performs zero heap allocations (check.sh tier-2 guard).
func TestEventRecordZeroAlloc(t *testing.T) {
	r := NewEventRing(1024)
	if n := testing.AllocsPerRun(200, func() {
		r.Record(EvReconnect, 1, 2, 3)
	}); n != 0 {
		t.Errorf("EventRing.Record allocates %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		RecordEvent(EvDeadlineFired, 4, 0, 0)
	}); n != 0 {
		t.Errorf("RecordEvent allocates %v allocs/op, want 0", n)
	}
}

func TestEventJSONAndText(t *testing.T) {
	r := NewEventRing(64)
	r.Record(EvReconnect, 5, 2, 0)
	r.Record(EvChaosCrash, 1, 0, 0)

	var jb bytes.Buffer
	if err := r.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var out []struct {
		Time string           `json:"time"`
		Kind string           `json:"kind"`
		Args map[string]int64 `json:"args"`
	}
	if err := json.Unmarshal(jb.Bytes(), &out); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v\n%s", err, jb.String())
	}
	if len(out) != 2 || out[0].Kind != "reconnect" || out[1].Kind != "chaos_crash" {
		t.Fatalf("decoded = %+v", out)
	}
	if out[0].Args["client"] != 5 || out[0].Args["attempt"] != 2 {
		t.Errorf("reconnect args = %v", out[0].Args)
	}

	var tb bytes.Buffer
	if err := r.WriteText(&tb); err != nil {
		t.Fatal(err)
	}
	text := tb.String()
	for _, want := range []string{"2 events", "reconnect", "client=5", "attempt=2", "chaos_crash", "crashes=1"} {
		if !strings.Contains(text, want) {
			t.Errorf("text dump missing %q:\n%s", want, text)
		}
	}
}

func TestEventKindNames(t *testing.T) {
	seen := map[string]bool{}
	for k := 0; k < NumEventKinds; k++ {
		name := EventKind(k).String()
		if name == "" || strings.HasPrefix(name, "event(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[name] {
			t.Errorf("duplicate kind name %q", name)
		}
		seen[name] = true
	}
}
