package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops_total", "ops")
	g := reg.Gauge("depth", "queue depth")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2 {
		t.Fatalf("gauge = %v, want 2", g.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("reset counter = %d", c.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 556.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Cumulative: ≤1: {0.5, 1} = 2; ≤10: +{5} = 3; ≤100: +{50} = 4; +Inf: 5.
	want := []int64{2, 3, 4, 5}
	got := h.Snapshot()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cumulative buckets = %v, want %v", got, want)
		}
	}
}

// TestHistogramConcurrent checks counter/histogram correctness under
// concurrent writers; tier 2 runs this package with -race.
func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "latency", ExpBuckets(1, 2, 10))
	c := reg.Counter("n", "n")
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(w%4) + 1)
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*perWorker {
		t.Fatalf("count = %d, want %d", h.Count(), workers*perWorker)
	}
	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	// Sum is exact: every observation is a small integer, and float64 adds
	// of integers this small are associative.
	wantSum := float64(perWorker) * (1 + 2 + 3 + 4) * float64(workers) / 4
	if h.Sum() != wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	snap := h.Snapshot()
	if snap[len(snap)-1] != workers*perWorker {
		t.Fatalf("+Inf cumulative = %d, want %d", snap[len(snap)-1], workers*perWorker)
	}
}

// TestRecordingZeroAlloc pins the hot-path contract: counters, gauges,
// histograms and span Begin/End allocate nothing per record.
func TestRecordingZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c", "c")
	g := reg.Gauge("g", "g")
	h := reg.Histogram("h", "h", DefLatencyBuckets)
	tr := NewTrainer(reg, 1024)

	if n := testing.AllocsPerRun(200, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %.1f per op", n)
	}
	if n := testing.AllocsPerRun(200, func() { g.Add(1) }); n != 0 {
		t.Errorf("Gauge.Add allocates %.1f per op", n)
	}
	if n := testing.AllocsPerRun(200, func() { h.Observe(1e-4) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f per op", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		sp := tr.Begin(MainTID(0), PhaseT1)
		sp.End()
	}); n != 0 {
		t.Errorf("Trainer span Begin/End allocates %.1f per op", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		tr.ObserveStaleness(3)
		tr.IncPush()
	}); n != 0 {
		t.Errorf("Trainer staleness/push record allocates %.1f per op", n)
	}
	// Disabled telemetry must also be free.
	var off *Trainer
	if n := testing.AllocsPerRun(200, func() {
		sp := off.Begin(0, PhaseT45)
		sp.End()
		off.ObserveStaleness(1)
	}); n != 0 {
		t.Errorf("nil Trainer allocates %.1f per op", n)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("smb_reads_total", "reads")
	c.Add(7)
	reg.GaugeFunc("up", "always 1", func() float64 { return 1 })
	h := reg.Histogram("rtt_seconds{op=\"read\"}", "rtt", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(2)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP smb_reads_total reads\n",
		"# TYPE smb_reads_total counter\n",
		"smb_reads_total 7\n",
		"# TYPE up gauge\n",
		"up 1\n",
		"# TYPE rtt_seconds histogram\n",
		`rtt_seconds_bucket{op="read",le="0.5"} 1` + "\n",
		`rtt_seconds_bucket{op="read",le="1"} 1` + "\n",
		`rtt_seconds_bucket{op="read",le="+Inf"} 2` + "\n",
		`rtt_seconds_sum{op="read"} 2.25` + "\n",
		`rtt_seconds_count{op="read"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\ngot:\n%s", want, out)
		}
	}
}

// TestPhaseSeriesShareFamily: the per-phase histograms must render under
// one HELP/TYPE header (same family, different label sets).
func TestPhaseSeriesShareFamily(t *testing.T) {
	reg := NewRegistry()
	tr := NewTrainer(reg, 64)
	sp := tr.Begin(MainTID(0), PhaseT1)
	sp.End()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if got := strings.Count(out, "# TYPE seasgd_phase_seconds histogram"); got != 1 {
		t.Fatalf("TYPE header appears %d times, want 1\n%s", got, out)
	}
	for _, phase := range []string{"T1", "T2", "T4+T5", "T.A1", "T.A5"} {
		if !strings.Contains(out, `seasgd_phase_seconds_count{phase="`+phase+`"}`) {
			t.Errorf("missing phase series %q", phase)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.Counter("x", "again")
}
