package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"testing"
	"time"
)

// buildSampleTracer records one synthetic iteration for two workers with
// every Fig. 6 phase present.
func buildSampleTracer(t *testing.T) *Tracer {
	t.Helper()
	tr := NewTracer(256)
	for rank := 0; rank < 2; rank++ {
		tr.NameThread(MainTID(rank), "worker main")
		tr.NameThread(UpdateTID(rank), "worker update")
		for _, p := range []Phase{PhaseT1, PhaseT2, PhaseT45, PhaseTA5} {
			sp := tr.Begin(MainTID(rank), p)
			time.Sleep(200 * time.Microsecond)
			sp.End()
		}
		for _, p := range []Phase{PhaseTA1, PhaseTA2, PhaseTA3, PhaseTA4} {
			sp := tr.Begin(UpdateTID(rank), p)
			time.Sleep(200 * time.Microsecond)
			sp.End()
		}
	}
	return tr
}

// TestChromeTraceGolden: the export must be valid trace_event JSON whose
// span names are exactly the Fig. 6 phase labels, with per-worker
// main/update tracks.
func TestChromeTraceGolden(t *testing.T) {
	tr := buildSampleTracer(t)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	// Must be plain valid JSON in the object form.
	var obj struct {
		TraceEvents     []TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if obj.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", obj.DisplayTimeUnit)
	}

	seen := map[string]int{}
	meta := 0
	epochs := 0
	for _, ev := range obj.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "clock_epoch" {
				epochs++
				if ev.Args["epoch_unix_nano"] == "" {
					t.Errorf("clock_epoch event missing epoch_unix_nano: %+v", ev)
				}
				continue
			}
			meta++
			if ev.Name != "thread_name" || ev.Args["name"] == "" {
				t.Errorf("bad metadata event %+v", ev)
			}
		case "X":
			if _, ok := PhaseFromName(ev.Name); !ok {
				t.Errorf("span name %q is not a Fig. 6 phase label", ev.Name)
			}
			if ev.Dur <= 0 {
				t.Errorf("span %q has non-positive dur %v", ev.Name, ev.Dur)
			}
			seen[ev.Name]++
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if meta != 4 { // 2 workers x (main, update)
		t.Errorf("thread_name events = %d, want 4", meta)
	}
	if epochs != 1 {
		t.Errorf("clock_epoch events = %d, want 1", epochs)
	}
	for _, name := range []string{"T1", "T2", "T4+T5", "T.A1", "T.A2", "T.A3", "T.A4", "T.A5"} {
		if seen[name] != 2 {
			t.Errorf("phase %q appears %d times, want 2 (one per worker)", name, seen[name])
		}
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	tr := buildSampleTracer(t)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteChromeTraceFile(path); err != nil {
		t.Fatal(err)
	}
	events, err := LoadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(tr.Events()) {
		t.Fatalf("round trip lost events: %d != %d", len(events), len(tr.Events()))
	}

	// Bare-array form parses too.
	arr, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	events2, err := ParseChromeTrace(arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(events2) != len(events) {
		t.Fatalf("bare array parse lost events: %d != %d", len(events2), len(events))
	}
	if _, err := ParseChromeTrace([]byte("not json")); err == nil {
		t.Error("ParseChromeTrace accepted garbage")
	}
}

func TestComputeBreakdown(t *testing.T) {
	// Hand-built trace: one worker, compute 10ms, hidden work 2+3+1+1=7ms,
	// exposed 4ms, blocked 0.5ms, plus one unknown event.
	ms := func(d float64) float64 { return d * 1e3 } // ms -> us
	events := []TraceEvent{
		{Name: "thread_name", Ph: "M", TID: 0},
		{Name: "T1", Ph: "X", TS: 0, Dur: ms(3), TID: 0},
		{Name: "T2", Ph: "X", TS: ms(3), Dur: ms(1), TID: 0},
		{Name: "T4+T5", Ph: "X", TS: ms(4), Dur: ms(10), TID: 0},
		{Name: "T.A1", Ph: "X", TS: ms(5), Dur: ms(2), TID: 1},
		{Name: "T.A2", Ph: "X", TS: ms(7), Dur: ms(3), TID: 1},
		{Name: "T.A3", Ph: "X", TS: ms(10), Dur: ms(1), TID: 1},
		{Name: "T.A4", Ph: "X", TS: ms(11), Dur: ms(1), TID: 1},
		{Name: "T.A5", Ph: "X", TS: ms(14), Dur: ms(0.5), TID: 0},
		{Name: "mystery", Ph: "X", TS: 0, Dur: ms(1), TID: 9},
	}
	b := ComputeBreakdown(events)
	if b.Workers != 1 {
		t.Errorf("Workers = %d, want 1", b.Workers)
	}
	if b.Unknown != 1 {
		t.Errorf("Unknown = %d, want 1", b.Unknown)
	}
	if b.ComputeTime != 10*time.Millisecond {
		t.Errorf("ComputeTime = %v", b.ComputeTime)
	}
	if b.HiddenTime != 7*time.Millisecond {
		t.Errorf("HiddenTime = %v", b.HiddenTime)
	}
	if b.ExposedTime != 4*time.Millisecond {
		t.Errorf("ExposedTime = %v", b.ExposedTime)
	}
	if b.BlockedTime != 500*time.Microsecond {
		t.Errorf("BlockedTime = %v", b.BlockedTime)
	}
	if got, want := b.OverlapRatio(), 0.7; math.Abs(got-want) > 1e-9 {
		t.Errorf("OverlapRatio = %v, want %v", got, want)
	}
	// The sample trace exercises exactly the 8 Fig. 6 worker phases; the
	// server-side srv.* phases are absent.
	if len(b.Phases) != 8 {
		t.Errorf("Phases = %d entries, want 8", len(b.Phases))
	}
	for i, st := range b.Phases {
		if int(st.Phase) != i {
			t.Errorf("Phases not in order: %v at %d", st.Phase, i)
		}
		if st.Count != 1 || st.Mean() != st.Total {
			t.Errorf("phase %v stat %+v", st.Phase, st)
		}
	}
	// Empty compute -> ratio 0, not NaN.
	if r := (&Breakdown{}).OverlapRatio(); r != 0 {
		t.Errorf("empty OverlapRatio = %v", r)
	}
}
