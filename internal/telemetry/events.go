package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync/atomic"
	"time"
)

// Flight recorder: a fixed-capacity lock-free ring of structured events.
// Where the metrics Registry answers "how many reconnects", the recorder
// answers "what happened, in what order, just before the crash" — it is the
// post-mortem record for the fault-tolerance machinery (reconnects, deadline
// poisonings, sequence reaping, re-elections, group shrink, chaos faults).
//
// The record path is allocation-free and safe from any goroutine: one atomic
// add claims a slot, four atomic stores fill it. Like the Tracer ring, a
// wrapped ring overwrites the oldest events (Dropped counts them) and the
// export paths read slots unsynchronized — a torn in-flight event decodes as
// garbage-but-harmless data, never a crash.

// EventKind enumerates the structured events the recorder understands.
type EventKind uint8

const (
	// EvNone is the zero kind (an unwritten slot).
	EvNone EventKind = iota
	// EvReconnect: a SupervisedClient re-dialed its server. a=clientID b=attempt.
	EvReconnect
	// EvDeadlineFired: a per-op deadline expired and poisoned the conn. a=clientID.
	EvDeadlineFired
	// EvRetriesExhausted: a supervised op ran out of retry budget. a=clientID b=attempts.
	EvRetriesExhausted
	// EvConnError: a server handler exited on a transport error. a=total conn errors.
	EvConnError
	// EvSeqReaped: the server reaped a mid-stream chunk sequence. a=total reaped.
	EvSeqReaped
	// EvWorkerDead: a liveness tracker declared a rank dead. a=observer rank b=dead rank.
	EvWorkerDead
	// EvReElection: the termination master changed. a=observer rank b=new master.
	EvReElection
	// EvGroupShrink: a HybridGroup shrank past a failed member. a=member rank.
	EvGroupShrink
	// EvChaosCrash: faults.RestartableServer crashed the serving plane. a=crash count.
	EvChaosCrash
	// EvChaosRestart: the serving plane came back. a=crash count.
	EvChaosRestart
	// EvFaultInjected: the fault injector fired. a=fault kind (0 drop, 1 delay, 2 partial).
	EvFaultInjected
	// EvWaitCanceled: a parked WaitUpdate was canceled server-side.
	EvWaitCanceled
	// EvCrashDump: the recorder itself was dumped on a fatal signal. a=signal number.
	EvCrashDump
	// EvShmMap: a segment fd was passed to a mapping client. a=shm key b=mapped bytes.
	EvShmMap
	// EvShmLeaseReaped: a dead client's shm lease was reaped. a=lease b=lock words cleared.
	EvShmLeaseReaped

	// NumEventKinds is the number of named kinds.
	NumEventKinds = int(EvShmLeaseReaped) + 1
)

var eventNames = [NumEventKinds]string{
	"none", "reconnect", "deadline_fired", "retries_exhausted",
	"conn_error", "seq_reaped", "worker_dead", "re_election",
	"group_shrink", "chaos_crash", "chaos_restart", "fault_injected",
	"wait_canceled", "crash_dump", "shm_map", "shm_lease_reaped",
}

// eventArgNames labels the A/B/C payload slots per kind ("" = unused).
var eventArgNames = [NumEventKinds][3]string{
	EvReconnect:        {"client", "attempt", ""},
	EvDeadlineFired:    {"client", "", ""},
	EvRetriesExhausted: {"client", "attempts", ""},
	EvConnError:        {"total", "", ""},
	EvSeqReaped:        {"total", "", ""},
	EvWorkerDead:       {"observer", "rank", ""},
	EvReElection:       {"observer", "master", ""},
	EvGroupShrink:      {"member", "", ""},
	EvChaosCrash:       {"crashes", "", ""},
	EvChaosRestart:     {"crashes", "", ""},
	EvFaultInjected:    {"fault", "", ""},
	EvWaitCanceled:     {"", "", ""},
	EvCrashDump:        {"signal", "", ""},
	EvShmMap:           {"key", "bytes", ""},
	EvShmLeaseReaped:   {"lease", "locks", ""},
}

// String returns the snake_case event name.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one decoded flight-recorder entry.
type Event struct {
	UnixNano int64     `json:"unix_nano"`
	Kind     EventKind `json:"-"`
	A        int64     `json:"a,omitempty"`
	B        int64     `json:"b,omitempty"`
	C        int64     `json:"c,omitempty"`
}

// eventJSON is the wire form: kind as a string plus labeled args.
type eventJSON struct {
	Time string           `json:"time"`
	Kind string           `json:"kind"`
	Args map[string]int64 `json:"args,omitempty"`
}

// eventSlot is one ring slot; all fields atomic for the same reason as
// slotRec (post-wrap aliasing).
type eventSlot struct {
	t    atomic.Int64
	meta atomic.Int64 // EventKind
	a    atomic.Int64
	b    atomic.Int64
	c    atomic.Int64
}

// EventRing is the fixed-capacity recorder. The zero *EventRing is inert.
type EventRing struct {
	slots []eventSlot
	pos   atomic.Int64
}

// NewEventRing returns a recorder with room for capacity events (minimum 64).
func NewEventRing(capacity int) *EventRing {
	if capacity < 64 {
		capacity = 64
	}
	return &EventRing{slots: make([]eventSlot, capacity)}
}

// Record appends one event. Zero-alloc, lock-free, nil-safe.
//
//shm:hotpath
func (r *EventRing) Record(kind EventKind, a, b, c int64) {
	if r == nil {
		return
	}
	idx := r.pos.Add(1) - 1
	slot := &r.slots[int(idx%int64(len(r.slots)))]
	slot.t.Store(time.Now().UnixNano())
	slot.meta.Store(int64(kind))
	slot.a.Store(a)
	slot.b.Store(b)
	slot.c.Store(c)
}

// Len returns the number of events currently held (≤ capacity).
func (r *EventRing) Len() int {
	if r == nil {
		return 0
	}
	n := r.pos.Load()
	if n > int64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (r *EventRing) Dropped() int64 {
	if r == nil {
		return 0
	}
	if n := r.pos.Load(); n > int64(len(r.slots)) {
		return n - int64(len(r.slots))
	}
	return 0
}

// Snapshot decodes the live events, oldest first (export path; allocates).
func (r *EventRing) Snapshot() []Event {
	n := r.Len()
	if n == 0 {
		return nil
	}
	out := make([]Event, 0, n)
	start := 0
	if total := r.pos.Load(); total > int64(len(r.slots)) {
		start = int(total % int64(len(r.slots)))
	}
	for i := 0; i < n; i++ {
		s := &r.slots[(start+i)%len(r.slots)]
		out = append(out, Event{
			UnixNano: s.t.Load(),
			Kind:     EventKind(s.meta.Load()),
			A:        s.a.Load(),
			B:        s.b.Load(),
			C:        s.c.Load(),
		})
	}
	return out
}

// args builds the labeled arg map for export; nil when the kind takes none.
func (e Event) args() map[string]int64 {
	if int(e.Kind) >= NumEventKinds {
		return map[string]int64{"a": e.A, "b": e.B, "c": e.C}
	}
	names := eventArgNames[e.Kind]
	vals := [3]int64{e.A, e.B, e.C}
	var m map[string]int64
	for i, name := range names {
		if name == "" {
			continue
		}
		if m == nil {
			m = make(map[string]int64, 3)
		}
		m[name] = vals[i]
	}
	return m
}

// WriteJSON emits the events as a JSON array of {time, kind, args} objects
// (the /debug/events payload).
func (r *EventRing) WriteJSON(w io.Writer) error {
	evs := r.Snapshot()
	out := make([]eventJSON, len(evs))
	for i, e := range evs {
		out[i] = eventJSON{
			Time: time.Unix(0, e.UnixNano).UTC().Format(time.RFC3339Nano),
			Kind: e.Kind.String(),
			Args: e.args(),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteText emits a human-readable dump, one event per line.
func (r *EventRing) WriteText(w io.Writer) error {
	evs := r.Snapshot()
	if _, err := fmt.Fprintf(w, "flight recorder: %d events (%d dropped)\n", len(evs), r.Dropped()); err != nil {
		return err
	}
	for _, e := range evs {
		ts := time.Unix(0, e.UnixNano).UTC().Format("15:04:05.000000")
		if _, err := fmt.Fprintf(w, "%s %-18s", ts, e.Kind.String()); err != nil {
			return err
		}
		if int(e.Kind) < NumEventKinds {
			names := eventArgNames[e.Kind]
			vals := [3]int64{e.A, e.B, e.C}
			for i, name := range names {
				if name == "" {
					continue
				}
				if _, err := fmt.Fprintf(w, " %s=%d", name, vals[i]); err != nil {
					return err
				}
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// defaultEvents is the process-global recorder. Components record into it
// via RecordEvent without plumbing; CLIs dump it on fatal exit.
var defaultEvents = NewEventRing(4096)

// FlightRecorder returns the process-global flight recorder.
func FlightRecorder() *EventRing { return defaultEvents }

// RecordEvent records into the process-global recorder. Zero-alloc.
//
//shm:hotpath
func RecordEvent(kind EventKind, a, b, c int64) { defaultEvents.Record(kind, a, b, c) }

// DumpEvents writes the process-global recorder as text to path (0644).
func DumpEvents(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: create event dump: %w", err)
	}
	if err := defaultEvents.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DumpEventsOnSignal installs a handler that, on any of sigs (SIGQUIT by
// convention), records EvCrashDump, writes the text dump to path, logs the
// path via logf, then restores the default handler and re-raises the signal
// so the runtime's usual behavior (e.g. the SIGQUIT stack dump) still runs.
// The returned stop function uninstalls the handler.
func DumpEventsOnSignal(path string, logf func(format string, args ...any), sigs ...os.Signal) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sigs...)
	go func() {
		sig, ok := <-ch
		if !ok {
			return
		}
		RecordEvent(EvCrashDump, 0, 0, 0)
		if err := DumpEvents(path); err == nil && logf != nil {
			logf("flight recorder dump: %s", path)
		} else if err != nil && logf != nil {
			logf("flight recorder dump failed: %v", err)
		}
		signal.Reset(sig)
		if p, err := os.FindProcess(os.Getpid()); err == nil {
			_ = p.Signal(sig)
		}
	}()
	return func() {
		signal.Stop(ch)
		close(ch)
	}
}
