package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Phase names the SEASGD timeline regions of the paper's Fig. 6. The main
// thread's critical path is T1 (read Wg), T2 (elastic update) and T4+T5
// (minibatch compute + local apply); the update thread's hidden path is
// T.A1–T.A4 (acquire the exchange lock, store ΔWx, server accumulate,
// release); T.A5 is the main thread's back-pressure stall when a push
// outlives the compute phase.
type Phase uint8

const (
	// PhaseT1 is the exposed Wg read — deliberately on the critical path
	// for staleness control.
	PhaseT1 Phase = iota
	// PhaseT2 is the elastic update of the local weight (Eqs. 5+6).
	PhaseT2
	// PhaseT45 is minibatch compute + gradient apply (T4+T5, Eq. 2).
	PhaseT45
	// PhaseTA1 is the update thread acquiring the exchange lock.
	PhaseTA1
	// PhaseTA2 is the ΔWx store into the worker's SMB increment segment.
	PhaseTA2
	// PhaseTA3 is the server-side accumulate Wg += ΔWx (Eq. 7).
	PhaseTA3
	// PhaseTA4 is the release/bookkeeping tail of the push.
	PhaseTA4
	// PhaseTA5 is the main thread blocked on the exchange lock.
	PhaseTA5

	// PhaseSrvDispatch is the SMB server handling one request frame
	// (read to reply). With trace propagation it is the server-side
	// child of the client span that sent the frame.
	PhaseSrvDispatch
	// PhaseSrvAcc is the server-side accumulate apply (Wg += ΔWx, Eq. 7).
	PhaseSrvAcc
	// PhaseSrvChunk is one chunk of a streamed WRITE+ACCUMULATE sequence
	// being applied; overlapping srv.chunk spans render the pipeline depth.
	PhaseSrvChunk
	// PhaseSrvWait is a WaitUpdate parked on the server's version table.
	PhaseSrvWait

	// NumPhases is the number of named phases.
	NumPhases = int(PhaseSrvWait) + 1
)

// phaseNames must match the paper's Fig. 6 labels: these exact strings
// appear in the Chrome trace, the per-phase histograms, and the
// benchtables -trace breakdown.
var phaseNames = [NumPhases]string{
	"T1", "T2", "T4+T5", "T.A1", "T.A2", "T.A3", "T.A4", "T.A5",
	"srv.dispatch", "srv.acc", "srv.chunk", "srv.wait",
}

// String returns the Fig. 6 label.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// PhaseFromName resolves a Fig. 6 label back to its Phase (used by the
// trace-file breakdown). ok is false for unknown names.
func PhaseFromName(name string) (Phase, bool) {
	for i, n := range phaseNames {
		if n == name {
			return Phase(i), true
		}
	}
	return 0, false
}

// HiddenPhase reports whether p runs on the update thread — the time the
// design hides behind compute (the numerator of the Fig. 6 overlap ratio).
func HiddenPhase(p Phase) bool {
	return p >= PhaseTA1 && p <= PhaseTA4
}

// slotRec is one ring slot. Fields are atomic because after the ring wraps
// two concurrent Ends can claim logical indices that alias the same slot;
// the losing span is dropped data either way, but the stores must not race.
// meta packs tid<<8 | phase.
type slotRec struct {
	start   atomic.Int64 // ns since tracer epoch
	dur     atomic.Int64 // ns
	meta    atomic.Int64
	traceID atomic.Uint64
	spanID  atomic.Uint64
	parent  atomic.Uint64
}

// spanRec is one decoded span (snapshot/export path).
type spanRec struct {
	start   int64 // ns since tracer epoch
	dur     int64 // ns
	tid     int32
	phase   Phase
	traceID uint64
	spanID  uint64
	parent  uint64
}

// TraceContext links a span into a cross-process trace. TraceID groups every
// span of one logical operation (e.g. one worker push); SpanID identifies
// this span within the trace; Parent is the SpanID of the causing span
// (zero at the root). The zero TraceContext means "untraced".
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
	Parent  uint64
}

// spanIDCounter backs NextSpanID. Process-local; distinct salts keep merged
// multi-process traces collision-free.
var spanIDCounter atomic.Uint64

// NextSpanID returns a process-unique span id with salt OR'd into the high
// bits. Workers conventionally salt with (rank+1)<<48, servers with 1<<63.
func NextSpanID(salt uint64) uint64 { return salt | spanIDCounter.Add(1) }

// Tracer records spans into a fixed-capacity ring preallocated at
// construction. Begin/End are allocation-free and safe for concurrent use
// from any number of goroutines: each End claims a distinct slot with one
// atomic add. When the ring wraps, the oldest spans are overwritten and
// counted as dropped. Export (WriteChromeTrace) must run after recording
// has quiesced — it reads the slots without synchronization.
type Tracer struct {
	epoch time.Time
	ring  []slotRec
	pos   atomic.Int64

	mu      sync.Mutex
	threads map[int32]string // tid -> display name, guarded by mu
}

// NewTracer returns a tracer with room for capacity spans (minimum 64).
func NewTracer(capacity int) *Tracer {
	if capacity < 64 {
		capacity = 64
	}
	return &Tracer{
		epoch:   time.Now(),
		ring:    make([]slotRec, capacity),
		threads: make(map[int32]string),
	}
}

// now returns nanoseconds since the tracer epoch on the monotonic clock.
func (t *Tracer) now() int64 { return time.Since(t.epoch).Nanoseconds() }

// NameThread registers a display name for a track (Chrome tid). Worker
// ranks conventionally use MainTID/UpdateTID so the main and update threads
// of one worker render as adjacent tracks.
func (t *Tracer) NameThread(tid int32, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threads[tid] = name
	t.mu.Unlock()
}

// MainTID returns the track id of worker rank's main thread.
func MainTID(rank int) int32 { return int32(2 * rank) }

// UpdateTID returns the track id of worker rank's update thread.
func UpdateTID(rank int) int32 { return int32(2*rank + 1) }

// Span is an open span. It is a value — Begin/End pairs allocate nothing.
// The zero Span (from a nil Tracer/Trainer) is inert: End is a no-op.
type Span struct {
	t     *Tracer
	hist  *Histogram // optional: observed with the duration on End
	start int64
	tc    TraceContext
	tid   int32
	phase Phase
}

// Begin opens a span for phase p on track tid.
func (t *Tracer) Begin(tid int32, p Phase) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, start: t.now(), tid: tid, phase: p}
}

// BeginTraced opens a span carrying a cross-process trace context. The
// context is stored with the span on End and exported as trace_id /
// span_id / parent_id args in the Chrome trace.
func (t *Tracer) BeginTraced(tid int32, p Phase, tc TraceContext) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, start: t.now(), tid: tid, phase: p, tc: tc}
}

// ObserveInto attaches a histogram that receives the span's duration on
// End, returning the updated span value.
func (s Span) ObserveInto(h *Histogram) Span {
	s.hist = h
	return s
}

// End closes the span, recording it into the ring (and the attached
// histogram, if any). Calling End on a zero Span does nothing.
func (s Span) End() {
	if s.t == nil {
		return
	}
	end := s.t.now()
	idx := s.t.pos.Add(1) - 1
	slot := &s.t.ring[int(idx%int64(len(s.t.ring)))]
	slot.start.Store(s.start)
	slot.dur.Store(end - s.start)
	slot.meta.Store(int64(s.tid)<<8 | int64(s.phase))
	slot.traceID.Store(s.tc.TraceID)
	slot.spanID.Store(s.tc.SpanID)
	slot.parent.Store(s.tc.Parent)
	if s.hist != nil {
		s.hist.ObserveSeconds(end - s.start)
	}
}

// EpochUnixNano returns the wall-clock time of the tracer's epoch. Exported
// traces embed it as metadata so a fleet merger (shmtop) can place the
// relative span timestamps of many processes on one absolute timeline.
func (t *Tracer) EpochUnixNano() int64 {
	if t == nil {
		return 0
	}
	return t.epoch.UnixNano()
}

// Len returns the number of spans currently held (≤ capacity).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := t.pos.Load()
	if n > int64(len(t.ring)) {
		return len(t.ring)
	}
	return int(n)
}

// Dropped returns how many spans were overwritten by ring wrap-around.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	if n := t.pos.Load(); n > int64(len(t.ring)) {
		return n - int64(len(t.ring))
	}
	return 0
}

// snapshot decodes the live spans out of the ring (export path; allocates).
// Spans still being written concurrently may decode torn; callers are
// documented to export only after recording quiesces.
func (t *Tracer) snapshot() []spanRec {
	n := t.Len()
	out := make([]spanRec, n)
	for i := 0; i < n; i++ {
		meta := t.ring[i].meta.Load()
		out[i] = spanRec{
			start:   t.ring[i].start.Load(),
			dur:     t.ring[i].dur.Load(),
			tid:     int32(meta >> 8),
			phase:   Phase(meta & 0xff),
			traceID: t.ring[i].traceID.Load(),
			spanID:  t.ring[i].spanID.Load(),
			parent:  t.ring[i].parent.Load(),
		}
	}
	return out
}
