package telemetry

import (
	"sort"
	"time"
)

// PhaseStat aggregates the spans of one phase across a trace.
type PhaseStat struct {
	Phase Phase
	Count int
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Mean returns the mean span duration.
func (s PhaseStat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Breakdown is the per-phase time decomposition of a trace — the Fig. 6
// quantity in tabular form.
type Breakdown struct {
	Phases []PhaseStat // present phases, in Phase order

	// HiddenTime is ΣT.A1–T.A4: the update-thread work the design hides
	// behind compute.
	HiddenTime time.Duration
	// ComputeTime is ΣT4+T5.
	ComputeTime time.Duration
	// ExposedTime is Σ(T1+T2): the communication deliberately left on the
	// critical path.
	ExposedTime time.Duration
	// BlockedTime is ΣT.A5: main-thread stalls from push back-pressure.
	BlockedTime time.Duration
	// Workers is the number of distinct main-thread tracks seen.
	Workers int
	// Unknown counts events whose name is not a Fig. 6 phase (skipped).
	Unknown int
}

// OverlapRatio is hidden T.A time / compute time — >0 means the update
// thread did real work during compute; a value near the exposed-comm share
// of an unoverlapped run quantifies how much latency the design hides.
func (b *Breakdown) OverlapRatio() float64 {
	if b.ComputeTime <= 0 {
		return 0
	}
	return b.HiddenTime.Seconds() / b.ComputeTime.Seconds()
}

// ComputeBreakdown aggregates complete ("X") span events per phase.
func ComputeBreakdown(events []TraceEvent) *Breakdown {
	var stats [NumPhases]PhaseStat
	mains := make(map[int]bool)
	b := &Breakdown{}
	for _, ev := range events {
		if ev.Ph != "X" {
			continue
		}
		p, ok := PhaseFromName(ev.Name)
		if !ok {
			b.Unknown++
			continue
		}
		d := time.Duration(ev.Dur * float64(time.Microsecond))
		st := &stats[p]
		if st.Count == 0 || d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		st.Count++
		st.Total += d

		switch {
		case HiddenPhase(p):
			b.HiddenTime += d
		case p == PhaseT45:
			b.ComputeTime += d
			mains[ev.TID] = true
		case p == PhaseT1 || p == PhaseT2:
			b.ExposedTime += d
		case p == PhaseTA5:
			b.BlockedTime += d
		}
	}
	for p := 0; p < NumPhases; p++ {
		if stats[p].Count > 0 {
			stats[p].Phase = Phase(p)
			b.Phases = append(b.Phases, stats[p])
		}
	}
	sort.Slice(b.Phases, func(i, j int) bool { return b.Phases[i].Phase < b.Phases[j].Phase })
	b.Workers = len(mains)
	return b
}
