package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestPhaseNames(t *testing.T) {
	want := []string{"T1", "T2", "T4+T5", "T.A1", "T.A2", "T.A3", "T.A4", "T.A5"}
	for i, name := range want {
		if got := Phase(i).String(); got != name {
			t.Errorf("Phase(%d) = %q, want %q", i, got, name)
		}
		p, ok := PhaseFromName(name)
		if !ok || p != Phase(i) {
			t.Errorf("PhaseFromName(%q) = %v,%v", name, p, ok)
		}
	}
	if _, ok := PhaseFromName("T9"); ok {
		t.Error("PhaseFromName accepted an unknown label")
	}
	for p := PhaseT1; p <= PhaseTA5; p++ {
		want := p >= PhaseTA1 && p <= PhaseTA4
		if HiddenPhase(p) != want {
			t.Errorf("HiddenPhase(%v) = %v, want %v", p, !want, want)
		}
	}
}

func TestTracerRecordsSpans(t *testing.T) {
	tr := NewTracer(128)
	sp := tr.Begin(MainTID(1), PhaseT45)
	time.Sleep(time.Millisecond)
	sp.End()
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	rec := tr.snapshot()[0]
	if rec.phase != PhaseT45 || rec.tid != MainTID(1) {
		t.Fatalf("recorded %+v", rec)
	}
	if rec.dur < int64(500*time.Microsecond) {
		t.Fatalf("dur = %v, want >= 0.5ms", time.Duration(rec.dur))
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(64)
	const total = 200
	for i := 0; i < total; i++ {
		tr.Begin(0, PhaseT1).End()
	}
	if tr.Len() != 64 {
		t.Fatalf("Len = %d, want 64", tr.Len())
	}
	if got := tr.Dropped(); got != total-64 {
		t.Fatalf("Dropped = %d, want %d", got, total-64)
	}
	// No threads were named, so Events holds the surviving spans plus the
	// one clock_epoch metadata record.
	if n := len(tr.Events()); n != 64+1 {
		t.Fatalf("Events = %d, want 65", n)
	}
}

// TestTracerConcurrent hammers Begin/End from many goroutines; tier 2 runs
// this package under -race. Every End must land in some slot without a data
// race, and the drop accounting must be exact.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(1 << 10)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := tr.Begin(MainTID(w), Phase(i%NumPhases))
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := tr.Len() + int(tr.Dropped()); got != workers*perWorker {
		t.Fatalf("Len+Dropped = %d, want %d", got, workers*perWorker)
	}
}

func TestSpanZeroAlloc(t *testing.T) {
	tr := NewTracer(1 << 12)
	if n := testing.AllocsPerRun(500, func() {
		sp := tr.Begin(UpdateTID(0), PhaseTA2)
		sp.End()
	}); n != 0 {
		t.Errorf("Tracer Begin/End allocates %.1f per span", n)
	}
	var nilTr *Tracer
	if n := testing.AllocsPerRun(500, func() {
		sp := nilTr.Begin(0, PhaseT1)
		sp.End()
	}); n != 0 {
		t.Errorf("nil Tracer Begin/End allocates %.1f per span", n)
	}
}
