package telemetry

import "fmt"

// Trainer bundles the instruments one training run shares across its
// workers: the span tracer plus the preregistered SEASGD metrics. A nil
// *Trainer disables everything — the worker code instruments
// unconditionally and pays one branch per record when telemetry is off.
//
// Metric inventory (all under the seasgd_ prefix):
//
//	seasgd_phase_seconds{phase=...}      histogram, one series per Fig. 6 phase
//	seasgd_t1_staleness_iterations      histogram: remote iterations completed
//	                                    between consecutive T1 reads of Wg —
//	                                    the per-read staleness that governs
//	                                    asynchronous SGD convergence
//	seasgd_hidden_read_hits_total       T1 served from the cached Wg
//	                                    (HideGlobalRead mode only)
//	seasgd_hidden_read_refreshes_total  cache refreshes by the update thread
//	seasgd_pushes_total                 ΔWx accumulations issued
//	seasgd_iterations_total             minibatch iterations completed
type Trainer struct {
	Registry *Registry
	Tracer   *Tracer

	phase      [NumPhases]*Histogram
	staleness  *Histogram
	hiddenHits *Counter
	hiddenRefr *Counter
	pushes     *Counter
	iterations *Counter
}

// NewTrainer registers the SEASGD metrics on reg and allocates a tracer
// ring of spanCapacity (0 picks a default sized for short diagnostic runs).
func NewTrainer(reg *Registry, spanCapacity int) *Trainer {
	if spanCapacity <= 0 {
		spanCapacity = 1 << 16
	}
	t := &Trainer{
		Registry: reg,
		Tracer:   NewTracer(spanCapacity),
	}
	for p := 0; p < NumPhases; p++ {
		t.phase[p] = reg.Histogram(
			fmt.Sprintf("seasgd_phase_seconds{phase=%q}", Phase(p).String()),
			"time spent per SEASGD phase (paper Fig. 6 labels)",
			DefLatencyBuckets)
	}
	t.staleness = reg.Histogram("seasgd_t1_staleness_iterations",
		"remote worker iterations completed between consecutive T1 reads of Wg",
		[]float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256})
	t.hiddenHits = reg.Counter("seasgd_hidden_read_hits_total",
		"T1 reads served from the cached global weight (HideGlobalRead mode)")
	t.hiddenRefr = reg.Counter("seasgd_hidden_read_refreshes_total",
		"cached-global refreshes performed by the update thread")
	t.pushes = reg.Counter("seasgd_pushes_total",
		"global-weight accumulations issued (T.A2-T.A3)")
	t.iterations = reg.Counter("seasgd_iterations_total",
		"minibatch iterations completed across workers")
	return t
}

// NameWorker labels worker rank's two tracks in the trace.
func (t *Trainer) NameWorker(rank int) {
	if t == nil {
		return
	}
	t.Tracer.NameThread(MainTID(rank), fmt.Sprintf("worker %d main", rank))
	t.Tracer.NameThread(UpdateTID(rank), fmt.Sprintf("worker %d update", rank))
}

// Begin opens a span for phase p on track tid; the duration also feeds the
// phase histogram on End. Allocation-free; safe on a nil Trainer.
func (t *Trainer) Begin(tid int32, p Phase) Span {
	if t == nil {
		return Span{}
	}
	s := t.Tracer.Begin(tid, p)
	s.hist = t.phase[p]
	return s
}

// BeginTraced opens a span like Begin but carrying a cross-process trace
// context (zero tc behaves exactly like Begin). The worker push path uses it
// to root each push's trace at the T.A3 span so the server-side spans join
// the worker's timeline as children.
func (t *Trainer) BeginTraced(tid int32, p Phase, tc TraceContext) Span {
	if t == nil {
		return Span{}
	}
	s := t.Tracer.BeginTraced(tid, p, tc)
	s.hist = t.phase[p]
	return s
}

// ObserveStaleness records one T1 read's staleness in iterations.
func (t *Trainer) ObserveStaleness(iters int64) {
	if t == nil {
		return
	}
	t.staleness.Observe(float64(iters))
}

// HiddenHit counts a T1 read served from the cached global weight.
func (t *Trainer) HiddenHit() {
	if t == nil {
		return
	}
	t.hiddenHits.Inc()
}

// HiddenRefresh counts an update-thread refresh of the cached global.
func (t *Trainer) HiddenRefresh() {
	if t == nil {
		return
	}
	t.hiddenRefr.Inc()
}

// IncPush counts one ΔWx accumulation.
func (t *Trainer) IncPush() {
	if t == nil {
		return
	}
	t.pushes.Inc()
}

// IncIteration counts one completed minibatch iteration.
func (t *Trainer) IncIteration() {
	if t == nil {
		return
	}
	t.iterations.Inc()
}
