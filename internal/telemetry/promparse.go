package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format parsing — the consumer half of WritePrometheus,
// used by shmtop to scrape a fleet without external dependencies. The parser
// accepts the 0.0.4 subset this package emits (and what common exporters
// produce): HELP/TYPE comments, `name{labels} value`, escaped label values.

// Sample is one parsed series sample.
type Sample struct {
	Name   string            // family name (h_bucket etc. kept verbatim)
	Labels map[string]string // nil when unlabeled
	Value  float64
}

// Label returns the value of label k ("" when absent).
func (s Sample) Label(k string) string {
	if s.Labels == nil {
		return ""
	}
	return s.Labels[k]
}

// ParsePrometheus parses a text exposition into samples, in input order.
// Malformed lines fail the parse — a scrape is all-or-nothing.
func ParsePrometheus(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: parse line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSampleLine parses one `name{labels} value [timestamp]` line.
func parseSampleLine(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabelBlock(rest[1:])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return s, fmt.Errorf("no value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseLabelBlock consumes `k="v",...}` returning the map and the remainder
// after the closing brace.
func parseLabelBlock(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, "", fmt.Errorf("malformed label block near %q", s)
		}
		k := strings.TrimSpace(s[:eq])
		rest := s[eq+2:]
		var v strings.Builder
		i, closed := 0, false
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					v.WriteByte('\n')
				case '\\':
					v.WriteByte('\\')
				case '"':
					v.WriteByte('"')
				default:
					v.WriteByte('\\')
					v.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			v.WriteByte(c)
			i++
		}
		if !closed {
			return nil, "", fmt.Errorf("unterminated label value near %q", s)
		}
		labels[k] = v.String()
		s = rest[i:]
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		}
	}
}

// matchLabels reports whether the sample carries every pair in want
// (ignoring extra labels on the sample).
func matchLabels(s Sample, want map[string]string) bool {
	for k, v := range want {
		if s.Label(k) != v {
			return false
		}
	}
	return true
}

// SampleValue returns the first sample named name whose labels cover want.
func SampleValue(samples []Sample, name string, want map[string]string) (float64, bool) {
	for _, s := range samples {
		if s.Name == name && matchLabels(s, want) {
			return s.Value, true
		}
	}
	return 0, false
}

// HistogramData is a scraped histogram reassembled from its _bucket/_sum/
// _count series.
type HistogramData struct {
	Upper []float64 // ascending bucket bounds, +Inf last
	Cum   []int64   // cumulative counts aligned with Upper
	Count int64
	Sum   float64
}

// ExtractHistogram reassembles family's histogram from a scrape, matching
// the given fixed labels (le excluded). ok is false when no buckets match.
func ExtractHistogram(samples []Sample, family string, want map[string]string) (*HistogramData, bool) {
	type bound struct {
		ub  float64
		cum int64
	}
	var bounds []bound
	h := &HistogramData{}
	for _, s := range samples {
		switch s.Name {
		case family + "_bucket":
			if !matchLabels(s, want) {
				continue
			}
			le := s.Label("le")
			ub, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			bounds = append(bounds, bound{ub: ub, cum: int64(s.Value)})
		case family + "_sum":
			if matchLabels(s, want) {
				h.Sum = s.Value
			}
		case family + "_count":
			if matchLabels(s, want) {
				h.Count = int64(s.Value)
			}
		}
	}
	if len(bounds) == 0 {
		return nil, false
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].ub < bounds[j].ub })
	for _, b := range bounds {
		h.Upper = append(h.Upper, b.ub)
		h.Cum = append(h.Cum, b.cum)
	}
	return h, true
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the containing bucket — the same estimator as Prometheus'
// histogram_quantile. Returns NaN for an empty histogram; values landing in
// the +Inf bucket clamp to the highest finite bound.
func (h *HistogramData) Quantile(q float64) float64 {
	if h == nil || len(h.Upper) == 0 {
		return math.NaN()
	}
	total := h.Cum[len(h.Cum)-1]
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	for i, cum := range h.Cum {
		if float64(cum) < rank {
			continue
		}
		ub := h.Upper[i]
		if math.IsInf(ub, 1) {
			// Open-ended bucket: clamp to the highest finite bound.
			if i == 0 {
				return math.NaN()
			}
			return h.Upper[i-1]
		}
		lo, prev := 0.0, int64(0)
		if i > 0 {
			lo = h.Upper[i-1]
			prev = h.Cum[i-1]
		}
		inBucket := cum - prev
		if inBucket == 0 {
			return ub
		}
		return lo + (ub-lo)*(rank-float64(prev))/float64(inBucket)
	}
	return h.Upper[len(h.Upper)-1]
}
