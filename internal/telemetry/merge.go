package telemetry

import (
	"fmt"
	"os"
	"sort"
	"strconv"
)

// Cross-node trace merging — the shmtop half of trace propagation. Each
// process exports spans with timestamps relative to its own tracer epoch;
// the epoch's wall-clock anchor rides along as clock_epoch metadata. The
// merger assigns every node a distinct Chrome pid, shifts each node's spans
// onto one absolute timeline (epoch anchor minus the node's estimated clock
// offset), and the trace_id/span_id/parent_id args recorded by the wire
// extension then link a worker's push span to the server-side spans it
// caused — across processes.

// NodeTrace is one process's trace plus its placement on the fleet timeline.
type NodeTrace struct {
	Name   string       // display name (process_name metadata)
	Events []TraceEvent // as parsed from the node's trace export

	// ClockOffsetNano is the node's estimated wall-clock offset relative to
	// the aggregator (remote − local); subtracted when shifting so that all
	// nodes land on the aggregator's clock.
	ClockOffsetNano int64
}

// MergeTraces merges per-node traces into one timeline. Node i gets pid i+1.
// Span timestamps become microseconds since the earliest adjusted epoch
// across the fleet; nodes without a clock_epoch anchor keep their relative
// timestamps (best effort — their spans still merge, on their own origin).
func MergeTraces(nodes []NodeTrace) []TraceEvent {
	// First pass: adjusted epoch per node, and the fleet origin.
	epochs := make([]int64, len(nodes))
	var origin int64
	for i, n := range nodes {
		if e := TraceEpochUnixNano(n.Events); e != 0 {
			epochs[i] = e - n.ClockOffsetNano
			if origin == 0 || epochs[i] < origin {
				origin = epochs[i]
			}
		}
	}

	var out []TraceEvent
	for i, n := range nodes {
		pid := i + 1
		out = append(out, TraceEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]string{"name": n.Name},
		})
		out = append(out, TraceEvent{
			Name: "clock_offset", Ph: "M", PID: pid,
			Args: map[string]string{
				"offset_nano": strconv.FormatInt(n.ClockOffsetNano, 10),
			},
		})
		shiftUS := 0.0
		if epochs[i] != 0 && origin != 0 {
			shiftUS = float64(epochs[i]-origin) / 1e3
		}
		for _, ev := range n.Events {
			if ev.Ph == "M" {
				if ev.Name == "clock_epoch" {
					continue // superseded by the merged timeline
				}
				ev.PID = pid
				out = append(out, ev)
				continue
			}
			ev.PID = pid
			ev.TS += shiftUS
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		ma, mb := out[a].Ph == "M", out[b].Ph == "M"
		if ma != mb {
			return ma
		}
		if ma {
			return false
		}
		return out[a].TS < out[b].TS
	})
	return out
}

// CrossNodeChains counts parent→child span links that cross a process
// boundary in a merged trace: a span whose parent_id names a span recorded
// under a different pid with the same trace_id. This is the acceptance
// quantity for trace propagation — ≥1 proves a client push span has a
// server-side child.
func CrossNodeChains(events []TraceEvent) int {
	type spanKey struct {
		trace string
		span  string
	}
	owners := make(map[spanKey]int)
	for _, ev := range events {
		if ev.Ph != "X" || ev.Args == nil {
			continue
		}
		tid, sid := ev.Args["trace_id"], ev.Args["span_id"]
		if tid == "" || sid == "" {
			continue
		}
		owners[spanKey{tid, sid}] = ev.PID
	}
	chains := 0
	for _, ev := range events {
		if ev.Ph != "X" || ev.Args == nil {
			continue
		}
		tid, parent := ev.Args["trace_id"], ev.Args["parent_id"]
		if tid == "" || parent == "" {
			continue
		}
		if ownerPID, ok := owners[spanKey{tid, parent}]; ok && ownerPID != ev.PID {
			chains++
		}
	}
	return chains
}

// WriteMergedTraceFile writes merged events in the object trace form.
func WriteMergedTraceFile(path string, events []TraceEvent) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: create merged trace: %w", err)
	}
	if err := writeTraceEvents(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
