package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
)

// Chrome trace_event export: the tracer's ring renders as the paper's
// Fig. 6 timeline when loaded into chrome://tracing or https://ui.perfetto.dev.
// Each worker occupies two adjacent tracks (main and update thread), so the
// overlap of T.A1–T.A4 with T4+T5 — the paper's communication hiding — is
// directly visible.

// TraceEvent is one trace_event record (the subset this package emits and
// the breakdown loader consumes). Times are microseconds, per the format.
type TraceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// traceFile is the object form of the trace format.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit,omitempty"`
}

// Events converts the recorded spans into complete ("ph":"X") trace events
// plus thread-name metadata, sorted by start time.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	spans := t.snapshot()
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })

	t.mu.Lock()
	tids := make([]int32, 0, len(t.threads))
	for tid := range t.threads {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	events := make([]TraceEvent, 0, len(spans)+len(tids)+1)
	events = append(events, TraceEvent{
		Name: "clock_epoch", Ph: "M", PID: 0, TID: 0,
		Args: map[string]string{"epoch_unix_nano": strconv.FormatInt(t.EpochUnixNano(), 10)},
	})
	for _, tid := range tids {
		events = append(events, TraceEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: int(tid),
			Args: map[string]string{"name": t.threads[tid]},
		})
	}
	t.mu.Unlock()

	for _, s := range spans {
		ev := TraceEvent{
			Name: s.phase.String(),
			Cat:  "seasgd",
			Ph:   "X",
			TS:   float64(s.start) / 1e3,
			Dur:  float64(s.dur) / 1e3,
			PID:  0,
			TID:  int(s.tid),
		}
		if s.traceID != 0 {
			ev.Args = map[string]string{
				"trace_id": fmt.Sprintf("%016x", s.traceID),
				"span_id":  fmt.Sprintf("%016x", s.spanID),
			}
			if s.parent != 0 {
				ev.Args["parent_id"] = fmt.Sprintf("%016x", s.parent)
			}
		}
		events = append(events, ev)
	}
	return events
}

// TraceEpochUnixNano extracts the clock_epoch metadata from a parsed trace
// (0 when absent — traces written before epoch anchoring).
func TraceEpochUnixNano(events []TraceEvent) int64 {
	for _, ev := range events {
		if ev.Ph == "M" && ev.Name == "clock_epoch" {
			if v, err := strconv.ParseInt(ev.Args["epoch_unix_nano"], 10, 64); err == nil {
				return v
			}
		}
	}
	return 0
}

// WriteChromeTrace writes the trace_event JSON object form. Call it only
// after recording has quiesced (e.g. after training returns).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return writeTraceEvents(w, t.Events())
}

// writeTraceEvents writes any event list in the object trace form.
func writeTraceEvents(w io.Writer, events []TraceEvent) error {
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteChromeTraceFile writes the trace to path (0644).
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: create trace file: %w", err)
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ParseChromeTrace decodes trace_event JSON in either the bare-array or the
// {"traceEvents": [...]} object form.
func ParseChromeTrace(data []byte) ([]TraceEvent, error) {
	var obj traceFile
	if err := json.Unmarshal(data, &obj); err == nil && obj.TraceEvents != nil {
		return obj.TraceEvents, nil
	}
	var arr []TraceEvent
	if err := json.Unmarshal(data, &arr); err != nil {
		return nil, fmt.Errorf("telemetry: not a Chrome trace: %w", err)
	}
	return arr, nil
}

// LoadTraceFile reads and parses a trace file emitted by WriteChromeTrace.
func LoadTraceFile(path string) ([]TraceEvent, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseChromeTrace(data)
}
