// Package telemetry is the repository's runtime-measurement core. The
// paper's central claim is about *where iteration time goes* — the update
// thread hides the ΔWx write/accumulate (Fig. 6 T.A1–T.A5) behind minibatch
// compute (T4+T5) while deliberately leaving the Wg read (T1) exposed — so
// the package provides the two instruments needed to see that directly:
//
//   - metrics: atomic counters, gauges and fixed-bucket histograms with a
//     Prometheus text exposition, designed so recording on the SMB/SEASGD
//     hot path performs zero heap allocations (the PR 2 AllocsPerRun guards
//     run with instrumentation enabled);
//   - a span tracer (tracer.go) that records the SEASGD phases into a
//     preallocated ring and exports Chrome trace_event JSON, rendering a
//     training run as the paper's Fig. 6 timeline in chrome://tracing or
//     Perfetto.
//
// All recording methods are nil-receiver safe: a component holding a nil
// *Counter/*Histogram/*Tracer pays one branch and records nothing, so
// instrumentation can be unconditional in the code it measures.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. The zero value is unusable;
// obtain one from Registry.Counter. All methods are safe for concurrent use
// and allocation-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be non-negative for the value to stay meaningful).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter (test/diagnostic use, not part of the Prometheus
// counter contract).
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.v.Store(0)
}

// Gauge is a float64 that can go up and down, stored as IEEE-754 bits in an
// atomic uint64.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d with a CAS loop (allocation-free).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: cumulative bucket counts plus sum
// and count, all atomics over storage preallocated at registration. Observe
// is lock-free and allocation-free, which is what lets the SMB accumulate
// path and the SEASGD phase recording stay inside the PR 2 zero-alloc
// budget.
type Histogram struct {
	upper  []float64      // bucket upper bounds, ascending; +Inf implicit
	counts []atomic.Int64 // len(upper)+1; last is the overflow (+Inf) bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-added
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are small (≤ ~30) and the slice is hot in
	// cache; a binary search buys nothing at this size.
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSeconds records a duration given in nanoseconds as seconds — the
// convenient form for time.Since(...).Nanoseconds() call sites.
func (h *Histogram) ObserveSeconds(ns int64) {
	if h == nil {
		return
	}
	h.Observe(float64(ns) / 1e9)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Snapshot returns the cumulative bucket counts aligned with Buckets()
// (the final entry is the +Inf bucket). Counters are read individually, so
// a snapshot taken mid-traffic is per-bucket consistent.
func (h *Histogram) Snapshot() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// Buckets returns the upper bounds (excluding +Inf).
func (h *Histogram) Buckets() []float64 {
	if h == nil {
		return nil
	}
	out := make([]float64, len(h.upper))
	copy(out, h.upper)
	return out
}

// ExpBuckets returns n exponentially spaced upper bounds starting at start
// and growing by factor — the standard shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n evenly spaced upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// DefLatencyBuckets spans 1µs to ~67s, factor 4 — wide enough for both the
// in-process store (sub-µs accumulates) and a congested TCP transport.
var DefLatencyBuckets = ExpBuckets(1e-6, 4, 14)

// metricKind discriminates exposition formats.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindCounterFunc
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered instrument plus its exposition metadata.
type metric struct {
	base   string // metric family name, no labels
	labels string // `k="v",k2="v2"` or "" (raw, as registered)
	pairs  []labelPair
	parsed bool // labels parsed into pairs; exposition re-escapes values
	help   string
	kind   metricKind

	counter *Counter
	cfn     func() int64
	gauge   *Gauge
	gfn     func() float64
	hist    *Histogram
}

// labelPair is one parsed fixed-label pair; the value is held unescaped.
type labelPair struct{ k, v string }

// parseLabels parses `k="v",k2="v2"` with backslash escapes in values. ok is
// false on malformed input, in which case exposition falls back to emitting
// the raw registration string unchanged.
func parseLabels(s string) (pairs []labelPair, ok bool) {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, false
		}
		k := s[:eq]
		rest := s[eq+2:]
		var v strings.Builder
		i, closed := 0, false
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					v.WriteByte('\n')
				case '\\':
					v.WriteByte('\\')
				case '"':
					v.WriteByte('"')
				default:
					v.WriteByte('\\')
					v.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			v.WriteByte(c)
			i++
		}
		if !closed {
			return nil, false
		}
		pairs = append(pairs, labelPair{k: k, v: v.String()})
		s = rest[i:]
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, false
			}
			s = s[1:]
		}
	}
	return pairs, true
}

// labelEscaper escapes label values per the 0.0.4 text format; helpEscaper
// does the same for HELP lines (where `"` needs no escape).
var (
	labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
)

// renderLabels renders the metric's fixed labels with values escaped,
// appending extra (an already-rendered pair like `le="0.5"`) if non-empty.
func (m *metric) renderLabels(extra string) string {
	fixed := m.labels
	if m.parsed && len(m.pairs) > 0 {
		var b strings.Builder
		for i, p := range m.pairs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(p.k)
			b.WriteString(`="`)
			b.WriteString(labelEscaper.Replace(p.v))
			b.WriteByte('"')
		}
		fixed = b.String()
	}
	if extra == "" {
		return fixed
	}
	if fixed == "" {
		return extra
	}
	return fixed + "," + extra
}

// Registry holds named instruments and renders them in Prometheus text
// exposition format. Registration (Counter/Gauge/Histogram) allocates and
// takes a lock — do it at construction time; the returned instrument
// pointers are what the hot path uses.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric          // guarded by mu
	index   map[string]*metric // full name -> metric, guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

// splitName separates an optional {label="v"} suffix from the family name.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// register adds m under its full name, panicking on duplicates — metric
// names are program constants, so a clash is a programming error on the
// same footing as a duplicate flag name.
func (r *Registry) register(name, help string, kind metricKind) *metric {
	base, labels := splitName(name)
	m := &metric{base: base, labels: labels, help: help, kind: kind}
	if labels != "" {
		m.pairs, m.parsed = parseLabels(labels)
	} else {
		m.parsed = true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.index[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	r.index[name] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers and returns a counter. The name may carry a fixed label
// set: `ops_total{op="read"}`.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(name, help, kindCounter)
	m.counter = &Counter{}
	return m.counter
}

// CounterFunc registers a counter whose value is read at scrape time —
// the bridge for components that already keep their own atomic counters
// (e.g. the SMB store's traffic stats).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	m := r.register(name, help, kindCounterFunc)
	m.cfn = fn
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.register(name, help, kindGauge)
	m.gauge = &Gauge{}
	return m.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	m := r.register(name, help, kindGaugeFunc)
	m.gfn = fn
}

// Histogram registers and returns a histogram with the given ascending
// bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	for i, ub := range buckets {
		if math.IsNaN(ub) || math.IsInf(ub, -1) {
			panic(fmt.Sprintf("telemetry: histogram %q has non-finite bucket bound", name))
		}
		if i > 0 && ub <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not ascending", name))
		}
	}
	// An explicit trailing +Inf bound is the implicit overflow bucket; strip
	// it so exposition never emits a duplicate le="+Inf" series.
	if n := len(buckets); n > 0 && math.IsInf(buckets[n-1], 1) {
		buckets = buckets[:n-1]
	}
	m := r.register(name, help, kindHistogram)
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	m.hist = &Histogram{upper: upper, counts: make([]atomic.Int64, len(upper)+1)}
	return m.hist
}

// fnum renders a float64 the way Prometheus clients do: +Inf/-Inf/NaN
// spelled exactly as the text format expects, shortest round-trip otherwise.
func fnum(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in text exposition format
// (version 0.0.4). Metrics sharing a family name are grouped under one
// HELP/TYPE header, as the format requires.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	// Group by family, keeping families in first-registration order and
	// series within a family in registration order.
	order := make([]string, 0, len(metrics))
	families := make(map[string][]*metric)
	for _, m := range metrics {
		if _, seen := families[m.base]; !seen {
			order = append(order, m.base)
		}
		families[m.base] = append(families[m.base], m)
	}

	var b strings.Builder
	for _, base := range order {
		fam := families[base]
		typ := "counter"
		switch fam[0].kind {
		case kindGauge, kindGaugeFunc:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", base, helpEscaper.Replace(fam[0].help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", base, typ)
		for _, m := range fam {
			rendered := m.renderLabels("")
			series := base
			if rendered != "" {
				series += "{" + rendered + "}"
			}
			switch m.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s %d\n", series, m.counter.Value())
			case kindCounterFunc:
				fmt.Fprintf(&b, "%s %d\n", series, m.cfn())
			case kindGauge:
				fmt.Fprintf(&b, "%s %s\n", series, fnum(m.gauge.Value()))
			case kindGaugeFunc:
				fmt.Fprintf(&b, "%s %s\n", series, fnum(m.gfn()))
			case kindHistogram:
				cum := m.hist.Snapshot()
				bounds := m.hist.Buckets()
				for i, ub := range bounds {
					fmt.Fprintf(&b, "%s_bucket{%s} %d\n",
						base, m.renderLabels(`le="`+fnum(ub)+`"`), cum[i])
				}
				fmt.Fprintf(&b, "%s_bucket{%s} %d\n",
					base, m.renderLabels(`le="+Inf"`), cum[len(cum)-1])
				sumName, countName := base+"_sum", base+"_count"
				if rendered != "" {
					sumName += "{" + rendered + "}"
					countName += "{" + rendered + "}"
				}
				fmt.Fprintf(&b, "%s %s\n", sumName, fnum(m.hist.Sum()))
				fmt.Fprintf(&b, "%s %d\n", countName, m.hist.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series returns the full names of all registered metrics, sorted — a
// diagnostic helper for tests asserting presence of key series.
func (r *Registry) Series() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.index))
	for name := range r.index {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
