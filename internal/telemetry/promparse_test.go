package telemetry

import (
	"math"
	"strings"
	"testing"
)

// TestPromParseRoundTrip feeds WritePrometheus output straight back through
// ParsePrometheus — the two halves must agree, including escapes.
func TestPromParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter(`ops_total{op="read"}`, "ops").Add(41)
	r.Counter(`ops_total{op="wr\"ite"}`, "ops").Add(2)
	r.Gauge("temp", "t").Set(36.5)
	r.Gauge("g_nan", "n").Set(math.NaN())
	h := r.Histogram("lat_seconds", "l", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(10)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParsePrometheus(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParsePrometheus: %v\n%s", err, b.String())
	}

	if v, ok := SampleValue(samples, "ops_total", map[string]string{"op": "read"}); !ok || v != 41 {
		t.Errorf("ops_total{op=read} = %v %v", v, ok)
	}
	if v, ok := SampleValue(samples, "ops_total", map[string]string{"op": `wr"ite`}); !ok || v != 2 {
		t.Errorf("escaped label round trip = %v %v", v, ok)
	}
	if v, ok := SampleValue(samples, "temp", nil); !ok || v != 36.5 {
		t.Errorf("temp = %v %v", v, ok)
	}
	if v, ok := SampleValue(samples, "g_nan", nil); !ok || !math.IsNaN(v) {
		t.Errorf("NaN gauge = %v %v", v, ok)
	}

	hd, ok := ExtractHistogram(samples, "lat_seconds", nil)
	if !ok {
		t.Fatal("histogram not extracted")
	}
	if hd.Count != 3 || len(hd.Upper) != 3 || !math.IsInf(hd.Upper[2], 1) {
		t.Fatalf("histogram = %+v", hd)
	}
	if hd.Cum[0] != 1 || hd.Cum[1] != 2 || hd.Cum[2] != 3 {
		t.Fatalf("cumulative counts = %v", hd.Cum)
	}
}

func TestPromParseErrors(t *testing.T) {
	for _, bad := range []string{
		"novalue",
		"x{unclosed=\"v 1",
		"x{k=\"v\"} notafloat",
	} {
		if _, err := ParsePrometheus(strings.NewReader(bad)); err == nil {
			t.Errorf("ParsePrometheus(%q) accepted malformed input", bad)
		}
	}
	// Comments and blanks are fine.
	samples, err := ParsePrometheus(strings.NewReader("# HELP a b\n\na 1\n"))
	if err != nil || len(samples) != 1 {
		t.Errorf("comment handling: %v %v", samples, err)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := &HistogramData{
		Upper: []float64{1, 2, 4, math.Inf(1)},
		Cum:   []int64{10, 30, 40, 40},
	}
	// p50: rank 20 lands in (1,2] which holds cumulative 10→30:
	// 1 + (2-1)*(20-10)/20 = 1.5.
	if got := h.Quantile(0.5); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p50 = %v, want 1.5", got)
	}
	// p99: rank 39.6 in (2,4]: 2 + 2*(39.6-30)/10 = 3.92.
	if got := h.Quantile(0.99); math.Abs(got-3.92) > 1e-9 {
		t.Errorf("p99 = %v, want 3.92", got)
	}
	// Mass in the +Inf bucket clamps to the last finite bound.
	hInf := &HistogramData{Upper: []float64{1, math.Inf(1)}, Cum: []int64{0, 5}}
	if got := hInf.Quantile(0.5); got != 1 {
		t.Errorf("overflow quantile = %v, want 1", got)
	}
	if !math.IsNaN((&HistogramData{}).Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
}
