//go:build race

package smb

// raceEnabled reports whether the race detector is compiled in; the
// zero-allocation guards skip under -race, whose instrumentation allocates.
const raceEnabled = true
