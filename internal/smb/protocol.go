package smb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire protocol for the TCP transport. Every message is a length-prefixed
// frame:
//
//	[4B frame length (excluding itself)] [1B opcode/status] [payload]
//
// Integers are little-endian fixed width; strings are 2-byte length +
// bytes. The protocol is synchronous RPC: one response per request, in
// order. It stands in for the RDMA verbs + RDS control channel the paper's
// SMB implements in the kernel.

type opcode byte

const (
	opCreate opcode = iota + 1
	opLookup
	opAttach
	opDetach
	opFree
	opRead
	opWrite
	opAccumulate
)

const (
	statusOK  byte = 0
	statusErr byte = 1
)

// maxFrame guards against corrupt length prefixes (1 GiB of payload is far
// above any weight vector in the paper's models).
const maxFrame = 1 << 30

// ErrFrameTooLarge reports a frame exceeding maxFrame.
var ErrFrameTooLarge = errors.New("smb: frame exceeds size limit")

func writeFrame(w io.Writer, op byte, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = op
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

func readFrame(r io.Reader) (op byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("frame length %d: %w", n, ErrFrameTooLarge)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// payload builder/reader helpers.

type frameWriter struct{ buf []byte }

func (b *frameWriter) u64(v uint64) *frameWriter {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	b.buf = append(b.buf, tmp[:]...)
	return b
}

func (b *frameWriter) str(s string) *frameWriter {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	var tmp [2]byte
	binary.LittleEndian.PutUint16(tmp[:], uint16(len(s)))
	b.buf = append(b.buf, tmp[:]...)
	b.buf = append(b.buf, s...)
	return b
}

func (b *frameWriter) bytes(p []byte) *frameWriter {
	b.buf = append(b.buf, p...)
	return b
}

type frameReader struct {
	buf []byte
	err error
}

func (r *frameReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[:8])
	r.buf = r.buf[8:]
	return v
}

func (r *frameReader) str() string {
	if r.err != nil {
		return ""
	}
	if len(r.buf) < 2 {
		r.err = io.ErrUnexpectedEOF
		return ""
	}
	n := int(binary.LittleEndian.Uint16(r.buf[:2]))
	r.buf = r.buf[2:]
	if len(r.buf) < n {
		r.err = io.ErrUnexpectedEOF
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

func (r *frameReader) rest() []byte {
	if r.err != nil {
		return nil
	}
	b := r.buf
	r.buf = nil
	return b
}
