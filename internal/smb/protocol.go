package smb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Wire protocol for the TCP transport. Every message is a length-prefixed
// frame:
//
//	[4B frame length (excluding itself)] [1B opcode/status] [payload]
//
// Integers are little-endian fixed width; strings are 2-byte length +
// bytes. The protocol is synchronous RPC: one response per request, in
// order. It stands in for the RDMA verbs + RDS control channel the paper's
// SMB implements in the kernel.

type opcode byte

const (
	opCreate opcode = iota + 1
	opLookup
	opAttach
	opDetach
	opFree
	opRead
	opWrite
	opAccumulate
)

const (
	statusOK  byte = 0
	statusErr byte = 1
)

// maxFrame guards against corrupt length prefixes (1 GiB of payload is far
// above any weight vector in the paper's models).
const maxFrame = 1 << 30

// ErrFrameTooLarge reports a frame exceeding maxFrame.
var ErrFrameTooLarge = errors.New("smb: frame exceeds size limit")

func writeFrame(w io.Writer, op byte, payload []byte) error {
	var scratch []byte
	return writeFrameInto(w, op, payload, &scratch)
}

// writeFrameInto is writeFrame with a caller-owned, grow-only scratch: the
// header and payload are staged into one buffer and sent with a single
// Write. Local byte arrays escape when passed through the io.Writer
// interface, so the reusable scratch is what keeps the steady-state wire
// path allocation-free (and it halves the syscalls per frame).
//
//shm:hotpath
func writeFrameInto(w io.Writer, op byte, payload []byte, scratch *[]byte) error {
	if len(payload)+1 > maxFrame {
		return ErrFrameTooLarge
	}
	need := 5 + len(payload)
	if cap(*scratch) < need {
		*scratch = make([]byte, need)
	}
	buf := (*scratch)[:need]
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)+1))
	buf[4] = op
	copy(buf[5:], payload)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) (op byte, payload []byte, err error) {
	var scratch []byte
	return readFrameInto(r, &scratch)
}

// readFrameInto is readFrame with a caller-owned, grow-only scratch buffer:
// the returned payload aliases *scratch and is valid until the next call
// with the same scratch. The server's connection loop and the stream
// client reuse one scratch per connection, so steady-state frame reads do
// not allocate.
//
//shm:hotpath
func readFrameInto(r io.Reader, scratch *[]byte) (op byte, payload []byte, err error) {
	// The length header is read into the scratch too: a local [4]byte array
	// would escape through the io.Reader interface and allocate per frame.
	if cap(*scratch) < 4 {
		*scratch = make([]byte, 64)
	}
	hdr := (*scratch)[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("frame length %d: %w", n, ErrFrameTooLarge)
	}
	if uint32(cap(*scratch)) < n {
		*scratch = make([]byte, n)
	}
	body := (*scratch)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// scratchPool recycles transient byte buffers across the package: frame
// bodies, sharded-client probe reads, control-slot decodes. Buffers are
// held through a pointer so Put does not allocate.
var scratchPool = sync.Pool{New: func() any { return new([]byte) }}

// getScratch returns a length-n byte buffer from the pool (contents
// undefined) plus the handle to return it with putScratch.
func getScratch(n int) ([]byte, *[]byte) {
	p := scratchPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	return (*p)[:n], p
}

func putScratch(p *[]byte) { scratchPool.Put(p) }

// payload builder/reader helpers.

type frameWriter struct{ buf []byte }

func (b *frameWriter) u64(v uint64) *frameWriter {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	b.buf = append(b.buf, tmp[:]...)
	return b
}

func (b *frameWriter) str(s string) *frameWriter {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	var tmp [2]byte
	binary.LittleEndian.PutUint16(tmp[:], uint16(len(s)))
	b.buf = append(b.buf, tmp[:]...)
	b.buf = append(b.buf, s...)
	return b
}

func (b *frameWriter) bytes(p []byte) *frameWriter {
	b.buf = append(b.buf, p...)
	return b
}

type frameReader struct {
	buf []byte
	err error
}

func (r *frameReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[:8])
	r.buf = r.buf[8:]
	return v
}

func (r *frameReader) str() string {
	if r.err != nil {
		return ""
	}
	if len(r.buf) < 2 {
		r.err = io.ErrUnexpectedEOF
		return ""
	}
	n := int(binary.LittleEndian.Uint16(r.buf[:2]))
	r.buf = r.buf[2:]
	if len(r.buf) < n {
		r.err = io.ErrUnexpectedEOF
		return ""
	}
	//lint:ignore hotalloc str decodes only statusErr replies, where the copied message becomes the error the caller returns
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

// skip advances past n bytes of padding.
func (r *frameReader) skip(n int) {
	if r.err != nil {
		return
	}
	if len(r.buf) < n {
		r.err = io.ErrUnexpectedEOF
		return
	}
	r.buf = r.buf[n:]
}

func (r *frameReader) rest() []byte {
	if r.err != nil {
		return nil
	}
	b := r.buf
	r.buf = nil
	return b
}
