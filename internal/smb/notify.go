package smb

import (
	"errors"
	"fmt"
	"sync"

	"shmcaffe/internal/telemetry"
)

// Update notification (paper Sec. III-B: SMB "provides APIs to the
// application process to exchange control messages, such as ... update
// notification"). Every Write or Accumulate that touches a segment bumps
// its version; clients can poll the version or block until it advances.
// ShmCaffe itself polls progress counters, but notification lets library
// users build push-style coordination (e.g. an evaluator that wakes
// whenever Wg changes) without busy-reading multi-hundred-MB segments.

// ErrWaitCanceled is returned from a blocked WaitUpdate when the wait is
// canceled before the version advances — a server answering while it shuts
// down, or a caller abandoning the watch. Retry-able by design: a
// supervised client re-issues the wait once the server is back.
var ErrWaitCanceled = errors.New("smb: wait canceled")

// Notifier is the optional notification interface implemented by the
// in-process and TCP clients (segment versions are per-server, so the
// sharded client intentionally does not implement it).
type Notifier interface {
	// Version returns the segment's current update version (0 = never
	// written).
	Version(h Handle) (uint64, error)
	// WaitUpdate blocks until the segment's version exceeds since, and
	// returns the new version.
	WaitUpdate(h Handle, since uint64) (uint64, error)
}

// versioned augments the segment table with version counters. Stored in a
// side table keyed by segment pointer so the hot data path stays lean.
//
// Waiting is channel-based rather than sync.Cond-based so a wait can be
// canceled: cond.Wait has no way out except a broadcast, which is exactly
// how the seed's server deadlocked on Close with a handler parked in a
// WaitUpdate that no further write would ever release.
type versionTable struct {
	mu sync.Mutex
	v  map[*segment]uint64 // guarded by mu
	ch chan struct{}       // guarded by mu; nil until a waiter needs one, closed on bump
}

func newVersionTable() *versionTable {
	return &versionTable{v: make(map[*segment]uint64)}
}

func (t *versionTable) bump(seg *segment) {
	if seg.shm != nil {
		// Exported segments keep their version in the shared control page —
		// the one place both the server and every mapping process can bump
		// and futex-wait on. The local table still advances so in-process
		// channel waiters (none today for exported segments, but harmless)
		// stay live.
		seg.shm.bumpVersion()
	}
	t.mu.Lock()
	//lint:ignore hotalloc the insert happens once per segment lifetime; steady-state bumps overwrite an existing key and do not grow the table
	t.v[seg]++
	ch := t.ch
	t.ch = nil
	t.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

func (t *versionTable) get(seg *segment) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.v[seg]
}

// wait blocks until seg's version exceeds since or cancel closes (nil
// cancel never fires, preserving the block-forever contract); blocked
// reports whether the caller actually slept.
func (t *versionTable) wait(seg *segment, since uint64, cancel <-chan struct{}) (v uint64, blocked bool, err error) {
	t.mu.Lock()
	for t.v[seg] <= since {
		if t.ch == nil {
			// Lazily created so version bumps with nobody listening (the
			// steady-state data path) allocate nothing.
			t.ch = make(chan struct{})
		}
		ch := t.ch
		t.mu.Unlock()
		blocked = true
		select {
		case <-ch:
		case <-cancel:
			return 0, blocked, ErrWaitCanceled
		}
		t.mu.Lock()
	}
	v = t.v[seg]
	t.mu.Unlock()
	return v, blocked, nil
}

// Version implements Notifier for the Store (and through it LocalClient).
func (s *Store) Version(h Handle) (uint64, error) {
	seg, err := s.lookupHandle(h)
	if err != nil {
		return 0, err
	}
	if seg.shm != nil {
		return seg.shm.version(), nil
	}
	return s.versions.get(seg), nil
}

// WaitUpdate implements Notifier for the Store.
func (s *Store) WaitUpdate(h Handle, since uint64) (uint64, error) {
	return s.WaitUpdateCancel(h, since, nil)
}

// WaitUpdateCancel is WaitUpdate with a cancellation channel: when cancel
// closes before the version advances, the call returns ErrWaitCanceled
// instead of blocking forever. The TCP server passes its shutdown channel
// here so Close never deadlocks behind a parked watcher.
func (s *Store) WaitUpdateCancel(h Handle, since uint64, cancel <-chan struct{}) (uint64, error) {
	seg, err := s.lookupHandle(h)
	if err != nil {
		return 0, err
	}
	var (
		v       uint64
		blocked bool
	)
	if seg.shm != nil {
		// Cross-process bumps arrive by futex wake, never by the local
		// channel — exported segments must wait on the shared word.
		v, blocked, err = seg.shm.waitVersion(since, cancel)
	} else {
		v, blocked, err = s.versions.wait(seg, since, cancel)
	}
	if blocked {
		s.stats.notifyWakeups.Add(1)
	}
	if err != nil {
		return 0, fmt.Errorf("wait on %q since %d: %w", seg.name, since, err)
	}
	return v, nil
}

// Version implements Notifier.
func (c *LocalClient) Version(h Handle) (uint64, error) { return c.store.Version(h) }

// WaitUpdate implements Notifier.
func (c *LocalClient) WaitUpdate(h Handle, since uint64) (uint64, error) {
	return c.store.WaitUpdate(h, since)
}

var _ Notifier = (*LocalClient)(nil)
var _ Notifier = (*StreamClient)(nil)

// Version implements Notifier over the wire.
func (c *StreamClient) Version(h Handle) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beginLocked().u64(uint64(h))
	resp, err := c.roundTripLocked(opVersion)
	if err != nil {
		return 0, err
	}
	fr := frameReader{buf: resp}
	return fr.u64(), fr.err
}

// WaitUpdate implements Notifier over the wire. It blocks the connection
// until the update arrives, so watchers should use a dedicated connection.
// With a wait timeout configured (SetTimeouts), a wait that outlives the
// deadline fails with os.ErrDeadlineExceeded and poisons the connection —
// the server's eventual reply can no longer be paired with a request, so
// the connection must not be reused.
func (c *StreamClient) WaitUpdate(h Handle, since uint64) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beginLocked().u64(uint64(h)).u64(since)
	resp, err := c.roundTripLocked(opWaitUpdate)
	if err != nil {
		return 0, err
	}
	fr := frameReader{buf: resp}
	return fr.u64(), fr.err
}

// ensure the protocol knows the new opcodes.
const (
	opVersion    opcode = 9
	opWaitUpdate opcode = 10
)

// dispatchNotify serves the notification opcodes. Responses build into the
// connection's reusable frame builder (already reset by dispatch) — a local
// frameWriter here used to allocate its backing array on every Version and
// WaitUpdate reply.
func (s *Server) dispatchNotify(op opcode, payload []byte, cs *connState) ([]byte, error) {
	fr := frameReader{buf: payload}
	switch op {
	//lint:ignore wireproto control-plane verb: one frame per session/segment, not a data-path latency
	case opVersion:
		h := fr.u64()
		if fr.err != nil {
			return nil, fr.err
		}
		v, err := s.store.Version(Handle(h))
		if err != nil {
			return nil, err
		}
		return cs.fw.u64(v).buf, nil
	case opWaitUpdate:
		h := fr.u64()
		since := fr.u64()
		if fr.err != nil {
			return nil, fr.err
		}
		// The server's shutdown channel cancels parked waits, so Close
		// drains handler goroutines instead of deadlocking behind them.
		sp := s.armSpan(cs, telemetry.PhaseSrvWait)
		v, err := s.store.WaitUpdateCancel(Handle(h), since, s.done)
		sp.End()
		if err != nil {
			if errors.Is(err, ErrWaitCanceled) {
				telemetry.RecordEvent(telemetry.EvWaitCanceled, 0, 0, 0)
			}
			return nil, err
		}
		return cs.fw.u64(v).buf, nil
	default:
		return s.dispatchShm(op, payload, cs)
	}
}
