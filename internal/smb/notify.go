package smb

import (
	"fmt"
	"sync"
)

// Update notification (paper Sec. III-B: SMB "provides APIs to the
// application process to exchange control messages, such as ... update
// notification"). Every Write or Accumulate that touches a segment bumps
// its version; clients can poll the version or block until it advances.
// ShmCaffe itself polls progress counters, but notification lets library
// users build push-style coordination (e.g. an evaluator that wakes
// whenever Wg changes) without busy-reading multi-hundred-MB segments.

// Notifier is the optional notification interface implemented by the
// in-process and TCP clients (segment versions are per-server, so the
// sharded client intentionally does not implement it).
type Notifier interface {
	// Version returns the segment's current update version (0 = never
	// written).
	Version(h Handle) (uint64, error)
	// WaitUpdate blocks until the segment's version exceeds since, and
	// returns the new version.
	WaitUpdate(h Handle, since uint64) (uint64, error)
}

// versioned augments the segment table with version counters. Stored in a
// side table keyed by segment pointer so the hot data path stays lean.
type versionTable struct {
	mu   sync.Mutex
	cond *sync.Cond
	v    map[*segment]uint64 // guarded by mu
}

func newVersionTable() *versionTable {
	t := &versionTable{v: make(map[*segment]uint64)}
	t.cond = sync.NewCond(&t.mu)
	return t
}

func (t *versionTable) bump(seg *segment) {
	t.mu.Lock()
	t.v[seg]++
	t.mu.Unlock()
	t.cond.Broadcast()
}

func (t *versionTable) get(seg *segment) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.v[seg]
}

// wait blocks until seg's version exceeds since; blocked reports whether the
// caller actually slept (vs. the version already being ahead).
func (t *versionTable) wait(seg *segment, since uint64) (v uint64, blocked bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for t.v[seg] <= since {
		blocked = true
		t.cond.Wait()
	}
	return t.v[seg], blocked
}

// Version implements Notifier for the Store (and through it LocalClient).
func (s *Store) Version(h Handle) (uint64, error) {
	seg, err := s.lookupHandle(h)
	if err != nil {
		return 0, err
	}
	return s.versions.get(seg), nil
}

// WaitUpdate implements Notifier for the Store.
func (s *Store) WaitUpdate(h Handle, since uint64) (uint64, error) {
	seg, err := s.lookupHandle(h)
	if err != nil {
		return 0, err
	}
	v, blocked := s.versions.wait(seg, since)
	if blocked {
		s.stats.notifyWakeups.Add(1)
	}
	return v, nil
}

// Version implements Notifier.
func (c *LocalClient) Version(h Handle) (uint64, error) { return c.store.Version(h) }

// WaitUpdate implements Notifier.
func (c *LocalClient) WaitUpdate(h Handle, since uint64) (uint64, error) {
	return c.store.WaitUpdate(h, since)
}

var _ Notifier = (*LocalClient)(nil)
var _ Notifier = (*StreamClient)(nil)

// Version implements Notifier over the wire.
func (c *StreamClient) Version(h Handle) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beginLocked().u64(uint64(h))
	resp, err := c.roundTripLocked(opVersion)
	if err != nil {
		return 0, err
	}
	fr := frameReader{buf: resp}
	return fr.u64(), fr.err
}

// WaitUpdate implements Notifier over the wire. It blocks the connection
// until the update arrives, so watchers should use a dedicated connection.
func (c *StreamClient) WaitUpdate(h Handle, since uint64) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beginLocked().u64(uint64(h)).u64(since)
	resp, err := c.roundTripLocked(opWaitUpdate)
	if err != nil {
		return 0, err
	}
	fr := frameReader{buf: resp}
	return fr.u64(), fr.err
}

// ensure the protocol knows the new opcodes.
const (
	opVersion    opcode = 9
	opWaitUpdate opcode = 10
)

// dispatchNotify serves the notification opcodes. Responses build into the
// connection's reusable frame builder (already reset by dispatch) — a local
// frameWriter here used to allocate its backing array on every Version and
// WaitUpdate reply.
func (s *Server) dispatchNotify(op opcode, payload []byte, cs *connState) ([]byte, error) {
	fr := frameReader{buf: payload}
	switch op {
	case opVersion:
		h := fr.u64()
		if fr.err != nil {
			return nil, fr.err
		}
		v, err := s.store.Version(Handle(h))
		if err != nil {
			return nil, err
		}
		return cs.fw.u64(v).buf, nil
	case opWaitUpdate:
		h := fr.u64()
		since := fr.u64()
		if fr.err != nil {
			return nil, fr.err
		}
		v, err := s.store.WaitUpdate(Handle(h), since)
		if err != nil {
			return nil, err
		}
		return cs.fw.u64(v).buf, nil
	default:
		return nil, fmt.Errorf("smb: unknown opcode %d", op)
	}
}
