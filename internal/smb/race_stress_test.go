package smb

import (
	"fmt"
	"sync"
	"testing"

	"shmcaffe/internal/tensor"
)

// Race-stress suite: hammer every SMB verb from many goroutines at once.
// Run under -race (scripts/check.sh tier 2) this turns the store's
// concurrency contract — overlapping Reads, per-segment Write exclusion,
// globally exclusive Accumulate, and a mutating handle table — into a
// machine-checked property instead of a comment. The final assertion also
// proves the paper's no-lost-increments guarantee (Fig. 6 T.A3): with
// every Accumulate exclusive, the global weight must equal the exact sum
// of all pushed increments.

const (
	stressWorkers = 8
	stressIters   = 40
	stressVals    = 64
)

// stressClient drives one Client as stressWorkers concurrent SEASGD-style
// workers plus a reader/attacher goroutine per worker.
func stressClient(t *testing.T, client Client) {
	t.Helper()

	gKey, err := client.Create("stress/wg", stressVals*4)
	if err != nil {
		t.Fatalf("create global: %v", err)
	}

	ones := tensor.Float32Bytes(onesVec(stressVals))
	var wg sync.WaitGroup
	errCh := make(chan error, 2*stressWorkers)
	for w := 0; w < stressWorkers; w++ {
		w := w
		// Writer: private increment segment, accumulate into the global.
		wg.Add(1)
		go func() {
			defer wg.Done()
			errCh <- func() error {
				hg, err := client.Attach(gKey)
				if err != nil {
					return fmt.Errorf("worker %d attach: %w", w, err)
				}
				dKey, err := client.Create(fmt.Sprintf("stress/dw%d", w), stressVals*4)
				if err != nil {
					return fmt.Errorf("worker %d create: %w", w, err)
				}
				hd, err := client.Attach(dKey)
				if err != nil {
					return fmt.Errorf("worker %d attach dw: %w", w, err)
				}
				for i := 0; i < stressIters; i++ {
					if err := client.Write(hd, 0, ones); err != nil {
						return fmt.Errorf("worker %d write: %w", w, err)
					}
					if err := client.Accumulate(hg, hd); err != nil {
						return fmt.Errorf("worker %d accumulate: %w", w, err)
					}
				}
				if err := client.Detach(hd); err != nil {
					return fmt.Errorf("worker %d detach: %w", w, err)
				}
				return client.Detach(hg)
			}()
		}()
		// Reader: churns Attach/Read/Detach against the same segment.
		wg.Add(1)
		go func() {
			defer wg.Done()
			errCh <- func() error {
				buf := make([]byte, stressVals*4)
				for i := 0; i < stressIters; i++ {
					h, err := client.Attach(gKey)
					if err != nil {
						return fmt.Errorf("reader %d attach: %w", w, err)
					}
					if err := client.Read(h, 0, buf); err != nil {
						return fmt.Errorf("reader %d read: %w", w, err)
					}
					if err := client.Detach(h); err != nil {
						return fmt.Errorf("reader %d detach: %w", w, err)
					}
				}
				return nil
			}()
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	// No lost increments: exclusive Accumulate means the global is exactly
	// workers*iters in every slot (exact in float32 at these magnitudes).
	h, err := client.Attach(gKey)
	if err != nil {
		t.Fatalf("final attach: %v", err)
	}
	buf := make([]byte, stressVals*4)
	if err := client.Read(h, 0, buf); err != nil {
		t.Fatalf("final read: %v", err)
	}
	got, err := tensor.Float32FromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	want := float32(stressWorkers * stressIters)
	for i, v := range got {
		if v != want {
			t.Fatalf("global[%d] = %v, want %v (lost increments)", i, v, want)
		}
	}
}

func onesVec(n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// TestStoreRaceStress hammers the in-process Store.
func TestStoreRaceStress(t *testing.T) {
	stressClient(t, NewLocalClient(NewStore()))
}

// TestShardedRaceStress hammers the sharded client over three backing
// stores, exercising the fan-out paths and the shared handle table.
func TestShardedRaceStress(t *testing.T) {
	sc, err := NewShardedClient(
		NewLocalClient(NewStore()),
		NewLocalClient(NewStore()),
		NewLocalClient(NewStore()),
	)
	if err != nil {
		t.Fatal(err)
	}
	stressClient(t, sc)
}

// TestServerRaceStress hammers the TCP transport end to end: one server,
// one StreamClient per logical worker, all verbs concurrent.
func TestServerRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("network stress in -short mode")
	}
	store := NewStore()
	srv, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve() //lint:ignore goleak joined by srv.Close via the server's WaitGroup

	gKey, err := store.Create("stress/wg", stressVals*4)
	if err != nil {
		t.Fatal(err)
	}
	ones := tensor.Float32Bytes(onesVec(stressVals))

	var wg sync.WaitGroup
	errCh := make(chan error, stressWorkers)
	for w := 0; w < stressWorkers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			errCh <- func() error {
				client, err := Dial(srv.Addr())
				if err != nil {
					return err
				}
				defer client.Close()
				hg, err := client.Attach(gKey)
				if err != nil {
					return err
				}
				dKey, err := client.Create(fmt.Sprintf("stress/tcp%d", w), stressVals*4)
				if err != nil {
					return err
				}
				hd, err := client.Attach(dKey)
				if err != nil {
					return err
				}
				buf := make([]byte, stressVals*4)
				for i := 0; i < stressIters; i++ {
					if err := client.Write(hd, 0, ones); err != nil {
						return err
					}
					if err := client.Accumulate(hg, hd); err != nil {
						return err
					}
					if err := client.Read(hg, 0, buf); err != nil {
						return err
					}
				}
				return nil
			}()
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	h, err := store.Attach(gKey)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, stressVals*4)
	if err := store.Read(h, 0, buf); err != nil {
		t.Fatal(err)
	}
	got, err := tensor.Float32FromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	want := float32(stressWorkers * stressIters)
	for i, v := range got {
		if v != want {
			t.Fatalf("global[%d] = %v, want %v (lost increments)", i, v, want)
		}
	}
}
