package smb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire-level trace propagation. A client that has negotiated the trace
// feature may prefix any request with a fixed-size trace header, carried by
// setting the high bit of the opcode byte:
//
//	[4B len] [1B opcode|0x80] [8B traceID] [8B spanID] [4B rank] [4B iter] [payload]
//
// The server strips the header before dispatch and records its own spans
// (dispatch, accumulate apply, chunk pipeline, waits) as children of the
// client's span, so a merged Chrome trace shows the causal chain
// worker push → server apply across processes.
//
// Backward compatibility is by negotiation, not by guessing: a client only
// sets the flag after an opHello exchange in which the server granted the
// trace feature. An old server answers opHello with a remote "unknown
// opcode" error — a clean, correctly-framed reply — so a new client simply
// runs untraced. An old client never sets the flag, so a new server serves
// it byte-for-byte as before. No frame with the flag ever reaches a peer
// that cannot parse it.

// traceFlagBit marks a request frame as carrying the trace extension
// header. It is an opcode-byte modifier, not an opcode: real opcodes stay
// below 0x80. Deliberately NOT named op* — the wireproto lint analyzer
// checks dispatch coverage of opcode constants, and this is not one.
const traceFlagBit = 0x80

// traceHeaderLen is the fixed size of the trace extension header.
const traceHeaderLen = 24

// opHello negotiates optional protocol features. Request payload: u64
// bitmask of features the client wants. Reply payload: u64 bitmask of
// features the server grants (always a subset). Old servers answer with an
// "unknown opcode" remote error, which clients treat as "no features".
const opHello opcode = 14

// helloFeatureTrace is the trace-extension feature bit.
const helloFeatureTrace uint64 = 1 << 0

// TraceContext identifies the client-side span on whose behalf a request is
// sent. TraceID groups one logical operation (e.g. one parameter push);
// SpanID is the client span the server's spans become children of. Rank and
// Iter ride along for labeling. The zero TraceContext means "untraced".
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
	Rank    uint32
	Iter    uint32
}

// TraceCarrier is implemented by clients that can stamp outgoing requests
// with a trace context (StreamClient, SupervisedClient). Callers set the
// context before an operation and clear it after; an empty context (zero
// TraceID) disables stamping.
type TraceCarrier interface {
	SetTraceContext(tc TraceContext)
	ClearTraceContext()
}

// writeFrameTracedInto is writeFrameInto plus the trace extension header:
// the opcode byte gets traceFlagBit and the 24-byte header is staged
// between it and the payload, all in one buffer and one Write.
//
//shm:hotpath
func writeFrameTracedInto(w io.Writer, op byte, payload []byte, tc TraceContext, scratch *[]byte) error {
	if len(payload)+1+traceHeaderLen > maxFrame {
		return ErrFrameTooLarge
	}
	need := 5 + traceHeaderLen + len(payload)
	if cap(*scratch) < need {
		*scratch = make([]byte, need)
	}
	buf := (*scratch)[:need]
	binary.LittleEndian.PutUint32(buf[:4], uint32(need-4))
	buf[4] = op | traceFlagBit
	binary.LittleEndian.PutUint64(buf[5:13], tc.TraceID)
	binary.LittleEndian.PutUint64(buf[13:21], tc.SpanID)
	binary.LittleEndian.PutUint32(buf[21:25], tc.Rank)
	binary.LittleEndian.PutUint32(buf[25:29], tc.Iter)
	copy(buf[29:], payload)
	_, err := w.Write(buf)
	return err
}

// NegotiateTrace performs the opHello feature exchange and reports whether
// the server granted the trace extension. Against an old server the hello
// comes back as a clean, correctly-framed "unknown opcode" remote error —
// the method then returns (false, nil) and the connection stays fully
// usable, just untraced. Only transport failures surface as errors.
func (c *StreamClient) NegotiateTrace() (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.traceOK = false
	c.beginLocked().u64(helloFeatureTrace)
	resp, err := c.roundTripLocked(opHello)
	if err != nil {
		if errors.Is(err, ErrTransport) {
			return false, err
		}
		return false, nil // old server: opcode rejected, framing intact
	}
	fr := frameReader{buf: resp}
	granted := fr.u64()
	if fr.err != nil {
		return false, fr.err
	}
	c.traceOK = granted&helloFeatureTrace != 0
	return c.traceOK, nil
}

// SetTraceContext implements TraceCarrier: while tc is nonzero (and the
// server granted the feature), every request is stamped with it.
func (c *StreamClient) SetTraceContext(tc TraceContext) {
	c.mu.Lock()
	c.tc = tc
	c.mu.Unlock()
}

// ClearTraceContext implements TraceCarrier.
func (c *StreamClient) ClearTraceContext() {
	c.mu.Lock()
	c.tc = TraceContext{}
	c.mu.Unlock()
}

var _ TraceCarrier = (*StreamClient)(nil)

// parseTraceExt splits a flagged request body into its trace context and
// the real payload. An undersized header is a framing error: the server
// must drop the connection rather than reply, because the request may be a
// streamed chunk frame that expects no reply — answering it would desync
// the request/response pairing.
func parseTraceExt(payload []byte) (TraceContext, []byte, error) {
	if len(payload) < traceHeaderLen {
		return TraceContext{}, nil, fmt.Errorf("smb: truncated trace header (%d bytes)", len(payload))
	}
	tc := TraceContext{
		TraceID: binary.LittleEndian.Uint64(payload[0:8]),
		SpanID:  binary.LittleEndian.Uint64(payload[8:16]),
		Rank:    binary.LittleEndian.Uint32(payload[16:20]),
		Iter:    binary.LittleEndian.Uint32(payload[20:24]),
	}
	return tc, payload[traceHeaderLen:], nil
}
