package smb

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"
)

// Scatter-gather TCP path (DESIGN.md §16): the frame protocol's bytes are
// unchanged, but bulk payloads stop being staged. Outbound, header and
// payload leave in one writev (net.Buffers) — the payload goes out of the
// caller's buffer, and a chunked WRITE+ACCUMULATE sends its whole pipeline
// (every chunk frame plus the End frame) as a single vectored write.
// Inbound, a bulk Read reply lands directly in the caller's destination
// buffer. The iovec list and the chunk-header slab are registered per
// connection and grow-only, so the steady state allocates nothing.

// sgMinPayload is the payload size below which vectoring is not worth it:
// tiny frames are cheaper staged into one contiguous write than described
// to the kernel as two iovecs.
const sgMinPayload = 4 << 10

// EnableScatterGather switches the client's bulk verbs to the vectored
// path. Only honored on transports with real writev support (TCP, unix
// sockets); elsewhere net.Buffers would degrade into one syscall per
// iovec, which is strictly worse than staging.
func (c *StreamClient) EnableScatterGather(on bool) {
	c.mu.Lock()
	c.sg = on && connWritev(c.conn)
	c.mu.Unlock()
}

// connWritev reports whether conn reaches the kernel's writev via
// net.Buffers.
func connWritev(conn io.ReadWriteCloser) bool {
	switch conn.(type) {
	case *net.TCPConn, *net.UnixConn:
		return true
	}
	return false
}

// vecWriter is a registered iovec list: the [][]byte backing is grow-only
// and owned by one connection, and the net.Buffers header lives inside the
// struct so WriteTo's pointer receiver never forces a fresh heap slice
// header per write (a local `net.Buffers` escapes — one allocation per op,
// exactly what the registered-buffer design exists to avoid).
type vecWriter struct {
	vec  [][]byte    // registered backing, grow-only
	bufs net.Buffers // transient WriteTo view into vec's backing
}

//shm:hotpath
func (vw *vecWriter) reset() { vw.vec = vw.vec[:0] }

//shm:hotpath
func (vw *vecWriter) add(b []byte) {
	//lint:ignore hotalloc the iovec backing is registered per connection and grow-only
	vw.vec = append(vw.vec, b)
}

// writeTo flushes the gathered iovecs as one vectored write and drops the
// payload references so large buffers are not pinned between ops.
//
//shm:hotpath
func (vw *vecWriter) writeTo(w io.Writer) error {
	vw.bufs = net.Buffers(vw.vec)
	_, err := vw.bufs.WriteTo(w) //lint:ignore netdeadline callers arm the connection write deadline before each flush
	vw.bufs = nil
	for i := range vw.vec {
		vw.vec[i] = nil
	}
	vw.vec = vw.vec[:0]
	return err
}

// writeFrameVec writes one frame as [header][payload] in a single vectored
// write, skipping writeFrameInto's staging copy of the payload. The
// server's bulk-reply path: protocol bytes are identical either way.
//
//shm:hotpath
func writeFrameVec(w io.Writer, op byte, payload []byte, vw *vecWriter, scratch *[]byte) error {
	if len(payload)+1 > maxFrame {
		return ErrFrameTooLarge
	}
	if cap(*scratch) < 5 {
		//lint:ignore hotalloc grow-only per-connection staging, amortized to zero
		*scratch = make([]byte, 5)
	}
	buf := (*scratch)[:5]
	binary.LittleEndian.PutUint32(buf[:4], uint32(1+len(payload)))
	buf[4] = op
	vw.reset()
	vw.add(buf)
	vw.add(payload)
	return vw.writeTo(w)
}

// sgStampHdr fills a frame header slab entry: length, opcode (trace-flagged
// and trace-stamped when traced), returning the offset where the payload
// head continues. payload is the byte count that follows the slab entry on
// the wire.
//
//shm:hotpath
func sgStampHdr(h []byte, op byte, payload int, traced bool, tc TraceContext) int {
	binary.LittleEndian.PutUint32(h[:4], uint32(len(h)-4+payload))
	if !traced {
		h[4] = op
		return 5
	}
	h[4] = op | traceFlagBit
	binary.LittleEndian.PutUint64(h[5:13], tc.TraceID)
	binary.LittleEndian.PutUint64(h[13:21], tc.SpanID)
	binary.LittleEndian.PutUint32(h[21:25], tc.Rank)
	binary.LittleEndian.PutUint32(h[25:29], tc.Iter)
	return 29
}

// writeFrameVecLocked sends one request frame whose payload is the staged
// head (c.req.buf) followed by body, as a single vectored write — the body
// never passes through the wire-staging buffer. Caller holds c.mu.
//
//shm:hotpath
func (c *StreamClient) writeFrameVecLocked(op byte, body []byte) error {
	head := c.req.buf
	traced := c.traceOK && c.tc.TraceID != 0
	hn := 5 + len(head)
	if traced {
		hn += traceHeaderLen
	}
	if hn-4+len(body) > maxFrame {
		return ErrFrameTooLarge
	}
	if cap(c.wire) < hn {
		//lint:ignore hotalloc grow-only per-client staging, amortized to zero
		c.wire = make([]byte, hn)
	}
	buf := c.wire[:hn]
	// The staged head lives inside buf, so only body counts as trailing
	// payload for the length stamp.
	b := sgStampHdr(buf, op, len(body), traced, c.tc)
	copy(buf[b:], head)
	c.vw.reset()
	c.vw.add(buf)
	c.vw.add(body)
	return c.vw.writeTo(c.conn)
}

// roundTripReadIntoLocked is the direct-landing Read round trip: the reply
// header is parsed from a small stack buffer and, when the payload is the
// expected bulk, it is read straight into dst — no staging through the
// response scratch. Error replies and unexpected sizes take the scratch
// path with unchanged semantics. Caller holds c.mu.
//
//shm:hotpath
func (c *StreamClient) roundTripReadIntoLocked(op opcode, dst []byte) error {
	if c.broken != nil {
		return fmt.Errorf("smb: connection poisoned: %w", c.broken)
	}
	timeout := c.opTimeout
	dc, deadlines := c.conn.(deadlineConn)
	deadlines = deadlines && timeout > 0
	if deadlines {
		dc.SetWriteDeadline(time.Now().Add(timeout))
	}
	var err error
	if c.traceOK && c.tc.TraceID != 0 {
		err = writeFrameTracedInto(c.conn, byte(op), c.req.buf, c.tc, &c.wire)
	} else {
		err = writeFrameInto(c.conn, byte(op), c.req.buf, &c.wire)
	}
	if err != nil {
		return c.poisonLocked(fmt.Errorf("smb request: %w: %w", ErrTransport, err))
	}
	if deadlines {
		dc.SetWriteDeadline(time.Time{})
		dc.SetReadDeadline(time.Now().Add(timeout))
	}
	// The reply header lands in the wire scratch (free again once the
	// request is out): a local array would escape through the io.Reader
	// interface and cost one allocation per op.
	if cap(c.wire) < 5 {
		//lint:ignore hotalloc grow-only per-client staging, amortized to zero
		c.wire = make([]byte, 5)
	}
	hdr := c.wire[:5]
	if _, err := io.ReadFull(c.conn, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return c.poisonLocked(fmt.Errorf("smb server closed connection: %w: %w", ErrTransport, err))
		}
		return c.poisonLocked(fmt.Errorf("smb response: %w: %w", ErrTransport, err))
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n == 0 || n > maxFrame {
		return c.poisonLocked(fmt.Errorf("smb response frame length %d: %w", n, ErrTransport))
	}
	status := hdr[4]
	payLen := int(n) - 1
	if status == statusOK && payLen == len(dst) {
		if _, err := io.ReadFull(c.conn, dst); err != nil {
			return c.poisonLocked(fmt.Errorf("smb response: %w: %w", ErrTransport, err))
		}
		if deadlines {
			dc.SetReadDeadline(time.Time{})
		}
		return nil
	}
	// Slow path: error reply or a size surprise — land in the scratch so
	// the connection framing stays intact either way.
	if cap(c.in) < payLen {
		c.in = make([]byte, payLen)
	}
	buf := c.in[:payLen]
	if _, err := io.ReadFull(c.conn, buf); err != nil {
		return c.poisonLocked(fmt.Errorf("smb response: %w: %w", ErrTransport, err))
	}
	if deadlines {
		dc.SetReadDeadline(time.Time{})
	}
	if status == statusErr {
		fr := frameReader{buf: buf}
		return remoteError(fr.str())
	}
	return fmt.Errorf("smb read returned %d bytes, want %d", payLen, len(dst))
}

// writeAccumulateSGLocked streams a chunked WRITE+ACCUMULATE as one
// vectored write: every chunk header is stamped into the registered header
// slab, the iovec list interleaves headers with slices of the caller's
// data, the End frame rides at the tail, and the whole pipeline reaches
// the kernel in a single net.Buffers write. One reply round trip collects
// the sequence status, exactly like the staged path. Caller holds c.mu.
//
//shm:hotpath
func (c *StreamClient) writeAccumulateSGLocked(dst, src Handle, data []byte) error {
	traced := c.traceOK && c.tc.TraceID != 0
	hb := 5
	if traced {
		hb += traceHeaderLen
	}
	chunkHdr := hb + 24 + writeAccPad // dst, src, off, padding
	endHdr := hb + 16                 // dst, src
	nchunks := (len(data) + writeAccChunkBytes - 1) / writeAccChunkBytes
	need := nchunks*chunkHdr + endHdr
	if cap(c.hdrs) < need {
		//lint:ignore hotalloc the header slab is registered per client and grow-only
		c.hdrs = make([]byte, need)
	}
	slab := c.hdrs[:need]
	c.vw.reset()
	pos := 0
	for off := 0; off < len(data); off += writeAccChunkBytes {
		end := off + writeAccChunkBytes
		if end > len(data) {
			end = len(data)
		}
		h := slab[pos : pos+chunkHdr]
		pos += chunkHdr
		b := sgStampHdr(h, byte(opWriteAccChunk), end-off, traced, c.tc)
		binary.LittleEndian.PutUint64(h[b:b+8], uint64(dst))
		binary.LittleEndian.PutUint64(h[b+8:b+16], uint64(src))
		binary.LittleEndian.PutUint64(h[b+16:b+24], uint64(off))
		h[b+24], h[b+25], h[b+26] = 0, 0, 0
		c.vw.add(h)
		c.vw.add(data[off:end])
	}
	e := slab[pos : pos+endHdr]
	b := sgStampHdr(e, byte(opWriteAccEnd), 0, traced, c.tc)
	binary.LittleEndian.PutUint64(e[b:b+8], uint64(dst))
	binary.LittleEndian.PutUint64(e[b+8:b+16], uint64(src))
	c.vw.add(e)
	dc, deadlines := c.conn.(deadlineConn)
	deadlines = deadlines && c.opTimeout > 0
	if deadlines {
		dc.SetWriteDeadline(time.Now().Add(c.opTimeout))
	}
	err := c.vw.writeTo(c.conn)
	if err != nil {
		// Same poison rationale as the staged chunk stream: the server saw
		// an unknown prefix of the sequence and the framing is desynced.
		return c.poisonLocked(fmt.Errorf("smb chunk stream: %w: %w", ErrTransport, err))
	}
	if deadlines {
		dc.SetWriteDeadline(time.Time{})
	}
	if _, err := c.readReplyLocked(c.opTimeout); err != nil {
		return err
	}
	if c.chunkInst != nil {
		// The whole sequence is unacknowledged until the End reply — the
		// pipeline depth reached equals the chunk count.
		c.chunkInst.depth.Observe(float64(nchunks))
	}
	return nil
}
