package smb

import (
	"fmt"
	"sync"
	"testing"

	"shmcaffe/internal/tensor"
)

// Chunk-striping stress: the tests in race_stress_test.go use segments far
// smaller than one lock stripe, so they never exercise the multi-stripe
// Accumulate path. These tests use segments spanning several chunkBytes
// stripes so that concurrent accumulates genuinely interleave stripe by
// stripe, and the exact-sum invariant must still hold at the end.

// chunkStressVals spans a bit over three lock stripes.
const chunkStressVals = 3*chunkBytes/4 + 1024

func TestChunkedAccumulateRaceStress(t *testing.T) {
	const (
		workers = 4
		iters   = 8
	)
	store := NewStore()
	gKey, err := store.Create("chunk/wg", chunkStressVals*4)
	if err != nil {
		t.Fatal(err)
	}
	hg, err := store.Attach(gKey)
	if err != nil {
		t.Fatal(err)
	}
	ones := tensor.Float32Bytes(onesVec(chunkStressVals))

	var wg sync.WaitGroup
	errCh := make(chan error, 2*workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			errCh <- func() error {
				dKey, err := store.Create(fmt.Sprintf("chunk/dw%d", w), chunkStressVals*4)
				if err != nil {
					return err
				}
				hd, err := store.Attach(dKey)
				if err != nil {
					return err
				}
				for i := 0; i < iters; i++ {
					if err := store.Write(hd, 0, ones); err != nil {
						return err
					}
					if err := store.Accumulate(hg, hd); err != nil {
						return err
					}
				}
				return nil
			}()
		}()
		// Concurrent readers sweep the whole multi-stripe segment.
		wg.Add(1)
		go func() {
			defer wg.Done()
			errCh <- func() error {
				buf := make([]byte, chunkStressVals*4)
				for i := 0; i < iters; i++ {
					if err := store.Read(hg, 0, buf); err != nil {
						return err
					}
				}
				return nil
			}()
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	buf := make([]byte, chunkStressVals*4)
	if err := store.Read(hg, 0, buf); err != nil {
		t.Fatal(err)
	}
	got, err := tensor.Float32FromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	want := float32(workers * iters)
	for i, v := range got {
		if v != want {
			t.Fatalf("global[%d] = %v, want %v (lost increment in stripe %d)",
				i, v, want, i*4/chunkBytes)
		}
	}
}

// TestCrossedAccumulateNoDeadlock pits X += Y against Y += X on
// multi-stripe segments. The per-stripe locks are taken in segment-key
// order, so the crossed pattern must neither deadlock nor race. Both
// segments hold zeros, which keeps every sum exact regardless of
// interleaving.
func TestCrossedAccumulateNoDeadlock(t *testing.T) {
	store := NewStore()
	xKey, err := store.Create("cross/x", chunkStressVals*4)
	if err != nil {
		t.Fatal(err)
	}
	yKey, err := store.Create("cross/y", chunkStressVals*4)
	if err != nil {
		t.Fatal(err)
	}
	hx, err := store.Attach(xKey)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := store.Attach(yKey)
	if err != nil {
		t.Fatal(err)
	}

	const iters = 16
	var wg sync.WaitGroup
	errCh := make(chan error, 3)
	run := func(dst, src Handle) {
		defer wg.Done()
		errCh <- func() error {
			for i := 0; i < iters; i++ {
				if err := store.Accumulate(dst, src); err != nil {
					return err
				}
			}
			return nil
		}()
	}
	wg.Add(3)
	go run(hx, hy)
	go run(hy, hx)
	go run(hx, hx) // self-accumulate takes the single-lock path
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	buf := make([]byte, chunkStressVals*4)
	if err := store.Read(hx, 0, buf); err != nil {
		t.Fatal(err)
	}
	got, err := tensor.Float32FromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("x[%d] = %v, want 0", i, v)
		}
	}
}
