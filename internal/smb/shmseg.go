package smb

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"time"
	"unsafe"
)

// Cross-process shared-memory segments: the zero-copy transport's data
// plane (DESIGN.md §16). When Store.EnableShm is on, Create backs each new
// segment with a memfd instead of a heap slice. The file holds a control
// region followed by the data bytes; co-located clients receive the fd over
// a unix-domain control socket (SCM_RIGHTS, shmctl.go), map the whole file,
// and then run Read/Write/Accumulate directly against the mapped stripes —
// no serialization and no syscalls on the data path, which is the paper's
// one-sided SMB semantics taken literally for the co-located case.
//
// Control region layout (little-endian, page-rounded):
//
//	off  0  u64  magic ("SHMCAFE1")
//	off  8  u32  layout version
//	off 12  u32  stripe count
//	off 16  u64  data size in bytes
//	off 24  u64  segment version (futex word = low 32 bits)
//	off 32  u64  accumulates applied through mappings
//	off 40  u64  bytes accumulated through mappings
//	off 48  u64  writes applied through mappings
//	off 56  u64  reads served through mappings
//	off 64  u32  version-futex waiter count (own cache line: written by
//	             waiters, read by every bump)
//	off 72  u32  snapshot gate: mapped clients hold it in read mode for
//	             each whole mutating op, the server takes it exclusively
//	             to cut a consistent snapshot (layout v3; snapshot.go)
//	off 128 [stripes] × { u32 lock word, u32 reserved }
//
// The per-stripe lock words mirror the server's 64 KiB stripe locks into
// memory both sides can see: the server takes its in-process stripe lock
// first and then the shared word (lease 1); clients take only the shared
// word (lease ≥ 2, one lease per control connection). A lock word is
// owner-lease | contended-bit, futex-waited when contended, and the server
// reaps every word still holding a dead client's lease when that client's
// control connection dies — crash-safety for locks held mid-accumulate.

// ErrShmUnsupported reports that the cross-process shared-memory transport
// is not available: non-linux, a noshm build, or an unsupported
// architecture. Callers fall back to the TCP transport.
var ErrShmUnsupported = errors.New("smb: shared-memory transport unsupported on this platform/build")

// errFDTransport reports an fd-passing attempt over a transport without
// ancillary-data support (TCP, pipes); opShmMap then fails cleanly and the
// client keeps using the wire verbs for that segment.
var errFDTransport = errors.New("smb: transport cannot carry file descriptors")

const (
	shmMagic uint64 = 0x31454641434d4853 // "SHMCAFE1" little-endian
	// v3 added the snapshot gate word at offset 72. The version is
	// validated exactly on map, so a v2 client refuses a v3 segment (and
	// vice versa) and falls back to the wire verbs — the same clean
	// degradation as a non-shm server.
	shmLayoutVersion uint32 = 3

	shmHdrBytes   = 128
	shmLockStride = 8

	shmOffMagic       = 0
	shmOffLayout      = 8
	shmOffStripes     = 12
	shmOffSize        = 16
	shmOffVersion     = 24
	shmOffAccumulates = 32
	shmOffBytesAcc    = 40
	shmOffWrites      = 48
	shmOffReads       = 56
	// shmOffVersionWaiters counts parked waitVersion callers so bumpVersion
	// can skip the FUTEX_WAKE syscall when nobody is listening — the common
	// case on the push path, and the difference between "no syscalls on the
	// data path" being a design claim and being true. It starts the second
	// cache line so waiter arrivals do not bounce the line every bump reads.
	shmOffVersionWaiters = 64
	// shmOffSnapGate is the cross-process snapshot gate (snapshot.go): a
	// reader-count word mapped clients hold in read mode around each whole
	// mutating op, write-locked by the serving process to drain them before
	// copying a consistent cut. Same cache line as the waiter count — both
	// are off the stripe data path.
	shmOffSnapGate = 72
)

// Snapshot-gate word layout: low 30 bits count mapped ops in flight,
// shmSnapGatePending announces a cut (blocking new ops so a storm cannot
// starve the drain), shmSnapGateWriter marks the cut in progress.
const (
	shmSnapGateWriter  uint32 = 1 << 31
	shmSnapGatePending uint32 = 1 << 30
	shmSnapGateReaders uint32 = shmSnapGatePending - 1
)

// shmSnapDrainNs bounds how long a cut waits for mapped in-flight ops to
// drain. Live ops hold the gate for one stripe sweep (microseconds to low
// milliseconds), so a drain that needs the full second means a mapped
// client died mid-op; its orphaned hold cannot be attributed to a lease
// (the count is anonymous by design — one word, many readers), so the cut
// degrades to per-stripe atomicity instead of blocking forever.
const shmSnapDrainNs = int64(1_000_000_000)

// shmLockContended marks a lock word with at least one futex waiter; the
// low 31 bits carry the owner's lease.
const shmLockContended uint32 = 1 << 31

// shmServerLease is the lock-word lease of the serving process itself;
// client leases start at 2 (one per control connection) so a reap can
// name exactly whose words to clear.
const shmServerLease uint32 = 1

// shmLockSpins bounds the CAS spin before a contended acquire parks on the
// futex; stripes are held for one 64 KiB copy+add, so a short spin wins
// most races without burning a syscall.
const shmLockSpins = 128

// shmLockWaitNs bounds one futex sleep on a stripe lock. A bounded wait is
// the liveness backstop: if a reap races a wake (the dead peer's word is
// cleared between our read and our sleep), the waiter re-checks within 10ms
// instead of sleeping forever.
const shmLockWaitNs = int64(10_000_000)

// shmVersionWaitNs slices a WaitUpdate futex sleep so cancellation (server
// shutdown, client close) is honored within 50ms even though cross-process
// version bumps arrive by futex wake, not by channel close.
const shmVersionWaitNs = int64(50_000_000)

// ShmSupported reports whether this build and platform can serve/map
// memfd-backed segments (linux amd64/arm64 without the noshm tag).
func ShmSupported() bool { return shmBuildSupported }

// shmShared is one memfd-backed segment: the mapping, its regions, and the
// fd kept open for the segment's lifetime so it can be passed to clients.
// All fields are immutable after construction; the *contents* of ctl/dat
// carry the cross-process state.
type shmShared struct {
	m        []byte // whole mapping: [ctl pages][data]
	dat      []byte // data region, aliased by segment.data in the server
	fd       int
	ctlBytes int
	stripes  int
}

func pageRound(n int) int {
	p := os.Getpagesize()
	return (n + p - 1) / p * p
}

// newShmShared creates a memfd-backed segment of size data bytes and
// initializes the control header.
func newShmShared(size int) (*shmShared, error) {
	stripes := numChunks(size)
	ctlBytes := pageRound(shmHdrBytes + stripes*shmLockStride)
	fd, m, err := shmCreateOS(ctlBytes + size)
	if err != nil {
		return nil, err
	}
	sh := &shmShared{m: m, dat: m[ctlBytes : ctlBytes+size], fd: fd, ctlBytes: ctlBytes, stripes: stripes}
	sh.word64(shmOffMagic).Store(shmMagic)
	sh.word32(shmOffLayout).Store(shmLayoutVersion)
	sh.word32(shmOffStripes).Store(uint32(stripes))
	sh.word64(shmOffSize).Store(uint64(size))
	return sh, nil
}

// mapShmShared maps a received fd as a client-side view of a segment and
// validates the control header against the geometry the server announced.
func mapShmShared(fd, ctlBytes, size int) (*shmShared, error) {
	m, err := shmMapOS(fd, ctlBytes+size)
	if err != nil {
		return nil, err
	}
	sh := &shmShared{m: m, dat: m[ctlBytes : ctlBytes+size], fd: fd, ctlBytes: ctlBytes, stripes: numChunks(size)}
	if sh.word64(shmOffMagic).Load() != shmMagic ||
		sh.word32(shmOffLayout).Load() != shmLayoutVersion ||
		int(sh.word32(shmOffStripes).Load()) != sh.stripes ||
		sh.word64(shmOffSize).Load() != uint64(size) {
		sh.close()
		return nil, fmt.Errorf("smb: mapped segment control header mismatch")
	}
	return sh, nil
}

// close unmaps and drops the fd. Server-side segments keep theirs for the
// process lifetime (see Store.Free); client mappings close on unmap.
func (sh *shmShared) close() { shmCloseOS(sh.fd, sh.m) }

// word32/word64 view a control-region offset as an atomic. The mapping is
// page-aligned and every header offset is naturally aligned, so the casts
// are valid on both supported architectures.
func (sh *shmShared) word32(off int) *atomic.Uint32 {
	return (*atomic.Uint32)(unsafe.Pointer(&sh.m[off]))
}

func (sh *shmShared) word64(off int) *atomic.Uint64 {
	return (*atomic.Uint64)(unsafe.Pointer(&sh.m[off]))
}

func (sh *shmShared) lockWord(ci int) *atomic.Uint32 {
	return sh.word32(shmHdrBytes + ci*shmLockStride)
}

// lockStripe acquires stripe ci's shared lock word for lease. Fast path is
// one CAS; contention spins briefly, then marks the word contended and
// parks on the futex. A waiter that slept re-acquires with the contended
// bit pre-set — there may be other sleepers, and unlock must wake them.
//
//shm:hotpath
func (sh *shmShared) lockStripe(ci int, lease uint32) {
	w := sh.lockWord(ci)
	if w.CompareAndSwap(0, lease) {
		return
	}
	own := lease
	for spins := 0; ; {
		if w.CompareAndSwap(0, own) {
			return
		}
		if spins < shmLockSpins {
			spins++
			continue
		}
		cur := w.Load()
		if cur == 0 {
			continue
		}
		if cur&shmLockContended == 0 {
			if !w.CompareAndSwap(cur, cur|shmLockContended) {
				continue
			}
			cur |= shmLockContended
		}
		futexWait(w, cur, shmLockWaitNs)
		own = lease | shmLockContended
		spins = 0
	}
}

// unlockStripe releases stripe ci's shared lock word, waking futex waiters
// when the word was marked contended. The release is a lease-checked CAS,
// not a blind swap: if the holder's control connection died and the server
// already reaped (and someone else re-acquired) the word, an unconditional
// store here would release a lock we no longer own.
//
//shm:hotpath
func (sh *shmShared) unlockStripe(ci int, lease uint32) {
	w := sh.lockWord(ci)
	if w.CompareAndSwap(lease, 0) {
		return
	}
	if w.CompareAndSwap(lease|shmLockContended, 0) {
		futexWakeAll(w)
		return
	}
	// The word no longer carries our lease — it was reaped out from under
	// us. Whoever owns it now is responsible for it; touching it would
	// corrupt their critical section.
}

// reapLease force-releases every stripe lock word still held by lease — the
// crash-recovery path for a client that died mid-accumulate. Returns how
// many words were cleared. The reaped stripes may hold a half-applied
// accumulate; that is the same partial-push outcome as a TCP worker dying
// mid chunk stream, and SEASGD absorbs it (DESIGN.md §16).
func (sh *shmShared) reapLease(lease uint32) int {
	n := 0
	for ci := 0; ci < sh.stripes; ci++ {
		w := sh.lockWord(ci)
		for {
			cur := w.Load()
			if cur&^shmLockContended != lease {
				break
			}
			if w.CompareAndSwap(cur, 0) {
				futexWakeAll(w)
				n++
				break
			}
		}
	}
	return n
}

// version returns the shared version word — authoritative for exported
// segments, where bumps can originate in any mapping process.
func (sh *shmShared) version() uint64 { return sh.word64(shmOffVersion).Load() }

// bumpVersion advances the shared version and wakes cross-process waiters.
// The futex watches the low 32 bits of the little-endian u64, so any bump
// changes the watched word. The wake is gated on the shared waiter count:
// the Add is a full barrier, so a waiter whose registration we miss here is
// guaranteed to observe the new version in its post-registration re-check
// and never sleeps on the stale value — the standard futex pairing. With no
// waiters the bump is pure user-space stores, keeping the mapped data path
// syscall-free.
//
//shm:hotpath
func (sh *shmShared) bumpVersion() {
	sh.word64(shmOffVersion).Add(1)
	if sh.word32(shmOffVersionWaiters).Load() != 0 {
		futexWakeAll(sh.word32(shmOffVersion))
	}
}

// waitVersion blocks until the shared version exceeds since or cancel
// closes. Sleeps are sliced (shmVersionWaitNs) because a cancel arrives as
// a channel close in this process while the wake arrives as a futex from
// another one. Each sleep is bracketed by a waiter-count register/deregister
// so bumpVersion knows when a wake syscall is needed; the re-load of the
// version between registering and parking closes the lost-wakeup window (a
// bump that missed our registration is ordered before our re-load). A
// waiter that dies while registered leaves the count permanently high,
// which only costs bumps a harmless wake of nobody — never a lost wakeup.
func (sh *shmShared) waitVersion(since uint64, cancel <-chan struct{}) (v uint64, blocked bool, err error) {
	waiters := sh.word32(shmOffVersionWaiters)
	for {
		v = sh.version()
		if v > since {
			return v, blocked, nil
		}
		select {
		case <-cancel:
			return 0, blocked, ErrWaitCanceled
		default:
		}
		blocked = true
		waiters.Add(1)
		if cur := sh.version(); cur <= since {
			futexWait(sh.word32(shmOffVersion), uint32(cur), shmVersionWaitNs)
		}
		waiters.Add(^uint32(0))
	}
}

// addOp advances one of the shared op counters (mapped-path traffic
// accounting, exported by Store.Instrument with transport="shm").
//
//shm:hotpath
func (sh *shmShared) addOp(off int, n uint64) { sh.word64(off).Add(n) }

// snapGateRLock registers one mapped mutating op in flight. Fast path is
// one CAS; while a cut is pending or in progress the op parks until the
// gate reopens. Held for the whole op (all stripes plus the version
// bump), paired with snapGateRUnlock.
//
//shm:hotpath
func (sh *shmShared) snapGateRLock() {
	w := sh.word32(shmOffSnapGate)
	for spins := 0; ; {
		cur := w.Load()
		if cur&(shmSnapGateWriter|shmSnapGatePending) == 0 {
			if w.CompareAndSwap(cur, cur+1) {
				return
			}
			continue
		}
		if spins < shmLockSpins {
			spins++
			continue
		}
		futexWait(w, cur, shmLockWaitNs)
		spins = 0
	}
}

// snapGateRUnlock deregisters a mapped op; the last op out wakes a cut
// parked on the drain.
//
//shm:hotpath
func (sh *shmShared) snapGateRUnlock() {
	w := sh.word32(shmOffSnapGate)
	if cur := w.Add(^uint32(0)); cur&shmSnapGateReaders == 0 && cur != 0 {
		futexWakeAll(w)
	}
}

// snapGateLock announces a cut and drains mapped in-flight ops. Only the
// serving process calls it, serialized per segment by the in-process op
// gate, so writer-vs-writer contention can only be a stale bit left by a
// crashed server incarnation — waited out like any lock word. Returns
// false when the drain timed out (an orphaned hold, see shmSnapDrainNs);
// the pending bit is cleared and mapped traffic resumes, and the caller
// must NOT call snapGateUnlock.
func (sh *shmShared) snapGateLock() bool {
	w := sh.word32(shmOffSnapGate)
	for {
		cur := w.Load()
		if cur&(shmSnapGateWriter|shmSnapGatePending) != 0 {
			futexWait(w, cur, shmLockWaitNs)
			continue
		}
		if w.CompareAndSwap(cur, cur|shmSnapGatePending) {
			break
		}
	}
	// With pending set no new reader can enter, so the count is strictly
	// draining from here.
	t0 := time.Now()
	for {
		cur := w.Load()
		if cur&shmSnapGateReaders == 0 {
			if w.CompareAndSwap(cur, shmSnapGateWriter) {
				return true
			}
			continue
		}
		if time.Since(t0).Nanoseconds() > shmSnapDrainNs {
			for {
				cur = w.Load()
				if w.CompareAndSwap(cur, cur&^shmSnapGatePending) {
					break
				}
			}
			futexWakeAll(w)
			return false
		}
		futexWait(w, cur, shmLockWaitNs)
	}
}

// snapGateUnlock reopens the gate after a successful snapGateLock.
func (sh *shmShared) snapGateUnlock() {
	w := sh.word32(shmOffSnapGate)
	w.Store(0) // readers cannot have entered while the writer bit was set
	futexWakeAll(w)
}

// Dual stripe locking: the server wraps every stripe access of an exported
// segment in both its in-process lock and the shared word (always local
// first, shared second; released shared first). In-process readers of an
// exported segment serialize on the shared word — the price of giving
// mapped clients real mutual exclusion against the server's own kernels.

func (seg *segment) lockStripe(ci int, timed bool) int64 {
	w := lockWait(&seg.locks[ci], timed)
	if seg.shm != nil {
		seg.shm.lockStripe(ci, shmServerLease)
	}
	// Snapshot hooks (snapshot.go): preserve the stripe's pre-image for
	// any live lazy snapshot, then flag the stripe unstable — the COW page
	// must be published before the epoch goes odd so a seqlock reader that
	// sees the disturbance is guaranteed to find it.
	if sl := seg.snaps.Load(); sl != nil {
		seg.cowStripe(ci, *sl)
	}
	seg.epochs[ci].Add(1)
	return w
}

func (seg *segment) unlockStripe(ci int) {
	seg.epochs[ci].Add(1) // even again: stripe stable
	if seg.shm != nil {
		seg.shm.unlockStripe(ci, shmServerLease)
	}
	seg.locks[ci].Unlock()
}

func (seg *segment) rlockStripe(ci int) {
	seg.locks[ci].RLock()
	if seg.shm != nil {
		seg.shm.lockStripe(ci, shmServerLease)
	}
}

func (seg *segment) runlockStripe(ci int) {
	if seg.shm != nil {
		seg.shm.unlockStripe(ci, shmServerLease)
	}
	seg.locks[ci].RUnlock()
}

// shmCounters are the Store's always-on shared-memory transport counters.
type shmCounters struct {
	fdPassed    atomic.Int64
	mapBytes    atomic.Int64
	leases      atomic.Int64
	reapedLocks atomic.Int64
	reaps       atomic.Int64
	allocFails  atomic.Int64
}

// ShmStats is the snapshot form of the store's shared-memory counters.
type ShmStats struct {
	FDPassed    int64 // segment fds passed to mapping clients
	MapBytes    int64 // bytes of segment+control currently handed out to mappings
	Leases      int64 // control-connection leases granted
	ReapedLocks int64 // stripe lock words force-released after a peer died
	Reaps       int64 // dead-lease reap sweeps that cleared at least one word
	AllocFails  int64 // memfd allocations that fell back to heap segments
	Exported    int   // live memfd-backed segments
}

// EnableShm switches Create to memfd-backed segments so they can be
// exported to co-located clients. Existing heap segments stay heap-backed
// (they are not mappable; opShmMap on them fails and clients use the wire
// verbs). Returns ErrShmUnsupported where the build has the transport
// compiled out.
func (s *Store) EnableShm() error {
	if !ShmSupported() {
		return ErrShmUnsupported
	}
	s.shmOn.Store(true)
	return nil
}

// ShmEnabled reports whether new segments are memfd-backed.
func (s *Store) ShmEnabled() bool { return s.shmOn.Load() }

// ShmStats returns a snapshot of the shared-memory transport counters.
func (s *Store) ShmStats() ShmStats {
	st := ShmStats{
		FDPassed:    s.shmc.fdPassed.Load(),
		MapBytes:    s.shmc.mapBytes.Load(),
		Leases:      s.shmc.leases.Load(),
		ReapedLocks: s.shmc.reapedLocks.Load(),
		Reaps:       s.shmc.reaps.Load(),
		AllocFails:  s.shmc.allocFails.Load(),
	}
	s.mu.Lock()
	for _, seg := range s.segments {
		if seg.shm != nil {
			st.Exported++
		}
	}
	s.mu.Unlock()
	return st
}

// shmSegment resolves a handle to its exported backing, failing for
// heap-backed segments.
func (s *Store) shmSegment(h Handle) (*shmShared, *segment, error) {
	seg, err := s.lookupHandle(h)
	if err != nil {
		return nil, nil, err
	}
	if seg.shm == nil {
		return nil, nil, fmt.Errorf("segment %q not memfd-backed: %w", seg.name, ErrShmUnsupported)
	}
	return seg.shm, seg, nil
}

// ReapShmLease force-releases every exported stripe lock word still held by
// lease — called when the control connection that owned the lease dies.
// Returns the number of lock words cleared across all segments.
func (s *Store) ReapShmLease(lease uint32) int {
	if lease < 2 {
		return 0 // 0 = no lease, 1 = the server itself
	}
	s.mu.Lock()
	//lint:ignore hotalloc reap runs once per dead control connection, not on the data path
	shs := make([]*shmShared, 0, len(s.segments))
	for _, seg := range s.segments {
		if seg.shm != nil {
			shs = append(shs, seg.shm)
		}
	}
	s.mu.Unlock()
	n := 0
	for _, sh := range shs {
		n += sh.reapLease(lease)
	}
	if n > 0 {
		s.shmc.reapedLocks.Add(int64(n))
		s.shmc.reaps.Add(1)
	}
	return n
}

// shmCtlSum sums one control-header counter over every exported segment —
// the scrape-time view behind the transport="shm" op counters.
func (s *Store) shmCtlSum(off int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, seg := range s.segments {
		if seg.shm != nil {
			t += int64(seg.shm.word64(off).Load())
		}
	}
	return t
}
