package smb

import (
	"errors"
	"sync"
	"testing"

	"shmcaffe/internal/tensor"
)

// startServer launches a server on a random port and registers cleanup.
func startServer(t *testing.T) *Server {
	t.Helper()
	srv, err := NewServer(NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve() // returns on Close
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return srv
}

func dialT(t *testing.T, srv *Server) *StreamClient {
	t.Helper()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestTCPRoundTrip(t *testing.T) {
	srv := startServer(t)
	c := dialT(t, srv)

	key, err := c.Create("wg", 12)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Lookup("wg")
	if err != nil || got != key {
		t.Fatalf("lookup %v, %v", got, err)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(h, 0, tensor.Float32Bytes([]float32{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 12)
	if err := c.Read(h, 0, buf); err != nil {
		t.Fatal(err)
	}
	vals, _ := tensor.Float32FromBytes(buf)
	if vals[2] != 3 {
		t.Fatalf("read back %v", vals)
	}
	if err := c.Detach(h); err != nil {
		t.Fatal(err)
	}
	if err := c.Free(key); err != nil {
		t.Fatal(err)
	}
}

func TestTCPAccumulate(t *testing.T) {
	srv := startServer(t)
	c := dialT(t, srv)

	kw, _ := c.Create("wg", 8)
	kd, _ := c.Create("dw", 8)
	hw, _ := c.Attach(kw)
	hd, _ := c.Attach(kd)
	if err := c.Write(hw, 0, tensor.Float32Bytes([]float32{1, 1})); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(hd, 0, tensor.Float32Bytes([]float32{2, 3})); err != nil {
		t.Fatal(err)
	}
	if err := c.Accumulate(hw, hd); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if err := c.Read(hw, 0, buf); err != nil {
		t.Fatal(err)
	}
	vals, _ := tensor.Float32FromBytes(buf)
	if vals[0] != 3 || vals[1] != 4 {
		t.Fatalf("accumulated %v", vals)
	}
}

// TestTCPErrorsCrossWire: well-known errors survive serialization and match
// with errors.Is on the client side.
func TestTCPErrorsCrossWire(t *testing.T) {
	srv := startServer(t)
	c := dialT(t, srv)

	c.Create("dup", 8)
	if _, err := c.Create("dup", 8); !errors.Is(err, ErrSegmentExists) {
		t.Fatalf("want ErrSegmentExists, got %v", err)
	}
	if _, err := c.Lookup("absent"); !errors.Is(err, ErrUnknownSegment) {
		t.Fatalf("want ErrUnknownSegment, got %v", err)
	}
	if _, err := c.Attach(12345); !errors.Is(err, ErrUnknownSegment) {
		t.Fatalf("want ErrUnknownSegment, got %v", err)
	}
	key, _ := c.Create("seg", 8)
	h, _ := c.Attach(key)
	if err := c.Read(h, 5, make([]byte, 8)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
}

// TestTCPMultipleClientsShareSegments mirrors Fig. 2: the master creates,
// workers attach by broadcast key and all see each other's writes.
func TestTCPMultipleClientsShareSegments(t *testing.T) {
	srv := startServer(t)
	master := dialT(t, srv)

	key, err := master.Create("shared", 4)
	if err != nil {
		t.Fatal(err)
	}
	// "Broadcast" the key to 4 workers, each with its own connection.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			h, err := c.Attach(key)
			if err != nil {
				t.Error(err)
				return
			}
			if err := c.Write(h, 0, []byte{byte(w + 1)}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	hm, _ := master.Attach(key)
	buf := make([]byte, 1)
	if err := master.Read(hm, 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] < 1 || buf[0] > 4 {
		t.Fatalf("unexpected byte %d", buf[0])
	}
}

// TestTCPConcurrentAccumulate is the lost-update test over the real wire.
func TestTCPConcurrentAccumulate(t *testing.T) {
	srv := startServer(t)
	master := dialT(t, srv)

	const elems = 16
	const workers = 4
	const rounds = 10
	kw, err := master.Create("wg", elems*4)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			hw, err := c.Attach(kw)
			if err != nil {
				t.Error(err)
				return
			}
			names := SegmentNames{Job: "tcp"}
			kd, err := c.Create(names.Increment(w), elems*4)
			if err != nil {
				t.Error(err)
				return
			}
			hd, err := c.Attach(kd)
			if err != nil {
				t.Error(err)
				return
			}
			ones := make([]float32, elems)
			for i := range ones {
				ones[i] = 1
			}
			for r := 0; r < rounds; r++ {
				if err := c.Write(hd, 0, tensor.Float32Bytes(ones)); err != nil {
					t.Error(err)
					return
				}
				if err := c.Accumulate(hw, hd); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	hm, _ := master.Attach(kw)
	buf := make([]byte, elems*4)
	if err := master.Read(hm, 0, buf); err != nil {
		t.Fatal(err)
	}
	vals, _ := tensor.Float32FromBytes(buf)
	for i, v := range vals {
		if v != workers*rounds {
			t.Fatalf("wg[%d] = %v, want %d", i, v, workers*rounds)
		}
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := NewServer(NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLargePayloadTransfer(t *testing.T) {
	srv := startServer(t)
	c := dialT(t, srv)

	// 4 MB segment — larger than typical socket buffers, exercising the
	// length-prefixed framing across many partial reads.
	const size = 4 << 20
	key, err := c.Create("big", size)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := c.Attach(key)
	src := make([]byte, size)
	rng := tensor.NewRNG(1)
	for i := range src {
		src[i] = byte(rng.Uint64())
	}
	if err := c.Write(h, 0, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, size)
	if err := c.Read(h, 0, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if src[i] != dst[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}
