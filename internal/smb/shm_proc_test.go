//go:build linux && !noshm && (amd64 || arm64)

package smb

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"shmcaffe/internal/tensor"
)

// Cross-process drills for the shared-memory transport: the parent test
// process runs the SMB server and re-execs its own binary as worker
// helpers, so mapped Accumulates genuinely cross an address-space boundary
// (the in-process tests in shm_test.go cannot exercise the futex wake or
// the crash-reap path for real).
//
// TestMain intercepts the re-exec: when SHMCAFFE_SHM_HELPER names a mode,
// the process runs that worker loop instead of the test suite. The crash
// mode additionally arms SHMCAFFE_CRASHPOINT=shm-mid-accumulate, so the
// helper dies inside WriteAccumulate with stripe locks held — the exact
// scenario the server's dead-lease reap exists for.

const (
	shmHelperEnv = "SHMCAFFE_SHM_HELPER"
	shmSockEnv   = "SHMCAFFE_SHM_SOCK"
	shmIDEnv     = "SHMCAFFE_SHM_ID"

	shmProcSegBytes = 4 * chunkBytes // 4 stripes: pushes span lock words
	shmProcPushes   = 50
)

func TestMain(m *testing.M) {
	mode := os.Getenv(shmHelperEnv)
	if mode == "" {
		os.Exit(m.Run())
	}
	if err := runShmHelper(mode); err != nil {
		fmt.Fprintln(os.Stderr, "shm helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// runShmHelper is the worker side of the drills.
func runShmHelper(mode string) error {
	sock := os.Getenv(shmSockEnv)
	id, _ := strconv.Atoi(os.Getenv(shmIDEnv))
	c, err := DialShmConfig(ShmConfig{Path: sock, ClientID: uint64(id)})
	if err != nil {
		return err
	}
	defer c.Close()

	attach := func(name string) (Handle, error) {
		key, err := c.Lookup(name)
		if err != nil {
			return 0, err
		}
		h, err := c.Attach(key)
		if err != nil {
			return 0, err
		}
		if !c.Mapped(h) {
			return 0, fmt.Errorf("segment %q did not map in the helper", name)
		}
		return h, nil
	}

	switch mode {
	case "hammer", "crash":
		// N fused pushes of all-ones into the shared Wg. Both hammer
		// children target the same wg/dw pair, so every stripe lock word is
		// genuinely contended across processes. In crash mode the armed
		// crashpoint kills the process inside the first push, locks held.
		wg, err := attach("wg")
		if err != nil {
			return err
		}
		dw, err := attach("dw")
		if err != nil {
			return err
		}
		ones := make([]float32, shmProcSegBytes/4)
		for i := range ones {
			ones[i] = 1
		}
		data := tensor.Float32Bytes(ones)
		for i := 0; i < shmProcPushes; i++ {
			if err := c.WriteAccumulate(wg, dw, data); err != nil {
				return fmt.Errorf("push %d: %w", i, err)
			}
		}
		return nil
	case "crossed":
		// Crossed accumulates: helper 1 runs a += b while helper 2 runs
		// b += a on the same stripes. Key-ordered shared locking is what
		// keeps this from deadlocking; the parent asserts completion.
		a, err := attach("a")
		if err != nil {
			return err
		}
		b, err := attach("b")
		if err != nil {
			return err
		}
		dst, src := a, b
		if id%2 == 0 {
			dst, src = b, a
		}
		for i := 0; i < shmProcPushes; i++ {
			if err := c.Accumulate(dst, src); err != nil {
				return fmt.Errorf("accumulate %d: %w", i, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown helper mode %q", mode)
	}
}

// startShmHelper re-execs the test binary as one worker helper.
func startShmHelper(t *testing.T, mode, sock string, id int, extraEnv ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		shmHelperEnv+"="+mode,
		shmSockEnv+"="+sock,
		shmIDEnv+"="+strconv.Itoa(id),
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
		if t.Failed() && out.Len() > 0 {
			t.Logf("helper %s/%d output:\n%s", mode, id, out.String())
		}
	})
	return cmd
}

// waitHelper joins a helper with a watchdog (a deadlocked mapped Accumulate
// would otherwise hang the whole suite).
func waitHelper(t *testing.T, cmd *exec.Cmd, timeout time.Duration) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		cmd.Process.Kill()
		<-done
		t.Fatal("helper did not finish (cross-process deadlock?)")
		return nil
	}
}

// shmProcServer stands up the server side of a drill: an shm-enabled store
// behind a unix control socket, plus a local client for seeding/asserting.
func shmProcServer(t *testing.T) (*Store, *LocalClient, string) {
	t.Helper()
	if !ShmSupported() {
		t.Skip("shm transport not supported on this platform/build")
	}
	store := NewStore()
	if err := store.EnableShm(); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(t.TempDir(), "smb.sock")
	uln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetShmAddr(sock)
	go srv.Serve()
	go func() {
		for {
			conn, err := uln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	t.Cleanup(func() { uln.Close(); srv.Close() })
	return store, NewLocalClient(store), sock
}

// TestShmProcHammer crosses two OS processes over the same wg/dw mapped
// pair: 2 × shmProcPushes all-ones pushes later, every element of Wg must
// be exactly 2 × shmProcPushes — the shared stripe locks made each fused
// copy+add atomic despite the cross-process contention.
func TestShmProcHammer(t *testing.T) {
	_, local, sock := shmProcServer(t)
	kw, err := local.Create("wg", shmProcSegBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := local.Create("dw", shmProcSegBytes); err != nil {
		t.Fatal(err)
	}

	h1 := startShmHelper(t, "hammer", sock, 1)
	h2 := startShmHelper(t, "hammer", sock, 2)
	if err := waitHelper(t, h1, 60*time.Second); err != nil {
		t.Fatalf("helper 1: %v", err)
	}
	if err := waitHelper(t, h2, 60*time.Second); err != nil {
		t.Fatalf("helper 2: %v", err)
	}

	wg, err := local.Attach(kw)
	if err != nil {
		t.Fatal(err)
	}
	got := readF32(t, local, wg, shmProcSegBytes/4)
	want := float32(2 * shmProcPushes)
	for i, v := range got {
		if v != want {
			t.Fatalf("wg[%d] = %v, want %v (a push was lost or torn)", i, v, want)
		}
	}
}

// TestShmProcCrossedAccumulate runs a += b against b += a from two
// processes: the key-ordered shared stripe locking must let both finish
// (an ordering bug here is a cross-process deadlock, caught by the
// watchdog, not a wrong sum).
func TestShmProcCrossedAccumulate(t *testing.T) {
	_, local, sock := shmProcServer(t)
	if _, err := local.Create("a", shmProcSegBytes); err != nil {
		t.Fatal(err)
	}
	if _, err := local.Create("b", shmProcSegBytes); err != nil {
		t.Fatal(err)
	}

	h1 := startShmHelper(t, "crossed", sock, 1)
	h2 := startShmHelper(t, "crossed", sock, 2)
	if err := waitHelper(t, h1, 60*time.Second); err != nil {
		t.Fatalf("helper 1: %v", err)
	}
	if err := waitHelper(t, h2, 60*time.Second); err != nil {
		t.Fatalf("helper 2: %v", err)
	}
}

// TestShmProcCrashReap kills a mapping peer inside WriteAccumulate — exit
// 137 with both segments' stripe locks held — and asserts the server reaps
// the dead lease when the control connection drops, after which its own
// kernels make progress on the poisoned stripes again (the PR 5 exactly-
// once chaos drill, extended to the shm transport).
func TestShmProcCrashReap(t *testing.T) {
	store, local, sock := shmProcServer(t)
	kw, err := local.Create("wg", shmProcSegBytes)
	if err != nil {
		t.Fatal(err)
	}
	kd, err := local.Create("dw", shmProcSegBytes)
	if err != nil {
		t.Fatal(err)
	}

	crash := startShmHelper(t, "crash", sock, 1, "SHMCAFFE_CRASHPOINT=shm-mid-accumulate")
	err = waitHelper(t, crash, 60*time.Second)
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 137 {
		t.Fatalf("crash helper exited %v, want exit status 137 (armed crashpoint)", err)
	}

	// The kernel closed the helper's control socket on exit; the server's
	// connDone must sweep the lease's lock words.
	deadline := time.Now().Add(10 * time.Second)
	for store.ShmStats().ReapedLocks == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no lock words reaped after the crash (stats %+v)", store.ShmStats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Progress proof: a server-side accumulate over every stripe — which
	// must take each shared lock word the dead helper was holding —
	// completes instead of parking forever on a corpse's lease.
	wg, err := local.Attach(kw)
	if err != nil {
		t.Fatal(err)
	}
	dw, err := local.Attach(kd)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- local.Accumulate(wg, dw) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server-side accumulate still blocked after the reap")
	}
	if store.ShmStats().Reaps < 1 {
		t.Fatalf("stats %+v, want at least one reap sweep", store.ShmStats())
	}
}
