package smb

import (
	"strings"
	"testing"

	"shmcaffe/internal/telemetry"
	"shmcaffe/internal/tensor"
)

// TestStoreInstrumented: with a registry installed, traffic must show up in
// both the scrape-time counter views and the latency histograms.
func TestStoreInstrumented(t *testing.T) {
	reg := telemetry.NewRegistry()
	store := NewStore()
	store.Instrument(reg)

	key, err := store.Create("wg", 1024)
	if err != nil {
		t.Fatal(err)
	}
	dKey, err := store.Create("dw", 1024)
	if err != nil {
		t.Fatal(err)
	}
	hg, _ := store.Attach(key)
	hd, _ := store.Attach(dKey)
	buf := tensor.Float32Bytes(onesVec(256))
	if err := store.Write(hd, 0, buf); err != nil {
		t.Fatal(err)
	}
	if err := store.Read(hg, 0, buf); err != nil {
		t.Fatal(err)
	}
	if err := store.Accumulate(hg, hd); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"smb_creates_total 2",
		"smb_reads_total 1",
		"smb_writes_total 1",
		"smb_accumulates_total 1",
		"smb_segments 2",
		"smb_accumulate_seconds_count 1",
		"smb_accumulate_stripe_wait_seconds_count 1",
		"smb_read_seconds_count 1",
		"smb_write_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestNotifyWakeupCounter: a blocked WaitUpdate released by a Write counts
// one wakeup; a non-blocking WaitUpdate counts none.
func TestNotifyWakeupCounter(t *testing.T) {
	store := NewStore()
	key, err := store.Create("seg", 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := store.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Write(h, 0, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	// Version is now 1: waiting for >0 returns without blocking.
	if _, err := store.WaitUpdate(h, 0); err != nil {
		t.Fatal(err)
	}
	if got := store.Stats().NotifyWakeups; got != 0 {
		t.Fatalf("non-blocking wait counted %d wakeups", got)
	}

	done := make(chan error, 1)
	go func() {
		_, err := store.WaitUpdate(h, 1)
		done <- err
	}()
	// The waiter may or may not have parked yet; the Write below releases it
	// either way, and the counter must reflect whether it actually blocked.
	if err := store.Write(h, 0, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			w := store.Stats().NotifyWakeups
			if w != 0 && w != 1 {
				t.Fatalf("NotifyWakeups = %d, want 0 or 1", w)
			}
			return
		default:
			// Keep bumping in case the waiter parked after our first write.
			if err := store.Write(h, 0, make([]byte, 8)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestStreamClientInstrumented covers the wire RTT histograms end to end.
func TestStreamClientInstrumented(t *testing.T) {
	store := NewStore()
	server, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	go server.Serve() //lint:ignore goleak joined by server.Close via the server's WaitGroup

	reg := telemetry.NewRegistry()
	client, err := Dial(server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Instrument(reg)

	key, err := client.Create("wg", 256)
	if err != nil {
		t.Fatal(err)
	}
	h, err := client.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	if err := client.Write(h, 0, buf); err != nil {
		t.Fatal(err)
	}
	if err := client.Read(h, 0, buf); err != nil {
		t.Fatal(err)
	}
	if err := client.Accumulate(h, h); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`smb_client_rtt_seconds_count{op="read"} 1`,
		`smb_client_rtt_seconds_count{op="write"} 1`,
		`smb_client_rtt_seconds_count{op="accumulate"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

// TestShardedClientInstrumented covers the fan-out histograms.
func TestShardedClientInstrumented(t *testing.T) {
	s1, s2 := NewStore(), NewStore()
	sc, err := NewShardedClient(NewLocalClient(s1), NewLocalClient(s2))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	sc.Instrument(reg)

	key, err := sc.Create("wg", 4096)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sc.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := sc.Write(h, 0, buf); err != nil {
		t.Fatal(err)
	}
	if err := sc.Read(h, 0, buf); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`smb_sharded_seconds_count{op="read"} 1`,
		`smb_sharded_seconds_count{op="write"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}
