package smb

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"shmcaffe/internal/tensor"
)

// Benchmarks for the SMB hot path. cmd/benchtables -kernels runs these
// in-process to build BENCH_kernels.json; scripts/check.sh tier 2 runs
// them with -benchtime 1x as a smoke test. SetBytes is the logical bytes
// moved per op so ns/op converts to throughput.

// benchVals spans several lock stripes so Accumulate exercises the
// per-stripe locking protocol, not the single-stripe fast case.
const benchVals = 1 << 18 // 1 MiB of float32 per segment

func setupBenchStore(b *testing.B, workers int) (*Store, Handle, []Handle) {
	b.Helper()
	store := NewStore()
	gKey, err := store.Create("bench/wg", benchVals*4)
	if err != nil {
		b.Fatal(err)
	}
	hg, err := store.Attach(gKey)
	if err != nil {
		b.Fatal(err)
	}
	ones := tensor.Float32Bytes(onesVec(benchVals))
	deltas := make([]Handle, workers)
	for w := range deltas {
		dKey, err := store.Create(fmt.Sprintf("bench/dw%d", w), benchVals*4)
		if err != nil {
			b.Fatal(err)
		}
		hd, err := store.Attach(dKey)
		if err != nil {
			b.Fatal(err)
		}
		if err := store.Write(hd, 0, ones); err != nil {
			b.Fatal(err)
		}
		deltas[w] = hd
	}
	return store, hg, deltas
}

func BenchmarkStoreWrite(b *testing.B) {
	store, hg, _ := setupBenchStore(b, 1)
	buf := tensor.Float32Bytes(onesVec(benchVals))
	b.SetBytes(benchVals * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Write(hg, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreRead(b *testing.B) {
	store, hg, _ := setupBenchStore(b, 1)
	buf := make([]byte, benchVals*4)
	b.SetBytes(benchVals * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Read(hg, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreAccumulate measures concurrent accumulates into one
// shared global — the SEASGD contention point the chunk striping exists
// for. Each parallel worker owns a private delta segment; only the
// destination stripes are contended.
func BenchmarkStoreAccumulate(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			store, hg, deltas := setupBenchStore(b, workers)
			b.SetBytes(benchVals * 4)
			b.ReportAllocs()
			b.ResetTimer()
			var next atomic.Int32
			b.SetParallelism(max(1, workers/runtime.GOMAXPROCS(0)))
			b.RunParallel(func(pb *testing.PB) {
				// Each RunParallel goroutine claims its own delta segment.
				w := int(next.Add(1)-1) % len(deltas)
				hd := deltas[w]
				for pb.Next() {
					if err := store.Accumulate(hg, hd); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

func BenchmarkStreamRoundTrip(b *testing.B) {
	store := NewStore()
	srv, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve() //lint:ignore goleak joined by srv.Close via the server's WaitGroup

	client, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	key, err := client.Create("bench/rt", 4096*4)
	if err != nil {
		b.Fatal(err)
	}
	h, err := client.Attach(key)
	if err != nil {
		b.Fatal(err)
	}
	buf := tensor.Float32Bytes(onesVec(4096))
	b.SetBytes(4096 * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Write(h, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
}
