package smb

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"shmcaffe/internal/faults"
	"shmcaffe/internal/telemetry"
)

// ShmClient is the zero-copy client of the shared-memory transport
// (DESIGN.md §16): a control connection over the server's unix-domain
// socket carries the metadata verbs (create/lookup/attach, fd passing,
// lease), while the data verbs run directly against mmapped segment
// stripes — no serialization, no syscalls on the data path beyond the
// occasional contended-futex wait.
//
// Mutual exclusion against the server's own kernels and against other
// mapped workers comes from the shared per-stripe lock words mirrored into
// each segment's control page; this client stamps its acquisitions with
// the lease granted at hello time, so a crash mid-accumulate leaves words
// the server can attribute and reap when the control connection dies.
//
// The control connection is supervised the same way SupervisedClient
// supervises its stream: public handles are issued by this client and
// survive a control-socket redial (mappings are fd-backed and stay valid
// across it — the memfd is this process's reference, not the socket's).
type ShmClient struct {
	mu sync.Mutex

	cfg ShmConfig

	ctl   *StreamClient // guarded by mu; nil until dialed / after a drop
	lease uint32        // guarded by mu; identity of shared-lock acquisitions

	keys   map[Handle]SHMKey     // guarded by mu; public handle → key
	remote map[Handle]Handle     // guarded by mu; public → current conn's handle, cleared on redial
	maps   map[Handle]*shmMapped // guarded by mu; public handle → mapping

	nextHandle Handle // guarded by mu
	wireSeq    uint64 // guarded by mu; stamp for the next wire-fallback push

	// seqs is the client-side dedup table of the mapped SeqAccumulate path.
	// A mapped push has no ambiguous outcome — it either ran to completion
	// in this process or it did not — so dedup state needs no server round
	// trip; it only has to survive control-socket redials, which it does by
	// living here rather than on the connection.
	seqs map[uint64]uint64 // guarded by mu; pusher id → last applied seq

	wantTrace bool         // guarded by mu
	tc        TraceContext // guarded by mu

	closed bool // guarded by mu

	mappedSegs atomic.Int64 // live mappings
	mappedOps  atomic.Int64 // data verbs served from mapped stripes
	ctlOps     atomic.Int64 // data verbs that fell back to the wire
	reconnects atomic.Int64 // control-socket redials after the first dial

	inst *shmClientInstruments // set before use; nil = uninstrumented
}

// shmMapped is one mapped segment plus the key its stripe locks order by
// (two mapped clients accumulating A+=B and B+=A lock stripes in the same
// key order the server uses, so crossed pushes cannot deadlock).
//
// done/waiters fence the munmap against parked WaitUpdate callers: a waiter
// registers in the WaitGroup under c.mu while the mapping is still in
// c.maps, and release() closes done, drains the group, and only then
// unmaps — so a park in waitVersion can never touch unmapped memory.
type shmMapped struct {
	sh      *shmShared
	key     SHMKey
	done    chan struct{}  // closed by release(); cancels parked WaitUpdate calls
	waiters sync.WaitGroup // WaitUpdate calls currently inside waitVersion
}

// release retires a mapping removed from c.maps: cancel parked waiters,
// wait for them to leave the mapping, then munmap. Called with c.mu NOT
// held — waiters re-check done within shmVersionWaitNs and never need the
// client mutex to return, so the drain is bounded.
func (m *shmMapped) release() {
	close(m.done)
	m.waiters.Wait()
	m.sh.close()
}

// ShmConfig configures DialShmConfig.
type ShmConfig struct {
	// Path is the server's unix-domain control socket.
	Path string
	// OpTimeout bounds each control round trip (default 10s; <0 = none).
	OpTimeout time.Duration
	// WaitTimeout bounds wire-fallback WaitUpdate calls (default OpTimeout).
	WaitTimeout time.Duration
	// ClientID is the dedup identity of wire-fallback pushes (0 = auto).
	ClientID uint64
}

// shmCtlAttempts bounds control-verb retries across redials; mirrors the
// supervised client's spirit with a shorter leash (the server is on the
// same machine — if the unix socket stays dead, it is dead).
const shmCtlAttempts = 3

var errShmClientClosed = errors.New("smb: shm client closed")

// DialShm connects the zero-copy client to a server's unix-domain control
// socket with default timeouts.
func DialShm(path string) (*ShmClient, error) {
	return DialShmConfig(ShmConfig{Path: path})
}

// DialShmConfig dials cfg.Path, performs the shm hello, and returns a
// leased client. Fails fast when the build has the transport compiled out,
// when the socket is unreachable, or when the server is not exporting
// segments (callers then fall back to TCP).
func DialShmConfig(cfg ShmConfig) (*ShmClient, error) {
	if !ShmSupported() {
		return nil, ErrShmUnsupported
	}
	cfg.OpTimeout, cfg.WaitTimeout = shmTimeouts(cfg.OpTimeout, cfg.WaitTimeout)
	if cfg.ClientID == 0 {
		cfg.ClientID = supervisedClientIDs.Add(1)
	}
	c := &ShmClient{
		cfg:    cfg,
		keys:   make(map[Handle]SHMKey),
		remote: make(map[Handle]Handle),
		maps:   make(map[Handle]*shmMapped),
		seqs:   make(map[uint64]uint64),
	}
	c.mu.Lock()
	err := c.redialLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	c.reconnects.Store(0) // the first dial is not a reconnect
	return c, nil
}

// shmTimeouts applies the shm control-plane timeout defaults shared by
// DialShmConfig and negotiateShm: op 0 → 10s, op < 0 → no deadline; wait
// defaults to op. Keeping both dial paths on one helper means DialAuto's
// negotiation probe can never hang forever where a direct DialShm would
// have timed out.
func shmTimeouts(op, wait time.Duration) (time.Duration, time.Duration) {
	if op == 0 {
		op = 10 * time.Second
	} else if op < 0 {
		op = 0
	}
	if wait <= 0 {
		wait = op
	}
	return op, wait
}

var _ Client = (*ShmClient)(nil)
var _ Notifier = (*ShmClient)(nil)
var _ WriteAccumulator = (*ShmClient)(nil)
var _ SeqAccumulator = (*ShmClient)(nil)
var _ TraceCarrier = (*ShmClient)(nil)

// redialLocked (re)establishes the control connection: dial, hello for a
// fresh lease, re-negotiate tracing. Existing mappings are untouched — the
// memfds are held by this process and survive any number of socket blips.
func (c *ShmClient) redialLocked() error {
	conn, err := net.DialTimeout("unix", c.cfg.Path, 10*time.Second)
	if err != nil {
		return fmt.Errorf("smb shm dial %s: %w: %w", c.cfg.Path, ErrTransport, err)
	}
	sc := NewStreamClient(conn)
	sc.SetTimeouts(c.cfg.OpTimeout, c.cfg.WaitTimeout)
	lease, err := sc.ShmHello()
	if err != nil {
		sc.Close()
		return fmt.Errorf("smb shm hello: %w", err)
	}
	if c.wantTrace {
		if ok, _ := sc.NegotiateTrace(); ok {
			sc.SetTraceContext(c.tc)
		}
	}
	c.ctl = sc
	c.lease = lease
	c.reconnects.Add(1)
	return nil
}

// dropCtlLocked discards a poisoned control connection. Remote handles are
// per-connection server state, so the resolution cache empties with it.
func (c *ShmClient) dropCtlLocked() {
	if c.ctl != nil {
		c.ctl.Close()
		c.ctl = nil
	}
	clear(c.remote)
}

// withCtlLocked runs fn against a live control connection, redialing and
// retrying on transport failure up to shmCtlAttempts times. Remote errors
// (the server answered) return immediately. Callers hold c.mu.
func (c *ShmClient) withCtlLocked(fn func(ctl *StreamClient) error) error {
	if c.closed {
		return errShmClientClosed
	}
	var lastErr error
	for attempt := 0; attempt < shmCtlAttempts; attempt++ {
		if c.ctl == nil {
			if err := c.redialLocked(); err != nil {
				lastErr = err
				continue
			}
		}
		err := fn(c.ctl)
		if err == nil || !errors.Is(err, ErrTransport) {
			return err
		}
		lastErr = err
		c.dropCtlLocked()
	}
	return fmt.Errorf("smb shm control: %d attempts exhausted: %w", shmCtlAttempts, lastErr)
}

// resolveLocked maps a public handle to the current control connection's
// handle, re-attaching lazily after a redial.
func (c *ShmClient) resolveLocked(ctl *StreamClient, h Handle) (Handle, error) {
	if rh, ok := c.remote[h]; ok {
		return rh, nil
	}
	key, ok := c.keys[h]
	if !ok {
		return 0, fmt.Errorf("smb shm client: %w: handle %d", ErrUnknownHandle, h)
	}
	rh, err := ctl.Attach(key)
	if err != nil {
		return 0, err
	}
	c.remote[h] = rh //lint:ignore hotalloc re-attach runs once per handle per redial; steady-state hits the cache lookup above
	return rh, nil
}

// Create implements Client over the control socket.
func (c *ShmClient) Create(name string, size int) (SHMKey, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var key SHMKey
	err := c.withCtlLocked(func(ctl *StreamClient) error {
		var err error
		key, err = ctl.Create(name, size)
		return err
	})
	return key, err
}

// Lookup implements Client over the control socket.
func (c *ShmClient) Lookup(name string) (SHMKey, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var key SHMKey
	err := c.withCtlLocked(func(ctl *StreamClient) error {
		var err error
		key, err = ctl.Lookup(name)
		return err
	})
	return key, err
}

// Attach implements Client: attach on the server, then try to map the
// segment. A segment that cannot be mapped (heap-backed, created before
// EnableShm) still attaches — its data verbs just ride the wire.
func (c *ShmClient) Attach(key SHMKey) (Handle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.nextHandle + 1
	var mapped *shmMapped
	err := c.withCtlLocked(func(ctl *StreamClient) error {
		rh, err := ctl.Attach(key)
		if err != nil {
			return err
		}
		c.remote[h] = rh
		sh, g, merr := ctl.shmMap(rh)
		if merr == nil {
			mapped = &shmMapped{sh: sh, key: g.key, done: make(chan struct{})}
			return nil
		}
		if errors.Is(merr, ErrTransport) {
			return merr // fd pass desynced the stream; redial and retry
		}
		return nil // unmappable segment: wire verbs serve this handle
	})
	if err != nil {
		delete(c.remote, h)
		return 0, err
	}
	c.nextHandle = h
	c.keys[h] = key
	if mapped != nil {
		c.maps[h] = mapped
		c.mappedSegs.Add(1)
	}
	return h, nil
}

// Detach implements Client. Local state always goes; the server-side unmap
// accounting and detach are best-effort single shots (a dead control
// socket reaps them anyway when it redials or the server notices). A
// WaitUpdate parked on the mapping returns ErrWaitCanceled — the munmap is
// deferred (outside c.mu) until every parked waiter has left the mapping.
func (c *ShmClient) Detach(h Handle) error {
	c.mu.Lock()
	if _, ok := c.keys[h]; !ok {
		c.mu.Unlock()
		return fmt.Errorf("smb shm client: %w: handle %d", ErrUnknownHandle, h)
	}
	rh, haveRemote := c.remote[h]
	m := c.maps[h]
	if m != nil {
		if haveRemote && c.ctl != nil {
			if err := c.ctl.ShmUnmap(rh); err != nil && errors.Is(err, ErrTransport) {
				c.dropCtlLocked()
				haveRemote = false
			}
		}
		delete(c.maps, h)
		c.mappedSegs.Add(-1)
	}
	if haveRemote && c.ctl != nil {
		if err := c.ctl.Detach(rh); err != nil && errors.Is(err, ErrTransport) {
			c.dropCtlLocked()
		}
	}
	delete(c.remote, h)
	delete(c.keys, h)
	c.mu.Unlock()
	if m != nil {
		m.release()
	}
	return nil
}

// Free implements Client over the control socket.
func (c *ShmClient) Free(key SHMKey) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.withCtlLocked(func(ctl *StreamClient) error { return ctl.Free(key) })
}

// Close unmaps every segment and closes the control connection. Blocked
// mapped WaitUpdate calls return ErrWaitCanceled; each munmap waits
// (outside c.mu) for the mapping's parked waiters to drain first.
func (c *ShmClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	maps := make([]*shmMapped, 0, len(c.maps))
	for h, m := range c.maps {
		maps = append(maps, m)
		delete(c.maps, h)
	}
	c.mappedSegs.Store(0)
	if c.ctl != nil {
		c.ctl.Close()
		c.ctl = nil
	}
	c.mu.Unlock()
	for _, m := range maps {
		m.release()
	}
	return nil
}

// Lease returns the shared-lock identity granted at hello time (test and
// diagnostic hook; changes when the control socket redials).
func (c *ShmClient) Lease() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lease
}

// Mapped reports whether h's data verbs run against mapped stripes.
func (c *ShmClient) Mapped(h Handle) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maps[h] != nil
}

// stripeSpan clamps stripe ci of a mapped segment to [off, end).
func stripeSpan(sh *shmShared, ci, off, end int) (lo, hi int) {
	lo = ci * chunkBytes
	hi = lo + chunkBytes
	if hi > len(sh.dat) {
		hi = len(sh.dat)
	}
	if lo < off {
		lo = off
	}
	if hi > end {
		hi = end
	}
	return lo, hi
}

// Read implements Client. Mapped segments copy straight out of the shared
// stripes under their lock words — per-stripe atomic, like the server.
//
//shm:hotpath
func (c *ShmClient) Read(h Handle, off int, dst []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errShmClientClosed
	}
	m := c.maps[h]
	if m == nil {
		c.ctlOps.Add(1)
		return c.withCtlLocked(func(ctl *StreamClient) error {
			rh, err := c.resolveLocked(ctl, h)
			if err != nil {
				return err
			}
			return ctl.Read(rh, off, dst)
		})
	}
	sh := m.sh
	if off < 0 || off+len(dst) > len(sh.dat) {
		return fmt.Errorf("smb shm read [%d,%d) of %d-byte segment: %w",
			off, off+len(dst), len(sh.dat), ErrOutOfRange)
	}
	for covered := 0; covered < len(dst); {
		ci := (off + covered) / chunkBytes
		lo, hi := stripeSpan(sh, ci, off+covered, off+len(dst))
		sh.lockStripe(ci, c.lease)
		copy(dst[covered:covered+(hi-lo)], sh.dat[lo:hi])
		sh.unlockStripe(ci, c.lease)
		covered += hi - lo
	}
	sh.addOp(shmOffReads, 1)
	c.mappedOps.Add(1)
	return nil
}

// Write implements Client. Mapped segments copy straight into the shared
// stripes and bump the shared version (waking cross-process watchers).
//
//shm:hotpath
func (c *ShmClient) Write(h Handle, off int, src []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errShmClientClosed
	}
	m := c.maps[h]
	if m == nil {
		c.ctlOps.Add(1)
		return c.withCtlLocked(func(ctl *StreamClient) error {
			rh, err := c.resolveLocked(ctl, h)
			if err != nil {
				return err
			}
			return ctl.Write(rh, off, src)
		})
	}
	sh := m.sh
	if off < 0 || off+len(src) > len(sh.dat) {
		return fmt.Errorf("smb shm write [%d,%d) of %d-byte segment: %w",
			off, off+len(src), len(sh.dat), ErrOutOfRange)
	}
	// Hold the shared snapshot gate in read mode across the whole op so a
	// server-side Snapshot cannot cut between stripes of one mapped write.
	sh.snapGateRLock()
	for covered := 0; covered < len(src); {
		ci := (off + covered) / chunkBytes
		lo, hi := stripeSpan(sh, ci, off+covered, off+len(src))
		sh.lockStripe(ci, c.lease)
		copy(sh.dat[lo:hi], src[covered:covered+(hi-lo)])
		sh.unlockStripe(ci, c.lease)
		covered += hi - lo
	}
	sh.addOp(shmOffWrites, 1)
	sh.bumpVersion()
	sh.snapGateRUnlock()
	c.mappedOps.Add(1)
	return nil
}

// Accumulate implements Client: dst[i] += src[i] float32-wise, stripe by
// stripe under both segments' shared lock words, taken in key order — the
// same order the server and every other mapped client use, so crossed
// accumulates cannot deadlock.
//
//shm:hotpath
func (c *ShmClient) Accumulate(dst, src Handle) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.accumulateLocked(dst, src)
}

func (c *ShmClient) accumulateLocked(dst, src Handle) error {
	if c.closed {
		return errShmClientClosed
	}
	dm, sm := c.maps[dst], c.maps[src]
	if dm == nil || sm == nil {
		// One side rides the wire → the whole op does; the server is the
		// only place that can see both. Single shot: a wire Accumulate is
		// not idempotent, so a transport failure surfaces instead of
		// retrying blind (use SeqAccumulate for exactly-once pushes).
		c.ctlOps.Add(1)
		return c.withCtlOnceLocked(func(ctl *StreamClient) error {
			rd, err := c.resolveLocked(ctl, dst)
			if err != nil {
				return err
			}
			rs, err := c.resolveLocked(ctl, src)
			if err != nil {
				return err
			}
			return ctl.Accumulate(rd, rs)
		})
	}
	dsh, ssh := dm.sh, sm.sh
	if len(dsh.dat) != len(ssh.dat) {
		return fmt.Errorf("smb shm accumulate: size mismatch %d vs %d: %w",
			len(dsh.dat), len(ssh.dat), ErrSizeMismatch)
	}
	lease := c.lease
	// Gate the destination only: src is read, not mutated, so a snapshot of
	// src cannot be torn by this op, and single-gate acquisition keeps the
	// mapped accumulate deadlock-free against cross-segment gate holders.
	dsh.snapGateRLock()
	for ci := 0; ci < dsh.stripes; ci++ {
		lo, hi := stripeSpan(dsh, ci, 0, len(dsh.dat))
		lockStripePair(dsh, dm.key, ssh, sm.key, ci, lease)
		err := accumulateChunk(dsh.dat[lo:hi], ssh.dat[lo:hi])
		unlockStripePair(dsh, dm.key, ssh, sm.key, ci, lease)
		if err != nil {
			dsh.snapGateRUnlock()
			return err
		}
	}
	dsh.addOp(shmOffAccumulates, 1)
	dsh.addOp(shmOffBytesAcc, uint64(len(dsh.dat)))
	dsh.bumpVersion()
	dsh.snapGateRUnlock()
	c.mappedOps.Add(1)
	return nil
}

// withCtlOnceLocked is withCtlLocked without the retry loop: dial if
// needed, run fn exactly once, drop the connection on transport failure.
// Callers hold c.mu.
func (c *ShmClient) withCtlOnceLocked(fn func(ctl *StreamClient) error) error {
	if c.closed {
		return errShmClientClosed
	}
	if c.ctl == nil {
		if err := c.redialLocked(); err != nil {
			return err
		}
	}
	err := fn(c.ctl)
	if err != nil && errors.Is(err, ErrTransport) {
		c.dropCtlLocked()
	}
	return err
}

// lockStripePair takes stripe ci's shared words of two distinct segments
// in key order (self-accumulate takes the word once).
//
//shm:hotpath
func lockStripePair(a *shmShared, ak SHMKey, b *shmShared, bk SHMKey, ci int, lease uint32) {
	switch {
	case a == b:
		a.lockStripe(ci, lease)
	case ak < bk:
		a.lockStripe(ci, lease)
		b.lockStripe(ci, lease)
	default:
		b.lockStripe(ci, lease)
		a.lockStripe(ci, lease)
	}
}

// snapGateRLockPair takes two segments' shared snapshot gates in read mode,
// in key order. Ordering matters even for shared acquisition: a pending
// snapshot writer blocks new readers, so two fused ops acquiring opposite
// orders while snapshots pend on both gates would otherwise cycle.
func snapGateRLockPair(a *shmShared, ak SHMKey, b *shmShared, bk SHMKey) {
	switch {
	case a == b:
		a.snapGateRLock()
	case ak < bk:
		a.snapGateRLock()
		b.snapGateRLock()
	default:
		b.snapGateRLock()
		a.snapGateRLock()
	}
}

func snapGateRUnlockPair(a, b *shmShared) {
	if a == b {
		a.snapGateRUnlock()
		return
	}
	a.snapGateRUnlock()
	b.snapGateRUnlock()
}

//shm:hotpath
func unlockStripePair(a *shmShared, ak SHMKey, b *shmShared, bk SHMKey, ci int, lease uint32) {
	switch {
	case a == b:
		a.unlockStripe(ci, lease)
	case ak < bk:
		b.unlockStripe(ci, lease)
		a.unlockStripe(ci, lease)
	default:
		a.unlockStripe(ci, lease)
		b.unlockStripe(ci, lease)
	}
}

// WriteAccumulate implements WriteAccumulator fused against the mapped
// stripes: per stripe, copy the pushed bytes into src and add the same
// range into dst, under both lock words. One pass over the data, zero
// protocol bytes — this is the transport's headline verb (ΔWx push).
//
//shm:hotpath
func (c *ShmClient) WriteAccumulate(dst, src Handle, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errShmClientClosed
	}
	dm, sm := c.maps[dst], c.maps[src]
	if dm == nil || sm == nil {
		c.ctlOps.Add(1)
		return c.withCtlOnceLocked(func(ctl *StreamClient) error {
			rd, err := c.resolveLocked(ctl, dst)
			if err != nil {
				return err
			}
			rs, err := c.resolveLocked(ctl, src)
			if err != nil {
				return err
			}
			return ctl.WriteAccumulate(rd, rs, data)
		})
	}
	dsh, ssh := dm.sh, sm.sh
	if len(dsh.dat) != len(ssh.dat) {
		return fmt.Errorf("smb shm write+accumulate: size mismatch %d vs %d: %w",
			len(dsh.dat), len(ssh.dat), ErrSizeMismatch)
	}
	if len(data) > len(ssh.dat) {
		return fmt.Errorf("smb shm write+accumulate: %d bytes into %d-byte segment: %w",
			len(data), len(ssh.dat), ErrOutOfRange)
	}
	if len(data)%4 != 0 {
		return fmt.Errorf("smb shm write+accumulate: %d bytes not float32-aligned: %w",
			len(data), ErrSizeMismatch)
	}
	lease := c.lease
	// Both segments are mutated, so both snapshot gates are held for the
	// whole fused op — in key order, matching every other multi-gate
	// acquisition (server WriteAccumulateAt, snapshot cuts), so gates cannot
	// deadlock across processes.
	snapGateRLockPair(dsh, dm.key, ssh, sm.key)
	defer snapGateRUnlockPair(dsh, ssh)
	for covered := 0; covered < len(data); {
		ci := covered / chunkBytes
		lo, hi := stripeSpan(ssh, ci, covered, len(data))
		lockStripePair(dsh, dm.key, ssh, sm.key, ci, lease)
		// Fault-injection hook: a helper armed with shm-mid-accumulate dies
		// right here, stripe locks held — the scenario the server's
		// dead-lease reap exists for.
		faults.CrashPoint("shm-mid-accumulate")
		var err error
		if dsh == ssh {
			// Self-target: the write lands and is doubled in place, exactly
			// like the server's self-target branch.
			copy(ssh.dat[lo:hi], data[lo:hi])
			err = accumulateChunk(dsh.dat[lo:hi], ssh.dat[lo:hi])
		} else {
			err = copyAccumulateChunk(dsh.dat[lo:hi], ssh.dat[lo:hi], data[lo:hi])
		}
		unlockStripePair(dsh, dm.key, ssh, sm.key, ci, lease)
		if err != nil {
			return err
		}
		covered += hi - lo
	}
	ssh.addOp(shmOffWrites, 1)
	ssh.bumpVersion()
	dsh.addOp(shmOffAccumulates, 1)
	dsh.addOp(shmOffBytesAcc, uint64(len(data)))
	dsh.bumpVersion()
	c.mappedOps.Add(1)
	if c.inst != nil {
		c.inst.pushBytes.Observe(float64(len(data)))
	}
	return nil
}

// SeqAccumulate implements SeqAccumulator. On the mapped path dedup is
// client-side: a mapped push has no ambiguous transport outcome (it either
// completed in this process or it did not), so the (client, seq) table
// lives here and survives control-socket redials. Wire fallback defers to
// the server's dedup table, which makes cross-path retries consistent —
// both sides treat seq ≤ last-applied as a duplicate.
func (c *ShmClient) SeqAccumulate(dst, src Handle, client, seq uint64) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false, errShmClientClosed
	}
	if seq == 0 {
		return false, fmt.Errorf("smb shm seq-accumulate: sequence must be nonzero")
	}
	dm, sm := c.maps[dst], c.maps[src]
	if dm == nil || sm == nil {
		c.ctlOps.Add(1)
		var applied bool
		err := c.withCtlLocked(func(ctl *StreamClient) error {
			rd, err := c.resolveLocked(ctl, dst)
			if err != nil {
				return err
			}
			rs, err := c.resolveLocked(ctl, src)
			if err != nil {
				return err
			}
			applied, err = ctl.SeqAccumulate(rd, rs, client, seq)
			return err
		})
		return applied, err
	}
	if seq <= c.seqs[client] {
		return false, nil
	}
	if err := c.accumulateLocked(dst, src); err != nil {
		return false, err
	}
	//lint:ignore hotalloc one map insert per pusher lifetime; steady-state stamps overwrite the entry
	c.seqs[client] = seq
	return true, nil
}

// NextSeq draws a fresh push sequence number (wire-fallback parity with
// the supervised client's internal stamping).
func (c *ShmClient) NextSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wireSeq++
	return c.wireSeq
}

// ClientID returns the dedup identity of this client's own pushes.
func (c *ShmClient) ClientID() uint64 { return c.cfg.ClientID }

// Version implements Notifier: the shared version word for mapped
// segments, a control round trip otherwise.
func (c *ShmClient) Version(h Handle) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, errShmClientClosed
	}
	if m := c.maps[h]; m != nil {
		return m.sh.version(), nil
	}
	var v uint64
	err := c.withCtlLocked(func(ctl *StreamClient) error {
		rh, err := c.resolveLocked(ctl, h)
		if err != nil {
			return err
		}
		v, err = ctl.Version(rh)
		return err
	})
	return v, err
}

// WaitUpdate implements Notifier. Mapped segments park on the shared
// version futex without holding the client mutex, so watchers do not
// starve the data path; Close and Detach cancel the park. The waiter
// registers in the mapping's WaitGroup while still under c.mu (the mapping
// is provably not yet released), which is what lets release() order every
// parked waiter's exit strictly before the munmap.
func (c *ShmClient) WaitUpdate(h Handle, since uint64) (uint64, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, errShmClientClosed
	}
	if m := c.maps[h]; m != nil {
		m.waiters.Add(1)
		c.mu.Unlock()
		v, _, err := m.sh.waitVersion(since, m.done)
		m.waiters.Done()
		if err != nil {
			return 0, fmt.Errorf("smb shm wait since %d: %w", since, err)
		}
		return v, nil
	}
	defer c.mu.Unlock()
	var v uint64
	err := c.withCtlLocked(func(ctl *StreamClient) error {
		rh, err := c.resolveLocked(ctl, h)
		if err != nil {
			return err
		}
		v, err = ctl.WaitUpdate(rh, since)
		return err
	})
	return v, err
}

// EnableTrace makes the control connection negotiate the trace extension
// now and after every redial. Mapped data verbs never cross the wire, so
// trace context rides only the control verbs; the worker-side tracer spans
// cover the mapped operations themselves.
func (c *ShmClient) EnableTrace() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wantTrace = true
	if c.ctl != nil {
		if ok, _ := c.ctl.NegotiateTrace(); ok {
			c.ctl.SetTraceContext(c.tc)
		}
	}
}

// SetTraceContext implements TraceCarrier.
func (c *ShmClient) SetTraceContext(tc TraceContext) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tc = tc
	if c.ctl != nil {
		c.ctl.SetTraceContext(tc)
	}
}

// ClearTraceContext implements TraceCarrier.
func (c *ShmClient) ClearTraceContext() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tc = TraceContext{}
	if c.ctl != nil {
		c.ctl.ClearTraceContext()
	}
}

// ShmClientStats is a snapshot of the client's transport counters.
type ShmClientStats struct {
	MappedSegments int64 // live mappings
	MappedOps      int64 // data verbs served from mapped stripes
	CtlOps         int64 // data verbs that fell back to the wire
	Reconnects     int64 // control-socket redials after the first dial
}

// Stats returns a snapshot of the client's transport counters.
func (c *ShmClient) Stats() ShmClientStats {
	return ShmClientStats{
		MappedSegments: c.mappedSegs.Load(),
		MappedOps:      c.mappedOps.Load(),
		CtlOps:         c.ctlOps.Load(),
		Reconnects:     c.reconnects.Load(),
	}
}

type shmClientInstruments struct {
	pushBytes *telemetry.Histogram
}

// Instrument registers the client's counters with reg.
func (c *ShmClient) Instrument(reg *telemetry.Registry) {
	reg.GaugeFunc("smb_shm_client_mapped_segments", "segments served zero-copy from a mapping",
		func() float64 { return float64(c.mappedSegs.Load()) })
	reg.CounterFunc("smb_shm_client_mapped_ops_total", "data verbs served from mapped stripes",
		c.mappedOps.Load)
	reg.CounterFunc("smb_shm_client_ctl_ops_total", "data verbs that fell back to the control socket",
		c.ctlOps.Load)
	reg.CounterFunc("smb_shm_client_reconnects_total", "control-socket redials after the first dial",
		c.reconnects.Load)
	c.inst = &shmClientInstruments{
		pushBytes: reg.Histogram("smb_shm_client_push_bytes",
			"payload bytes per mapped write+accumulate", telemetry.ExpBuckets(1024, 4, 10)),
	}
}
