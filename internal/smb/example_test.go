package smb_test

import (
	"fmt"

	"shmcaffe/internal/smb"
	"shmcaffe/internal/tensor"
)

// The canonical SEASGD buffer interaction (paper Fig. 5): the master
// creates the global weight segment, a worker attaches by key, writes its
// weight increment into a private segment and asks the server to
// accumulate it into the global weights.
func Example() {
	store := smb.NewStore()
	master := smb.NewLocalClient(store)

	// Master: create Wg and seed it.
	names := smb.SegmentNames{Job: "demo"}
	wgKey, _ := master.Create(names.Global(), 3*4)
	hMaster, _ := master.Attach(wgKey)
	_ = master.Write(hMaster, 0, tensor.Float32Bytes([]float32{1, 2, 3}))

	// Worker: receives wgKey out of band (MPI broadcast in ShmCaffe).
	worker := smb.NewLocalClient(store)
	hw, _ := worker.Attach(wgKey)
	dwKey, _ := worker.Create(names.Increment(1), 3*4)
	hd, _ := worker.Attach(dwKey)

	// Push an increment ΔWx = {0.5, 0.5, 0.5} and accumulate (Eq. 7).
	_ = worker.Write(hd, 0, tensor.Float32Bytes([]float32{0.5, 0.5, 0.5}))
	_ = worker.Accumulate(hw, hd)

	// Read the updated global weight (Eq. 7 applied).
	buf := make([]byte, 3*4)
	_ = worker.Read(hw, 0, buf)
	wg, _ := tensor.Float32FromBytes(buf)
	fmt.Println(wg)
	// Output: [1.5 2.5 3.5]
}
