package smb_test

import (
	"fmt"

	"shmcaffe/internal/smb"
	"shmcaffe/internal/tensor"
)

// The canonical SEASGD buffer interaction (paper Fig. 5): the master
// creates the global weight segment, a worker attaches by key, writes its
// weight increment into a private segment and asks the server to
// accumulate it into the global weights. Every SMB verb returns an error
// that real callers must check; the example uses must so the happy path
// stays readable while still modelling correct handling.
func Example() {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	store := smb.NewStore()
	master := smb.NewLocalClient(store)

	// Master: create Wg and seed it.
	names := smb.SegmentNames{Job: "demo"}
	wgKey, err := master.Create(names.Global(), 3*4)
	must(err)
	hMaster, err := master.Attach(wgKey)
	must(err)
	must(master.Write(hMaster, 0, tensor.Float32Bytes([]float32{1, 2, 3})))

	// Worker: receives wgKey out of band (MPI broadcast in ShmCaffe).
	worker := smb.NewLocalClient(store)
	hw, err := worker.Attach(wgKey)
	must(err)
	dwKey, err := worker.Create(names.Increment(1), 3*4)
	must(err)
	hd, err := worker.Attach(dwKey)
	must(err)

	// Push an increment ΔWx = {0.5, 0.5, 0.5} and accumulate (Eq. 7).
	must(worker.Write(hd, 0, tensor.Float32Bytes([]float32{0.5, 0.5, 0.5})))
	must(worker.Accumulate(hw, hd))

	// Read the updated global weight (Eq. 7 applied).
	buf := make([]byte, 3*4)
	must(worker.Read(hw, 0, buf))
	wg, err := tensor.Float32FromBytes(buf)
	must(err)
	fmt.Println(wg)
	// Output: [1.5 2.5 3.5]
}
