//go:build !linux || noshm || (!amd64 && !arm64)

package smb

import (
	"io"
	"sync/atomic"
	"time"
)

// Stubs compiled in when the shared-memory transport is unavailable
// (non-linux, the noshm tag, or an arch without a known memfd number).
// ShmSupported() is false, so no shmShared is ever constructed and the
// create/map stubs are unreachable except as defensive errors; the futex
// stubs exist only to satisfy the portable layer's references.

const shmBuildSupported = false

func shmCreateOS(total int) (int, []byte, error) { return -1, nil, ErrShmUnsupported }

func shmMapOS(fd, total int) ([]byte, error) { return nil, ErrShmUnsupported }

func shmCloseOS(fd int, m []byte) {}

func futexWait(w *atomic.Uint32, val uint32, timeoutNs int64) {
	// Unreachable in practice (no mappings exist); sleep briefly so a bug
	// cannot spin a core.
	time.Sleep(time.Millisecond)
}

func futexWakeAll(w *atomic.Uint32) {}

func canPassFD(conn io.ReadWriteCloser) bool { return false }

func sendConnFD(conn io.ReadWriteCloser, fd int) error { return ErrShmUnsupported }

func recvConnFD(conn io.ReadWriteCloser) (int, error) { return -1, ErrShmUnsupported }

func localBootID() uint64 { return 0 }
