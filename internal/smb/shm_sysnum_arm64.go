//go:build linux && !noshm

package smb

// memfd_create is newer than the frozen syscall package, so its number is
// spelled out per architecture (SYS_FUTEX is old enough to be in stdlib).
const sysMemfdCreate = 279
