package smb

import (
	"bytes"
	"errors"
	"testing"

	"shmcaffe/internal/telemetry"
	"shmcaffe/internal/tensor"
)

// The scatter-gather TCP path must be wire-equivalent to the staged path:
// same protocol bytes, same results, same error semantics — just fewer
// copies and syscalls. These tests drive both paths against one server and
// compare outcomes.

const sgTestBytes = 1 << 20 // 1 MiB: > sgMinPayload and > writeAccChunkBytes

func sgPattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + seed
	}
	// Keep the payload float32-aligned garbage out of WriteAccumulate: the
	// fused verb decodes float32s, so build the pattern from small floats.
	f, _ := tensor.Float32View(b)
	for i := range f {
		f[i] = float32(i%257) * 0.5
	}
	return b
}

// TestScatterGatherRoundTrip exercises the three vectored verbs end to end:
// a bulk Write (header+payload in one writev), a bulk Read (direct landing
// in the caller's buffer), and a multi-chunk WriteAccumulate (the whole
// chunk pipeline as a single vectored write).
func TestScatterGatherRoundTrip(t *testing.T) {
	srv := startServer(t)
	c := dialT(t, srv)
	c.EnableScatterGather(true)

	key, err := c.Create("wg", sgTestBytes)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	data := sgPattern(sgTestBytes, 3)
	if err := c.Write(h, 0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, sgTestBytes)
	if err := c.Read(h, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("vectored write/read corrupted the payload")
	}

	// Fused push through the vectored chunk pipeline (4 chunks at 1 MiB).
	kd, err := c.Create("dw", sgTestBytes)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := c.Attach(kd)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteAccumulate(h, hd, data); err != nil {
		t.Fatal(err)
	}
	if err := c.Read(h, 0, got); err != nil {
		t.Fatal(err)
	}
	want, _ := tensor.Float32View(data)
	gf, _ := tensor.Float32View(got)
	for i := range gf {
		if gf[i] != want[i]*2 {
			t.Fatalf("wg[%d] = %v after fused push, want %v", i, gf[i], want[i]*2)
		}
	}
	// The pushed data also landed in dw (WRITE half of the fused verb).
	if err := c.Read(hd, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fused push did not store the increment in src")
	}
}

// TestScatterGatherWireEquivalence runs the same operations through a
// vectored and a staged client and asserts bitwise-identical segment
// contents — the SG path changes syscalls, never bytes.
func TestScatterGatherWireEquivalence(t *testing.T) {
	srv := startServer(t)
	sg := dialT(t, srv)
	sg.EnableScatterGather(true)
	plain := dialT(t, srv)

	data := sgPattern(sgTestBytes, 9)
	run := func(c *StreamClient, name string) []byte {
		t.Helper()
		key, err := c.Create(name, sgTestBytes)
		if err != nil {
			t.Fatal(err)
		}
		h, err := c.Attach(key)
		if err != nil {
			t.Fatal(err)
		}
		kd, err := c.Create(name+"-dw", sgTestBytes)
		if err != nil {
			t.Fatal(err)
		}
		hd, err := c.Attach(kd)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Write(h, 0, data); err != nil {
			t.Fatal(err)
		}
		if err := c.WriteAccumulate(h, hd, data); err != nil {
			t.Fatal(err)
		}
		out := make([]byte, sgTestBytes)
		if err := c.Read(h, 0, out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a := run(sg, "sg")
	b := run(plain, "plain")
	if !bytes.Equal(a, b) {
		t.Fatal("vectored and staged paths produced different segment contents")
	}
}

// TestScatterGatherErrorReply sends a bulk Read for a dead handle through
// the direct-landing path: the small error frame takes the slow path, the
// error surfaces as a remote error, and the connection stays usable.
func TestScatterGatherErrorReply(t *testing.T) {
	srv := startServer(t)
	c := dialT(t, srv)
	c.EnableScatterGather(true)

	dst := make([]byte, sgTestBytes)
	err := c.Read(Handle(999), 0, dst)
	if err == nil {
		t.Fatal("read from unknown handle succeeded")
	}
	if errors.Is(err, ErrTransport) {
		t.Fatalf("remote error surfaced as transport poison: %v", err)
	}
	// Framing survived the error reply: the next bulk round trip works.
	key, err := c.Create("wg", sgTestBytes)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	data := sgPattern(sgTestBytes, 5)
	if err := c.Write(h, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := c.Read(h, 0, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("post-error readback corrupted")
	}
}

// TestScatterGatherTrace runs the vectored verbs with wire tracing
// negotiated: the trace extension rides the stamped headers (sgStampHdr)
// instead of the staged writer, and results stay correct.
func TestScatterGatherTrace(t *testing.T) {
	srv := startServer(t)
	srv.SetTracer(telemetry.NewTracer(4096))
	c := dialT(t, srv)
	c.EnableScatterGather(true)
	ok, err := c.NegotiateTrace()
	if err != nil || !ok {
		t.Fatalf("NegotiateTrace = (%v, %v)", ok, err)
	}
	c.SetTraceContext(TraceContext{TraceID: 77, SpanID: 1, Rank: 2, Iter: 3})
	defer c.ClearTraceContext()

	key, err := c.Create("wg", sgTestBytes)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	kd, err := c.Create("dw", sgTestBytes)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := c.Attach(kd)
	if err != nil {
		t.Fatal(err)
	}
	data := sgPattern(sgTestBytes, 11)
	if err := c.Write(h, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteAccumulate(h, hd, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, sgTestBytes)
	if err := c.Read(h, 0, got); err != nil {
		t.Fatal(err)
	}
	want, _ := tensor.Float32View(data)
	gf, _ := tensor.Float32View(got)
	for i := range gf {
		if gf[i] != want[i]*2 {
			t.Fatalf("traced fused push wg[%d] = %v, want %v", i, gf[i], want[i]*2)
		}
	}
}

// TestScatterGatherSteadyStateZeroAlloc holds the registered-buffer
// contract: once warmed, the vectored bulk verbs allocate nothing per op on
// the client (the in-process server shares the heap, so the guard uses the
// same epsilon as the staged-path test in alloc_test.go).
func TestScatterGatherSteadyStateZeroAlloc(t *testing.T) {
	srv := startServer(t)
	c := dialT(t, srv)
	c.EnableScatterGather(true)

	key, err := c.Create("wg", sgTestBytes)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	kd, err := c.Create("dw", sgTestBytes)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := c.Attach(kd)
	if err != nil {
		t.Fatal(err)
	}
	data := sgPattern(sgTestBytes, 13)
	buf := make([]byte, sgTestBytes)
	for i := 0; i < 4; i++ { // warm every grow-only buffer
		if err := c.Write(h, 0, data); err != nil {
			t.Fatal(err)
		}
		if err := c.Read(h, 0, buf); err != nil {
			t.Fatal(err)
		}
		if err := c.WriteAccumulate(h, hd, data); err != nil {
			t.Fatal(err)
		}
	}
	const eps = 0.5
	if a := testing.AllocsPerRun(50, func() {
		if err := c.Write(h, 0, data); err != nil {
			t.Fatal(err)
		}
	}); a > eps {
		t.Errorf("vectored Write allocates %.1f per op, want ~0", a)
	}
	if a := testing.AllocsPerRun(50, func() {
		if err := c.Read(h, 0, buf); err != nil {
			t.Fatal(err)
		}
	}); a > eps {
		t.Errorf("vectored Read allocates %.1f per op, want ~0", a)
	}
	if a := testing.AllocsPerRun(50, func() {
		if err := c.WriteAccumulate(h, hd, data); err != nil {
			t.Fatal(err)
		}
	}); a > eps {
		t.Errorf("vectored WriteAccumulate allocates %.1f per op, want ~0", a)
	}
}

// TestSupervisedScatterGather wires the SG flag through the supervised
// client: every connection (including reconnects) comes up vectored, and
// the exactly-once push protocol holds across a connection loss.
func TestSupervisedScatterGather(t *testing.T) {
	srv := startServer(t)
	c := NewSupervisedClient(SupervisedConfig{
		Addr:          srv.Addr(),
		ScatterGather: true,
		ClientID:      71,
	})
	defer c.Close()

	key, err := c.Create("wg", sgTestBytes)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	kd, err := c.Create("dw", sgTestBytes)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := c.Attach(kd)
	if err != nil {
		t.Fatal(err)
	}
	data := sgPattern(sgTestBytes, 17)
	if err := c.WriteAccumulate(h, hd, data); err != nil {
		t.Fatal(err)
	}
	// Kill the live connection; the next push must reconnect, re-enable SG,
	// and apply exactly once.
	c.mu.Lock()
	c.conn.conn.Close()
	c.mu.Unlock()
	if err := c.WriteAccumulate(h, hd, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, sgTestBytes)
	if err := c.Read(h, 0, got); err != nil {
		t.Fatal(err)
	}
	want, _ := tensor.Float32View(data)
	gf, _ := tensor.Float32View(got)
	for i := range gf {
		if gf[i] != want[i]*2 {
			t.Fatalf("wg[%d] = %v after reconnect push, want %v", i, gf[i], want[i]*2)
		}
	}
	if c.Stats().Reconnects < 1 {
		t.Fatalf("stats %+v, want at least one reconnect", c.Stats())
	}
}
