package smb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Copy-on-write versioned snapshots (DESIGN.md §17).
//
// Store.Read is atomic per 64 KiB stripe only: a reader spanning stripes
// can observe a buffer with some stripes before and some after a
// concurrent Accumulate — tolerable for SEASGD's relaxed weight pulls,
// a correctness bug the moment the live buffer feeds inference. Snapshot
// gives multi-stripe readers a consistent cut without funneling the write
// path through a reader lock convoy:
//
//   - Every mutating store operation (Write, Accumulate, each streamed
//     WriteAccumulateAt chunk) holds its target segment's op gate in read
//     mode for the whole sweep. Steady state this is one uncontended
//     RWMutex.RLock per op — the write path stays wait-free.
//   - Snapshot takes the gate exclusively for the brief cut: with no op
//     mid-sweep it arms one copy-on-write mark per stripe, records the
//     version, and registers itself on the segment. O(stripes) stores; no
//     data is copied at cut time.
//   - Writers re-entering a stripe first service the marks: the stripe's
//     pre-image is copied once into a pooled COW page and published, then
//     the stripe's epoch word goes odd for the duration of the mutation.
//   - Snapshot readers are lock-free: a stripe with a published page reads
//     the page; a pristine stripe seqlock-reads the live bytes (epoch even
//     and unchanged across the copy, and still no page ⇒ the bytes are the
//     cut's bytes). A torn attempt retries; a bounded retry storm falls
//     back to the stripe's read lock, which always succeeds.
//
// Exported (memfd-backed) segments cannot COW against mapped writers in
// other processes, so their snapshots copy eagerly under the shared
// snapshot gate in the control page (shmseg.go): mapped clients hold the
// gate in read mode per op, the cut drains them and copies the segment
// once. Snapshot reads then serve from the private copy.

// ErrUnknownSnapshot reports a snapshot ID that is not live on this store
// (never taken, already released, or taken by a server incarnation that
// has since restarted). Callers recover by taking a fresh snapshot.
var ErrUnknownSnapshot = errors.New("smb: unknown snapshot")

// SnapID identifies one live snapshot on one store.
type SnapID uint64

// SnapInfo describes a snapshot cut: its ID, the segment version the cut
// captured, and the segment size in bytes. For sharded snapshots Version
// is the sum of the per-shard versions (a scalar view of the version
// vector; still monotonic per logical segment).
type SnapInfo struct {
	ID      SnapID
	Version uint64
	Size    int
}

// Snapshotter is the optional consistent-read capability of a Client:
// Snapshot takes a cut of the segment behind h, SnapRead serves bytes of
// that cut (bitwise stable for the snapshot's lifetime, whatever the
// write traffic), and SnapRelease retires it. Callers feature-test with a
// type assertion, exactly like WriteAccumulator.
type Snapshotter interface {
	Snapshot(h Handle) (SnapInfo, error)
	SnapRead(id SnapID, off int, dst []byte) error
	SnapRelease(id SnapID) error
}

// snapReadMaxTries bounds the seqlock retry loop of one stripe before the
// reader falls back to the stripe's read lock. Each failed attempt means a
// writer ran during our copy — and the first writer after the cut
// publishes the stripe's COW page, so the second attempt normally serves
// from the page. The bound only matters for pathological schedules.
const snapReadMaxTries = 8

// snapPagePool recycles COW pages (one stripe each) across snapshots, so
// a steady snapshot-refresh loop against a storming writer reuses the
// same few pages instead of churning the heap.
var snapPagePool = sync.Pool{New: func() any {
	b := make([]byte, chunkBytes)
	return &b
}}

// snapCounters is the store's always-on snapshot accounting.
type snapCounters struct {
	nextID    atomic.Uint64
	taken     atomic.Int64 // snapshots cut
	live      atomic.Int64 // cut but not yet released
	reads     atomic.Int64 // SnapRead verbs served
	cowPages  atomic.Int64 // stripe pre-images copied by writers
	retries   atomic.Int64 // seqlock attempts re-run after a torn copy
	exhausted atomic.Int64 // stripe reads that fell back to the stripe lock
	gateFails atomic.Int64 // exported cuts whose mapped-writer drain timed out
}

// snapState is one live snapshot. Exactly one of {marks/pages, buf} is in
// use: heap segments snapshot lazily (COW against the live bytes),
// exported segments snapshot eagerly into buf.
type snapState struct {
	seg     *segment
	id      SnapID
	version uint64

	// Lazy COW state (heap segments). marks[ci] == 1 while stripe ci is
	// still pristine since the cut; the first writer swaps it to 0, copies
	// the pre-image into a pooled page, and publishes it in pages[ci].
	marks []atomic.Uint32
	pages []atomic.Pointer[[]byte]

	// Eager copy (exported segments): the whole cut, taken under the
	// shared snapshot gate.
	buf []byte

	c *snapCounters
}

// cowStripe services the pending copy-on-write marks of stripe ci before
// the caller mutates it. Runs inside the stripe's exclusive lock and
// under the op gate in read mode, so it cannot race a snapshot being
// registered or released. Off the hot path unless a snapshot is live.
func (seg *segment) cowStripe(ci int, snaps []*snapState) {
	lo, hi := seg.chunkRange(ci)
	for _, sn := range snaps {
		if sn.marks[ci].Swap(0) != 1 {
			continue
		}
		p := snapPagePool.Get().(*[]byte)
		if cap(*p) < hi-lo {
			*p = make([]byte, hi-lo)
		}
		*p = (*p)[:hi-lo]
		copy(*p, seg.data[lo:hi])
		// Publish before the epoch word goes odd (program order of the
		// atomics): a reader that sees the epoch disturbed is guaranteed
		// to find the page on its retry.
		sn.pages[ci].Store(p)
		sn.c.cowPages.Add(1)
	}
}

// Snapshot takes a consistent cut of the segment behind h and returns its
// ID, captured version, and size. The cut is atomic with respect to every
// whole store operation: Write, Accumulate, SeqAccumulate, and each
// individual WriteAccumulateAt chunk (an N-chunk streamed push is N gate
// sections, so a snapshot may land between chunks of one streamed
// sequence — see DESIGN.md §17 for the exact contract per transport).
//
// Heap segments cut lazily (no bytes copied until a writer returns);
// exported segments copy eagerly under the shared snapshot gate, which
// drains mapped writers in other processes first.
func (s *Store) Snapshot(h Handle) (SnapInfo, error) {
	seg, err := s.lookupHandle(h)
	if err != nil {
		return SnapInfo{}, err
	}
	sn := &snapState{seg: seg, c: &s.snapc}
	if seg.shm != nil {
		sn.buf = make([]byte, len(seg.data))
		seg.gate.Lock() // excludes in-process ops
		drained := seg.shm.snapGateLock()
		if drained {
			copy(sn.buf, seg.data)
			sn.version = seg.shm.version()
			seg.shm.snapGateUnlock()
		} else {
			// The mapped-writer drain timed out — a mapped client died (or
			// stalled) mid-op and its gate hold cannot be attributed or
			// reaped. Degrade to a per-stripe-atomic copy under the shared
			// stripe words rather than block serving forever; the cut is
			// still consistent against every in-process op (the gate above)
			// and the degradation is counted.
			s.snapc.gateFails.Add(1)
			for ci := 0; ci < seg.shm.stripes; ci++ {
				lo, hi := seg.chunkRange(ci)
				seg.shm.lockStripe(ci, shmServerLease)
				copy(sn.buf[lo:hi], seg.data[lo:hi])
				seg.shm.unlockStripe(ci, shmServerLease)
			}
			sn.version = seg.shm.version()
		}
		seg.gate.Unlock()
	} else {
		n := len(seg.locks)
		sn.marks = make([]atomic.Uint32, n)
		sn.pages = make([]atomic.Pointer[[]byte], n)
		for i := range sn.marks {
			sn.marks[i].Store(1)
		}
		seg.gate.Lock() // no op is mid-sweep while held
		sn.version = s.versions.get(seg)
		old := seg.snaps.Load()
		var list []*snapState
		if old != nil {
			list = append(list, *old...)
		}
		list = append(list, sn)
		seg.snaps.Store(&list)
		seg.gate.Unlock()
	}
	sn.id = SnapID(s.snapc.nextID.Add(1))
	s.snapMu.Lock()
	table := make(map[SnapID]*snapState)
	if old := s.snapTable.Load(); old != nil {
		for k, v := range *old {
			table[k] = v
		}
	}
	table[sn.id] = sn
	s.snapTable.Store(&table)
	s.snapMu.Unlock()
	s.snapc.taken.Add(1)
	s.snapc.live.Add(1)
	return SnapInfo{ID: sn.id, Version: sn.version, Size: len(seg.data)}, nil
}

// SnapRead copies len(dst) bytes of snapshot id starting at off into dst.
// The result is bitwise identical across calls for the snapshot's
// lifetime, regardless of concurrent writes to the underlying segment.
// The steady-state path takes no locks and allocates nothing
// (alloc_test.go pins this).
//
//shm:hotpath
func (s *Store) SnapRead(id SnapID, off int, dst []byte) error {
	var sn *snapState
	if t := s.snapTable.Load(); t != nil {
		sn = (*t)[id]
	}
	if sn == nil {
		return fmt.Errorf("snap read %d: %w", uint64(id), ErrUnknownSnapshot)
	}
	size := len(sn.seg.data)
	if off < 0 || off+len(dst) > size {
		return fmt.Errorf("snap read [%d,%d) of %d-byte snapshot %d: %w",
			off, off+len(dst), size, id, ErrOutOfRange)
	}
	ins := s.inst.Load()
	var t0 time.Time
	if ins != nil {
		t0 = time.Now()
	}
	if sn.buf != nil {
		copy(dst, sn.buf[off:off+len(dst)])
	} else {
		for covered := 0; covered < len(dst); {
			start := off + covered
			ci := start / chunkBytes
			_, hi := sn.seg.chunkRange(ci)
			if end := off + len(dst); hi > end {
				hi = end
			}
			s.snapReadStripe(sn, ci, start, dst[covered:covered+(hi-start)])
			covered += hi - start
		}
	}
	s.snapc.reads.Add(1)
	s.stats.bytesRead.Add(int64(len(dst)))
	if ins != nil {
		ins.snapReadLatency.ObserveSeconds(time.Since(t0).Nanoseconds())
	}
	return nil
}

// snapReadStripe serves [start, start+len(dst)) of stripe ci from
// snapshot sn. Page first (a writer already preserved the pre-image);
// otherwise a seqlock read of the live bytes: if the stripe's epoch is
// even and unchanged across the copy AND no page has been published, no
// writer has touched the stripe since the cut — the live bytes are the
// cut's bytes. The page re-check after the copy is load-bearing: a writer
// that completed a full publish+mutate cycle between our epoch loads
// would otherwise validate a post-cut copy.
//
//shm:hotpath
func (s *Store) snapReadStripe(sn *snapState, ci, start int, dst []byte) {
	seg := sn.seg
	lo := ci * chunkBytes
	// The optimistic branch below is a seqlock: it deliberately copies
	// bytes a writer may be mutating and discards the copy when the epoch
	// says so. That is an intentional data race the detector cannot see
	// past the validation of, so race builds serve through the stripe lock
	// instead — same results, different synchronization.
	if !raceEnabled {
		for tries := 0; tries < snapReadMaxTries; tries++ {
			if p := sn.pages[ci].Load(); p != nil {
				copy(dst, (*p)[start-lo:start-lo+len(dst)])
				return
			}
			if e1 := seg.epochs[ci].Load(); e1&1 == 0 {
				copy(dst, seg.data[start:start+len(dst)])
				if seg.epochs[ci].Load() == e1 && sn.pages[ci].Load() == nil {
					return
				}
			}
			s.snapc.retries.Add(1)
		}
		// A writer storm kept tearing the seqlock attempts. Under the
		// stripe's read lock no writer is mid-mutation, so either the page
		// exists (some writer ran since the cut) or the stripe is still
		// pristine.
		s.snapc.exhausted.Add(1)
	}
	seg.locks[ci].RLock()
	if p := sn.pages[ci].Load(); p != nil {
		copy(dst, (*p)[start-lo:start-lo+len(dst)])
	} else {
		copy(dst, seg.data[start:start+len(dst)])
	}
	seg.locks[ci].RUnlock()
}

// SnapRelease retires a snapshot: the ID stops resolving, COW pages
// return to the pool, and writers stop preserving pre-images for it.
// Reads of the snapshot still in flight during the release race it and
// may observe recycled page contents — release after the last read
// returns, as one would free any buffer.
func (s *Store) SnapRelease(id SnapID) error {
	s.snapMu.Lock()
	var sn *snapState
	old := s.snapTable.Load()
	if old != nil {
		sn = (*old)[id]
	}
	if sn == nil {
		s.snapMu.Unlock()
		return fmt.Errorf("snap release %d: %w", uint64(id), ErrUnknownSnapshot)
	}
	table := make(map[SnapID]*snapState, len(*old)-1)
	for k, v := range *old {
		if k != id {
			table[k] = v
		}
	}
	s.snapTable.Store(&table)
	s.snapMu.Unlock()
	s.snapc.live.Add(-1)
	if sn.buf != nil {
		return nil
	}
	seg := sn.seg
	seg.gate.Lock()
	if old := seg.snaps.Load(); old != nil {
		list := make([]*snapState, 0, len(*old))
		for _, o := range *old {
			if o != sn {
				list = append(list, o)
			}
		}
		if len(list) == 0 {
			seg.snaps.Store(nil)
		} else {
			seg.snaps.Store(&list)
		}
	}
	seg.gate.Unlock()
	// cowStripe runs under the gate in read mode, so after the exclusive
	// section above no writer can still be copying into sn's pages; they
	// are quiescent and safe to recycle.
	for i := range sn.pages {
		if p := sn.pages[i].Swap(nil); p != nil {
			snapPagePool.Put(p)
		}
	}
	return nil
}

// SnapCount returns the number of live snapshots (scrape gauge and test
// hook).
func (s *Store) SnapCount() int { return int(s.snapc.live.Load()) }

// LocalClient passthroughs.

// Snapshot implements Snapshotter.
func (c *LocalClient) Snapshot(h Handle) (SnapInfo, error) { return c.store.Snapshot(h) }

// SnapRead implements Snapshotter.
func (c *LocalClient) SnapRead(id SnapID, off int, dst []byte) error {
	return c.store.SnapRead(id, off, dst)
}

// SnapRelease implements Snapshotter.
func (c *LocalClient) SnapRelease(id SnapID) error { return c.store.SnapRelease(id) }

var _ Snapshotter = (*LocalClient)(nil)
