package smb

import (
	"errors"
	"fmt"
	"time"
)

// Chunk-pipelined WRITE+ACCUMULATE streaming.
//
// The classic worker push (Fig. 6 T.A2/T.A3) is two sequential round trips:
// Write the full ΔWx segment, wait for the ack, then Accumulate it into Wg
// and wait again — the server sits idle while the multi-MB frame is on the
// wire, and the wire sits idle while the server adds. The chunked protocol
// turns the push into a pipeline: the client splits the payload into
// stripe-aligned chunks and streams one opWriteAccChunk frame per chunk
// with no per-chunk reply; the server applies chunk k (copy into the src
// segment, add into the dst segment, under the same 64 KiB stripe locks
// every other verb honours) while chunk k+1 is still in flight. A final
// opWriteAccEnd frame collects a single ack carrying the sequence's first
// error, so the failure surface matches the unfused Write+Accumulate pair.
//
// Per-stripe atomicity is unchanged: each chunk covers whole stripes (the
// chunk size equals the stripe size and offsets are stripe-aligned), every
// stripe is copied and accumulated under its exclusive lock, and version
// notification still fires once per logical operation (on the End frame),
// exactly as one Write plus one Accumulate would. See DESIGN.md §11.

const (
	// opWriteAccChunk carries one chunk of a WriteAccumulate sequence. The
	// server applies it immediately and sends no reply.
	opWriteAccChunk opcode = 11
	// opWriteAccEnd closes the sequence. The server replies once, with the
	// sequence's first error or OK — the single ack of the whole pipeline.
	opWriteAccEnd opcode = 12
)

// writeAccPad pads the 24-byte chunk header so the float32 data starts at
// body offset 28. Frame bodies live at the 8-aligned base of the scratch
// buffer and the opcode occupies body offset 0, so with 3 pad bytes the
// data lands 4-byte aligned and the server-side accumulate can take the
// zero-copy tensor.Float32View fast path instead of the pooled decode.
const writeAccPad = 3

// errNoReply is the dispatch sentinel for streamed frames that must not
// generate a response (the pipelined chunk frames).
var errNoReply = errors.New("smb: no reply for streamed frame")

// WriteAccumulator is the optional fused-transfer capability of a Client:
// write data into the src segment starting at offset 0 and accumulate the
// written range into dst, as one pipelined operation. Callers feature-test
// with a type assertion and fall back to Write + Accumulate.
type WriteAccumulator interface {
	WriteAccumulate(dst, src Handle, data []byte) error
}

// WriteAccumulateAt applies one chunk of a chunked WRITE+ACCUMULATE: data
// is copied into the src segment at off, and the same byte range of dst
// gets the freshly written values added in (float32-wise). Both segments
// must have equal size; off and len(data) must be float32-aligned. Each
// overlapped stripe is processed under the exclusive locks of both
// segments (taken in segment-key order, so chunk streams crossing in
// opposite directions cannot deadlock), which preserves the exact
// no-lost-increments guarantee of Accumulate.
//
// Version bumps and the per-operation counters are deferred to
// FinishWriteAccumulate so an N-chunk sequence counts as exactly one Write
// plus one Accumulate; only the byte counters advance per chunk.
//
//shm:hotpath
func (s *Store) WriteAccumulateAt(dst, src Handle, off int, data []byte) error {
	dseg, err := s.lookupHandle(dst)
	if err != nil {
		return err
	}
	sseg, err := s.lookupHandle(src)
	if err != nil {
		return err
	}
	if len(dseg.data) != len(sseg.data) {
		return fmt.Errorf("write-accumulate %q (%d B) += %q (%d B): %w",
			dseg.name, len(dseg.data), sseg.name, len(sseg.data), ErrSizeMismatch)
	}
	if off < 0 || off+len(data) > len(sseg.data) {
		return fmt.Errorf("write-accumulate [%d,%d) of %d-byte segment %q: %w",
			off, off+len(data), len(sseg.data), sseg.name, ErrOutOfRange)
	}
	if off%4 != 0 || len(data)%4 != 0 {
		return fmt.Errorf("write-accumulate chunk [%d,%d) of %q: %w",
			off, off+len(data), sseg.name, ErrNotFloatAligned)
	}
	ins := s.inst.Load()
	timed := ins != nil
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	var waitNs int64

	// Snapshot fence: one chunk mutates both segments (copy into src, add
	// into dst), so each chunk is one cut-atomic unit against snapshots of
	// either. Both gates in segment-key order — the same discipline as the
	// stripe locks — so concurrent chunk streams crossing in opposite
	// directions cannot deadlock. A snapshot can land between chunks of an
	// N-chunk streamed sequence; DESIGN.md §17 documents that granularity.
	if dseg == sseg {
		dseg.gate.RLock()
		defer dseg.gate.RUnlock()
	} else if dseg.key < sseg.key {
		//lint:ignore lockorder the two gates of this class are taken in segment-key order (this branch and its mirror below), so concurrent chunk streams cannot cross
		dseg.gate.RLock()
		defer dseg.gate.RUnlock()
		sseg.gate.RLock()
		defer sseg.gate.RUnlock()
	} else {
		sseg.gate.RLock()
		defer sseg.gate.RUnlock()
		dseg.gate.RLock()
		defer dseg.gate.RUnlock()
	}
	for covered := 0; covered < len(data); {
		start := off + covered
		ci := start / chunkBytes
		_, hi := sseg.chunkRange(ci)
		if end := off + len(data); hi > end {
			hi = end
		}
		part := data[covered : covered+(hi-start)]
		if dseg == sseg {
			// Self-target: one lock; the write lands and is doubled in place.
			waitNs += dseg.lockStripe(ci, timed)
			copy(sseg.data[start:hi], part)
			err = accumulateChunk(dseg.data[start:hi], dseg.data[start:hi])
			dseg.unlockStripe(ci)
		} else {
			// Both stripes exclusively — the copy mutates src, the add
			// mutates dst — in segment-key order (same discipline as
			// Accumulate, so mixed chunked/unfused traffic cannot deadlock;
			// mapped clients order their shared lock words the same way).
			if dseg.key < sseg.key {
				waitNs += dseg.lockStripe(ci, timed)
				//lint:ignore lockorder second stripe of the same class is taken in segment-key order (dseg.key < sseg.key here, the mirror branch below), so concurrent pairs cannot cross
				waitNs += sseg.lockStripe(ci, timed)
			} else {
				waitNs += sseg.lockStripe(ci, timed)
				waitNs += dseg.lockStripe(ci, timed)
			}
			// copy+add rather than the mapped path's fused NT kernel: this
			// fold overlaps the next chunk's wire transfer (T.A2/A3), so its
			// latency is off the critical path, and the ERMSB copy keeps the
			// folded stripes cache-resident for the Reads the server is about
			// to serve — the opposite tradeoff from ShmClient.WriteAccumulate,
			// whose fold IS the whole op (see copyAccumulateChunk).
			copy(sseg.data[start:hi], part)
			err = accumulateChunk(dseg.data[start:hi], sseg.data[start:hi])
			sseg.unlockStripe(ci)
			dseg.unlockStripe(ci)
		}
		if err != nil {
			return err
		}
		covered += hi - start
	}
	// One chunk moves len(data) bytes into src and len(data) accumulated
	// bytes into dst — the same accounting the unfused Write + Accumulate
	// pair reports over the whole segment.
	s.stats.bytesWrite.Add(int64(2 * len(data)))
	if timed {
		ins.chunkApply.ObserveSeconds(time.Since(t0).Nanoseconds())
		ins.stripeWait.ObserveSeconds(waitNs)
	}
	return nil
}

// FinishWriteAccumulate closes a chunked WRITE+ACCUMULATE sequence: it
// bumps the version of both segments (src was written, dst accumulated —
// the same notifications one Write plus one Accumulate would emit) and
// advances the per-operation counters once for the whole sequence.
func (s *Store) FinishWriteAccumulate(dst, src Handle) error {
	dseg, err := s.lookupHandle(dst)
	if err != nil {
		return err
	}
	sseg, err := s.lookupHandle(src)
	if err != nil {
		return err
	}
	s.versions.bump(sseg)
	if dseg != sseg {
		s.versions.bump(dseg)
	}
	s.stats.writes.Add(1)
	s.stats.accumulates.Add(1)
	return nil
}

// WriteAccumulate implements WriteAccumulator for the in-process transport:
// one direct store call (the store already walks stripe by stripe).
func (c *LocalClient) WriteAccumulate(dst, src Handle, data []byte) error {
	if err := c.store.WriteAccumulateAt(dst, src, 0, data); err != nil {
		return err
	}
	return c.store.FinishWriteAccumulate(dst, src)
}

var _ WriteAccumulator = (*LocalClient)(nil)

// writeAccChunkBytes is the client-side chunk size: a whole multiple of the
// lock stripe, so every streamed chunk maps to whole stripes on the server
// and stripe-level contention granularity is unchanged. Four stripes per
// wire chunk amortizes the per-frame syscall and header-staging cost (one
// conn.Write per chunk) while keeping the chunk small enough that the
// server's copy+fold of chunk k stays cache-resident and overlaps the wire
// transfer of chunk k+1.
const writeAccChunkBytes = 4 * chunkBytes

// writeAccPadding is the zero padding appended after the chunk header.
var writeAccPadding [writeAccPad]byte

// WriteAccumulate implements WriteAccumulator over the wire: data is split
// into stripe-aligned chunks streamed back-to-back with no per-chunk reply
// — the server accumulates chunk k while chunk k+1 is on the wire — and one
// final End round trip collects the sequence's status. Request staging uses
// the client's grow-only scratch, so the steady-state path allocates
// nothing.
//
//shm:hotpath
func (c *StreamClient) WriteAccumulate(dst, src Handle, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return fmt.Errorf("smb: connection poisoned: %w", c.broken)
	}
	if c.sg && len(data) >= sgMinPayload {
		// Scatter-gather: every chunk header is staged in one slab and the
		// whole sequence — chunk frames plus the End frame — goes out as a
		// single vectored write (sg.go). Wire bytes are identical.
		return c.writeAccumulateSGLocked(dst, src, data)
	}
	dc, deadlines := c.conn.(deadlineConn)
	deadlines = deadlines && c.opTimeout > 0
	chunks := 0
	for off := 0; off < len(data); off += writeAccChunkBytes {
		end := off + writeAccChunkBytes
		if end > len(data) {
			end = len(data)
		}
		var t0 time.Time
		if c.chunkInst != nil {
			t0 = time.Now()
		}
		c.beginLocked().u64(uint64(dst)).u64(uint64(src)).u64(uint64(off)).
			bytes(writeAccPadding[:]).bytes(data[off:end])
		if deadlines {
			dc.SetWriteDeadline(time.Now().Add(c.opTimeout))
		}
		var werr error
		if c.traceOK && c.tc.TraceID != 0 {
			// Chunk frames carry the trace header too: the server's per-chunk
			// srv.chunk spans then parent onto the same client push span as
			// the End ack, rendering the pipeline under one trace.
			werr = writeFrameTracedInto(c.conn, byte(opWriteAccChunk), c.req.buf, c.tc, &c.wire)
		} else {
			werr = writeFrameInto(c.conn, byte(opWriteAccChunk), c.req.buf, &c.wire)
		}
		if err := werr; err != nil {
			// A mid-sequence failure leaves the stream desynchronized: the
			// server saw some prefix of the chunks and is waiting for the
			// rest. The seed returned the error but kept the connection,
			// so the next verb's frame landed inside the half-finished
			// sequence. Poison instead — the connection is done.
			return c.poisonLocked(fmt.Errorf("smb chunk stream: %w: %w", ErrTransport, err))
		}
		if deadlines {
			dc.SetWriteDeadline(time.Time{})
		}
		if c.chunkInst != nil {
			// Time to push one chunk into the transport: under backpressure
			// this is where the pipeline stalls, so the histogram exposes
			// whether the server keeps up with the wire.
			c.chunkInst.chunkWrite.ObserveSeconds(time.Since(t0).Nanoseconds())
		}
		chunks++
	}
	c.beginLocked().u64(uint64(dst)).u64(uint64(src))
	_, err := c.roundTripLocked(opWriteAccEnd)
	if err == nil && c.chunkInst != nil {
		// Every chunk of the sequence is unacknowledged until the End reply:
		// the pipeline depth reached equals the chunk count.
		c.chunkInst.depth.Observe(float64(chunks))
	}
	return err
}

var _ WriteAccumulator = (*StreamClient)(nil)

// WriteAccumulate implements WriteAccumulator for the sharded client:
// len(data) must equal the logical segment size; each server receives its
// shard's slice as a chunked push when the backing client supports it and
// as an unfused Write + Accumulate otherwise. Shards run concurrently.
func (s *ShardedClient) WriteAccumulate(dst, src Handle, data []byte) error {
	dsh, err := s.handle(dst)
	if err != nil {
		return err
	}
	ssh, err := s.handle(src)
	if err != nil {
		return err
	}
	if dsh.total != ssh.total {
		return fmt.Errorf("sharded write-accumulate %d vs %d bytes: %w", dsh.total, ssh.total, ErrSizeMismatch)
	}
	if len(data) != ssh.total {
		return fmt.Errorf("sharded write-accumulate %d bytes into %d-byte segment: %w",
			len(data), ssh.total, ErrSizeMismatch)
	}
	return s.parallelRange(ssh, 0, data, func(i, shardOff int, part []byte) error {
		if wa, ok := s.clients[i].(WriteAccumulator); ok {
			return wa.WriteAccumulate(dsh.subs[i], ssh.subs[i], part)
		}
		if err := s.clients[i].Write(ssh.subs[i], shardOff, part); err != nil {
			return err
		}
		return s.clients[i].Accumulate(dsh.subs[i], ssh.subs[i])
	})
}

var _ WriteAccumulator = (*ShardedClient)(nil)
