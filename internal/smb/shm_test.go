package smb

import (
	"errors"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"shmcaffe/internal/tensor"
)

// startShmServer launches a server exporting memfd segments: TCP for the
// frame protocol plus a unix-domain control socket for the fd-pass
// handshake, with the socket path advertised for auto-negotiation. Skips
// where the build has the transport compiled out.
func startShmServer(t *testing.T) (*Server, string) {
	t.Helper()
	if !ShmSupported() {
		t.Skip("shm transport not supported on this platform/build")
	}
	store := NewStore()
	if err := store.EnableShm(); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "smb.sock")
	uln, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetShmAddr(path)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve()
	}()
	var uwg sync.WaitGroup
	uwg.Add(1)
	go func() {
		defer uwg.Done()
		for {
			conn, err := uln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	t.Cleanup(func() {
		uln.Close()
		uwg.Wait()
		srv.Close()
		<-done
	})
	return srv, path
}

// readF32 reads the first n float32s of h into a fresh slice.
func readF32(t *testing.T, c Client, h Handle, n int) []float32 {
	t.Helper()
	buf := make([]byte, n*4)
	if err := c.Read(h, 0, buf); err != nil {
		t.Fatal(err)
	}
	vals, err := tensor.Float32FromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

func dialShmT(t *testing.T, path string) *ShmClient {
	t.Helper()
	c, err := DialShm(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestShmClientRoundTrip drives every verb through mapped stripes: the
// segment is created over the control socket, mapped via the passed fd, and
// the data verbs never touch the wire.
func TestShmClientRoundTrip(t *testing.T) {
	_, path := startShmServer(t)
	c := dialShmT(t, path)

	const n = 3 * chunkBytes / 4 // 3 stripes of float32s
	key, err := c.Create("wg", n*4)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := c.Lookup("wg"); err != nil || got != key {
		t.Fatalf("lookup = %v, %v, want %v", got, err, key)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Mapped(h) {
		t.Fatal("memfd segment did not map")
	}
	if c.Lease() < 2 {
		t.Fatalf("client lease %d, want >= 2", c.Lease())
	}

	src := make([]float32, n)
	for i := range src {
		src[i] = float32(i % 101)
	}
	if err := c.Write(h, 0, tensor.Float32Bytes(src)); err != nil {
		t.Fatal(err)
	}
	got := readF32(t, c, h, n)
	for i := range got {
		if got[i] != src[i] {
			t.Fatalf("readback[%d] = %v, want %v", i, got[i], src[i])
		}
	}

	// Accumulate across two mapped segments.
	kd, err := c.Create("dw", n*4)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := c.Attach(kd)
	if err != nil {
		t.Fatal(err)
	}
	ones := make([]float32, n)
	for i := range ones {
		ones[i] = 1
	}
	if err := c.Write(hd, 0, tensor.Float32Bytes(ones)); err != nil {
		t.Fatal(err)
	}
	if err := c.Accumulate(h, hd); err != nil {
		t.Fatal(err)
	}
	got = readF32(t, c, h, n)
	for i := range got {
		if got[i] != src[i]+1 {
			t.Fatalf("accumulate[%d] = %v, want %v", i, got[i], src[i]+1)
		}
	}

	// Fused push: Wg += data with data landing in dw.
	if err := c.WriteAccumulate(h, hd, tensor.Float32Bytes(ones)); err != nil {
		t.Fatal(err)
	}
	got = readF32(t, c, h, n)
	for i := range got {
		if got[i] != src[i]+2 {
			t.Fatalf("write+accumulate[%d] = %v, want %v", i, got[i], src[i]+2)
		}
	}
	if st := c.Stats(); st.MappedOps == 0 || st.MappedSegments != 2 {
		t.Fatalf("stats %+v, want mapped traffic on 2 segments", st)
	}
	if err := c.Detach(h); err != nil {
		t.Fatal(err)
	}
	if err := c.Detach(hd); err != nil {
		t.Fatal(err)
	}
	if err := c.Free(key); err != nil {
		t.Fatal(err)
	}
}

// TestShmHeapSegmentWireFallback attaches a segment created before
// EnableShm: it cannot be mapped, so its data verbs ride the control socket
// while mapped segments on the same client stay zero-copy.
func TestShmHeapSegmentWireFallback(t *testing.T) {
	if !ShmSupported() {
		t.Skip("shm transport not supported on this platform/build")
	}
	store := NewStore()
	local := NewLocalClient(store)
	if _, err := local.Create("old", 64); err != nil {
		t.Fatal(err)
	}
	if err := store.EnableShm(); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "smb.sock")
	uln, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	go func() {
		for {
			conn, err := uln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	t.Cleanup(func() { uln.Close(); srv.Close() })

	c := dialShmT(t, path)
	key, err := c.Lookup("old")
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	if c.Mapped(h) {
		t.Fatal("heap segment mapped, want wire fallback")
	}
	want := []float32{1, 2, 3, 4}
	if err := c.Write(h, 0, tensor.Float32Bytes(want)); err != nil {
		t.Fatal(err)
	}
	got := readF32(t, c, h, 4)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("wire readback %v, want %v", got, want)
		}
	}
	if st := c.Stats(); st.CtlOps == 0 {
		t.Fatalf("stats %+v, want wire-fallback traffic", st)
	}
}

// TestShmAutoNegotiate covers the transport registry's decision making:
// against an offering server "auto" yields shm; against a plain TCP server
// it falls back to tcp; forcing "shm" there is a hard error; forcing "tcp"
// against an offering server stays on the wire.
func TestShmAutoNegotiate(t *testing.T) {
	srv, _ := startShmServer(t)
	opts := DialOptions{Addr: srv.Addr(), OpTimeout: 5 * time.Second}
	c, name, err := DialAuto(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if name != "shm" {
		t.Fatalf("negotiated %q, want shm", name)
	}
	if _, ok := c.(*ShmClient); !ok {
		t.Fatalf("negotiated client is %T, want *ShmClient", c)
	}

	// Forced tcp against the same offering server.
	ct, err := DialTransport("tcp", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	if _, ok := ct.(*SupervisedClient); !ok {
		t.Fatalf("forced tcp client is %T, want *SupervisedClient", ct)
	}
	if _, err := ct.Create("tcp-side", 64); err != nil {
		t.Fatal(err)
	}

	// A plain server: auto degrades to tcp, forced shm errors.
	plain := startServer(t)
	popts := DialOptions{Addr: plain.Addr(), OpTimeout: 5 * time.Second}
	cp, name, err := DialAuto(popts)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	if name != "tcp" {
		t.Fatalf("negotiated %q against plain server, want tcp", name)
	}
	if _, err := DialTransport("shm", popts); err == nil {
		t.Fatal("forced shm against a non-offering server succeeded")
	}
}

// TestShmSeqAccumulateDedup extends the exactly-once contract to the mapped
// path: the dedup table lives client-side (a mapped push has no ambiguous
// outcome), and a replayed sequence is acknowledged without re-applying.
func TestShmSeqAccumulateDedup(t *testing.T) {
	_, path := startShmServer(t)
	c := dialShmT(t, path)

	kw, err := c.Create("wg", 16)
	if err != nil {
		t.Fatal(err)
	}
	kd, err := c.Create("dw", 16)
	if err != nil {
		t.Fatal(err)
	}
	wg, err := c.Attach(kw)
	if err != nil {
		t.Fatal(err)
	}
	dw, err := c.Attach(kd)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Mapped(wg) || !c.Mapped(dw) {
		t.Fatal("segments did not map")
	}
	if err := c.Write(dw, 0, tensor.Float32Bytes([]float32{1, 1, 1, 1})); err != nil {
		t.Fatal(err)
	}
	applied, err := c.SeqAccumulate(wg, dw, 42, 1)
	if err != nil || !applied {
		t.Fatalf("first SeqAccumulate = (%v, %v), want (true, nil)", applied, err)
	}
	applied, err = c.SeqAccumulate(wg, dw, 42, 1) // the retry replay
	if err != nil || applied {
		t.Fatalf("replayed SeqAccumulate = (%v, %v), want (false, nil)", applied, err)
	}
	if applied, err := c.SeqAccumulate(wg, dw, 43, 1); err != nil || !applied {
		t.Fatalf("other client's seq 1 = (%v, %v), want (true, nil)", applied, err)
	}
	got := readF32(t, c, wg, 4)
	for i, v := range got {
		if v != 2 { // two distinct pushes applied, the replay skipped
			t.Fatalf("wg[%d] = %v, want 2", i, v)
		}
	}
}

// TestShmCtlReconnect kills the control socket out from under the client:
// the next control verb redials, gets a fresh lease, and mapped segments
// keep working across the blip (the memfd is the process's reference, not
// the socket's).
func TestShmCtlReconnect(t *testing.T) {
	_, path := startShmServer(t)
	c := dialShmT(t, path)

	key, err := c.Create("wg", 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	oldLease := c.Lease()

	c.mu.Lock()
	c.ctl.conn.Close() // yank the socket mid-session
	c.mu.Unlock()

	// Control verbs supervise: redial, fresh lease, lazy re-attach.
	if _, err := c.Lookup("wg"); err != nil {
		t.Fatalf("lookup after control-socket loss: %v", err)
	}
	if c.Lease() == oldLease || c.Lease() < 2 {
		t.Fatalf("lease %d after redial, want fresh lease != %d", c.Lease(), oldLease)
	}
	if st := c.Stats(); st.Reconnects < 1 {
		t.Fatalf("stats %+v, want at least one reconnect", st)
	}
	// The mapping survived the whole affair.
	if err := c.Write(h, 0, tensor.Float32Bytes([]float32{7})); err != nil {
		t.Fatal(err)
	}
	got := readF32(t, c, h, 1)
	if got[0] != 7 {
		t.Fatalf("mapped readback %v after reconnect, want 7", got[0])
	}
}

// TestShmWaitUpdateCrossClient parks one mapped client on the shared
// version futex and wakes it with another client's mapped Write — the
// cross-process notification path, exercised across two mappings of one
// segment in one process.
func TestShmWaitUpdateCrossClient(t *testing.T) {
	_, path := startShmServer(t)
	a := dialShmT(t, path)
	b := dialShmT(t, path)

	key, err := a.Create("wg", 64)
	if err != nil {
		t.Fatal(err)
	}
	ha, err := a.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mapped(ha) || !b.Mapped(hb) {
		t.Fatal("segments did not map")
	}
	v0, err := a.Version(ha)
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		v   uint64
		err error
	}
	ch := make(chan res, 1)
	go func() {
		v, err := a.WaitUpdate(ha, v0)
		ch <- res{v, err}
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter park
	if err := b.Write(hb, 0, tensor.Float32Bytes([]float32{1})); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-ch:
		if r.err != nil || r.v <= v0 {
			t.Fatalf("WaitUpdate = (%d, %v), want version > %d", r.v, r.err, v0)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitUpdate did not wake on the shared version bump")
	}
}

// TestShmWaitUpdateCanceledByClose parks a mapped WaitUpdate and closes the
// client under it: the waiter must return ErrWaitCanceled, and Close must
// drain it before the munmap — the use-after-unmap regression where a
// parked waiter's version load hit unmapped memory.
func TestShmWaitUpdateCanceledByClose(t *testing.T) {
	_, path := startShmServer(t)
	c := dialShmT(t, path)

	key, err := c.Create("wg", 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Mapped(h) {
		t.Fatal("segment did not map")
	}
	v0, err := c.Version(h)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := c.WaitUpdate(h, v0)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter park
	c.Close()                         // returns only after the waiter left the mapping
	select {
	case err := <-errc:
		if !errors.Is(err, ErrWaitCanceled) {
			t.Fatalf("parked WaitUpdate after Close = %v, want ErrWaitCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitUpdate still parked after Close")
	}
}

// TestShmWaitUpdateCanceledByDetach is the Detach half of the same drill:
// detaching the watched handle cancels the park (it used to leave the
// waiter parked on a freshly unmapped segment).
func TestShmWaitUpdateCanceledByDetach(t *testing.T) {
	_, path := startShmServer(t)
	c := dialShmT(t, path)

	key, err := c.Create("wg", 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Mapped(h) {
		t.Fatal("segment did not map")
	}
	v0, err := c.Version(h)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := c.WaitUpdate(h, v0)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter park
	if err := c.Detach(h); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrWaitCanceled) {
			t.Fatalf("parked WaitUpdate after Detach = %v, want ErrWaitCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitUpdate still parked after Detach")
	}
}

// TestShmUnmapAccounting pins the map-bytes gauge to per-connection truth:
// unmapping a handle the connection never mapped is rejected, a real unmap
// retires exactly what was mapped, and a duplicate unmap cannot drive the
// gauge negative.
func TestShmUnmapAccounting(t *testing.T) {
	srv, path := startShmServer(t)
	conn, err := net.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewStreamClient(conn)
	t.Cleanup(func() { sc.Close() })
	if _, err := sc.ShmHello(); err != nil {
		t.Fatal(err)
	}
	key, err := sc.Create("wg", 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sc.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	sh, _, err := sc.shmMap(h)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.close()

	store := srv.Store()
	if mb := store.ShmStats().MapBytes; mb <= 0 {
		t.Fatalf("map bytes %d after map, want > 0", mb)
	}
	h2, err := sc.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.ShmUnmap(h2); err == nil {
		t.Fatal("unmap of a never-mapped handle succeeded")
	}
	if err := sc.ShmUnmap(h); err != nil {
		t.Fatal(err)
	}
	if mb := store.ShmStats().MapBytes; mb != 0 {
		t.Fatalf("map bytes %d after unmap, want 0", mb)
	}
	if err := sc.ShmUnmap(h); err == nil {
		t.Fatal("duplicate unmap succeeded")
	}
	if mb := store.ShmStats().MapBytes; mb != 0 {
		t.Fatalf("map bytes %d after duplicate unmap, want 0", mb)
	}
}

// TestShmMapBytesReconcileOnConnDeath kills a client that mapped a segment
// and never sent the unmap verb: the server reconciles that connection's
// share out of the map-bytes gauge when the control connection dies.
func TestShmMapBytesReconcileOnConnDeath(t *testing.T) {
	srv, path := startShmServer(t)
	c := dialShmT(t, path)

	key, err := c.Create("wg", 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Mapped(h) {
		t.Fatal("segment did not map")
	}
	store := srv.Store()
	if mb := store.ShmStats().MapBytes; mb <= 0 {
		t.Fatalf("map bytes %d after map, want > 0", mb)
	}
	c.Close() // munmaps locally but never sends opShmUnmap
	deadline := time.Now().Add(5 * time.Second)
	for store.ShmStats().MapBytes != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("map bytes %d after connection death, want 0", store.ShmStats().MapBytes)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShmTimeoutDefaults pins the shared control-plane timeout defaulting
// used by both DialShmConfig and negotiateShm: 0 means 10s (never "no
// deadline"), negative disables, wait inherits op.
func TestShmTimeoutDefaults(t *testing.T) {
	cases := []struct {
		op, wait         time.Duration
		wantOp, wantWait time.Duration
	}{
		{0, 0, 10 * time.Second, 10 * time.Second},
		{-1, 0, 0, 0},
		{2 * time.Second, 0, 2 * time.Second, 2 * time.Second},
		{2 * time.Second, 5 * time.Second, 2 * time.Second, 5 * time.Second},
	}
	for _, tc := range cases {
		op, wait := shmTimeouts(tc.op, tc.wait)
		if op != tc.wantOp || wait != tc.wantWait {
			t.Errorf("shmTimeouts(%v, %v) = (%v, %v), want (%v, %v)",
				tc.op, tc.wait, op, wait, tc.wantOp, tc.wantWait)
		}
	}
}

// TestShmLeaseReapOnConnClose is the in-process half of the crash drill
// (shm_proc_test.go does it across real processes): a stripe lock word left
// held by a dying control connection is reaped by the server, after which
// the server's own kernels make progress on that stripe again.
func TestShmLeaseReapOnConnClose(t *testing.T) {
	srv, path := startShmServer(t)
	c := dialShmT(t, path)

	key, err := c.Create("wg", 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	m := c.maps[h]
	lease := c.lease
	c.mu.Unlock()
	if m == nil {
		t.Fatal("segment did not map")
	}
	// Simulate a crash mid-accumulate: take the stripe word, then die
	// without unlocking (Close unmaps but never touches lock words — and
	// the mapping object keeps the word reachable for the assertion).
	m.sh.lockStripe(0, lease)
	c.Close()

	store := srv.Store()
	deadline := time.Now().Add(5 * time.Second)
	for store.ShmStats().ReapedLocks == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server did not reap the dead lease's lock word")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The stripe is usable again: a server-side Write (which takes the
	// shared word with the server lease) completes instead of deadlocking.
	local := NewLocalClient(store)
	lh, err := local.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- local.Write(lh, 0, tensor.Float32Bytes([]float32{1})) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server-side write still blocked after the reap")
	}
}

// TestShmWriteAccumulateZeroAlloc holds the transport's headline contract:
// a mapped push is copy+add straight against the shared stripes — zero
// allocations per op (ISSUE 9 acceptance: 0 allocs/op on the shm path).
func TestShmWriteAccumulateZeroAlloc(t *testing.T) {
	_, path := startShmServer(t)
	c := dialShmT(t, path)

	const n = 1 << 18 // 1 MiB of float32s: the benchmarked push size
	kw, err := c.Create("wg", n*4)
	if err != nil {
		t.Fatal(err)
	}
	kd, err := c.Create("dw", n*4)
	if err != nil {
		t.Fatal(err)
	}
	wg, err := c.Attach(kw)
	if err != nil {
		t.Fatal(err)
	}
	dw, err := c.Attach(kd)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Mapped(wg) || !c.Mapped(dw) {
		t.Fatal("segments did not map")
	}
	data := tensor.Float32Bytes(make([]float32, n))
	for i := 0; i < 4; i++ { // warm every lazily-allocated path
		if err := c.WriteAccumulate(wg, dw, data); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := c.WriteAccumulate(wg, dw, data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("mapped WriteAccumulate allocates %.1f per op, want 0", allocs)
	}
}
