package smb

import (
	"sync"
	"time"

	"shmcaffe/internal/telemetry"
)

// Instrumentation for the SMB data path. The store and both client
// transports are observable on demand: call Instrument with a telemetry
// registry before traffic starts and every Read/Write/Accumulate feeds
// latency histograms in addition to the always-on atomic counters. The
// instruments are designed to hold the PR 2 zero-alloc contract with
// telemetry enabled — histograms record with atomics into preallocated
// storage and the timing uses time.Now/Since, which do not allocate
// (alloc_test.go runs its steady-state guards against an instrumented
// store and client).

// storeInstruments is the store's optional latency instrumentation,
// installed atomically by Instrument.
type storeInstruments struct {
	readLatency     *telemetry.Histogram
	writeLatency    *telemetry.Histogram
	accLatency      *telemetry.Histogram
	stripeWait      *telemetry.Histogram
	chunkApply      *telemetry.Histogram
	snapReadLatency *telemetry.Histogram
}

// Instrument registers the store's observable state on reg and enables
// per-operation latency timing. Counters are exported as scrape-time views
// of the existing atomic stats, so instrumenting adds no hot-path cost
// beyond the histogram observes. Call once, before serving traffic;
// duplicate metric names panic (Registry semantics).
func (s *Store) Instrument(reg *telemetry.Registry) {
	reg.CounterFunc("smb_creates_total", "segments created", s.stats.creates.Load)
	reg.CounterFunc("smb_attaches_total", "handles attached", s.stats.attaches.Load)
	reg.CounterFunc("smb_reads_total", "Read verbs served", s.stats.reads.Load)
	reg.CounterFunc("smb_writes_total", "Write verbs served", s.stats.writes.Load)
	reg.CounterFunc("smb_accumulates_total", "Accumulate verbs served (Eq. 7)", s.stats.accumulates.Load)
	reg.CounterFunc("smb_bytes_read_total", "payload bytes served to Read", s.stats.bytesRead.Load)
	reg.CounterFunc("smb_bytes_written_total", "payload bytes stored by Write/Accumulate", s.stats.bytesWrite.Load)
	reg.CounterFunc("smb_notify_wakeups_total", "blocked WaitUpdate calls released by a version bump", s.stats.notifyWakeups.Load)
	reg.GaugeFunc("smb_segments", "live segments in the store", func() float64 {
		return float64(s.SegmentCount())
	})
	// Shared-memory transport counters live on the store (not the server)
	// so chaos frontends that cycle server incarnations over one store keep
	// a continuous view. The op counters are scrape-time sums over each
	// exported segment's control page — mapped clients bump those words
	// directly, so this is the only place the server can see their traffic.
	reg.CounterFunc("smb_shm_fd_passed_total",
		"segment file descriptors passed to mapping clients", s.shmc.fdPassed.Load)
	reg.GaugeFunc("smb_shm_map_bytes",
		"bytes of segment+control currently handed out to client mappings",
		func() float64 { return float64(s.shmc.mapBytes.Load()) })
	reg.CounterFunc("smb_shm_leases_total",
		"shared-memory leases granted to control connections", s.shmc.leases.Load)
	reg.CounterFunc("smb_shm_reaped_locks_total",
		"shared stripe-lock words force-released after a mapped peer died", s.shmc.reapedLocks.Load)
	reg.CounterFunc("smb_shm_reaps_total",
		"dead-lease reap sweeps that cleared at least one lock word", s.shmc.reaps.Load)
	reg.CounterFunc("smb_shm_alloc_fallbacks_total",
		"memfd segment allocations that fell back to heap backing", s.shmc.allocFails.Load)
	reg.GaugeFunc("smb_shm_segments", "live memfd-backed segments",
		func() float64 { return float64(s.ShmStats().Exported) })
	reg.CounterFunc(`smb_shm_ops_total{op="accumulate"}`,
		"accumulates applied through client mappings", func() int64 { return s.shmCtlSum(shmOffAccumulates) })
	reg.CounterFunc(`smb_shm_ops_total{op="write"}`,
		"writes applied through client mappings", func() int64 { return s.shmCtlSum(shmOffWrites) })
	reg.CounterFunc(`smb_shm_ops_total{op="read"}`,
		"reads served through client mappings", func() int64 { return s.shmCtlSum(shmOffReads) })
	reg.CounterFunc("smb_shm_bytes_accumulated_total",
		"payload bytes accumulated through client mappings", func() int64 { return s.shmCtlSum(shmOffBytesAcc) })
	// Snapshot tier (snapshot.go): consistency-cut health. The retries
	// counter is expected to tick under write storms (seqlock collisions are
	// normal); retries_exhausted staying at zero is the serving SLO — it
	// means no snapshot read ever fell back to blocking on a stripe lock.
	reg.CounterFunc("smb_snapshots_total", "snapshots taken", s.snapc.taken.Load)
	reg.GaugeFunc("smb_snapshots_live", "published snapshots not yet released",
		func() float64 { return float64(s.snapc.live.Load()) })
	reg.CounterFunc("smb_snap_reads_total", "SnapRead verbs served", s.snapc.reads.Load)
	reg.CounterFunc("smb_snap_cow_pages_total",
		"stripe pre-images copied because a write landed on a live snapshot", s.snapc.cowPages.Load)
	reg.CounterFunc("smb_snap_read_retries_total",
		"seqlock retries during snapshot reads (torn stripes re-read)", s.snapc.retries.Load)
	reg.CounterFunc("smb_snap_retries_exhausted_total",
		"snapshot stripe reads that exhausted lock-free retries and fell back to the stripe lock", s.snapc.exhausted.Load)
	reg.CounterFunc("smb_snap_gate_timeouts_total",
		"shared-memory snapshot gates that timed out draining mapped writers and degraded to per-stripe copy", s.snapc.gateFails.Load)
	s.inst.Store(&storeInstruments{
		readLatency: reg.Histogram("smb_read_seconds",
			"server-side Read latency", telemetry.DefLatencyBuckets),
		writeLatency: reg.Histogram("smb_write_seconds",
			"server-side Write latency", telemetry.DefLatencyBuckets),
		accLatency: reg.Histogram("smb_accumulate_seconds",
			"server-side Accumulate latency (the T.A3 cost)", telemetry.DefLatencyBuckets),
		stripeWait: reg.Histogram("smb_accumulate_stripe_wait_seconds",
			"total time one Accumulate spent blocked on stripe locks — contention between workers colliding on the same 64 KiB of Wg",
			telemetry.DefLatencyBuckets),
		chunkApply: reg.Histogram("smb_chunk_apply_seconds",
			"server-side latency of one chunked WRITE+ACCUMULATE chunk (copy into src + add into dst under the stripe locks)",
			telemetry.DefLatencyBuckets),
		snapReadLatency: reg.Histogram("smb_snap_read_seconds",
			"server-side snapshot read latency (the serving hot path)", telemetry.DefLatencyBuckets),
	})
}

// lockWait acquires mu exclusively, returning nanoseconds spent blocked when
// timed; the untimed path is exactly mu.Lock().
func lockWait(mu *sync.RWMutex, timed bool) int64 {
	if !timed {
		mu.Lock()
		return 0
	}
	t0 := time.Now()
	mu.Lock()
	return time.Since(t0).Nanoseconds()
}

// clientInstruments is the per-transport RTT instrumentation shared by
// StreamClient and ShardedClient.
type clientInstruments struct {
	read  *telemetry.Histogram
	write *telemetry.Histogram
	acc   *telemetry.Histogram
}

func newClientInstruments(reg *telemetry.Registry, family, help string) *clientInstruments {
	return &clientInstruments{
		read:  reg.Histogram(family+`{op="read"}`, help, telemetry.DefLatencyBuckets),
		write: reg.Histogram(family+`{op="write"}`, help, telemetry.DefLatencyBuckets),
		acc:   reg.Histogram(family+`{op="accumulate"}`, help, telemetry.DefLatencyBuckets),
	}
}

// chunkInstruments is the StreamClient's pipelined-transfer telemetry:
// per-chunk wire-write latency (where backpressure from a lagging server
// shows up) and the pipeline depth each WriteAccumulate sequence reached.
type chunkInstruments struct {
	chunkWrite *telemetry.Histogram
	depth      *telemetry.Histogram
}

// Instrument enables round-trip timing on the wire client, exporting
// smb_client_rtt_seconds{op=...} plus the chunked-transfer histograms
// smb_client_chunk_write_seconds and smb_client_chunk_pipeline_depth.
// Call before issuing traffic.
func (c *StreamClient) Instrument(reg *telemetry.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inst = newClientInstruments(reg, "smb_client_rtt_seconds",
		"wire-client round-trip latency per verb")
	c.chunkInst = &chunkInstruments{
		chunkWrite: reg.Histogram("smb_client_chunk_write_seconds",
			"time to push one WriteAccumulate chunk into the transport; grows when the server cannot drain the pipeline",
			telemetry.DefLatencyBuckets),
		depth: reg.Histogram("smb_client_chunk_pipeline_depth",
			"chunks streamed per WriteAccumulate before the single End ack (the pipeline depth reached)",
			telemetry.LinearBuckets(1, 2, 32)),
	}
}

// Instrument registers the server's connection-health counters: handler
// loops that exited on transport errors (satellite of the silent-drop fix
// in connDone), chunked sequences reaped mid-stream, and the live
// connection gauge. Call once, before serving traffic.
func (s *Server) Instrument(reg *telemetry.Registry) {
	reg.CounterFunc("smb_server_conn_errors_total",
		"connection handlers that exited on a transport error (not a clean close)",
		s.connErrors.Load)
	reg.CounterFunc("smb_server_reaped_sequences_total",
		"chunked WRITE+ACCUMULATE sequences abandoned mid-stream by a dying connection",
		s.reapedSeqs.Load)
	reg.GaugeFunc("smb_server_connections", "live connection handlers", func() float64 {
		return float64(s.active.Load())
	})
	// Per-transport split of the same gauge: a connection that negotiated a
	// shared-memory lease counts as shm, everything else as tcp (the
	// unlabeled total above stays for dashboards that predate the split).
	reg.GaugeFunc(`smb_server_connections{transport="tcp"}`,
		"live connection handlers without a shared-memory lease", func() float64 {
			return float64(s.active.Load() - s.activeShm.Load())
		})
	reg.GaugeFunc(`smb_server_connections{transport="shm"}`,
		"live control connections holding a shared-memory lease", func() float64 {
			return float64(s.activeShm.Load())
		})
	reg.CounterFunc("smb_seq_duplicates_total",
		"sequence-stamped accumulates acknowledged as already-applied duplicates",
		s.store.stats.seqDups.Load)
	s.dispatchLat.Store(reg.Histogram("smb_server_dispatch_seconds",
		"per-frame dispatch latency, read-to-reply (the srv.dispatch span); recorded only with a tracer installed",
		telemetry.DefLatencyBuckets))
}

// supervisedInstruments is the supervised client's recovery telemetry.
type supervisedInstruments struct {
	reconnects *telemetry.Counter
	retries    *telemetry.Counter
	timeouts   *telemetry.Counter
	dupAcks    *telemetry.Counter
}

// Instrument registers the supervised client's recovery counters:
// smb_supervised_reconnects_total, smb_supervised_retries_total,
// smb_supervised_timeouts_total, smb_supervised_dup_acks_total, and the
// smb_supervised_pushes_total counter whose sum across clients equals the
// server's smb_accumulates_total under the exactly-once invariant. Call
// before issuing traffic.
func (c *SupervisedClient) Instrument(reg *telemetry.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inst = &supervisedInstruments{
		reconnects: reg.Counter("smb_supervised_reconnects_total", "connections re-established after a failure"),
		retries:    reg.Counter("smb_supervised_retries_total", "operation attempts beyond the first"),
		timeouts:   reg.Counter("smb_supervised_timeouts_total", "attempts failed on a fired per-op deadline"),
		dupAcks:    reg.Counter("smb_supervised_dup_acks_total", "pushes acknowledged as server-side duplicates"),
	}
	reg.CounterFunc("smb_supervised_pushes_total",
		"logical pushes applied exactly once", c.pushes.Load)
}

// Instrument enables fan-out timing on the sharded client, exporting
// smb_sharded_seconds{op=...} (the full fan-out/join time across shards).
// Call before issuing traffic.
func (s *ShardedClient) Instrument(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inst = newClientInstruments(reg, "smb_sharded_seconds",
		"sharded-client fan-out latency per verb across all shards")
}
