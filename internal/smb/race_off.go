//go:build !race

package smb

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
