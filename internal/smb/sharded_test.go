package smb

import (
	"errors"
	"sync"
	"testing"

	"shmcaffe/internal/tensor"
)

// newSharded builds a sharded client over k fresh in-process stores.
func newSharded(t *testing.T, k int) (*ShardedClient, []*Store) {
	t.Helper()
	stores := make([]*Store, k)
	clients := make([]Client, k)
	for i := range stores {
		stores[i] = NewStore()
		clients[i] = NewLocalClient(stores[i])
	}
	sc, err := NewShardedClient(clients...)
	if err != nil {
		t.Fatal(err)
	}
	return sc, stores
}

func TestShardedValidation(t *testing.T) {
	if _, err := NewShardedClient(); err == nil {
		t.Fatal("expected error for no servers")
	}
	if _, err := NewShardedClient(nil); err == nil {
		t.Fatal("expected error for nil server")
	}
}

func TestShardedCreateSpreadsShards(t *testing.T) {
	sc, stores := newSharded(t, 3)
	if sc.Servers() != 3 {
		t.Fatalf("Servers = %d", sc.Servers())
	}
	if _, err := sc.Create("wg", 120); err != nil {
		t.Fatal(err)
	}
	// Every store holds exactly one shard of wg (plus the reverse dir on
	// store 0).
	for i, st := range stores {
		if _, err := st.Lookup(shardName("wg", i)); err != nil {
			t.Fatalf("store %d missing shard: %v", i, err)
		}
	}
	if _, err := stores[0].Lookup(shardName("wg", 1)); err == nil {
		t.Fatal("shard 1 must not live on store 0")
	}
}

func TestShardedReadWriteRoundTrip(t *testing.T) {
	sc, _ := newSharded(t, 3)
	key, err := sc.Create("seg", 100)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sc.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, 100)
	for i := range src {
		src[i] = byte(i)
	}
	if err := sc.Write(h, 0, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 100)
	if err := sc.Read(h, 0, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if src[i] != dst[i] {
			t.Fatalf("byte %d: %d vs %d", i, src[i], dst[i])
		}
	}
	// Cross-shard partial range.
	part := make([]byte, 40)
	if err := sc.Read(h, 25, part); err != nil {
		t.Fatal(err)
	}
	for i := range part {
		if part[i] != byte(25+i) {
			t.Fatalf("partial read byte %d = %d", i, part[i])
		}
	}
	if err := sc.Read(h, 90, make([]byte, 20)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
}

func TestShardedKeyExchangeAcrossClients(t *testing.T) {
	// The master's sharded client creates; a second sharded client (the
	// worker) attaches using only the broadcast key — the Fig. 2 flow.
	stores := make([]*Store, 2)
	for i := range stores {
		stores[i] = NewStore()
	}
	master, err := NewShardedClient(NewLocalClient(stores[0]), NewLocalClient(stores[1]))
	if err != nil {
		t.Fatal(err)
	}
	workerC, err := NewShardedClient(NewLocalClient(stores[0]), NewLocalClient(stores[1]))
	if err != nil {
		t.Fatal(err)
	}
	key, err := master.Create("shared", 64)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := master.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := master.Write(hm, 0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	hw, err := workerC.Attach(key) // only the key crossed "MPI"
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{9, 8, 7}
	if err := workerC.Write(hw, 30, payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if err := master.Read(hm, 30, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 || got[2] != 7 {
		t.Fatalf("cross-client read %v", got)
	}
}

func TestShardedAccumulate(t *testing.T) {
	sc, _ := newSharded(t, 3)
	const elems = 30 // 120 bytes across 3 shards
	kw, err := sc.Create("wg", elems*4)
	if err != nil {
		t.Fatal(err)
	}
	kd, err := sc.Create("dw", elems*4)
	if err != nil {
		t.Fatal(err)
	}
	hw, _ := sc.Attach(kw)
	hd, _ := sc.Attach(kd)
	inc := make([]float32, elems)
	for i := range inc {
		inc[i] = float32(i)
	}
	if err := sc.Write(hd, 0, tensor.Float32Bytes(inc)); err != nil {
		t.Fatal(err)
	}
	if err := sc.Accumulate(hw, hd); err != nil {
		t.Fatal(err)
	}
	if err := sc.Accumulate(hw, hd); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, elems*4)
	if err := sc.Read(hw, 0, buf); err != nil {
		t.Fatal(err)
	}
	vals, _ := tensor.Float32FromBytes(buf)
	for i, v := range vals {
		if v != 2*float32(i) {
			t.Fatalf("wg[%d] = %v, want %v", i, v, 2*float32(i))
		}
	}
}

func TestShardedLookupDetachFree(t *testing.T) {
	sc, stores := newSharded(t, 2)
	key, err := sc.Create("seg", 40)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.Lookup("seg")
	if err != nil || got != key {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	h, err := sc.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Detach(h); err != nil {
		t.Fatal(err)
	}
	if err := sc.Read(h, 0, make([]byte, 4)); !errors.Is(err, ErrUnknownHandle) {
		t.Fatalf("want ErrUnknownHandle after detach, got %v", err)
	}
	if err := sc.Free(key); err != nil {
		t.Fatal(err)
	}
	for i, st := range stores {
		if _, err := st.Lookup(shardName("seg", i)); !errors.Is(err, ErrUnknownSegment) {
			t.Fatalf("shard %d survived free: %v", i, err)
		}
	}
}

// TestShardedConcurrentAccumulate: the no-lost-update property holds across
// servers (each per-shard accumulate is exclusive on its own server).
func TestShardedConcurrentAccumulate(t *testing.T) {
	sc, _ := newSharded(t, 2)
	const elems = 32
	const workers = 6
	const rounds = 15
	kw, err := sc.Create("wg", elems*4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			hw, err := sc.Attach(kw)
			if err != nil {
				t.Error(err)
				return
			}
			names := SegmentNames{Job: "sh"}
			kd, err := sc.Create(names.Increment(w), elems*4)
			if err != nil {
				t.Error(err)
				return
			}
			hd, err := sc.Attach(kd)
			if err != nil {
				t.Error(err)
				return
			}
			ones := make([]float32, elems)
			for i := range ones {
				ones[i] = 1
			}
			for r := 0; r < rounds; r++ {
				if err := sc.Write(hd, 0, tensor.Float32Bytes(ones)); err != nil {
					t.Error(err)
					return
				}
				if err := sc.Accumulate(hw, hd); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	h, _ := sc.Attach(kw)
	buf := make([]byte, elems*4)
	if err := sc.Read(h, 0, buf); err != nil {
		t.Fatal(err)
	}
	vals, _ := tensor.Float32FromBytes(buf)
	for i, v := range vals {
		if v != workers*rounds {
			t.Fatalf("wg[%d] = %v, want %d", i, v, workers*rounds)
		}
	}
}

// TestShardedWithTCPBackends stripes across two real TCP servers.
func TestShardedWithTCPBackends(t *testing.T) {
	srv1 := startServer(t)
	srv2 := startServer(t)
	c1 := dialT(t, srv1)
	c2 := dialT(t, srv2)
	sc, err := NewShardedClient(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	key, err := sc.Create("tcp", 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sc.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, 64)
	for i := range src {
		src[i] = byte(64 - i)
	}
	if err := sc.Write(h, 0, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 64)
	if err := sc.Read(h, 0, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if src[i] != dst[i] {
			t.Fatalf("tcp sharded byte %d", i)
		}
	}
	// Both servers must actually hold data.
	if srv1.Store().Stats().BytesWrite == 0 || srv2.Store().Stats().BytesWrite == 0 {
		t.Fatal("striping did not reach both TCP servers")
	}
}
