package smb

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"shmcaffe/internal/telemetry"
)

// Server exposes a Store over TCP — the process playing the role of the
// paper's dedicated memory server (the machine with 256 GB RAM and an
// Infiniband HCA). Connections are handled concurrently; Accumulates from
// different connections proceed in parallel per 64 KiB stripe while the
// Store's chunk locks preserve exact accumulation (see Store.Accumulate).
type Server struct {
	store *Store
	ln    net.Listener

	done chan struct{} // closed by Close; cancels parked WaitUpdates

	mu     sync.Mutex
	conns  map[io.Closer]struct{}           // guarded by mu
	closed bool                             // guarded by mu
	logf   func(format string, args ...any) // guarded by mu
	wg     sync.WaitGroup

	connErrors atomic.Int64 // handler loops that exited on a transport error
	reapedSeqs atomic.Int64 // chunked sequences abandoned mid-stream by a dying conn
	active     atomic.Int64 // live connection handlers

	// tracer, when installed via SetTracer, records server-side spans
	// (dispatch, accumulate apply, chunk pipeline, waits) — with trace
	// propagation they become children of the client span that sent the
	// frame. Atomic so chaos frontends can share one tracer across server
	// incarnations without racing the handler loops.
	tracer      atomic.Pointer[telemetry.Tracer]
	dispatchLat atomic.Pointer[telemetry.Histogram]
	traceTIDs   atomic.Int32 // connection track ids handed out, see serverTIDBase

	// Shared-memory control plane (shmctl.go): the advertised unix socket
	// path, the lease counter (client leases start at 2), and how many live
	// connections negotiated the zero-copy transport.
	shmPath   atomic.Value
	shmLeases atomic.Uint32
	activeShm atomic.Int64
}

// serverTIDBase offsets server connection tracks away from the worker
// main/update tids (2*rank, 2*rank+1), so a merged per-process trace keeps
// the two families visually separate.
const serverTIDBase int32 = 1000

// serverSpanSalt marks span ids minted by a server process; workers salt
// with (rank+1)<<48, so merged traces never collide.
const serverSpanSalt uint64 = 1 << 63

// NewServer returns a server around store listening on addr
// (e.g. "127.0.0.1:0"). Serve must be called to accept connections.
func NewServer(store *Store, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("smb server listen: %w", err)
	}
	return NewServerFromListener(store, ln), nil
}

// NewServerFromListener returns a server accepting from an existing
// listener — the seam for wrapping the accept path (fault injection,
// custom transports). The server owns ln from here on.
func NewServerFromListener(store *Store, ln net.Listener) *Server {
	return &Server{
		store: store,
		ln:    ln,
		done:  make(chan struct{}),
		conns: make(map[io.Closer]struct{}),
	}
}

// SetLogf installs a logger for abnormal per-connection handler exits —
// broken pipes mid-frame, abandoned chunk sequences. Nil (the default)
// keeps the server silent; the counters still advance either way.
func (s *Server) SetLogf(logf func(format string, args ...any)) {
	s.mu.Lock()
	s.logf = logf
	s.mu.Unlock()
}

// SetTracer installs a span tracer on the server: every request frame then
// records a srv.dispatch span, and the accumulate/chunk/wait arms record
// their own nested spans. With a tracer installed the server also grants
// the trace feature to clients negotiating via opHello, linking those spans
// to the client side. Safe to call while serving; nil uninstalls.
func (s *Server) SetTracer(tr *telemetry.Tracer) { s.tracer.Store(tr) }

// ConnErrors returns how many connection handlers exited on a transport
// error (as opposed to a clean close between frames).
func (s *Server) ConnErrors() int64 { return s.connErrors.Load() }

// ReapedSequences returns how many chunked WRITE+ACCUMULATE sequences died
// mid-stream with their connection and were reaped.
func (s *Server) ReapedSequences() int64 { return s.reapedSeqs.Load() }

// Addr returns the listener's address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Store returns the backing segment store.
func (s *Server) Store() *Store { return s.store }

// Serve accepts connections until Close is called. It always returns a
// non-nil error; after Close it returns net.ErrClosed.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func(conn net.Conn) {
			defer s.wg.Done()
			s.handleConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}(conn)
	}
}

// ServeConn serves the SMB protocol on one already-established stream
// connection of any transport (TCP, in-process pipe, the RDS-like
// datagram transport in internal/rds...). It blocks until the connection
// fails or the server closes, and closes rwc on return.
func (s *Server) ServeConn(rwc io.ReadWriteCloser) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		rwc.Close()
		return
	}
	s.conns[rwc] = struct{}{}
	s.mu.Unlock()
	s.wg.Add(1)
	defer s.wg.Done()
	s.handleConn(rwc)
	s.mu.Lock()
	delete(s.conns, rwc)
	s.mu.Unlock()
}

// Close stops the listener, closes all connections, and waits for handlers
// to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	// Unpark handlers blocked in WaitUpdate before yanking their
	// connections: with cond-based waits the seed's Close deadlocked in
	// wg.Wait behind any parked watcher.
	close(s.done)
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// connState is the per-connection scratch a handler loop reuses frame to
// frame: the inbound frame body, the outbound payload builder, and the
// bulk-read buffer. Pooled so steady-state Read/Write/Accumulate service
// allocates nothing per op.
type connState struct {
	in   []byte      // inbound frame scratch (readFrameInto)
	out  []byte      // opRead response scratch, grow-only
	fw   frameWriter // outbound payload builder, reset per frame
	wire []byte      // outbound frame staging (writeFrameInto)
	vw   vecWriter   // registered iovec list for vectored bulk replies (sg.go)

	// chunkErr poisons the current chunked WRITE+ACCUMULATE sequence: the
	// first chunk failure is recorded here (later chunks are skipped) and
	// reported once on the End frame. Single handler goroutine; no lock.
	chunkErr error
	// chunkOpen is true between the first chunk frame and the End frame —
	// a connection dying with it set abandoned a sequence mid-stream.
	chunkOpen bool

	// tc is the trace context of the request currently being dispatched
	// (zero = untraced). cur is the server's own dispatch-span context,
	// which the arm spans parent onto. Single handler goroutine; no lock.
	tc  TraceContext
	cur telemetry.TraceContext
	// tid is the telemetry track assigned to this connection (0 = none yet;
	// assigned lazily on the first dispatch with a tracer installed).
	tid int32

	// conn is the live connection, visible to dispatch arms that care about
	// the transport's capabilities (fd passing needs a unix socket).
	conn io.ReadWriteCloser
	// lease is the shm lease granted by opShmHello (0 = none). A connection
	// dying with a lease gets its shared stripe-lock words reaped.
	lease uint32
	// passFD, when ≥ 0, is a segment fd the handler must send as ancillary
	// data immediately after the current reply frame (opShmMap).
	passFD int
	// shmMaps tracks the mapped-file bytes this connection handed out via
	// opShmMap (remote handle → bytes, accumulated across re-maps). It is
	// what makes opShmUnmap reject unmaps of handles this connection never
	// mapped, and what connDone reconciles out of the map-bytes gauge when
	// a peer dies without unmapping. Single handler goroutine; no lock.
	shmMaps map[Handle]int64
}

var connStatePool = sync.Pool{New: func() any { return new(connState) }}

func (s *Server) handleConn(conn io.ReadWriteCloser) {
	defer conn.Close()
	s.active.Add(1)
	defer s.active.Add(-1)
	cs := connStatePool.Get().(*connState)
	cs.chunkErr = nil // a pooled state may carry a dead connection's sequence
	cs.chunkOpen = false
	cs.tc = TraceContext{}
	cs.cur = telemetry.TraceContext{}
	cs.tid = 0
	cs.conn = conn
	cs.lease = 0
	cs.passFD = -1
	clear(cs.shmMaps)
	defer connStatePool.Put(cs)
	defer func() { cs.conn = nil }()
	for {
		op, payload, err := readFrameInto(conn, &cs.in)
		if err != nil {
			s.connDone(cs, err)
			return
		}
		cs.tc = TraceContext{}
		if op&traceFlagBit != 0 {
			// A truncated trace header is connection-fatal, never an error
			// reply: the flagged frame may be a streamed chunk that expects
			// no reply, and answering it would desync the framing.
			tc, body, perr := parseTraceExt(payload)
			if perr != nil {
				s.connDone(cs, perr)
				return
			}
			cs.tc, payload = tc, body
			op &^= traceFlagBit
		}
		resp, err := s.dispatch(opcode(op), payload, cs)
		if err != nil {
			if errors.Is(err, errNoReply) {
				continue // streamed chunk frame: the End frame carries the ack
			}
			cs.fw.buf = cs.fw.buf[:0]
			cs.fw.str(err.Error())
			if werr := writeFrameInto(conn, statusErr, cs.fw.buf, &cs.wire); werr != nil {
				s.connDone(cs, werr)
				return
			}
			continue
		}
		var werr error
		if len(resp) >= sgMinPayload && connWritev(conn) {
			// Bulk replies (vectored stripe reads) go out as header+payload
			// in one writev instead of staging the payload a second time.
			werr = writeFrameVec(conn, statusOK, resp, &cs.vw, &cs.wire)
		} else {
			werr = writeFrameInto(conn, statusOK, resp, &cs.wire)
		}
		if werr != nil {
			s.connDone(cs, werr)
			return
		}
		if cs.passFD >= 0 {
			// The fd announced by the reply just written goes out before the
			// next request is read — the client is blocked on recvmsg for it.
			fd := cs.passFD
			cs.passFD = -1
			if err := sendConnFD(conn, fd); err != nil {
				s.connDone(cs, err)
				return
			}
		}
	}
}

// connDone classifies a handler-loop exit. The seed dropped every exit
// silently, which hid real failures (workers dying mid-push, frames
// truncated by the network) behind the same silence as a clean shutdown.
// A clean close — io.EOF exactly between frames, or any error during
// server shutdown — stays silent; everything else advances connErrors and
// hits the optional log. A sequence abandoned mid-chunk-stream is reaped
// here: its poison is cleared before the state returns to the pool (the
// chunks already applied stay applied — see DESIGN.md §12 for why that is
// safe only because supervised retries go through SeqAccumulate).
func (s *Server) connDone(cs *connState, err error) {
	if cs.lease != 0 {
		// Crash-safety of the shared locks: whatever stripe words the dead
		// peer still holds are force-released so the job keeps making
		// progress (the half-applied push is a partial gradient, which
		// SEASGD tolerates — DESIGN.md §16).
		if n := s.store.ReapShmLease(cs.lease); n > 0 {
			telemetry.RecordEvent(telemetry.EvShmLeaseReaped, int64(cs.lease), int64(n), 0)
		}
		s.activeShm.Add(-1)
		cs.lease = 0
	}
	if len(cs.shmMaps) != 0 {
		// Mappings the peer never unmapped: the memory itself is released
		// by the dead process's munmap (or its exit), but the gauge share
		// this connection handed out is reconciled here.
		var b int64
		for _, n := range cs.shmMaps {
			b += n
		}
		s.store.shmc.mapBytes.Add(-b)
		clear(cs.shmMaps)
	}
	mid := cs.chunkOpen || cs.chunkErr != nil
	if mid {
		total := s.reapedSeqs.Add(1)
		telemetry.RecordEvent(telemetry.EvSeqReaped, total, 0, 0)
		cs.chunkErr = nil
		cs.chunkOpen = false
	}
	select {
	case <-s.done:
		return // shutdown breaks every connection, by design
	default:
	}
	if errors.Is(err, io.EOF) && !mid {
		return // clean close at a frame boundary
	}
	telemetry.RecordEvent(telemetry.EvConnError, s.connErrors.Add(1), 0, 0)
	s.mu.Lock()
	logf := s.logf
	s.mu.Unlock()
	if logf != nil {
		if mid {
			logf("smb: connection died mid chunk sequence (reaped): %v", err)
		} else {
			logf("smb: connection handler exited: %v", err)
		}
	}
}

// dispatch decodes and executes one request. The returned payload may alias
// cs scratch and is valid until the next dispatch on the same connection.
// With a tracer installed it wraps the work in a srv.dispatch span: a child
// of the client span when the frame carried a trace context, a plain local
// span otherwise.
func (s *Server) dispatch(op opcode, payload []byte, cs *connState) ([]byte, error) {
	tr := s.tracer.Load()
	if tr == nil {
		cs.cur = telemetry.TraceContext{}
		return s.dispatchOp(op, payload, cs)
	}
	if cs.tid == 0 {
		cs.tid = serverTIDBase + s.traceTIDs.Add(1)
		tr.NameThread(cs.tid, fmt.Sprintf("smb-conn-%d", cs.tid-serverTIDBase))
	}
	cs.cur = telemetry.TraceContext{}
	if cs.tc.TraceID != 0 {
		cs.cur = telemetry.TraceContext{
			TraceID: cs.tc.TraceID,
			SpanID:  telemetry.NextSpanID(serverSpanSalt),
			Parent:  cs.tc.SpanID,
		}
	}
	sp := tr.BeginTraced(cs.tid, telemetry.PhaseSrvDispatch, cs.cur)
	if h := s.dispatchLat.Load(); h != nil {
		sp = sp.ObserveInto(h)
	}
	resp, err := s.dispatchOp(op, payload, cs)
	sp.End()
	return resp, err
}

// armSpan opens a nested span for one dispatch arm (accumulate apply, chunk
// apply, wait). It parents onto the connection's current dispatch span when
// that span is part of a propagated trace. Returns the inert zero Span when
// no tracer is installed, so arms call it unconditionally.
func (s *Server) armSpan(cs *connState, p telemetry.Phase) telemetry.Span {
	tr := s.tracer.Load()
	if tr == nil {
		return telemetry.Span{}
	}
	var tc telemetry.TraceContext
	if cs.cur.TraceID != 0 {
		tc = telemetry.TraceContext{
			TraceID: cs.cur.TraceID,
			SpanID:  telemetry.NextSpanID(serverSpanSalt),
			Parent:  cs.cur.SpanID,
		}
	}
	return tr.BeginTraced(cs.tid, p, tc)
}

// dispatchOp is the opcode switch behind dispatch.
func (s *Server) dispatchOp(op opcode, payload []byte, cs *connState) ([]byte, error) {
	fr := frameReader{buf: payload}
	fw := &cs.fw
	fw.buf = fw.buf[:0]
	switch op {
	//lint:ignore wireproto control-plane verb: one frame per session/segment, not a data-path latency
	case opCreate:
		name := fr.str()
		size := fr.u64()
		if fr.err != nil {
			return nil, fr.err
		}
		key, err := s.store.Create(name, int(size))
		if err != nil {
			return nil, err
		}
		return fw.u64(uint64(key)).buf, nil
	//lint:ignore wireproto control-plane verb: one frame per session/segment, not a data-path latency
	case opLookup:
		name := fr.str()
		if fr.err != nil {
			return nil, fr.err
		}
		key, err := s.store.Lookup(name)
		if err != nil {
			return nil, err
		}
		return fw.u64(uint64(key)).buf, nil
	//lint:ignore wireproto control-plane verb: one frame per session/segment, not a data-path latency
	case opAttach:
		key := fr.u64()
		if fr.err != nil {
			return nil, fr.err
		}
		h, err := s.store.Attach(SHMKey(key))
		if err != nil {
			return nil, err
		}
		return fw.u64(uint64(h)).buf, nil
	//lint:ignore wireproto control-plane verb: one frame per session/segment, not a data-path latency
	case opDetach:
		h := fr.u64()
		if fr.err != nil {
			return nil, fr.err
		}
		return nil, s.store.Detach(Handle(h))
	//lint:ignore wireproto control-plane verb: one frame per session/segment, not a data-path latency
	case opFree:
		key := fr.u64()
		if fr.err != nil {
			return nil, fr.err
		}
		return nil, s.store.Free(SHMKey(key))
	case opRead:
		h := fr.u64()
		off := fr.u64()
		n := fr.u64()
		if fr.err != nil {
			return nil, fr.err
		}
		if n > maxFrame {
			return nil, ErrFrameTooLarge
		}
		if uint64(cap(cs.out)) < n {
			cs.out = make([]byte, n)
		}
		dst := cs.out[:n]
		if err := s.store.Read(Handle(h), int(off), dst); err != nil {
			return nil, err
		}
		return dst, nil
	case opWrite:
		h := fr.u64()
		off := fr.u64()
		data := fr.rest()
		if fr.err != nil {
			return nil, fr.err
		}
		return nil, s.store.Write(Handle(h), int(off), data)
	case opAccumulate:
		dst := fr.u64()
		src := fr.u64()
		if fr.err != nil {
			return nil, fr.err
		}
		sp := s.armSpan(cs, telemetry.PhaseSrvAcc)
		err := s.store.Accumulate(Handle(dst), Handle(src))
		sp.End()
		return nil, err
	case opWriteAccChunk:
		// Streamed chunk: apply immediately, never reply — the client is
		// already sending the next chunk (the T.A2/T.A3 pipeline).
		cs.chunkOpen = true
		if cs.chunkErr != nil {
			return nil, errNoReply // sequence poisoned: skip to the End frame
		}
		dst := fr.u64()
		src := fr.u64()
		off := fr.u64()
		fr.skip(writeAccPad)
		data := fr.rest()
		if fr.err != nil {
			cs.chunkErr = fr.err
			return nil, errNoReply
		}
		sp := s.armSpan(cs, telemetry.PhaseSrvChunk)
		if err := s.store.WriteAccumulateAt(Handle(dst), Handle(src), int(off), data); err != nil {
			cs.chunkErr = err
		}
		sp.End()
		return nil, errNoReply
	case opWriteAccEnd:
		cs.chunkOpen = false
		dst := fr.u64()
		src := fr.u64()
		if fr.err != nil {
			return nil, fr.err
		}
		if err := cs.chunkErr; err != nil {
			cs.chunkErr = nil
			return nil, err
		}
		sp := s.armSpan(cs, telemetry.PhaseSrvAcc)
		err := s.store.FinishWriteAccumulate(Handle(dst), Handle(src))
		sp.End()
		return nil, err
	case opSeqAccumulate:
		dst := fr.u64()
		src := fr.u64()
		client := fr.u64()
		seq := fr.u64()
		if fr.err != nil {
			return nil, fr.err
		}
		sp := s.armSpan(cs, telemetry.PhaseSrvAcc)
		applied, err := s.store.SeqAccumulate(Handle(dst), Handle(src), client, seq)
		sp.End()
		if err != nil {
			return nil, err
		}
		var v uint64
		if applied {
			v = 1
		}
		return fw.u64(v).buf, nil
	//lint:ignore wireproto control-plane verb: one frame per session/segment, not a data-path latency
	case opHello:
		want := fr.u64()
		if fr.err != nil {
			return nil, fr.err
		}
		// Grant only what this server can honor: the trace feature needs an
		// installed tracer (otherwise the header would be parsed and thrown
		// away — better to tell the client not to pay for stamping).
		var granted uint64
		if s.tracer.Load() != nil {
			granted = want & helloFeatureTrace
		}
		return fw.u64(granted).buf, nil
	default:
		return s.dispatchNotify(op, payload, cs)
	}
}

// StreamClient speaks the SMB wire protocol over one stream connection of
// any transport (TCP via Dial, or anything implementing
// io.ReadWriteCloser via NewStreamClient). It is safe for concurrent use;
// requests serialize on the connection, matching one RDMA queue pair's
// ordering. Request building and response parsing run inside the
// connection lock against per-client grow-only scratch buffers, so
// steady-state verbs allocate nothing.
type StreamClient struct {
	mu        sync.Mutex
	conn      io.ReadWriteCloser
	req       frameWriter        // request payload builder, guarded by mu
	in        []byte             // response frame scratch, guarded by mu
	wire      []byte             // request frame staging, guarded by mu
	inst      *clientInstruments // optional RTT timing, guarded by mu
	chunkInst *chunkInstruments  // optional pipelined-transfer timing, guarded by mu

	opTimeout   time.Duration // guarded by mu; 0 = block forever (seed behavior)
	waitTimeout time.Duration // guarded by mu; WaitUpdate budget, 0 = block forever
	broken      error         // guarded by mu; first transport failure latches here

	// Scatter-gather state (sg.go): sg enables vectored writes and
	// direct-landing reads; vw and hdrs are the registered buffers those
	// paths reuse — an iovec list and a chunk-header slab, both grow-only
	// so the steady state stays allocation-free. All guarded by mu.
	sg   bool
	vw   vecWriter
	hdrs []byte

	// traceOK is set by NegotiateTrace when the server granted the trace
	// feature; tc is the context stamped on outgoing requests while nonzero.
	// Both guarded by mu. Requests are only ever trace-flagged when both
	// hold, so an un-negotiated peer never sees the extension.
	traceOK bool
	tc      TraceContext
}

var _ Client = (*StreamClient)(nil)

// ErrTransport marks StreamClient failures where the transport itself broke
// or timed out — as opposed to the server answering with an error. After a
// transport failure the request/response framing is unknowable, so the
// client poisons itself: the connection is closed and every later call
// fails fast wrapping the original cause. ErrTransport is the retry signal
// for SupervisedClient: a remote error means the server spoke and retrying
// the same request changes nothing; a transport error means a reconnect
// might.
var ErrTransport = errors.New("smb: transport failure")

// dialTimeout bounds connection establishment: a dead or partitioned server
// should fail a dial quickly, not strand it in the kernel's multi-minute
// SYN retry schedule.
const dialTimeout = 10 * time.Second

// Dial connects to an SMB server over TCP.
func Dial(addr string) (*StreamClient, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("smb dial %s: %w: %w", addr, ErrTransport, err)
	}
	return &StreamClient{conn: conn}, nil
}

// SetTimeouts bounds every operation on the client: op is the per-round-trip
// budget for data verbs, wait the budget for WaitUpdate (0 inherits op;
// both 0 restores block-forever). A deadline that fires poisons the client —
// an abandoned round trip leaves an unpaired response in flight, so the
// connection cannot be reused — and the call fails with an error matching
// both ErrTransport and os.ErrDeadlineExceeded.
func (c *StreamClient) SetTimeouts(op, wait time.Duration) {
	c.mu.Lock()
	c.opTimeout = op
	if wait <= 0 {
		wait = op
	}
	c.waitTimeout = wait
	c.mu.Unlock()
}

// deadlineConn is the deadline surface of net.Conn. Transports without one
// (in-process pipes) silently ignore configured timeouts.
type deadlineConn interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// poisonLocked latches the first transport failure and kills the
// connection. Caller holds c.mu.
func (c *StreamClient) poisonLocked(err error) error {
	if c.broken == nil {
		c.broken = err
		c.conn.Close()
	}
	return err
}

// NewStreamClient wraps an established connection of any transport.
func NewStreamClient(rwc io.ReadWriteCloser) *StreamClient {
	return &StreamClient{conn: rwc} //lint:ignore hotalloc one allocation per established connection; hot paths reach this only through the cold redial recovery branch
}

// Close implements Client.
func (c *StreamClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// beginLocked resets the request builder for a new call. The caller must
// hold c.mu (every verb method locks, builds, then round-trips).
func (c *StreamClient) beginLocked() *frameWriter {
	c.req.buf = c.req.buf[:0]
	return &c.req
}

// roundTripLocked performs one synchronous RPC with c.req.buf as the
// request payload. The returned payload aliases the client's scratch and
// must be consumed before c.mu is released. Caller holds c.mu.
//
// Any transport failure — write error, read error, or a fired deadline —
// poisons the client: the framing state of the connection is unknown, so
// reuse could pair a stale response with a fresh request.
func (c *StreamClient) roundTripLocked(op opcode) ([]byte, error) {
	return c.roundTripBodyLocked(op, nil)
}

// roundTripBodyLocked is roundTripLocked with an optional bulk body: when
// body is non-nil the frame goes out as one vectored write of the staged
// header+head and the caller's body — header and payload in a single
// writev, no staging copy of the bulk bytes (sg.go).
func (c *StreamClient) roundTripBodyLocked(op opcode, body []byte) ([]byte, error) {
	if c.broken != nil {
		return nil, fmt.Errorf("smb: connection poisoned: %w", c.broken)
	}
	timeout := c.opTimeout
	if op == opWaitUpdate {
		timeout = c.waitTimeout
	}
	dc, deadlines := c.conn.(deadlineConn)
	deadlines = deadlines && timeout > 0
	if deadlines {
		dc.SetWriteDeadline(time.Now().Add(timeout))
	}
	var err error
	switch {
	case body != nil:
		err = c.writeFrameVecLocked(byte(op), body)
	case c.traceOK && c.tc.TraceID != 0 && op != opHello:
		err = writeFrameTracedInto(c.conn, byte(op), c.req.buf, c.tc, &c.wire)
	default:
		err = writeFrameInto(c.conn, byte(op), c.req.buf, &c.wire)
	}
	if err != nil {
		return nil, c.poisonLocked(fmt.Errorf("smb request: %w: %w", ErrTransport, err))
	}
	if deadlines {
		dc.SetWriteDeadline(time.Time{})
	}
	return c.readReplyLocked(timeout)
}

// readReplyLocked reads and classifies one reply frame — the shared tail
// of every round trip, including the scatter-gather paths that write their
// requests out of band. Caller holds c.mu.
func (c *StreamClient) readReplyLocked(timeout time.Duration) ([]byte, error) {
	dc, deadlines := c.conn.(deadlineConn)
	deadlines = deadlines && timeout > 0
	if deadlines {
		dc.SetReadDeadline(time.Now().Add(timeout))
	}
	status, resp, err := readFrameInto(c.conn, &c.in)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, c.poisonLocked(fmt.Errorf("smb server closed connection: %w: %w", ErrTransport, err))
		}
		return nil, c.poisonLocked(fmt.Errorf("smb response: %w: %w", ErrTransport, err))
	}
	if deadlines {
		dc.SetReadDeadline(time.Time{})
	}
	if status == statusErr {
		fr := frameReader{buf: resp}
		msg := fr.str()
		return nil, remoteError(msg)
	}
	return resp, nil
}

// knownRemoteErrors are the sentinel errors remoteError can reconstruct
// from a wire message; hoisted so the error path shares one slice instead
// of building it per reply.
var knownRemoteErrors = []error{
	ErrSegmentExists, ErrUnknownSegment, ErrUnknownHandle,
	ErrOutOfRange, ErrSizeMismatch, ErrNotFloatAligned,
	ErrWaitCanceled, ErrUnknownSnapshot,
}

// remoteError reconstructs well-known errors from their messages so callers
// can keep using errors.Is across the wire.
func remoteError(msg string) error {
	for _, known := range knownRemoteErrors {
		if hasSuffix(msg, known.Error()) {
			return fmt.Errorf("%s: %w", msg, known)
		}
	}
	return errors.New(msg)
}

func hasSuffix(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}

// Create implements Client.
func (c *StreamClient) Create(name string, size int) (SHMKey, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beginLocked().str(name).u64(uint64(size))
	resp, err := c.roundTripLocked(opCreate)
	if err != nil {
		return 0, err
	}
	fr := frameReader{buf: resp}
	return SHMKey(fr.u64()), fr.err
}

// Lookup implements Client.
func (c *StreamClient) Lookup(name string) (SHMKey, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beginLocked().str(name)
	resp, err := c.roundTripLocked(opLookup)
	if err != nil {
		return 0, err
	}
	fr := frameReader{buf: resp}
	return SHMKey(fr.u64()), fr.err
}

// Attach implements Client.
func (c *StreamClient) Attach(key SHMKey) (Handle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beginLocked().u64(uint64(key))
	resp, err := c.roundTripLocked(opAttach)
	if err != nil {
		return 0, err
	}
	fr := frameReader{buf: resp}
	return Handle(fr.u64()), fr.err
}

// Detach implements Client.
func (c *StreamClient) Detach(h Handle) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beginLocked().u64(uint64(h))
	_, err := c.roundTripLocked(opDetach)
	return err
}

// Free implements Client.
func (c *StreamClient) Free(key SHMKey) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beginLocked().u64(uint64(key))
	_, err := c.roundTripLocked(opFree)
	return err
}

// Read implements Client. The response payload is copied into dst straight
// from the connection scratch — no intermediate allocation.
//
//shm:hotpath
func (c *StreamClient) Read(h Handle, off int, dst []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t0 time.Time
	if c.inst != nil {
		t0 = time.Now()
	}
	c.beginLocked().u64(uint64(h)).u64(uint64(off)).u64(uint64(len(dst)))
	if c.sg && len(dst) >= sgMinPayload {
		// Direct landing: the reply payload is read straight into dst,
		// skipping the response-scratch staging copy (sg.go).
		err := c.roundTripReadIntoLocked(opRead, dst)
		if err == nil && c.inst != nil {
			c.inst.read.ObserveSeconds(time.Since(t0).Nanoseconds())
		}
		return err
	}
	resp, err := c.roundTripLocked(opRead)
	if err != nil {
		return err
	}
	if len(resp) != len(dst) {
		return fmt.Errorf("smb read returned %d bytes, want %d", len(resp), len(dst))
	}
	copy(dst, resp)
	if c.inst != nil {
		c.inst.read.ObserveSeconds(time.Since(t0).Nanoseconds())
	}
	return nil
}

// Write implements Client.
//
//shm:hotpath
func (c *StreamClient) Write(h Handle, off int, src []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t0 time.Time
	if c.inst != nil {
		t0 = time.Now()
	}
	var err error
	if c.sg && len(src) >= sgMinPayload {
		// Vectored request: header+head staged once, src goes out of the
		// caller's buffer in the same writev — wire bytes identical to the
		// staged path, minus the payload copy (sg.go).
		c.beginLocked().u64(uint64(h)).u64(uint64(off))
		_, err = c.roundTripBodyLocked(opWrite, src)
	} else {
		c.beginLocked().u64(uint64(h)).u64(uint64(off)).bytes(src)
		_, err = c.roundTripLocked(opWrite)
	}
	if err == nil && c.inst != nil {
		c.inst.write.ObserveSeconds(time.Since(t0).Nanoseconds())
	}
	return err
}

// Accumulate implements Client.
//
//shm:hotpath
func (c *StreamClient) Accumulate(dst, src Handle) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t0 time.Time
	if c.inst != nil {
		t0 = time.Now()
	}
	c.beginLocked().u64(uint64(dst)).u64(uint64(src))
	_, err := c.roundTripLocked(opAccumulate)
	if err == nil && c.inst != nil {
		c.inst.acc.ObserveSeconds(time.Since(t0).Nanoseconds())
	}
	return err
}
