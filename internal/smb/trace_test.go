package smb

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"

	"shmcaffe/internal/telemetry"
)

// Wire-level trace propagation tests: frame round trip, opHello
// negotiation, client→server span linking, and both interop directions
// (old client → new server, new client → old server).

func TestTraceFrameRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: 0xdeadbeef, SpanID: 0x1122334455667788, Rank: 3, Iter: 41}
	payload := []byte("hello segment")
	var buf bytes.Buffer
	var scratch []byte
	if err := writeFrameTracedInto(&buf, byte(opWrite), payload, tc, &scratch); err != nil {
		t.Fatal(err)
	}
	op, body, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if op&traceFlagBit == 0 {
		t.Fatal("trace flag not set on wire")
	}
	if op&^byte(traceFlagBit) != byte(opWrite) {
		t.Fatalf("opcode = %d, want %d", op&^byte(traceFlagBit), opWrite)
	}
	got, rest, err := parseTraceExt(body)
	if err != nil {
		t.Fatal(err)
	}
	if got != tc {
		t.Fatalf("trace context = %+v, want %+v", got, tc)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload = %q, want %q", rest, payload)
	}

	// Undersized header must be rejected, not sliced.
	if _, _, err := parseTraceExt(body[:traceHeaderLen-1]); err == nil {
		t.Fatal("parseTraceExt accepted a truncated header")
	}
}

// tracedSpans returns the exported spans named phase that carry trace args.
func tracedSpans(tr *telemetry.Tracer, phase string) []telemetry.TraceEvent {
	var out []telemetry.TraceEvent
	for _, ev := range tr.Events() {
		if ev.Ph == "X" && ev.Name == phase && ev.Args["trace_id"] != "" {
			out = append(out, ev)
		}
	}
	return out
}

func TestTracePropagationEndToEnd(t *testing.T) {
	srv := startServer(t)
	tr := telemetry.NewTracer(4096)
	srv.SetTracer(tr)

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ok, err := c.NegotiateTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("server with tracer did not grant the trace feature")
	}

	key, err := c.Create("wg", 64)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	skey, err := c.Create("dwx", 64)
	if err != nil {
		t.Fatal(err)
	}
	src, err := c.Attach(skey)
	if err != nil {
		t.Fatal(err)
	}

	// One traced push: Write + Accumulate under a client span, then a
	// chunked WriteAccumulate under a second span of the same trace.
	tc := TraceContext{TraceID: 0x42, SpanID: telemetry.NextSpanID(1 << 48), Rank: 0, Iter: 7}
	c.SetTraceContext(tc)
	data := make([]byte, 64)
	if err := c.Write(src, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := c.Accumulate(dst, src); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteAccumulate(dst, src, data); err != nil {
		t.Fatal(err)
	}
	c.ClearTraceContext()
	if _, err := c.Version(dst); err != nil {
		t.Fatal(err)
	}

	wantParent := fmt.Sprintf("%016x", tc.SpanID)
	wantTrace := fmt.Sprintf("%016x", tc.TraceID)
	dispatch := tracedSpans(tr, "srv.dispatch")
	if len(dispatch) < 3 {
		t.Fatalf("traced srv.dispatch spans = %d, want >= 3", len(dispatch))
	}
	for _, ev := range dispatch {
		if ev.Args["trace_id"] != wantTrace {
			t.Fatalf("dispatch span trace_id = %s, want %s", ev.Args["trace_id"], wantTrace)
		}
		if ev.Args["parent_id"] != wantParent {
			t.Fatalf("dispatch span parent_id = %s, want %s", ev.Args["parent_id"], wantParent)
		}
	}
	// The accumulate arms nest under their dispatch spans: same trace,
	// parented on a server-minted span id, not directly on the client span.
	accs := tracedSpans(tr, "srv.acc")
	if len(accs) < 2 {
		t.Fatalf("traced srv.acc spans = %d, want >= 2 (accumulate + chunked end)", len(accs))
	}
	dispatchIDs := map[string]bool{}
	for _, ev := range dispatch {
		dispatchIDs[ev.Args["span_id"]] = true
	}
	for _, ev := range accs {
		if ev.Args["trace_id"] != wantTrace {
			t.Fatalf("acc span trace_id = %s, want %s", ev.Args["trace_id"], wantTrace)
		}
		if !dispatchIDs[ev.Args["parent_id"]] {
			t.Fatalf("acc span parent %s is not a dispatch span", ev.Args["parent_id"])
		}
	}
	if got := tracedSpans(tr, "srv.chunk"); len(got) == 0 {
		t.Fatal("chunked push recorded no traced srv.chunk span")
	}

	// The Version call after ClearTraceContext must not carry the trace.
	var stray int
	for _, ev := range tr.Events() {
		if ev.Ph == "X" && ev.Args["trace_id"] == "" {
			stray++
		}
	}
	if stray == 0 {
		t.Fatal("expected at least one untraced span after ClearTraceContext")
	}
}

// TestOldClientNewServer: a client that never negotiates gets the exact
// pre-extension protocol — every verb works, and the server records its
// spans without trace linkage.
func TestOldClientNewServer(t *testing.T) {
	srv := startServer(t)
	tr := telemetry.NewTracer(1024)
	srv.SetTracer(tr)

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	key, err := c.Create("seg", 32)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(h, 0, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if err := c.Accumulate(h, h); err != nil {
		t.Fatal(err)
	}
	if got := tracedSpans(tr, "srv.dispatch"); len(got) != 0 {
		t.Fatalf("untraced client produced %d traced spans", len(got))
	}
	// Spans are still recorded, just unlinked.
	found := false
	for _, ev := range tr.Events() {
		if ev.Ph == "X" && ev.Name == "srv.acc" {
			found = true
		}
	}
	if !found {
		t.Fatal("server recorded no srv.acc span for old client")
	}
}

// legacyServe emulates a pre-extension server on one connection: the
// modern opcode switch minus opHello and minus trace-header stripping —
// exactly what an old binary does with the new client's bytes.
func legacyServe(t *testing.T, ln net.Listener, store *Store) {
	t.Helper()
	srv := &Server{store: store, done: make(chan struct{})}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		cs := &connState{}
		var wire []byte
		for {
			op, payload, err := readFrameInto(conn, &cs.in)
			if err != nil {
				return
			}
			var resp []byte
			var derr error
			if opcode(op) == opHello || op&traceFlagBit != 0 {
				derr = fmt.Errorf("smb: unknown opcode %d", op)
			} else {
				cs.fw.buf = cs.fw.buf[:0]
				resp, derr = srv.dispatchOp(opcode(op), payload, cs)
			}
			if derr != nil {
				if errors.Is(derr, errNoReply) {
					continue
				}
				cs.fw.buf = cs.fw.buf[:0]
				cs.fw.str(derr.Error())
				if writeFrameInto(conn, statusErr, cs.fw.buf, &wire) != nil {
					return
				}
				continue
			}
			if writeFrameInto(conn, statusOK, resp, &wire) != nil {
				return
			}
		}
	}()
}

// TestNewClientOldServer: NegotiateTrace against a server that predates
// opHello degrades cleanly — (false, nil), connection intact, verbs work.
func TestNewClientOldServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	legacyServe(t, ln, NewStore())

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ok, err := c.NegotiateTrace()
	if err != nil {
		t.Fatalf("NegotiateTrace against old server errored: %v", err)
	}
	if ok {
		t.Fatal("old server cannot have granted the trace feature")
	}

	// Even with a context set, no frame may carry the flag — the old server
	// would choke on it. The verbs below crossing the legacy loop proves it.
	c.SetTraceContext(TraceContext{TraceID: 1, SpanID: 2})
	key, err := c.Create("seg", 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(h, 0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteAccumulate(h, h, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
}

// TestNegotiateWithoutTracer: a new server without a tracer installed
// declines the feature — clients skip the stamping cost.
func TestNegotiateWithoutTracer(t *testing.T) {
	srv := startServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ok, err := c.NegotiateTrace()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("tracer-less server granted the trace feature")
	}
	if _, err := c.Create("seg", 16); err != nil {
		t.Fatal(err)
	}
}

// TestTruncatedTraceHeaderFatal: a flagged frame whose body cannot hold the
// trace header must kill the connection (replying could desync framing).
func TestTruncatedTraceHeaderFatal(t *testing.T) {
	srv := startServer(t)
	srv.SetTracer(telemetry.NewTracer(64))
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// body = flagged opcode + 3 bytes, far short of the 24-byte header.
	if _, err := conn.Write([]byte{4, 0, 0, 0, byte(opWrite) | traceFlagBit, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	var buf [16]byte
	if n, err := conn.Read(buf[:]); err == nil {
		t.Fatalf("server replied %d bytes to a truncated trace header, want closed conn", n)
	}
	if srv.ConnErrors() == 0 {
		t.Error("truncated trace header did not count as a connection error")
	}
}

// TestSupervisedTracePropagation: the supervised client negotiates on
// connect and re-stamps its context, so traced pushes survive the
// reconnect-and-retry layer.
func TestSupervisedTracePropagation(t *testing.T) {
	srv := startServer(t)
	tr := telemetry.NewTracer(1024)
	srv.SetTracer(tr)

	c := NewSupervisedClient(SupervisedConfig{Addr: srv.Addr(), ClientID: 7})
	defer c.Close()
	c.EnableTrace()
	key, err := c.Create("wg", 32)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	skey, err := c.Create("dwx", 32)
	if err != nil {
		t.Fatal(err)
	}
	src, err := c.Attach(skey)
	if err != nil {
		t.Fatal(err)
	}
	c.SetTraceContext(TraceContext{TraceID: 0xabc, SpanID: telemetry.NextSpanID(1 << 48), Iter: 1})
	if err := c.WriteAccumulate(dst, src, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	c.ClearTraceContext()

	accs := tracedSpans(tr, "srv.acc")
	if len(accs) == 0 {
		t.Fatal("supervised push recorded no traced srv.acc span")
	}
	want := fmt.Sprintf("%016x", 0xabc)
	for _, ev := range accs {
		if !strings.HasSuffix(ev.Args["trace_id"], want[len(want)-3:]) {
			t.Fatalf("trace_id = %s, want %s", ev.Args["trace_id"], want)
		}
	}
}
