package smb

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"shmcaffe/internal/telemetry"
)

// SupervisedClient: the fault-tolerant SMB data path.
//
// A bare StreamClient maps one failure model — the connection is perfect or
// the job is dead. SupervisedClient layers the recovery the paper's
// always-up memory server never needed: per-operation deadlines (via
// StreamClient.SetTimeouts), transport failures answered by an exponential
// backoff + jitter reconnect, a replay of the Fig. 2 attach sequence on the
// fresh connection so the caller's handles stay valid, and sequence-stamped
// pushes (seq.go) so a retried WRITE+ACCUMULATE lands at most once however
// many times the connection died under it.
//
// Retry policy follows the error taxonomy of the wire client:
//
//   - ErrTransport (broken pipe, fired deadline, dial failure): the server
//     may never have seen the request, or may have answered into the void —
//     reconnect and retry. Safe because every verb routed through here is
//     idempotent (Write/Read of fixed ranges, Lookup/Attach) or deduped
//     (SeqAccumulate).
//   - ErrWaitCanceled: the server shut down mid-wait; reconnect and re-wait.
//   - Remote errors (ErrUnknownSegment, ErrOutOfRange...): the server spoke;
//     retrying changes nothing. Returned as-is.
//
// Not fault-tolerant: Free (destroys shared state other workers depend on;
// a retry racing a concurrent Create could destroy the successor).

// supervisedClientIDs hands out process-local default client IDs. Jobs with
// multiple processes MUST set SupervisedConfig.ClientID themselves (e.g.
// rank+1): the dedup table is keyed by ID, and two processes sharing an ID
// would swallow each other's pushes as duplicates.
var supervisedClientIDs atomic.Uint64

// SupervisedConfig configures a SupervisedClient. Zero values get the
// documented defaults.
type SupervisedConfig struct {
	// Addr is the server address, re-dialed on every reconnect.
	Addr string
	// Dial overrides how connections are established (tests inject faulty
	// transports here). Default: Dial(addr).
	Dial func(addr string) (*StreamClient, error)
	// OpTimeout bounds each round trip (default 10s; <0 disables).
	OpTimeout time.Duration
	// WaitTimeout bounds WaitUpdate round trips (default OpTimeout). A
	// WaitUpdate is expected to park, so give it the longer budget.
	WaitTimeout time.Duration
	// MaxAttempts bounds tries per logical operation, dial included
	// (default 10).
	MaxAttempts int
	// BackoffBase is the first reconnect delay (default 20ms); successive
	// attempts double it up to BackoffMax (default 1s), each halved-jittered
	// so a herd of workers reconnecting after a server restart spreads out.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the jitter PRNG (deterministic tests).
	Seed uint64
	// ClientID keys the server-side push dedup. 0 draws a process-local
	// unique ID; multi-process jobs must set it (rank+1).
	ClientID uint64
	// ScatterGather enables the vectored TCP path (sg.go) on every
	// connection, including reconnects: bulk writes and chunked pushes go
	// out header+payload in one writev, bulk reads land directly.
	ScatterGather bool
}

// SupervisedStats snapshots a client's recovery counters.
type SupervisedStats struct {
	Reconnects int64 // connections established after the first
	Retries    int64 // operation attempts beyond the first
	Timeouts   int64 // attempts that failed on a fired deadline
	DupAcks    int64 // pushes acknowledged as server-side duplicates
	Pushes     int64 // logical pushes applied exactly once (the invariant LHS)
}

// SupervisedClient wraps the SMB wire protocol with reconnect-and-retry
// supervision. It implements Client, Notifier, WriteAccumulator and
// SeqAccumulator. Like StreamClient it is safe for concurrent use, with
// operations serialized on one connection.
type SupervisedClient struct {
	cfg SupervisedConfig

	mu   sync.Mutex
	conn *StreamClient // guarded by mu; nil while disconnected
	// keys is the client's own handle directory: public Handle → server
	// SHMKey. It is what survives a crash — handles the caller holds stay
	// valid across reconnects because they resolve through this map, not
	// through server state.
	keys       map[Handle]SHMKey // guarded by mu
	remote     map[Handle]Handle // guarded by mu; public → current conn's handle, cleared on reconnect
	nextHandle Handle            // guarded by mu
	seq        uint64            // guarded by mu; stamp for the next push
	rng        uint64            // guarded by mu; jitter PRNG state

	closed    bool // guarded by mu
	connected bool // guarded by mu; a connection has succeeded at least once

	// wantTrace makes every (re)connection negotiate the trace extension;
	// tc is the caller's current trace context, re-stamped onto each fresh
	// connection so propagation survives reconnects. Both guarded by mu.
	wantTrace bool
	tc        TraceContext

	reconnects atomic.Int64
	retries    atomic.Int64
	timeouts   atomic.Int64
	dupAcks    atomic.Int64
	pushes     atomic.Int64

	inst *supervisedInstruments // set before use; nil = uninstrumented
}

var _ Client = (*SupervisedClient)(nil)
var _ Notifier = (*SupervisedClient)(nil)
var _ WriteAccumulator = (*SupervisedClient)(nil)

// NewSupervisedClient returns a supervised client. The first connection is
// established lazily, so constructing one against a down server succeeds —
// the first operation pays the reconnect.
func NewSupervisedClient(cfg SupervisedConfig) *SupervisedClient {
	if cfg.Dial == nil {
		cfg.Dial = Dial
	}
	if cfg.OpTimeout == 0 {
		cfg.OpTimeout = 10 * time.Second
	} else if cfg.OpTimeout < 0 {
		cfg.OpTimeout = 0
	}
	if cfg.WaitTimeout <= 0 {
		cfg.WaitTimeout = cfg.OpTimeout
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 10
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 20 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	if cfg.ClientID == 0 {
		cfg.ClientID = supervisedClientIDs.Add(1)
	}
	return &SupervisedClient{
		cfg:    cfg,
		keys:   make(map[Handle]SHMKey),
		remote: make(map[Handle]Handle),
		rng:    cfg.Seed ^ cfg.ClientID,
	}
}

// ClientID returns the dedup identity pushes are stamped with.
func (c *SupervisedClient) ClientID() uint64 { return c.cfg.ClientID }

// Stats snapshots the recovery counters.
func (c *SupervisedClient) Stats() SupervisedStats {
	return SupervisedStats{
		Reconnects: c.reconnects.Load(),
		Retries:    c.retries.Load(),
		Timeouts:   c.timeouts.Load(),
		DupAcks:    c.dupAcks.Load(),
		Pushes:     c.pushes.Load(),
	}
}

// Close implements Client. A closed client fails every later operation.
func (c *SupervisedClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// errClientClosed distinguishes caller-initiated Close from failures.
var errClientClosed = errors.New("smb: supervised client closed")

// ensureLocked returns a live connection, dialing if necessary. Caller
// holds c.mu. Dial failures are NOT retried here — withRetry owns the
// backoff schedule, so a dead server costs one failed attempt per loop
// iteration like any other transport error.
func (c *SupervisedClient) ensureLocked() (*StreamClient, error) {
	if c.closed {
		return nil, errClientClosed
	}
	if c.conn != nil {
		return c.conn, nil
	}
	sc, err := c.cfg.Dial(c.cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("smb supervised dial: %w", err)
	}
	sc.SetTimeouts(c.cfg.OpTimeout, c.cfg.WaitTimeout)
	if c.cfg.ScatterGather {
		sc.EnableScatterGather(true)
	}
	if c.wantTrace {
		// Re-negotiate on every fresh connection — the grant is per-conn
		// state on the server. A transport failure here counts as a failed
		// dial; an old server just leaves the connection untraced.
		if _, err := sc.NegotiateTrace(); err != nil {
			sc.Close()
			return nil, fmt.Errorf("smb supervised hello: %w", err)
		}
		sc.SetTraceContext(c.tc)
	}
	// Fresh connection, fresh server-side handle table: the Fig. 2 attach
	// exchange replays lazily via remoteLocked as handles are next used.
	c.conn = sc
	for h := range c.remote {
		delete(c.remote, h)
	}
	if c.connected {
		// Only re-connections count: the lazy first dial is the normal
		// bootstrap, not a recovery.
		n := c.reconnects.Add(1)
		telemetry.RecordEvent(telemetry.EvReconnect, int64(c.cfg.ClientID), n, 0)
		if c.inst != nil {
			c.inst.reconnects.Inc()
		}
	}
	c.connected = true
	return sc, nil
}

// EnableTrace makes the client negotiate the trace extension on every
// connection, including reconnects. Against an old server it degrades
// silently to untraced. Call before traffic (it also upgrades a live
// connection in place).
func (c *SupervisedClient) EnableTrace() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wantTrace = true
	if c.conn != nil {
		if _, err := c.conn.NegotiateTrace(); err != nil {
			c.dropLocked() // transport failure: the next verb redials
			return
		}
		c.conn.SetTraceContext(c.tc)
	}
}

// SetTraceContext implements TraceCarrier. The context survives reconnects:
// every fresh connection is re-stamped with it.
func (c *SupervisedClient) SetTraceContext(tc TraceContext) {
	c.mu.Lock()
	c.tc = tc
	if c.conn != nil {
		c.conn.SetTraceContext(tc)
	}
	c.mu.Unlock()
}

// ClearTraceContext implements TraceCarrier.
func (c *SupervisedClient) ClearTraceContext() {
	c.mu.Lock()
	c.tc = TraceContext{}
	if c.conn != nil {
		c.conn.ClearTraceContext()
	}
	c.mu.Unlock()
}

var _ TraceCarrier = (*SupervisedClient)(nil)

// dropLocked discards the connection after a transport failure.
func (c *SupervisedClient) dropLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// retryable reports whether err warrants a reconnect-and-retry.
func retryable(err error) bool {
	return errors.Is(err, ErrTransport) || errors.Is(err, ErrWaitCanceled)
}

// backoffLocked sleeps the attempt-th reconnect delay (half-jittered
// exponential: d/2 + uniform(0, d/2]). Caller holds c.mu — deliberately, so
// a concurrent caller cannot slip in and race the reconnect.
func (c *SupervisedClient) backoffLocked(attempt int) {
	d := c.cfg.BackoffBase << uint(attempt)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	// splitmix64 step (Vigna): one multiply-xor chain per draw, seeded per
	// client so a worker herd's schedules decorrelate deterministically.
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	frac := float64(z>>11) / float64(1<<53)
	time.Sleep(d/2 + time.Duration(frac*float64(d/2)))
}

// withRetry runs op against a live connection, reconnecting and retrying on
// transport failures up to MaxAttempts. Caller holds c.mu for the whole
// schedule: operations on a supervised client serialize exactly like on the
// StreamClient underneath.
func (c *SupervisedClient) withRetry(verb string, op func(sc *StreamClient) error) error {
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			if c.inst != nil {
				c.inst.retries.Inc()
			}
			c.backoffLocked(attempt - 1)
		}
		sc, err := c.ensureLocked()
		if err != nil {
			if errors.Is(err, errClientClosed) {
				return err
			}
			lastErr = err
			continue
		}
		err = op(sc)
		if err == nil {
			return nil
		}
		if errors.Is(err, os.ErrDeadlineExceeded) {
			c.timeouts.Add(1)
			telemetry.RecordEvent(telemetry.EvDeadlineFired, int64(c.cfg.ClientID), 0, 0)
			if c.inst != nil {
				c.inst.timeouts.Inc()
			}
		}
		if !retryable(err) {
			return err
		}
		lastErr = err
		c.dropLocked()
	}
	telemetry.RecordEvent(telemetry.EvRetriesExhausted, int64(c.cfg.ClientID), int64(c.cfg.MaxAttempts), 0)
	return fmt.Errorf("smb supervised %s: %d attempts exhausted: %w", verb, c.cfg.MaxAttempts, lastErr)
}

// resolveLocked maps a public handle to the current connection's handle,
// replaying Attach on the fresh connection when needed.
func (c *SupervisedClient) resolveLocked(sc *StreamClient, h Handle) (Handle, error) {
	if rh, ok := c.remote[h]; ok {
		return rh, nil
	}
	key, ok := c.keys[h]
	if !ok {
		return 0, fmt.Errorf("smb supervised: %w: handle %d", ErrUnknownHandle, h)
	}
	rh, err := sc.Attach(key)
	if err != nil {
		return 0, err
	}
	c.remote[h] = rh
	return rh, nil
}

// publishLocked mints a public handle for key.
func (c *SupervisedClient) publishLocked(key SHMKey, rh Handle) Handle {
	c.nextHandle++
	h := c.nextHandle
	c.keys[h] = key
	c.remote[h] = rh
	return h
}

// Create implements Client. On a retry after a transport failure the
// original Create may have succeeded server-side, so ErrSegmentExists on a
// later attempt resolves to Lookup of the (durable) segment — idempotent
// create, matching what a restarted worker needs anyway.
func (c *SupervisedClient) Create(name string, size int) (SHMKey, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var key SHMKey
	attempt := 0
	err := c.withRetry("create", func(sc *StreamClient) error {
		attempt++
		k, err := sc.Create(name, size)
		if errors.Is(err, ErrSegmentExists) && attempt > 1 {
			k, err = sc.Lookup(name)
		}
		key = k
		return err
	})
	return key, err
}

// Lookup implements Client.
func (c *SupervisedClient) Lookup(name string) (SHMKey, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var key SHMKey
	err := c.withRetry("lookup", func(sc *StreamClient) error {
		k, err := sc.Lookup(name)
		key = k
		return err
	})
	return key, err
}

// Attach implements Client. The returned handle is the supervised client's
// own: it remains valid across reconnects (the server-side attach replays
// lazily).
func (c *SupervisedClient) Attach(key SHMKey) (Handle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var h Handle
	err := c.withRetry("attach", func(sc *StreamClient) error {
		rh, err := sc.Attach(key)
		if err != nil {
			return err
		}
		h = c.publishLocked(key, rh)
		return nil
	})
	return h, err
}

// Detach implements Client. The local mapping always goes; the server-side
// detach is best-effort (a dead connection already detached it).
func (c *SupervisedClient) Detach(h Handle) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.keys[h]; !ok {
		return fmt.Errorf("smb supervised: %w: handle %d", ErrUnknownHandle, h)
	}
	rh, attached := c.remote[h]
	delete(c.keys, h)
	delete(c.remote, h)
	if attached && c.conn != nil {
		if err := c.conn.Detach(rh); err != nil && !retryable(err) {
			return err
		}
	}
	return nil
}

// Free implements Client. Deliberately NOT retried: Free destroys shared
// state, and a retry racing a concurrent re-Create could free the
// successor segment.
func (c *SupervisedClient) Free(key SHMKey) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	sc, err := c.ensureLocked()
	if err != nil {
		return err
	}
	err = sc.Free(key)
	if retryable(err) {
		c.dropLocked()
	}
	return err
}

// Read implements Client (idempotent; retried).
func (c *SupervisedClient) Read(h Handle, off int, dst []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.withRetry("read", func(sc *StreamClient) error {
		rh, err := c.resolveLocked(sc, h)
		if err != nil {
			return err
		}
		return sc.Read(rh, off, dst)
	})
}

// Write implements Client (idempotent — same bytes, same range; retried).
func (c *SupervisedClient) Write(h Handle, off int, src []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.withRetry("write", func(sc *StreamClient) error {
		rh, err := c.resolveLocked(sc, h)
		if err != nil {
			return err
		}
		return sc.Write(rh, off, src)
	})
}

// Accumulate implements Client. Routed through the sequence-stamped opcode:
// a bare retried ACCUMULATE could double-apply, which corrupts Wg worse
// than losing the push (see seq.go).
func (c *SupervisedClient) Accumulate(dst, src Handle) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seqAccumulateLocked(dst, src)
}

// seqAccumulateLocked stamps one logical accumulate and retries it to
// completion. The stamp is drawn once, before the retry loop — every retry
// replays the SAME sequence number, which is the whole point.
func (c *SupervisedClient) seqAccumulateLocked(dst, src Handle) error {
	c.seq++
	seq := c.seq
	err := c.withRetry("accumulate", func(sc *StreamClient) error {
		rdst, err := c.resolveLocked(sc, dst)
		if err != nil {
			return err
		}
		rsrc, err := c.resolveLocked(sc, src)
		if err != nil {
			return err
		}
		applied, err := sc.SeqAccumulate(rdst, rsrc, c.cfg.ClientID, seq)
		if err != nil {
			return err
		}
		if !applied {
			c.dupAcks.Add(1)
			if c.inst != nil {
				c.inst.dupAcks.Inc()
			}
		}
		return nil
	})
	if err == nil {
		c.pushes.Add(1)
	}
	return err
}

// SeqAccumulate implements SeqAccumulator, exposing the raw stamped verb
// for callers that manage their own sequence space. Most callers should use
// Accumulate/WriteAccumulate, which stamp automatically.
func (c *SupervisedClient) SeqAccumulate(dst, src Handle, client, seq uint64) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var applied bool
	err := c.withRetry("seq-accumulate", func(sc *StreamClient) error {
		rdst, err := c.resolveLocked(sc, dst)
		if err != nil {
			return err
		}
		rsrc, err := c.resolveLocked(sc, src)
		if err != nil {
			return err
		}
		a, err := sc.SeqAccumulate(rdst, rsrc, client, seq)
		applied = a
		return err
	})
	return applied, err
}

// WriteAccumulate implements WriteAccumulator — the supervised form of the
// worker push (Fig. 6 T.A2+T.A3). The fused chunk pipeline applies chunks
// into Wg as they arrive, which is unretriable by construction (a replay
// re-adds every chunk that landed before the failure). The supervised push
// therefore decomposes into the two-phase recipe that IS safe:
//
//	Write(src, 0, data)   — idempotent staging into the private ΔWx segment
//	SeqAccumulate(dst,src) — deduped fold into Wg
//
// trading the pipeline overlap for at-most-once semantics. Jobs that want
// the pipeline back on a quiet network use a bare StreamClient.
func (c *SupervisedClient) WriteAccumulate(dst, src Handle, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.withRetry("write-accumulate stage", func(sc *StreamClient) error {
		rsrc, err := c.resolveLocked(sc, src)
		if err != nil {
			return err
		}
		return sc.Write(rsrc, 0, data)
	})
	if err != nil {
		return err
	}
	return c.seqAccumulateLocked(dst, src)
}

// Version implements Notifier (read-only; retried).
func (c *SupervisedClient) Version(h Handle) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var v uint64
	err := c.withRetry("version", func(sc *StreamClient) error {
		rh, err := c.resolveLocked(sc, h)
		if err != nil {
			return err
		}
		vv, err := sc.Version(rh)
		v = vv
		return err
	})
	return v, err
}

// WaitUpdate implements Notifier. A wait interrupted by a server shutdown
// (ErrWaitCanceled) or a broken connection resumes on the fresh connection
// with the same since — versions are monotonic per segment lifetime, so the
// resumed wait can only be satisfied by the same-or-later update. Note a
// WaitTimeout shorter than the real update cadence turns this into a
// polling loop; budget it generously.
func (c *SupervisedClient) WaitUpdate(h Handle, since uint64) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var v uint64
	err := c.withRetry("wait-update", func(sc *StreamClient) error {
		rh, err := c.resolveLocked(sc, h)
		if err != nil {
			return err
		}
		vv, err := sc.WaitUpdate(rh, since)
		v = vv
		return err
	})
	return v, err
}
