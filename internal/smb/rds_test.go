package smb_test

import (
	"sync"
	"testing"

	"shmcaffe/internal/rds"
	"shmcaffe/internal/smb"
	"shmcaffe/internal/tensor"
)

// TestSMBOverRDS runs the full SMB protocol over the RDS-like reliable
// datagram transport — the transport stack of the paper (SMB on modified
// RDS) end to end: handshake, segment creation, a multi-packet weight
// write, accumulate, and read-back.
func TestSMBOverRDS(t *testing.T) {
	serverEP, err := rds.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer serverEP.Close()

	store := smb.NewStore()
	srv, err := smb.NewServer(store, "127.0.0.1:0") // TCP listener unused here
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Accept RDS connections and serve SMB on each.
	var wg sync.WaitGroup
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			conn, err := serverEP.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				srv.ServeConn(conn)
			}()
		}
	}()

	clientEP, err := rds.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer clientEP.Close()
	conn, err := clientEP.Dial(serverEP.Addr())
	if err != nil {
		t.Fatal(err)
	}
	client := smb.NewStreamClient(conn)
	defer client.Close()

	// A weight vector spanning many RDS packets (256 KiB > 16 KiB MTU).
	const elems = 64 * 1024
	kw, err := client.Create("wg", elems*4)
	if err != nil {
		t.Fatal(err)
	}
	kd, err := client.Create("dw", elems*4)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := client.Attach(kw)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := client.Attach(kd)
	if err != nil {
		t.Fatal(err)
	}
	inc := make([]float32, elems)
	rng := tensor.NewRNG(1)
	for i := range inc {
		inc[i] = float32(rng.NormFloat64())
	}
	if err := client.Write(hd, 0, tensor.Float32Bytes(inc)); err != nil {
		t.Fatal(err)
	}
	if err := client.Accumulate(hw, hd); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, elems*4)
	if err := client.Read(hw, 0, buf); err != nil {
		t.Fatal(err)
	}
	got, err := tensor.Float32FromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range inc {
		if got[i] != inc[i] {
			t.Fatalf("element %d: %v vs %v", i, got[i], inc[i])
		}
	}
	// Stats flowed through the datagram transport.
	if store.Stats().Accumulates != 1 {
		t.Fatalf("server stats %+v", store.Stats())
	}
}
