package smb

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"shmcaffe/internal/tensor"
)

func TestStoreCreateAttachReadWrite(t *testing.T) {
	st := NewStore()
	key, err := st.Create("wg", 16)
	if err != nil {
		t.Fatal(err)
	}
	h, err := st.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Write(h, 4, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 4)
	if err := st.Read(h, 4, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 1 || dst[3] != 4 {
		t.Fatalf("read back %v", dst)
	}
	if size, err := st.SegmentSize(h); err != nil || size != 16 {
		t.Fatalf("SegmentSize = %d, %v", size, err)
	}
}

func TestStoreErrors(t *testing.T) {
	st := NewStore()
	if _, err := st.Create("x", 0); err == nil {
		t.Fatal("expected error for size 0")
	}
	key, _ := st.Create("x", 8)
	if _, err := st.Create("x", 8); !errors.Is(err, ErrSegmentExists) {
		t.Fatalf("want ErrSegmentExists, got %v", err)
	}
	if _, err := st.Lookup("nope"); !errors.Is(err, ErrUnknownSegment) {
		t.Fatalf("want ErrUnknownSegment, got %v", err)
	}
	if _, err := st.Attach(999); !errors.Is(err, ErrUnknownSegment) {
		t.Fatalf("want ErrUnknownSegment, got %v", err)
	}
	h, _ := st.Attach(key)
	if err := st.Read(h, 6, make([]byte, 4)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	if err := st.Write(h, -1, []byte{1}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	if err := st.Detach(h); err != nil {
		t.Fatal(err)
	}
	if err := st.Detach(h); !errors.Is(err, ErrUnknownHandle) {
		t.Fatalf("want ErrUnknownHandle, got %v", err)
	}
	if err := st.Read(h, 0, make([]byte, 1)); !errors.Is(err, ErrUnknownHandle) {
		t.Fatalf("read on detached handle: %v", err)
	}
}

func TestStoreFreeInvalidatesHandles(t *testing.T) {
	st := NewStore()
	key, _ := st.Create("x", 8)
	h, _ := st.Attach(key)
	if err := st.Free(key); err != nil {
		t.Fatal(err)
	}
	if err := st.Read(h, 0, make([]byte, 1)); !errors.Is(err, ErrUnknownHandle) {
		t.Fatalf("want ErrUnknownHandle after free, got %v", err)
	}
	if err := st.Free(key); !errors.Is(err, ErrUnknownSegment) {
		t.Fatalf("double free: %v", err)
	}
	// Name can be reused after free.
	if _, err := st.Create("x", 8); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulate(t *testing.T) {
	st := NewStore()
	kw, _ := st.Create("wg", 12)
	kd, _ := st.Create("dw", 12)
	hw, _ := st.Attach(kw)
	hd, _ := st.Attach(kd)

	if err := st.Write(hw, 0, tensor.Float32Bytes([]float32{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	if err := st.Write(hd, 0, tensor.Float32Bytes([]float32{10, 20, 30})); err != nil {
		t.Fatal(err)
	}
	if err := st.Accumulate(hw, hd); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 12)
	if err := st.Read(hw, 0, buf); err != nil {
		t.Fatal(err)
	}
	vals, _ := tensor.Float32FromBytes(buf)
	want := []float32{11, 22, 33}
	for i, w := range want {
		if vals[i] != w {
			t.Fatalf("accumulated[%d] = %v, want %v", i, vals[i], w)
		}
	}
}

func TestAccumulateErrors(t *testing.T) {
	st := NewStore()
	k1, _ := st.Create("a", 8)
	k2, _ := st.Create("b", 12)
	h1, _ := st.Attach(k1)
	h2, _ := st.Attach(k2)
	if err := st.Accumulate(h1, h2); !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("want ErrSizeMismatch, got %v", err)
	}
	k3, _ := st.Create("c", 6) // not float32-aligned
	k4, _ := st.Create("d", 6)
	h3, _ := st.Attach(k3)
	h4, _ := st.Attach(k4)
	if err := st.Accumulate(h3, h4); !errors.Is(err, ErrNotFloatAligned) {
		t.Fatalf("want ErrNotFloatAligned, got %v", err)
	}
}

// TestConcurrentAccumulateLosesNothing: N workers each accumulate their own
// increment segment M times; the global sum must be exactly N·M·x. This is
// the lost-update safety property the exclusive server-side accumulation
// guarantees (paper Fig. 6 T.A3).
func TestConcurrentAccumulateLosesNothing(t *testing.T) {
	st := NewStore()
	const elems = 64
	const workers = 8
	const rounds = 25
	kw, _ := st.Create("wg", elems*4)
	hw, _ := st.Attach(kw)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			names := SegmentNames{Job: "t"}
			key, err := st.Create(names.Increment(w), elems*4)
			if err != nil {
				t.Error(err)
				return
			}
			hd, err := st.Attach(key)
			if err != nil {
				t.Error(err)
				return
			}
			inc := make([]float32, elems)
			for i := range inc {
				inc[i] = 1
			}
			for r := 0; r < rounds; r++ {
				if err := st.Write(hd, 0, tensor.Float32Bytes(inc)); err != nil {
					t.Error(err)
					return
				}
				if err := st.Accumulate(hw, hd); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	buf := make([]byte, elems*4)
	if err := st.Read(hw, 0, buf); err != nil {
		t.Fatal(err)
	}
	vals, _ := tensor.Float32FromBytes(buf)
	for i, v := range vals {
		if v != workers*rounds {
			t.Fatalf("wg[%d] = %v, want %d", i, v, workers*rounds)
		}
	}
}

func TestStats(t *testing.T) {
	st := NewStore()
	key, _ := st.Create("x", 8)
	h, _ := st.Attach(key)
	st.Write(h, 0, make([]byte, 8))
	st.Read(h, 0, make([]byte, 8))
	s := st.Stats()
	if s.Creates != 1 || s.Attaches != 1 || s.Writes != 1 || s.Reads != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.BytesRead != 8 || s.BytesWrite != 8 {
		t.Fatalf("byte stats %+v", s)
	}
	st.ResetStats()
	if st.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not clear")
	}
}

func TestLocalClientImplementsAPI(t *testing.T) {
	c := NewLocalClient(NewStore())
	key, err := c.Create("seg", 16)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := c.Lookup("seg"); err != nil || got != key {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteInt64(c, h, 1, 42); err != nil {
		t.Fatal(err)
	}
	v, err := ReadInt64(c, h, 1)
	if err != nil || v != 42 {
		t.Fatalf("ReadInt64 = %d, %v", v, err)
	}
	slots, err := ReadInt64Slots(c, h, 2)
	if err != nil || slots[0] != 0 || slots[1] != 42 {
		t.Fatalf("ReadInt64Slots = %v, %v", slots, err)
	}
	if err := c.Detach(h); err != nil {
		t.Fatal(err)
	}
	if err := c.Free(key); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentNames(t *testing.T) {
	n := SegmentNames{Job: "job1"}
	if n.Global() != "job1/wg" {
		t.Fatal(n.Global())
	}
	if n.Increment(3) != "job1/dw/3" {
		t.Fatal(n.Increment(3))
	}
	if n.Control() != "job1/ctl" {
		t.Fatal(n.Control())
	}
}

// Property: Write then Read round-trips arbitrary byte payloads at
// arbitrary in-range offsets.
func TestWriteReadProperty(t *testing.T) {
	st := NewStore()
	const size = 256
	key, _ := st.Create("p", size)
	h, _ := st.Attach(key)
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(size)
		off := rng.Intn(size - n + 1)
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(rng.Uint64())
		}
		if err := st.Write(h, off, src); err != nil {
			return false
		}
		dst := make([]byte, n)
		if err := st.Read(h, off, dst); err != nil {
			return false
		}
		for i := range src {
			if src[i] != dst[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
