package smb

import (
	"fmt"
	"sync"
)

// Sequence-numbered accumulation: at-most-once WRITE+ACCUMULATE under
// retries.
//
// The paper's platform never retries a push — the SMB server is assumed up
// for the whole job, so a ΔWx that reached the server reached it once. A
// fault-tolerant client breaks that assumption: when a push times out, the
// client cannot know whether the accumulate was applied before the
// connection died or lost with it, and blind retry risks adding the same
// gradient into Wg twice (which silently corrupts SEASGD's average — worse
// than losing the push entirely, since a lost push is just a stale worker).
//
// opSeqAccumulate fixes the ambiguity server-side: each supervised client
// stamps its accumulates with (clientID, seq), the store remembers the
// highest sequence applied per client, and a replay of an already-applied
// sequence is acknowledged without re-applying. Combined with the push
// recipe "idempotent Write of ΔWx, then SeqAccumulate" this makes the
// whole retried push exactly-once: re-writing identical bytes into the
// private src segment is harmless, and the accumulate dedupes.

// opSeqAccumulate requests ACCUMULATE(dst += src) stamped with the caller's
// (clientID, seq). Payload: dst u64, src u64, clientID u64, seq u64.
// Reply: applied u64 (1 = applied now, 0 = duplicate of an earlier apply).
const opSeqAccumulate opcode = 13

// SeqAccumulator is the optional deduplicating-accumulate capability of a
// Client. Callers feature-test with a type assertion.
type SeqAccumulator interface {
	// SeqAccumulate behaves like Accumulate(dst, src) but applies at most
	// once per (client, seq): seq values at or below the highest already
	// applied for client are acknowledged (applied=false) without touching
	// dst. Sequences must be issued in increasing order per client.
	SeqAccumulate(dst, src Handle, client, seq uint64) (applied bool, err error)
}

// clientSeq tracks one client's dedup state. The entry mutex is held across
// the accumulate itself so a retry racing its own in-flight original (client
// timed out, reconnected, and re-sent while the first attempt is still
// inside Accumulate on a stalled handler) serializes against it instead of
// double-applying.
type clientSeq struct {
	mu   sync.Mutex
	last uint64 // guarded by mu; highest seq applied, 0 = none
}

// seqTable maps clientID → dedup state. Entries are created lazily and
// never removed: one int64 per client over a whole job is noise next to a
// single Wg segment, and forgetting a client would reopen the replay hole.
type seqTable struct {
	mu sync.Mutex
	m  map[uint64]*clientSeq // guarded by mu
}

func (t *seqTable) entry(client uint64) *clientSeq {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = make(map[uint64]*clientSeq)
	}
	e := t.m[client]
	if e == nil {
		e = new(clientSeq)
		t.m[client] = e
	}
	return e
}

// SeqAccumulate applies dst += src at most once per (client, seq). A seq at
// or below the client's high-water mark is a duplicate: acknowledged,
// counted separately, and not applied — critically, it does NOT advance the
// accumulates counter, so Stats().Accumulates equals the number of distinct
// logical pushes applied no matter how many times each was retried (the
// invariant the fault-injection acceptance test asserts).
func (s *Store) SeqAccumulate(dst, src Handle, client, seq uint64) (bool, error) {
	if seq == 0 {
		return false, fmt.Errorf("smb seq-accumulate: sequence numbers start at 1")
	}
	e := s.seqs.entry(client)
	e.mu.Lock()
	defer e.mu.Unlock()
	if seq <= e.last {
		s.stats.seqDups.Add(1)
		return false, nil
	}
	if err := s.Accumulate(dst, src); err != nil {
		return false, err
	}
	e.last = seq
	return true, nil
}

// SeqAccumulate implements SeqAccumulator in-process.
func (c *LocalClient) SeqAccumulate(dst, src Handle, client, seq uint64) (bool, error) {
	return c.store.SeqAccumulate(dst, src, client, seq)
}

var _ SeqAccumulator = (*LocalClient)(nil)
var _ SeqAccumulator = (*StreamClient)(nil)

// SeqAccumulate implements SeqAccumulator over the wire.
//
//shm:hotpath
func (c *StreamClient) SeqAccumulate(dst, src Handle, client, seq uint64) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beginLocked().u64(uint64(dst)).u64(uint64(src)).u64(client).u64(seq)
	resp, err := c.roundTripLocked(opSeqAccumulate)
	if err != nil {
		return false, err
	}
	fr := frameReader{buf: resp}
	applied := fr.u64()
	return applied == 1, fr.err
}
