package smb

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDispatch feeds arbitrary request payloads to every opcode: the
// server must return an error or a response, never panic — malformed
// frames from a buggy or hostile client cannot take the memory server
// down.
func FuzzDispatch(f *testing.F) {
	f.Add(byte(opCreate), []byte{})
	f.Add(byte(opRead), []byte{1, 2, 3})
	f.Add(byte(opWrite), bytes.Repeat([]byte{0xff}, 40))
	f.Add(byte(opAccumulate), []byte{0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2})
	f.Add(byte(opWriteAccChunk), []byte{1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0,
		0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4}) // hdr+pad+one float
	f.Add(byte(opWriteAccChunk), []byte{7})                 // truncated header
	f.Add(byte(opWriteAccEnd), bytes.Repeat([]byte{0}, 16)) // end without chunks
	f.Add(byte(opHello), []byte{1, 0, 0, 0, 0, 0, 0, 0})    // feature negotiation
	f.Add(byte(opHello), []byte{})                          // truncated hello
	f.Add(byte(opAccumulate)|traceFlagBit, []byte{1})       // flagged op leaks to dispatch
	f.Add(byte(99), []byte{1})
	f.Fuzz(func(t *testing.T, op byte, payload []byte) {
		srv := &Server{store: NewStore()}
		// Prepare one real segment so handle-bearing ops can hit both
		// the found and not-found paths.
		key, _ := srv.store.Create("seed", 16)
		h, _ := srv.store.Attach(key)
		// opWaitUpdate on the live handle blocks until another writer
		// bumps the segment version — there is none here, so that one
		// input would hang the fuzzer rather than find a bug. Invalid
		// handles still exercise the WaitUpdate parse/lookup paths.
		if opcode(op) == opWaitUpdate && len(payload) >= 8 &&
			binary.LittleEndian.Uint64(payload) == uint64(h) {
			t.Skip("WaitUpdate on live handle blocks by design")
		}
		_, _ = srv.dispatch(opcode(op), payload, &connState{})
	})
}

// FuzzFrameRoundTrip: any frame written by writeFrame is read back intact
// by readFrame.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(byte(1), []byte("payload"))
	f.Add(byte(0), []byte{})
	f.Fuzz(func(t *testing.T, op byte, payload []byte) {
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, op, payload); err != nil {
			t.Skip()
		}
		gotOp, gotPayload, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if gotOp != op || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("frame round trip mismatch")
		}
	})
}

// FuzzReadFrame: arbitrary bytes must never panic the frame reader.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{5, 0, 0, 0, 1, 2, 3, 4, 5})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	// Trace-flagged frame: 25-byte body (opcode|0x80 + 24-byte header).
	f.Add(append([]byte{25, 0, 0, 0, byte(opAccumulate) | traceFlagBit},
		bytes.Repeat([]byte{0xab}, 24)...))
	// Flagged frame whose body is shorter than the trace header.
	f.Add([]byte{3, 0, 0, 0, byte(opWrite) | traceFlagBit, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		op, payload, err := readFrame(bytes.NewReader(data))
		if err != nil || op&traceFlagBit == 0 {
			return
		}
		// Flagged frames must split cleanly or be rejected — never panic.
		_, _, _ = parseTraceExt(payload)
	})
}
