package smb

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Pluggable transports (DESIGN.md §16): the TCP frame protocol, its
// scatter-gather variant, and the cross-process shared-memory path are
// peers behind one dial registry. A transport turns DialOptions into a
// Client; everything above (platform wiring, shmtrain) selects by name and
// never sees the difference.

// DialOptions is the transport-independent dial configuration.
type DialOptions struct {
	// Addr is the server's TCP address. The shm transport also starts
	// here: it queries the TCP endpoint for the advertised unix socket.
	Addr string
	// OpTimeout bounds each operation (0 = transport default).
	OpTimeout time.Duration
	// WaitTimeout bounds WaitUpdate (0 = OpTimeout).
	WaitTimeout time.Duration
	// ClientID keys push dedup (0 = auto; multi-process jobs set rank+1).
	ClientID uint64
	// Seed drives retry jitter where the transport supervises reconnects.
	Seed uint64
}

// TransportDialer dials one transport.
type TransportDialer func(DialOptions) (Client, error)

var transportReg = struct {
	sync.Mutex
	m map[string]TransportDialer
}{m: make(map[string]TransportDialer)}

// RegisterTransport installs (or replaces) a named transport dialer.
func RegisterTransport(name string, d TransportDialer) {
	transportReg.Lock()
	transportReg.m[name] = d
	transportReg.Unlock()
}

// DialTransport dials the named transport.
func DialTransport(name string, opts DialOptions) (Client, error) {
	transportReg.Lock()
	d := transportReg.m[name]
	transportReg.Unlock()
	if d == nil {
		return nil, fmt.Errorf("smb: unknown transport %q (have %v)", name, TransportNames())
	}
	return d(opts)
}

// TransportNames lists the registered transports, sorted.
func TransportNames() []string {
	transportReg.Lock()
	names := make([]string, 0, len(transportReg.m))
	for n := range transportReg.m {
		names = append(names, n)
	}
	transportReg.Unlock()
	sort.Strings(names)
	return names
}

func dialSupervised(opts DialOptions, sg bool) (Client, error) {
	return NewSupervisedClient(SupervisedConfig{
		Addr:          opts.Addr,
		OpTimeout:     opts.OpTimeout,
		WaitTimeout:   opts.WaitTimeout,
		Seed:          opts.Seed,
		ClientID:      opts.ClientID,
		ScatterGather: sg,
	}), nil
}

func init() {
	RegisterTransport("tcp", func(opts DialOptions) (Client, error) {
		return dialSupervised(opts, false)
	})
	RegisterTransport("tcp_sg", func(opts DialOptions) (Client, error) {
		return dialSupervised(opts, true)
	})
	RegisterTransport("shm", func(opts DialOptions) (Client, error) {
		path, err := negotiateShm(opts)
		if err != nil {
			return nil, err
		}
		return DialShmConfig(ShmConfig{
			Path:        path,
			OpTimeout:   opts.OpTimeout,
			WaitTimeout: opts.WaitTimeout,
			ClientID:    opts.ClientID,
		})
	})
	RegisterTransport("auto", func(opts DialOptions) (Client, error) {
		c, _, err := DialAuto(opts)
		return c, err
	})
}

// negotiateShm asks the TCP endpoint whether the zero-copy path is on
// offer and whether both processes share a kernel (same boot id — a memfd
// means nothing across machines). Returns the advertised unix socket path.
func negotiateShm(opts DialOptions) (string, error) {
	if !ShmSupported() {
		return "", ErrShmUnsupported
	}
	if localBootID() == 0 {
		return "", fmt.Errorf("smb: local boot id unknown: %w", ErrShmUnsupported)
	}
	sc, err := Dial(opts.Addr)
	if err != nil {
		return "", err
	}
	defer sc.Close()
	// Same defaulting as DialShmConfig (0 → 10s, <0 → none): a default-
	// options DialAuto must not hang forever in ShmQuery against an
	// unresponsive server.
	opT, waitT := shmTimeouts(opts.OpTimeout, opts.WaitTimeout)
	sc.SetTimeouts(opT, waitT)
	flags, serverBoot, path, err := sc.ShmQuery()
	if err != nil {
		return "", err
	}
	if flags&shmQueryOffered == 0 || path == "" {
		return "", errShmNotOffered
	}
	if serverBoot != localBootID() {
		return "", fmt.Errorf("smb: server on a different kernel (boot id mismatch): %w", ErrShmUnsupported)
	}
	return path, nil
}

// DialAuto negotiates the best transport for addr: shared memory when the
// server offers it and lives on this kernel, plain supervised TCP
// otherwise. Returns the client and the name of what was actually dialed
// ("shm" or "tcp") so callers can log the decision.
func DialAuto(opts DialOptions) (Client, string, error) {
	if path, err := negotiateShm(opts); err == nil {
		c, err := DialShmConfig(ShmConfig{
			Path:        path,
			OpTimeout:   opts.OpTimeout,
			WaitTimeout: opts.WaitTimeout,
			ClientID:    opts.ClientID,
		})
		if err == nil {
			return c, "shm", nil
		}
		// The offer was real but the socket failed — fall through to TCP,
		// which is the whole point of negotiating instead of configuring.
	}
	c, err := DialTransport("tcp", opts)
	if err != nil {
		return nil, "", err
	}
	return c, "tcp", nil
}
