//go:build linux && !noshm && (amd64 || arm64)

package smb

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// Linux backend of the shared-memory transport: memfd allocation, mmap,
// cross-process futexes, and SCM_RIGHTS fd passing. Compiled out with the
// noshm tag (mirroring the tensor package's noasm escape hatch); every
// other platform gets the stubs in shm_stub.go and the transport reports
// ErrShmUnsupported.

const shmBuildSupported = true

const (
	mfdCloexec = 0x0001

	// No FUTEX_PRIVATE_FLAG: these words live in a MAP_SHARED file mapped
	// by multiple processes, which is exactly the case the private-futex
	// optimization is not allowed to assume away.
	futexOpWait = 0
	futexOpWake = 1
)

// shmCreateOS allocates a sealed-size shared file of total bytes and maps
// it. memfd_create is preferred (anonymous, CLOEXEC, no filesystem litter);
// kernels without it (ENOSYS) fall back to an unlinked tmpfile, which is
// the same object with a less tidy birth.
func shmCreateOS(total int) (int, []byte, error) {
	fd, err := memfdCreate("shmcaffe-seg")
	if err != nil {
		if err != syscall.ENOSYS {
			return -1, nil, fmt.Errorf("smb: memfd_create: %w", err)
		}
		fd, err = unlinkedTmpFD()
		if err != nil {
			return -1, nil, fmt.Errorf("smb: shm tmpfile fallback: %w", err)
		}
	}
	if err := syscall.Ftruncate(fd, int64(total)); err != nil {
		syscall.Close(fd)
		return -1, nil, fmt.Errorf("smb: shm ftruncate: %w", err)
	}
	m, err := shmMapOS(fd, total)
	if err != nil {
		syscall.Close(fd)
		return -1, nil, err
	}
	return fd, m, nil
}

func memfdCreate(name string) (int, error) {
	p, err := syscall.BytePtrFromString(name)
	if err != nil {
		return -1, err
	}
	r0, _, errno := syscall.Syscall(sysMemfdCreate, uintptr(unsafe.Pointer(p)), mfdCloexec, 0)
	if errno != 0 {
		return -1, errno
	}
	return int(r0), nil
}

func unlinkedTmpFD() (int, error) {
	f, err := os.CreateTemp("", "shmcaffe-seg-*")
	if err != nil {
		return -1, err
	}
	name := f.Name()
	// Dup out of the os.File before closing it: the File's finalizer would
	// otherwise close the fd behind the mapping's back on a later GC.
	fd, err := syscall.Dup(int(f.Fd()))
	f.Close()
	os.Remove(name)
	if err != nil {
		return -1, err
	}
	syscall.CloseOnExec(fd)
	return fd, nil
}

// shmMapOS maps total bytes of fd shared read-write.
func shmMapOS(fd, total int) ([]byte, error) {
	m, err := syscall.Mmap(fd, 0, total, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("smb: shm mmap %d bytes: %w", total, err)
	}
	return m, nil
}

func shmCloseOS(fd int, m []byte) {
	if m != nil {
		syscall.Munmap(m)
	}
	if fd >= 0 {
		syscall.Close(fd)
	}
}

// futexWait parks until *w changes from val, another process wakes the
// word, or timeoutNs elapses. Spurious returns are fine — every caller
// re-checks its predicate in a loop.
//
//shm:hotpath
func futexWait(w *atomic.Uint32, val uint32, timeoutNs int64) {
	ts := syscall.Timespec{Sec: timeoutNs / 1e9, Nsec: timeoutNs % 1e9}
	syscall.Syscall6(syscall.SYS_FUTEX, uintptr(unsafe.Pointer(w)), futexOpWait,
		uintptr(val), uintptr(unsafe.Pointer(&ts)), 0, 0)
}

// futexWakeAll wakes every waiter parked on the word.
//
//shm:hotpath
func futexWakeAll(w *atomic.Uint32) {
	syscall.Syscall6(syscall.SYS_FUTEX, uintptr(unsafe.Pointer(w)), futexOpWake,
		uintptr(int(^uint32(0)>>1)), 0, 0, 0)
}

// canPassFD reports whether conn supports SCM_RIGHTS.
func canPassFD(conn io.ReadWriteCloser) bool {
	_, ok := conn.(*net.UnixConn)
	return ok
}

// sendConnFD passes fd over the unix stream as ancillary data on a one-byte
// carrier message. Stream ordering makes delivery deterministic: the peer
// reads the carrier byte (and with it the fd) exactly after the reply frame
// that announced it.
func sendConnFD(conn io.ReadWriteCloser, fd int) error {
	uc, ok := conn.(*net.UnixConn)
	if !ok {
		return errFDTransport
	}
	rights := syscall.UnixRights(fd)
	var carrier [1]byte
	_, _, err := uc.WriteMsgUnix(carrier[:], rights, nil)
	return err
}

// recvConnFD receives one fd passed by sendConnFD.
func recvConnFD(conn io.ReadWriteCloser) (int, error) {
	uc, ok := conn.(*net.UnixConn)
	if !ok {
		return -1, errFDTransport
	}
	var carrier [1]byte
	oob := make([]byte, 64)
	_, oobn, _, _, err := uc.ReadMsgUnix(carrier[:], oob)
	if err != nil {
		return -1, err
	}
	msgs, err := syscall.ParseSocketControlMessage(oob[:oobn])
	if err != nil {
		return -1, fmt.Errorf("smb: fd pass control message: %w", err)
	}
	if len(msgs) == 0 {
		return -1, errors.New("smb: fd pass carried no control message")
	}
	fds, err := syscall.ParseUnixRights(&msgs[0])
	if err != nil {
		return -1, fmt.Errorf("smb: fd pass rights: %w", err)
	}
	if len(fds) == 0 {
		return -1, errors.New("smb: fd pass carried no rights")
	}
	for _, fd := range fds[1:] {
		syscall.Close(fd) // defensive: only one fd is ever sent
	}
	syscall.CloseOnExec(fds[0])
	return fds[0], nil
}

var (
	bootIDOnce sync.Once
	bootIDVal  uint64
)

// localBootID fingerprints this boot of this machine (FNV-1a of the kernel
// boot_id). Two processes observing the same nonzero value share a kernel,
// so a memfd mapping between them is meaningful; 0 means "unknown" and
// vetoes shm negotiation.
func localBootID() uint64 {
	bootIDOnce.Do(func() {
		b, err := os.ReadFile("/proc/sys/kernel/random/boot_id")
		if err != nil || len(b) == 0 {
			return
		}
		h := uint64(14695981039346656037)
		for _, c := range b {
			h ^= uint64(c)
			h *= 1099511628211
		}
		if h == 0 {
			h = 1
		}
		bootIDVal = h
	})
	return bootIDVal
}
