package smb

import (
	"errors"
	"math"
	"sync"
	"testing"

	"shmcaffe/internal/tensor"
)

// chunkTestVals spans 2.5 lock stripes (chunkBytes/4 float32 per stripe)
// plus an odd tail, so chunked pushes exercise multi-chunk sequences with a
// short final chunk.
const chunkTestVals = 2*(chunkBytes/4) + chunkBytes/8 + 7

// patternVec fills a float32 vector with a mix of signs and magnitudes.
func patternVec(n, seed int) []float32 {
	v := make([]float32, n)
	for i := range v {
		switch (i + seed) % 4 {
		case 0:
			v[i] = float32(i%17) * 0.375
		case 1:
			v[i] = -float32(i%13) * 1.25
		case 2:
			v[i] = float32(seed) + float32(i%7)/8
		default:
			v[i] = 0.0625 * float32((i*seed)%29)
		}
	}
	return v
}

// bytesBitsEqual compares two byte slices exactly.
func bytesBitsEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// setupPair creates a dst/src segment pair of n floats on store and returns
// their handles.
func setupPair(t *testing.T, store *Store, job string, n int) (dst, src Handle) {
	t.Helper()
	gKey, err := store.Create(job+"/wg", n*4)
	if err != nil {
		t.Fatal(err)
	}
	dKey, err := store.Create(job+"/dw", n*4)
	if err != nil {
		t.Fatal(err)
	}
	if dst, err = store.Attach(gKey); err != nil {
		t.Fatal(err)
	}
	if src, err = store.Attach(dKey); err != nil {
		t.Fatal(err)
	}
	return dst, src
}

// TestWriteAccumulateMatchesUnfused pins the fused path against the
// unfused Write + Accumulate pair, bitwise, on the in-process transport.
func TestWriteAccumulateMatchesUnfused(t *testing.T) {
	for _, n := range []int{1, 255, chunkBytes / 4, chunkTestVals} {
		refStore := NewStore()
		refDst, refSrc := setupPair(t, refStore, "ref", n)
		fusedStore := NewStore()
		fDst, fSrc := setupPair(t, fusedStore, "fused", n)

		init := tensor.Float32Bytes(patternVec(n, 3))
		if err := refStore.Write(refDst, 0, init); err != nil {
			t.Fatal(err)
		}
		if err := fusedStore.Write(fDst, 0, init); err != nil {
			t.Fatal(err)
		}

		data := tensor.Float32Bytes(patternVec(n, 11))
		if err := refStore.Write(refSrc, 0, data); err != nil {
			t.Fatal(err)
		}
		if err := refStore.Accumulate(refDst, refSrc); err != nil {
			t.Fatal(err)
		}
		if err := NewLocalClient(fusedStore).WriteAccumulate(fDst, fSrc, data); err != nil {
			t.Fatal(err)
		}

		want := make([]byte, n*4)
		got := make([]byte, n*4)
		if err := refStore.Read(refDst, 0, want); err != nil {
			t.Fatal(err)
		}
		if err := fusedStore.Read(fDst, 0, got); err != nil {
			t.Fatal(err)
		}
		if !bytesBitsEqual(got, want) {
			t.Fatalf("n=%d: fused WriteAccumulate dst diverges from Write+Accumulate", n)
		}
		// The src segment must hold the written payload, as after a Write.
		if err := fusedStore.Read(fSrc, 0, got); err != nil {
			t.Fatal(err)
		}
		if !bytesBitsEqual(got, data) {
			t.Fatalf("n=%d: fused WriteAccumulate src does not hold the pushed data", n)
		}
	}
}

// TestWriteAccumulateTCP pins the chunk-pipelined wire path: a multi-chunk
// push over TCP must produce the same bytes as the unfused pair and count
// as exactly one Write plus one Accumulate.
func TestWriteAccumulateTCP(t *testing.T) {
	srv := startServer(t)
	c := dialT(t, srv)

	n := chunkTestVals
	gKey, err := c.Create("job/wg", n*4)
	if err != nil {
		t.Fatal(err)
	}
	dKey, err := c.Create("job/dw", n*4)
	if err != nil {
		t.Fatal(err)
	}
	hg, err := c.Attach(gKey)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := c.Attach(dKey)
	if err != nil {
		t.Fatal(err)
	}

	init := tensor.Float32Bytes(patternVec(n, 5))
	if err := c.Write(hg, 0, init); err != nil {
		t.Fatal(err)
	}
	srv.Store().ResetStats()

	data := tensor.Float32Bytes(patternVec(n, 23))
	if err := c.WriteAccumulate(hg, hd, data); err != nil {
		t.Fatal(err)
	}

	st := srv.Store().Stats()
	if st.Writes != 1 || st.Accumulates != 1 {
		t.Fatalf("chunked push counted %d writes / %d accumulates, want 1/1", st.Writes, st.Accumulates)
	}
	if want := int64(2 * n * 4); st.BytesWrite != want {
		t.Fatalf("chunked push counted %d bytes written, want %d", st.BytesWrite, want)
	}

	// Reference on a fresh store.
	refStore := NewStore()
	refDst, refSrc := setupPair(t, refStore, "ref", n)
	if err := refStore.Write(refDst, 0, init); err != nil {
		t.Fatal(err)
	}
	if err := refStore.Write(refSrc, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := refStore.Accumulate(refDst, refSrc); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, n*4)
	got := make([]byte, n*4)
	if err := refStore.Read(refDst, 0, want); err != nil {
		t.Fatal(err)
	}
	if err := c.Read(hg, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytesBitsEqual(got, want) {
		t.Fatal("TCP chunked WriteAccumulate diverges from unfused reference")
	}
}

// TestWriteAccumulateVersionBump checks notify semantics: one chunked push
// bumps each segment's version exactly once, like one Write + one
// Accumulate.
func TestWriteAccumulateVersionBump(t *testing.T) {
	store := NewStore()
	dst, src := setupPair(t, store, "job", chunkTestVals)
	c := NewLocalClient(store)

	d0, _ := c.Version(dst)
	s0, _ := c.Version(src)
	data := tensor.Float32Bytes(patternVec(chunkTestVals, 1))
	if err := c.WriteAccumulate(dst, src, data); err != nil {
		t.Fatal(err)
	}
	d1, _ := c.Version(dst)
	s1, _ := c.Version(src)
	if d1 != d0+1 {
		t.Fatalf("dst version bumped %d times per push, want 1", d1-d0)
	}
	if s1 != s0+1 {
		t.Fatalf("src version bumped %d times per push, want 1", s1-s0)
	}
}

// TestWriteAccumulateErrors exercises the failure surface: bad handles,
// size mismatch, misaligned and oversized payloads — and checks a TCP
// connection recovers after a poisoned chunk sequence.
func TestWriteAccumulateErrors(t *testing.T) {
	store := NewStore()
	dst, src := setupPair(t, store, "job", 256)
	lc := NewLocalClient(store)

	if err := lc.WriteAccumulate(dst, 9999, make([]byte, 64)); !errors.Is(err, ErrUnknownHandle) {
		t.Fatalf("unknown src handle: got %v", err)
	}
	if err := lc.WriteAccumulate(dst, src, make([]byte, 257*4)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("oversized payload: got %v", err)
	}
	if err := lc.WriteAccumulate(dst, src, make([]byte, 10)); !errors.Is(err, ErrNotFloatAligned) {
		t.Fatalf("misaligned payload: got %v", err)
	}
	if err := store.WriteAccumulateAt(dst, src, 2, make([]byte, 8)); !errors.Is(err, ErrNotFloatAligned) {
		t.Fatalf("misaligned offset: got %v", err)
	}

	// Mismatched segment sizes.
	oKey, err := store.Create("job/other", 128*4)
	if err != nil {
		t.Fatal(err)
	}
	other, err := store.Attach(oKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := lc.WriteAccumulate(dst, other, make([]byte, 128*4)); !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("size mismatch: got %v", err)
	}

	// Over the wire: a failing sequence reports on the End ack and must not
	// wedge the connection for subsequent traffic.
	srv := startServer(t)
	c := dialT(t, srv)
	gKey, err := c.Create("w/wg", 256*4)
	if err != nil {
		t.Fatal(err)
	}
	hg, err := c.Attach(gKey)
	if err != nil {
		t.Fatal(err)
	}
	dKey, err := c.Create("w/dw", 256*4)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := c.Attach(dKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteAccumulate(hg, 424242, make([]byte, 256*4)); !errors.Is(err, ErrUnknownHandle) {
		t.Fatalf("wire unknown handle: got %v", err)
	}
	good := tensor.Float32Bytes(onesVec(256))
	if err := c.WriteAccumulate(hg, hd, good); err != nil {
		t.Fatalf("connection unusable after failed sequence: %v", err)
	}
	got := make([]byte, 256*4)
	if err := c.Read(hg, 0, got); err != nil {
		t.Fatal(err)
	}
	gv, ok := tensor.Float32View(got)
	if ok && gv[0] != 1 {
		t.Fatalf("post-recovery accumulate wrote %v, want 1", gv[0])
	}
}

// TestChunkedInterleavedClients is the -race satellite test: two TCP
// clients stream chunked pushes into the same destination segment
// concurrently. Chunks interleave stripe by stripe on the server; the
// per-stripe exclusive locks must preserve every increment exactly.
func TestChunkedInterleavedClients(t *testing.T) {
	srv := startServer(t)
	setup := dialT(t, srv)

	const n = chunkTestVals
	const rounds = 8
	gKey, err := setup.Create("race/wg", n*4)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		c := dialT(t, srv)
		dKey, err := c.Create(SegmentNames{Job: "race"}.Increment(w), n*4)
		if err != nil {
			t.Fatal(err)
		}
		hd, err := c.Attach(dKey)
		if err != nil {
			t.Fatal(err)
		}
		hg, err := c.Attach(gKey)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			data := tensor.Float32Bytes(onesVec(n))
			if w == 1 {
				for i := range data {
					data[i] = 0
				}
				v, _ := tensor.Float32View(data)
				if v == nil {
					// Big-endian fallback: encode twos explicitly.
					two := make([]float32, n)
					for i := range two {
						two[i] = 2
					}
					data = tensor.Float32Bytes(two)
				} else {
					for i := range v {
						v[i] = 2
					}
				}
			}
			for r := 0; r < rounds; r++ {
				if err := c.WriteAccumulate(hg, hd, data); err != nil {
					t.Errorf("worker %d round %d: %v", w, r, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Every element received rounds×1 from worker 0 and rounds×2 from
	// worker 1 — small integers, so float32 addition is exact.
	hg, err := setup.Attach(gKey)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, n*4)
	if err := setup.Read(hg, 0, got); err != nil {
		t.Fatal(err)
	}
	want := float32(rounds * (1 + 2))
	vals := make([]float32, n)
	if err := tensor.DecodeFloat32(got, vals); err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != want {
			t.Fatalf("element %d = %v after interleaved pushes, want %v", i, v, want)
		}
	}

	st := srv.Store().Stats()
	if st.Accumulates != 2*rounds {
		t.Fatalf("interleaved pushes counted %d accumulates, want %d", st.Accumulates, 2*rounds)
	}
}

// TestChunkedCrossedPushes streams two chunked sequences whose dst/src
// roles are swapped (A: X ⇐ Y-data, B: Y ⇐ X-data) — the crossed pattern
// that would deadlock without segment-key lock ordering.
func TestChunkedCrossedPushes(t *testing.T) {
	srv := startServer(t)
	setup := dialT(t, srv)
	const n = chunkTestVals
	xKey, err := setup.Create("cross/x", n*4)
	if err != nil {
		t.Fatal(err)
	}
	yKey, err := setup.Create("cross/y", n*4)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		c := dialT(t, srv)
		hx, err := c.Attach(xKey)
		if err != nil {
			t.Fatal(err)
		}
		hy, err := c.Attach(yKey)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			data := tensor.Float32Bytes(onesVec(n))
			for r := 0; r < 6; r++ {
				var err error
				if w == 0 {
					err = c.WriteAccumulate(hx, hy, data)
				} else {
					err = c.WriteAccumulate(hy, hx, data)
				}
				if err != nil {
					t.Errorf("crossed worker %d round %d: %v", w, r, err)
					return
				}
			}
		}()
	}
	wg.Wait() // completing at all is the assertion (no deadlock)
}

// TestShardedWriteAccumulate checks the fan-out path splits a push across
// shards and matches the unfused result, including the fallback for
// backends without the WriteAccumulator capability.
func TestShardedWriteAccumulate(t *testing.T) {
	const n = 3000 // odd split across 2 shards
	s1, s2 := NewStore(), NewStore()
	sc, err := NewShardedClient(NewLocalClient(s1), NewLocalClient(s2))
	if err != nil {
		t.Fatal(err)
	}
	gKey, err := sc.Create("sh/wg", n*4)
	if err != nil {
		t.Fatal(err)
	}
	dKey, err := sc.Create("sh/dw", n*4)
	if err != nil {
		t.Fatal(err)
	}
	hg, err := sc.Attach(gKey)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := sc.Attach(dKey)
	if err != nil {
		t.Fatal(err)
	}
	init := tensor.Float32Bytes(patternVec(n, 2))
	if err := sc.Write(hg, 0, init); err != nil {
		t.Fatal(err)
	}
	data := tensor.Float32Bytes(patternVec(n, 9))
	if err := sc.WriteAccumulate(hg, hd, data); err != nil {
		t.Fatal(err)
	}

	refStore := NewStore()
	refDst, refSrc := setupPair(t, refStore, "ref", n)
	if err := refStore.Write(refDst, 0, init); err != nil {
		t.Fatal(err)
	}
	if err := refStore.Write(refSrc, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := refStore.Accumulate(refDst, refSrc); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, n*4)
	got := make([]byte, n*4)
	if err := refStore.Read(refDst, 0, want); err != nil {
		t.Fatal(err)
	}
	if err := sc.Read(hg, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytesBitsEqual(got, want) {
		t.Fatal("sharded WriteAccumulate diverges from unfused reference")
	}

	// Size-mismatch surface.
	if err := sc.WriteAccumulate(hg, hd, make([]byte, 8)); !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("sharded short payload: got %v", err)
	}
}

// TestWriteAccumulateSelf pins the degenerate dst==src push: the payload
// lands and is immediately doubled, under a single stripe lock.
func TestWriteAccumulateSelf(t *testing.T) {
	store := NewStore()
	key, err := store.Create("self", 64*4)
	if err != nil {
		t.Fatal(err)
	}
	h, err := store.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	vals := patternVec(64, 7)
	if err := NewLocalClient(store).WriteAccumulate(h, h, tensor.Float32Bytes(vals)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64*4)
	if err := store.Read(h, 0, got); err != nil {
		t.Fatal(err)
	}
	decoded := make([]float32, 64)
	if err := tensor.DecodeFloat32(got, decoded); err != nil {
		t.Fatal(err)
	}
	for i := range decoded {
		want := vals[i] + vals[i]
		if math.Float32bits(decoded[i]) != math.Float32bits(want) {
			t.Fatalf("self push element %d = %v, want %v", i, decoded[i], want)
		}
	}
}
