package smb

import (
	"testing"

	"shmcaffe/internal/telemetry"
	"shmcaffe/internal/tensor"
)

// Allocation regression guard (scripts/check.sh tier 2 runs this by name):
// steady-state SMB data-path operations — Store and StreamClient
// Read/Write/Accumulate — must perform zero heap allocations per op. The
// seed allocated a stats closure on every verb, a full decode + re-encode
// per Accumulate, and a fresh frame body per TCP message; any of those
// creeping back fails this test.

const allocVals = 4096 // spans a fraction of one chunk; large enough to be realistic

func setupAllocStore(t testing.TB) (*Store, Handle, Handle) {
	t.Helper()
	store := NewStore()
	// The guards run with telemetry enabled: latency histograms and
	// stripe-wait timing must stay inside the zero-alloc budget too.
	store.Instrument(telemetry.NewRegistry())
	gKey, err := store.Create("alloc/wg", allocVals*4)
	if err != nil {
		t.Fatal(err)
	}
	dKey, err := store.Create("alloc/dw", allocVals*4)
	if err != nil {
		t.Fatal(err)
	}
	hg, err := store.Attach(gKey)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := store.Attach(dKey)
	if err != nil {
		t.Fatal(err)
	}
	return store, hg, hd
}

func TestSteadyStateZeroAllocStore(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	if _, ok := tensor.Float32View(tensor.Float32Bytes(make([]float32, 16))); !ok {
		t.Skip("no zero-copy fast path on this platform")
	}
	store, hg, hd := setupAllocStore(t)
	buf := tensor.Float32Bytes(onesVec(allocVals))

	if n := testing.AllocsPerRun(100, func() {
		if err := store.Write(hd, 0, buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Store.Write allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := store.Read(hg, 0, buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Store.Read allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := store.Accumulate(hg, hd); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Store.Accumulate allocates %.1f per op, want 0", n)
	}
}

func TestSteadyStateZeroAllocStreamClient(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	if _, ok := tensor.Float32View(tensor.Float32Bytes(make([]float32, 16))); !ok {
		t.Skip("no zero-copy fast path on this platform")
	}
	store, _, _ := setupAllocStore(t)
	server, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	go server.Serve() //lint:ignore goleak joined by server.Close via the server's WaitGroup

	client, err := Dial(server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Instrument(telemetry.NewRegistry())
	gKey, err := client.Lookup("alloc/wg")
	if err != nil {
		t.Fatal(err)
	}
	hg, err := client.Attach(gKey)
	if err != nil {
		t.Fatal(err)
	}
	dKey, err := client.Lookup("alloc/dw")
	if err != nil {
		t.Fatal(err)
	}
	hd, err := client.Attach(dKey)
	if err != nil {
		t.Fatal(err)
	}
	buf := tensor.Float32Bytes(onesVec(allocVals))

	// Warm the per-connection scratch buffers to steady-state size.
	for i := 0; i < 4; i++ {
		if err := client.Write(hd, 0, buf); err != nil {
			t.Fatal(err)
		}
		if err := client.Read(hg, 0, buf); err != nil {
			t.Fatal(err)
		}
		if err := client.Accumulate(hg, hd); err != nil {
			t.Fatal(err)
		}
	}

	// The TCP stack itself may allocate inside the kernel-boundary calls on
	// some platforms; allow a tiny epsilon rather than exactly zero for the
	// socket-bound ops, but the protocol layer must not add per-op garbage.
	const eps = 0.5
	if n := testing.AllocsPerRun(50, func() {
		if err := client.Write(hd, 0, buf); err != nil {
			t.Fatal(err)
		}
	}); n > eps {
		t.Errorf("StreamClient.Write allocates %.1f per op, want ~0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		if err := client.Read(hg, 0, buf); err != nil {
			t.Fatal(err)
		}
	}); n > eps {
		t.Errorf("StreamClient.Read allocates %.1f per op, want ~0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		if err := client.Accumulate(hg, hd); err != nil {
			t.Fatal(err)
		}
	}); n > eps {
		t.Errorf("StreamClient.Accumulate allocates %.1f per op, want ~0", n)
	}
}

// TestSteadyStateZeroAllocWriteAccumulate pins the chunked WRITE+ACCUMULATE
// path: the store-side chunk apply is exactly allocation-free, and the
// StreamClient's multi-chunk pipelined push stays within the socket epsilon
// (the protocol layer itself adds no per-op garbage).
func TestSteadyStateZeroAllocWriteAccumulate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	if _, ok := tensor.Float32View(tensor.Float32Bytes(make([]float32, 16))); !ok {
		t.Skip("no zero-copy fast path on this platform")
	}
	// Three full stripes: the push pipelines as three chunks.
	const vals = 3 * chunkBytes / 4
	store := NewStore()
	store.Instrument(telemetry.NewRegistry())
	gKey, err := store.Create("wa/wg", vals*4)
	if err != nil {
		t.Fatal(err)
	}
	dKey, err := store.Create("wa/dw", vals*4)
	if err != nil {
		t.Fatal(err)
	}
	hg, err := store.Attach(gKey)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := store.Attach(dKey)
	if err != nil {
		t.Fatal(err)
	}
	buf := tensor.Float32Bytes(onesVec(vals))
	lc := NewLocalClient(store)
	for i := 0; i < 4; i++ { // warm pools
		if err := lc.WriteAccumulate(hg, hd, buf); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := lc.WriteAccumulate(hg, hd, buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("LocalClient.WriteAccumulate allocates %.1f per op, want 0", n)
	}

	server, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	go server.Serve() //lint:ignore goleak joined by server.Close via the server's WaitGroup
	client, err := Dial(server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Instrument(telemetry.NewRegistry())
	wgKey, err := client.Lookup("wa/wg")
	if err != nil {
		t.Fatal(err)
	}
	whg, err := client.Attach(wgKey)
	if err != nil {
		t.Fatal(err)
	}
	dwKey, err := client.Lookup("wa/dw")
	if err != nil {
		t.Fatal(err)
	}
	whd, err := client.Attach(dwKey)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ { // warm the wire scratch to steady-state size
		if err := client.WriteAccumulate(whg, whd, buf); err != nil {
			t.Fatal(err)
		}
	}
	const eps = 0.5 // see TestSteadyStateZeroAllocStreamClient
	if n := testing.AllocsPerRun(50, func() {
		if err := client.WriteAccumulate(whg, whd, buf); err != nil {
			t.Fatal(err)
		}
	}); n > eps {
		t.Errorf("StreamClient.WriteAccumulate allocates %.1f per op, want ~0", n)
	}
}

// TestReadInt64SlotsSingleAllocation pins the satellite fix: only the
// returned []int64 may allocate; the byte staging buffer is pooled.
func TestReadInt64SlotsSingleAllocation(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	store := NewStore()
	key, err := store.Create("ctl", 16*8)
	if err != nil {
		t.Fatal(err)
	}
	c := NewLocalClient(store)
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := WriteInt64(c, h, i, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the pool.
	if _, err := ReadInt64Slots(c, h, 16); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(100, func() {
		slots, err := ReadInt64Slots(c, h, 16)
		if err != nil || slots[7] != 7 {
			t.Fatalf("slots=%v err=%v", slots, err)
		}
	})
	if n > 1 {
		t.Errorf("ReadInt64Slots allocates %.1f per call, want ≤1 (the result slice)", n)
	}

	// The Into variant reuses the caller's slice: zero allocations. This is
	// the staleness probe's per-T1 path, so it is pinned exactly.
	out := make([]int64, 16)
	n = testing.AllocsPerRun(100, func() {
		if err := ReadInt64SlotsInto(c, h, out); err != nil || out[7] != 7 {
			t.Fatalf("out=%v err=%v", out, err)
		}
	})
	if n != 0 {
		t.Errorf("ReadInt64SlotsInto allocates %.1f per call, want 0", n)
	}
}
