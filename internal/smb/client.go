package smb

import (
	"encoding/binary"
	"fmt"
)

// Client is the SMB API surface the paper describes (Sec. III-B): segment
// lifecycle, the SHM-key/access-key handshake, RDMA-style Read/Write, and
// server-side accumulation. Both the in-process client and the TCP client
// implement it, so the distributed solvers are transport-agnostic.
type Client interface {
	// Create allocates a named segment and returns its SHM key.
	Create(name string, size int) (SHMKey, error)
	// Lookup resolves a segment name to its SHM key (used by workers that
	// receive the name, not the key, out of band).
	Lookup(name string) (SHMKey, error)
	// Attach converts an SHM key into an access handle.
	Attach(key SHMKey) (Handle, error)
	// Detach releases an access handle.
	Detach(h Handle) error
	// Free destroys a segment.
	Free(key SHMKey) error
	// Read copies len(dst) bytes from the segment at off.
	Read(h Handle, off int, dst []byte) error
	// Write stores src into the segment at off.
	Write(h Handle, off int, src []byte) error
	// Accumulate adds the src segment into the dst segment (float32-wise)
	// exclusively on the server.
	Accumulate(dst, src Handle) error
	// Close releases client resources.
	Close() error
}

// LocalClient is the in-process transport: direct calls into a Store. Used
// when all workers run as goroutines of one process (the functional
// experiments) and as the server-side backend of the TCP transport.
type LocalClient struct {
	store *Store
}

var _ Client = (*LocalClient)(nil)

// NewLocalClient returns a client operating directly on store.
func NewLocalClient(store *Store) *LocalClient {
	return &LocalClient{store: store}
}

// Create implements Client.
func (c *LocalClient) Create(name string, size int) (SHMKey, error) {
	return c.store.Create(name, size)
}

// Lookup implements Client.
func (c *LocalClient) Lookup(name string) (SHMKey, error) { return c.store.Lookup(name) }

// Attach implements Client.
func (c *LocalClient) Attach(key SHMKey) (Handle, error) { return c.store.Attach(key) }

// Detach implements Client.
func (c *LocalClient) Detach(h Handle) error { return c.store.Detach(h) }

// Free implements Client.
func (c *LocalClient) Free(key SHMKey) error { return c.store.Free(key) }

// Read implements Client.
func (c *LocalClient) Read(h Handle, off int, dst []byte) error {
	return c.store.Read(h, off, dst)
}

// Write implements Client.
func (c *LocalClient) Write(h Handle, off int, src []byte) error {
	return c.store.Write(h, off, src)
}

// Accumulate implements Client.
func (c *LocalClient) Accumulate(dst, src Handle) error {
	return c.store.Accumulate(dst, src)
}

// Close implements Client.
func (c *LocalClient) Close() error { return nil }

// Counter helpers: the termination-alignment protocol (paper Sec. III-E)
// shares per-worker iteration counts through a small control segment laid
// out as consecutive int64 slots.

// WriteInt64 stores v at slot index (8-byte slots) of the segment.
func WriteInt64(c Client, h Handle, slot int, v int64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	return c.Write(h, slot*8, buf[:])
}

// ReadInt64 loads the int64 at slot index of the segment.
func ReadInt64(c Client, h Handle, slot int) (int64, error) {
	var buf [8]byte
	if err := c.Read(h, slot*8, buf[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(buf[:])), nil
}

// ReadInt64Slots loads n consecutive int64 slots starting at slot 0. The
// byte staging buffer comes from the package scratch pool, so the only
// allocation is the returned slice.
func ReadInt64Slots(c Client, h Handle, n int) ([]int64, error) {
	buf, bp := getScratch(8 * n)
	defer putScratch(bp)
	if err := c.Read(h, 0, buf); err != nil {
		return nil, err
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}

// ReadInt64SlotsInto loads len(out) consecutive int64 slots starting at
// slot 0 into out. Unlike ReadInt64Slots it allocates nothing on the steady
// state — the telemetry staleness probe calls it once per T1 read with a
// preallocated slice.
func ReadInt64SlotsInto(c Client, h Handle, out []int64) error {
	buf, bp := getScratch(8 * len(out))
	defer putScratch(bp)
	if err := c.Read(h, 0, buf); err != nil {
		return err
	}
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}

// ReadInt64SlotsAtInto loads len(out) consecutive int64 slots starting at
// startSlot into out, allocating nothing on the steady state — the liveness
// tracker reads the heartbeat block of the control segment with it.
func ReadInt64SlotsAtInto(c Client, h Handle, startSlot int, out []int64) error {
	buf, bp := getScratch(8 * len(out))
	defer putScratch(bp)
	if err := c.Read(h, 8*startSlot, buf); err != nil {
		return err
	}
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}

// SegmentNames builds the conventional segment names used by ShmCaffe's
// buffer layout (Fig. 5): one global weight buffer, one per-worker weight
// increment buffer, and one control segment.
type SegmentNames struct {
	Job string
}

// Global returns the global-weight segment name (Wg).
func (n SegmentNames) Global() string { return n.Job + "/wg" }

// Increment returns worker rank's private ΔWx segment name.
func (n SegmentNames) Increment(rank int) string {
	return fmt.Sprintf("%s/dw/%d", n.Job, rank)
}

// Control returns the progress-sharing control segment name.
func (n SegmentNames) Control() string { return n.Job + "/ctl" }
