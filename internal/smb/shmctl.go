package smb

import (
	"errors"
	"fmt"
	"time"

	"shmcaffe/internal/telemetry"
)

// Unix-domain control verbs of the shared-memory transport (DESIGN.md §16).
// The control socket speaks the ordinary frame protocol; only the data path
// is mapped. Five verbs:
//
//   - opShmHello   grants the connection a lease — the identity its shared
//     stripe-lock acquisitions carry, and what the server reaps when the
//     connection dies.
//   - opShmMap     exports one segment: the reply carries the geometry, and
//     the memfd follows as SCM_RIGHTS ancillary data on a one-byte carrier
//     message (stream ordering makes the hand-off deterministic).
//   - opShmUnmap   retires a mapping (accounting only; the client's munmap
//     is what actually releases memory).
//   - opShmLease   renews/validates the lease — the heartbeat a client can
//     use to distinguish "server gone" from "socket idle".
//   - opShmQuery   answers "is the zero-copy path on offer, and are we on
//     the same kernel?" — served over TCP too, which is how a worker
//     auto-negotiates: query over TCP, compare boot ids, then dial the
//     advertised unix socket. Old servers answer with a clean unknown-
//     opcode error and the client falls back to TCP, exactly like trace
//     negotiation.
const (
	opShmHello opcode = 15
	opShmMap   opcode = 16
	opShmUnmap opcode = 17
	opShmLease opcode = 18
	opShmQuery opcode = 19
)

// shmQueryOffered is the opShmQuery reply flag: the server exports memfd
// segments and advertises a control socket path.
const shmQueryOffered uint64 = 1 << 0

// errNoShmLease reports a map/lease verb issued before opShmHello.
var errNoShmLease = errors.New("smb: no shm lease on this connection (hello first)")

// errShmNotOffered reports that the server is not exporting segments.
var errShmNotOffered = errors.New("smb: shm transport not offered by this server")

// dispatchShm serves the shared-memory control verbs; chained from
// dispatchNotify's default arm so unknown opcodes still error there.
func (s *Server) dispatchShm(op opcode, payload []byte, cs *connState) ([]byte, error) {
	fr := frameReader{buf: payload}
	switch op {
	//lint:ignore wireproto control-plane verb: one frame per control connection, not a data-path latency
	case opShmHello:
		_ = fr.u64() // feature flags, reserved
		if fr.err != nil {
			return nil, fr.err
		}
		if !ShmSupported() || !s.store.ShmEnabled() {
			return nil, errShmNotOffered
		}
		if cs.lease == 0 {
			cs.lease = s.shmLeases.Add(1) + 1 // leases start at 2; 1 is the server
			s.store.shmc.leases.Add(1)
			s.activeShm.Add(1)
		}
		return cs.fw.u64(uint64(cs.lease)).buf, nil
	//lint:ignore wireproto control-plane verb: one frame per mapped segment, not a data-path latency
	case opShmMap:
		h := fr.u64()
		if fr.err != nil {
			return nil, fr.err
		}
		if cs.lease == 0 {
			return nil, errNoShmLease
		}
		if !canPassFD(cs.conn) {
			return nil, errFDTransport
		}
		sh, seg, err := s.store.shmSegment(Handle(h))
		if err != nil {
			return nil, err
		}
		// The fd goes out as ancillary data right after this OK reply —
		// handleConn sends it before reading the next request frame.
		cs.passFD = sh.fd
		s.store.shmc.fdPassed.Add(1)
		s.store.shmc.mapBytes.Add(int64(len(sh.m)))
		if cs.shmMaps == nil {
			cs.shmMaps = make(map[Handle]int64)
		}
		cs.shmMaps[Handle(h)] += int64(len(sh.m))
		telemetry.RecordEvent(telemetry.EvShmMap, int64(seg.key), int64(len(sh.m)), 0)
		return cs.fw.u64(uint64(seg.key)).u64(uint64(sh.ctlBytes)).
			u64(uint64(len(sh.dat))).u64(uint64(sh.stripes)).buf, nil
	//lint:ignore wireproto control-plane verb: one frame per unmapped segment, not a data-path latency
	case opShmUnmap:
		h := fr.u64()
		if fr.err != nil {
			return nil, fr.err
		}
		// Only retire mappings this connection made: a duplicate or
		// unsolicited unmap must not drive the map-bytes gauge negative.
		b, ok := cs.shmMaps[Handle(h)]
		if !ok {
			return nil, fmt.Errorf("smb: handle %d was not mapped on this connection", h)
		}
		delete(cs.shmMaps, Handle(h))
		s.store.shmc.mapBytes.Add(-b)
		return nil, nil
	//lint:ignore wireproto control-plane verb: a heartbeat frame, not a data-path latency
	case opShmLease:
		lease := fr.u64()
		if fr.err != nil {
			return nil, fr.err
		}
		if cs.lease == 0 || uint64(cs.lease) != lease {
			return nil, errNoShmLease
		}
		return cs.fw.u64(uint64(cs.lease)).buf, nil
	//lint:ignore wireproto control-plane verb: one frame per dial, not a data-path latency
	case opShmQuery:
		_ = fr.u64() // client boot id; informational
		if fr.err != nil {
			return nil, fr.err
		}
		var flags uint64
		path := s.ShmAddr()
		if ShmSupported() && s.store.ShmEnabled() && path != "" {
			flags |= shmQueryOffered
		}
		return cs.fw.u64(flags).u64(localBootID()).str(path).buf, nil
	default:
		return s.dispatchSnap(op, payload, cs)
	}
}

// SetShmAddr advertises the unix-domain control socket path in opShmQuery
// replies; cmd/smbserver sets it when serving with -shm.
func (s *Server) SetShmAddr(path string) { s.shmPath.Store(path) }

// ShmAddr returns the advertised control socket path ("" = none).
func (s *Server) ShmAddr() string {
	p, _ := s.shmPath.Load().(string)
	return p
}

// Client-side control verbs.

// shmGeometry is the opShmMap reply: where the data region lives inside the
// mapped file.
type shmGeometry struct {
	key      SHMKey
	ctlBytes int
	size     int
	stripes  int
}

// ShmHello requests a lease on this control connection. The server must be
// exporting segments; against a non-shm or old server the remote error
// surfaces directly (DialShm treats it as "not offered").
func (c *StreamClient) ShmHello() (uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beginLocked().u64(0)
	resp, err := c.roundTripLocked(opShmHello)
	if err != nil {
		return 0, err
	}
	fr := frameReader{buf: resp}
	lease := fr.u64()
	return uint32(lease), fr.err
}

// shmMap maps the segment behind h: one round trip for the geometry, then
// the fd arrives as ancillary data and the file is mmapped. Only valid on a
// unix-domain connection.
func (c *StreamClient) shmMap(h Handle) (*shmShared, shmGeometry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var g shmGeometry
	c.beginLocked().u64(uint64(h))
	resp, err := c.roundTripLocked(opShmMap)
	if err != nil {
		return nil, g, err
	}
	fr := frameReader{buf: resp}
	g.key = SHMKey(fr.u64())
	g.ctlBytes = int(fr.u64())
	g.size = int(fr.u64())
	g.stripes = int(fr.u64())
	if fr.err != nil {
		return nil, g, fr.err
	}
	// The fd's carrier byte is the next thing on the stream; a failure here
	// desyncs the framing, so it poisons like any transport error.
	if dc, ok := c.conn.(deadlineConn); ok && c.opTimeout > 0 {
		dc.SetReadDeadline(time.Now().Add(c.opTimeout))
		defer dc.SetReadDeadline(time.Time{})
	}
	fd, err := recvConnFD(c.conn)
	if err != nil {
		return nil, g, c.poisonLocked(fmt.Errorf("smb shm fd pass: %w: %w", ErrTransport, err))
	}
	sh, err := mapShmShared(fd, g.ctlBytes, g.size)
	if err != nil {
		shmCloseOS(fd, nil)
		return nil, g, err
	}
	return sh, g, nil
}

// ShmUnmap retires the server-side accounting of one mapping.
func (c *StreamClient) ShmUnmap(h Handle) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beginLocked().u64(uint64(h))
	_, err := c.roundTripLocked(opShmUnmap)
	return err
}

// ShmLease validates/renews the connection's lease.
func (c *StreamClient) ShmLease(lease uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beginLocked().u64(uint64(lease))
	_, err := c.roundTripLocked(opShmLease)
	return err
}

// ShmQuery asks whether the server offers the zero-copy path. Like
// NegotiateTrace, an old server's unknown-opcode reply is a clean "no":
// (0, 0, "", nil) with the connection fully usable. Only transport
// failures surface as errors.
func (c *StreamClient) ShmQuery() (flags, serverBootID uint64, path string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beginLocked().u64(localBootID())
	resp, err := c.roundTripLocked(opShmQuery)
	if err != nil {
		if errors.Is(err, ErrTransport) {
			return 0, 0, "", err
		}
		return 0, 0, "", nil // old or non-shm server: framing intact
	}
	fr := frameReader{buf: resp}
	flags = fr.u64()
	serverBootID = fr.u64()
	path = fr.str()
	return flags, serverBootID, path, fr.err
}
