// Package smb implements the Soft Memory Box: the remote-shared-memory
// framework underneath ShmCaffe (paper Sec. III-B). A memory server owns
// byte segments; clients obtain an SHM key at creation time, exchange it
// out of band (the master broadcasts it over MPI, Fig. 2), attach to get an
// access key (the stand-in for the Infiniband rkey), and then issue
// Read / Write / Accumulate operations. Accumulate is the server-side
// float32 "dst += src" between segments that lets SEASGD run without a
// parameter server (Eq. 7).
//
// Two transports are provided: a zero-copy in-process client for
// goroutine-per-worker deployments, and a TCP client/server pair with a
// binary protocol standing in for RDMA verbs.
package smb

import (
	"errors"
	"fmt"
	"sync"

	"shmcaffe/internal/tensor"
)

// Exported errors; callers match with errors.Is.
var (
	ErrSegmentExists   = errors.New("smb: segment already exists")
	ErrUnknownSegment  = errors.New("smb: unknown segment")
	ErrUnknownHandle   = errors.New("smb: unknown access handle")
	ErrOutOfRange      = errors.New("smb: offset/length out of segment range")
	ErrSizeMismatch    = errors.New("smb: segment sizes incompatible")
	ErrNotFloatAligned = errors.New("smb: segment size not float32-aligned")
)

// SHMKey identifies a segment for attachment; it is the shared-memory
// generation key the master broadcasts to slaves (Fig. 2).
type SHMKey uint64

// Handle is an attached client's access key to one segment — the analogue
// of the RDMA remote key granting direct access.
type Handle uint64

// Stats counts server-side traffic; the Fig. 7 bandwidth experiment and the
// comm-volume assertions read these.
type Stats struct {
	Creates     int64
	Attaches    int64
	Reads       int64
	Writes      int64
	Accumulates int64
	BytesRead   int64
	BytesWrite  int64
}

// segment is one shared memory region.
type segment struct {
	key  SHMKey
	name string
	mu   sync.RWMutex
	data []byte // contents guarded by mu (the backing array; the header never changes)
}

// Store is the server-side segment table. It is safe for concurrent use.
type Store struct {
	mu         sync.Mutex
	nextKey    SHMKey              // guarded by mu
	nextHandle Handle              // guarded by mu
	segments   map[SHMKey]*segment // guarded by mu
	byName     map[string]SHMKey   // guarded by mu
	handles    map[Handle]*segment // guarded by mu

	// accMu serializes Accumulate calls: the paper's SMB server
	// "exclusively processes the cumulative update requests of global
	// weights from each worker" (Fig. 6, T.A3).
	accMu sync.Mutex

	statMu sync.Mutex
	stats  Stats // guarded by statMu

	// versions backs the update-notification API (notify.go).
	versions *versionTable
}

// NewStore returns an empty segment store.
func NewStore() *Store {
	return &Store{
		segments: make(map[SHMKey]*segment),
		byName:   make(map[string]SHMKey),
		handles:  make(map[Handle]*segment),
		versions: newVersionTable(),
	}
}

// Create allocates a zero-filled segment of size bytes under a unique name
// and returns its SHM key.
func (s *Store) Create(name string, size int) (SHMKey, error) {
	if size <= 0 {
		return 0, fmt.Errorf("smb: create %q with size %d", name, size)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byName[name]; ok {
		return 0, fmt.Errorf("create %q: %w", name, ErrSegmentExists)
	}
	s.nextKey++
	key := s.nextKey
	seg := &segment{key: key, name: name, data: make([]byte, size)}
	s.segments[key] = seg
	s.byName[name] = key
	s.addStat(func(st *Stats) { st.Creates++ })
	return key, nil
}

// Lookup returns the SHM key of a named segment.
func (s *Store) Lookup(name string) (SHMKey, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key, ok := s.byName[name]
	if !ok {
		return 0, fmt.Errorf("lookup %q: %w", name, ErrUnknownSegment)
	}
	return key, nil
}

// Attach grants access to the segment identified by key, returning an
// access handle.
func (s *Store) Attach(key SHMKey) (Handle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seg, ok := s.segments[key]
	if !ok {
		return 0, fmt.Errorf("attach key %d: %w", key, ErrUnknownSegment)
	}
	s.nextHandle++
	h := s.nextHandle
	s.handles[h] = seg
	s.addStat(func(st *Stats) { st.Attaches++ })
	return h, nil
}

// Detach revokes an access handle.
func (s *Store) Detach(h Handle) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.handles[h]; !ok {
		return fmt.Errorf("detach handle %d: %w", h, ErrUnknownHandle)
	}
	delete(s.handles, h)
	return nil
}

// Free destroys a segment and invalidates all handles to it.
func (s *Store) Free(key SHMKey) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	seg, ok := s.segments[key]
	if !ok {
		return fmt.Errorf("free key %d: %w", key, ErrUnknownSegment)
	}
	delete(s.segments, key)
	delete(s.byName, seg.name)
	for h, hs := range s.handles {
		if hs == seg {
			delete(s.handles, h)
		}
	}
	return nil
}

func (s *Store) lookupHandle(h Handle) (*segment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seg, ok := s.handles[h]
	if !ok {
		return nil, fmt.Errorf("handle %d: %w", h, ErrUnknownHandle)
	}
	return seg, nil
}

// SegmentSize returns the byte size of the segment behind handle h.
func (s *Store) SegmentSize(h Handle) (int, error) {
	seg, err := s.lookupHandle(h)
	if err != nil {
		return 0, err
	}
	return len(seg.data), nil //lint:ignore guardedby the slice header is immutable after Create; only contents need mu
}

// Read copies len(dst) bytes from the segment at off into dst — the RDMA
// Read verb.
func (s *Store) Read(h Handle, off int, dst []byte) error {
	seg, err := s.lookupHandle(h)
	if err != nil {
		return err
	}
	if off < 0 || off+len(dst) > len(seg.data) {
		return fmt.Errorf("read [%d,%d) of %d-byte segment %q: %w",
			off, off+len(dst), len(seg.data), seg.name, ErrOutOfRange)
	}
	seg.mu.RLock()
	copy(dst, seg.data[off:])
	seg.mu.RUnlock()
	s.addStat(func(st *Stats) {
		st.Reads++
		st.BytesRead += int64(len(dst))
	})
	return nil
}

// Write copies src into the segment at off — the RDMA Write verb.
func (s *Store) Write(h Handle, off int, src []byte) error {
	seg, err := s.lookupHandle(h)
	if err != nil {
		return err
	}
	if off < 0 || off+len(src) > len(seg.data) {
		return fmt.Errorf("write [%d,%d) of %d-byte segment %q: %w",
			off, off+len(src), len(seg.data), seg.name, ErrOutOfRange)
	}
	seg.mu.Lock()
	copy(seg.data[off:], src)
	seg.mu.Unlock()
	s.versions.bump(seg)
	s.addStat(func(st *Stats) {
		st.Writes++
		st.BytesWrite += int64(len(src))
	})
	return nil
}

// Accumulate performs dst[i] += src[i] over the segments interpreted as
// float32 vectors. The whole operation is exclusive server-side, matching
// the paper's accumulation semantics (T.A3): concurrent Accumulates from
// different workers never interleave, so no increments are lost.
func (s *Store) Accumulate(dst, src Handle) error {
	dseg, err := s.lookupHandle(dst)
	if err != nil {
		return err
	}
	sseg, err := s.lookupHandle(src)
	if err != nil {
		return err
	}
	if len(dseg.data) != len(sseg.data) {
		return fmt.Errorf("accumulate %q (%d B) += %q (%d B): %w",
			dseg.name, len(dseg.data), sseg.name, len(sseg.data), ErrSizeMismatch)
	}
	if len(dseg.data)%4 != 0 {
		return fmt.Errorf("accumulate %q: %w", dseg.name, ErrNotFloatAligned)
	}

	s.accMu.Lock()
	defer s.accMu.Unlock()
	sseg.mu.RLock()
	srcVals, err := tensor.Float32FromBytes(sseg.data)
	sseg.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("accumulate decode: %w", err)
	}
	dseg.mu.Lock()
	defer dseg.mu.Unlock()
	dstVals, err := tensor.Float32FromBytes(dseg.data)
	if err != nil {
		return fmt.Errorf("accumulate decode: %w", err)
	}
	tensor.AxpySlice(1, srcVals, dstVals)
	if _, err := tensor.EncodeFloat32(dstVals, dseg.data); err != nil {
		return fmt.Errorf("accumulate encode: %w", err)
	}
	s.versions.bump(dseg)
	s.addStat(func(st *Stats) {
		st.Accumulates++
		st.BytesWrite += int64(len(dseg.data))
	})
	return nil
}

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.stats
}

// ResetStats zeroes the traffic counters.
func (s *Store) ResetStats() {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	s.stats = Stats{}
}

func (s *Store) addStat(fn func(*Stats)) {
	s.statMu.Lock()
	fn(&s.stats)
	s.statMu.Unlock()
}
