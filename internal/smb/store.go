// Package smb implements the Soft Memory Box: the remote-shared-memory
// framework underneath ShmCaffe (paper Sec. III-B). A memory server owns
// byte segments; clients obtain an SHM key at creation time, exchange it
// out of band (the master broadcasts it over MPI, Fig. 2), attach to get an
// access key (the stand-in for the Infiniband rkey), and then issue
// Read / Write / Accumulate operations. Accumulate is the server-side
// float32 "dst += src" between segments that lets SEASGD run without a
// parameter server (Eq. 7).
//
// Two transports are provided: a zero-copy in-process client for
// goroutine-per-worker deployments, and a TCP client/server pair with a
// binary protocol standing in for RDMA verbs.
package smb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"shmcaffe/internal/tensor"
)

// Exported errors; callers match with errors.Is.
var (
	ErrSegmentExists   = errors.New("smb: segment already exists")
	ErrUnknownSegment  = errors.New("smb: unknown segment")
	ErrUnknownHandle   = errors.New("smb: unknown access handle")
	ErrOutOfRange      = errors.New("smb: offset/length out of segment range")
	ErrSizeMismatch    = errors.New("smb: segment sizes incompatible")
	ErrNotFloatAligned = errors.New("smb: segment size not float32-aligned")
)

// SHMKey identifies a segment for attachment; it is the shared-memory
// generation key the master broadcasts to slaves (Fig. 2).
type SHMKey uint64

// Handle is an attached client's access key to one segment — the analogue
// of the RDMA remote key granting direct access.
type Handle uint64

// Stats counts server-side traffic; the Fig. 7 bandwidth experiment and the
// comm-volume assertions read these.
type Stats struct {
	Creates       int64
	Attaches      int64
	Reads         int64
	Writes        int64
	Accumulates   int64
	BytesRead     int64
	BytesWrite    int64
	NotifyWakeups int64
	// SeqDuplicates counts sequence-stamped accumulates acknowledged as
	// already-applied duplicates (seq.go). Duplicates do not advance
	// Accumulates, so Accumulates stays exactly the count of distinct
	// logical pushes applied, however many times each was retried.
	SeqDuplicates int64
}

// statCounters is the lock-free internal form of Stats: plain atomic adds
// on the hot path instead of the seed's closure-under-mutex addStat, which
// allocated a closure and serialized every Read/Write/Accumulate behind one
// statMu.
type statCounters struct {
	creates       atomic.Int64
	attaches      atomic.Int64
	reads         atomic.Int64
	writes        atomic.Int64
	accumulates   atomic.Int64
	bytesRead     atomic.Int64
	bytesWrite    atomic.Int64
	notifyWakeups atomic.Int64
	seqDups       atomic.Int64
}

// chunkBytes is the lock-striping granularity of a segment: each chunk has
// its own RWMutex, so concurrent Accumulates (and Reads/Writes) to
// different chunks of the same segment proceed in parallel. 64 KiB (16 Ki
// float32) is coarse enough that lock traffic is negligible against the
// add loop and fine enough that an 8-worker accumulate into a multi-MB Wg
// rarely collides on a stripe. Must stay a multiple of 8 so the int64
// control slots never straddle a stripe.
const chunkBytes = 64 << 10

// segment is one shared memory region. The data slice header and the locks
// table are immutable after Create; the *contents* of data are protected
// per chunkBytes stripe by the corresponding entry of locks (stripe i
// covers bytes [i*chunkBytes, (i+1)*chunkBytes)). An operation touching a
// byte range must hold every overlapped stripe lock, one stripe at a time
// — which makes whole-segment operations atomic per stripe, not per
// segment (see Accumulate).
type segment struct {
	key   SHMKey
	name  string
	locks []sync.RWMutex
	data  []byte
	// shm is the memfd backing when the segment is exported for
	// cross-process mapping (shmseg.go); nil for heap segments. Immutable
	// after Create, like data — data aliases shm's data region when set.
	shm *shmShared

	// gate is the whole-operation fence snapshots cut against
	// (snapshot.go): every mutating op holds it in read mode for its full
	// stripe sweep, Store.Snapshot takes it exclusively for the brief cut.
	// Uncontended in steady state, so the write path stays wait-free.
	gate sync.RWMutex
	// epochs are the per-stripe seqlock words: a stripe's epoch is odd
	// while a writer holds it exclusively, bumped again (even) on release.
	// Snapshot readers validate lock-free copies of pristine stripes
	// against them.
	epochs []atomic.Uint64
	// snaps lists the live lazy snapshots writers must preserve
	// pre-images for; nil when none (the steady-state load is one pointer
	// check per stripe write).
	snaps atomic.Pointer[[]*snapState]
}

// numChunks returns the stripe count for a segment of size bytes.
func numChunks(size int) int { return (size + chunkBytes - 1) / chunkBytes }

// chunkRange returns the byte range of stripe ci, clamped to the segment.
func (seg *segment) chunkRange(ci int) (lo, hi int) {
	lo = ci * chunkBytes
	hi = lo + chunkBytes
	if hi > len(seg.data) {
		hi = len(seg.data)
	}
	return lo, hi
}

// Store is the server-side segment table. It is safe for concurrent use.
type Store struct {
	mu         sync.Mutex
	nextKey    SHMKey              // guarded by mu
	nextHandle Handle              // guarded by mu
	segments   map[SHMKey]*segment // guarded by mu
	byName     map[string]SHMKey   // guarded by mu
	handles    map[Handle]*segment // guarded by mu

	stats statCounters

	// inst holds the optional latency instrumentation (instrument.go);
	// nil until Instrument is called. Atomic so a scrape endpoint can
	// install it while traffic is in flight.
	inst atomic.Pointer[storeInstruments]

	// versions backs the update-notification API (notify.go).
	versions *versionTable

	// seqs backs the at-most-once accumulate dedup (seq.go).
	seqs seqTable

	// shmOn switches Create to memfd-backed segments (shmseg.go); shmc
	// counts the shared-memory transport's control-plane traffic.
	shmOn atomic.Bool
	shmc  shmCounters

	// snapTable maps live snapshot IDs to their state (snapshot.go) as an
	// immutable map behind an atomic pointer: SnapRead resolves with one
	// Load and a typed map lookup — no lock, no interface boxing, no
	// allocation on the serving hot path. snapMu serializes the (rare)
	// copy-on-write table swaps; snapc carries the snapshot accounting.
	snapTable atomic.Pointer[map[SnapID]*snapState]
	snapMu    sync.Mutex
	snapc     snapCounters
}

// NewStore returns an empty segment store.
func NewStore() *Store {
	return &Store{
		segments: make(map[SHMKey]*segment),
		byName:   make(map[string]SHMKey),
		handles:  make(map[Handle]*segment),
		versions: newVersionTable(),
	}
}

// Create allocates a zero-filled segment of size bytes under a unique name
// and returns its SHM key.
func (s *Store) Create(name string, size int) (SHMKey, error) {
	if size <= 0 {
		return 0, fmt.Errorf("smb: create %q with size %d", name, size)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byName[name]; ok {
		return 0, fmt.Errorf("create %q: %w", name, ErrSegmentExists)
	}
	s.nextKey++
	key := s.nextKey
	seg := &segment{
		key:    key,
		name:   name,
		locks:  make([]sync.RWMutex, numChunks(size)),
		epochs: make([]atomic.Uint64, numChunks(size)),
	}
	if s.shmOn.Load() {
		sh, err := newShmShared(size)
		if err != nil {
			// Heap fallback: the segment still works over every wire verb,
			// it just cannot be mapped (opShmMap reports as much).
			s.shmc.allocFails.Add(1)
		} else {
			seg.shm = sh
			seg.data = sh.dat
		}
	}
	if seg.data == nil {
		seg.data = make([]byte, size)
	}
	s.segments[key] = seg
	s.byName[name] = key
	s.stats.creates.Add(1)
	return key, nil
}

// Lookup returns the SHM key of a named segment.
func (s *Store) Lookup(name string) (SHMKey, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key, ok := s.byName[name]
	if !ok {
		return 0, fmt.Errorf("lookup %q: %w", name, ErrUnknownSegment)
	}
	return key, nil
}

// Attach grants access to the segment identified by key, returning an
// access handle.
func (s *Store) Attach(key SHMKey) (Handle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seg, ok := s.segments[key]
	if !ok {
		return 0, fmt.Errorf("attach key %d: %w", key, ErrUnknownSegment)
	}
	s.nextHandle++
	h := s.nextHandle
	s.handles[h] = seg
	s.stats.attaches.Add(1)
	return h, nil
}

// Detach revokes an access handle.
func (s *Store) Detach(h Handle) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.handles[h]; !ok {
		return fmt.Errorf("detach handle %d: %w", h, ErrUnknownHandle)
	}
	delete(s.handles, h)
	return nil
}

// Free destroys a segment and invalidates all handles to it.
func (s *Store) Free(key SHMKey) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	seg, ok := s.segments[key]
	if !ok {
		return fmt.Errorf("free key %d: %w", key, ErrUnknownSegment)
	}
	delete(s.segments, key)
	delete(s.byName, seg.name)
	for h, hs := range s.handles {
		if hs == seg {
			delete(s.handles, h)
		}
	}
	// A freed memfd segment keeps its mapping and fd until process exit:
	// in-flight handlers may still touch seg.data, and remote mappings hold
	// their own fd references anyway. Segments live for the job in every
	// caller today, so this leaks only on Free-heavy synthetic workloads.
	return nil
}

func (s *Store) lookupHandle(h Handle) (*segment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seg, ok := s.handles[h]
	if !ok {
		return nil, fmt.Errorf("handle %d: %w", h, ErrUnknownHandle)
	}
	return seg, nil
}

// SegmentSize returns the byte size of the segment behind handle h.
func (s *Store) SegmentSize(h Handle) (int, error) {
	seg, err := s.lookupHandle(h)
	if err != nil {
		return 0, err
	}
	return len(seg.data), nil // the slice header is immutable after Create
}

// Read copies len(dst) bytes from the segment at off into dst — the RDMA
// Read verb. The copy is atomic per chunkBytes stripe: a Read overlapping
// a concurrent Write or Accumulate sees each stripe either before or after
// the update, which is exactly the relaxed visibility the asynchronous
// SEASGD read of Wg tolerates (paper Eq. 6: workers train on slightly
// stale weights by design).
//
//shm:hotpath
func (s *Store) Read(h Handle, off int, dst []byte) error {
	seg, err := s.lookupHandle(h)
	if err != nil {
		return err
	}
	if off < 0 || off+len(dst) > len(seg.data) {
		return fmt.Errorf("read [%d,%d) of %d-byte segment %q: %w",
			off, off+len(dst), len(seg.data), seg.name, ErrOutOfRange)
	}
	ins := s.inst.Load()
	var t0 time.Time
	if ins != nil {
		t0 = time.Now()
	}
	for covered := 0; covered < len(dst); {
		start := off + covered
		ci := start / chunkBytes
		_, hi := seg.chunkRange(ci)
		if end := off + len(dst); hi > end {
			hi = end
		}
		seg.rlockStripe(ci)
		copy(dst[covered:covered+(hi-start)], seg.data[start:hi])
		seg.runlockStripe(ci)
		covered += hi - start
	}
	s.stats.reads.Add(1)
	s.stats.bytesRead.Add(int64(len(dst)))
	if ins != nil {
		ins.readLatency.ObserveSeconds(time.Since(t0).Nanoseconds())
	}
	return nil
}

// Write copies src into the segment at off — the RDMA Write verb. Like
// Read, the copy is atomic per stripe.
//
//shm:hotpath
func (s *Store) Write(h Handle, off int, src []byte) error {
	seg, err := s.lookupHandle(h)
	if err != nil {
		return err
	}
	if off < 0 || off+len(src) > len(seg.data) {
		return fmt.Errorf("write [%d,%d) of %d-byte segment %q: %w",
			off, off+len(src), len(seg.data), seg.name, ErrOutOfRange)
	}
	ins := s.inst.Load()
	var t0 time.Time
	if ins != nil {
		t0 = time.Now()
	}
	seg.gate.RLock() // snapshot fence: the whole op is one cut-atomic unit
	for covered := 0; covered < len(src); {
		start := off + covered
		ci := start / chunkBytes
		_, hi := seg.chunkRange(ci)
		if end := off + len(src); hi > end {
			hi = end
		}
		seg.lockStripe(ci, false)
		copy(seg.data[start:hi], src[covered:covered+(hi-start)])
		seg.unlockStripe(ci)
		covered += hi - start
	}
	s.versions.bump(seg)
	seg.gate.RUnlock()
	s.stats.writes.Add(1)
	s.stats.bytesWrite.Add(int64(len(src)))
	if ins != nil {
		ins.writeLatency.ObserveSeconds(time.Since(t0).Nanoseconds())
	}
	return nil
}

// accScratchPool recycles the decode buffers of the non-little-endian /
// misaligned Accumulate fallback; the fast path never touches it.
var accScratchPool = sync.Pool{New: func() any { return new([]float32) }}

// Accumulate performs dst[i] += src[i] over the segments interpreted as
// float32 vectors.
//
// The seed serialized every Accumulate behind one global accMu and
// decoded/re-encoded the full segment per call. This version works
// stripe-by-stripe on zero-copy float32 views of the segment bytes
// (tensor.Float32View): for each chunk it takes the destination stripe's
// write lock and the source stripe's read lock, runs the add in place, and
// releases — so concurrent workers accumulating into the same global
// weight segment proceed in parallel on different stripes and only
// serialize when they collide on the same 64 KiB.
//
// The paper's no-lost-increments guarantee (Fig. 6 T.A3) still holds
// exactly: every element update happens under its stripe's exclusive lock,
// so updates to any given element are linearized and none are dropped —
// the race-stress suite asserts the exact sum. What changes is atomicity
// granularity: a concurrent Read may observe some stripes before and some
// after a given Accumulate (same relaxed staleness the SEASGD algorithm
// already absorbs).
//
// Lock ordering: for each stripe the two locks are taken in segment-key
// order, so crossed accumulates (A: X+=Y, B: Y+=X) cannot deadlock.
//
//shm:hotpath
func (s *Store) Accumulate(dst, src Handle) error {
	dseg, err := s.lookupHandle(dst)
	if err != nil {
		return err
	}
	sseg, err := s.lookupHandle(src)
	if err != nil {
		return err
	}
	if len(dseg.data) != len(sseg.data) {
		return fmt.Errorf("accumulate %q (%d B) += %q (%d B): %w",
			dseg.name, len(dseg.data), sseg.name, len(sseg.data), ErrSizeMismatch)
	}
	if len(dseg.data)%4 != 0 {
		return fmt.Errorf("accumulate %q: %w", dseg.name, ErrNotFloatAligned)
	}
	ins := s.inst.Load()
	timed := ins != nil
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	var waitNs int64

	// Snapshot fence on the destination only — the op mutates dst and
	// merely reads src, so a cut of src is unaffected by it. Single gate,
	// no ordering concern.
	dseg.gate.RLock()
	defer dseg.gate.RUnlock()
	for ci := range dseg.locks {
		lo, hi := dseg.chunkRange(ci)
		if dseg == sseg {
			// Self-accumulate: one lock, double in place.
			waitNs += dseg.lockStripe(ci, timed)
			if err := accumulateChunk(dseg.data[lo:hi], dseg.data[lo:hi]); err != nil {
				dseg.unlockStripe(ci)
				return err
			}
			dseg.unlockStripe(ci)
			continue
		}
		if dseg.key < sseg.key {
			waitNs += dseg.lockStripe(ci, timed)
			sseg.rlockStripe(ci)
		} else {
			sseg.rlockStripe(ci)
			waitNs += dseg.lockStripe(ci, timed)
		}
		err := accumulateChunk(dseg.data[lo:hi], sseg.data[lo:hi])
		sseg.runlockStripe(ci)
		dseg.unlockStripe(ci)
		if err != nil {
			return err
		}
	}
	s.versions.bump(dseg)
	s.stats.accumulates.Add(1)
	s.stats.bytesWrite.Add(int64(len(dseg.data)))
	if timed {
		ins.accLatency.ObserveSeconds(time.Since(t0).Nanoseconds())
		ins.stripeWait.ObserveSeconds(waitNs)
	}
	return nil
}

// accumulateChunk adds src's float32 contents into dst in place. On
// little-endian hosts both sides are zero-copy aliases of the segment
// bytes; otherwise it decodes through a pooled scratch. dst and src may
// alias (the self-accumulate case).
func accumulateChunk(dst, src []byte) error {
	dv, dok := tensor.Float32View(dst)
	sv, sok := tensor.Float32View(src)
	if dok && sok {
		tensor.AxpySlice(1, sv, dv)
		return nil
	}
	// Fallback: decode both sides into one pooled scratch, add, re-encode.
	n := len(dst) / 4
	p := accScratchPool.Get().(*[]float32)
	if cap(*p) < 2*n {
		*p = make([]float32, 2*n)
	}
	scratch := (*p)[:2*n]
	defer accScratchPool.Put(p)
	dvals, svals := scratch[:n], scratch[n:]
	if err := tensor.DecodeFloat32(dst, dvals); err != nil {
		return fmt.Errorf("accumulate decode: %w", err)
	}
	if err := tensor.DecodeFloat32(src, svals); err != nil {
		return fmt.Errorf("accumulate decode: %w", err)
	}
	tensor.AxpySlice(1, svals, dvals)
	if _, err := tensor.EncodeFloat32(dvals, dst); err != nil {
		return fmt.Errorf("accumulate encode: %w", err)
	}
	return nil
}

// copyAccumulateChunk applies the fused WRITE+ACCUMULATE body to one
// mapped stripe: data lands in src (the WRITE half) and folds into dst
// (the ACCUMULATE half) in a single sweep, without the separate copy pass
// re-reading src. On the SIMD backend the src stores are non-temporal —
// the whole point is to avoid the read-for-ownership stream a cached
// store would add. That is the right trade only where the fold is the
// entire operation (ShmClient.WriteAccumulate, whose caller is blocked on
// it); the server's wire fold keeps copy + add, which overlaps the next
// chunk's transfer and leaves the stripes cache-resident for the serves
// that follow. Falls back to copy + accumulateChunk when any buffer is
// not float32-viewable (misaligned or big-endian). dst and src must not
// alias each other or data — callers route the self-target case through
// the copy + in-place-double path instead.
//
//shm:hotpath
func copyAccumulateChunk(dst, src, data []byte) error {
	dv, dok := tensor.Float32View(dst)
	sv, sok := tensor.Float32View(src)
	xv, xok := tensor.Float32View(data)
	if dok && sok && xok {
		tensor.FusedCopyAdd(xv, sv, dv)
		return nil
	}
	copy(src, data)
	return accumulateChunk(dst, src)
}

// Stats returns a snapshot of the traffic counters. Counters are updated
// with independent atomics, so the snapshot is per-counter consistent (a
// torn multi-counter view is possible mid-traffic, exact once quiescent).
func (s *Store) Stats() Stats {
	return Stats{
		Creates:       s.stats.creates.Load(),
		Attaches:      s.stats.attaches.Load(),
		Reads:         s.stats.reads.Load(),
		Writes:        s.stats.writes.Load(),
		Accumulates:   s.stats.accumulates.Load(),
		BytesRead:     s.stats.bytesRead.Load(),
		BytesWrite:    s.stats.bytesWrite.Load(),
		NotifyWakeups: s.stats.notifyWakeups.Load(),
		SeqDuplicates: s.stats.seqDups.Load(),
	}
}

// ResetStats zeroes the traffic counters.
func (s *Store) ResetStats() {
	s.stats.creates.Store(0)
	s.stats.attaches.Store(0)
	s.stats.reads.Store(0)
	s.stats.writes.Store(0)
	s.stats.accumulates.Store(0)
	s.stats.bytesRead.Store(0)
	s.stats.bytesWrite.Store(0)
	s.stats.notifyWakeups.Store(0)
	s.stats.seqDups.Store(0)
}

// SegmentCount returns the number of live segments (the /healthz liveness
// signal and the smb_segments gauge).
func (s *Store) SegmentCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segments)
}
