package smb

import (
	"testing"
	"time"

	"shmcaffe/internal/tensor"
)

func TestVersionBumpsOnWriteAndAccumulate(t *testing.T) {
	st := NewStore()
	kw, _ := st.Create("wg", 8)
	kd, _ := st.Create("dw", 8)
	hw, _ := st.Attach(kw)
	hd, _ := st.Attach(kd)

	v0, err := st.Version(hw)
	if err != nil {
		t.Fatal(err)
	}
	if v0 != 0 {
		t.Fatalf("fresh segment version %d", v0)
	}
	if err := st.Write(hw, 0, tensor.Float32Bytes([]float32{1, 2})); err != nil {
		t.Fatal(err)
	}
	v1, _ := st.Version(hw)
	if v1 != 1 {
		t.Fatalf("version after write %d", v1)
	}
	if err := st.Write(hd, 0, tensor.Float32Bytes([]float32{1, 1})); err != nil {
		t.Fatal(err)
	}
	if err := st.Accumulate(hw, hd); err != nil {
		t.Fatal(err)
	}
	v2, _ := st.Version(hw)
	if v2 != 2 {
		t.Fatalf("version after accumulate %d", v2)
	}
	// Reads do not bump versions.
	buf := make([]byte, 8)
	st.Read(hw, 0, buf)
	v3, _ := st.Version(hw)
	if v3 != v2 {
		t.Fatal("read bumped version")
	}
	// The source of an accumulate is untouched.
	vd, _ := st.Version(hd)
	if vd != 1 {
		t.Fatalf("accumulate source version %d", vd)
	}
}

func TestWaitUpdateBlocksUntilWrite(t *testing.T) {
	st := NewStore()
	key, _ := st.Create("seg", 8)
	h, _ := st.Attach(key)

	got := make(chan uint64, 1)
	go func() {
		v, err := st.WaitUpdate(h, 0)
		if err != nil {
			t.Error(err)
		}
		got <- v
	}()
	select {
	case v := <-got:
		t.Fatalf("WaitUpdate returned %d before any write", v)
	case <-time.After(20 * time.Millisecond):
	}
	if err := st.Write(h, 0, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 1 {
			t.Fatalf("woke with version %d", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitUpdate never woke")
	}
	// Waiting on an old version returns immediately.
	v, err := st.WaitUpdate(h, 0)
	if err != nil || v != 1 {
		t.Fatalf("immediate WaitUpdate = %d, %v", v, err)
	}
}

func TestNotifyOverTCP(t *testing.T) {
	srv := startServer(t)
	c := dialT(t, srv)
	key, err := c.Create("seg", 8)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Version(h)
	if err != nil || v != 0 {
		t.Fatalf("Version = %d, %v", v, err)
	}
	// A dedicated watcher connection blocks in WaitUpdate while the main
	// connection writes.
	watcher := dialT(t, srv)
	hw, err := watcher.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	woke := make(chan uint64, 1)
	go func() {
		v, err := watcher.WaitUpdate(hw, 0)
		if err != nil {
			t.Error(err)
		}
		woke <- v
	}()
	time.Sleep(10 * time.Millisecond)
	if err := c.Write(h, 0, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-woke:
		if v != 1 {
			t.Fatalf("TCP watcher woke with %d", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TCP watcher never woke")
	}
}

func TestVersionUnknownHandle(t *testing.T) {
	st := NewStore()
	if _, err := st.Version(42); err == nil {
		t.Fatal("expected error for unknown handle")
	}
	if _, err := st.WaitUpdate(42, 0); err == nil {
		t.Fatal("expected error for unknown handle")
	}
}
