package smb

import (
	"fmt"
	"sync"
	"time"
)

// ShardedClient stripes every segment across several SMB servers — the
// paper's stated future work ("we have a plan to improve the performance of
// the SMB framework by using multiple SMB servers", Sec. V). A segment of
// size S becomes k per-server shards of ≈S/k bytes; Read/Write/Accumulate
// fan out to all servers concurrently, multiplying the aggregate bandwidth
// and spreading the exclusive accumulate load.
//
// Key exchange still works across workers: the synthetic SHM key returned
// by Create is the shard-0 key, and a reverse-directory segment on server 0
// (named "~rev/<key>") records the segment name so any client can resolve
// an attached key back to the per-server shard names using only the base
// SMB verbs.
type ShardedClient struct {
	clients []Client

	mu         sync.Mutex
	nextHandle Handle                    // guarded by mu
	handles    map[Handle]*shardedHandle // guarded by mu
	nextSnap   SnapID                    // guarded by mu
	snaps      map[SnapID]*shardedSnap   // guarded by mu
	inst       *clientInstruments        // optional fan-out timing, guarded by mu
}

type shardedHandle struct {
	name  string
	subs  []Handle // one per server
	sizes []int    // shard byte sizes
	offs  []int    // shard start offsets in the logical segment
	total int
}

var _ Client = (*ShardedClient)(nil)

// NewShardedClient returns a client striping across the given per-server
// clients. At least one server is required.
func NewShardedClient(clients ...Client) (*ShardedClient, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("smb: sharded client needs at least one server")
	}
	for i, c := range clients {
		if c == nil {
			return nil, fmt.Errorf("smb: sharded client server %d is nil", i)
		}
	}
	cp := make([]Client, len(clients))
	copy(cp, clients)
	return &ShardedClient{
		clients: cp,
		handles: make(map[Handle]*shardedHandle),
	}, nil
}

// Servers returns the number of backing servers.
func (s *ShardedClient) Servers() int { return len(s.clients) }

// shardName returns the per-server segment name of shard i.
func shardName(name string, i int) string { return fmt.Sprintf("%s#%d", name, i) }

// revName returns the reverse-directory segment name for a shard-0 key.
func revName(key SHMKey) string { return fmt.Sprintf("~rev/%d", uint64(key)) }

// shardSizes splits size into len(clients) 4-byte-aligned chunks covering
// it exactly (the last shard absorbs the remainder).
func (s *ShardedClient) shardSizes(size int) []int {
	k := len(s.clients)
	base := size / k
	base -= base % 4 // keep float32 alignment for Accumulate
	sizes := make([]int, k)
	used := 0
	for i := 0; i < k-1; i++ {
		sizes[i] = base
		used += base
	}
	sizes[k-1] = size - used
	return sizes
}

// Create implements Client: one shard per server plus the reverse-directory
// entry on server 0.
func (s *ShardedClient) Create(name string, size int) (SHMKey, error) {
	if size <= 0 {
		return 0, fmt.Errorf("smb: sharded create %q size %d", name, size)
	}
	sizes := s.shardSizes(size)
	var key0 SHMKey
	for i, c := range s.clients {
		if sizes[i] == 0 {
			// Tiny segment: park a minimal shard so attach stays uniform.
			sizes[i] = 4
		}
		key, err := c.Create(shardName(name, i), sizes[i])
		if err != nil {
			return 0, fmt.Errorf("shard %d: %w", i, err)
		}
		if i == 0 {
			key0 = key
		}
	}
	// Record key0 → name so other clients can Attach by key.
	rev, err := s.clients[0].Create(revName(key0), len(name))
	if err != nil {
		return 0, fmt.Errorf("reverse dir: %w", err)
	}
	h, err := s.clients[0].Attach(rev)
	if err != nil {
		return 0, err
	}
	if err := s.clients[0].Write(h, 0, []byte(name)); err != nil {
		return 0, err
	}
	if err := s.clients[0].Detach(h); err != nil {
		return 0, err
	}
	return key0, nil
}

// Lookup implements Client: resolves the logical name to its shard-0 key.
func (s *ShardedClient) Lookup(name string) (SHMKey, error) {
	return s.clients[0].Lookup(shardName(name, 0))
}

// resolveName maps a shard-0 key back to the logical segment name.
func (s *ShardedClient) resolveName(key SHMKey) (string, error) {
	revKey, err := s.clients[0].Lookup(revName(key))
	if err != nil {
		return "", fmt.Errorf("resolve key %d: %w", key, err)
	}
	h, err := s.clients[0].Attach(revKey)
	if err != nil {
		return "", err
	}
	defer s.clients[0].Detach(h)
	// The directory segment holds exactly the name bytes.
	// Read the whole segment.
	size, err := segmentSize(s.clients[0], h)
	if err != nil {
		return "", err
	}
	buf, bp := getScratch(size)
	defer putScratch(bp)
	if err := s.clients[0].Read(h, 0, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// segmentSize probes a segment's size. The base Client interface has no
// size query, so probe by exponential growth + binary search on
// out-of-range reads (cheap: directory segments are tiny).
func segmentSize(c Client, h Handle) (int, error) {
	if lc, ok := c.(*LocalClient); ok {
		return lc.store.SegmentSize(h)
	}
	// Grow until a read fails. One pooled buffer serves every probe: it is
	// grown to the next probe size by getScratch's grow-only contract.
	probe, bp := getScratch(1)
	defer func() { putScratch(bp) }()
	hi := 1
	for {
		if err := c.Read(h, 0, probe[:hi]); err != nil {
			break
		}
		if hi > 1<<20 {
			return 0, fmt.Errorf("smb: directory segment unreasonably large")
		}
		hi *= 2
		if cap(probe) < hi {
			putScratch(bp)
			probe, bp = getScratch(hi)
		}
	}
	lo := hi / 2
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if err := c.Read(h, 0, probe[:mid]); err != nil {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo, nil
}

// Attach implements Client: resolves the key, attaches every shard.
func (s *ShardedClient) Attach(key SHMKey) (Handle, error) {
	name, err := s.resolveName(key)
	if err != nil {
		return 0, err
	}
	return s.attachByName(name)
}

func (s *ShardedClient) attachByName(name string) (Handle, error) {
	sh := &shardedHandle{name: name}
	off := 0
	for i, c := range s.clients {
		key, err := c.Lookup(shardName(name, i))
		if err != nil {
			return 0, fmt.Errorf("shard %d: %w", i, err)
		}
		sub, err := c.Attach(key)
		if err != nil {
			return 0, fmt.Errorf("shard %d: %w", i, err)
		}
		size, err := segmentSize(c, sub)
		if err != nil {
			return 0, err
		}
		sh.subs = append(sh.subs, sub)
		sh.sizes = append(sh.sizes, size)
		sh.offs = append(sh.offs, off)
		off += size
	}
	sh.total = off
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextHandle++
	h := s.nextHandle
	s.handles[h] = sh
	return h, nil
}

// instruments snapshots the optional timing instruments under mu.
func (s *ShardedClient) instruments() *clientInstruments {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inst
}

func (s *ShardedClient) handle(h Handle) (*shardedHandle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, ok := s.handles[h]
	if !ok {
		return nil, fmt.Errorf("sharded handle %d: %w", h, ErrUnknownHandle)
	}
	return sh, nil
}

// Detach implements Client.
func (s *ShardedClient) Detach(h Handle) error {
	sh, err := s.handle(h)
	if err != nil {
		return err
	}
	var firstErr error
	for i, c := range s.clients {
		if err := c.Detach(sh.subs[i]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.mu.Lock()
	delete(s.handles, h)
	s.mu.Unlock()
	return firstErr
}

// Free implements Client: destroys every shard and the directory entry.
func (s *ShardedClient) Free(key SHMKey) error {
	name, err := s.resolveName(key)
	if err != nil {
		return err
	}
	var firstErr error
	for i, c := range s.clients {
		k, err := c.Lookup(shardName(name, i))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := c.Free(k); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if revKey, err := s.clients[0].Lookup(revName(key)); err == nil {
		if err := s.clients[0].Free(revKey); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// forRange visits every shard overlapped by [off, off+n), calling fn with
// the shard index, the offset inside the shard, and the slice of buf
// covering that shard's portion.
func (sh *shardedHandle) forRange(off int, buf []byte, fn func(i, shardOff int, part []byte) error) error {
	if off < 0 || off+len(buf) > sh.total {
		return fmt.Errorf("sharded range [%d,%d) of %d: %w", off, off+len(buf), sh.total, ErrOutOfRange)
	}
	for i := range sh.subs {
		lo, hi := sh.offs[i], sh.offs[i]+sh.sizes[i]
		if hi <= off || lo >= off+len(buf) {
			continue
		}
		from := off
		if lo > from {
			from = lo
		}
		to := off + len(buf)
		if hi < to {
			to = hi
		}
		if err := fn(i, from-lo, buf[from-off:to-off]); err != nil {
			return err
		}
	}
	return nil
}

// Read implements Client: fan-out reads, concurrently across servers.
func (s *ShardedClient) Read(h Handle, off int, dst []byte) error {
	sh, err := s.handle(h)
	if err != nil {
		return err
	}
	ins := s.instruments()
	var t0 time.Time
	if ins != nil {
		t0 = time.Now()
	}
	err = s.parallelRange(sh, off, dst, func(i, shardOff int, part []byte) error {
		return s.clients[i].Read(sh.subs[i], shardOff, part)
	})
	if err == nil && ins != nil {
		ins.read.ObserveSeconds(time.Since(t0).Nanoseconds())
	}
	return err
}

// Write implements Client: fan-out writes, concurrently across servers.
func (s *ShardedClient) Write(h Handle, off int, src []byte) error {
	sh, err := s.handle(h)
	if err != nil {
		return err
	}
	ins := s.instruments()
	var t0 time.Time
	if ins != nil {
		t0 = time.Now()
	}
	err = s.parallelRange(sh, off, src, func(i, shardOff int, part []byte) error {
		return s.clients[i].Write(sh.subs[i], shardOff, part)
	})
	if err == nil && ins != nil {
		ins.write.ObserveSeconds(time.Since(t0).Nanoseconds())
	}
	return err
}

// parallelRange runs the per-shard operation concurrently and joins errors.
func (s *ShardedClient) parallelRange(sh *shardedHandle, off int, buf []byte,
	op func(i, shardOff int, part []byte) error) error {

	type job struct {
		i        int
		shardOff int
		part     []byte
	}
	var jobs []job
	if err := sh.forRange(off, buf, func(i, shardOff int, part []byte) error {
		jobs = append(jobs, job{i, shardOff, part})
		return nil
	}); err != nil {
		return err
	}
	if len(jobs) == 1 {
		return op(jobs[0].i, jobs[0].shardOff, jobs[0].part)
	}
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for j, jb := range jobs {
		j, jb := j, jb
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[j] = op(jb.i, jb.shardOff, jb.part)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Accumulate implements Client: per-server shard accumulates, concurrent.
// Both handles must stripe identically (same total size).
func (s *ShardedClient) Accumulate(dst, src Handle) error {
	dsh, err := s.handle(dst)
	if err != nil {
		return err
	}
	ssh, err := s.handle(src)
	if err != nil {
		return err
	}
	if dsh.total != ssh.total {
		return fmt.Errorf("sharded accumulate %d vs %d bytes: %w", dsh.total, ssh.total, ErrSizeMismatch)
	}
	ins := s.instruments()
	var t0 time.Time
	if ins != nil {
		t0 = time.Now()
	}
	errs := make([]error, len(s.clients))
	var wg sync.WaitGroup
	for i, c := range s.clients {
		i, c := i, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = c.Accumulate(dsh.subs[i], ssh.subs[i])
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if ins != nil {
		ins.acc.ObserveSeconds(time.Since(t0).Nanoseconds())
	}
	return nil
}

// Close implements Client: closes every backing client.
func (s *ShardedClient) Close() error {
	var firstErr error
	for _, c := range s.clients {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
