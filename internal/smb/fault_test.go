package smb

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"shmcaffe/internal/faults"
	"shmcaffe/internal/tensor"
)

// Fault-injection tests for the supervised SMB data path: reconnect across
// server restarts, exactly-once pushes under connection drops, deadline and
// cancellation behaviour of WaitUpdate, chunk-stream poisoning, and handler
// exit accounting.

// fastRetry is a SupervisedConfig tuned for tests: millisecond backoff and
// a generous attempt budget so seeded fault schedules never exhaust it.
func fastRetry(addr string) SupervisedConfig {
	return SupervisedConfig{
		Addr:        addr,
		OpTimeout:   2 * time.Second,
		MaxAttempts: 25,
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		Seed:        1,
	}
}

// startRestartable runs an SMB server behind a crash/restart harness. The
// Store persists across restarts (the factory closes over it), modelling a
// memory-server process that dies and comes back over durable segments.
func startRestartable(t *testing.T, store *Store) *faults.RestartableServer {
	t.Helper()
	rs, err := faults.NewRestartableServer("127.0.0.1:0", func(addr string) (faults.Frontend, error) {
		srv, err := NewServer(store, addr)
		if err != nil {
			return nil, err
		}
		return srv, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	return rs
}

func TestSupervisedReconnectAcrossRestart(t *testing.T) {
	store := NewStore()
	rs := startRestartable(t, store)

	c := NewSupervisedClient(fastRetry(rs.Addr()))
	defer c.Close()

	key, err := c.Create("job/wg", 32)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("hello, durable segment store!..!")
	if err := c.Write(h, 0, want); err != nil {
		t.Fatal(err)
	}

	// Kill the serving plane. The client's next op must reconnect, replay
	// the attach for h, and succeed against the surviving store.
	if err := rs.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := rs.Restart(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := c.Read(h, 0, got); err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("read after restart = %q, want %q", got, want)
	}
	if st := c.Stats(); st.Reconnects < 1 {
		t.Fatalf("reconnects = %d, want >= 1 after a crash", st.Reconnects)
	}
}

func TestSupervisedWaitUpdateResumesAcrossRestart(t *testing.T) {
	store := NewStore()
	rs := startRestartable(t, store)

	c := NewSupervisedClient(fastRetry(rs.Addr()))
	defer c.Close()
	key, err := c.Create("job/wg", 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		v   uint64
		err error
	}
	res := make(chan result, 1)
	go func() {
		v, err := c.WaitUpdate(h, 0)
		res <- result{v, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the wait park server-side

	// The server dies under the parked wait and comes back; a writer then
	// bumps the version. The supervised wait must resume on the fresh
	// connection and observe the update instead of hanging or failing.
	if err := rs.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := rs.Restart(); err != nil {
		t.Fatal(err)
	}
	w, err := Dial(rs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	wh, err := w.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(wh, 0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}

	select {
	case r := <-res:
		if r.err != nil {
			t.Fatalf("resumed WaitUpdate: %v", r.err)
		}
		if r.v < 1 {
			t.Fatalf("resumed WaitUpdate version = %d, want >= 1", r.v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitUpdate still parked 5s after restart + write")
	}
}

// TestSupervisedExactlyOnceUnderDrops is the acceptance invariant at the
// wire level: with seeded random connection drops injected under the
// client, every logical push still folds into the destination exactly once
// — the store's accumulate counter equals the client's push counter, and
// the accumulated values match a fault-free run.
func TestSupervisedExactlyOnceUnderDrops(t *testing.T) {
	srv := startServer(t)
	inj := faults.New(faults.Config{DropRate: 0.05, Seed: 7})

	cfg := fastRetry(srv.Addr())
	cfg.Dial = func(addr string) (*StreamClient, error) {
		nc, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			return nil, fmt.Errorf("dial %s: %w: %w", addr, ErrTransport, err)
		}
		return NewStreamClient(inj.WrapConn(nc)), nil
	}
	c := NewSupervisedClient(cfg)
	defer c.Close()

	const elems = 8
	wgKey, err := c.Create("job/wg", elems*4)
	if err != nil {
		t.Fatal(err)
	}
	dwKey, err := c.Create("job/dw", elems*4)
	if err != nil {
		t.Fatal(err)
	}
	wg, err := c.Attach(wgKey)
	if err != nil {
		t.Fatal(err)
	}
	dw, err := c.Attach(dwKey)
	if err != nil {
		t.Fatal(err)
	}

	ones := make([]float32, elems)
	for i := range ones {
		ones[i] = 1
	}
	delta := tensor.Float32Bytes(ones)

	const pushes = 300
	for i := 0; i < pushes; i++ {
		if err := c.WriteAccumulate(wg, dw, delta); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}

	got := make([]float32, elems)
	buf := make([]byte, elems*4)
	if err := c.Read(wg, 0, buf); err != nil {
		t.Fatal(err)
	}
	if err := tensor.DecodeFloat32(buf, got); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != pushes {
			t.Fatalf("wg[%d] = %v, want %v (pushes double- or under-applied)", i, v, float32(pushes))
		}
	}

	st := c.Stats()
	acc := srv.Store().Stats().Accumulates
	if st.Pushes != pushes {
		t.Fatalf("client pushes = %d, want %d", st.Pushes, pushes)
	}
	if acc != pushes {
		t.Fatalf("server accumulates = %d, want exactly %d (client pushes)", acc, pushes)
	}
	if inj.Stats().Drops == 0 {
		t.Fatal("fault schedule injected no drops; the test exercised nothing")
	}
	if st.Retries == 0 {
		t.Fatal("drops occurred but the client never retried")
	}
}

// TestWaitUpdateDeadline: a configured wait timeout bounds WaitUpdate even
// when no update ever arrives (satellite: the seed's WaitUpdate blocked
// forever when the server went quiet).
func TestWaitUpdateDeadline(t *testing.T) {
	srv := startServer(t)
	c := dialT(t, srv)
	key, err := c.Create("wg", 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}

	c.SetTimeouts(time.Second, 100*time.Millisecond)
	start := time.Now()
	_, err = c.WaitUpdate(h, 0)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("WaitUpdate with no update returned nil, want deadline error")
	}
	if !errors.Is(err, ErrTransport) || !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("WaitUpdate error = %v, want ErrTransport and os.ErrDeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("WaitUpdate took %v, want ~100ms wait budget", elapsed)
	}
	// A fired deadline abandons the round trip mid-flight; the connection
	// must be poisoned, not reused.
	if _, err := c.Version(h); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("op after fired deadline = %v, want poisoned-connection error", err)
	}
}

// TestWaitUpdateServerDiesMidWait is the regression for the satellite bug:
// a StreamClient parked in WaitUpdate hung forever when the server died
// under it. Now the parked wait must fail promptly — either with the
// server's ErrWaitCanceled farewell or with a transport error, depending on
// how far the shutdown got.
func TestWaitUpdateServerDiesMidWait(t *testing.T) {
	store := NewStore()
	srv, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve() }()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	key, err := c.Create("wg", 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, 1)
	go func() {
		_, err := c.WaitUpdate(h, 0) // no timeouts configured: blocks until the server speaks
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the wait park server-side

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	<-done

	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("WaitUpdate returned nil after server shutdown")
		}
		if !errors.Is(err, ErrWaitCanceled) && !errors.Is(err, ErrTransport) {
			t.Fatalf("WaitUpdate error = %v, want ErrWaitCanceled or ErrTransport", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitUpdate still parked 5s after Server.Close (seed deadlock)")
	}
}

// limitConn passes through to inner until a byte budget is spent, then
// fails every later write — a deterministic mid-stream connection death.
type limitConn struct {
	net.Conn
	mu      sync.Mutex
	budget  int
	tripped bool
}

var errBudget = errors.New("limitconn: write budget exhausted")

func (l *limitConn) Write(b []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.tripped || l.budget < len(b) {
		l.tripped = true
		return 0, errBudget
	}
	l.budget -= len(b)
	return l.Conn.Write(b)
}

// TestChunkStreamMidSequencePoison: a connection dying between chunks of a
// WRITE+ACCUMULATE sequence poisons the client (the stream is
// desynchronized; the seed kept using it and the next frame landed inside
// the half-finished sequence) and the server reaps the abandoned sequence.
func TestChunkStreamMidSequencePoison(t *testing.T) {
	srv := startServer(t)

	// Control-plane client creates the segments.
	ctl := dialT(t, srv)
	const elems = 3 * writeAccChunkBytes / 4 // three wire chunks
	wgKey, err := ctl.Create("wg", elems*4)
	if err != nil {
		t.Fatal(err)
	}
	dwKey, err := ctl.Create("dw", elems*4)
	if err != nil {
		t.Fatal(err)
	}

	// Data-plane client whose connection dies after ~1.5 chunks.
	nc, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c := NewStreamClient(&limitConn{Conn: nc, budget: writeAccChunkBytes + writeAccChunkBytes/2})
	defer c.Close()
	wg, err := c.Attach(wgKey)
	if err != nil {
		t.Fatal(err)
	}
	dw, err := c.Attach(dwKey)
	if err != nil {
		t.Fatal(err)
	}

	data := make([]byte, elems*4)
	err = c.WriteAccumulate(wg, dw, data)
	if err == nil {
		t.Fatal("WriteAccumulate over a dying connection returned nil")
	}
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("mid-sequence failure = %v, want ErrTransport", err)
	}
	// The client is poisoned: no later verb may reuse the desynchronized
	// stream.
	if _, err := c.Version(wg); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("op after mid-sequence failure = %v, want poisoned-connection error", err)
	}

	// The server saw a prefix of the sequence and then the connection
	// closed: it must reap the partial sequence (and count it).
	deadline := time.Now().Add(2 * time.Second)
	for srv.ReapedSequences() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server reaped %d sequences, want 1", srv.ReapedSequences())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerHandlerErrorSurfaced: a connection dying mid-frame is counted
// and logged instead of being swallowed (the seed dropped every handler
// exit silently).
func TestServerHandlerErrorSurfaced(t *testing.T) {
	srv := startServer(t)
	var mu sync.Mutex
	var lines []string
	srv.SetLogf(func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	})

	nc, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write([]byte{0x10, 0x00}); err != nil { // half a frame header
		t.Fatal(err)
	}
	nc.Close()

	deadline := time.Now().Add(2 * time.Second)
	for srv.ConnErrors() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("ConnErrors = %d, want 1 after a mid-frame close", srv.ConnErrors())
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) == 0 || !strings.Contains(lines[0], "smb") {
		t.Fatalf("log lines = %q, want one smb handler-exit line", lines)
	}
}

// TestCleanCloseNotCounted: an orderly client disconnect between frames is
// not a connection error.
func TestCleanCloseNotCounted(t *testing.T) {
	srv := startServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("wg", 64); err != nil {
		t.Fatal(err)
	}
	c.Close()
	time.Sleep(50 * time.Millisecond) // let the handler observe EOF
	if n := srv.ConnErrors(); n != 0 {
		t.Fatalf("ConnErrors = %d after a clean close, want 0", n)
	}
}

// TestServerCloseLeavesNoHandlers: after Close returns — including with a
// waiter parked in WaitUpdate — every handler goroutine has exited (the
// seed's Close deadlocked behind parked waiters; an earlier variant leaked
// them).
func TestServerCloseLeavesNoHandlers(t *testing.T) {
	baseline := runtime.NumGoroutine()

	store := NewStore()
	srv, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan struct{})
	go func() { defer close(served); srv.Serve() }()

	clients := make([]*StreamClient, 3)
	for i := range clients {
		c, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	key, err := clients[0].Create("wg", 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := clients[1].Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		clients[1].WaitUpdate(h, 0) // parks until shutdown
	}()
	time.Sleep(50 * time.Millisecond)

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Server.Close deadlocked behind a parked WaitUpdate")
	}
	<-served
	<-parked
	for _, c := range clients {
		c.Close()
	}

	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after Close: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSeqAccumulateDedup drives the stamped opcode directly: a replayed
// (client, seq) pair must acknowledge as a duplicate without re-applying.
func TestSeqAccumulateDedup(t *testing.T) {
	srv := startServer(t)
	c := dialT(t, srv)

	wgKey, err := c.Create("wg", 16)
	if err != nil {
		t.Fatal(err)
	}
	dwKey, err := c.Create("dw", 16)
	if err != nil {
		t.Fatal(err)
	}
	wg, _ := c.Attach(wgKey)
	dw, _ := c.Attach(dwKey)
	if err := c.Write(dw, 0, tensor.Float32Bytes([]float32{1, 2, 3, 4})); err != nil {
		t.Fatal(err)
	}

	applied, err := c.SeqAccumulate(wg, dw, 42, 1)
	if err != nil || !applied {
		t.Fatalf("first SeqAccumulate = (%v, %v), want (true, nil)", applied, err)
	}
	applied, err = c.SeqAccumulate(wg, dw, 42, 1) // the retry replay
	if err != nil || applied {
		t.Fatalf("replayed SeqAccumulate = (%v, %v), want (false, nil)", applied, err)
	}
	if applied, err := c.SeqAccumulate(wg, dw, 43, 1); err != nil || !applied {
		t.Fatalf("different client, same seq = (%v, %v), want (true, nil)", applied, err)
	}

	st := srv.Store().Stats()
	if st.Accumulates != 2 {
		t.Fatalf("accumulates = %d, want 2 (one per distinct (client,seq))", st.Accumulates)
	}
	if st.SeqDuplicates != 1 {
		t.Fatalf("seq duplicates = %d, want 1", st.SeqDuplicates)
	}
	got := make([]float32, 4)
	buf := make([]byte, 16)
	if err := c.Read(wg, 0, buf); err != nil {
		t.Fatal(err)
	}
	if err := tensor.DecodeFloat32(buf, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[3] != 8 {
		t.Fatalf("wg = %v, want exactly twice the delta", got)
	}
}

// TestSupervisedExactlyOnceProperty sweeps the exactly-once invariant over
// several fault schedules: per-seed random connection drops layered under
// the client plus a whole-server crash/restart mid-run. Whatever the
// schedule, the fold count must equal the push count and the accumulated
// values must match a fault-free run.
func TestSupervisedExactlyOnceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed fault sweep")
	}
	for _, seed := range []uint64{3, 17, 101, 4242} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			store := NewStore()
			rs := startRestartable(t, store)
			inj := faults.New(faults.Config{DropRate: 0.08, Seed: seed})

			cfg := fastRetry(rs.Addr())
			cfg.Seed = seed
			cfg.Dial = func(addr string) (*StreamClient, error) {
				nc, err := net.DialTimeout("tcp", addr, time.Second)
				if err != nil {
					return nil, fmt.Errorf("dial %s: %w: %w", addr, ErrTransport, err)
				}
				return NewStreamClient(inj.WrapConn(nc)), nil
			}
			c := NewSupervisedClient(cfg)
			defer c.Close()

			const elems = 4
			wgKey, err := c.Create("job/wg", elems*4)
			if err != nil {
				t.Fatal(err)
			}
			dwKey, err := c.Create("job/dw", elems*4)
			if err != nil {
				t.Fatal(err)
			}
			wg, _ := c.Attach(wgKey)
			dw, _ := c.Attach(dwKey)

			delta := tensor.Float32Bytes([]float32{1, 1, 1, 1})
			const pushes = 80
			for i := 0; i < pushes; i++ {
				if i == pushes/2 {
					if err := rs.CrashFor(20 * time.Millisecond); err != nil {
						t.Fatal(err)
					}
				}
				if err := c.WriteAccumulate(wg, dw, delta); err != nil {
					t.Fatalf("push %d: %v", i, err)
				}
			}

			got := make([]float32, elems)
			buf := make([]byte, elems*4)
			if err := c.Read(wg, 0, buf); err != nil {
				t.Fatal(err)
			}
			if err := tensor.DecodeFloat32(buf, got); err != nil {
				t.Fatal(err)
			}
			for i, v := range got {
				if v != pushes {
					t.Fatalf("wg[%d] = %v, want %v", i, v, float32(pushes))
				}
			}
			if acc, p := store.Stats().Accumulates, c.Stats().Pushes; acc != p || p != pushes {
				t.Fatalf("accumulates = %d, pushes = %d, want both %d", acc, p, pushes)
			}
		})
	}
}

var _ io.ReadWriteCloser = (*limitConn)(nil)
