package smb

import (
	"errors"
	"fmt"
)

// Wire verbs of the snapshot tier (DESIGN.md §17). Three opcodes carry the
// whole consistency contract across the wire:
//
//   - opSnapshot    takes a consistent cut of one segment and pins it
//     server-side; the reply is the (id, version, size) triple.
//   - opSnapRead    reads a byte range out of a pinned snapshot. This is
//     the serving hot path: against a lazy (heap) snapshot the server's
//     read is lock-free, so a storm of accumulates cannot convoy readers.
//   - opSnapRelease unpins a snapshot and recycles its COW pages.
//
// Snapshots are connection-independent server state keyed by SnapID — any
// connection to the same server may read or release an id another produced
// (cmd/shmserve leans on this: the refresh loop and the release of the
// previous snapshot ride one connection, but crash recovery may not).
const (
	opSnapshot    opcode = 20
	opSnapRead    opcode = 21
	opSnapRelease opcode = 22
)

// dispatchSnap serves the snapshot verbs; chained from dispatchShm's
// default arm so unknown opcodes still error in one place.
func (s *Server) dispatchSnap(op opcode, payload []byte, cs *connState) ([]byte, error) {
	fr := frameReader{buf: payload}
	switch op {
	//lint:ignore wireproto control-plane verb: one frame per published snapshot, not a data-path latency
	case opSnapshot:
		h := fr.u64()
		if fr.err != nil {
			return nil, fr.err
		}
		info, err := s.store.Snapshot(Handle(h))
		if err != nil {
			return nil, err
		}
		return cs.fw.u64(uint64(info.ID)).u64(info.Version).u64(uint64(info.Size)).buf, nil
	case opSnapRead:
		id := fr.u64()
		off := fr.u64()
		n := fr.u64()
		if fr.err != nil {
			return nil, fr.err
		}
		if n > maxFrame {
			return nil, ErrFrameTooLarge
		}
		if uint64(cap(cs.out)) < n {
			cs.out = make([]byte, n)
		}
		dst := cs.out[:n]
		if err := s.store.SnapRead(SnapID(id), int(off), dst); err != nil {
			return nil, err
		}
		return dst, nil
	//lint:ignore wireproto control-plane verb: one frame per retired snapshot, not a data-path latency
	case opSnapRelease:
		id := fr.u64()
		if fr.err != nil {
			return nil, fr.err
		}
		return nil, s.store.SnapRelease(SnapID(id))
	default:
		return nil, fmt.Errorf("smb: unknown opcode %d", op)
	}
}

// Snapshot implements Snapshotter over the wire.
func (c *StreamClient) Snapshot(h Handle) (SnapInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beginLocked().u64(uint64(h))
	resp, err := c.roundTripLocked(opSnapshot)
	if err != nil {
		return SnapInfo{}, err
	}
	fr := frameReader{buf: resp}
	info := SnapInfo{ID: SnapID(fr.u64()), Version: fr.u64(), Size: int(fr.u64())}
	return info, fr.err
}

// SnapRead implements Snapshotter. Like Read, the scatter-gather path lands
// the reply payload straight in dst with no staging copy — the snapshot
// serving path inherits the transport's zero-copy read.
//
//shm:hotpath
func (c *StreamClient) SnapRead(id SnapID, off int, dst []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beginLocked().u64(uint64(id)).u64(uint64(off)).u64(uint64(len(dst)))
	if c.sg && len(dst) >= sgMinPayload {
		return c.roundTripReadIntoLocked(opSnapRead, dst)
	}
	resp, err := c.roundTripLocked(opSnapRead)
	if err != nil {
		return err
	}
	if len(resp) != len(dst) {
		return fmt.Errorf("smb snap read returned %d bytes, want %d", len(resp), len(dst))
	}
	copy(dst, resp)
	return nil
}

// SnapRelease implements Snapshotter over the wire.
func (c *StreamClient) SnapRelease(id SnapID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beginLocked().u64(uint64(id))
	_, err := c.roundTripLocked(opSnapRelease)
	return err
}

var _ Snapshotter = (*StreamClient)(nil)

// Snapshot implements Snapshotter with supervision. A retry whose first
// attempt succeeded server-side but lost the reply leaks that snapshot
// until the store is torn down — bounded by the retry budget and visible
// in smb_snapshots_live, and preferable to not retrying at all (the verb
// is cheap and the caller is usually a serving loop that must make
// progress). SnapIDs do not survive a reconnect: the server that restarts
// has no snapshot table, so SnapRead after failover returns
// ErrUnknownSnapshot and the caller retakes the cut.
func (c *SupervisedClient) Snapshot(h Handle) (SnapInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var info SnapInfo
	err := c.withRetry("snapshot", func(sc *StreamClient) error {
		rh, err := c.resolveLocked(sc, h)
		if err != nil {
			return err
		}
		info, err = sc.Snapshot(rh)
		return err
	})
	return info, err
}

// SnapRead implements Snapshotter (idempotent; retried).
func (c *SupervisedClient) SnapRead(id SnapID, off int, dst []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.withRetry("snap-read", func(sc *StreamClient) error {
		return sc.SnapRead(id, off, dst)
	})
}

// SnapRelease implements Snapshotter. An unknown id is success: either a
// previous attempt's release landed before its reply was lost, or the
// server restarted and the snapshot died with it — in both cases the pin
// is gone, which is all the caller wants.
func (c *SupervisedClient) SnapRelease(id SnapID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.withRetry("snap-release", func(sc *StreamClient) error {
		return sc.SnapRelease(id)
	})
	if errors.Is(err, ErrUnknownSnapshot) {
		return nil
	}
	return err
}

var _ Snapshotter = (*SupervisedClient)(nil)

// shardedSnap is one sharded snapshot: the per-shard snapshot ids plus the
// geometry handle they were cut from.
type shardedSnap struct {
	sh      *shardedHandle
	subs    []SnapID
	version uint64
}

// Snapshot implements Snapshotter as a per-shard version-vector cut: every
// shard's snapshot is internally consistent (no torn accumulate within a
// shard), and the vector of shard versions is recorded at cut time. The
// cut is NOT globally atomic across servers — shard A may be at iteration
// N and shard B at N+1 if an accumulate lands between the fan-out calls —
// but under the DeepSpark-style async-update model that is the same class
// of staleness the trainers already tolerate, and it is a strict upgrade
// over the seed's ShardedClient.Read, which had no cut at all (each shard
// read could additionally be torn internally). Version is the sum of the
// shard versions, so it is monotonic and changes whenever any shard moved.
// Every backing client must implement Snapshotter.
func (s *ShardedClient) Snapshot(h Handle) (SnapInfo, error) {
	sh, err := s.handle(h)
	if err != nil {
		return SnapInfo{}, err
	}
	snap := &shardedSnap{sh: sh, subs: make([]SnapID, len(s.clients))}
	for i, c := range s.clients {
		sc, ok := c.(Snapshotter)
		if !ok {
			s.releaseShards(snap, i)
			return SnapInfo{}, fmt.Errorf("smb: sharded snapshot: server %d client %T does not implement Snapshotter", i, c)
		}
		info, err := sc.Snapshot(sh.subs[i])
		if err != nil {
			s.releaseShards(snap, i)
			return SnapInfo{}, fmt.Errorf("shard %d snapshot: %w", i, err)
		}
		snap.subs[i] = info.ID
		snap.version += info.Version
	}
	s.mu.Lock()
	s.nextSnap++
	id := s.nextSnap
	if s.snaps == nil {
		s.snaps = make(map[SnapID]*shardedSnap)
	}
	s.snaps[id] = snap
	s.mu.Unlock()
	return SnapInfo{ID: id, Version: snap.version, Size: sh.total}, nil
}

// releaseShards best-effort releases the first n shard snapshots of a
// partially-built cut.
func (s *ShardedClient) releaseShards(snap *shardedSnap, n int) {
	for i := 0; i < n; i++ {
		if sc, ok := s.clients[i].(Snapshotter); ok {
			_ = sc.SnapRelease(snap.subs[i])
		}
	}
}

// SnapRead implements Snapshotter: fan-out reads against the pinned
// per-shard snapshots, concurrently across servers.
func (s *ShardedClient) SnapRead(id SnapID, off int, dst []byte) error {
	s.mu.Lock()
	snap := s.snaps[id]
	s.mu.Unlock()
	if snap == nil {
		return fmt.Errorf("smb: sharded snap read %d: %w", uint64(id), ErrUnknownSnapshot)
	}
	return s.parallelRange(snap.sh, off, dst, func(i, shardOff int, part []byte) error {
		return s.clients[i].(Snapshotter).SnapRead(snap.subs[i], shardOff, part)
	})
}

// SnapRelease implements Snapshotter: unpins every shard snapshot.
func (s *ShardedClient) SnapRelease(id SnapID) error {
	s.mu.Lock()
	snap := s.snaps[id]
	delete(s.snaps, id)
	s.mu.Unlock()
	if snap == nil {
		return fmt.Errorf("smb: sharded snap release %d: %w", uint64(id), ErrUnknownSnapshot)
	}
	var firstErr error
	for i := range s.clients {
		if err := s.clients[i].(Snapshotter).SnapRelease(snap.subs[i]); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return firstErr
}

var _ Snapshotter = (*ShardedClient)(nil)

// Snapshot implements Snapshotter on the shm transport. The cut itself
// happens server-side over the control socket (the server owns the
// epoch/COW machinery); for an exported segment the server drains mapped
// writers through the shared snapshot gate first, so a cut is consistent
// against this process's mapped stores too. Snapshot pages live on the
// server heap, not in the mapping, so SnapRead rides the wire — the
// serving path trades the mapped zero-copy read for a cut that cannot
// tear.
func (c *ShmClient) Snapshot(h Handle) (SnapInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var info SnapInfo
	c.ctlOps.Add(1)
	err := c.withCtlLocked(func(ctl *StreamClient) error {
		rh, err := c.resolveLocked(ctl, h)
		if err != nil {
			return err
		}
		info, err = ctl.Snapshot(rh)
		return err
	})
	return info, err
}

// SnapRead implements Snapshotter over the control socket.
func (c *ShmClient) SnapRead(id SnapID, off int, dst []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ctlOps.Add(1)
	return c.withCtlLocked(func(ctl *StreamClient) error {
		return ctl.SnapRead(id, off, dst)
	})
}

// SnapRelease implements Snapshotter over the control socket.
func (c *ShmClient) SnapRelease(id SnapID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ctlOps.Add(1)
	return c.withCtlLocked(func(ctl *StreamClient) error {
		return ctl.SnapRelease(id)
	})
}

var _ Snapshotter = (*ShmClient)(nil)
