package smb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"shmcaffe/internal/tensor"
)

// Torn-read regression suite. Store.Read is atomic per 64 KiB stripe only;
// these tests first demonstrate the tear on the live read path (the seed
// bug: a multi-stripe read overlapping a storm of whole-buffer writes
// observes a mixed-epoch buffer), then pin the fix: Snapshot/SnapRead is
// bitwise stable and cut-consistent on every transport, whatever the
// concurrent write traffic.

// snapTestStripes sizes the storm segments: enough stripes that a
// multi-stripe sweep is long relative to the scheduler's preemption
// granularity, small enough to keep the storm iteration rate high.
const snapTestStripes = 16

// fillWords fills buf with the 4-byte little-endian pattern k.
func fillWords(buf []byte, k uint32) {
	binary.LittleEndian.PutUint32(buf[:4], k)
	for n := 4; n < len(buf); n *= 2 {
		copy(buf[n:], buf[:n])
	}
}

// uniformWords reports whether buf is one repeated 4-byte pattern,
// returning the first offset where it is not.
func uniformWords(buf []byte) (int, bool) {
	k := binary.LittleEndian.Uint32(buf[:4])
	for off := 4; off < len(buf); off += 4 {
		if binary.LittleEndian.Uint32(buf[off:]) != k {
			return off, false
		}
	}
	return 0, true
}

// stormSegment creates a multi-stripe segment and starts a goroutine
// storming whole-buffer writes of distinguishable patterns through w.
// Returns the handle (attached on r's store view) and a stop function.
func stormWrites(t *testing.T, w Client, h Handle, size int) (stop func()) {
	t.Helper()
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		buf := make([]byte, size)
		for k := uint32(1); ; k++ {
			select {
			case <-done:
				return
			default:
			}
			fillWords(buf, k)
			if err := w.Write(h, 0, buf); err != nil {
				t.Errorf("storm write: %v", err)
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// TestMultiStripeReadTorn demonstrates the live-read tear the snapshot
// tier exists to fix — and documents that Read's contract is unchanged:
// per-stripe atomicity only. A reader sweeping 16 stripes against a storm
// of whole-buffer writes observes a buffer mixing two write epochs. The
// schedule is probabilistic, so the test storms until it catches one tear
// (milliseconds in practice, generously bounded) rather than asserting a
// particular interleaving.
func TestMultiStripeReadTorn(t *testing.T) {
	store := NewStore()
	size := snapTestStripes * chunkBytes
	key, err := store.Create("torn/wg", size)
	if err != nil {
		t.Fatal(err)
	}
	h, err := store.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	stop := stormWrites(t, NewLocalClient(store), h, size)
	defer stop()

	buf := make([]byte, size)
	deadline := time.Now().Add(30 * time.Second)
	for reads := 0; time.Now().Before(deadline); reads++ {
		if err := store.Read(h, 0, buf); err != nil {
			t.Fatal(err)
		}
		if off, ok := uniformWords(buf); !ok {
			t.Logf("tear observed after %d reads: word at %d differs (stripe %d vs 0) — live Read is per-stripe atomic only",
				reads, off, off/chunkBytes)
			return
		}
	}
	t.Fatal("no torn read observed: either the scheduler never preempted mid-sweep (rerun) or Read grew multi-stripe atomicity this suite does not expect")
}

// assertSnapshotStable takes a cut through sc mid-storm and pins the fix:
// the snapshot is uniform (no mixed write epochs — the cut is atomic
// against whole ops) and bitwise stable across repeated reads (COW
// preserves the cut while the storm keeps writing). Returns the pattern
// the cut captured.
func assertSnapshotStable(t *testing.T, sc Snapshotter, h Handle, size int) uint32 {
	t.Helper()
	info, err := sc.Snapshot(h)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != size {
		t.Fatalf("snapshot size %d, want %d", info.Size, size)
	}
	first := make([]byte, size)
	if err := sc.SnapRead(info.ID, 0, first); err != nil {
		t.Fatal(err)
	}
	if off, ok := uniformWords(first); !ok {
		t.Fatalf("snapshot %d torn: word at %d (stripe %d) differs from stripe 0",
			uint64(info.ID), off, off/chunkBytes)
	}
	again := make([]byte, size)
	for i := 0; i < 8; i++ {
		if err := sc.SnapRead(info.ID, 0, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("snapshot %d unstable on read %d: bytes changed under the storm", uint64(info.ID), i)
		}
	}
	// Partial reads serve the same cut.
	part := make([]byte, chunkBytes+8)
	off := chunkBytes / 2
	if err := sc.SnapRead(info.ID, off, part); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first[off:off+len(part)], part) {
		t.Fatalf("snapshot %d partial read disagrees with full read", uint64(info.ID))
	}
	if err := sc.SnapRelease(info.ID); err != nil {
		t.Fatal(err)
	}
	if err := sc.SnapRead(info.ID, 0, part); !errors.Is(err, ErrUnknownSnapshot) {
		t.Fatalf("read of released snapshot: %v, want ErrUnknownSnapshot", err)
	}
	return binary.LittleEndian.Uint32(first[:4])
}

// TestSnapshotStableUnderWriteStorm is the tentpole's core assertion on
// the local store: cuts taken mid-storm are uniform and immutable.
func TestSnapshotStableUnderWriteStorm(t *testing.T) {
	store := NewStore()
	size := snapTestStripes * chunkBytes
	key, err := store.Create("snap/wg", size)
	if err != nil {
		t.Fatal(err)
	}
	h, err := store.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	stop := stormWrites(t, NewLocalClient(store), h, size)
	defer stop()

	lc := NewLocalClient(store)
	var last uint32
	for i := 0; i < 20; i++ {
		k := assertSnapshotStable(t, lc, h, size)
		if k < last {
			t.Fatalf("snapshot %d captured pattern %d after an earlier cut saw %d: cuts went backwards", i, k, last)
		}
		last = k
	}
	if store.SnapCount() != 0 {
		t.Fatalf("%d snapshots leaked", store.SnapCount())
	}
	if got := store.snapc.cowPages.Load(); got == 0 {
		t.Error("storm never forced a COW page: the lazy path was not exercised")
	}
}

// TestSnapshotStableUnderAccumulateStorm covers the paper's actual write
// traffic: Accumulate (Eq. 7) storms into Wg while snapshots serve. Each
// accumulate adds a uniform gradient, so any consistent cut is a uniform
// float32 buffer; a torn cut mixes pre- and post-add stripes.
func TestSnapshotStableUnderAccumulateStorm(t *testing.T) {
	store := NewStore()
	size := snapTestStripes * chunkBytes
	kw, err := store.Create("acc/wg", size)
	if err != nil {
		t.Fatal(err)
	}
	kd, err := store.Create("acc/dw", size)
	if err != nil {
		t.Fatal(err)
	}
	hw, _ := store.Attach(kw)
	hd, _ := store.Attach(kd)
	ones := make([]float32, size/4)
	for i := range ones {
		ones[i] = 1
	}
	if err := store.Write(hd, 0, tensor.Float32Bytes(ones)); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := store.Accumulate(hw, hd); err != nil {
				t.Errorf("storm accumulate: %v", err)
				return
			}
		}
	}()
	defer func() { close(done); <-finished }()

	buf := make([]byte, size)
	for i := 0; i < 20; i++ {
		info, err := store.Snapshot(hw)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.SnapRead(info.ID, 0, buf); err != nil {
			t.Fatal(err)
		}
		vals, err := tensor.Float32FromBytes(buf)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range vals {
			if v != vals[0] {
				t.Fatalf("cut %d torn mid-accumulate: wg[%d]=%g, wg[0]=%g", i, j, v, vals[0])
			}
		}
		if err := store.SnapRelease(info.ID); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotTransports runs the storm/cut assertion over the wire
// transports: plain TCP, scatter-gather TCP, and the sharded fan-out.
// (The shm-mapped writer storm has its own test below; it needs the
// shared gate.)
func TestSnapshotTransports(t *testing.T) {
	size := 4 * chunkBytes
	t.Run("tcp", func(t *testing.T) {
		srv := startServer(t)
		c, w := dialT(t, srv), dialT(t, srv)
		key, err := c.Create("snap/wg", size)
		if err != nil {
			t.Fatal(err)
		}
		h, _ := c.Attach(key)
		wh, _ := w.Attach(key)
		stop := stormWrites(t, w, wh, size)
		defer stop()
		for i := 0; i < 5; i++ {
			assertSnapshotStable(t, c, h, size)
		}
	})
	t.Run("tcp_sg", func(t *testing.T) {
		srv := startServer(t)
		c, w := dialT(t, srv), dialT(t, srv)
		c.EnableScatterGather(true)
		w.EnableScatterGather(true)
		key, err := c.Create("snap/wg", size)
		if err != nil {
			t.Fatal(err)
		}
		h, _ := c.Attach(key)
		wh, _ := w.Attach(key)
		stop := stormWrites(t, w, wh, size)
		defer stop()
		for i := 0; i < 5; i++ {
			assertSnapshotStable(t, c, h, size)
		}
	})
	t.Run("sharded", func(t *testing.T) {
		s1, s2 := NewStore(), NewStore()
		sc, err := NewShardedClient(NewLocalClient(s1), NewLocalClient(s2))
		if err != nil {
			t.Fatal(err)
		}
		key, err := sc.Create("snap/wg", size)
		if err != nil {
			t.Fatal(err)
		}
		h, err := sc.Attach(key)
		if err != nil {
			t.Fatal(err)
		}
		stop := stormWrites(t, sc, h, size)
		defer stop()
		// The sharded cut is a version vector, not a global point: each
		// shard is internally consistent, but two shards may capture
		// different storm epochs. Assert exactly that contract — per-shard
		// uniformity and whole-cut stability.
		half := size / 2
		for i := 0; i < 5; i++ {
			info, err := sc.Snapshot(h)
			if err != nil {
				t.Fatal(err)
			}
			first := make([]byte, size)
			if err := sc.SnapRead(info.ID, 0, first); err != nil {
				t.Fatal(err)
			}
			for s, lo := 0, 0; lo < size; s, lo = s+1, lo+half {
				if off, ok := uniformWords(first[lo : lo+half]); !ok {
					t.Fatalf("shard %d torn at offset %d", s, off)
				}
			}
			again := make([]byte, size)
			for j := 0; j < 4; j++ {
				if err := sc.SnapRead(info.ID, 0, again); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(first, again) {
					t.Fatal("sharded snapshot unstable under storm")
				}
			}
			if err := sc.SnapRelease(info.ID); err != nil {
				t.Fatal(err)
			}
			if err := sc.SnapRead(info.ID, 0, again); !errors.Is(err, ErrUnknownSnapshot) {
				t.Fatalf("released sharded snapshot read: %v", err)
			}
		}
	})
}

// TestShmSnapshotMappedWriterStorm extends the regression to the
// shm-mapped write path: a mapped client storms whole-buffer writes into
// the shared stripes (no server involvement per op), while snapshots are
// cut server-side through the control socket. The cut must drain the
// mapped writer through the shared snapshot gate, so it cannot land
// mid-write.
func TestShmSnapshotMappedWriterStorm(t *testing.T) {
	_, path := startShmServer(t)
	w := dialShmT(t, path)
	c := dialShmT(t, path)
	size := 4 * chunkBytes
	key, err := w.Create("snap/wg", size)
	if err != nil {
		t.Fatal(err)
	}
	wh, err := w.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Mapped(wh) {
		t.Skip("segment did not map; mapped-writer storm not exercisable")
	}
	ch, err := c.Attach(key)
	if err != nil {
		t.Fatal(err)
	}
	stop := stormWrites(t, w, wh, size)
	defer stop()
	for i := 0; i < 5; i++ {
		assertSnapshotStable(t, c, ch, size)
	}
}

// TestSnapReadZeroAlloc pins the serving hot path: once a snapshot's COW
// pages exist, SnapRead on an instrumented store takes no locks on the
// steady path and performs zero heap allocations per op (check.sh tier 2
// runs this by name).
func TestSnapReadZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	store, hg, _ := setupAllocStore(t)
	buf := make([]byte, allocVals*4)
	fillWords(buf, 7)
	if err := store.Write(hg, 0, buf); err != nil {
		t.Fatal(err)
	}
	info, err := store.Snapshot(hg)
	if err != nil {
		t.Fatal(err)
	}
	// Force the COW path: a post-cut write publishes pre-image pages, so
	// the timed loop below reads pages, live bytes, and the boundary.
	fillWords(buf, 8)
	if err := store.Write(hg, 0, buf[:len(buf)/2]); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, allocVals*4)
	if err := store.SnapRead(info.ID, 0, dst); err != nil {
		t.Fatal(err)
	}
	if off, ok := uniformWords(dst); !ok {
		t.Fatalf("snapshot not the cut: differs at %d", off)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := store.SnapRead(info.ID, 0, dst); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Store.SnapRead allocates %.1f per op, want 0", n)
	}
	if err := store.SnapRelease(info.ID); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotSeqlockFallback drives the bounded-retry accounting: the
// counters that check.sh's serve smoke scrapes must exist and move the
// right way under a storm.
func TestSnapshotCounters(t *testing.T) {
	store := NewStore()
	size := snapTestStripes * chunkBytes
	key, _ := store.Create("cnt/wg", size)
	h, _ := store.Attach(key)
	stop := stormWrites(t, NewLocalClient(store), h, size)
	buf := make([]byte, size)
	var reads atomic.Int64
	for i := 0; i < 10; i++ {
		info, err := store.Snapshot(h)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 5; j++ {
			if err := store.SnapRead(info.ID, 0, buf); err != nil {
				t.Fatal(err)
			}
			reads.Add(1)
		}
		store.SnapRelease(info.ID)
	}
	stop()
	if got := store.snapc.taken.Load(); got != 10 {
		t.Errorf("taken = %d, want 10", got)
	}
	if got := store.snapc.live.Load(); got != 0 {
		t.Errorf("live = %d, want 0", got)
	}
	if got := store.snapc.reads.Load(); got != reads.Load() {
		t.Errorf("reads = %d, want %d", got, reads.Load())
	}
}
