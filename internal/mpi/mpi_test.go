package mpi

import (
	"errors"
	"math"
	"sync"
	"testing"
)

// runRanks runs fn on every rank concurrently and waits for completion.
func runRanks(t *testing.T, w *World, fn func(c *Comm)) {
	t.Helper()
	var wg sync.WaitGroup
	for r := 0; r < w.Size(); r++ {
		c, err := w.Comm(r)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c *Comm) {
			defer wg.Done()
			fn(c)
		}(c)
	}
	wg.Wait()
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Fatal("expected error for empty world")
	}
	w, err := NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 3 {
		t.Fatalf("Size = %d", w.Size())
	}
	if _, err := w.Comm(3); !errors.Is(err, ErrRank) {
		t.Fatalf("want ErrRank, got %v", err)
	}
}

func TestSendRecvOrdering(t *testing.T) {
	w, _ := NewWorld(2)
	runRanks(t, w, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 5; i++ {
				if err := c.Send(1, 7, []byte{byte(i)}); err != nil {
					t.Error(err)
				}
			}
		} else {
			for i := 0; i < 5; i++ {
				data, err := c.Recv(0, 7)
				if err != nil {
					t.Error(err)
					return
				}
				if data[0] != byte(i) {
					t.Errorf("message %d out of order: %v", i, data)
				}
			}
		}
	})
}

func TestSendCopiesData(t *testing.T) {
	w, _ := NewWorld(2)
	runRanks(t, w, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []byte{1}
			c.Send(1, 0, buf)
			buf[0] = 99 // mutation after send must not be observed
		} else {
			data, err := c.Recv(0, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if data[0] != 1 {
				t.Errorf("received mutated buffer: %v", data)
			}
		}
	})
}

func TestRecvTagMismatch(t *testing.T) {
	w, _ := NewWorld(2)
	runRanks(t, w, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte{0})
		} else {
			if _, err := c.Recv(0, 2); err == nil {
				t.Error("expected tag mismatch error")
			}
		}
	})
}

func TestSendRecvRankErrors(t *testing.T) {
	w, _ := NewWorld(2)
	c, _ := w.Comm(0)
	if err := c.Send(5, 0, nil); !errors.Is(err, ErrRank) {
		t.Fatalf("want ErrRank, got %v", err)
	}
	if _, err := c.Recv(-1, 0); !errors.Is(err, ErrRank) {
		t.Fatalf("want ErrRank, got %v", err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w, _ := NewWorld(4)
	var mu sync.Mutex
	before := 0
	after := 0
	runRanks(t, w, func(c *Comm) {
		mu.Lock()
		before++
		mu.Unlock()
		c.Barrier()
		mu.Lock()
		if before != 4 {
			t.Errorf("rank passed barrier with only %d arrivals", before)
		}
		after++
		mu.Unlock()
	})
	if after != 4 {
		t.Fatalf("after = %d", after)
	}
}

func TestBcast(t *testing.T) {
	w, _ := NewWorld(4)
	var mu sync.Mutex
	results := make(map[int][]byte)
	runRanks(t, w, func(c *Comm) {
		var buf []byte
		if c.Rank() == 2 {
			buf = []byte("shm-key-42")
		}
		out, err := c.Bcast(2, buf)
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		results[c.Rank()] = out
		mu.Unlock()
	})
	for r, out := range results {
		if string(out) != "shm-key-42" {
			t.Fatalf("rank %d got %q", r, out)
		}
	}
}

func TestBcastRootError(t *testing.T) {
	w, _ := NewWorld(1)
	c, _ := w.Comm(0)
	if _, err := c.Bcast(5, nil); !errors.Is(err, ErrRank) {
		t.Fatalf("want ErrRank, got %v", err)
	}
}

func TestGather(t *testing.T) {
	w, _ := NewWorld(3)
	var rootGot [][]byte
	runRanks(t, w, func(c *Comm) {
		out, err := c.Gather(0, []byte{byte(c.Rank() * 10)})
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			rootGot = out
		} else if out != nil {
			t.Errorf("non-root rank %d received gather data", c.Rank())
		}
	})
	if len(rootGot) != 3 {
		t.Fatalf("root gathered %d buffers", len(rootGot))
	}
	for r, buf := range rootGot {
		if buf[0] != byte(r*10) {
			t.Fatalf("gather[%d] = %v", r, buf)
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	w, _ := NewWorld(4)
	var mu sync.Mutex
	results := make(map[int][]float32)
	runRanks(t, w, func(c *Comm) {
		data := []float32{float32(c.Rank()), 1, float32(c.Rank() * c.Rank())}
		if err := c.AllreduceSum(data); err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		results[c.Rank()] = data
		mu.Unlock()
	})
	want := []float32{0 + 1 + 2 + 3, 4, 0 + 1 + 4 + 9}
	for r, data := range results {
		for i, wv := range want {
			if math.Abs(float64(data[i]-wv)) > 1e-6 {
				t.Fatalf("rank %d allreduce[%d] = %v, want %v", r, i, data[i], wv)
			}
		}
	}
}

// TestAllreduceRepeated: collectives are reusable back to back, and every
// round is independent.
func TestAllreduceRepeated(t *testing.T) {
	w, _ := NewWorld(3)
	runRanks(t, w, func(c *Comm) {
		for round := 1; round <= 5; round++ {
			data := []float32{float32(round)}
			if err := c.AllreduceSum(data); err != nil {
				t.Error(err)
				return
			}
			if data[0] != float32(3*round) {
				t.Errorf("round %d: got %v, want %d", round, data[0], 3*round)
			}
			c.Barrier()
		}
	})
}

// TestCollectivesDeterministicAcrossRanks: the float64 accumulator makes the
// allreduce result bit-identical on all ranks — required for SSGD replicas
// to stay in lockstep.
func TestAllreduceBitIdentical(t *testing.T) {
	w, _ := NewWorld(8)
	var mu sync.Mutex
	var results [][]float32
	runRanks(t, w, func(c *Comm) {
		data := []float32{0.1 * float32(c.Rank()), -0.3, 1e-7}
		if err := c.AllreduceSum(data); err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		results = append(results, data)
		mu.Unlock()
	})
	for i := 1; i < len(results); i++ {
		for j := range results[0] {
			if results[i][j] != results[0][j] {
				t.Fatalf("rank results differ: %v vs %v", results[i], results[0])
			}
		}
	}
}
