// Package mpi is a minimal message-passing runtime for goroutine ranks.
// ShmCaffe uses MPI only for process bootstrap and small control messages
// (broadcasting SHM keys, Fig. 2); the MPI-based baselines (Caffe-MPI,
// MPICaffe) additionally use gather/scatter and allreduce collectives for
// gradients. This package provides those semantics: a World of n ranks with
// ordered point-to-point channels plus Barrier / Bcast / Gather / Scatter /
// AllreduceSum collectives.
package mpi

import (
	"errors"
	"fmt"
	"sync"
)

// ErrRank is returned for out-of-range rank arguments.
var ErrRank = errors.New("mpi: rank out of range")

// message is one point-to-point payload.
type message struct {
	tag  int
	data []byte
}

// World is one communicator instance shared by n ranks.
type World struct {
	n int
	// p2p[src][dst] carries ordered messages from src to dst.
	p2p [][]chan message

	// Collective state: a cyclic barrier with an attached float64
	// accumulator generation used by AllreduceSum.
	mu      sync.Mutex
	cond    *sync.Cond
	arrived int    // guarded by mu
	gen     uint64 // guarded by mu
	// reduce accumulator for the current generation; guarded by mu
	acc []float64
	// bcast buffer for the current generation; guarded by mu
	bcastBuf []byte
	// gather buffers for the current generation; guarded by mu
	gatherBufs [][]byte
}

// NewWorld creates a communicator for n ranks.
func NewWorld(n int) (*World, error) {
	if n < 1 {
		return nil, fmt.Errorf("mpi: world size %d < 1", n)
	}
	w := &World{n: n}
	w.cond = sync.NewCond(&w.mu)
	w.p2p = make([][]chan message, n)
	for i := range w.p2p {
		w.p2p[i] = make([]chan message, n)
		for j := range w.p2p[i] {
			w.p2p[i][j] = make(chan message, 1)
		}
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Comm returns the per-rank handle used by worker goroutines.
func (w *World) Comm(rank int) (*Comm, error) {
	if rank < 0 || rank >= w.n {
		return nil, fmt.Errorf("comm rank %d of %d: %w", rank, w.n, ErrRank)
	}
	return &Comm{world: w, rank: rank}, nil
}

// Comm is one rank's endpoint. Each Comm must be used by a single goroutine.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.n }

// Send delivers data to rank dst. It blocks until the destination has
// started receiving the previous in-flight message (channel capacity 1),
// preserving MPI's per-pair ordering.
func (c *Comm) Send(dst, tag int, data []byte) error {
	if dst < 0 || dst >= c.world.n {
		return fmt.Errorf("send to %d: %w", dst, ErrRank)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.world.p2p[c.rank][dst] <- message{tag: tag, data: cp}
	return nil
}

// Recv receives the next message from rank src, which must carry the given
// tag (mismatch is a protocol error).
func (c *Comm) Recv(src, tag int) ([]byte, error) {
	if src < 0 || src >= c.world.n {
		return nil, fmt.Errorf("recv from %d: %w", src, ErrRank)
	}
	m := <-c.world.p2p[src][c.rank]
	if m.tag != tag {
		return nil, fmt.Errorf("mpi: recv from %d got tag %d, want %d", src, m.tag, tag)
	}
	return m.data, nil
}

// barrierLocked blocks until all n ranks arrive; the last arrival runs
// onLast (may be nil) before waking everyone. Callers hold w.mu.
func (w *World) barrierLocked(onLast func()) {
	gen := w.gen
	w.arrived++
	if w.arrived == w.n {
		if onLast != nil {
			onLast()
		}
		w.arrived = 0
		w.gen++
		w.cond.Broadcast()
		return
	}
	for w.gen == gen {
		w.cond.Wait()
	}
}

// Barrier blocks until every rank has called it.
func (c *Comm) Barrier() {
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	w.barrierLocked(nil)
}

// Bcast broadcasts root's buf to every rank: on non-root ranks the returned
// slice is a copy of root's; on root it is buf itself.
func (c *Comm) Bcast(root int, buf []byte) ([]byte, error) {
	if root < 0 || root >= c.world.n {
		return nil, fmt.Errorf("bcast root %d: %w", root, ErrRank)
	}
	w := c.world
	w.mu.Lock()
	if c.rank == root {
		cp := make([]byte, len(buf))
		copy(cp, buf)
		w.bcastBuf = cp
	}
	w.barrierLocked(nil)
	src := w.bcastBuf
	w.barrierLocked(func() { w.bcastBuf = nil })
	w.mu.Unlock()
	if c.rank == root {
		return buf, nil
	}
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// Gather collects each rank's buf at root; non-root ranks receive nil.
func (c *Comm) Gather(root int, buf []byte) ([][]byte, error) {
	if root < 0 || root >= c.world.n {
		return nil, fmt.Errorf("gather root %d: %w", root, ErrRank)
	}
	w := c.world
	w.mu.Lock()
	if w.gatherBufs == nil {
		w.gatherBufs = make([][]byte, w.n)
	}
	cp := make([]byte, len(buf))
	copy(cp, buf)
	w.gatherBufs[c.rank] = cp
	w.barrierLocked(nil)
	var out [][]byte
	if c.rank == root {
		out = w.gatherBufs
	}
	w.barrierLocked(func() { w.gatherBufs = nil })
	w.mu.Unlock()
	return out, nil
}

// AllreduceSum sums data elementwise across all ranks, writing the result
// back into data on every rank. The accumulation is performed in float64 so
// the result is identical on all ranks regardless of arrival order.
func (c *Comm) AllreduceSum(data []float32) error {
	w := c.world
	w.mu.Lock()
	if w.acc == nil {
		w.acc = make([]float64, len(data))
	}
	if len(w.acc) != len(data) {
		w.mu.Unlock()
		return fmt.Errorf("mpi: allreduce length %d does not match %d", len(data), len(w.acc))
	}
	for i, v := range data {
		w.acc[i] += float64(v)
	}
	w.barrierLocked(nil)
	for i := range data {
		data[i] = float32(w.acc[i])
	}
	w.barrierLocked(func() { w.acc = nil })
	w.mu.Unlock()
	return nil
}
