// Package lint is shmlint's analyzer framework: a deliberately small,
// stdlib-only (go/ast + go/parser + go/types) reimplementation of the
// golang.org/x/tools analysis idea, specialised to this repository. The
// ShmCaffe concurrency core — the SMB store's exclusive Accumulate, the
// SEASGD main/update thread exclusion (paper Fig. 6) — depends on
// invariants that ordinary tests exercise but cannot *prove*; the
// analyzers here machine-check the conventions the code relies on
// (mutex-guarded fields, goroutine lifetime, error wrapping, opcode
// dispatch exhaustiveness, deterministic numeric paths).
//
// An Analyzer inspects one type-checked package at a time through a Pass
// and reports Diagnostics. Findings can be suppressed with
//
//	//lint:ignore <analyzer> <reason>
//
// which applies to its own line and the line below when written inline or
// directly above the offending statement, and to the whole function when
// written in a function's doc comment (for code that is correct for
// reasons outside the analyzer's model, e.g. pre-publication
// initialisation).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Package analyzers (Run) inspect one
// type-checked package at a time; program analyzers (RunProgram) consume
// the cross-package summary engine (program.go) and run once over the
// whole load — exactly one of the two is set.
type Analyzer struct {
	// Name is the analyzer's identifier, used by -run selection and
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description shown by shmlint -list.
	Doc string
	// Run inspects the package behind pass and reports findings via
	// pass.Reportf. Nil for program analyzers.
	Run func(pass *Pass) error
	// RunProgram inspects the whole-module Program behind pass. Nil for
	// package analyzers.
	RunProgram func(pass *ProgramPass) error
}

// All is the default analyzer suite, in execution order (package analyzers
// first, then the summary-engine program analyzers).
var All = []*Analyzer{
	GuardedBy,
	GoLeak,
	ErrWrap,
	OpcodeExhaustive,
	Determinism,
	SpanPair,
	NetDeadline,
	LockOrder,
	HotAlloc,
	AtomicMix,
	WireProto,
}

// Lookup returns the analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ProgramPass carries one whole-module Program through one program
// analyzer.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the package analyzers to pkg and returns the surviving
// diagnostics (ignore directives applied), sorted by position. Program
// analyzers in the list are skipped; drive them through RunOnProgram.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup := collectSuppressions(pkg)
	var out []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range pass.diags {
			if !sup.suppressed(a.Name, d.Pos) {
				out = append(out, d)
			}
		}
	}
	sortDiagnostics(out)
	return out, nil
}

// RunOnProgram applies the program analyzers to prog — once for the whole
// load, not per package — and returns the surviving diagnostics, sorted.
// Suppression directives from every package of the program apply, so a
// //lint:ignore works wherever the diagnostic lands (a hot-path allocation
// is reported in the callee's package, not the root's).
func RunOnProgram(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup := &suppressions{}
	for _, pkg := range prog.Pkgs {
		sup.ranges = append(sup.ranges, collectSuppressions(pkg).ranges...)
	}
	var out []Diagnostic
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		pass := &ProgramPass{Analyzer: a, Prog: prog}
		if err := a.RunProgram(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			if !sup.suppressed(a.Name, d.Pos) {
				out = append(out, d)
			}
		}
	}
	sortDiagnostics(out)
	return out, nil
}

// sortDiagnostics orders findings by file, line, then analyzer name.
func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].Message < out[j].Message
	})
}

// suppressRange silences one analyzer between two lines of a file.
type suppressRange struct {
	analyzer string
	file     string
	from, to int
}

type suppressions struct{ ranges []suppressRange }

func (s *suppressions) suppressed(analyzer string, pos token.Position) bool {
	for _, r := range s.ranges {
		if r.analyzer != analyzer && r.analyzer != "*" {
			continue
		}
		if r.file == pos.Filename && r.from <= pos.Line && pos.Line <= r.to {
			return true
		}
	}
	return false
}

const ignorePrefix = "//lint:ignore"

// collectSuppressions gathers //lint:ignore directives from comments and
// function doc comments.
func collectSuppressions(pkg *Package) *suppressions {
	sup := &suppressions{}
	for _, f := range pkg.Files {
		// Function-doc directives suppress the whole function body.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if name, ok := parseIgnore(c.Text); ok {
					start := pkg.Fset.Position(fd.Pos())
					end := pkg.Fset.Position(fd.End())
					sup.ranges = append(sup.ranges, suppressRange{
						analyzer: name, file: start.Filename,
						from: start.Line, to: end.Line,
					})
				}
			}
		}
		// Free-standing / trailing directives cover their own line and the
		// next (so the directive works both inline and on the line above).
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				sup.ranges = append(sup.ranges, suppressRange{
					analyzer: name, file: p.Filename,
					from: p.Line, to: p.Line + 1,
				})
			}
		}
	}
	return sup
}

// parseIgnore extracts the analyzer name from an ignore directive.
func parseIgnore(text string) (analyzer string, ok bool) {
	if !strings.HasPrefix(text, ignorePrefix) {
		return "", false
	}
	fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
	if len(fields) == 0 {
		return "", false
	}
	return fields[0], true
}
