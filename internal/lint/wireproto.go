package lint

import (
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WireProto checks opcode parity across the wire protocol. The SMB
// protocol has grown to 13 opcodes spread over four files, each added by
// hand in three places: the constant, the client encode, and the server
// dispatch arm. For every named constant type that (a) declares op*
// constants and (b) is switched on somewhere in the module, the analyzer
// requires each constant to be covered by a dispatch switch and to flow
// into at least one call argument (the encode side — which is also where
// the decoder learns the value, since decode in this codebase is dispatch).
// It additionally rejects duplicate wire values and raw-literal case
// labels, the two ways a hand-maintained opcode space corrupts silently.
//
// Data-plane discipline: every dispatch arm of a wire switch must record a
// latency observation — a Histogram Observe/ObserveSeconds or a telemetry
// Span.End reached transitively through the arm's callees. An opcode that
// dodges the latency surface is invisible to shmtop's p50/p99 columns and
// to the Fig. 6 timeline, which is how a slow verb hides in a fleet.
// Control-plane arms (create/lookup/hello, called once per session) carry
// //lint:ignore wireproto directives.
var WireProto = &Analyzer{
	Name:       "wireproto",
	Doc:        "require encoder/dispatch parity for op* wire constants",
	RunProgram: runWireProto,
}

func runWireProto(pass *ProgramPass) error {
	prog := pass.Prog

	// Program-wide facts from the summaries.
	covered := make(map[*types.TypeName]map[string]bool)
	switched := make(map[*types.TypeName]bool)
	encoded := make(map[*types.Const]bool)
	type rawCase struct {
		pos token.Pos
		tn  *types.TypeName
	}
	var raws []rawCase
	arms := make(map[*types.TypeName][]SwitchArm)
	for _, fi := range prog.FuncsInOrder() {
		for _, sw := range fi.Sum.Switches {
			switched[sw.TypeName] = true
			cv := covered[sw.TypeName]
			if cv == nil {
				cv = make(map[string]bool)
				covered[sw.TypeName] = cv
			}
			for _, v := range sw.Covered {
				cv[v] = true
			}
			for _, p := range sw.Raw {
				raws = append(raws, rawCase{p, sw.TypeName})
			}
			arms[sw.TypeName] = append(arms[sw.TypeName], sw.Arms...)
		}
		for _, ou := range fi.Sum.Opcodes {
			if ou.Role == OpUseEncode {
				encoded[ou.Const] = true
			}
		}
	}

	// Opcode constants, grouped by their declared type.
	groups := make(map[*types.TypeName][]*types.Const)
	var typeOrder []*types.TypeName
	for _, pkg := range prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || !isOpName(name) {
				continue
			}
			named, ok := c.Type().(*types.Named)
			if !ok || named.Obj().Pkg() != pkg.Types {
				continue
			}
			tn := named.Obj()
			if groups[tn] == nil {
				typeOrder = append(typeOrder, tn)
			}
			groups[tn] = append(groups[tn], c)
		}
	}
	sort.Slice(typeOrder, func(i, j int) bool {
		a, b := typeOrder[i], typeOrder[j]
		if a.Pkg().Path() != b.Pkg().Path() {
			return a.Pkg().Path() < b.Pkg().Path()
		}
		return a.Name() < b.Name()
	})

	obs := &observer{prog: prog, memo: make(map[*types.Func]bool)}
	for _, tn := range typeOrder {
		if !switched[tn] {
			// A type nobody dispatches on is not a wire protocol.
			continue
		}
		consts := groups[tn]
		sort.Slice(consts, func(i, j int) bool { return consts[i].Pos() < consts[j].Pos() })
		firstByValue := make(map[string]*types.Const)
		for _, c := range consts {
			v := c.Val().ExactString()
			if prev, dup := firstByValue[v]; dup {
				pass.Reportf(c.Pos(), "opcode %s reuses wire value %s of %s", c.Name(), wireValue(c.Val()), prev.Name())
			} else {
				firstByValue[v] = c
			}
			if !covered[tn][v] {
				pass.Reportf(c.Pos(), "opcode %s (value %s) has no dispatch arm in any switch over %s", c.Name(), wireValue(c.Val()), tn.Name())
			}
			if !encoded[c] {
				pass.Reportf(c.Pos(), "opcode %s is never encoded: no call puts it on the wire", c.Name())
			}
		}
		for _, arm := range arms[tn] {
			if len(arm.Values) == 0 {
				continue // default clause: not an opcode handler
			}
			if obs.armObserves(arm) {
				continue
			}
			pass.Reportf(arm.Pos, "dispatch arm for %s records no latency observation (no Observe/ObserveSeconds/Span.End on any call path)",
				armLabel(arm, firstByValue))
		}
	}
	for _, r := range raws {
		if switched[r.tn] && groups[r.tn] != nil {
			pass.Reportf(r.pos, "raw literal case in switch over %s; use the named op* constant", r.tn.Name())
		}
	}
	return nil
}

// observer answers "does this function transitively record a latency
// observation?" with memoization over the program call graph.
type observer struct {
	prog *Program
	memo map[*types.Func]bool
}

// armObserves reports whether any call in the dispatch arm's body reaches a
// latency observation.
func (o *observer) armObserves(arm SwitchArm) bool {
	for _, c := range arm.Callees {
		if o.observes(c) {
			return true
		}
	}
	return false
}

// observes reports whether fn is itself a latency observation or reaches
// one through its module callees. The memo doubles as the cycle guard: a
// function mid-visit reads as false, which is the conservative fixpoint.
func (o *observer) observes(fn *types.Func) bool {
	if isObserveCall(fn) {
		return true
	}
	if done, ok := o.memo[fn]; ok {
		return done
	}
	o.memo[fn] = false
	fi := o.prog.Funcs[fn]
	if fi == nil {
		return false // outside the module: assumed not to observe
	}
	for _, c := range fi.Sum.Calls {
		if o.observes(c.Callee) {
			o.memo[fn] = true
			return true
		}
	}
	return false
}

// isObserveCall recognizes the latency-recording leaves: a Histogram's
// Observe/ObserveSeconds, and End/ObserveInto on a type named Span (the
// telemetry tracer's span, whose End records the phase sample).
func isObserveCall(fn *types.Func) bool {
	switch fn.Name() {
	case "Observe", "ObserveSeconds":
		return true
	case "End", "ObserveInto":
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil {
			return false
		}
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		return ok && named.Obj().Name() == "Span"
	}
	return false
}

// armLabel names a dispatch arm by its opcode constants for diagnostics.
func armLabel(arm SwitchArm, byValue map[string]*types.Const) string {
	names := make([]string, 0, len(arm.Values))
	for _, v := range arm.Values {
		if c := byValue[v]; c != nil {
			names = append(names, c.Name())
		} else {
			names = append(names, v)
		}
	}
	return strings.Join(names, ", ")
}

// isOpName matches the repo's opcode naming convention: "op" followed by an
// exported-style tail (opCreate, opWriteAccChunk, opSeqAccumulate).
func isOpName(name string) bool {
	if !strings.HasPrefix(name, "op") || len(name) < 3 {
		return false
	}
	c := name[2]
	return c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// wireValue renders a constant's value for diagnostics (decimal).
func wireValue(v constant.Value) string { return v.ExactString() }
