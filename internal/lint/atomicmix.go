package lint

import (
	"go/token"
	"go/types"
	"path/filepath"
)

// AtomicMix flags fields and package variables accessed both through the
// sync/atomic function API and with plain loads/stores. A plain access to
// an atomically-updated word is a data race even when it "only reads a
// stat counter" — the race detector misses it unless both sides run under
// -race in the same test, which is exactly how the heartbeat-slot and
// counter bugs of PRs 3/5 would slip in. The atomic.Int64-style wrapper
// types make mixing impossible by construction and are the preferred fix;
// this analyzer polices the remaining function-style uses program-wide.
var AtomicMix = &Analyzer{
	Name:       "atomicmix",
	Doc:        "flag fields accessed both via sync/atomic and plainly",
	RunProgram: runAtomicMix,
}

func runAtomicMix(pass *ProgramPass) error {
	prog := pass.Prog
	type uses struct {
		atomic []token.Pos
		plain  []FieldUse
	}
	byVar := make(map[*types.Var]*uses)
	var order []*types.Var
	for _, fi := range prog.FuncsInOrder() {
		for _, fu := range fi.Sum.Fields {
			u := byVar[fu.Obj]
			if u == nil {
				u = &uses{}
				byVar[fu.Obj] = u
				order = append(order, fu.Obj)
			}
			if fu.Atomic {
				u.atomic = append(u.atomic, fu.Pos)
			} else {
				u.plain = append(u.plain, fu)
			}
		}
	}
	for _, v := range order {
		u := byVar[v]
		if len(u.atomic) == 0 || len(u.plain) == 0 {
			continue
		}
		ap := prog.Fset.Position(u.atomic[0])
		for _, p := range u.plain {
			kind := "read"
			if p.Write {
				kind = "write"
			}
			pass.Reportf(p.Pos, "plain %s of %s, which is accessed atomically (%s:%d); every access must use sync/atomic",
				kind, v.Name(), filepath.Base(ap.Filename), ap.Line)
		}
	}
	return nil
}
