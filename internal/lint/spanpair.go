package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanPair enforces the telemetry tracer's Begin/End discipline: a span
// returned by a method named Begin (result type named Span) must be ended
// on every path out of the statement list that created it. The phase
// tracer's ring buffer only records a span at End — a Begin whose End is
// skipped on an early return silently drops the phase from the Fig. 6
// timeline, which is exactly the failure the tracer exists to expose.
//
// Accepted shapes, in the spirit of the code the instrumentation uses:
//
//	sp := tel.Begin(tid, phase)
//	defer sp.End()                       // deferred anywhere after Begin
//
//	sp := tel.Begin(tid, phase)
//	err := op()
//	sp.End()                             // End before the error return
//	if err != nil { return err }
//
//	sp := tel.Begin(tid, phase)
//	if err := op(); err != nil {
//		sp.End()                         // End on the early-return path...
//		return err
//	}
//	sp.End()                             // ...and on the fall-through
//
// A span value that escapes (returned, passed along, stored) transfers the
// obligation to the new owner and is not reported. A discarded Begin result
// can never End and is always reported.
var SpanPair = &Analyzer{
	Name: "spanpair",
	Doc:  "telemetry spans must End on every path out of the block that Begins them",
	Run:  runSpanPair,
}

func runSpanPair(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				checkSpanList(pass, n.List)
			case *ast.CaseClause:
				checkSpanList(pass, n.Body)
			case *ast.CommClause:
				checkSpanList(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkSpanList scans one statement list for Begin calls and verifies each
// resulting span against the remainder of the list.
func checkSpanList(pass *Pass, list []ast.Stmt) {
	for i, stmt := range list {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isSpanBegin(pass, call) {
				pass.Reportf(call.Pos(), "result of %s discarded; the span can never End", beginName(call))
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				continue
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || !isSpanBegin(pass, call) {
				continue
			}
			ident, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				continue
			}
			if ident.Name == "_" {
				pass.Reportf(call.Pos(), "result of %s discarded; the span can never End", beginName(call))
				continue
			}
			obj := pass.TypesInfo.ObjectOf(ident)
			if obj == nil {
				continue
			}
			checkSpanEnds(pass, call.Pos(), ident.Name, obj, list[i+1:])
		}
	}
}

// checkSpanEnds walks the statements after a Begin and reports the first
// path that can leave the list without ending the span.
func checkSpanEnds(pass *Pass, beginPos token.Pos, name string, obj types.Object, rest []ast.Stmt) {
	for _, s := range rest {
		switch st := s.(type) {
		case *ast.DeferStmt:
			if isEndCall(pass, st.Call, obj) {
				return // deferred End covers every later path
			}
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok && isEndCall(pass, call, obj) {
				return // ended; later statements own nothing
			}
		}
		if spanEscapes(pass, s, obj) {
			return // the obligation moved with the value
		}
		if r := returnWithoutEnd(pass, s, obj); r != nil {
			pass.Reportf(beginPos, "span %s may return without End (return at line %d)",
				name, pass.Fset.Position(r.Pos()).Line)
			return
		}
	}
	pass.Reportf(beginPos, "span %s is not ended before the end of this block", name)
}

// isSpanBegin reports whether call is a method call named Begin (or
// BeginTraced, the trace-context-carrying variant the server-side spans
// use) whose result is a named type called Span.
func isSpanBegin(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Begin" && sel.Sel.Name != "BeginTraced" {
		return false
	}
	named, ok := pass.TypesInfo.TypeOf(call).(*types.Named)
	return ok && named.Obj().Name() == "Span"
}

// beginName renders the span-opening method's name for diagnostics.
func beginName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "Begin"
}

// isEndCall reports whether call is obj.End().
func isEndCall(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	recv, ok := sel.X.(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(recv) == obj
}

// spanEscapes reports whether stmt uses the span value other than as the
// receiver of End — returned, passed to a call, reassigned — which hands
// the End obligation to someone this analyzer cannot see.
func spanEscapes(pass *Pass, stmt ast.Stmt, obj types.Object) bool {
	escaped := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if escaped {
			return false
		}
		// Skip the receiver position of End calls.
		if call, ok := n.(*ast.CallExpr); ok && isEndCall(pass, call, obj) {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			escaped = true
		}
		return !escaped
	})
	return escaped
}

// returnWithoutEnd finds the first ReturnStmt nested in stmt that is not
// preceded (positionally, within stmt) by an obj.End() call.
func returnWithoutEnd(pass *Pass, stmt ast.Stmt, obj types.Object) *ast.ReturnStmt {
	var ends []ast.Node
	ast.Inspect(stmt, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isEndCall(pass, call, obj) {
			ends = append(ends, n)
		}
		return true
	})
	var bad *ast.ReturnStmt
	ast.Inspect(stmt, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		r, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, e := range ends {
			if e.Pos() < r.Pos() {
				return true // an End precedes this return
			}
		}
		bad = r
		return false
	})
	return bad
}
