package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked (non-test) package.
type Package struct {
	Path  string // import path, e.g. "shmcaffe/internal/smb"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module without external
// tooling: module-local import paths resolve against the module directory,
// everything else (the standard library) resolves through go/importer's
// source importer. Loaded packages are memoized, so a ./... run
// type-checks each package (and the stdlib) once.
type Loader struct {
	Fset *token.FileSet

	moduleDir  string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package
	loading    map[string]bool
}

// NewLoader creates a loader for the module containing dir (found by
// walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer typechecks dependencies from GOROOT/src through
	// go/build.Default. Force pure-Go resolution so packages with optional
	// cgo paths (net, os/user) never shell out to the cgo tool.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		moduleDir:  root,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// ModuleDir returns the module root directory.
func (l *Loader) ModuleDir() string { return l.moduleDir }

// ModulePath returns the module's import path from go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// modulePath reads the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// importPathFor maps an absolute directory inside the module to its import
// path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.moduleDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.moduleDir)
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module-local import path to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.modulePath {
		return l.moduleDir
	}
	rel := strings.TrimPrefix(path, l.modulePath+"/")
	return filepath.Join(l.moduleDir, filepath.FromSlash(rel))
}

// local reports whether path belongs to this module.
func (l *Loader) local(path string) bool {
	return path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")
}

// Import implements types.Importer, routing module-local paths to the
// loader and everything else to the standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if l.local(path) {
		pkg, err := l.LoadDir(l.dirFor(path))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Loaded returns the already-loaded package with the given import path, or
// nil. Dependencies pulled in through Import are memoized here too, which
// is how BuildProgram finds summaries for packages a target only imports.
func (l *Loader) Loaded(path string) *Package { return l.pkgs[path] }

// LoadDir parses and type-checks the (non-test) package in dir.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFilesIn(abs)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", abs)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   abs,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// goFilesIn lists the buildable non-test Go files in dir, sorted. Build
// constraints are honoured against the default build context (so of a
// `//go:build race` / `//go:build !race` pair only the non-race file is
// loaded, matching what `go build` compiles).
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// ExpandPatterns resolves go-tool-style package patterns ("./...",
// "./internal/smb", import paths) against the module rooted at the
// loader's module directory, returning package directories in sorted
// order. Directories named "testdata", hidden directories, and
// directories without Go files are skipped.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		var base string
		switch {
		case pat == "." || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "../") || filepath.IsAbs(pat):
			base = pat
			if !filepath.IsAbs(base) {
				base = filepath.Join(l.moduleDir, base)
			}
		case l.local(pat):
			base = l.dirFor(pat)
		default:
			return nil, fmt.Errorf("lint: pattern %q is not a module-local package", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			files, err := goFilesIn(p)
			if err != nil {
				return err
			}
			if len(files) > 0 {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
