package lint

import (
	"go/token"
	"go/types"
	"sort"
)

// LockOrder infers the mutex acquisition order the module actually follows
// and flags cycles. Every acquisition while another lock is held — directly
// or through a call chain — contributes a directed edge between lock
// *classes* (a class is one mutex field or package variable; all stripes of
// segment.locks are one class). A cycle among classes means two goroutines
// can acquire the same pair in opposite orders and deadlock. The key-ordered
// dual-stripe acquisition in Store.Accumulate shows up as a self-edge —
// correct only because of the key ordering, which is outside the model, so
// the code carries a //lint:ignore with that reason.
var LockOrder = &Analyzer{
	Name:       "lockorder",
	Doc:        "detect lock acquisition-order cycles across the call graph",
	RunProgram: runLockOrder,
}

// heldLock is one lock on the simulated hold stack: a resolved class, or
// the enclosing function's own parameter (class resolved per call site).
type heldLock struct {
	class string
	param int
}

// edgeKey/edgeInfo describe one held-before-acquired edge of the class
// graph: while `from` was held, `to` was acquired, first seen at pos in fn.
type edgeKey struct{ from, to string }

type edgeInfo struct {
	pos token.Pos
	fn  string
}

func runLockOrder(pass *ProgramPass) error {
	prog := pass.Prog
	funcs := prog.FuncsInOrder()

	// Interprocedural facts, computed to fixpoint because summaries refer
	// to each other through calls:
	//   paramLocks[f]: parameter indices f (transitively) locks,
	//   trans[f]:      every lock class f's call tree may acquire,
	//   escaping[f]:   locks f still holds when it returns (the
	//                  lockWait(&seg.locks[i]) helper pattern),
	//   netRelease[f]: classes f releases without having acquired them —
	//                  the unlockStripe(ci) wrapper pattern, where the
	//                  matching acquire happened in the caller. Without
	//                  this, a caller using acquire/release *methods* looks
	//                  like it holds the class forever: every later acquire
	//                  becomes a phantom self-edge and the class leaks into
	//                  escaping[caller], fabricating order cycles in
	//                  whatever calls *that*.
	paramLocks := make(map[*types.Func]map[int]bool)
	trans := make(map[*types.Func]map[string]bool)
	escaping := make(map[*types.Func][]heldLock)
	netRelease := make(map[*types.Func]map[string]bool)
	for _, fi := range funcs {
		paramLocks[fi.Obj] = make(map[int]bool)
		trans[fi.Obj] = make(map[string]bool)
		netRelease[fi.Obj] = make(map[string]bool)
	}
	for iter := 0; iter <= len(funcs)+1; iter++ {
		changed := false
		for _, fi := range funcs {
			fn := fi.Obj
			pl, tr, nr := paramLocks[fn], trans[fn], netRelease[fn]
			var held, deferred []heldLock
			for _, ev := range fi.Sum.Locks {
				switch ev.Kind {
				case lockAcquire:
					if ev.Param >= 0 && !pl[ev.Param] {
						pl[ev.Param] = true
						changed = true
					}
					if ev.Class != "" && !tr[ev.Class] {
						tr[ev.Class] = true
						changed = true
					}
					if ev.Class != "" || ev.Param >= 0 {
						held = append(held, heldLock{ev.Class, ev.Param})
					}
				case lockRelease:
					after := popHeld(held, ev.Class, ev.Param)
					if len(after) == len(held) && ev.Class != "" && !nr[ev.Class] {
						// Released without a matching acquire: the caller
						// holds it — this function is a release wrapper.
						nr[ev.Class] = true
						changed = true
					}
					held = after
				case lockDeferRelease:
					deferred = append(deferred, heldLock{ev.Class, ev.Param})
				case lockCall:
					if prog.Funcs[ev.Callee] == nil {
						continue // outside the module: assumed lock-free
					}
					for c := range trans[ev.Callee] {
						if !tr[c] {
							tr[c] = true
							changed = true
						}
					}
					for _, al := range ev.ArgLocks {
						if !paramLocks[ev.Callee][al.Index] {
							continue
						}
						if al.Class != "" && !tr[al.Class] {
							tr[al.Class] = true
							changed = true
						}
						if al.Param >= 0 && !pl[al.Param] {
							pl[al.Param] = true
							changed = true
						}
					}
					for c := range netRelease[ev.Callee] {
						after := popHeld(held, c, -1)
						if len(after) == len(held) && !nr[c] {
							nr[c] = true // wrapper-of-wrapper: propagate up
							changed = true
						}
						held = after
					}
					held = append(held, resolveEscaping(escaping[ev.Callee], ev.ArgLocks)...)
				}
			}
			// Deferred unlocks run at return: drop them before deciding
			// what escapes.
			for _, d := range deferred {
				held = popHeld(held, d.class, d.param)
			}
			if !heldEqual(escaping[fn], held) {
				escaping[fn] = append([]heldLock(nil), held...)
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Second pass: replay each function's event stream against the
	// interprocedural facts, collecting held-before-acquired edges.
	edges := make(map[edgeKey]edgeInfo)
	addEdge := func(from, to string, pos token.Pos, fn string) {
		if from == "" || to == "" {
			return
		}
		k := edgeKey{from, to}
		if _, ok := edges[k]; !ok {
			edges[k] = edgeInfo{pos, fn}
		}
	}
	for _, fi := range funcs {
		name := funcDisplayName(fi.Obj)
		var held []heldLock
		for _, ev := range fi.Sum.Locks {
			switch ev.Kind {
			case lockAcquire:
				for _, h := range held {
					addEdge(h.class, ev.Class, ev.Pos, name)
				}
				if ev.Class != "" || ev.Param >= 0 {
					held = append(held, heldLock{ev.Class, ev.Param})
				}
			case lockRelease:
				held = popHeld(held, ev.Class, ev.Param)
			case lockDeferRelease:
				// Runs at return; the lock stays held for the rest of the
				// body.
			case lockCall:
				if prog.Funcs[ev.Callee] == nil {
					continue
				}
				acquired := make(map[string]bool)
				for c := range trans[ev.Callee] {
					acquired[c] = true
				}
				for _, al := range ev.ArgLocks {
					if paramLocks[ev.Callee][al.Index] && al.Class != "" {
						acquired[al.Class] = true
					}
				}
				for _, h := range held {
					for _, c := range sortedKeys(acquired) {
						addEdge(h.class, c, ev.Pos, name)
					}
				}
				for c := range netRelease[ev.Callee] {
					held = popHeld(held, c, -1)
				}
				held = append(held, resolveEscaping(escaping[ev.Callee], ev.ArgLocks)...)
			}
		}
	}

	// Cycles = edges inside one strongly-connected component (self-edges
	// included: re-acquiring a class while holding it deadlocks unless an
	// external ordering — key order over stripes — makes it safe).
	scc := tarjanSCC(edges)
	var keys []edgeKey
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := edges[keys[i]], edges[keys[j]]
		return a.pos < b.pos
	})
	for _, k := range keys {
		if k.from == k.to {
			e := edges[k]
			pass.Reportf(e.pos, "%s acquires %s while already holding it; safe only under an external ordering (document with //lint:ignore)",
				e.fn, prog.shortName(k.from))
			continue
		}
		if scc[k.from] != scc[k.to] {
			continue
		}
		e := edges[k]
		pass.Reportf(e.pos, "%s acquires %s while holding %s, but the reverse order also occurs: lock-order cycle",
			e.fn, prog.shortName(k.to), prog.shortName(k.from))
	}
	return nil
}

// popHeld removes every held instance of the released class (or parameter,
// for untracked-class parameter locks). Dropping all instances — not just
// the most recent — compensates for path-insensitivity: an if/else that
// acquires the same class in both branches contributes both acquisitions
// to the linear event stream, but only one branch's release runs, and
// keeping phantom instances held would fabricate escaping locks and
// cycles. The cost is missing an order edge taken while a *second* real
// instance of a class is still held after the first is released — a
// pattern the codebase avoids (stripe pairs release together).
func popHeld(held []heldLock, class string, param int) []heldLock {
	out := held[:0]
	for _, h := range held {
		match := (class != "" && h.class == class) ||
			(class == "" && param >= 0 && h.param == param)
		if !match {
			out = append(out, h)
		}
	}
	return out
}

// resolveEscaping maps a callee's still-held-at-return locks into the
// caller's frame: parameter locks resolve through the call's mutex-pointer
// arguments.
func resolveEscaping(esc []heldLock, args []ArgLock) []heldLock {
	var out []heldLock
	for _, e := range esc {
		if e.param >= 0 {
			for _, al := range args {
				if al.Index == e.param && (al.Class != "" || al.Param >= 0) {
					out = append(out, heldLock{al.Class, al.Param})
					break
				}
			}
			continue
		}
		if e.class != "" {
			out = append(out, heldLock{e.class, -1})
		}
	}
	return out
}

func heldEqual(a, b []heldLock) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// tarjanSCC computes strongly-connected components of the class graph,
// returning a component id per node.
func tarjanSCC(edges map[edgeKey]edgeInfo) map[string]int {
	adj := make(map[string][]string)
	for k := range edges {
		adj[k.from] = append(adj[k.from], k.to)
		if _, ok := adj[k.to]; !ok {
			adj[k.to] = nil
		}
	}
	for _, vs := range adj {
		sort.Strings(vs)
	}
	var nodes []string
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	next, ncomp := 0, 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomp
				if w == v {
					break
				}
			}
			ncomp++
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return comp
}
