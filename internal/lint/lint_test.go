package lint

import (
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"testing"
)

// sharedLoader memoizes one Loader across golden tests so the standard
// library is source-typechecked once per test binary.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loader
}

// wantRE extracts the quoted regexps of one `// want "..."` comment.
var wantRE = regexp.MustCompile("// want (`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// runGolden loads testdata/src/<name>, runs the analyzer, and compares the
// diagnostics against the `// want` annotations, analysistest-style.
func runGolden(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	diags, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	checkWants(t, pkg, diags)
}

// runGoldenProgram is runGolden for the summary-engine analyzers: the
// fixture package becomes a one-target Program and the analyzer runs
// through RunOnProgram, suppressions included.
func runGoldenProgram(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	prog := BuildProgram(l, []*Package{pkg})
	diags, err := RunOnProgram(prog, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	checkWants(t, pkg, diags)
}

// checkWants compares diagnostics against the fixture's `// want`
// annotations, analysistest-style.
func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	var err error
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				raw := m[1]
				var pat string
				if raw[0] == '`' {
					pat = raw[1 : len(raw)-1]
				} else {
					pat, err = strconv.Unquote(raw)
					if err != nil {
						t.Fatalf("bad want %s: %v", raw, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", pat, err)
				}
				p := pkg.Fset.Position(c.Pos())
				k := key{file: p.Filename, line: p.Line}
				wants[k] = append(wants[k], re)
			}
		}
	}

	matched := make(map[*regexp.Regexp]bool)
	for _, d := range diags {
		k := key{file: d.Pos.Filename, line: d.Pos.Line}
		ok := false
		for _, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched[re] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if !matched[re] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none",
					filepath.Base(k.file), k.line, re)
			}
		}
	}
}

func TestGuardedByGolden(t *testing.T)  { runGolden(t, GuardedBy, "guardedby") }
func TestGoLeakGolden(t *testing.T)     { runGolden(t, GoLeak, "goleak") }
func TestErrWrapGolden(t *testing.T)    { runGolden(t, ErrWrap, "errwrap") }
func TestExhaustiveGolden(t *testing.T) { runGolden(t, OpcodeExhaustive, "opcode") }
func TestSpanPairGolden(t *testing.T)   { runGolden(t, SpanPair, "spanpair") }
func TestNetDeadlineGolden(t *testing.T) {
	runGolden(t, NetDeadline, "netdeadline")
}
func TestDeterminismGolden(t *testing.T) {
	runGolden(t, determinismAnalyzer([]string{"testdata/src/determinism"}), "determinism")
}

func TestLockOrderGolden(t *testing.T) { runGoldenProgram(t, LockOrder, "lockorder") }
func TestHotAllocGolden(t *testing.T)  { runGoldenProgram(t, HotAlloc, "hotalloc") }
func TestAtomicMixGolden(t *testing.T) { runGoldenProgram(t, AtomicMix, "atomicmix") }
func TestWireProtoGolden(t *testing.T) { runGoldenProgram(t, WireProto, "wireproto") }

// TestAsmBackedSummaries: body-less (assembly-backed) declarations stay in
// the program as AsmBacked leaves with empty fact sets, rather than being
// dropped at the module boundary like stdlib callees.
func TestAsmBackedSummaries(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "hotalloc"))
	if err != nil {
		t.Fatal(err)
	}
	prog := BuildProgram(l, []*Package{pkg})
	found := map[string]*Summary{}
	for _, fi := range prog.FuncsInOrder() {
		if fi.Sum.AsmBacked {
			if fi.Decl.Body != nil {
				t.Errorf("%s marked AsmBacked but has a body", fi.Obj.Name())
			}
			found[fi.Obj.Name()] = fi.Sum
		}
	}
	sum := found["asmAxpy"]
	if sum == nil {
		t.Fatalf("asmAxpy not summarized as AsmBacked; got %v", found)
	}
	if len(sum.Allocs) != 0 || len(sum.Locks) != 0 || len(sum.Calls) != 0 {
		t.Errorf("asmAxpy summary not empty: %+v", sum)
	}
	hot := found["hotAsmKernel"]
	if hot == nil || !hot.Hot {
		t.Fatalf("hotAsmKernel: want AsmBacked summary with Hot=true, got %+v", hot)
	}
}

// TestDeterminismOutOfScope: the analyzer must stay silent outside its
// configured packages even when the code uses global rand.
func TestDeterminismOutOfScope(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "determinism"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{determinismAnalyzer([]string{"internal/tensor"})})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package produced diagnostics: %v", diags)
	}
}

// TestLookup checks the analyzer registry used by shmlint -run.
func TestLookup(t *testing.T) {
	for _, a := range All {
		if Lookup(a.Name) != a {
			t.Errorf("Lookup(%q) did not return the analyzer", a.Name)
		}
	}
	if Lookup("nope") != nil {
		t.Error("Lookup of unknown name should be nil")
	}
}

// TestExpandPatterns exercises ./... expansion against this module.
func TestExpandPatterns(t *testing.T) {
	l := testLoader(t)
	dirs, err := l.ExpandPatterns([]string{"./internal/lint/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 {
		t.Fatalf("want exactly this package (testdata skipped), got %v", dirs)
	}
	single, err := l.ExpandPatterns([]string{"shmcaffe/internal/smb"})
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != 1 || filepath.Base(single[0]) != "smb" {
		t.Fatalf("import-path pattern: got %v", single)
	}
}

// TestDiagnosticString pins the file:line:col output format the driver
// prints and check.sh greps.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "errwrap", Message: "m"}
	d.Pos.Filename = "f.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	if got, want := d.String(), "f.go:3:7: errwrap: m"; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}
