package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// OpcodeExhaustive guards the SMB wire protocol's dispatch tables: for any
// named constant type declared in the package (the motivating case is
// `opcode` in internal/smb/protocol.go) that is switched on somewhere in
// the package, every declared constant of that type must appear as a case
// in at least one of those switches. This catches the classic drift bug —
// a new opcode added to protocol.go whose handler never lands in
// server.go, so clients get "unknown opcode" from a server that claims to
// speak the version. Coverage is the union over all switches in the
// package, because dispatch chains are split across handlers
// (dispatch → dispatchNotify).
var OpcodeExhaustive = &Analyzer{
	Name: "opcode",
	Doc:  "every constant of a locally-declared switched-on type needs a dispatch case",
	Run:  runOpcodeExhaustive,
}

func runOpcodeExhaustive(pass *Pass) error {
	// Declared constants per locally-defined named type.
	type constInfo struct {
		obj *types.Const
		pos token.Pos
	}
	consts := make(map[*types.TypeName][]constInfo)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj().Pkg() != pass.Pkg {
			continue
		}
		consts[named.Obj()] = append(consts[named.Obj()], constInfo{obj: c, pos: c.Pos()})
	}
	if len(consts) == 0 {
		return nil
	}

	// Case coverage, unioned across every switch in the package.
	covered := make(map[*types.TypeName]map[string]bool) // type -> covered exact values
	switched := make(map[*types.TypeName]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			t := pass.TypesInfo.TypeOf(sw.Tag)
			named, ok := t.(*types.Named)
			if !ok {
				return true
			}
			tn := named.Obj()
			if _, ok := consts[tn]; !ok {
				return true
			}
			switched[tn] = true
			if covered[tn] == nil {
				covered[tn] = make(map[string]bool)
			}
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, expr := range cc.List {
					if tv, ok := pass.TypesInfo.Types[expr]; ok && tv.Value != nil {
						covered[tn][tv.Value.ExactString()] = true
					}
				}
			}
			return true
		})
	}

	// Every constant of a switched-on type must be covered somewhere.
	for tn, list := range consts {
		if !switched[tn] {
			continue
		}
		for _, ci := range list {
			if !covered[tn][ci.obj.Val().ExactString()] {
				pass.Reportf(ci.pos, "constant %s of type %s has no case in any switch over %s",
					ci.obj.Name(), tn.Name(), tn.Name())
			}
		}
	}
	return nil
}
