package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism keeps the numeric core reproducible. The tensor and nn
// packages back every convergence experiment (EXPERIMENTS.md replays the
// paper's Fig. 8/9 accuracy curves from fixed seeds); a stray global
// math/rand call or wall-clock read makes a run unrepeatable and turns a
// convergence regression into a heisenbug. Inside the configured
// packages, randomness must come from an injected *rand.Rand (see
// tensor/rng.go) and time from an injected clock.
var Determinism = determinismAnalyzer(defaultDeterminismScope)

// defaultDeterminismScope lists the import-path suffixes that must stay
// deterministic.
var defaultDeterminismScope = []string{
	"internal/tensor",
	"internal/nn",
}

// determinismAnalyzer builds the analyzer for a given package scope; the
// golden tests instantiate it with the testdata package path.
func determinismAnalyzer(scope []string) *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc:  "no global math/rand or time.Now in deterministic numeric packages",
	}
	a.Run = func(pass *Pass) error {
		inScope := false
		for _, s := range scope {
			if pass.Pkg.Path() == s || strings.HasSuffix(pass.Pkg.Path(), "/"+s) {
				inScope = true
				break
			}
		}
		if !inScope {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				ident, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
				if !ok {
					return true
				}
				switch pn.Imported().Path() {
				case "math/rand", "math/rand/v2":
					// Constructors and type references are the sanctioned
					// way to build a seeded source; only the global-state
					// top-level functions are nondeterministic.
					fn, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
					if !isFunc {
						return true
					}
					switch fn.Name() {
					case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
						return true
					}
					pass.Reportf(sel.Pos(),
						"global math/rand.%s in deterministic package %s; use an injected seeded *rand.Rand",
						sel.Sel.Name, pass.Pkg.Path())
				case "time":
					if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
						pass.Reportf(sel.Pos(),
							"time.%s in deterministic package %s; inject a clock instead",
							sel.Sel.Name, pass.Pkg.Path())
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}
