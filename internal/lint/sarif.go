package lint

import (
	"encoding/json"
	"io"
)

// SARIF (Static Analysis Results Interchange Format, v2.1.0) is the
// interchange schema CI systems ingest natively (GitHub code scanning,
// among others). The structs below are the minimal valid subset: one run,
// one rule per analyzer, one result per diagnostic with a single physical
// location. Paths in results must already be module-relative with forward
// slashes — the driver normalizes before calling WriteSARIF.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log. analyzers becomes
// the rule table (every analyzer that ran, found something or not, so rule
// metadata is stable across runs).
func WriteSARIF(w io.Writer, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.Pos.Filename},
					Region: sarifRegion{
						StartLine:   d.Pos.Line,
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "shmlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
