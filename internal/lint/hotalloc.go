package lint

import (
	"go/token"
	"go/types"
)

// HotAlloc enforces the //shm:hotpath contract: a function carrying the
// directive — and every module function it transitively calls — must not
// allocate on the steady-state path. It is the static twin of the runtime
// alloc-guard tests: those prove one exercised path was allocation-free,
// this proves no path through the call tree allocates. The summary's
// exemptions (error construction on a return path, cap-guarded grow-only
// scratch, panic paths) encode the idioms the SMB data path deliberately
// uses; calls that escape the module (interface methods, func values) are
// invisible, a documented optimistic limit.
var HotAlloc = &Analyzer{
	Name:       "hotalloc",
	Doc:        "forbid allocations in //shm:hotpath functions and their callees",
	RunProgram: runHotAlloc,
}

func runHotAlloc(pass *ProgramPass) error {
	prog := pass.Prog
	reported := make(map[token.Pos]bool)
	for _, root := range prog.FuncsInOrder() {
		if !root.Sum.Hot {
			continue
		}
		// BFS the call tree so a site reached through several roots is
		// reported once, under the shortest chain from the first root.
		type node struct {
			fi    *FuncInfo
			chain string
		}
		visited := map[*types.Func]bool{root.Obj: true}
		queue := []node{{root, funcDisplayName(root.Obj)}}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, a := range cur.fi.Sum.Allocs {
				if a.Exempt != "" || reported[a.Pos] {
					continue
				}
				reported[a.Pos] = true
				pass.Reportf(a.Pos, "allocation on hot path %s: %s", cur.chain, a.What)
			}
			for _, cs := range cur.fi.Sum.Calls {
				callee := prog.Funcs[cs.Callee]
				if callee == nil || visited[cs.Callee] {
					continue
				}
				visited[cs.Callee] = true
				queue = append(queue, node{callee, cur.chain + " -> " + funcDisplayName(cs.Callee)})
			}
		}
	}
	return nil
}
