package netdeadline

import (
	"io"
	"net"
	"time"
)

// dialNoTimeout: package-level net.Dial is always flagged.
func dialNoTimeout() (net.Conn, error) {
	return net.Dial("tcp", "127.0.0.1:7700") // want `net\.Dial blocks without a connect timeout`
}

// dialBounded: the timeout variants pass.
func dialBounded() (net.Conn, error) {
	return net.DialTimeout("tcp", "127.0.0.1:7700", time.Second)
}

// readNaked: conn I/O in a function with no Set*Deadline.
func readNaked(c net.Conn, buf []byte) error {
	if _, err := c.Read(buf); err != nil { // want `Read on a net connection without any Set\*Deadline`
		return err
	}
	_, err := c.Write(buf) // want `Write on a net connection without any Set\*Deadline`
	return err
}

// readFullNaked: io.ReadFull over a net connection is the same hazard.
func readFullNaked(c *net.TCPConn, buf []byte) error {
	_, err := io.ReadFull(c, buf) // want `io\.ReadFull on a net connection without any Set\*Deadline`
	return err
}

// udpNaked: the datagram variants count too.
func udpNaked(c *net.UDPConn, buf []byte) error {
	_, _, err := c.ReadFromUDP(buf) // want `ReadFromUDP on a net connection without any Set\*Deadline`
	return err
}

// readDeadlined: one Set*Deadline call blesses the function's I/O.
func readDeadlined(c net.Conn, buf []byte) error {
	if err := c.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := io.ReadFull(c, buf)
	return err
}

// readFullNotNet: io.ReadFull over a non-net reader is out of scope.
func readFullNotNet(r io.Reader, buf []byte) error {
	_, err := io.ReadFull(r, buf)
	return err
}

// readerPump deliberately blocks until Close; the directive documents it.
//
//lint:ignore netdeadline lifetime bounded by Close from the owner
func readerPump(c net.Conn, buf []byte) {
	for {
		if _, err := c.Read(buf); err != nil {
			return
		}
	}
}
