// Package errwrap is golden-file input for the errwrap analyzer.
package errwrap

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

func wrapped() error {
	return fmt.Errorf("context: %w", errBase)
}

func noErrorOperand(n int) error {
	return fmt.Errorf("code %d at 100%%", n)
}

func unwrapped() error {
	return fmt.Errorf("context: %v", errBase) // want `1 error operand\(s\) but format .* has 0`
}

func halfWrapped(err error) error {
	return fmt.Errorf("a %w b %v", errBase, err) // want `2 error operand\(s\) but format .* has 1`
}

func dynamicFormat(format string, err error) error {
	return fmt.Errorf(format, err) // dynamic format string: out of scope
}

func indexedVerb(err error) error {
	return fmt.Errorf("wrapped %[1]w", err)
}
