// Package hotalloc is the golden corpus for the hotalloc analyzer: a
// //shm:hotpath root whose own body uses only the exempt idioms
// (cap-guarded scratch, grow-only buffer append, error construction on a
// return path) but calls a deliberately allocating helper, which must be
// flagged transitively with the call chain in the message.
package hotalloc

import "fmt"

type buffer struct {
	scratch []byte
	buf     []byte
}

//shm:hotpath
func (b *buffer) hot(n int, data []byte) error {
	if n < 0 {
		return fmt.Errorf("negative size %d", n)
	}
	if cap(b.scratch) < n {
		b.scratch = make([]byte, n)
	}
	b.scratch = b.scratch[:n]
	b.buf = append(b.buf, data...)
	asmAxpy(1, data, b.scratch)
	b.leaky(n)
	return nil
}

// asmAxpy is a body-less declaration backed by assembly. The summary engine
// must keep it in the program as an AsmBacked leaf — no crash on the nil
// body, no diagnostic for the call above (assembly cannot heap-allocate),
// and no silent drop that would hide it from the call graph.
//
//go:noescape
func asmAxpy(alpha float32, x, y []byte)

// hotAsmKernel is an assembly-backed hot root: the directive is legal on a
// body-less declaration and its empty summary yields no findings.
//
//shm:hotpath
func hotAsmKernel(x, y []byte)

// leaky is reached from the hot root and allocates four distinct ways.
func (b *buffer) leaky(n int) {
	_ = make([]int, n)      // want `allocation on hot path \(\*buffer\)\.hot -> \(\*buffer\)\.leaky: make`
	local := []int{1, 2, 3} // want `slice literal \[\]int`
	_ = append(local, n)    // want `append may grow`
	f := func() { _ = n }   // want `function literal \(closure\)`
	f()
	sink(n) // want `interface boxing of int`
}

func sink(v any) { _ = v }

// cold is not reachable from any hot root: allocations are fine here.
func cold() []byte {
	return make([]byte, 64)
}
