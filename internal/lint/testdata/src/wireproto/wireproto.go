// Package wireproto is the golden corpus for the wireproto analyzer: an
// opcode space with one constant missing its server-dispatch arm (the
// hand-maintenance failure the analyzer exists for), one never encoded,
// one duplicating a wire value, a raw-literal case label, and dispatch
// arms that do / do not record a latency observation.
package wireproto

type opcode byte

const (
	opPing   opcode = 1
	opStore  opcode = 2
	opDrop   opcode = 3 // want `opcode opDrop \(value 3\) has no dispatch arm in any switch over opcode`
	opStatus opcode = 4 // want `opcode opStatus is never encoded: no call puts it on the wire`
	opAlias  opcode = 2 // want `opcode opAlias reuses wire value 2 of opStore`
	opFetch  opcode = 5
	opFlush  opcode = 6
	opHello  opcode = 7
)

// hist stands in for a telemetry histogram.
type hist struct{}

func (hist) Observe(v int64)         {}
func (hist) ObserveSeconds(ns int64) {}

// Span stands in for a telemetry span, whose End records the sample.
type Span struct{}

func (Span) End() {}

type tracer struct{}

func (tracer) Begin(phase int) Span { return Span{} }

var lat hist
var tr tracer

func handleStore(payload []byte) { applyStore(payload) }

func applyStore(payload []byte) {
	_ = payload
	lat.ObserveSeconds(1)
}

func work() {}

func dispatch(op opcode, payload []byte) {
	switch op {
	case opPing:
		lat.Observe(1) // direct observation
	case opStore:
		handleStore(payload) // observes two calls deep
	case opStatus: // want `dispatch arm for opStatus records no latency observation`
		work()
	case opFetch:
		sp := tr.Begin(1)
		work()
		sp.End() // Span.End counts as the observation
	case opFlush: // want `dispatch arm for opFlush records no latency observation`
	//lint:ignore wireproto hello is control-plane: one frame per session, no data-path latency
	case opHello:
		work()
	case 9: // want `raw literal case in switch over opcode; use the named op\* constant`
		lat.Observe(1)
	}
}

func send(op opcode, payload []byte) {
	_ = op
	_ = payload
}

func client() {
	send(opPing, nil)
	send(opStore, nil)
	send(opDrop, nil)
	send(opAlias, nil)
	send(opFetch, nil)
	send(opFlush, nil)
	send(opHello, nil)
}
