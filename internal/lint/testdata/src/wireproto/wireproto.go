// Package wireproto is the golden corpus for the wireproto analyzer: an
// opcode space with one constant missing its server-dispatch arm (the
// hand-maintenance failure the analyzer exists for), one never encoded,
// one duplicating a wire value, and a raw-literal case label. The phase
// enum at the bottom is a control: switched on, but not a wire protocol.
package wireproto

type opcode byte

const (
	opPing   opcode = 1
	opStore  opcode = 2
	opDrop   opcode = 3 // want `opcode opDrop \(value 3\) has no dispatch arm in any switch over opcode`
	opStatus opcode = 4 // want `opcode opStatus is never encoded: no call puts it on the wire`
	opAlias  opcode = 2 // want `opcode opAlias reuses wire value 2 of opStore`
)

func dispatch(op opcode) {
	switch op {
	case opPing:
	case opStore:
	case opStatus:
	case 9: // want `raw literal case in switch over opcode; use the named op\* constant`
	}
}

func send(op opcode, payload []byte) {
	_ = op
	_ = payload
}

func client() {
	send(opPing, nil)
	send(opStore, nil)
	send(opDrop, nil)
	send(opAlias, nil)
}
