// Package lockorder is the golden corpus for the lockorder analyzer: a
// seeded two-lock deadlock cycle (direct and through a callee), a
// self-edge through a lock-and-return-held helper like smb's lockWait, a
// consistently-ordered pair that must stay silent, and a suppressed
// self-edge proving //lint:ignore flows through the program engine.
package lockorder

import "sync"

type Table struct{ mu sync.Mutex }

type Journal struct{ mu sync.Mutex }

// transferAB locks the table, then the journal.
func transferAB(t *Table, j *Journal) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j.mu.Lock() // want `transferAB acquires lockorder\.Journal\.mu while holding lockorder\.Table\.mu, but the reverse order also occurs: lock-order cycle`
	defer j.mu.Unlock()
}

// transferBA locks in the opposite order: the seeded deadlock.
func transferBA(t *Table, j *Journal) {
	j.mu.Lock()
	defer j.mu.Unlock()
	t.mu.Lock() // want `transferBA acquires lockorder\.Table\.mu while holding lockorder\.Journal\.mu, but the reverse order also occurs: lock-order cycle`
	defer t.mu.Unlock()
}

type Stats struct{ mu sync.Mutex }

type Index struct{ mu sync.Mutex }

// statsThenIndex takes Index.mu through a callee: the edge must be found
// interprocedurally, at the call site.
func statsThenIndex(s *Stats, i *Index) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lockIndex(i) // want `statsThenIndex acquires lockorder\.Index\.mu while holding lockorder\.Stats\.mu, but the reverse order also occurs: lock-order cycle`
	i.mu.Unlock()
}

func lockIndex(i *Index) {
	i.mu.Lock()
}

// indexThenStats is the reverse order, closing the cycle.
func indexThenStats(s *Stats, i *Index) {
	i.mu.Lock()
	s.mu.Lock() // want `indexThenStats acquires lockorder\.Stats\.mu while holding lockorder\.Index\.mu, but the reverse order also occurs: lock-order cycle`
	s.mu.Unlock()
	i.mu.Unlock()
}

type striped struct{ locks [4]sync.Mutex }

// acquire locks mu and returns still holding it, like smb's lockWait; the
// analyzer must learn "parameter 0 escapes locked" from the summary.
func acquire(mu *sync.Mutex) { mu.Lock() }

// pair re-acquires its own stripe class while holding it: safe only under
// a key ordering the model cannot see, so it must be flagged.
func (s *striped) pair(a, b int) {
	acquire(&s.locks[a])
	acquire(&s.locks[b]) // want `\(\*striped\)\.pair acquires lockorder\.striped\.locks while already holding it`
	s.locks[b].Unlock()
	s.locks[a].Unlock()
}

type Meta struct{ mu sync.Mutex }

// metaThenTable nests in one consistent order; no cycle, no finding.
func metaThenTable(m *Meta, t *Table) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t.mu.Lock()
	t.mu.Unlock()
}

type ring struct{ slots [2]sync.Mutex }

// advance re-locks its own class in slot order; the slot index is the
// external ordering, documented via the suppression.
func (r *ring) advance() {
	r.slots[0].Lock()
	//lint:ignore lockorder slot index order makes the re-acquisition safe
	r.slots[1].Lock()
	r.slots[1].Unlock()
	r.slots[0].Unlock()
}
