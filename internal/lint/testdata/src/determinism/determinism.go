// Package determinism is golden-file input for the determinism analyzer.
package determinism

import (
	"math/rand"
	"time"
)

func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // sanctioned: explicit seed
	return rng.Float64()
}

func globalRand() float64 {
	return rand.Float64() // want `global math/rand\.Float64`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want `global math/rand\.Shuffle`
		xs[i], xs[j] = xs[j], xs[i]
	})
}

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now in deterministic package`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in deterministic package`
}

func durationOK() time.Duration {
	return 5 * time.Millisecond // type/const references to time are fine
}
