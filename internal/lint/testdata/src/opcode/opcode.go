// Package opcode is golden-file input for the opcode-exhaustiveness
// analyzer.
package opcode

type op byte

const (
	opA op = iota + 1
	opB
	opC // want `constant opC of type op has no case in any switch over op`
)

func dispatch(o op) int {
	switch o {
	case opA:
		return 1
	case opB:
		return 2
	default:
		return 0
	}
}

// verb's constants are covered by the union of two switches, mirroring the
// SMB server's dispatch → dispatchNotify chain.
type verb int

const (
	va verb = iota
	vb
)

func first(v verb) bool {
	switch v {
	case va:
		return true
	}
	return false
}

func second(v verb) bool {
	switch v {
	case vb:
		return true
	}
	return false
}

// color is never switched on, so it is not checked.
type color int

const (
	red color = iota
	blue
)

func colorName(c color) string {
	if c == red {
		return "red"
	}
	return "blue"
}
