// Package goleak is golden-file input for the goleak analyzer.
package goleak

import (
	"context"
	"sync"
)

func waitGroupTied() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

func selectTied(stop chan struct{}, work chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-work:
			}
		}
	}()
}

func ctxTied(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func oneShotSend() chan error {
	ch := make(chan error, 1)
	go func() { ch <- nil }()
	return ch
}

func rangeTied(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// workerPool mirrors internal/parallel.NewPool: long-lived workers are
// tied twice over — a WaitGroup joined on Close, and a range over the job
// channel that exits when the channel is closed. Either alone satisfies
// the analyzer; this case pins the combined worker-pool shape.
type workerPool struct {
	wg   sync.WaitGroup
	jobs chan func()
}

func workerPoolTied(p *workerPool) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for job := range p.jobs {
			job()
		}
	}()
}

func leak(counter *int) {
	go func() { // want `goroutine literal has no WaitGroup\.Done`
		for {
			*counter++
		}
	}()
}

func leakIgnored(counter *int) {
	//lint:ignore goleak runs for the process lifetime by design
	go func() {
		for {
			*counter++
		}
	}()
}

func namedFunc() {
	go waitGroupTied() // named call: out of scope for this analyzer
}
