// Package guardedby is golden-file input for the guardedby analyzer.
package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func newCounter() *counter {
	return &counter{n: 1} // composite-literal init: not an access
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) bad() int {
	return c.n // want `c\.n accessed without holding c\.mu`
}

func (c *counter) inlineIgnored() int {
	return c.n //lint:ignore guardedby caller holds the lock
}

//lint:ignore guardedby runs before the counter is shared
func (c *counter) funcIgnored() {
	c.n++
}

// incLocked follows the *Locked naming convention: the caller holds c.mu,
// so the function body is exempt.
func (c *counter) incLocked() {
	c.n++
}

func (c *counter) callsLocked() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.incLocked()
}

type rw struct {
	mu sync.RWMutex
	// data is the byte payload.
	// guarded by mu
	data []byte
}

func (r *rw) read(dst []byte) {
	r.mu.RLock()
	copy(dst, r.data)
	r.mu.RUnlock()
}

func (r *rw) badLen() int {
	return len(r.data) // want `r\.data accessed without holding r\.mu`
}

type owner struct {
	c counter
}

func (o *owner) nestedGood() int {
	o.c.mu.Lock()
	defer o.c.mu.Unlock()
	return o.c.n
}

func (o *owner) nestedBad() int {
	return o.c.n // want `o\.c\.n accessed without holding o\.c\.mu`
}

func useAll() {
	c := newCounter()
	_ = c.good()
	_ = c.bad()
	_ = c.inlineIgnored()
	c.funcIgnored()
	c.callsLocked()
	r := &rw{}
	r.read(nil)
	_ = r.badLen()
	o := &owner{}
	_ = o.nestedGood()
	_ = o.nestedBad()
}
