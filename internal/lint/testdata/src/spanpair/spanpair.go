// Package spanpair is golden-file input for the spanpair analyzer. It
// models the telemetry tracer structurally: a method named Begin returning
// a type named Span with an End method.
package spanpair

// Span stands in for telemetry.Span.
type Span struct{ id int }

// End records the span.
func (s Span) End() {}

// TraceContext stands in for telemetry.TraceContext.
type TraceContext struct{ TraceID uint64 }

// Tracer stands in for telemetry.Trainer.
type Tracer struct{}

// Begin opens a span.
func (Tracer) Begin(phase int) Span { return Span{} }

// BeginTraced opens a span carrying a propagated trace context — the
// server-side variant. Same Begin/End discipline.
func (Tracer) BeginTraced(phase int, tc TraceContext) Span { return Span{} }

func work()          {}
func failing() error { return nil }
func cond() bool     { return false }

// --- accepted shapes ---

func okImmediate(t Tracer) {
	sp := t.Begin(1)
	work()
	sp.End()
}

func okDefer(t Tracer) error {
	sp := t.Begin(1)
	defer sp.End()
	if err := failing(); err != nil {
		return err
	}
	return nil
}

func okEndBeforeErrorCheck(t Tracer) error {
	sp := t.Begin(1)
	err := failing()
	sp.End()
	if err != nil {
		return err
	}
	return nil
}

func okEndOnBothPaths(t Tracer) error {
	sp := t.Begin(1)
	if err := failing(); err != nil {
		sp.End()
		return err
	}
	sp.End()
	return nil
}

// okEscapeReturn hands the span to the caller, who owns the End.
func okEscapeReturn(t Tracer) Span {
	sp := t.Begin(1)
	return sp
}

// okEscapeCall hands the span to another function.
func okEscapeCall(t Tracer) {
	sp := t.Begin(1)
	finish(sp)
}

func finish(sp Span) { sp.End() }

// okSwitchCase: spans opened in case bodies are checked there.
func okSwitchCase(t Tracer, k int) {
	switch k {
	case 0:
		sp := t.Begin(0)
		work()
		sp.End()
	}
}

// okTraced: BeginTraced follows the same accepted shapes.
func okTraced(t Tracer, tc TraceContext) {
	sp := t.BeginTraced(1, tc)
	defer sp.End()
	work()
}

// --- violations ---

func badDiscard(t Tracer) {
	t.Begin(1) // want `result of Begin discarded`
	work()
}

func badBlank(t Tracer) {
	_ = t.Begin(1) // want `result of Begin discarded`
	work()
}

func badReturnBeforeEnd(t Tracer) error {
	sp := t.Begin(1) // want `span sp may return without End`
	if err := failing(); err != nil {
		return err
	}
	sp.End()
	return nil
}

func badFallThrough(t Tracer) {
	sp := t.Begin(1) // want `span sp is not ended`
	if cond() {
		sp.End()
	}
}

func badCase(t Tracer, k int) {
	switch k {
	case 0:
		sp := t.Begin(0) // want `span sp is not ended`
		if cond() {
			sp.End()
		}
	}
}

func badTracedDiscard(t Tracer, tc TraceContext) {
	t.BeginTraced(1, tc) // want `result of BeginTraced discarded`
	work()
}

func badTracedReturn(t Tracer, tc TraceContext) error {
	sp := t.BeginTraced(1, tc) // want `span sp may return without End`
	if err := failing(); err != nil {
		return err
	}
	sp.End()
	return nil
}

// suppressed shows the standard escape hatch.
func suppressed(t Tracer) {
	//lint:ignore spanpair the span is ended by a helper the analyzer cannot model
	sp := t.Begin(1)
	if cond() {
		sp.End()
	}
}
