// Package atomicmix is the golden corpus for the atomicmix analyzer: a
// struct field and a package variable each updated through sync/atomic in
// one function and read or written plainly in another — the cross-function
// race the per-package analyzers could never connect.
package atomicmix

import "sync/atomic"

type counters struct {
	hits  int64
	grace int64
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) read() int64 {
	return c.hits // want `plain read of hits, which is accessed atomically`
}

func (c *counters) reset() {
	c.hits = 0 // want `plain write of hits, which is accessed atomically`
}

// grace is only ever accessed plainly; consistent, so silent.
func (c *counters) graceful() int64 {
	c.grace++
	return c.grace
}

var generation int64

func bumpGen() {
	atomic.AddInt64(&generation, 1)
}

func readGen() int64 {
	return generation // want `plain read of generation, which is accessed atomically`
}
