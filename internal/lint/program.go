package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Program is the cross-package view the summary-engine analyzers consume:
// the module-local import closure of the analysis targets, with one
// Summary per function (locks acquired, allocations performed, atomic vs.
// plain field accesses, opcode roles, static callees). Analyzers walk
// summaries and the call graph instead of re-visiting ASTs, so an
// interprocedural property — "everything Store.Accumulate transitively
// calls is allocation-free" — is a graph traversal, not a type-checker
// pass.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	// Pkgs is the module-local closure of the targets, sorted by path.
	Pkgs []*Package
	// Funcs maps every function/method declared in Pkgs to its summary.
	Funcs map[*types.Func]*FuncInfo

	// funcs is Funcs in declaration order (file, then position) for
	// deterministic analyzer output.
	funcs []*FuncInfo
}

// FuncInfo is one declared function with its summary.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	Sum  *Summary
}

// BuildProgram assembles the Program for the given target packages: the
// targets plus every module-local package they transitively import (the
// loader memoizes those during type-checking, so no extra parsing
// happens). Standard-library packages are outside the program — calls into
// them are resolved by name against small allow/deny lists, never
// traversed.
func BuildProgram(l *Loader, targets []*Package) *Program {
	prog := &Program{
		Fset:       l.Fset,
		ModulePath: l.ModulePath(),
		Funcs:      make(map[*types.Func]*FuncInfo),
	}
	seen := make(map[string]bool)
	var queue []*Package
	add := func(p *Package) {
		if p != nil && !seen[p.Path] {
			seen[p.Path] = true
			queue = append(queue, p)
			prog.Pkgs = append(prog.Pkgs, p)
		}
	}
	for _, t := range targets {
		add(t)
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, imp := range p.Types.Imports() {
			if l.local(imp.Path()) {
				add(l.Loaded(imp.Path()))
			}
		}
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })

	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				// Body-less declarations (assembly-backed kernels) stay in
				// the program: summarize marks them AsmBacked with an empty
				// fact set, so call chains through them resolve instead of
				// silently falling off the module boundary.
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
				fi.Sum = summarize(fi)
				prog.Funcs[obj] = fi
				prog.funcs = append(prog.funcs, fi)
			}
		}
	}
	sort.Slice(prog.funcs, func(i, j int) bool {
		a := prog.Fset.Position(prog.funcs[i].Decl.Pos())
		b := prog.Fset.Position(prog.funcs[j].Decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return prog
}

// FuncsInOrder returns every summarized function in deterministic
// (file, position) order.
func (p *Program) FuncsInOrder() []*FuncInfo { return p.funcs }

// shortName trims the module path off a qualified name for display:
// "shmcaffe/internal/smb.Store.mu" → "smb.Store.mu".
func (p *Program) shortName(qualified string) string {
	if i := strings.LastIndex(qualified, "/"); i >= 0 {
		return qualified[i+1:]
	}
	return qualified
}

// funcDisplayName renders a function for diagnostics: "(*Store).Accumulate"
// for methods, "accumulateChunk" for plain functions, qualified with the
// package name when fn is not in the same package as the diagnostic
// context is ambiguous (we always include it for clarity across packages).
func funcDisplayName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		if named, ok := t.(*types.Named); ok {
			return "(" + ptr + named.Obj().Name() + ")." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
