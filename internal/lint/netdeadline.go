package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NetDeadline enforces the failure-model discipline DESIGN.md §12 commits
// the SMB data path to: blocking network I/O must be bounded. A worker that
// blocks forever on a dead memory server stalls the whole termination
// alignment — exactly the WaitUpdate hang this PR series fixed — so the
// analyzer flags
//
//   - net.Dial, which has no connect timeout (use net.DialTimeout or a
//     net.Dialer with Timeout/Context), and
//   - Read/Write-family method calls on net connection types (and
//     io.ReadFull over one) inside functions that never call a
//     Set*Deadline method.
//
// The deadline check is per enclosing function: one Set*Deadline call
// anywhere in the function blesses its blocking calls, mirroring the
// "deadline armed before every frame" pattern of smb.StreamClient. Code
// that deliberately blocks until Close (e.g. a reader pump whose lifetime
// a Close call bounds) documents that with //lint:ignore netdeadline.
var NetDeadline = &Analyzer{
	Name: "netdeadline",
	Doc:  "blocking net calls need a deadline: no net.Dial, no un-deadlined conn I/O",
	Run:  runNetDeadline,
}

// netBlockingMethods are the conn methods that park the goroutine until the
// peer (or the kernel buffer) cooperates.
var netBlockingMethods = map[string]bool{
	"Read": true, "Write": true,
	"ReadFrom": true, "WriteTo": true,
	"ReadFromUDP": true, "WriteToUDP": true,
	"ReadMsgUDP": true, "WriteMsgUDP": true,
}

func runNetDeadline(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkNetDeadlineFunc(pass, fd)
		}
	}
	return nil
}

func checkNetDeadlineFunc(pass *Pass, fd *ast.FuncDecl) {
	type finding struct {
		call *ast.CallExpr
		what string
	}
	var blocking []finding
	hasDeadline := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if strings.HasPrefix(name, "Set") && strings.HasSuffix(name, "Deadline") {
			hasDeadline = true
			return true
		}
		if isPkgFunc(pass, sel, "net", "Dial") {
			// Unconditional: even a deadline-disciplined function cannot
			// bound the connect itself after the fact.
			pass.Reportf(call.Pos(), "net.Dial blocks without a connect timeout; use net.DialTimeout or a net.Dialer")
			return true
		}
		if isPkgFunc(pass, sel, "io", "ReadFull") && len(call.Args) > 0 &&
			isNetConnType(pass.TypesInfo.TypeOf(call.Args[0])) {
			blocking = append(blocking, finding{call, "io.ReadFull on a net connection"})
			return true
		}
		if netBlockingMethods[name] && isNetConnType(pass.TypesInfo.TypeOf(sel.X)) {
			blocking = append(blocking, finding{call, name + " on a net connection"})
		}
		return true
	})
	if hasDeadline {
		return
	}
	for _, b := range blocking {
		pass.Reportf(b.call.Pos(), "%s without any Set*Deadline in %s; bound it or //lint:ignore netdeadline with the lifetime argument", b.what, fd.Name.Name)
	}
}

// isPkgFunc reports whether sel names the package-level function pkg.name.
func isPkgFunc(pass *Pass, sel *ast.SelectorExpr, pkg, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkg && fn.Type().(*types.Signature).Recv() == nil
}

// isNetConnType reports whether t is (a pointer to) a type declared in
// package net — net.Conn, *net.TCPConn, *net.UDPConn, net.PacketConn, …
func isNetConnType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "net"
}
