package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// GuardedBy enforces the repository's mutex-annotation convention: a
// struct field whose comment says "guarded by <mu>" may only be touched in
// functions that lock <mu> on the same base expression. The check is
// flow-insensitive — it demands a matching <base>.<mu>.Lock() or .RLock()
// call anywhere in the enclosing function — which is exactly the coarse
// guarantee the SMB store relies on (every method takes the lock before
// the table access, Fig. 6's T1/T2 exclusion). Initialisation paths that
// run before the value is shared can opt out with a function-level
// //lint:ignore guardedby directive.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  `fields commented "guarded by <mu>" must only be accessed under that mutex`,
	Run:  runGuardedBy,
}

var guardedByRE = regexp.MustCompile(`guarded by (\w+)`)

func runGuardedBy(pass *Pass) error {
	// Pass 1: collect annotated fields declared in this package.
	guards := make(map[*types.Var]string) // field object -> mutex field name
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := fieldGuard(field)
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[v] = guard
					}
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return nil
	}

	// Pass 2: check every function. Functions named *Locked declare by
	// convention that the caller already holds the lock, so they are
	// exempt (the call sites are still checked).
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			checkGuardedFunc(pass, fd, guards)
		}
	}
	return nil
}

// fieldGuard extracts the guard mutex name from a struct field's comments.
func fieldGuard(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkGuardedFunc verifies guarded-field accesses within one function
// (including nested function literals, which share the lock environment).
func checkGuardedFunc(pass *Pass, fd *ast.FuncDecl, guards map[*types.Var]string) {
	// Lock set: printed receiver expressions of every Lock/RLock call.
	locked := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
			full := fn.FullName()
			if strings.HasPrefix(full, "(*sync.") {
				locked[types.ExprString(sel.X)] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		guard, ok := guards[v]
		if !ok {
			return true
		}
		want := types.ExprString(sel.X) + "." + guard
		if !locked[want] {
			pass.Reportf(sel.Pos(), "%s accessed without holding %s",
				types.ExprString(sel), want)
		}
		return true
	})
}
