package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoLeak requires every `go func(...) {...}()` literal to have a visible
// exit/join path, the discipline the SMB server's conn-handler pattern
// established (Server.Serve: wg.Add before the go statement, defer
// wg.Done inside). A goroutine literal is accepted when its body
//
//   - calls Done on a sync.WaitGroup (joinable),
//   - receives from a channel or contains a select/range-over-channel
//     (ctx/closed-channel exit path), or
//   - is a single one-shot channel send (result handoff).
//
// Long-lived worker pools (internal/parallel.NewPool) pass on both counts
// at once: each worker ranges over the job channel (closed by Close) and
// defers WaitGroup.Done (joined by Close). "Long-lived" is therefore fine
// as long as something still owns the shutdown.
//
// Anything else is a goroutine whose lifetime nothing bounds — the kind of
// leak that turns a long-lived parameter-sharing process into an OOM.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "goroutine literals must be tied to a WaitGroup, channel/ctx exit path, or one-shot send",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true // named funcs manage their own lifetime
			}
			if !goroutineTied(pass, lit.Body) {
				pass.Reportf(gs.Pos(), "goroutine literal has no WaitGroup.Done, channel receive/select, or one-shot send; tie it to an exit path")
			}
			return true
		})
	}
	return nil
}

// goroutineTied reports whether the goroutine body shows one of the
// accepted lifetime patterns.
func goroutineTied(pass *Pass, body *ast.BlockStmt) bool {
	// One-shot result handoff: the whole body is a single channel send.
	if len(body.List) == 1 {
		if _, ok := body.List[0].(*ast.SendStmt); ok {
			return true
		}
	}
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			tied = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				tied = true
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					tied = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
					strings.HasPrefix(fn.FullName(), "(*sync.WaitGroup)") {
					tied = true
				}
			}
		}
		return !tied
	})
	return tied
}
