package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Summary is one function's facts, extracted in a single AST walk and
// consumed interprocedurally by the program analyzers. Events that matter
// for lock ordering (Locks) keep source order; everything else is a bag.
type Summary struct {
	// Hot is set by a //shm:hotpath directive in the function's doc
	// comment: the function and everything it transitively calls inside
	// the module must be allocation-free on the steady-state path.
	Hot bool

	// AsmBacked marks a body-less declaration implemented in assembly (or
	// provided by the linker). Its summary is empty by construction — Go
	// assembly cannot heap-allocate or take a sync lock without calling
	// back into Go — so the engine treats it as a verified leaf: hotalloc
	// traverses through it without flagging, lockorder sees no events.
	AsmBacked bool

	// Locks is the in-order stream of lock acquisitions, releases, and
	// calls, the input to the lockorder simulation.
	Locks []LockEvent

	// Allocs are the function's heap-allocation sites. Sites the model
	// excuses (error construction on a return path, cap-guarded grow-only
	// scratch, ...) carry a non-empty Exempt reason and are kept so the
	// engine's decisions stay inspectable.
	Allocs []AllocSite

	// Fields are accesses to atomic-capable struct fields and package
	// vars, split into sync/atomic accesses and plain ones.
	Fields []FieldUse

	// Opcodes are uses of op*-named constants with the syntactic role the
	// use plays in the wire protocol (encode argument, dispatch case,
	// other).
	Opcodes []OpcodeUse

	// Switches are the switch statements over locally-declared constant
	// types, with the exact values their cases cover and the positions of
	// case labels that are not named constants.
	Switches []ConstSwitch

	// Calls are the function's statically-resolved callees (module and
	// stdlib alike), deduplicated, first call position kept.
	Calls []CallSite
}

// Lock event kinds. A deferred release keeps the lock held for the rest of
// the body (the event stream position is where the defer is *written*, not
// where it runs) but counts as released at function exit, so the lock does
// not escape to callers.
const (
	lockAcquire = iota
	lockRelease
	lockDeferRelease
	lockCall
)

// LockEvent is one step of the lockorder simulation: acquiring or
// releasing a mutex, or calling a function that may do either.
type LockEvent struct {
	Kind  int
	Class string // resolved lock class; "" when untracked (local mutex)
	// Param is >= 0 when the mutex is the function's own pointer
	// parameter (the lockWait(&seg.locks[i]) helper pattern): the class
	// is resolved at each call site instead.
	Param  int
	RLock  bool
	Pos    token.Pos
	Callee *types.Func // Kind == lockCall
	// ArgLocks records mutex-pointer arguments of the call so a callee's
	// parameter locks resolve to caller-side classes.
	ArgLocks []ArgLock
}

// ArgLock is one *sync.Mutex / *sync.RWMutex argument at a call site.
type ArgLock struct {
	Index int    // callee parameter index
	Class string // caller-side class, "" if unresolvable
	Param int    // >= 0: the argument is the caller's own parameter
}

// AllocSite is one potential heap allocation.
type AllocSite struct {
	Pos    token.Pos
	What   string // human description ("composite literal []byte{...}")
	Exempt string // non-empty: why the steady-state model excuses it
}

// FieldUse is one access to an atomic-capable field or package variable.
type FieldUse struct {
	Obj    *types.Var
	Atomic bool
	Write  bool // plain access on the left of an assignment / inc-dec
	Pos    token.Pos
}

// Opcode use roles.
const (
	OpUseOther = iota
	// OpUseEncode: the constant flows into a call argument — a client (or
	// server reply path) putting the opcode on the wire.
	OpUseEncode
	// OpUseDispatch: the constant labels a case in a switch over its type
	// — a server routing an inbound frame.
	OpUseDispatch
)

// OpcodeUse is one reference to a constant of a locally-declared constant
// type.
type OpcodeUse struct {
	Const *types.Const
	Role  int
	Pos   token.Pos
}

// ConstSwitch is one switch over a locally-declared constant type.
type ConstSwitch struct {
	TypeName *types.TypeName
	Covered  []string    // exact constant values the cases cover
	Raw      []token.Pos // case labels that are literals, not named consts
	Arms     []SwitchArm // per-case facts, in source order
	Pos      token.Pos
}

// SwitchArm is one case clause of a ConstSwitch: the constant values its
// labels cover and the statically-resolved callees of its body. The
// wireproto analyzer walks Callees transitively to decide whether a
// dispatch arm records a latency observation.
type SwitchArm struct {
	Values  []string
	Callees []*types.Func
	Pos     token.Pos
}

// CallSite is one statically-resolved callee.
type CallSite struct {
	Callee *types.Func
	Pos    token.Pos
}

// hotDirective is the doc-comment marker for allocation-free roots.
const hotDirective = "//shm:hotpath"

// summarizer walks one function body accumulating its Summary.
type summarizer struct {
	fi    *FuncInfo
	sum   *Summary
	info  *types.Info
	stack []ast.Node // ancestors of the node being visited
	// funcLit > 0 while inside a nested function literal: lock events are
	// not recorded there (the literal runs at an unknown time), allocation
	// and field facts still are.
	funcLit int
	// atomicArgs marks expressions consumed as &x arguments of sync/atomic
	// calls so the later visit of x does not record a plain access.
	atomicArgs map[ast.Expr]bool
	calls      map[*types.Func]bool
}

// summarize extracts fi's Summary.
func summarize(fi *FuncInfo) *Summary {
	s := &summarizer{
		fi:         fi,
		sum:        &Summary{},
		info:       fi.Pkg.Info,
		atomicArgs: make(map[ast.Expr]bool),
		calls:      make(map[*types.Func]bool),
	}
	if doc := fi.Decl.Doc; doc != nil {
		for _, c := range doc.List {
			if c.Text == hotDirective || strings.HasPrefix(c.Text, hotDirective+" ") {
				s.sum.Hot = true
			}
		}
	}
	if fi.Decl.Body == nil {
		// Assembly-backed (or linker-provided) declaration: no AST to walk.
		// The empty summary is the correct model, not a gap — see AsmBacked.
		s.sum.AsmBacked = true
		return s.sum
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			popped := s.stack[len(s.stack)-1]
			s.stack = s.stack[:len(s.stack)-1]
			if _, ok := popped.(*ast.FuncLit); ok {
				s.funcLit--
			}
			return true
		}
		s.visit(n)
		s.stack = append(s.stack, n)
		if _, ok := n.(*ast.FuncLit); ok {
			s.funcLit++
		}
		return true
	})
	return s.sum
}

// visit dispatches on one node. The ancestor stack does not yet include n.
func (s *summarizer) visit(n ast.Node) {
	switch n := n.(type) {
	case *ast.CallExpr:
		s.visitCall(n)
	case *ast.CompositeLit:
		s.visitComposite(n)
	case *ast.GoStmt:
		s.alloc(n.Pos(), "go statement spawns a goroutine")
	case *ast.FuncLit:
		s.alloc(n.Pos(), "function literal (closure)")
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			s.visitMapWrite(lhs)
		}
	case *ast.IncDecStmt:
		s.visitMapWrite(n.X)
	case *ast.SwitchStmt:
		s.visitSwitch(n)
	case *ast.SelectorExpr:
		s.visitFieldUse(n, n.Sel)
	case *ast.Ident:
		s.visitIdent(n)
	}
}

// visitCall handles lock operations, sync/atomic calls, conversions,
// interface boxing, known-allocating stdlib calls, builtins, and the call
// graph.
func (s *summarizer) visitCall(call *ast.CallExpr) {
	// Conversions: string ↔ []byte/[]rune copy their operand.
	if tv, ok := s.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		s.visitConversion(call, tv.Type)
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := s.info.Uses[id].(*types.Builtin); ok {
			s.visitBuiltin(call, b.Name())
			return
		}
	}
	callee := s.calleeOf(call)
	if callee == nil {
		return // interface call, func value, ...: outside the static model
	}
	full := callee.FullName()
	switch full {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
		s.lockOp(call, lockAcquire, full == "(*sync.RWMutex).RLock")
		return
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
		kind := lockRelease
		if s.inDefer() {
			kind = lockDeferRelease
		}
		s.lockOp(call, kind, full == "(*sync.RWMutex).RUnlock")
		return
	}
	if strings.HasPrefix(full, "sync/atomic.") && len(call.Args) > 0 {
		s.visitAtomic(call)
		return
	}
	if what := knownAllocCall(full); what != "" {
		s.alloc(call.Pos(), what)
	}
	s.visitBoxing(call, callee)
	if !s.calls[callee] {
		s.calls[callee] = true
		s.sum.Calls = append(s.sum.Calls, CallSite{Callee: callee, Pos: call.Pos()})
	}
	if s.funcLit == 0 {
		ev := LockEvent{Kind: lockCall, Param: -1, Pos: call.Pos(), Callee: callee}
		sig, _ := callee.Type().(*types.Signature)
		if sig != nil {
			for i, arg := range call.Args {
				if i >= sig.Params().Len() {
					break
				}
				if !isMutexPtr(sig.Params().At(i).Type()) {
					continue
				}
				class, param := s.lockClassOf(arg)
				ev.ArgLocks = append(ev.ArgLocks, ArgLock{Index: i, Class: class, Param: param})
			}
		}
		s.sum.Locks = append(s.sum.Locks, ev)
	}
}

// calleeOf statically resolves a call's target function, or nil.
func (s *summarizer) calleeOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := s.info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := s.info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// lockOp records one Lock/Unlock-family call on a mutex.
func (s *summarizer) lockOp(call *ast.CallExpr, kind int, rlock bool) {
	if s.funcLit > 0 {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	class, param := s.lockRecvClass(sel)
	s.sum.Locks = append(s.sum.Locks, LockEvent{
		Kind: kind, Class: class, Param: param, RLock: rlock, Pos: call.Pos(),
	})
}

// lockRecvClass resolves the receiver of a mutex method call to a lock
// class. An embedded mutex (type T struct { sync.Mutex }) resolves through
// the method selection's field path.
func (s *summarizer) lockRecvClass(sel *ast.SelectorExpr) (class string, param int) {
	if msel := s.info.Selections[sel]; msel != nil && len(msel.Index()) > 1 {
		// s.Lock() through an embedded mutex: class = T.<embedded field>.
		t := msel.Recv()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			if st, ok := named.Underlying().(*types.Struct); ok {
				f := st.Field(msel.Index()[0])
				return qualifyField(named, f), -1
			}
		}
	}
	return s.lockClassOf(sel.X)
}

// lockClassOf maps a mutex-valued expression (receiver or call argument)
// to a lock class. Index and slice expressions collapse onto the backing
// field — every element of segment.locks is one class, which is exactly
// the granularity deadlock ordering needs (two stripes of one table are
// interchangeable; their acquisition order is a property of the table).
func (s *summarizer) lockClassOf(expr ast.Expr) (class string, param int) {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.UnaryExpr:
			if e.Op != token.AND {
				return "", -1
			}
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.SelectorExpr:
			fsel := s.info.Selections[e]
			if fsel == nil || fsel.Kind() != types.FieldVal {
				return "", -1
			}
			f, _ := fsel.Obj().(*types.Var)
			t := fsel.Recv()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && f != nil {
				return qualifyField(named, f), -1
			}
			return "", -1
		case *ast.Ident:
			obj, _ := s.info.Uses[e].(*types.Var)
			if obj == nil {
				return "", -1
			}
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Path() + "." + obj.Name(), -1
			}
			if i := s.paramIndex(obj); i >= 0 {
				return "", i
			}
			return "", -1 // local mutex: untracked
		default:
			return "", -1
		}
	}
}

// paramIndex returns the index of obj among the function's parameters, or
// -1.
func (s *summarizer) paramIndex(obj *types.Var) int {
	sig, _ := s.fi.Obj.Type().(*types.Signature)
	if sig == nil {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return i
		}
	}
	return -1
}

// qualifyField renders a field's lock class: "pkgpath.Type.field".
func qualifyField(owner *types.Named, f *types.Var) string {
	path := ""
	if owner.Obj().Pkg() != nil {
		path = owner.Obj().Pkg().Path() + "."
	}
	return path + owner.Obj().Name() + "." + f.Name()
}

// isMutexPtr reports whether t is *sync.Mutex or *sync.RWMutex.
func isMutexPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// inDefer reports whether the node being visited is the immediate call of
// a defer statement.
func (s *summarizer) inDefer() bool {
	if len(s.stack) == 0 {
		return false
	}
	_, ok := s.stack[len(s.stack)-1].(*ast.DeferStmt)
	return ok
}

// visitAtomic records a sync/atomic function-style access: the &x operands
// become atomic field uses and are excluded from plain-use collection.
func (s *summarizer) visitAtomic(call *ast.CallExpr) {
	for _, arg := range call.Args {
		un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			continue
		}
		target := ast.Unparen(un.X)
		obj := s.atomicCapableVar(target)
		if obj == nil {
			continue
		}
		s.atomicArgs[target] = true
		s.sum.Fields = append(s.sum.Fields, FieldUse{Obj: obj, Atomic: true, Pos: un.Pos()})
	}
}

// atomicCapableVar resolves expr to a struct field or package-level var of
// a type the sync/atomic functions operate on, or nil.
func (s *summarizer) atomicCapableVar(expr ast.Expr) *types.Var {
	var obj *types.Var
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if fsel := s.info.Selections[e]; fsel != nil && fsel.Kind() == types.FieldVal {
			obj, _ = fsel.Obj().(*types.Var)
		}
	case *ast.Ident:
		if v, ok := s.info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			obj = v
		}
	}
	if obj == nil || !isAtomicCapable(obj.Type()) {
		return nil
	}
	return obj
}

// isAtomicCapable reports whether sync/atomic's function-style API can
// target a value of type t.
func isAtomicCapable(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr, types.UnsafePointer:
			return true
		}
	case *types.Pointer:
		return true
	}
	return false
}

// visitFieldUse records a plain access to an atomic-capable struct field.
func (s *summarizer) visitFieldUse(sel *ast.SelectorExpr, name *ast.Ident) {
	if s.atomicArgs[sel] {
		return
	}
	fsel := s.info.Selections[sel]
	if fsel == nil || fsel.Kind() != types.FieldVal {
		return
	}
	obj, _ := fsel.Obj().(*types.Var)
	if obj == nil || !isAtomicCapable(obj.Type()) {
		return
	}
	s.sum.Fields = append(s.sum.Fields, FieldUse{
		Obj: obj, Write: s.isAssigned(sel), Pos: sel.Pos(),
	})
}

// visitIdent records plain accesses to atomic-capable package-level vars
// and opcode-constant uses.
func (s *summarizer) visitIdent(id *ast.Ident) {
	switch obj := s.info.Uses[id].(type) {
	case *types.Var:
		if s.atomicArgs[id] {
			return
		}
		if obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() || !isAtomicCapable(obj.Type()) {
			return
		}
		s.sum.Fields = append(s.sum.Fields, FieldUse{
			Obj: obj, Write: s.isAssigned(id), Pos: id.Pos(),
		})
	case *types.Const:
		named, ok := obj.Type().(*types.Named)
		if !ok || named.Obj().Pkg() != s.fi.Pkg.Types {
			return
		}
		s.sum.Opcodes = append(s.sum.Opcodes, OpcodeUse{
			Const: obj, Role: s.constRole(id), Pos: id.Pos(),
		})
	}
}

// isAssigned reports whether expr is a direct assignment target (or
// inc/dec operand) in its immediate parent.
func (s *summarizer) isAssigned(expr ast.Expr) bool {
	if len(s.stack) == 0 {
		return false
	}
	switch p := s.stack[len(s.stack)-1].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == expr {
				return true
			}
		}
	case *ast.IncDecStmt:
		return p.X == expr
	case *ast.UnaryExpr:
		return p.Op == token.AND // address taken: aliases into plain access
	}
	return false
}

// constRole classifies a constant reference: a case label is dispatch, a
// call argument (looking through conversions like byte(opX)) is encode,
// anything else — comparisons, assignments — is other.
func (s *summarizer) constRole(id *ast.Ident) int {
	pos := id.Pos()
	for i := len(s.stack) - 1; i >= 0; i-- {
		switch p := s.stack[i].(type) {
		case *ast.CaseClause:
			for _, e := range p.List {
				if e.Pos() <= pos && pos <= e.End() {
					return OpUseDispatch
				}
			}
			return OpUseOther // inside the case body
		case *ast.CallExpr:
			inArg := false
			for _, a := range p.Args {
				if a.Pos() <= pos && pos <= a.End() {
					inArg = true
					break
				}
			}
			if !inArg {
				return OpUseOther // part of the Fun expression
			}
			if tv, ok := s.info.Types[p.Fun]; ok && tv.IsType() {
				continue // conversion: keep looking for the real call
			}
			return OpUseEncode
		case ast.Stmt:
			return OpUseOther
		}
	}
	return OpUseOther
}

// visitSwitch records switches over locally-declared constant types.
func (s *summarizer) visitSwitch(sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	named, ok := s.info.TypeOf(sw.Tag).(*types.Named)
	if !ok || named.Obj().Pkg() != s.fi.Pkg.Types {
		return
	}
	cs := ConstSwitch{TypeName: named.Obj(), Pos: sw.Pos()}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		arm := SwitchArm{Pos: cc.Pos()}
		for _, expr := range cc.List {
			tv, ok := s.info.Types[expr]
			if !ok || tv.Value == nil {
				continue
			}
			cs.Covered = append(cs.Covered, tv.Value.ExactString())
			arm.Values = append(arm.Values, tv.Value.ExactString())
			if !isConstRef(s.info, expr) {
				cs.Raw = append(cs.Raw, expr.Pos())
			}
		}
		seen := make(map[*types.Func]bool)
		for _, body := range cc.Body {
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := s.calleeOf(call); callee != nil && !seen[callee] {
					seen[callee] = true
					arm.Callees = append(arm.Callees, callee)
				}
				return true
			})
		}
		cs.Arms = append(cs.Arms, arm)
	}
	s.sum.Switches = append(s.sum.Switches, cs)
}

// isConstRef reports whether expr names a declared constant (possibly
// through a conversion), as opposed to a raw literal.
func isConstRef(info *types.Info, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		_, ok := info.Uses[e].(*types.Const)
		return ok
	case *ast.SelectorExpr:
		_, ok := info.Uses[e.Sel].(*types.Const)
		return ok
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return isConstRef(info, e.Args[0])
		}
	}
	return false
}

// visitComposite records allocating composite literals: slice and map
// literals always allocate; struct and array literals only when their
// address is taken (value literals live on the stack).
func (s *summarizer) visitComposite(lit *ast.CompositeLit) {
	if len(s.stack) > 0 {
		// The element literals of a larger composite are part of the outer
		// allocation, not separate sites.
		if _, ok := s.stack[len(s.stack)-1].(*ast.CompositeLit); ok {
			return
		}
	}
	t := s.info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		s.alloc(lit.Pos(), "slice literal "+types.TypeString(t, shortQualifier))
	case *types.Map:
		s.alloc(lit.Pos(), "map literal "+types.TypeString(t, shortQualifier))
	default:
		if len(s.stack) > 0 {
			if un, ok := s.stack[len(s.stack)-1].(*ast.UnaryExpr); ok && un.Op == token.AND {
				s.alloc(lit.Pos(), "&"+types.TypeString(t, shortQualifier)+"{...} escapes to the heap")
			}
		}
	}
}

// visitBuiltin records make/new/append allocation sites.
func (s *summarizer) visitBuiltin(call *ast.CallExpr, name string) {
	switch name {
	case "make":
		s.alloc(call.Pos(), "make")
	case "new":
		s.alloc(call.Pos(), "new")
	case "append":
		if len(call.Args) == 0 {
			return
		}
		if reason := s.growOnlyAppend(call); reason != "" {
			s.allocExemptAs(call.Pos(), "append", reason)
			return
		}
		s.alloc(call.Pos(), "append may grow")
	}
}

// growOnlyAppend recognizes the amortized builder idiom
// x.buf = append(x.buf, ...): the result is assigned back to the same
// persistent (non-local) expression, so capacity survives across calls and
// the steady state stops allocating. Appends to plain locals stay flagged
// — a fresh slice grows every call.
func (s *summarizer) growOnlyAppend(call *ast.CallExpr) string {
	if len(s.stack) == 0 {
		return ""
	}
	asg, ok := s.stack[len(s.stack)-1].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || asg.Rhs[0] != call {
		return ""
	}
	lhs := ast.Unparen(asg.Lhs[0])
	if _, bare := lhs.(*ast.Ident); bare {
		return ""
	}
	if types.ExprString(lhs) != types.ExprString(ast.Unparen(call.Args[0])) {
		return ""
	}
	return "grow-only buffer append (capacity persists across calls)"
}

// visitMapWrite records map-index assignment targets (inserts may grow the
// table).
func (s *summarizer) visitMapWrite(lhs ast.Expr) {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	if _, isMap := s.info.TypeOf(idx.X).Underlying().(*types.Map); isMap {
		s.alloc(idx.Pos(), "map write may grow the table")
	}
}

// visitConversion records string ↔ byte/rune-slice conversions, which copy.
func (s *summarizer) visitConversion(call *ast.CallExpr, to types.Type) {
	from := s.info.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	if isString(to) && isByteOrRuneSlice(from) || isString(from) && isByteOrRuneSlice(to) {
		s.alloc(call.Pos(), "string conversion copies")
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// visitBoxing flags non-pointer concrete arguments passed to interface
// parameters — the values escape into the interface header. Pointers,
// interfaces, and nil never allocate on conversion.
func (s *summarizer) visitBoxing(call *ast.CallExpr, callee *types.Func) {
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := s.info.TypeOf(arg)
		if at == nil || boxFree(at) {
			continue
		}
		s.allocAt(arg.Pos(), "interface boxing of "+types.TypeString(at, shortQualifier), arg)
	}
}

// boxFree reports whether converting a value of type t to an interface
// cannot allocate.
func boxFree(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UntypedNil || u.Kind() == types.UnsafePointer
	}
	return false
}

// alloc records an allocation site at pos, applying the contextual
// exemptions (error construction, cap-guarded growth, panic path).
func (s *summarizer) alloc(pos token.Pos, what string) {
	s.allocAt(pos, what, nil)
}

func (s *summarizer) allocAt(pos token.Pos, what string, node ast.Expr) {
	s.sum.Allocs = append(s.sum.Allocs, AllocSite{
		Pos: pos, What: what, Exempt: s.allocExemption(pos),
	})
}

func (s *summarizer) allocExemptAs(pos token.Pos, what, reason string) {
	s.sum.Allocs = append(s.sum.Allocs, AllocSite{Pos: pos, What: what, Exempt: reason})
}

// allocExemption scans the ancestor stack for contexts the steady-state
// model excuses: error values built on a return path (the contract is
// zero allocations on success), growth guarded by a cap() check (grow-only
// scratch reaching steady state stops allocating), and panic arguments
// (the process is dying).
func (s *summarizer) allocExemption(pos token.Pos) string {
	for i := len(s.stack) - 1; i >= 0; i-- {
		switch p := s.stack[i].(type) {
		case *ast.CallExpr:
			if id, ok := p.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := s.info.Uses[id].(*types.Builtin); isBuiltin {
					return "panic path"
				}
			}
		case *ast.ReturnStmt:
			if s.errorResultAt(p, pos, i) {
				return "error construction on a return path"
			}
		case *ast.IfStmt:
			if inRange(p.Body, pos) && condMentionsCap(s.info, p.Cond) {
				return "cap-guarded growth (grow-only scratch)"
			}
		}
	}
	return ""
}

// errorResultAt reports whether pos falls inside a result expression of
// ret whose declared type is error. stackIdx is ret's position on the
// ancestor stack, used to find the innermost enclosing function signature.
func (s *summarizer) errorResultAt(ret *ast.ReturnStmt, pos token.Pos, stackIdx int) bool {
	var sig *types.Signature
	for j := stackIdx - 1; j >= 0 && sig == nil; j-- {
		if lit, ok := s.stack[j].(*ast.FuncLit); ok {
			sig, _ = s.info.TypeOf(lit).(*types.Signature)
		}
	}
	if sig == nil {
		sig, _ = s.fi.Obj.Type().(*types.Signature)
	}
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return false
	}
	for i, res := range ret.Results {
		if res.Pos() <= pos && pos <= res.End() && isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

var errorIface = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.AssignableTo(t, errorIface) }

// inRange reports whether pos falls inside node.
func inRange(node ast.Node, pos token.Pos) bool {
	return node != nil && node.Pos() <= pos && pos <= node.End()
}

// condMentionsCap reports whether an if condition calls the cap builtin —
// the signature of the grow-only scratch idiom
// `if cap(buf) < n { buf = make(...) }`.
func condMentionsCap(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// shortQualifier renders types with bare package names in diagnostics.
func shortQualifier(p *types.Package) string { return p.Name() }

// knownAllocCall maps always-allocating standard-library calls (by
// FullName) to a description, or "". The standard library is outside the
// program, so this denylist is how its allocation behaviour enters the
// model; everything not listed is assumed allocation-free, a documented
// optimistic bias (DESIGN.md §13).
func knownAllocCall(full string) string {
	switch {
	case strings.HasPrefix(full, "fmt."):
		return full + " formats and allocates"
	case full == "errors.New" || full == "errors.Join":
		return full + " allocates"
	case full == "strings.Join" || full == "strings.Repeat" || full == "strings.Split" ||
		full == "strings.Fields" || full == "strings.ReplaceAll" || full == "strings.ToUpper" ||
		full == "strings.ToLower" || full == "strings.Clone":
		return full + " builds a new string"
	case full == "bytes.Clone" || full == "bytes.Join" || full == "bytes.Repeat" ||
		full == "bytes.Split" || full == "bytes.Fields":
		return full + " builds a new slice"
	case full == "strconv.Itoa" || full == "strconv.FormatInt" || full == "strconv.FormatUint" ||
		full == "strconv.FormatFloat" || full == "strconv.Quote":
		return full + " builds a new string"
	case full == "sort.Slice" || full == "sort.SliceStable":
		return full + " boxes its closure"
	case full == "time.NewTimer" || full == "time.NewTicker" || full == "time.After" || full == "time.Tick":
		return full + " allocates a timer"
	}
	return ""
}
